package diskfmt

import (
	"bytes"
	"encoding/binary"
	"slices"
	"testing"
)

// FuzzDiskFmtRoundTrip drives the v2 container and the compressed posting
// encoding from one seed: the raw input bytes are (a) interpreted as an id
// stream + section payloads and round-tripped through Writer → FromBytes →
// Section → MakePostings, and (b) fed directly to the parsers, which must
// reject garbage with an error rather than panic or over-read.
func FuzzDiskFmtRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("repro-index v1 epoch 3 tag ff\n"))
	f.Add(Magic[:])
	{
		w := NewWriter(9, 11, "spec")
		w.AddSection(1, EncodePostings([]uint32{1, 2, 3, 70000}))
		var buf bytes.Buffer
		w.WriteTo(&buf)
		f.Add(buf.Bytes())
	}
	f.Fuzz(func(t *testing.T, raw []byte) {
		// (b) parse arbitrary bytes: must not panic.
		if r, err := FromBytes(raw); err == nil {
			for _, id := range []uint32{0, 1, 2, 1000} {
				if s, err := r.Section(id); err == nil {
					if p, err := MakePostings(s); err == nil {
						p.Cardinality()
						p.Decode()
					}
				}
			}
		}
		if p, err := MakePostings(raw); err == nil {
			count := 0
			it := p.Iterator()
			for _, ok := it.Next(); ok && count < 1<<20; _, ok = it.Next() {
				count++
			}
		}

		// (a) round-trip: derive a sorted id set and sections from raw.
		var ids []uint32
		for i := 0; i+4 <= len(raw) && len(ids) < 1<<14; i += 4 {
			ids = append(ids, binary.LittleEndian.Uint32(raw[i:])%(1<<21))
		}
		slices.Sort(ids)
		ids = slices.Compact(ids)
		enc := EncodePostings(ids)
		p, err := MakePostings(enc)
		if err != nil {
			t.Fatalf("self-encoded postings rejected: %v", err)
		}
		if p.Cardinality() != len(ids) {
			t.Fatalf("cardinality %d want %d", p.Cardinality(), len(ids))
		}
		if got := p.Decode(); !slices.Equal(got, ids) {
			t.Fatalf("postings round-trip mismatch: %d vs %d ids", len(got), len(ids))
		}
		half := len(ids) / 2
		pa, _ := MakePostings(EncodePostings(ids[:half]))
		pb, _ := MakePostings(EncodePostings(ids[half:]))
		if got := Union(pa, pb); len(ids) > 0 && !slices.Equal(got, ids) {
			t.Fatalf("union of halves != whole: %d vs %d", len(got), len(ids))
		}

		var spec string
		if len(raw) > 0 {
			spec = string(raw[:min(len(raw), 32)])
		}
		w := NewWriter(uint64(len(raw)), 0x1234, spec)
		w.AddSection(1, enc)
		w.AddSection(2, raw)
		var buf bytes.Buffer
		if _, err := w.WriteTo(&buf); err != nil {
			t.Fatalf("WriteTo: %v", err)
		}
		r, err := FromBytes(buf.Bytes())
		if err != nil {
			t.Fatalf("self-written container rejected: %v", err)
		}
		if r.Epoch() != uint64(len(raw)) || r.Spec() != spec {
			t.Fatalf("header round-trip mismatch")
		}
		s1, err := r.Section(1)
		if err != nil || !bytes.Equal(s1, enc) {
			t.Fatalf("section 1 round-trip: %v", err)
		}
		s2, err := r.Section(2)
		if err != nil || !bytes.Equal(s2, raw) {
			t.Fatalf("section 2 round-trip: %v", err)
		}
	})
}
