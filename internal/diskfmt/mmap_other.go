//go:build !unix

package diskfmt

import "os"

// mapFile falls back to reading the whole file on platforms without a
// wired-up mmap: storage=mmap still works, it just loses the lazy paging.
func mapFile(path string) ([]byte, func() error, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return nil }, nil
}
