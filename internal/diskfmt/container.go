// Package diskfmt defines the repro-index v2 on-disk container: a
// versioned, memory-mappable section-table format plus a compressed
// posting-list representation (postings.go).
//
// File layout (all integers little-endian):
//
//	magic      [8]byte   "RIX2\r\n\x1a\x00"
//	epoch      uint64    dataset epoch the index was built against
//	tag        uint64    dataset structural fingerprint (VersionTag)
//	reserved   uint32
//	nSections  uint32
//	specLen    uint32
//	spec       [specLen]byte   canonical engine spec ("" when unbound)
//	pad to 4-byte boundary
//	table      nSections × {id uint32, crc uint32, off uint64, len uint64}
//	headerCRC  uint32    CRC32 (IEEE) of every byte above
//	payload    sections, each starting on an 8-byte boundary
//
// Opening a file parses and checksums only the header and section table —
// O(header), independent of payload size. Section payload CRCs are
// verified lazily on first access, so an mmap-backed reader faults pages
// in only when a section is actually touched.
package diskfmt

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync/atomic"
)

// Version is the container format generation. v1 is the legacy text-header
// gob stream written by engine.SaveMethod before this package existed.
const Version = 2

// Magic identifies a v2 container. The trailing CR/LF/SUB/NUL bytes guard
// against text-mode transfer mangling, like the PNG signature does.
var Magic = [8]byte{'R', 'I', 'X', '2', '\r', '\n', 0x1a, 0x00}

// ErrNotDiskFmt reports that a file does not start with the v2 magic —
// callers fall back to the legacy v1 path (or rebuild).
var ErrNotDiskFmt = errors.New("diskfmt: not a repro-index v2 container")

// CorruptError reports a structurally invalid or checksum-failing
// container. Loaders treat it as "rebuild the index", never as fatal.
type CorruptError struct {
	Detail string
}

func (e *CorruptError) Error() string { return "diskfmt: corrupt container: " + e.Detail }

func corruptf(format string, args ...any) error {
	return &CorruptError{Detail: fmt.Sprintf(format, args...)}
}

// IsCorrupt reports whether err indicates a damaged (but recognized)
// container.
func IsCorrupt(err error) bool {
	var ce *CorruptError
	return errors.As(err, &ce)
}

// IsMagic reports whether b begins with the v2 container magic.
func IsMagic(b []byte) bool {
	return len(b) >= len(Magic) && bytes.Equal(b[:len(Magic)], Magic[:])
}

const (
	fixedHeaderSize  = 8 + 8 + 8 + 4 + 4 + 4 // magic..specLen
	tableEntrySize   = 4 + 4 + 8 + 8
	maxSections      = 1 << 10
	maxSpecLen       = 1 << 16
	sectionAlignment = 8
)

// Writer accumulates named sections in memory and flushes a complete
// container in one pass, so it composes with atomic rename-into-place
// helpers that take an io.Writer.
type Writer struct {
	epoch uint64
	tag   uint64
	spec  string
	ids   []uint32
	data  [][]byte
}

// NewWriter starts a container stamped with the dataset epoch, structural
// tag, and canonical engine spec ("" when the index is not spec-bound).
func NewWriter(epoch, tag uint64, spec string) *Writer {
	return &Writer{epoch: epoch, tag: tag, spec: spec}
}

// AddSection appends a section. Section ids must be unique per container;
// a duplicate id replaces the earlier payload. The Writer takes ownership
// of data.
func (w *Writer) AddSection(id uint32, data []byte) {
	for i, have := range w.ids {
		if have == id {
			w.data[i] = data
			return
		}
	}
	w.ids = append(w.ids, id)
	w.data = append(w.data, data)
}

// WriteTo emits the complete container.
func (w *Writer) WriteTo(out io.Writer) (int64, error) {
	if len(w.ids) > maxSections {
		return 0, fmt.Errorf("diskfmt: %d sections exceeds limit %d", len(w.ids), maxSections)
	}
	if len(w.spec) > maxSpecLen {
		return 0, fmt.Errorf("diskfmt: spec of %d bytes exceeds limit %d", len(w.spec), maxSpecLen)
	}
	var hdr []byte
	hdr = append(hdr, Magic[:]...)
	hdr = binary.LittleEndian.AppendUint64(hdr, w.epoch)
	hdr = binary.LittleEndian.AppendUint64(hdr, w.tag)
	hdr = binary.LittleEndian.AppendUint32(hdr, 0) // reserved
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(w.ids)))
	hdr = binary.LittleEndian.AppendUint32(hdr, uint32(len(w.spec)))
	hdr = append(hdr, w.spec...)
	for len(hdr)%4 != 0 {
		hdr = append(hdr, 0)
	}

	// Lay out payload offsets relative to the start of the file: header,
	// table, header CRC, then 8-aligned sections.
	headerEnd := len(hdr) + len(w.ids)*tableEntrySize + 4
	off := uint64(headerEnd)
	offs := make([]uint64, len(w.ids))
	for i, d := range w.data {
		off = alignUp(off, sectionAlignment)
		offs[i] = off
		off += uint64(len(d))
	}
	for i, id := range w.ids {
		hdr = binary.LittleEndian.AppendUint32(hdr, id)
		hdr = binary.LittleEndian.AppendUint32(hdr, crc32.ChecksumIEEE(w.data[i]))
		hdr = binary.LittleEndian.AppendUint64(hdr, offs[i])
		hdr = binary.LittleEndian.AppendUint64(hdr, uint64(len(w.data[i])))
	}
	hdr = binary.LittleEndian.AppendUint32(hdr, crc32.ChecksumIEEE(hdr))

	var n int64
	wn, err := out.Write(hdr)
	n += int64(wn)
	if err != nil {
		return n, err
	}
	var pad [sectionAlignment]byte
	pos := uint64(len(hdr))
	for i, d := range w.data {
		if gap := offs[i] - pos; gap > 0 {
			wn, err = out.Write(pad[:gap])
			n += int64(wn)
			if err != nil {
				return n, err
			}
			pos += gap
		}
		wn, err = out.Write(d)
		n += int64(wn)
		if err != nil {
			return n, err
		}
		pos += uint64(len(d))
	}
	return n, nil
}

func alignUp(v, a uint64) uint64 { return (v + a - 1) &^ (a - 1) }

type sectionEntry struct {
	id   uint32
	crc  uint32
	off  uint64
	size uint64
}

// Reader gives random access to a container's sections. The header and
// section table are parsed and checksummed at open; each section payload
// is CRC-verified once, on first access. When backed by an mmap the
// returned section slices alias the mapping and are valid until Close.
type Reader struct {
	data    []byte
	mapped  bool
	closeFn func() error
	epoch   uint64
	tag     uint64
	spec    string
	entries []sectionEntry
	// verified[i]: section i's payload CRC has been checked OK.
	// accessed[i]: section i's payload was read in full (Section or
	// VerifySection; SectionLazy only slices the mapping and does not
	// count) — exposed so cold-start tests can assert laziness.
	verified []atomic.Bool
	accessed []atomic.Bool
}

// Open maps (mapped=true) or reads (mapped=false) the file at path and
// parses the header. Returns ErrNotDiskFmt when the file is not a v2
// container, or a *CorruptError when it is damaged.
func Open(path string, mapped bool) (*Reader, error) {
	if mapped {
		data, closeFn, err := mapFile(path)
		if err != nil {
			return nil, err
		}
		r, err := FromBytes(data)
		if err != nil {
			closeFn()
			return nil, err
		}
		r.mapped = true
		r.closeFn = closeFn
		return r, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return FromBytes(data)
}

// FromBytes parses a container already in memory. The Reader aliases b.
func FromBytes(b []byte) (*Reader, error) {
	if !IsMagic(b) {
		return nil, ErrNotDiskFmt
	}
	if len(b) < fixedHeaderSize {
		return nil, corruptf("file of %d bytes shorter than fixed header", len(b))
	}
	epoch := binary.LittleEndian.Uint64(b[8:])
	tag := binary.LittleEndian.Uint64(b[16:])
	nSections := binary.LittleEndian.Uint32(b[28:])
	specLen := binary.LittleEndian.Uint32(b[32:])
	if nSections > maxSections {
		return nil, corruptf("section count %d exceeds limit %d", nSections, maxSections)
	}
	if specLen > maxSpecLen {
		return nil, corruptf("spec length %d exceeds limit %d", specLen, maxSpecLen)
	}
	specEnd := uint64(fixedHeaderSize) + uint64(specLen)
	tableStart := alignUp(specEnd, 4)
	headerEnd := tableStart + uint64(nSections)*tableEntrySize + 4
	if headerEnd > uint64(len(b)) {
		return nil, corruptf("header of %d bytes overruns file of %d bytes", headerEnd, len(b))
	}
	wantCRC := binary.LittleEndian.Uint32(b[headerEnd-4:])
	if got := crc32.ChecksumIEEE(b[:headerEnd-4]); got != wantCRC {
		return nil, corruptf("header CRC mismatch: stored %08x computed %08x", wantCRC, got)
	}
	r := &Reader{
		data:     b,
		epoch:    epoch,
		tag:      tag,
		spec:     string(b[fixedHeaderSize:specEnd]),
		entries:  make([]sectionEntry, nSections),
		verified: make([]atomic.Bool, nSections),
		accessed: make([]atomic.Bool, nSections),
	}
	for i := range r.entries {
		base := tableStart + uint64(i)*tableEntrySize
		e := sectionEntry{
			id:   binary.LittleEndian.Uint32(b[base:]),
			crc:  binary.LittleEndian.Uint32(b[base+4:]),
			off:  binary.LittleEndian.Uint64(b[base+8:]),
			size: binary.LittleEndian.Uint64(b[base+16:]),
		}
		if e.off < headerEnd || e.off > uint64(len(b)) || e.size > uint64(len(b))-e.off {
			return nil, corruptf("section %d [%d,+%d) overruns file of %d bytes", e.id, e.off, e.size, len(b))
		}
		r.entries[i] = e
	}
	return r, nil
}

// Epoch returns the dataset epoch stamped at write time.
func (r *Reader) Epoch() uint64 { return r.epoch }

// Tag returns the dataset structural fingerprint stamped at write time.
func (r *Reader) Tag() uint64 { return r.tag }

// Spec returns the canonical engine spec stamped at write time.
func (r *Reader) Spec() string { return r.spec }

// Mapped reports whether the reader is backed by a memory mapping.
func (r *Reader) Mapped() bool { return r.mapped }

// FileSize returns the container size in bytes.
func (r *Reader) FileSize() int64 { return int64(len(r.data)) }

// Has reports whether the container holds a section with the given id.
func (r *Reader) Has(id uint32) bool { return r.find(id) >= 0 }

// SectionLen returns the payload length of a section without touching its
// bytes, or -1 when absent.
func (r *Reader) SectionLen(id uint32) int64 {
	if i := r.find(id); i >= 0 {
		return int64(r.entries[i].size)
	}
	return -1
}

func (r *Reader) find(id uint32) int {
	for i := range r.entries {
		if r.entries[i].id == id {
			return i
		}
	}
	return -1
}

// Section returns a section's payload, verifying its CRC on first access.
// The slice aliases the mapping (or the in-memory buffer); callers must
// copy anything they retain past Close.
func (r *Reader) Section(id uint32) ([]byte, error) {
	i := r.find(id)
	if i < 0 {
		return nil, corruptf("section %d absent", id)
	}
	e := r.entries[i]
	r.accessed[i].Store(true)
	p := r.data[e.off : e.off+e.size : e.off+e.size]
	if !r.verified[i].Load() {
		if got := crc32.ChecksumIEEE(p); got != e.crc {
			return nil, corruptf("section %d CRC mismatch: stored %08x computed %08x", id, e.crc, got)
		}
		r.verified[i].Store(true)
	}
	return p, nil
}

// SectionLazy returns a section's payload without verifying its CRC —
// meant for bulk sections resolved incrementally under mmap, where a
// wholesale checksum at first touch would fault every page in and defeat
// the lazy open. The section's bounds were already validated at open;
// structural validation of the bytes is the decoder's responsibility.
// VerifySection checks the payload explicitly when a caller (a background
// warmer, an integrity scrub) wants the full guarantee.
func (r *Reader) SectionLazy(id uint32) ([]byte, error) {
	i := r.find(id)
	if i < 0 {
		return nil, corruptf("section %d absent", id)
	}
	e := r.entries[i]
	return r.data[e.off : e.off+e.size : e.off+e.size], nil
}

// VerifySection reads a section in full and checks its CRC.
func (r *Reader) VerifySection(id uint32) error {
	_, err := r.Section(id)
	return err
}

// Accessed reports whether the section's payload has ever been read in
// full (Section or VerifySection) — cold-start tests use it to prove an
// mmap open left payload sections untouched. SectionLazy does not count:
// it only slices the mapping, which faults no pages in.
func (r *Reader) Accessed(id uint32) bool {
	if i := r.find(id); i >= 0 {
		return r.accessed[i].Load()
	}
	return false
}

// Close releases the mapping, if any. Section slices handed out earlier
// must not be used afterwards.
func (r *Reader) Close() error {
	r.data = nil
	r.entries = nil
	if r.closeFn != nil {
		fn := r.closeFn
		r.closeFn = nil
		return fn()
	}
	return nil
}
