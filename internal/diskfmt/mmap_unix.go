//go:build unix

package diskfmt

import (
	"os"
	"syscall"
)

// mapFile memory-maps path read-only. The returned close function
// releases the mapping. Zero-length files map to an empty (unmapped)
// slice so callers still get a well-formed "too short" parse error.
func mapFile(path string) ([]byte, func() error, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size == 0 {
		return nil, func() error { return nil }, nil
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
