package diskfmt

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"slices"
	"testing"
)

func TestContainerRoundTrip(t *testing.T) {
	w := NewWriter(7, 0xdeadbeef, "grapes:maxPathLen=4")
	w.AddSection(1, []byte("meta"))
	w.AddSection(2, bytes.Repeat([]byte{0xab}, 1000))
	w.AddSection(3, nil)
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	r, err := FromBytes(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if r.Epoch() != 7 || r.Tag() != 0xdeadbeef || r.Spec() != "grapes:maxPathLen=4" {
		t.Fatalf("header = %d/%x/%q", r.Epoch(), r.Tag(), r.Spec())
	}
	if r.Accessed(2) {
		t.Fatal("section 2 marked accessed before any Section call")
	}
	got, err := r.Section(2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, bytes.Repeat([]byte{0xab}, 1000)) {
		t.Fatal("section 2 payload mismatch")
	}
	if !r.Accessed(2) || r.Accessed(1) {
		t.Fatal("accessed tracking wrong")
	}
	if s, err := r.Section(3); err != nil || len(s) != 0 {
		t.Fatalf("empty section: %v %d", err, len(s))
	}
	if r.Has(9) || r.SectionLen(9) != -1 {
		t.Fatal("phantom section 9")
	}
	if r.SectionLen(2) != 1000 {
		t.Fatalf("SectionLen(2) = %d", r.SectionLen(2))
	}
}

func TestContainerFileMmapAndHeap(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ix")
	w := NewWriter(1, 2, "s")
	w.AddSection(5, []byte("hello sections"))
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, mapped := range []bool{false, true} {
		r, err := Open(path, mapped)
		if err != nil {
			t.Fatalf("mapped=%v: %v", mapped, err)
		}
		s, err := r.Section(5)
		if err != nil || string(s) != "hello sections" {
			t.Fatalf("mapped=%v: %q %v", mapped, s, err)
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestContainerCorruption(t *testing.T) {
	w := NewWriter(3, 4, "")
	w.AddSection(1, bytes.Repeat([]byte("abc"), 100))
	var buf bytes.Buffer
	if _, err := w.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	if _, err := FromBytes([]byte("repro-index v1 epoch 3 tag 4\n")); err != ErrNotDiskFmt {
		t.Fatalf("v1 header: %v", err)
	}
	// Truncated tail: header parses, section overruns.
	if _, err := FromBytes(good[:len(good)-10]); !IsCorrupt(err) {
		t.Fatalf("truncated: %v", err)
	}
	// Bit flip in payload: open succeeds (lazy), Section fails.
	bad := slices.Clone(good)
	bad[len(bad)-1] ^= 0xff
	r, err := FromBytes(bad)
	if err != nil {
		t.Fatalf("open with payload flip: %v", err)
	}
	if _, err := r.Section(1); !IsCorrupt(err) {
		t.Fatalf("section with payload flip: %v", err)
	}
	// Bit flip in header: open fails.
	bad = slices.Clone(good)
	bad[12] ^= 0x01
	if _, err := FromBytes(bad); !IsCorrupt(err) {
		t.Fatalf("header flip: %v", err)
	}
}

func TestPostingsKinds(t *testing.T) {
	cases := map[string][]uint32{
		"empty":  {},
		"array":  {1, 5, 9, 70000, 70002},
		"run":    seq(100, 5000),
		"bitmap": everyOther(0, 12000),
		"mixed":  append(append(seq(0, 300), everyOther(1<<16, 11000)...), 1<<20, 1<<21),
	}
	for name, ids := range cases {
		t.Run(name, func(t *testing.T) {
			enc := EncodePostings(ids)
			p, err := MakePostings(enc)
			if err != nil {
				t.Fatal(err)
			}
			if p.Cardinality() != len(ids) {
				t.Fatalf("cardinality %d want %d", p.Cardinality(), len(ids))
			}
			if got := p.Decode(); !slices.Equal(got, ids) {
				t.Fatalf("decode mismatch: %d ids vs %d", len(got), len(ids))
			}
			var viaIter []uint32
			it := p.Iterator()
			for v, ok := it.Next(); ok; v, ok = it.Next() {
				viaIter = append(viaIter, v)
			}
			if len(ids) == 0 {
				viaIter = []uint32{}
				ids = []uint32{}
			}
			if !slices.Equal(viaIter, ids) {
				t.Fatalf("iterator mismatch: %v vs %v", len(viaIter), len(ids))
			}
			for _, v := range ids {
				if !p.Contains(v) {
					t.Fatalf("Contains(%d) = false", v)
				}
			}
			for _, v := range []uint32{3, 99999, 1 << 22} {
				if slices.Contains(ids, v) {
					continue
				}
				if p.Contains(v) {
					t.Fatalf("Contains(%d) = true", v)
				}
			}
		})
	}
}

func TestPostingsSetOps(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		a := randomIDs(rng, 1+rng.Intn(3000), 1<<18)
		b := randomIDs(rng, 1+rng.Intn(3000), 1<<18)
		pa, err := MakePostings(EncodePostings(a))
		if err != nil {
			t.Fatal(err)
		}
		pb, err := MakePostings(EncodePostings(b))
		if err != nil {
			t.Fatal(err)
		}
		if got, want := Intersect(pa, pb), refIntersect(a, b); !slices.Equal(nn(got), nn(want)) {
			t.Fatalf("trial %d intersect: %d vs %d ids", trial, len(got), len(want))
		}
		if got, want := Union(pa, pb), refUnion(a, b); !slices.Equal(nn(got), nn(want)) {
			t.Fatalf("trial %d union: %d vs %d ids", trial, len(got), len(want))
		}
	}
}

func nn(s []uint32) []uint32 {
	if s == nil {
		return []uint32{}
	}
	return s
}

func seq(from, n uint32) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = from + uint32(i)
	}
	return out
}

func everyOther(from, n uint32) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = from + 2*uint32(i)
	}
	return out
}

func randomIDs(rng *rand.Rand, n int, max uint32) []uint32 {
	set := make(map[uint32]struct{}, n)
	for len(set) < n {
		set[rng.Uint32()%max] = struct{}{}
	}
	out := make([]uint32, 0, n)
	for v := range set {
		out = append(out, v)
	}
	slices.Sort(out)
	return out
}

func refIntersect(a, b []uint32) []uint32 {
	in := make(map[uint32]bool, len(a))
	for _, v := range a {
		in[v] = true
	}
	var out []uint32
	for _, v := range b {
		if in[v] {
			out = append(out, v)
		}
	}
	slices.Sort(out)
	return out
}

func refUnion(a, b []uint32) []uint32 {
	set := make(map[uint32]struct{}, len(a)+len(b))
	for _, v := range a {
		set[v] = struct{}{}
	}
	for _, v := range b {
		set[v] = struct{}{}
	}
	out := make([]uint32, 0, len(set))
	for v := range set {
		out = append(out, v)
	}
	slices.Sort(out)
	return out
}
