package diskfmt

import (
	"encoding/binary"
	"math/bits"
	"slices"
)

// Compressed posting lists: sorted uint32 id sets split into 64K blocks
// keyed by the high 16 bits, each block stored as whichever of three
// container kinds is smallest — the classic roaring layout. The encoded
// form is position-independent and fixed-endian, so it can be read
// straight out of an mmap'd section without a decode pass, and
// intersection/union operate container-by-container on the compressed
// bytes. This replaces raw bitset words (internal/bitset) on disk: a
// sparse posting over a million-graph corpus costs 2 bytes per id instead
// of 128 KiB of words.
//
// Layout:
//
//	nContainers uint32
//	nContainers × {key uint16, kind uint16, card uint32, off uint32}
//	payload (containers in table order; off is relative to payload start)
//
// Container kinds:
//
//	kindArray  — card × uint16, sorted low bits
//	kindBitmap — 8192 bytes, bit i set ⇔ low-16 value i present
//	kindRun    — nRuns uint32, then nRuns × {start uint16, last uint16}
const (
	kindArray  = 0
	kindBitmap = 1
	kindRun    = 2

	bitmapBytes     = 8192
	arrayMaxCard    = 4096
	ctrlEntrySize   = 12
	postingsHdrSize = 4
)

// Postings is a validated view over an encoded posting list. The zero
// value is an empty set.
type Postings struct {
	ctrl    []byte // container table
	payload []byte
	n       int // container count
}

// EncodePostings encodes a sorted, duplicate-free slice of ids. Passing
// an unsorted slice is a programming error; results would be garbage.
func EncodePostings(ids []uint32) []byte {
	var ctrl, payload []byte
	nContainers := uint32(0)
	for i := 0; i < len(ids); {
		key := ids[i] >> 16
		j := i
		for j < len(ids) && ids[j]>>16 == key {
			j++
		}
		block := ids[i:j]
		card := len(block)
		runs := 1
		for k := i + 1; k < j; k++ {
			if ids[k] != ids[k-1]+1 {
				runs++
			}
		}
		arrayCost := 1 << 30
		if card <= arrayMaxCard {
			arrayCost = 2 * card
		}
		runCost := 4 + 4*runs
		kind := kindArray
		switch {
		case runCost < arrayCost && runCost < bitmapBytes:
			kind = kindRun
		case arrayCost <= bitmapBytes:
			kind = kindArray
		default:
			kind = kindBitmap
		}
		off := uint32(len(payload))
		switch kind {
		case kindArray:
			for _, v := range block {
				payload = binary.LittleEndian.AppendUint16(payload, uint16(v))
			}
		case kindBitmap:
			start := len(payload)
			payload = append(payload, make([]byte, bitmapBytes)...)
			bm := payload[start:]
			for _, v := range block {
				low := uint16(v)
				bm[low>>3] |= 1 << (low & 7)
			}
		case kindRun:
			payload = binary.LittleEndian.AppendUint32(payload, uint32(runs))
			runStart := uint16(block[0])
			prev := block[0]
			for _, v := range block[1:] {
				if v != prev+1 {
					payload = binary.LittleEndian.AppendUint16(payload, runStart)
					payload = binary.LittleEndian.AppendUint16(payload, uint16(prev))
					runStart = uint16(v)
				}
				prev = v
			}
			payload = binary.LittleEndian.AppendUint16(payload, runStart)
			payload = binary.LittleEndian.AppendUint16(payload, uint16(prev))
		}
		ctrl = binary.LittleEndian.AppendUint16(ctrl, uint16(key))
		ctrl = binary.LittleEndian.AppendUint16(ctrl, uint16(kind))
		ctrl = binary.LittleEndian.AppendUint32(ctrl, uint32(card))
		ctrl = binary.LittleEndian.AppendUint32(ctrl, off)
		nContainers++
		i = j
	}
	out := make([]byte, 0, postingsHdrSize+len(ctrl)+len(payload))
	out = binary.LittleEndian.AppendUint32(out, nContainers)
	out = append(out, ctrl...)
	out = append(out, payload...)
	return out
}

// MakePostings validates the structure of an encoded posting list and
// returns a view over it. The view aliases b.
func MakePostings(b []byte) (Postings, error) {
	if len(b) < postingsHdrSize {
		return Postings{}, corruptf("postings of %d bytes shorter than header", len(b))
	}
	n := binary.LittleEndian.Uint32(b)
	if uint64(postingsHdrSize)+uint64(n)*ctrlEntrySize > uint64(len(b)) {
		return Postings{}, corruptf("postings container table overruns %d bytes", len(b))
	}
	p := Postings{
		ctrl:    b[postingsHdrSize : postingsHdrSize+int(n)*ctrlEntrySize],
		payload: b[postingsHdrSize+int(n)*ctrlEntrySize:],
		n:       int(n),
	}
	for i := 0; i < p.n; i++ {
		_, kind, card, off := p.container(i)
		var size uint64
		switch kind {
		case kindArray:
			if card > arrayMaxCard {
				return Postings{}, corruptf("array container cardinality %d", card)
			}
			size = 2 * uint64(card)
		case kindBitmap:
			size = bitmapBytes
		case kindRun:
			if uint64(off)+4 > uint64(len(p.payload)) {
				return Postings{}, corruptf("run container header overruns payload")
			}
			runs := binary.LittleEndian.Uint32(p.payload[off:])
			if runs > 1<<16 {
				return Postings{}, corruptf("run container with %d runs", runs)
			}
			size = 4 + 4*uint64(runs)
		default:
			return Postings{}, corruptf("unknown container kind %d", kind)
		}
		if uint64(off)+size > uint64(len(p.payload)) {
			return Postings{}, corruptf("container %d overruns payload of %d bytes", i, len(p.payload))
		}
	}
	return p, nil
}

func (p Postings) container(i int) (key uint32, kind int, card uint32, off uint32) {
	e := p.ctrl[i*ctrlEntrySize:]
	key = uint32(binary.LittleEndian.Uint16(e))
	kind = int(binary.LittleEndian.Uint16(e[2:]))
	card = binary.LittleEndian.Uint32(e[4:])
	off = binary.LittleEndian.Uint32(e[8:])
	return
}

// Cardinality returns the number of ids without decoding any container.
func (p Postings) Cardinality() int {
	total := 0
	for i := 0; i < p.n; i++ {
		_, _, card, _ := p.container(i)
		total += int(card)
	}
	return total
}

// ForEach calls yield for every id in ascending order until yield returns
// false.
func (p Postings) ForEach(yield func(uint32) bool) {
	for i := 0; i < p.n; i++ {
		key, kind, _, off := p.container(i)
		hi := key << 16
		switch kind {
		case kindArray:
			_, _, card, _ := p.container(i)
			a := p.payload[off:]
			for k := uint32(0); k < card; k++ {
				if !yield(hi | uint32(binary.LittleEndian.Uint16(a[2*k:]))) {
					return
				}
			}
		case kindBitmap:
			bm := p.payload[off : off+bitmapBytes]
			for w := 0; w < bitmapBytes; w += 8 {
				word := binary.LittleEndian.Uint64(bm[w:])
				for word != 0 {
					b := bits.TrailingZeros64(word)
					if !yield(hi | uint32(w*8+b)) {
						return
					}
					word &= word - 1
				}
			}
		case kindRun:
			runs := binary.LittleEndian.Uint32(p.payload[off:])
			for r := uint32(0); r < runs; r++ {
				e := p.payload[off+4+4*r:]
				start := uint32(binary.LittleEndian.Uint16(e))
				last := uint32(binary.LittleEndian.Uint16(e[2:]))
				for v := start; v <= last; v++ {
					if !yield(hi | v) {
						return
					}
				}
			}
		}
	}
}

// Decode materializes the full id slice.
func (p Postings) Decode() []uint32 {
	out := make([]uint32, 0, p.Cardinality())
	p.ForEach(func(v uint32) bool { out = append(out, v); return true })
	return out
}

// Contains reports membership without decoding the posting list.
func (p Postings) Contains(v uint32) bool {
	key := v >> 16
	low := uint16(v)
	for i := 0; i < p.n; i++ {
		k, kind, card, off := p.container(i)
		if k != key {
			continue
		}
		switch kind {
		case kindArray:
			a := p.payload[off : off+2*card]
			lo, hi := 0, int(card)
			for lo < hi {
				mid := (lo + hi) / 2
				if binary.LittleEndian.Uint16(a[2*mid:]) < low {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			return lo < int(card) && binary.LittleEndian.Uint16(a[2*lo:]) == low
		case kindBitmap:
			return p.payload[off+uint32(low>>3)]&(1<<(low&7)) != 0
		case kindRun:
			runs := binary.LittleEndian.Uint32(p.payload[off:])
			for r := uint32(0); r < runs; r++ {
				e := p.payload[off+4+4*r:]
				start := binary.LittleEndian.Uint16(e)
				last := binary.LittleEndian.Uint16(e[2:])
				if low >= start && low <= last {
					return true
				}
			}
			return false
		}
	}
	return false
}

// Iterator walks a posting list in ascending id order.
type Iterator struct {
	p    Postings
	ci   int    // current container index
	hi   uint32 // current container's high bits, pre-shifted
	kind int
	card uint32
	off  uint32
	pos  uint32 // array: next element index; bitmap: next bit index; run: run index
	run  uint32 // run kind: next value within current run
	done bool
}

// Iterator returns a fresh iterator positioned before the first id.
func (p Postings) Iterator() *Iterator {
	it := &Iterator{p: p, ci: -1}
	it.nextContainer()
	return it
}

func (it *Iterator) nextContainer() {
	it.ci++
	if it.ci >= it.p.n {
		it.done = true
		return
	}
	key, kind, card, off := it.p.container(it.ci)
	it.hi = key << 16
	it.kind = kind
	it.card = card
	it.off = off
	it.pos = 0
	if kind == kindRun {
		e := it.p.payload[off+4:]
		it.run = uint32(binary.LittleEndian.Uint16(e))
	}
}

// Next returns the next id, or ok=false when exhausted.
func (it *Iterator) Next() (uint32, bool) {
	for !it.done {
		switch it.kind {
		case kindArray:
			if it.pos < it.card {
				v := it.hi | uint32(binary.LittleEndian.Uint16(it.p.payload[it.off+2*it.pos:]))
				it.pos++
				return v, true
			}
		case kindBitmap:
			bm := it.p.payload[it.off : it.off+bitmapBytes]
			for it.pos < bitmapBytes*8 {
				w := it.pos >> 6
				word := binary.LittleEndian.Uint64(bm[w*8:]) >> (it.pos & 63)
				if word == 0 {
					it.pos = (w + 1) << 6
					continue
				}
				v := it.pos + uint32(bits.TrailingZeros64(word))
				it.pos = v + 1
				return it.hi | v, true
			}
		case kindRun:
			runs := binary.LittleEndian.Uint32(it.p.payload[it.off:])
			for it.pos < runs {
				e := it.p.payload[it.off+4+4*it.pos:]
				last := uint32(binary.LittleEndian.Uint16(e[2:]))
				if it.run <= last {
					v := it.hi | it.run
					it.run++
					return v, true
				}
				it.pos++
				if it.pos < runs {
					e = it.p.payload[it.off+4+4*it.pos:]
					it.run = uint32(binary.LittleEndian.Uint16(e))
				}
			}
		}
		it.nextContainer()
	}
	return 0, false
}

// Intersect returns the sorted intersection of two posting lists,
// operating container-by-container on the compressed form: only
// containers whose 64K block appears on both sides are touched at all.
func Intersect(a, b Postings) []uint32 {
	var out []uint32
	ai, bi := 0, 0
	for ai < a.n && bi < b.n {
		ak, _, _, _ := a.container(ai)
		bk, _, _, _ := b.container(bi)
		switch {
		case ak < bk:
			ai++
		case bk < ak:
			bi++
		default:
			out = appendContainerOp(out, a, ai, b, bi, true)
			ai++
			bi++
		}
	}
	return out
}

// Union returns the sorted union of two posting lists.
func Union(a, b Postings) []uint32 {
	var out []uint32
	ai, bi := 0, 0
	for ai < a.n || bi < b.n {
		switch {
		case bi >= b.n:
			out = appendContainer(out, a, ai)
			ai++
		case ai >= a.n:
			out = appendContainer(out, b, bi)
			bi++
		default:
			ak, _, _, _ := a.container(ai)
			bk, _, _, _ := b.container(bi)
			switch {
			case ak < bk:
				out = appendContainer(out, a, ai)
				ai++
			case bk < ak:
				out = appendContainer(out, b, bi)
				bi++
			default:
				out = appendContainerOp(out, a, ai, b, bi, false)
				ai++
				bi++
			}
		}
	}
	return out
}

func appendContainer(out []uint32, p Postings, i int) []uint32 {
	key, _, _, _ := p.container(i)
	hi := key << 16
	words := containerWords(p, i)
	for w, word := range words {
		for word != 0 {
			b := bits.TrailingZeros64(word)
			out = append(out, hi|uint32(w*64+b))
			word &= word - 1
		}
	}
	return out
}

// appendContainerOp appends the AND (intersect=true) or OR of two
// same-key containers.
func appendContainerOp(out []uint32, a Postings, ai int, b Postings, bi int, intersect bool) []uint32 {
	ak, akind, acard, _ := a.container(ai)
	_, bkind, bcard, _ := b.container(bi)
	hi := ak << 16
	// Array∩array fast path: merge directly without word expansion.
	if intersect && akind == kindArray && bkind == kindArray {
		av := arrayValues(a, ai, acard)
		bv := arrayValues(b, bi, bcard)
		x, y := 0, 0
		for x < len(av) && y < len(bv) {
			switch {
			case av[x] < bv[y]:
				x++
			case bv[y] < av[x]:
				y++
			default:
				out = append(out, hi|uint32(av[x]))
				x++
				y++
			}
		}
		return out
	}
	aw := containerWords(a, ai)
	bw := containerWords(b, bi)
	for w := range aw {
		word := aw[w] & bw[w]
		if !intersect {
			word = aw[w] | bw[w]
		}
		for word != 0 {
			bit := bits.TrailingZeros64(word)
			out = append(out, hi|uint32(w*64+bit))
			word &= word - 1
		}
	}
	return out
}

func arrayValues(p Postings, i int, card uint32) []uint16 {
	_, _, _, off := p.container(i)
	vals := make([]uint16, card)
	for k := range vals {
		vals[k] = binary.LittleEndian.Uint16(p.payload[off+2*uint32(k):])
	}
	return vals
}

// containerWords expands one container into a 1024-word bitmap.
func containerWords(p Postings, i int) []uint64 {
	_, kind, card, off := p.container(i)
	words := make([]uint64, bitmapBytes/8)
	switch kind {
	case kindArray:
		a := p.payload[off:]
		for k := uint32(0); k < card; k++ {
			v := binary.LittleEndian.Uint16(a[2*k:])
			words[v>>6] |= 1 << (v & 63)
		}
	case kindBitmap:
		bm := p.payload[off : off+bitmapBytes]
		for w := range words {
			words[w] = binary.LittleEndian.Uint64(bm[w*8:])
		}
	case kindRun:
		runs := binary.LittleEndian.Uint32(p.payload[off:])
		for r := uint32(0); r < runs; r++ {
			e := p.payload[off+4+4*r:]
			start := binary.LittleEndian.Uint16(e)
			last := binary.LittleEndian.Uint16(e[2:])
			for v := uint32(start); v <= uint32(last); v++ {
				words[v>>6] |= 1 << (v & 63)
			}
		}
	}
	return words
}

// EncodeSorted is a convenience for callers holding possibly-unsorted
// ids: it sorts and dedups a copy, then encodes.
func EncodeSorted(ids []uint32) []byte {
	c := slices.Clone(ids)
	slices.Sort(c)
	c = slices.Compact(c)
	return EncodePostings(c)
}
