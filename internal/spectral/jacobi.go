// Package spectral computes eigenvalues of small symmetric matrices with the
// cyclic Jacobi rotation method. gCode uses it to derive the spectral
// component of vertex signatures: the top eigenvalues of the adjacency matrix
// of each vertex's level-N path tree.
package spectral

import (
	"math"
	"sort"
)

// Symmetric is a dense symmetric matrix of order N stored in full.
type Symmetric struct {
	N int
	A []float64 // row-major N*N
}

// NewSymmetric returns a zero symmetric matrix of order n.
func NewSymmetric(n int) *Symmetric {
	return &Symmetric{N: n, A: make([]float64, n*n)}
}

// Set assigns A[i][j] = A[j][i] = v.
func (m *Symmetric) Set(i, j int, v float64) {
	m.A[i*m.N+j] = v
	m.A[j*m.N+i] = v
}

// At returns A[i][j].
func (m *Symmetric) At(i, j int) float64 { return m.A[i*m.N+j] }

// Eigenvalues returns all eigenvalues of the matrix, sorted descending.
// The method is the cyclic Jacobi algorithm: repeatedly zero the largest
// off-diagonal entries with Givens rotations until the off-diagonal norm is
// below tolerance. The input matrix is not modified.
func (m *Symmetric) Eigenvalues() []float64 {
	n := m.N
	if n == 0 {
		return nil
	}
	if n == 1 {
		return []float64{m.A[0]}
	}
	a := append([]float64(nil), m.A...)
	at := func(i, j int) float64 { return a[i*n+j] }
	set := func(i, j int, v float64) { a[i*n+j] = v; a[j*n+i] = v }

	const maxSweeps = 64
	const eps = 1e-12
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += at(i, j) * at(i, j)
			}
		}
		if off < eps {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := at(p, q)
				if math.Abs(apq) < eps/float64(n*n) {
					continue
				}
				app, aqq := at(p, p), at(q, q)
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				// Apply the rotation to rows/columns p and q.
				for k := 0; k < n; k++ {
					if k == p || k == q {
						continue
					}
					akp, akq := at(k, p), at(k, q)
					set(k, p, c*akp-s*akq)
					set(k, q, s*akp+c*akq)
				}
				set(p, p, app-t*apq)
				set(q, q, aqq+t*apq)
				set(p, q, 0)
			}
		}
	}
	eig := make([]float64, n)
	for i := 0; i < n; i++ {
		eig[i] = at(i, i)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(eig)))
	return eig
}

// TopEigenvalues returns the k largest eigenvalues (padded with zeros when
// the matrix order is below k).
func (m *Symmetric) TopEigenvalues(k int) []float64 {
	eig := m.Eigenvalues()
	out := make([]float64, k)
	copy(out, eig)
	return out
}
