package spectral

import (
	"math"
	"math/rand"
	"testing"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-8 }

func TestEigenvaluesDiagonal(t *testing.T) {
	m := NewSymmetric(3)
	m.Set(0, 0, 5)
	m.Set(1, 1, -2)
	m.Set(2, 2, 7)
	eig := m.Eigenvalues()
	want := []float64{7, 5, -2}
	for i := range want {
		if !almost(eig[i], want[i]) {
			t.Fatalf("eig = %v, want %v", eig, want)
		}
	}
}

func TestEigenvalues2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	m := NewSymmetric(2)
	m.Set(0, 0, 2)
	m.Set(1, 1, 2)
	m.Set(0, 1, 1)
	eig := m.Eigenvalues()
	if !almost(eig[0], 3) || !almost(eig[1], 1) {
		t.Fatalf("eig = %v, want [3 1]", eig)
	}
}

func TestEigenvaluesPathGraph(t *testing.T) {
	// Adjacency matrix of P3 has eigenvalues sqrt(2), 0, -sqrt(2).
	m := NewSymmetric(3)
	m.Set(0, 1, 1)
	m.Set(1, 2, 1)
	eig := m.Eigenvalues()
	s2 := math.Sqrt(2)
	if !almost(eig[0], s2) || !almost(eig[1], 0) || !almost(eig[2], -s2) {
		t.Fatalf("eig = %v, want [√2 0 -√2]", eig)
	}
}

func TestEigenvaluesCompleteGraph(t *testing.T) {
	// K_n adjacency: eigenvalues n-1 (once) and -1 (n-1 times).
	n := 6
	m := NewSymmetric(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			m.Set(i, j, 1)
		}
	}
	eig := m.Eigenvalues()
	if !almost(eig[0], float64(n-1)) {
		t.Fatalf("largest eig = %v, want %d", eig[0], n-1)
	}
	for i := 1; i < n; i++ {
		if !almost(eig[i], -1) {
			t.Fatalf("eig[%d] = %v, want -1", i, eig[i])
		}
	}
}

func TestTraceAndNormInvariants(t *testing.T) {
	// Sum of eigenvalues = trace; sum of squares = Frobenius norm^2.
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(10)
		m := NewSymmetric(n)
		trace, frob := 0.0, 0.0
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.NormFloat64()
				m.Set(i, j, v)
				if i == j {
					trace += v
					frob += v * v
				} else {
					frob += 2 * v * v
				}
			}
		}
		eig := m.Eigenvalues()
		sum, sq := 0.0, 0.0
		for _, e := range eig {
			sum += e
			sq += e * e
		}
		if math.Abs(sum-trace) > 1e-6 {
			t.Fatalf("trial %d: eig sum %v != trace %v", trial, sum, trace)
		}
		if math.Abs(sq-frob) > 1e-6 {
			t.Fatalf("trial %d: eig square sum %v != frob %v", trial, sq, frob)
		}
		// Sorted descending.
		for i := 1; i < len(eig); i++ {
			if eig[i] > eig[i-1] {
				t.Fatalf("trial %d: eigenvalues not sorted", trial)
			}
		}
	}
}

func TestTopEigenvaluesPadding(t *testing.T) {
	m := NewSymmetric(2)
	m.Set(0, 0, 3)
	m.Set(1, 1, 1)
	top := m.TopEigenvalues(4)
	if len(top) != 4 || !almost(top[0], 3) || !almost(top[1], 1) || top[2] != 0 || top[3] != 0 {
		t.Fatalf("TopEigenvalues = %v", top)
	}
}

func TestEmptyAndSingleton(t *testing.T) {
	if eig := NewSymmetric(0).Eigenvalues(); len(eig) != 0 {
		t.Fatalf("empty matrix eigenvalues = %v", eig)
	}
	m := NewSymmetric(1)
	m.Set(0, 0, -4)
	if eig := m.Eigenvalues(); len(eig) != 1 || !almost(eig[0], -4) {
		t.Fatalf("1x1 eigenvalues = %v", eig)
	}
}

func TestInputNotModified(t *testing.T) {
	m := NewSymmetric(3)
	m.Set(0, 1, 2)
	m.Set(1, 2, -1)
	before := append([]float64(nil), m.A...)
	m.Eigenvalues()
	for i := range before {
		if m.A[i] != before[i] {
			t.Fatalf("Eigenvalues modified the input matrix")
		}
	}
}
