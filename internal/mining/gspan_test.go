package mining

import (
	"context"
	"testing"

	"repro/internal/dfscode"
	"repro/internal/graph"
	"repro/internal/subiso"
)

func pathGraph(labels ...graph.Label) *graph.Graph {
	g := graph.New(0)
	for _, l := range labels {
		g.AddVertex(l)
	}
	for i := 1; i < len(labels); i++ {
		g.MustAddEdge(int32(i-1), int32(i))
	}
	return g
}

func triangle(a, b, c graph.Label) *graph.Graph {
	g := pathGraph(a, b, c)
	g.MustAddEdge(2, 0)
	return g
}

func minePatterns(t *testing.T, ds *graph.Dataset, cfg Config) []*Pattern {
	t.Helper()
	var out []*Pattern
	err := Mine(context.Background(), ds, cfg, func(p *Pattern) bool {
		out = append(out, p)
		return true
	})
	if err != nil {
		t.Fatalf("Mine: %v", err)
	}
	return out
}

func TestMineSingleEdges(t *testing.T) {
	ds := graph.NewDataset("t")
	ds.Add(pathGraph(1, 2))
	ds.Add(pathGraph(1, 2))
	ds.Add(pathGraph(1, 3))
	patterns := minePatterns(t, ds, Config{MinSupportRatio: 0.5, MaxEdges: 1})
	// Edge (1,2) support 2/3 >= 0.5; edge (1,3) support 1/3 < 0.5.
	if len(patterns) != 1 {
		t.Fatalf("patterns = %d, want 1", len(patterns))
	}
	p := patterns[0]
	if len(p.Code) != 1 || p.Code[0].LI != 1 || p.Code[0].LJ != 2 {
		t.Fatalf("wrong pattern: %v", p.Code)
	}
	if !p.Support.Equal(graph.IDSet{0, 1}) {
		t.Fatalf("support = %v", p.Support)
	}
}

func TestMineEmitsEachPatternOnce(t *testing.T) {
	ds := graph.NewDataset("t")
	for i := 0; i < 4; i++ {
		ds.Add(triangle(1, 1, 1))
	}
	patterns := minePatterns(t, ds, Config{MinSupportRatio: 0.5, MaxEdges: 3})
	seen := map[string]bool{}
	for _, p := range patterns {
		k := p.Code.Key()
		if seen[k] {
			t.Fatalf("pattern emitted twice: %v", p.Code)
		}
		seen[k] = true
	}
	// All-1 triangle dataset: patterns are the 1-edge, 2-edge path, 3-edge
	// path... no wait, a triangle has only 3 vertices: patterns are edge,
	// path-2, triangle.
	if len(patterns) != 3 {
		t.Fatalf("patterns = %d, want 3 (edge, wedge, triangle)", len(patterns))
	}
}

func TestMineSupportsAreExact(t *testing.T) {
	ds := graph.NewDataset("t")
	ds.Add(triangle(1, 2, 3))
	ds.Add(pathGraph(1, 2, 3))
	ds.Add(pathGraph(2, 1, 2))
	patterns := minePatterns(t, ds, Config{MinSupportRatio: 0.3, MaxEdges: 3})
	for _, p := range patterns {
		pg := p.Code.Graph()
		var want graph.IDSet
		for _, g := range ds.Graphs {
			if subiso.Exists(pg, g) {
				want = append(want, g.ID())
			}
		}
		if !p.Support.Equal(want) {
			t.Errorf("pattern %v: support %v, want %v", p.Code, p.Support, want)
		}
	}
}

func TestMineFindsAllFrequentPatterns(t *testing.T) {
	// Brute-force cross-check on a small dataset: every connected subgraph
	// pattern (up to 3 edges) contained in >= minSup graphs must be found.
	ds := graph.NewDataset("t")
	ds.Add(triangle(1, 2, 2))
	ds.Add(triangle(1, 2, 2))
	ds.Add(pathGraph(2, 1, 2, 2))
	patterns := minePatterns(t, ds, Config{MinSupportRatio: 0.6, MaxEdges: 3})
	byKey := map[string]*Pattern{}
	for _, p := range patterns {
		byKey[p.Code.Key()] = p
	}
	// The wedge 2-1-2 appears in all graphs.
	wedge := pathGraph(2, 1, 2)
	key := dfscode.Minimum(wedge).Key()
	p, ok := byKey[key]
	if !ok {
		t.Fatalf("wedge 2-1-2 not mined")
	}
	if len(p.Support) != 3 {
		t.Fatalf("wedge support = %v", p.Support)
	}
	// The triangle appears in two graphs (2/3 >= 0.6).
	tri := triangle(1, 2, 2)
	triKey := dfscode.Minimum(tri).Key()
	tp, ok := byKey[triKey]
	if !ok {
		t.Fatalf("triangle not mined")
	}
	if len(tp.Support) != 2 {
		t.Fatalf("triangle support = %v", tp.Support)
	}
}

func TestMineTreesOnly(t *testing.T) {
	ds := graph.NewDataset("t")
	for i := 0; i < 3; i++ {
		ds.Add(triangle(1, 1, 1))
	}
	patterns := minePatterns(t, ds, Config{MinSupportRatio: 0.5, MaxEdges: 3, TreesOnly: true})
	for _, p := range patterns {
		pg := p.Code.Graph()
		if pg.NumEdges() != pg.NumVertices()-1 {
			t.Fatalf("non-tree pattern mined in TreesOnly mode: %v", p.Code)
		}
	}
	// edge and wedge only (triangle excluded).
	if len(patterns) != 2 {
		t.Fatalf("patterns = %d, want 2", len(patterns))
	}
}

func TestMineParentLinks(t *testing.T) {
	ds := graph.NewDataset("t")
	for i := 0; i < 3; i++ {
		ds.Add(pathGraph(1, 2, 3))
	}
	patterns := minePatterns(t, ds, Config{MinSupportRatio: 0.5, MaxEdges: 2})
	for _, p := range patterns {
		if len(p.Code) == 1 {
			if p.Parent != nil {
				t.Fatalf("single-edge pattern has a parent")
			}
		} else {
			if p.Parent == nil {
				t.Fatalf("multi-edge pattern lacks a parent")
			}
			if len(p.Parent.Code) != len(p.Code)-1 {
				t.Fatalf("parent is not one edge smaller")
			}
		}
	}
}

func TestMineCancellation(t *testing.T) {
	ds := graph.NewDataset("t")
	for i := 0; i < 5; i++ {
		ds.Add(triangle(1, 1, 1))
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Mine(ctx, ds, Config{MinSupportRatio: 0.1, MaxEdges: 5}, func(p *Pattern) bool { return true })
	if err == nil {
		t.Fatalf("cancelled mine should error")
	}
}

func TestMineMaxPatternsBudget(t *testing.T) {
	ds := graph.NewDataset("t")
	for i := 0; i < 3; i++ {
		ds.Add(triangle(1, 1, 1))
	}
	count := 0
	err := Mine(context.Background(), ds, Config{MinSupportRatio: 0.1, MaxEdges: 3, MaxPatterns: 2},
		func(p *Pattern) bool { count++; return true })
	if err == nil {
		t.Fatalf("budget exhaustion should surface as an error")
	}
	if count > 2 {
		t.Fatalf("emitted %d patterns past the budget", count)
	}
}

func TestSupportRatio(t *testing.T) {
	p := &Pattern{Support: graph.IDSet{0, 1}}
	if r := p.SupportRatio(4); r != 0.5 {
		t.Fatalf("SupportRatio = %v", r)
	}
	if r := p.SupportRatio(0); r != 0 {
		t.Fatalf("SupportRatio(0) = %v", r)
	}
}
