// Package mining implements gSpan-style frequent subgraph mining over a
// graph dataset (Yan & Han, ICDM 2002), the feature-extraction engine of the
// frequent-mining indexing methods: gIndex mines general subgraphs, Tree+Δ
// mines subtrees (gSpan restricted to forward extensions enumerates exactly
// the trees).
//
// Patterns are enumerated by rightmost-path extension of minimum DFS codes,
// with embedding (projection) lists carried along so support counting and
// extension discovery never re-run subgraph isomorphism. Non-minimal codes
// are pruned via the canonical-code check, so every pattern is emitted
// exactly once, parents before children.
package mining

import (
	"context"
	"math"
	"sort"

	"repro/internal/dfscode"
	"repro/internal/graph"
)

// Config controls a mining run.
type Config struct {
	// MinSupportRatio is the fraction of dataset graphs that must contain a
	// pattern for it to be frequent (paper: 0.1 for gIndex and Tree+Δ).
	MinSupportRatio float64
	// MaxEdges bounds the pattern size in edges (paper: 10).
	MaxEdges int
	// TreesOnly restricts mining to acyclic patterns (Tree+Δ).
	TreesOnly bool
	// MaxPatterns aborts the run after emitting this many patterns
	// (0 = unlimited). It is a safety valve for stress tests; the paper's
	// analogue is the 8-hour experiment timeout.
	MaxPatterns int
}

// Pattern is one frequent pattern discovered by Mine.
type Pattern struct {
	// Code is the minimum DFS code of the pattern.
	Code dfscode.Code
	// Support lists the dataset graphs containing the pattern (sorted).
	Support graph.IDSet
	// Parent is the pattern this one was grown from (one edge smaller),
	// or nil for single-edge patterns.
	Parent *Pattern
}

// SupportRatio returns |Support| / n for a dataset of n graphs.
func (p *Pattern) SupportRatio(n int) float64 {
	if n == 0 {
		return 0
	}
	return float64(len(p.Support)) / float64(n)
}

// embedding is one occurrence of a pattern: the graph and the pattern-vertex
// to graph-vertex mapping.
type embedding struct {
	gid graph.ID
	m   []int32
}

// Mine enumerates all frequent patterns of ds under cfg, invoking fn for
// each in DFS (parent-before-child) order. fn returning false stops the
// pattern's expansion but continues with its siblings; use ctx to abort the
// whole run.
func Mine(ctx context.Context, ds *graph.Dataset, cfg Config, fn func(p *Pattern) bool) error {
	if cfg.MaxEdges <= 0 {
		cfg.MaxEdges = 10
	}
	minSup := int(math.Ceil(cfg.MinSupportRatio * float64(ds.NumAlive())))
	if minSup < 1 {
		minSup = 1
	}
	m := &miner{ds: ds, cfg: cfg, minSup: minSup, fn: fn, ctx: ctx}
	return m.run()
}

type miner struct {
	ds      *graph.Dataset
	cfg     Config
	minSup  int
	fn      func(*Pattern) bool
	ctx     context.Context
	emitted int
}

// extGroup accumulates the embeddings of one extension entry.
type extGroup struct {
	entry dfscode.Entry
	embs  []embedding
}

func (m *miner) run() error {
	// Seed: all frequent single-edge patterns, grouped by (0,1,li,lj) with
	// li <= lj so each undirected edge instance appears once per valid
	// orientation of the code entry.
	seeds := make(map[dfscode.Entry]*extGroup)
	for _, g := range m.ds.Graphs {
		if err := m.ctx.Err(); err != nil {
			return err
		}
		if !m.ds.Alive(g.ID()) {
			continue // tombstoned graphs seed no embeddings
		}
		for _, e := range g.Edges() {
			lu, lv := g.Label(e[0]), g.Label(e[1])
			orients := [][2]int32{{e[0], e[1]}}
			if lu != lv {
				if lu > lv {
					orients[0] = [2]int32{e[1], e[0]}
				}
			} else {
				orients = append(orients, [2]int32{e[1], e[0]})
			}
			for _, o := range orients {
				ent := dfscode.Entry{I: 0, J: 1, LI: g.Label(o[0]), LJ: g.Label(o[1])}
				grp := seeds[ent]
				if grp == nil {
					grp = &extGroup{entry: ent}
					seeds[ent] = grp
				}
				grp.embs = append(grp.embs, embedding{gid: g.ID(), m: []int32{o[0], o[1]}})
			}
		}
	}
	ordered := make([]*extGroup, 0, len(seeds))
	for _, grp := range seeds {
		ordered = append(ordered, grp)
	}
	sort.Slice(ordered, func(a, b int) bool {
		return dfscode.Compare(ordered[a].entry, ordered[b].entry) < 0
	})
	for _, grp := range ordered {
		sup := supportOf(grp.embs)
		if len(sup) < m.minSup {
			continue
		}
		p := &Pattern{Code: dfscode.Code{grp.entry}, Support: sup}
		if err := m.grow(p, grp.embs); err != nil {
			return err
		}
	}
	return nil
}

func supportOf(embs []embedding) graph.IDSet {
	var out graph.IDSet
	var prev graph.ID = -1
	// Embeddings are produced in graph order, so support comes out sorted.
	for _, e := range embs {
		if e.gid != prev {
			out = append(out, e.gid)
			prev = e.gid
		}
	}
	return out
}

// grow emits p and recursively extends it.
func (m *miner) grow(p *Pattern, embs []embedding) error {
	if err := m.ctx.Err(); err != nil {
		return err
	}
	m.emitted++
	if m.cfg.MaxPatterns > 0 && m.emitted > m.cfg.MaxPatterns {
		return context.DeadlineExceeded
	}
	if !m.fn(p) || len(p.Code) >= m.cfg.MaxEdges {
		return nil
	}

	// Pattern-side structures for extension generation.
	rmPath := rightmostPath(p.Code)
	rm := rmPath[0]
	nVerts := int32(p.Code.NumVertices())
	patGraph := p.Code.Graph()

	groups := make(map[dfscode.Entry]*extGroup)
	addExt := func(ent dfscode.Entry, emb embedding, newVertex int32) {
		grp := groups[ent]
		if grp == nil {
			grp = &extGroup{entry: ent}
			groups[ent] = grp
		}
		nm := emb.m
		if newVertex >= 0 {
			nm = append(append(make([]int32, 0, len(emb.m)+1), emb.m...), newVertex)
		}
		grp.embs = append(grp.embs, embedding{gid: emb.gid, m: nm})
	}

	onRM := make(map[int32]bool, len(rmPath))
	for _, v := range rmPath {
		onRM[v] = true
	}

	for _, emb := range embs {
		g := m.ds.Graph(emb.gid)
		inImage := make(map[int32]int32, len(emb.m)) // graph vertex -> pattern idx
		for pi, gv := range emb.m {
			inImage[gv] = int32(pi)
		}
		// Backward extensions from the rightmost vertex (skipped for trees).
		if !m.cfg.TreesOnly {
			grm := emb.m[rm]
			for _, gw := range g.Neighbors(grm) {
				pi, mapped := inImage[gw]
				if !mapped || pi == rm || !onRM[pi] {
					continue
				}
				if patGraph.HasEdge(rm, pi) {
					continue // edge already in the pattern
				}
				ent := dfscode.Entry{I: rm, J: pi, LI: patGraph.Label(rm), LJ: patGraph.Label(pi)}
				addExt(ent, emb, -1)
			}
		}
		// Forward extensions from every rightmost-path vertex.
		for _, pu := range rmPath {
			gu := emb.m[pu]
			for _, gw := range g.Neighbors(gu) {
				if _, mapped := inImage[gw]; mapped {
					continue
				}
				ent := dfscode.Entry{I: pu, J: nVerts, LI: patGraph.Label(pu), LJ: g.Label(gw)}
				addExt(ent, emb, gw)
			}
		}
	}

	ordered := make([]*extGroup, 0, len(groups))
	for _, grp := range groups {
		ordered = append(ordered, grp)
	}
	sort.Slice(ordered, func(a, b int) bool {
		return dfscode.Compare(ordered[a].entry, ordered[b].entry) < 0
	})
	for _, grp := range ordered {
		sup := supportOf(grp.embs)
		if len(sup) < m.minSup {
			continue
		}
		child := append(p.Code.Clone(), grp.entry)
		if !dfscode.IsMinimal(child) {
			continue // duplicate pattern, reached by a smaller code elsewhere
		}
		cp := &Pattern{Code: child, Support: sup, Parent: p}
		if err := m.grow(cp, grp.embs); err != nil {
			return err
		}
	}
	return nil
}

// rightmostPath returns the rightmost path of a DFS code (rightmost vertex
// first, root last).
func rightmostPath(c dfscode.Code) []int32 {
	rm := int32(0)
	for _, e := range c {
		if e.Forward() && e.J > rm {
			rm = e.J
		}
	}
	path := []int32{rm}
	cur := rm
	for cur != 0 {
		parent := int32(-1)
		for _, e := range c {
			if e.Forward() && e.J == cur {
				parent = e.I
				break
			}
		}
		if parent < 0 {
			break
		}
		path = append(path, parent)
		cur = parent
	}
	return path
}
