package gindex

import (
	"context"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/subiso"
	"repro/internal/workload"
)

func pathGraph(labels ...graph.Label) *graph.Graph {
	g := graph.New(0)
	for _, l := range labels {
		g.AddVertex(l)
	}
	for i := 1; i < len(labels); i++ {
		g.MustAddEdge(int32(i-1), int32(i))
	}
	return g
}

func build(t *testing.T, ds *graph.Dataset, opts Options) *Index {
	t.Helper()
	ix := New(opts)
	if err := ix.Build(context.Background(), ds); err != nil {
		t.Fatalf("Build: %v", err)
	}
	return ix
}

func TestSingleEdgeFeaturesIndexed(t *testing.T) {
	ds := graph.NewDataset("t")
	for i := 0; i < 5; i++ {
		ds.Add(pathGraph(1, 2, 3))
	}
	ix := build(t, ds, Options{MaxFeatureSize: 3})
	if ix.NumFeatures() == 0 {
		t.Fatalf("no features indexed")
	}
	cands, err := ix.Candidates(pathGraph(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 5 {
		t.Errorf("candidates = %v, want all 5", cands)
	}
}

func TestFiltersByFrequentFeature(t *testing.T) {
	// 5 graphs have edge (1,2); 5 have edge (3,4). Both edges are frequent,
	// so each is indexed, and a (1,2) query must exclude the (3,4) graphs.
	ds := graph.NewDataset("t")
	for i := 0; i < 5; i++ {
		ds.Add(pathGraph(1, 2))
	}
	for i := 0; i < 5; i++ {
		ds.Add(pathGraph(3, 4))
	}
	ix := build(t, ds, Options{MaxFeatureSize: 2})
	cands, err := ix.Candidates(pathGraph(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !cands.Equal(graph.IDSet{0, 1, 2, 3, 4}) {
		t.Errorf("candidates = %v, want the five (1,2) graphs", cands)
	}
}

func TestInfrequentEdgeCannotFilter(t *testing.T) {
	// Edge (7,8) appears in one graph out of 20: infrequent, not indexed,
	// so a query containing it keeps all graphs as candidates (sound but
	// imprecise — exactly the paper's account of frequent-mining methods).
	ds := graph.NewDataset("t")
	ds.Add(pathGraph(7, 8))
	for i := 0; i < 19; i++ {
		ds.Add(pathGraph(1, 2))
	}
	ix := build(t, ds, Options{MaxFeatureSize: 2})
	cands, err := ix.Candidates(pathGraph(7, 8))
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 20 {
		t.Errorf("candidates = %d graphs, want all 20 (no filtering possible)", len(cands))
	}
}

func TestNoFalseNegativesRandom(t *testing.T) {
	ds := gen.Synthetic(gen.SynthConfig{NumGraphs: 25, MeanNodes: 12, MeanDensity: 0.22, NumLabels: 3, Seed: 10})
	ix := build(t, ds, Options{MaxFeatureSize: 5})
	qs, err := workload.Generate(ds, workload.Config{NumQueries: 12, QueryEdges: 6, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		cands, err := ix.Candidates(q)
		if err != nil {
			t.Fatal(err)
		}
		for _, g := range ds.Graphs {
			if subiso.Exists(q, g) && !cands.Contains(g.ID()) {
				t.Errorf("query %d: false negative for graph %d", i, g.ID())
			}
		}
	}
}

func TestDiscriminativeGatePrunesFeatures(t *testing.T) {
	ds := gen.Synthetic(gen.SynthConfig{NumGraphs: 30, MeanNodes: 10, MeanDensity: 0.25, NumLabels: 2, Seed: 12})
	loose := build(t, ds, Options{MaxFeatureSize: 4, DiscriminativeGate: 1.0001})
	strict := build(t, ds, Options{MaxFeatureSize: 4, DiscriminativeGate: 100})
	if strict.NumFeatures() >= loose.NumFeatures() {
		t.Errorf("stricter gate should index fewer features: %d vs %d",
			strict.NumFeatures(), loose.NumFeatures())
	}
}

func TestFragmentBudgetStillSound(t *testing.T) {
	ds := gen.Synthetic(gen.SynthConfig{NumGraphs: 15, MeanNodes: 12, MeanDensity: 0.25, NumLabels: 2, Seed: 13})
	ix := build(t, ds, Options{MaxFeatureSize: 4, FragmentBudget: 3})
	qs, err := workload.Generate(ds, workload.Config{NumQueries: 6, QueryEdges: 6, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		cands, err := ix.Candidates(q)
		if err != nil {
			t.Fatal(err)
		}
		for _, g := range ds.Graphs {
			if subiso.Exists(q, g) && !cands.Contains(g.ID()) {
				t.Errorf("query %d: tiny budget caused a false negative on %d", i, g.ID())
			}
		}
	}
}

func TestUnbuiltAndSize(t *testing.T) {
	ix := New(Options{})
	if _, err := ix.Candidates(pathGraph(1)); err == nil {
		t.Errorf("want error before Build")
	}
	ds := graph.NewDataset("t")
	for i := 0; i < 3; i++ {
		ds.Add(pathGraph(1, 2))
	}
	built := build(t, ds, Options{MaxFeatureSize: 2})
	if built.SizeBytes() <= 0 {
		t.Errorf("SizeBytes = %d", built.SizeBytes())
	}
}
