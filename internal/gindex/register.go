package gindex

import (
	"repro/internal/core"
	"repro/internal/engine"
)

// DefaultMaxPatterns is the registry default for the mining budget — the
// harness's analogue of the paper's 8-hour kill switch. Direct gindex.New
// callers keep Options.MaxPatterns zero = unlimited.
const DefaultMaxPatterns = 200000

func init() {
	engine.Register(engine.Descriptor{
		Name:    "gindex",
		Display: "gIndex",
		Help:    "frequent discriminative subgraph features mined with gSpan",
		Notes: "Reproduces gIndex (Yan, Yu, Han, SIGMOD 2004). Indexing mines frequent subgraphs " +
			"with gSpan and keeps only the discriminative ones, so build time is dominated by mining " +
			"and — as the paper's scalability experiments stress — can explode on large or dense " +
			"datasets; `maxPatterns` is this harness's analogue of the paper's 8-hour kill switch " +
			"(exceeding it fails the build, surfacing as DNF in benchmarks). Strong filtering power " +
			"per indexed feature; query-time fragment enumeration is capped by `fragmentBudget`.",
		Fields: []engine.Field{
			{Name: "maxFeatureSize", Kind: engine.Int, Default: DefaultMaxFeatureSize, Help: "maximum mined feature size in edges"},
			{Name: "supportRatio", Kind: engine.Float, Default: DefaultSupportRatio, Help: "frequent-mining support threshold"},
			{Name: "discriminativeGate", Kind: engine.Float, Default: DefaultDiscriminativeGate, Help: "minimum discriminative ratio to index a feature"},
			{Name: "fragmentBudget", Kind: engine.Int, Default: DefaultFragmentBudget, Help: "query-time fragment enumeration cap"},
			{Name: "maxPatterns", Kind: engine.Int, Default: DefaultMaxPatterns, Help: "mining budget; 0 = unlimited"},
		},
		Factory: func(p engine.Params) (core.Method, error) {
			return New(Options{
				MaxFeatureSize:     p.Int("maxFeatureSize"),
				SupportRatio:       p.Float("supportRatio"),
				DiscriminativeGate: p.Float("discriminativeGate"),
				FragmentBudget:     p.Int("fragmentBudget"),
				MaxPatterns:        p.Int("maxPatterns"),
			}), nil
		},
	})
}
