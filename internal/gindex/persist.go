package gindex

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/canon"
	"repro/internal/graph"
)

// indexDTO is the serialized form of a gIndex.
type indexDTO struct {
	MaxFeatureSize     int
	SupportRatio       float64
	DiscriminativeGate float64
	FragmentBudget     int
	NumGraphs          int
	Keys               []string
	Postings           [][]int32
}

// SaveIndex implements core.Persistable.
func (ix *Index) SaveIndex(w io.Writer) error {
	if !ix.built {
		return fmt.Errorf("gindex: save before Build")
	}
	dto := indexDTO{
		MaxFeatureSize:     ix.opts.MaxFeatureSize,
		SupportRatio:       ix.opts.SupportRatio,
		DiscriminativeGate: ix.opts.DiscriminativeGate,
		FragmentBudget:     ix.opts.FragmentBudget,
		NumGraphs:          ix.nGraphs,
	}
	for key, post := range ix.postings {
		dto.Keys = append(dto.Keys, string(key))
		ids := make([]int32, len(post))
		for i, id := range post {
			ids[i] = int32(id)
		}
		dto.Postings = append(dto.Postings, ids)
	}
	return gob.NewEncoder(w).Encode(&dto)
}

// LoadIndex implements core.Persistable.
func (ix *Index) LoadIndex(r io.Reader, ds *graph.Dataset) error {
	var dto indexDTO
	if err := gob.NewDecoder(r).Decode(&dto); err != nil {
		return fmt.Errorf("gindex: load: %w", err)
	}
	if dto.NumGraphs != ds.Len() {
		return fmt.Errorf("gindex: load: index covers %d graphs, dataset has %d", dto.NumGraphs, ds.Len())
	}
	if len(dto.Keys) != len(dto.Postings) {
		return fmt.Errorf("gindex: load: corrupt postings")
	}
	ix.opts = Options{
		MaxFeatureSize:     dto.MaxFeatureSize,
		SupportRatio:       dto.SupportRatio,
		DiscriminativeGate: dto.DiscriminativeGate,
		FragmentBudget:     dto.FragmentBudget,
	}
	ix.opts.fill()
	ix.nGraphs = dto.NumGraphs
	ix.postings = make(map[canon.Key]graph.IDSet, len(dto.Keys))
	for i, key := range dto.Keys {
		post := make(graph.IDSet, len(dto.Postings[i]))
		for j, id := range dto.Postings[i] {
			post[j] = graph.ID(id)
		}
		ix.postings[canon.Key(key)] = post
	}
	ix.built = true
	return nil
}
