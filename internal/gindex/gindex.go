// Package gindex implements gIndex (Yan, Yu, Han, SIGMOD 2004): frequent
// subgraph features are mined from the dataset with gSpan; among the
// frequent features, only the discriminative ones — those whose posting list
// is substantially smaller than the intersection of their indexed
// sub-features' postings — are kept. Queries are answered by enumerating the
// query's fragments smallest-first, expanding only fragments present in the
// index (a fragment absent from the index never spawns supergraph
// fragments), and intersecting the postings of the maximal indexed fragments
// along each expansion path.
//
// gIndex is one of the six indexed subgraph query processing methods
// compared in the reproduced paper (Katsarou, Ntarmos, Triantafillou,
// PVLDB 2015), where its mining-bound build cost is a central scalability
// finding; register.go exposes it to the engine registry as "gindex".
package gindex

import (
	"context"
	"iter"
	"sort"

	"repro/internal/canon"
	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/graph"
	"repro/internal/mining"
)

// Defaults from §4.1 of the paper.
const (
	DefaultMaxFeatureSize     = 10
	DefaultSupportRatio       = 0.1
	DefaultDiscriminativeGate = 2.0
	// DefaultFragmentBudget bounds query-time fragment enumeration; it is
	// this reproduction's analogue of the paper's experiment kill switch
	// (stopping expansion early only weakens filtering, never correctness).
	DefaultFragmentBudget = 20000
)

// Options configures a gIndex.
type Options struct {
	// MaxFeatureSize is the maximum mined feature size in edges (paper: 10).
	MaxFeatureSize int
	// SupportRatio is the frequent-mining support threshold (paper: 0.1).
	SupportRatio float64
	// DiscriminativeGate is the minimum ratio |∩ sub-feature postings| /
	// |feature posting| for a frequent feature to be indexed (paper: 2.0).
	DiscriminativeGate float64
	// FragmentBudget caps query fragment enumeration (0 = default).
	FragmentBudget int
	// MaxPatterns caps mining (0 = unlimited); mirrors the 8-hour limit.
	MaxPatterns int
}

func (o *Options) fill() {
	if o.MaxFeatureSize <= 0 {
		o.MaxFeatureSize = DefaultMaxFeatureSize
	}
	if o.SupportRatio <= 0 {
		o.SupportRatio = DefaultSupportRatio
	}
	if o.DiscriminativeGate <= 0 {
		o.DiscriminativeGate = DefaultDiscriminativeGate
	}
	if o.FragmentBudget <= 0 {
		o.FragmentBudget = DefaultFragmentBudget
	}
}

// Index is a built gIndex. Create with New, then Build.
type Index struct {
	opts     Options
	nGraphs  int
	postings map[canon.Key]graph.IDSet
	built    bool
}

// New returns an unbuilt gIndex.
func New(opts Options) *Index {
	opts.fill()
	return &Index{opts: opts}
}

// Name implements core.Method.
func (ix *Index) Name() string { return "gIndex" }

// Build implements core.Method: gSpan mining with on-the-fly discriminative
// selection. chainInter carries, down each mining branch, the intersection
// of the postings of the selected ancestors of the current pattern; a
// pattern is selected when that intersection is at least DiscriminativeGate
// times larger than its own posting (i.e., the feature meaningfully shrinks
// the candidate estimate). Size-1 features are always selected.
func (ix *Index) Build(ctx context.Context, ds *graph.Dataset) error {
	ix.nGraphs = ds.Len()
	ix.postings = make(map[canon.Key]graph.IDSet)

	universe := graph.UniverseIDSet(ds.Len())
	chain := map[*mining.Pattern]graph.IDSet{}

	cfg := mining.Config{
		MinSupportRatio: ix.opts.SupportRatio,
		MaxEdges:        ix.opts.MaxFeatureSize,
		MaxPatterns:     ix.opts.MaxPatterns,
	}
	err := mining.Mine(ctx, ds, cfg, func(p *mining.Pattern) bool {
		var inter graph.IDSet
		if p.Parent == nil {
			inter = universe
		} else {
			inter = chain[p.Parent]
		}
		selected := false
		if len(p.Code) == 1 {
			selected = true
		} else if float64(len(inter)) >= ix.opts.DiscriminativeGate*float64(len(p.Support)) {
			selected = true
		}
		if selected {
			key, ok := canon.GraphKey(p.Code.Graph())
			if ok {
				ix.postings[key] = p.Support
			}
			chain[p] = inter.Intersect(p.Support)
		} else {
			chain[p] = inter
		}
		return true
	})
	// chain entries for finished subtrees are garbage; let the map go.
	if err != nil {
		return err
	}
	ix.built = true
	return nil
}

// fragment is one connected edge subset of the query during filtering.
type fragment struct {
	edgeIDs []int // sorted
	key     canon.Key
	posting graph.IDSet
}

func edgeSetKey(ids []int) string {
	buf := make([]byte, 0, len(ids)*3)
	for _, id := range ids {
		buf = append(buf, byte(id), byte(id>>8), byte(id>>16))
	}
	return string(buf)
}

// Candidates implements core.Method: the intersection of the maximal
// indexed fragments' postings.
func (ix *Index) Candidates(q *graph.Graph) (graph.IDSet, error) {
	if !ix.built {
		return nil, core.ErrNotBuilt
	}
	cands := graph.UniverseIDSet(ix.nGraphs)
	for _, post := range ix.maximalPostings(q) {
		cands = cands.Intersect(post)
		if len(cands) == 0 {
			break
		}
	}
	return cands, nil
}

// chunkSize is the lazy producer's emission granularity.
const chunkSize = 512

var _ core.CandidateChunker = (*Index)(nil)

// CandidateChunks implements core.CandidateChunker. Fragment mining is
// inherently eager — which fragments are maximal is only known once
// expansion finishes — so the mining runs up front, but the posting
// intersection itself streams candidate-major over the smallest maximal
// posting, emitting ascending ID chunks.
func (ix *Index) CandidateChunks(q *graph.Graph) (iter.Seq[graph.IDSet], error) {
	if !ix.built {
		return nil, core.ErrNotBuilt
	}
	posts := ix.maximalPostings(q)
	if len(posts) == 0 {
		n := ix.nGraphs
		return func(yield func(graph.IDSet) bool) {
			for lo := 0; lo < n; lo += chunkSize {
				hi := min(lo+chunkSize, n)
				chunk := make(graph.IDSet, 0, hi-lo)
				for id := lo; id < hi; id++ {
					chunk = append(chunk, graph.ID(id))
				}
				if !yield(chunk) {
					return
				}
			}
		}, nil
	}
	drv := 0
	for k := range posts {
		if len(posts[k]) < len(posts[drv]) {
			drv = k
		}
	}
	driver := posts[drv]
	others := append(append([]graph.IDSet(nil), posts[:drv]...), posts[drv+1:]...)
	return func(yield func(graph.IDSet) bool) {
		js := make([]int, len(others))
		var chunk graph.IDSet
		for _, id := range driver {
			ok := true
			for k, p := range others {
				j := js[k]
				for j < len(p) && p[j] < id {
					j++
				}
				js[k] = j
				if j >= len(p) || p[j] != id {
					ok = false
					break
				}
			}
			if ok {
				chunk = append(chunk, id)
			}
			if len(chunk) >= chunkSize {
				if !yield(chunk) {
					return
				}
				chunk = nil
			}
		}
		if len(chunk) > 0 {
			yield(chunk)
		}
	}, nil
}

// maximalPostings mines the query's indexed fragments and returns the
// postings of the maximal ones along each expansion path, in deterministic
// order, without intersecting them.
func (ix *Index) maximalPostings(q *graph.Graph) []graph.IDSet {
	es := features.NewEdgeSet(q)

	// Level 1: single edges.
	frontier := map[string]*fragment{}
	for e := 0; e < es.NumEdges(); e++ {
		ids := []int{e}
		sub, _ := es.Subgraph(ids)
		key, _ := canon.GraphKey(sub)
		if post, ok := ix.postings[key]; ok {
			frontier[edgeSetKey(ids)] = &fragment{edgeIDs: ids, key: key, posting: post}
		}
		// An absent single edge still cannot rule graphs out here: absence
		// from the index only means "infrequent or non-discriminative".
	}

	var posts []graph.IDSet
	visited := map[string]bool{}
	budget := ix.opts.FragmentBudget

	for level := 1; level < ix.opts.MaxFeatureSize && len(frontier) > 0 && budget > 0; level++ {
		next := map[string]*fragment{}
		// Deterministic iteration order.
		keys := make([]string, 0, len(frontier))
		for k := range frontier {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, fk := range keys {
			fr := frontier[fk]
			hasIndexedExt := false
			for _, ext := range extensions(es, fr.edgeIDs) {
				ek := edgeSetKey(ext)
				if visited[ek] {
					hasIndexedExt = true // extension already known indexed
					continue
				}
				budget--
				if budget <= 0 {
					break
				}
				sub, _ := es.Subgraph(ext)
				key, ok := canon.GraphKey(sub)
				if !ok {
					continue
				}
				post, indexed := ix.postings[key]
				if !indexed {
					continue
				}
				hasIndexedExt = true
				visited[ek] = true
				next[ek] = &fragment{edgeIDs: ext, key: key, posting: post}
			}
			if !hasIndexedExt || budget <= 0 {
				// fr is maximal along its expansion paths.
				posts = append(posts, fr.posting)
			}
		}
		frontier = next
	}
	// Any fragments remaining at the final level are maximal.
	keys := make([]string, 0, len(frontier))
	for k := range frontier {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, fk := range keys {
		posts = append(posts, frontier[fk].posting)
	}
	return posts
}

// extensions returns the edge sets obtained by adding one adjacent edge to
// ids (each result sorted).
func extensions(es *features.EdgeSet, ids []int) [][]int {
	in := make(map[int]bool, len(ids))
	vs := make(map[int32]bool, len(ids)+1)
	for _, id := range ids {
		in[id] = true
		e := es.Edge(id)
		vs[e[0]] = true
		vs[e[1]] = true
	}
	seen := map[int]bool{}
	var out [][]int
	for e := 0; e < es.NumEdges(); e++ {
		if in[e] || seen[e] {
			continue
		}
		ep := es.Edge(e)
		if !vs[ep[0]] && !vs[ep[1]] {
			continue
		}
		seen[e] = true
		ext := make([]int, 0, len(ids)+1)
		ext = append(ext, ids...)
		ext = append(ext, e)
		sort.Ints(ext)
		out = append(out, ext)
	}
	return out
}

// SizeBytes implements core.Method.
func (ix *Index) SizeBytes() int64 {
	var sz int64
	for key, post := range ix.postings {
		sz += int64(len(key)) + int64(len(post))*4 + 48
	}
	return sz
}

// NumFeatures returns the number of indexed (frequent and discriminative)
// features.
func (ix *Index) NumFeatures() int { return len(ix.postings) }
