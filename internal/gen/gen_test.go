package gen

import (
	"math"
	"testing"
)

func TestSyntheticBasicShape(t *testing.T) {
	cfg := SynthConfig{NumGraphs: 50, MeanNodes: 40, MeanDensity: 0.05, NumLabels: 8, Seed: 1}
	ds := Synthetic(cfg)
	if ds.Len() != 50 {
		t.Fatalf("graphs = %d", ds.Len())
	}
	if err := ds.Validate(); err != nil {
		t.Fatalf("invalid dataset: %v", err)
	}
	s := ds.ComputeStats()
	if math.Abs(s.AvgNodes-40) > 8 {
		t.Errorf("AvgNodes = %v, want about 40", s.AvgNodes)
	}
	if math.Abs(s.AvgDensity-0.05) > 0.02 {
		t.Errorf("AvgDensity = %v, want about 0.05", s.AvgDensity)
	}
	if s.NumLabels > 8 {
		t.Errorf("NumLabels = %d > 8", s.NumLabels)
	}
	if s.NumDisconnected != 0 {
		t.Errorf("synthetic graphs should be connected, got %d disconnected", s.NumDisconnected)
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	cfg := SynthConfig{NumGraphs: 10, MeanNodes: 20, MeanDensity: 0.1, NumLabels: 4, Seed: 7}
	a := Synthetic(cfg)
	b := Synthetic(cfg)
	if a.Len() != b.Len() {
		t.Fatalf("nondeterministic graph count")
	}
	for i := range a.Graphs {
		ga, gb := a.Graphs[i], b.Graphs[i]
		if ga.NumVertices() != gb.NumVertices() || ga.NumEdges() != gb.NumEdges() {
			t.Fatalf("graph %d differs between runs", i)
		}
		for v := int32(0); int(v) < ga.NumVertices(); v++ {
			if ga.Label(v) != gb.Label(v) {
				t.Fatalf("labels differ at graph %d vertex %d", i, v)
			}
		}
	}
	c := Synthetic(SynthConfig{NumGraphs: 10, MeanNodes: 20, MeanDensity: 0.1, NumLabels: 4, Seed: 8})
	same := true
	for i := range a.Graphs {
		if a.Graphs[i].NumEdges() != c.Graphs[i].NumEdges() {
			same = false
			break
		}
	}
	if same {
		t.Errorf("different seeds produced identical edge counts everywhere")
	}
}

func TestSyntheticDensitySweep(t *testing.T) {
	// Feasible densities at 30 nodes (d >= 2/30 for a connected graph).
	for _, d := range []float64{0.1, 0.2, 0.3} {
		ds := Synthetic(SynthConfig{NumGraphs: 30, MeanNodes: 30, MeanDensity: d, NumLabels: 5, Seed: 3})
		s := ds.ComputeStats()
		if math.Abs(s.AvgDensity-d) > d*0.5+0.01 {
			t.Errorf("density %v: measured %v", d, s.AvgDensity)
		}
	}
}

func TestSyntheticNodeCountHeld(t *testing.T) {
	// The node count is the x-axis of Figure 2 and must be exact even when
	// the requested density is infeasible for a connected graph.
	ds := Synthetic(SynthConfig{NumGraphs: 10, MeanNodes: 50, MeanDensity: 0.005, NumLabels: 4, Seed: 4})
	trees := 0
	for _, g := range ds.Graphs {
		if g.NumVertices() != 50 {
			t.Fatalf("node count %d, want 50", g.NumVertices())
		}
		if g.NumEdges() == g.NumVertices()-1 {
			trees++
		}
	}
	// Infeasible density floors the edge count: tree-dominated regime.
	if trees < 8 {
		t.Errorf("low-density graphs: %d/10 trees, want most", trees)
	}
}

func TestSyntheticTinyGraphs(t *testing.T) {
	// Degenerate parameters must not hang or produce invalid graphs.
	ds := Synthetic(SynthConfig{NumGraphs: 5, MeanNodes: 2, MeanDensity: 0.9, NumLabels: 1, Seed: 2})
	if err := ds.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
	for _, g := range ds.Graphs {
		if g.NumVertices() < 2 {
			t.Errorf("graph with < 2 vertices")
		}
	}
}

func TestRealisticPresetsMatchTable1(t *testing.T) {
	// Scaled-down versions keep the statistical regime; verify against the
	// scaled targets with generous tolerances (they are random draws).
	cases := []struct {
		cfg    RealConfig
		gDiv   float64
		nDiv   float64
		minDeg float64
		maxDeg float64
	}{
		{AIDS, 100, 1, 1.2, 3.0}, // sparse: avg degree ~2
		{PDBS, 10, 10, 1.2, 3.0}, // avg degree ~2
		{PCM, 4, 4, 10, 40},      // dense: avg degree ~23
		{PPI, 1, 20, 4, 20},      // medium degree ~10.9
	}
	for _, c := range cases {
		cfg := c.cfg.Scaled(c.gDiv, c.nDiv)
		cfg.Seed = 5
		ds := Realistic(cfg)
		if err := ds.Validate(); err != nil {
			t.Fatalf("%s: invalid: %v", cfg.Name, err)
		}
		s := ds.ComputeStats()
		if s.NumGraphs != cfg.NumGraphs {
			t.Errorf("%s: graphs = %d, want %d", cfg.Name, s.NumGraphs, cfg.NumGraphs)
		}
		if math.Abs(s.AvgNodes-cfg.AvgNodes) > cfg.AvgNodes*0.5 {
			t.Errorf("%s: AvgNodes = %v, want about %v", cfg.Name, s.AvgNodes, cfg.AvgNodes)
		}
		if s.AvgDegree < c.minDeg || s.AvgDegree > c.maxDeg {
			t.Errorf("%s: AvgDegree = %v, want in [%v,%v]", cfg.Name, s.AvgDegree, c.minDeg, c.maxDeg)
		}
		if s.NumLabels > cfg.NumLabels {
			t.Errorf("%s: labels = %d > %d", cfg.Name, s.NumLabels, cfg.NumLabels)
		}
	}
}

func TestRealisticDisconnectedFraction(t *testing.T) {
	cfg := PCM.Scaled(4, 4) // DisconnectedPct = 1.0
	cfg.Seed = 9
	ds := Realistic(cfg)
	s := ds.ComputeStats()
	if s.NumDisconnected < ds.Len()*8/10 {
		t.Errorf("PCM: %d/%d disconnected, want nearly all", s.NumDisconnected, ds.Len())
	}
	// AIDS has a small disconnected fraction.
	acfg := AIDS.Scaled(200, 1)
	acfg.Seed = 9
	ads := Realistic(acfg)
	as := ads.ComputeStats()
	if as.NumDisconnected > ads.Len()/2 {
		t.Errorf("AIDS: %d/%d disconnected, want a small fraction", as.NumDisconnected, ads.Len())
	}
}

func TestScaledKeepsDegree(t *testing.T) {
	orig := PPI
	scaled := PPI.Scaled(1, 20)
	degOrig := 2 * orig.AvgEdges / orig.AvgNodes
	degScaled := 2 * scaled.AvgEdges / scaled.AvgNodes
	if math.Abs(degOrig-degScaled) > degOrig*0.2 {
		t.Errorf("scaling changed avg degree: %v -> %v", degOrig, degScaled)
	}
	if scaled.AvgNodes >= orig.AvgNodes {
		t.Errorf("scaling did not reduce node count")
	}
	if scaled.NumGraphs != orig.NumGraphs {
		t.Errorf("graphDiv 1 changed graph count")
	}
}

func TestLabelSkewConcentratesFrequencies(t *testing.T) {
	// With a strong Zipf skew, the most frequent label should dominate;
	// uniform (skew 0) should spread mass evenly.
	base := RealConfig{
		Name: "skew", NumGraphs: 60, NumLabels: 20,
		AvgNodes: 30, StdDevNodes: 2, AvgEdges: 32,
		LabelsPerGraph: 6, Seed: 77,
	}
	topShare := func(skew float64) float64 {
		cfg := base
		cfg.LabelSkew = skew
		ds := Realistic(cfg)
		counts := map[int]int{}
		total := 0
		for _, g := range ds.Graphs {
			for _, l := range g.Labels() {
				counts[int(l)]++
				total++
			}
		}
		best := 0
		for _, c := range counts {
			if c > best {
				best = c
			}
		}
		return float64(best) / float64(total)
	}
	uniform := topShare(0)
	skewed := topShare(1.5)
	if skewed < 2*uniform {
		t.Errorf("skew 1.5 top-label share %.3f not clearly above uniform %.3f", skewed, uniform)
	}
}

func TestZipfWeights(t *testing.T) {
	w := zipfWeights(4, 1)
	if w[0] != 1 || w[1] != 0.5 || w[3] != 0.25 {
		t.Fatalf("zipf s=1 weights = %v", w)
	}
	u := zipfWeights(3, 0)
	if u[0] != 1 || u[1] != 1 || u[2] != 1 {
		t.Fatalf("zipf s=0 weights = %v", u)
	}
}

func TestLabelName(t *testing.T) {
	if labelName(0) != "A" || labelName(25) != "Z" {
		t.Fatalf("single letter names wrong")
	}
	if labelName(26) != "AA" || labelName(27) != "AB" {
		t.Fatalf("double letter names wrong: %s %s", labelName(26), labelName(27))
	}
}
