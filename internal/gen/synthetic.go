// Package gen generates graph datasets: a reimplementation of the GraphGen
// synthetic generator the paper uses for its scalability study (§4.2), and
// statistical simulators for the four real datasets (AIDS, PDBS, PCM, PPI)
// matched to the characteristics of Table 1.
//
// All generation is deterministic given the seed.
package gen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/graph"
)

// SynthConfig parameterizes the GraphGen-style generator with the paper's
// key parameters: number of graphs, mean nodes per graph, mean density, and
// number of distinct labels.
type SynthConfig struct {
	NumGraphs int
	MeanNodes int
	// MeanDensity is the target mean graph density (Definition 4).
	MeanDensity float64
	NumLabels   int
	Seed        int64

	// StdDevEdges is the standard deviation of the per-graph edge count
	// (GraphGen: 5). Zero selects the default.
	StdDevEdges float64
	// StdDevDensity is the standard deviation of the per-graph density
	// (GraphGen: 0.01). Zero selects the default.
	StdDevDensity float64
}

func (c SynthConfig) fill() SynthConfig {
	if c.StdDevEdges == 0 {
		c.StdDevEdges = 5
	}
	if c.StdDevDensity == 0 {
		c.StdDevDensity = 0.01
	}
	return c
}

// Name returns a descriptive dataset name encoding the parameters.
func (c SynthConfig) Name() string {
	return fmt.Sprintf("synth-g%d-n%d-d%g-l%d", c.NumGraphs, c.MeanNodes, c.MeanDensity, c.NumLabels)
}

// Synthetic generates a dataset following the GraphGen procedure described
// in §4.2 of the paper: for every graph, a random edge count (normal around
// the configured mean with stddev 5) and density (normal, stddev 0.01) are
// drawn; the node count follows from the two; vertices receive uniform
// labels; edges are chosen uniformly at random (on top of a random spanning
// tree, so every synthetic graph is connected, as the paper observes of
// GraphGen's output).
func Synthetic(cfg SynthConfig) *graph.Dataset {
	cfg = cfg.fill()
	rng := rand.New(rand.NewSource(cfg.Seed))
	ds := graph.NewDataset(cfg.Name())
	// Register the label alphabet so serialized datasets are readable.
	for l := 0; l < cfg.NumLabels; l++ {
		ds.Dict.Intern(fmt.Sprintf("L%d", l))
	}
	// The node count is held at the requested mean (it is the x-axis of the
	// paper's Figure 2); the per-graph edge count follows the drawn density,
	// floored at nv-1 so every graph is connected. The floor reproduces the
	// paper's observation that GraphGen's lowest-density datasets are
	// dominated by tree-shaped graphs: when d*nv(nv-1)/2 < nv-1, the graph
	// degenerates to a spanning tree.
	n := cfg.MeanNodes
	if n < 2 {
		n = 2
	}
	for i := 0; i < cfg.NumGraphs; i++ {
		// GraphGen draws per-graph size and density around the configured
		// means; at a fixed node count both collapse to one degree of
		// freedom, so the density draw (stddev 0.01) carries the size noise
		// (stddev 5 edges) as well.
		d := cfg.MeanDensity + rng.NormFloat64()*cfg.StdDevDensity
		jitter := rng.NormFloat64() * cfg.StdDevEdges
		if d < 1e-6 {
			d = 1e-6
		}
		maxEdges := n * (n - 1) / 2
		edges := int(math.Round(d*float64(n)*float64(n-1)/2 + jitter))
		if edges < n-1 {
			edges = n - 1
		}
		if edges > maxEdges {
			edges = maxEdges
		}
		ds.Add(randomConnectedGraph(rng, n, edges, cfg.NumLabels))
	}
	return ds
}

// randomConnectedGraph builds a connected graph with exactly nv vertices and
// edges edges (nv-1 <= edges <= nv(nv-1)/2): a uniform random recursive tree
// plus uniformly chosen extra edges.
func randomConnectedGraph(rng *rand.Rand, nv, edges, numLabels int) *graph.Graph {
	g := graph.NewWithCapacity(0, nv)
	for i := 0; i < nv; i++ {
		g.AddVertex(graph.Label(rng.Intn(numLabels)))
	}
	for i := 1; i < nv; i++ {
		g.MustAddEdge(int32(rng.Intn(i)), int32(i))
	}
	remaining := edges - (nv - 1)
	for remaining > 0 {
		u := int32(rng.Intn(nv))
		v := int32(rng.Intn(nv))
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.MustAddEdge(u, v)
		remaining--
	}
	return g
}
