package gen

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/graph"
)

// RealConfig parameterizes the simulators for the four real datasets of the
// paper (Table 1). The raw biological data is not available offline, so we
// generate datasets that match the structural statistics the indexing
// methods are sensitive to: graph count, label alphabet size, node count
// mean and standard deviation, edge count (through density), per-graph label
// diversity, and the fraction of disconnected graphs.
type RealConfig struct {
	Name            string
	NumGraphs       int
	NumLabels       int
	AvgNodes        float64
	StdDevNodes     float64
	AvgEdges        float64
	LabelsPerGraph  float64 // mean distinct labels per graph
	DisconnectedPct float64 // fraction of graphs with >1 component
	// LabelSkew is the Zipf exponent of the label frequency distribution
	// (0 = uniform). Real chemical and biological data is heavily skewed —
	// a few labels (C, N, O; common residue types) dominate — which is what
	// makes common substructures frequent enough for the mining-based
	// indexes to capture.
	LabelSkew float64
	Seed      int64
}

// The four presets mirror Table 1 of the paper.
var (
	// AIDS: many small sparse graphs (antiviral screen compounds).
	AIDS = RealConfig{
		Name: "AIDS", NumGraphs: 40000, NumLabels: 62,
		AvgNodes: 45, StdDevNodes: 21.7, AvgEdges: 46.95,
		LabelsPerGraph: 4.4, DisconnectedPct: 3157.0 / 40000,
		LabelSkew: 1.2, // C, N, O dominate small molecules
	}
	// PDBS: a moderate number of large, very sparse graphs (protein
	// backbones).
	PDBS = RealConfig{
		Name: "PDBS", NumGraphs: 600, NumLabels: 10,
		AvgNodes: 2939, StdDevNodes: 3215, AvgEdges: 3064,
		LabelsPerGraph: 6.4, DisconnectedPct: 0.6,
		LabelSkew: 0.8,
	}
	// PCM: medium graphs with high average degree (protein contact maps);
	// all graphs disconnected in the original.
	PCM = RealConfig{
		Name: "PCM", NumGraphs: 200, NumLabels: 21,
		AvgNodes: 377, StdDevNodes: 186.7, AvgEdges: 4340,
		LabelsPerGraph: 18.9, DisconnectedPct: 1.0,
		LabelSkew: 0.5,
	}
	// PPI: very few, very large, medium-degree graphs (protein interaction
	// networks); all disconnected.
	PPI = RealConfig{
		Name: "PPI", NumGraphs: 20, NumLabels: 46,
		AvgNodes: 4942, StdDevNodes: 2648, AvgEdges: 26667,
		LabelsPerGraph: 28.5, DisconnectedPct: 1.0,
		LabelSkew: 0.5,
	}
)

// Scaled returns a copy of the config with the graph count and node counts
// scaled down by the given factors (>= 1). It keeps the average degree
// constant (edge counts scale linearly with node counts), preserving the
// structural regime that drives the indexing methods' costs — path and
// subtree enumeration work grows with degree — while fitting a smaller time
// budget.
func (c RealConfig) Scaled(graphDiv, nodeDiv float64) RealConfig {
	out := c
	if graphDiv > 1 {
		out.NumGraphs = max(1, int(float64(c.NumGraphs)/graphDiv))
	}
	if nodeDiv > 1 {
		out.AvgNodes = math.Max(8, c.AvgNodes/nodeDiv)
		out.StdDevNodes = c.StdDevNodes / nodeDiv
		ratio := out.AvgNodes / c.AvgNodes
		out.AvgEdges = math.Max(out.AvgNodes-1, c.AvgEdges*ratio)
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Realistic generates a dataset matching cfg's statistics.
func Realistic(cfg RealConfig) *graph.Dataset {
	rng := rand.New(rand.NewSource(cfg.Seed))
	ds := graph.NewDataset(cfg.Name)
	for l := 0; l < cfg.NumLabels; l++ {
		ds.Dict.Intern(labelName(l))
	}
	// Edges scale linearly with the vertex count (constant average degree),
	// matching the sparse biological networks the presets model: a 2x bigger
	// protein has ~2x the contacts, not 4x.
	avgDegree := 2 * cfg.AvgEdges / cfg.AvgNodes
	weights := zipfWeights(cfg.NumLabels, cfg.LabelSkew)
	for i := 0; i < cfg.NumGraphs; i++ {
		nv := int(math.Round(cfg.AvgNodes + rng.NormFloat64()*cfg.StdDevNodes))
		if nv < 2 {
			nv = 2
		}
		edges := int(math.Round(avgDegree * float64(nv) / 2))
		palette := labelPalette(rng, weights, cfg.LabelsPerGraph)
		paletteW := zipfWeights(len(palette), cfg.LabelSkew)
		disconnected := rng.Float64() < cfg.DisconnectedPct
		ds.Add(realisticGraph(rng, nv, edges, palette, paletteW, disconnected))
	}
	return ds
}

func labelName(l int) string {
	// Two-letter chemical-element-like names keep files readable.
	const alpha = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
	if l < 26 {
		return string(alpha[l])
	}
	return string(alpha[l/26-1]) + string(alpha[l%26])
}

// zipfWeights returns per-label sampling weights following a Zipf law with
// exponent s (all-equal weights for s = 0).
func zipfWeights(numLabels int, s float64) []float64 {
	w := make([]float64, numLabels)
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1), s)
	}
	return w
}

// weightedPick draws one index from weights (which need not be normalized).
func weightedPick(rng *rand.Rand, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		total += w
	}
	x := rng.Float64() * total
	for i, w := range weights {
		x -= w
		if x <= 0 {
			return i
		}
	}
	return len(weights) - 1
}

// labelPalette draws the per-graph distinct label subset — weighted without
// replacement, so skewed configs concentrate palettes on the common labels —
// with expected size labelsPerGraph. The palette keeps the labels'
// global-frequency order: position 0 is the graph's most common label.
func labelPalette(rng *rand.Rand, weights []float64, labelsPerGraph float64) []graph.Label {
	numLabels := len(weights)
	k := int(math.Round(labelsPerGraph + rng.NormFloat64()*labelsPerGraph/4))
	if k < 1 {
		k = 1
	}
	if k > numLabels {
		k = numLabels
	}
	remaining := append([]float64(nil), weights...)
	var chosen []int
	for len(chosen) < k {
		i := weightedPick(rng, remaining)
		if remaining[i] == 0 {
			continue
		}
		remaining[i] = 0
		chosen = append(chosen, i)
	}
	sort.Ints(chosen) // global-frequency order (weights are rank-sorted)
	palette := make([]graph.Label, k)
	for i, l := range chosen {
		palette[i] = graph.Label(l)
	}
	return palette
}

// realisticGraph builds one graph: connected (spanning tree + extra edges)
// or split into 2-4 components when disconnected is set. Vertex labels are
// drawn from the palette with the same skew that chose the palette, so a
// skewed config yields graphs dominated by their first palette label.
func realisticGraph(rng *rand.Rand, nv, edges int, palette []graph.Label, paletteW []float64, disconnected bool) *graph.Graph {
	g := graph.NewWithCapacity(0, nv)
	for i := 0; i < nv; i++ {
		g.AddVertex(palette[weightedPick(rng, paletteW)])
	}
	parts := 1
	if disconnected && nv >= 4 {
		parts = 2 + rng.Intn(3)
		if parts > nv/2 {
			parts = nv / 2
		}
	}
	// Partition vertices into contiguous ranges, one per component.
	bounds := make([]int, parts+1)
	bounds[parts] = nv
	for p := 1; p < parts; p++ {
		bounds[p] = bounds[p-1] + 1 + rng.Intn(nv-bounds[p-1]-(parts-p))
	}
	total := 0
	for p := 0; p < parts; p++ {
		lo, hi := bounds[p], bounds[p+1]
		for i := lo + 1; i < hi; i++ {
			g.MustAddEdge(int32(lo+rng.Intn(i-lo)), int32(i))
			total++
		}
	}
	// Extra edges within components.
	for attempts := 0; total < edges && attempts < edges*20; attempts++ {
		p := rng.Intn(parts)
		lo, hi := bounds[p], bounds[p+1]
		if hi-lo < 2 {
			continue
		}
		u := int32(lo + rng.Intn(hi-lo))
		v := int32(lo + rng.Intn(hi-lo))
		if u == v || g.HasEdge(u, v) {
			continue
		}
		g.MustAddEdge(u, v)
		total++
	}
	return g
}
