package features

import "repro/internal/graph"

// EdgeSet indexes the edges of a graph for connected-edge-set enumeration.
type EdgeSet struct {
	g     *graph.Graph
	edges [][2]int32 // edge id -> endpoints (u < v)
	byID  map[[2]int32]int
	inc   [][]int // vertex -> incident edge ids
}

// NewEdgeSet prepares the edge index of g.
func NewEdgeSet(g *graph.Graph) *EdgeSet {
	es := &EdgeSet{
		g:     g,
		edges: g.Edges(),
		byID:  make(map[[2]int32]int, g.NumEdges()),
		inc:   make([][]int, g.NumVertices()),
	}
	for id, e := range es.edges {
		es.byID[e] = id
		es.inc[e[0]] = append(es.inc[e[0]], id)
		es.inc[e[1]] = append(es.inc[e[1]], id)
	}
	return es
}

// Edge returns the endpoints of edge id.
func (es *EdgeSet) Edge(id int) [2]int32 { return es.edges[id] }

// NumEdges returns the number of edges.
func (es *EdgeSet) NumEdges() int { return len(es.edges) }

// VisitConnectedEdgeSets enumerates every connected set of 1..maxEdges edges
// of g exactly once, in the style of the ESU algorithm applied to the line
// graph. fn receives the edge-id set (reused; copy to retain). fn returning
// false aborts; the return value reports whether enumeration completed.
func (es *EdgeSet) VisitConnectedEdgeSets(maxEdges int, fn func(edgeIDs []int) bool) bool {
	m := len(es.edges)
	inSet := make([]bool, m)
	inExt := make([]bool, m)
	seen := make([]bool, m) // edges ever added to an extension at this root
	set := make([]int, 0, maxEdges)

	var recurse func(ext []int) bool
	recurse = func(ext []int) bool {
		if !fn(set) {
			return false
		}
		if len(set) == maxEdges {
			return true
		}
		for i := 0; i < len(ext); i++ {
			e := ext[i]
			inExt[e] = false
			// New extension candidates: edges adjacent to e, beyond the
			// root, never seen before at this root.
			newExt := ext[i+1:]
			added := 0
			u, v := es.edges[e][0], es.edges[e][1]
			for _, end := range [2]int32{u, v} {
				for _, f := range es.inc[end] {
					if f <= set[0] || inSet[f] || inExt[f] || seen[f] {
						continue
					}
					newExt = append(newExt, f)
					inExt[f] = true
					seen[f] = true
					added++
				}
			}
			set = append(set, e)
			inSet[e] = true
			ok := recurse(newExt)
			inSet[e] = false
			set = set[:len(set)-1]
			for k := 0; k < added; k++ {
				f := newExt[len(newExt)-1-k]
				inExt[f] = false
				seen[f] = false
			}
			if !ok {
				return false
			}
		}
		return true
	}

	ext := make([]int, 0, m)
	for root := 0; root < m; root++ {
		set = append(set[:0], root)
		inSet[root] = true
		ext = ext[:0]
		u, v := es.edges[root][0], es.edges[root][1]
		for _, end := range [2]int32{u, v} {
			for _, f := range es.inc[end] {
				if f > root && !inExt[f] {
					ext = append(ext, f)
					inExt[f] = true
					seen[f] = true
				}
			}
		}
		ok := recurse(ext)
		inSet[root] = false
		for _, f := range ext {
			inExt[f] = false
			seen[f] = false
		}
		if !ok {
			return false
		}
	}
	return true
}

// Subgraph materializes the pattern graph of an edge-id set, together with
// the original vertex of each pattern vertex.
func (es *EdgeSet) Subgraph(edgeIDs []int) (*graph.Graph, []int32) {
	sub := graph.NewWithCapacity(0, len(edgeIDs)+1)
	old2new := make(map[int32]int32, len(edgeIDs)+1)
	var new2old []int32
	mapV := func(v int32) int32 {
		if nv, ok := old2new[v]; ok {
			return nv
		}
		nv := sub.AddVertex(es.g.Label(v))
		old2new[v] = nv
		new2old = append(new2old, v)
		return nv
	}
	for _, id := range edgeIDs {
		e := es.edges[id]
		u, v := mapV(e[0]), mapV(e[1])
		sub.MustAddEdge(u, v)
	}
	return sub, new2old
}

// IsTree reports whether the edge-id set forms a tree (connected and
// acyclic). The enumerator guarantees connectivity, so the acyclicity test
// |V| == |E|+1 suffices.
func (es *EdgeSet) IsTree(edgeIDs []int) bool {
	vertices := make(map[int32]struct{}, len(edgeIDs)+1)
	for _, id := range edgeIDs {
		vertices[es.edges[id][0]] = struct{}{}
		vertices[es.edges[id][1]] = struct{}{}
	}
	return len(vertices) == len(edgeIDs)+1
}

// VisitSubtrees enumerates every subtree (connected acyclic edge set) of g
// with 1..maxEdges edges exactly once. It is VisitConnectedEdgeSets with a
// treeness filter pushed into the recursion: growth that closes a cycle is
// emitted by the general enumerator but never yielded here.
func (es *EdgeSet) VisitSubtrees(maxEdges int, fn func(edgeIDs []int) bool) bool {
	return es.VisitConnectedEdgeSets(maxEdges, func(edgeIDs []int) bool {
		if !es.IsTree(edgeIDs) {
			return true // skip but continue
		}
		return fn(edgeIDs)
	})
}
