package features

import (
	"math/rand"
	"testing"

	"repro/internal/canon"
	"repro/internal/graph"
)

func path(labels ...graph.Label) *graph.Graph {
	g := graph.New(0)
	for _, l := range labels {
		g.AddVertex(l)
	}
	for i := 1; i < len(labels); i++ {
		g.MustAddEdge(int32(i-1), int32(i))
	}
	return g
}

func cycle(labels ...graph.Label) *graph.Graph {
	g := path(labels...)
	g.MustAddEdge(int32(len(labels)-1), 0)
	return g
}

func clique(n int, l graph.Label) *graph.Graph {
	g := graph.New(0)
	for i := 0; i < n; i++ {
		g.AddVertex(l)
	}
	for i := int32(0); int(i) < n; i++ {
		for j := i + 1; int(j) < n; j++ {
			g.MustAddEdge(i, j)
		}
	}
	return g
}

func countPaths(g *graph.Graph, maxEdges int) map[int]int {
	byLen := map[int]int{}
	VisitPaths(g, maxEdges, func(vs []int32) bool {
		byLen[len(vs)-1]++
		return true
	})
	return byLen
}

func TestVisitPathsTriangle(t *testing.T) {
	g := cycle(1, 2, 3)
	byLen := countPaths(g, 3)
	// 3 single vertices; 3 edges x 2 directions = 6; length-2 paths: each
	// ordered triple of distinct vertices = 6; length-3 impossible (only 3
	// vertices).
	if byLen[0] != 3 || byLen[1] != 6 || byLen[2] != 6 || byLen[3] != 0 {
		t.Fatalf("path counts = %v", byLen)
	}
}

func TestVisitPathsRespectsMaxEdges(t *testing.T) {
	g := path(1, 1, 1, 1, 1)
	byLen := countPaths(g, 2)
	if byLen[3] != 0 || byLen[4] != 0 {
		t.Fatalf("paths longer than max emitted: %v", byLen)
	}
	if byLen[2] != 6 { // P5 has 3 subpaths of 2 edges, each from 2 ends
		t.Fatalf("len-2 count = %d, want 6", byLen[2])
	}
}

func TestVisitPathsEachUndirectedPathTwice(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(8)
		g := graph.New(0)
		for i := 0; i < n; i++ {
			g.AddVertex(graph.Label(rng.Intn(3)))
		}
		for i := 1; i < n; i++ {
			g.MustAddEdge(int32(rng.Intn(i)), int32(i))
		}
		// Each k>=1-edge path is seen exactly twice: once per endpoint. Count
		// by endpoint-ordered vertex sequence signature.
		seen := map[string]int{}
		VisitPaths(g, 3, func(vs []int32) bool {
			if len(vs) < 2 {
				return true
			}
			// canonical: lexicographically smaller of seq and reverse
			fwd := make([]byte, 0, len(vs)*4)
			bwd := make([]byte, 0, len(vs)*4)
			for i := range vs {
				fwd = append(fwd, byte(vs[i]), 0)
				bwd = append(bwd, byte(vs[len(vs)-1-i]), 0)
			}
			k := string(fwd)
			if string(bwd) < k {
				k = string(bwd)
			}
			seen[k]++
			return true
		})
		for k, c := range seen {
			if c != 2 {
				t.Fatalf("trial %d: path %q seen %d times, want 2", trial, k, c)
			}
		}
	}
}

func TestVisitPathsAbort(t *testing.T) {
	g := clique(5, 1)
	calls := 0
	completed := VisitPaths(g, 4, func(vs []int32) bool {
		calls++
		return calls < 10
	})
	if completed {
		t.Fatalf("abort not honored")
	}
	if calls != 10 {
		t.Fatalf("calls = %d, want 10", calls)
	}
}

func TestMaximalPaths(t *testing.T) {
	// P3: maximal paths of maxEdges=4 are the two orientations of the whole
	// path (shorter than max but inextensible).
	g := path(1, 2, 3)
	var lens []int
	MaximalPaths(g, 4, func(vs []int32) bool {
		lens = append(lens, len(vs)-1)
		return true
	})
	if len(lens) != 2 || lens[0] != 2 || lens[1] != 2 {
		t.Fatalf("maximal paths of P3 = %v", lens)
	}
	// In a larger graph, paths at exactly maxEdges are emitted even if
	// extensible.
	g2 := path(1, 1, 1, 1, 1, 1)
	count3 := 0
	MaximalPaths(g2, 3, func(vs []int32) bool {
		if len(vs)-1 == 3 {
			count3++
		}
		return true
	})
	if count3 == 0 {
		t.Fatalf("no length-3 maximal paths in P6")
	}
}

func TestVisitCyclesTriangle(t *testing.T) {
	g := cycle(1, 2, 3)
	var got [][]int32
	VisitCycles(g, 4, func(vs []int32) bool {
		got = append(got, append([]int32(nil), vs...))
		return true
	})
	if len(got) != 1 {
		t.Fatalf("triangle cycles = %d, want 1", len(got))
	}
	if got[0][0] != 0 {
		t.Fatalf("cycle should start at smallest vertex: %v", got[0])
	}
}

func TestVisitCyclesK4(t *testing.T) {
	g := clique(4, 1)
	c3, c4 := 0, 0
	VisitCycles(g, 4, func(vs []int32) bool {
		switch len(vs) {
		case 3:
			c3++
		case 4:
			c4++
		}
		return true
	})
	if c3 != 4 {
		t.Errorf("triangles in K4 = %d, want 4", c3)
	}
	if c4 != 3 {
		t.Errorf("4-cycles in K4 = %d, want 3", c4)
	}
	// Max length respected.
	short := 0
	VisitCycles(g, 3, func(vs []int32) bool {
		if len(vs) > 3 {
			t.Fatalf("cycle longer than max emitted")
		}
		short++
		return true
	})
	if short != 4 {
		t.Errorf("cycles with max 3 = %d, want 4", short)
	}
}

func TestVisitCyclesNoCycles(t *testing.T) {
	g := path(1, 2, 3, 4)
	VisitCycles(g, 8, func(vs []int32) bool {
		t.Fatalf("cycle found in a path graph")
		return false
	})
}

func TestConnectedEdgeSetsUniqueAndConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 25; trial++ {
		n := 3 + rng.Intn(7)
		g := graph.New(0)
		for i := 0; i < n; i++ {
			g.AddVertex(graph.Label(rng.Intn(2)))
		}
		for i := 1; i < n; i++ {
			g.MustAddEdge(int32(rng.Intn(i)), int32(i))
		}
		for k := 0; k < n/2; k++ {
			u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
			if u != v && !g.HasEdge(u, v) {
				g.MustAddEdge(u, v)
			}
		}
		es := NewEdgeSet(g)
		seen := map[string]bool{}
		es.VisitConnectedEdgeSets(4, func(ids []int) bool {
			// uniqueness key: sorted ids
			sorted := append([]int(nil), ids...)
			for i := 1; i < len(sorted); i++ {
				for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
					sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
				}
			}
			key := ""
			for _, id := range sorted {
				key += string(rune(id)) + ","
			}
			if seen[key] {
				t.Fatalf("trial %d: duplicate edge set %v", trial, ids)
			}
			seen[key] = true
			// connectivity: subgraph of the edge set must be connected
			sub, _ := es.Subgraph(ids)
			if !sub.IsConnected() {
				t.Fatalf("trial %d: disconnected edge set %v", trial, ids)
			}
			if len(ids) > 4 {
				t.Fatalf("trial %d: oversize edge set", trial)
			}
			return true
		})
		// Cross-check count against brute force for size 1 and 2.
		m := g.NumEdges()
		want1 := m
		want2 := 0
		edges := g.Edges()
		for i := 0; i < m; i++ {
			for j := i + 1; j < m; j++ {
				if sharesVertex(edges[i], edges[j]) {
					want2++
				}
			}
		}
		got1, got2 := 0, 0
		es.VisitConnectedEdgeSets(2, func(ids []int) bool {
			switch len(ids) {
			case 1:
				got1++
			case 2:
				got2++
			}
			return true
		})
		if got1 != want1 || got2 != want2 {
			t.Fatalf("trial %d: sizes (%d,%d), want (%d,%d)", trial, got1, got2, want1, want2)
		}
	}
}

func sharesVertex(a, b [2]int32) bool {
	return a[0] == b[0] || a[0] == b[1] || a[1] == b[0] || a[1] == b[1]
}

func TestVisitSubtreesOnlyTrees(t *testing.T) {
	g := clique(4, 1)
	es := NewEdgeSet(g)
	count := 0
	es.VisitSubtrees(3, func(ids []int) bool {
		if !es.IsTree(ids) {
			t.Fatalf("non-tree emitted")
		}
		count++
		return true
	})
	// K4: 6 single edges; pairs of adjacent edges = 12 (each vertex deg 3:
	// C(3,2)=3 per vertex x 4 = 12); 3-edge subtrees: paths of 3 edges +
	// stars. Just sanity-check nonzero growth.
	if count <= 18 {
		t.Fatalf("subtree count = %d, suspiciously low", count)
	}
}

func TestSubtreeCanonicalDedupMatchesIsomorphism(t *testing.T) {
	// In an unlabelled K4, all 3-edge subtrees are either paths or stars:
	// exactly 2 distinct canonical keys.
	g := clique(4, 1)
	es := NewEdgeSet(g)
	keys := map[canon.Key]bool{}
	es.VisitSubtrees(3, func(ids []int) bool {
		if len(ids) != 3 {
			return true
		}
		sub, _ := es.Subgraph(ids)
		k, ok := canon.TreeKey(sub)
		if !ok {
			t.Fatalf("subtree not a tree")
		}
		keys[k] = true
		return true
	})
	if len(keys) != 2 {
		t.Fatalf("distinct 3-edge subtree shapes in K4 = %d, want 2", len(keys))
	}
}

func TestSubgraphMaterialization(t *testing.T) {
	g := path(5, 6, 7)
	es := NewEdgeSet(g)
	sub, new2old := es.Subgraph([]int{0, 1})
	if sub.NumVertices() != 3 || sub.NumEdges() != 2 {
		t.Fatalf("subgraph shape: %v", sub)
	}
	if len(new2old) != 3 {
		t.Fatalf("mapping size %d", len(new2old))
	}
	for nv, ov := range new2old {
		if sub.Label(int32(nv)) != g.Label(ov) {
			t.Fatalf("label mismatch in materialization")
		}
	}
}
