// Package features provides exhaustive enumeration of the graph
// substructures the indexing methods use as features: simple label paths
// (Grapes, GraphGrepSX, gCode), connected edge sets / subtrees (CT-Index,
// Tree+Δ), and simple cycles (CT-Index, Tree+Δ).
//
// All enumerators are callback-based and allocation-conscious: the visited
// structure slices are reused across calls, so callbacks must copy anything
// they retain.
package features

import "repro/internal/graph"

// VisitPaths enumerates every simple path of g with 0..maxEdges edges,
// starting from every vertex. A path with k >= 1 edges is therefore visited
// exactly twice (once from each end); the single-vertex paths once. fn
// receives the vertex sequence, which is reused — copy to retain.
//
// fn returning false aborts the enumeration; VisitPaths reports whether the
// enumeration ran to completion.
func VisitPaths(g *graph.Graph, maxEdges int, fn func(vertices []int32) bool) bool {
	n := g.NumVertices()
	onPath := make([]bool, n)
	path := make([]int32, 0, maxEdges+1)
	var dfs func(v int32) bool
	dfs = func(v int32) bool {
		path = append(path, v)
		onPath[v] = true
		ok := fn(path)
		if ok && len(path) <= maxEdges {
			for _, w := range g.Neighbors(v) {
				if onPath[w] {
					continue
				}
				if !dfs(w) {
					ok = false
					break
				}
			}
		}
		onPath[v] = false
		path = path[:len(path)-1]
		return ok
	}
	for v := int32(0); int(v) < n; v++ {
		if !dfs(v) {
			return false
		}
	}
	return true
}

// PathLabels writes the labels along the vertex path into dst (resliced as
// needed) and returns it.
func PathLabels(g *graph.Graph, vertices []int32, dst []graph.Label) []graph.Label {
	dst = dst[:0]
	for _, v := range vertices {
		dst = append(dst, g.Label(v))
	}
	return dst
}

// MaximalPaths enumerates the simple paths of g with exactly maxEdges edges,
// plus those shorter simple paths that cannot be extended at either end
// (maximal paths). GraphGrepSX builds its suffix tree from these. The vertex
// slice passed to fn is reused — copy to retain.
func MaximalPaths(g *graph.Graph, maxEdges int, fn func(vertices []int32) bool) bool {
	n := g.NumVertices()
	onPath := make([]bool, n)
	path := make([]int32, 0, maxEdges+1)
	var dfs func(v int32) bool
	dfs = func(v int32) bool {
		path = append(path, v)
		onPath[v] = true
		defer func() {
			onPath[v] = false
			path = path[:len(path)-1]
		}()
		if len(path) == maxEdges+1 {
			return fn(path)
		}
		extended := false
		for _, w := range g.Neighbors(v) {
			if onPath[w] {
				continue
			}
			extended = true
			if !dfs(w) {
				return false
			}
		}
		if !extended {
			// Inextensible at the far end; only maximal if the start end is
			// inextensible too (otherwise the longer path is found from the
			// other enumeration root).
			for _, w := range g.Neighbors(path[0]) {
				if !onPath[w] {
					return true
				}
			}
			return fn(path)
		}
		return true
	}
	for v := int32(0); int(v) < n; v++ {
		if !dfs(v) {
			return false
		}
	}
	return true
}
