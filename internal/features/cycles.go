package features

import "repro/internal/graph"

// VisitCycles enumerates every simple cycle of g with 3..maxLen edges exactly
// once. fn receives the cycle's vertex sequence (v0, v1, ..., vk-1) where v0
// is the smallest vertex on the cycle and v1 < vk-1 fixes the orientation.
// The slice is reused — copy to retain. fn returning false aborts; the return
// value reports whether the enumeration completed.
func VisitCycles(g *graph.Graph, maxLen int, fn func(vertices []int32) bool) bool {
	if maxLen < 3 {
		return true
	}
	n := g.NumVertices()
	onPath := make([]bool, n)
	path := make([]int32, 0, maxLen)

	var dfs func(v int32) bool
	dfs = func(v int32) bool {
		path = append(path, v)
		onPath[v] = true
		defer func() {
			onPath[v] = false
			path = path[:len(path)-1]
		}()
		start := path[0]
		for _, w := range g.Neighbors(v) {
			if w == start && len(path) >= 3 {
				// Close the cycle; emit only in the canonical orientation.
				if path[1] < path[len(path)-1] {
					if !fn(path) {
						return false
					}
				}
				continue
			}
			if w <= start || onPath[w] || len(path) >= maxLen {
				continue
			}
			if !dfs(w) {
				return false
			}
		}
		return true
	}

	for v := int32(0); int(v) < n; v++ {
		if !dfs(v) {
			return false
		}
	}
	return true
}

// CycleLabels writes the labels around the cycle's vertex sequence into dst.
func CycleLabels(g *graph.Graph, vertices []int32, dst []graph.Label) []graph.Label {
	return PathLabels(g, vertices, dst)
}
