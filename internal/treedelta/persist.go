package treedelta

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/canon"
	"repro/internal/graph"
)

// indexDTO is the serialized form of a Tree+Δ index: the frequent tree
// features plus the Δ features admitted so far (with their full postings).
// The transient Δ admission statistics (query counts, prototype graphs) are
// workload state, not index content, and are reset on load.
type indexDTO struct {
	MaxFeatureSize      int
	SupportRatio        float64
	DiscriminativeRatio float64
	QuerySupportToAdd   float64
	MaxCycleLen         int
	NumGraphs           int
	TreeKeys            []string
	TreePostings        [][]int32
	DeltaKeys           []string
	DeltaPostings       [][]int32
}

func packPostings(m map[canon.Key]graph.IDSet) (keys []string, postings [][]int32) {
	for key, post := range m {
		keys = append(keys, string(key))
		ids := make([]int32, len(post))
		for i, id := range post {
			ids[i] = int32(id)
		}
		postings = append(postings, ids)
	}
	return keys, postings
}

func unpackPostings(keys []string, postings [][]int32) (map[canon.Key]graph.IDSet, error) {
	if len(keys) != len(postings) {
		return nil, fmt.Errorf("treedelta: corrupt postings")
	}
	m := make(map[canon.Key]graph.IDSet, len(keys))
	for i, key := range keys {
		post := make(graph.IDSet, len(postings[i]))
		for j, id := range postings[i] {
			post[j] = graph.ID(id)
		}
		m[canon.Key(key)] = post
	}
	return m, nil
}

// SaveIndex implements core.Persistable.
func (ix *Index) SaveIndex(w io.Writer) error {
	if !ix.built {
		return fmt.Errorf("treedelta: save before Build")
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	dto := indexDTO{
		MaxFeatureSize:      ix.opts.MaxFeatureSize,
		SupportRatio:        ix.opts.SupportRatio,
		DiscriminativeRatio: ix.opts.DiscriminativeRatio,
		QuerySupportToAdd:   ix.opts.QuerySupportToAdd,
		MaxCycleLen:         ix.opts.MaxCycleLen,
		NumGraphs:           ix.ds.Len(),
	}
	dto.TreeKeys, dto.TreePostings = packPostings(ix.trees)
	dto.DeltaKeys, dto.DeltaPostings = packPostings(ix.deltas)
	return gob.NewEncoder(w).Encode(&dto)
}

// LoadIndex implements core.Persistable.
func (ix *Index) LoadIndex(r io.Reader, ds *graph.Dataset) error {
	var dto indexDTO
	if err := gob.NewDecoder(r).Decode(&dto); err != nil {
		return fmt.Errorf("treedelta: load: %w", err)
	}
	if dto.NumGraphs != ds.Len() {
		return fmt.Errorf("treedelta: load: index covers %d graphs, dataset has %d", dto.NumGraphs, ds.Len())
	}
	trees, err := unpackPostings(dto.TreeKeys, dto.TreePostings)
	if err != nil {
		return err
	}
	deltas, err := unpackPostings(dto.DeltaKeys, dto.DeltaPostings)
	if err != nil {
		return err
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.opts = Options{
		MaxFeatureSize:      dto.MaxFeatureSize,
		SupportRatio:        dto.SupportRatio,
		DiscriminativeRatio: dto.DiscriminativeRatio,
		QuerySupportToAdd:   dto.QuerySupportToAdd,
		MaxCycleLen:         dto.MaxCycleLen,
	}
	ix.opts.fill()
	ix.ds = ds
	ix.trees = trees
	ix.deltas = deltas
	ix.seen = make(map[canon.Key]int)
	ix.protos = make(map[canon.Key]*graph.Graph)
	ix.queries = 0
	ix.built = true
	return nil
}
