package treedelta

import (
	"context"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/subiso"
	"repro/internal/workload"
)

func pathGraph(labels ...graph.Label) *graph.Graph {
	g := graph.New(0)
	for _, l := range labels {
		g.AddVertex(l)
	}
	for i := 1; i < len(labels); i++ {
		g.MustAddEdge(int32(i-1), int32(i))
	}
	return g
}

func cycleGraph(labels ...graph.Label) *graph.Graph {
	g := pathGraph(labels...)
	g.MustAddEdge(int32(len(labels)-1), 0)
	return g
}

func build(t *testing.T, ds *graph.Dataset, opts Options) *Index {
	t.Helper()
	ix := New(opts)
	if err := ix.Build(context.Background(), ds); err != nil {
		t.Fatalf("Build: %v", err)
	}
	return ix
}

func TestTreeFeaturesFilter(t *testing.T) {
	ds := graph.NewDataset("t")
	for i := 0; i < 5; i++ {
		ds.Add(pathGraph(1, 2, 3))
	}
	for i := 0; i < 5; i++ {
		ds.Add(pathGraph(4, 5, 6))
	}
	ix := build(t, ds, Options{MaxFeatureSize: 3})
	if ix.NumTreeFeatures() == 0 {
		t.Fatalf("no tree features mined")
	}
	cands, err := ix.Candidates(pathGraph(1, 2, 3))
	if err != nil {
		t.Fatal(err)
	}
	if !cands.Equal(graph.IDSet{0, 1, 2, 3, 4}) {
		t.Errorf("candidates = %v", cands)
	}
}

func TestDeltaAdmission(t *testing.T) {
	// Dataset: half triangles, half paths with the same labels. Tree
	// features cannot separate them; the Δ mechanism should learn the
	// triangle after enough triangle queries and start pruning the paths.
	ds := graph.NewDataset("t")
	for i := 0; i < 6; i++ {
		ds.Add(cycleGraph(1, 1, 1))
	}
	for i := 0; i < 6; i++ {
		ds.Add(pathGraph(1, 1, 1))
	}
	ix := build(t, ds, Options{MaxFeatureSize: 3, QuerySupportToAdd: 0.5})

	// Tree features alone cannot separate triangles from paths.
	trees := ix.treeCandidates(cycleGraph(1, 1, 1))
	if len(trees) != 12 {
		t.Fatalf("tree-only candidates = %d, want 12 (trees cannot separate)", len(trees))
	}
	// With the full pipeline, the triangle Δ structure is query-frequent
	// immediately (support-to-add is a ratio over processed queries), gets
	// admitted with its full posting, and prunes the path graphs.
	q := cycleGraph(1, 1, 1)
	var last graph.IDSet
	var err error
	for i := 0; i < 5; i++ {
		last, err = ix.Candidates(q)
		if err != nil {
			t.Fatal(err)
		}
	}
	if ix.NumDeltaFeatures() == 0 {
		t.Fatalf("no Δ feature admitted after repeated cyclic queries")
	}
	if !last.Equal(graph.IDSet{0, 1, 2, 3, 4, 5}) {
		t.Errorf("Δ filtering: candidates = %v, want the six triangles", last)
	}
}

func TestDeltaSoundnessAfterAdmission(t *testing.T) {
	// After Δ admission, answers must still be exact for other queries.
	ds := gen.Synthetic(gen.SynthConfig{NumGraphs: 20, MeanNodes: 10, MeanDensity: 0.3, NumLabels: 2, Seed: 15})
	ix := build(t, ds, Options{MaxFeatureSize: 4, QuerySupportToAdd: 0.3})
	qs, err := workload.Generate(ds, workload.Config{NumQueries: 15, QueryEdges: 5, Seed: 16})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 2; round++ {
		for i, q := range qs {
			cands, err := ix.Candidates(q)
			if err != nil {
				t.Fatal(err)
			}
			for _, g := range ds.Graphs {
				if subiso.Exists(q, g) && !cands.Contains(g.ID()) {
					t.Fatalf("round %d query %d: false negative for graph %d (Δ features: %d)",
						round, i, g.ID(), ix.NumDeltaFeatures())
				}
			}
		}
	}
}

func TestAcyclicQueriesSkipDelta(t *testing.T) {
	ds := graph.NewDataset("t")
	for i := 0; i < 4; i++ {
		ds.Add(pathGraph(1, 2, 3, 4))
	}
	ix := build(t, ds, Options{MaxFeatureSize: 3})
	for i := 0; i < 10; i++ {
		if _, err := ix.Candidates(pathGraph(1, 2, 3)); err != nil {
			t.Fatal(err)
		}
	}
	if ix.NumDeltaFeatures() != 0 {
		t.Errorf("acyclic queries admitted Δ features")
	}
}

func TestUnbuiltAndSize(t *testing.T) {
	ix := New(Options{})
	if _, err := ix.Candidates(pathGraph(1, 2)); err == nil {
		t.Errorf("want error before Build")
	}
	ds := graph.NewDataset("t")
	for i := 0; i < 3; i++ {
		ds.Add(pathGraph(1, 2))
	}
	built := build(t, ds, Options{MaxFeatureSize: 2})
	if built.SizeBytes() <= 0 {
		t.Errorf("SizeBytes = %d", built.SizeBytes())
	}
}
