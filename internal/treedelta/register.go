package treedelta

import (
	"repro/internal/core"
	"repro/internal/engine"
)

// DefaultMaxPatterns is the registry default for the mining budget — the
// harness's analogue of the paper's 8-hour kill switch. Direct
// treedelta.New callers keep Options.MaxPatterns zero = unlimited.
const DefaultMaxPatterns = 200000

func init() {
	engine.Register(engine.Descriptor{
		Name:    "treedelta",
		Display: "tree+delta",
		Aliases: []string{"Tree+Δ"},
		Help:    "frequent tree features plus Δ (non-tree) features learned from the query stream",
		Notes: "Reproduces Tree+Δ (Zhao, Yu, Yu, VLDB 2007). Build mines frequent trees only " +
			"(cheaper than gIndex's general subgraphs, same `maxPatterns` kill switch), then grows the " +
			"index at query time: discriminative non-tree Δ features observed in enough queries " +
			"(`querySupportToAdd`) are added on the fly. Query processing therefore mutates the index; " +
			"the implementation serializes those mutations internally, so concurrent use stays " +
			"correct, just less parallel.",
		Fields: []engine.Field{
			{Name: "maxFeatureSize", Kind: engine.Int, Default: DefaultMaxFeatureSize, Help: "maximum mined feature size in edges"},
			{Name: "supportRatio", Kind: engine.Float, Default: DefaultSupportRatio, Help: "frequent-mining support threshold"},
			{Name: "discriminativeRatio", Kind: engine.Float, Default: DefaultDiscriminativeRatio, Help: "pruning fraction for a Δ feature to be discriminative"},
			{Name: "querySupportToAdd", Kind: engine.Float, Default: DefaultQuerySupportToAdd, Help: "fraction of queries containing a Δ structure before it is indexed"},
			{Name: "maxCycleLen", Kind: engine.Int, Default: DefaultMaxCycleLen, Help: "maximum simple cycle length considered as a Δ seed"},
			{Name: "fragmentBudget", Kind: engine.Int, Default: DefaultFragmentBudget, Help: "query-time subtree enumeration cap"},
			{Name: "maxPatterns", Kind: engine.Int, Default: DefaultMaxPatterns, Help: "mining budget; 0 = unlimited"},
		},
		Factory: func(p engine.Params) (core.Method, error) {
			return New(Options{
				MaxFeatureSize:      p.Int("maxFeatureSize"),
				SupportRatio:        p.Float("supportRatio"),
				DiscriminativeRatio: p.Float("discriminativeRatio"),
				QuerySupportToAdd:   p.Float("querySupportToAdd"),
				MaxCycleLen:         p.Int("maxCycleLen"),
				FragmentBudget:      p.Int("fragmentBudget"),
				MaxPatterns:         p.Int("maxPatterns"),
			}), nil
		},
	})
}
