// Package treedelta implements Tree+Δ (Zhao, Yu, Yu, VLDB 2007): the index
// initially holds only frequent tree-structured features (mined with the
// trees-only gSpan restriction) in a hash table. During query processing,
// the query's subtrees are enumerated and their postings intersected. In
// addition, simple cycles of query graphs — extended by adjacent edges — are
// evaluated as Δ (non-tree) features: those appearing in enough queries and
// found sufficiently discriminative against the tree-based candidate set are
// added to the index on the fly and used like tree features by subsequent
// queries.
//
// Tree+Δ is one of the six indexed subgraph query processing methods
// compared in the reproduced paper (Katsarou, Ntarmos, Triantafillou,
// PVLDB 2015); register.go exposes it to the engine registry as
// "treedelta" (alias "tree+delta").
package treedelta

import (
	"context"
	"iter"
	"sort"
	"sync"

	"repro/internal/canon"
	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/graph"
	"repro/internal/mining"
	"repro/internal/subiso"
)

// Defaults from §4.1 of the paper.
const (
	DefaultMaxFeatureSize = 10
	DefaultSupportRatio   = 0.1
	// DefaultDiscriminativeRatio is Tree+Δ's threshold (paper: 0.1): a Δ
	// feature is discriminative when its posting prunes at least this
	// fraction of the tree-based candidate set.
	DefaultDiscriminativeRatio = 0.1
	// DefaultQuerySupportToAdd is the fraction of processed queries that
	// must contain a Δ structure before it is admitted to the index
	// (paper: 0.8).
	DefaultQuerySupportToAdd = 0.8
	// DefaultMaxCycleLen bounds the simple cycles considered as Δ seeds.
	DefaultMaxCycleLen = 6
	// DefaultFragmentBudget caps query subtree enumeration.
	DefaultFragmentBudget = 20000
)

// Options configures a Tree+Δ index.
type Options struct {
	MaxFeatureSize      int
	SupportRatio        float64
	DiscriminativeRatio float64
	QuerySupportToAdd   float64
	MaxCycleLen         int
	FragmentBudget      int
	MaxPatterns         int
}

func (o *Options) fill() {
	if o.MaxFeatureSize <= 0 {
		o.MaxFeatureSize = DefaultMaxFeatureSize
	}
	if o.SupportRatio <= 0 {
		o.SupportRatio = DefaultSupportRatio
	}
	if o.DiscriminativeRatio <= 0 {
		o.DiscriminativeRatio = DefaultDiscriminativeRatio
	}
	if o.QuerySupportToAdd <= 0 {
		o.QuerySupportToAdd = DefaultQuerySupportToAdd
	}
	if o.MaxCycleLen <= 0 {
		o.MaxCycleLen = DefaultMaxCycleLen
	}
	if o.FragmentBudget <= 0 {
		o.FragmentBudget = DefaultFragmentBudget
	}
}

// Index is a built Tree+Δ index. Create with New, then Build. Query
// processing mutates the Δ part of the index and is serialized internally.
type Index struct {
	opts Options
	ds   *graph.Dataset

	trees map[canon.Key]graph.IDSet // frequent tree features

	mu      sync.Mutex
	deltas  map[canon.Key]graph.IDSet // admitted Δ features (full postings)
	seen    map[canon.Key]int         // Δ candidates: queries containing them
	queries int                       // queries processed
	protos  map[canon.Key]*graph.Graph

	built bool
}

// New returns an unbuilt Tree+Δ index.
func New(opts Options) *Index {
	opts.fill()
	return &Index{opts: opts}
}

// Name implements core.Method.
func (ix *Index) Name() string { return "Tree+Delta" }

// Build implements core.Method: trees-only gSpan mining; every frequent tree
// is indexed (Tree+Δ has no build-time discriminative pruning — the Δ
// mechanism plays that role at query time).
func (ix *Index) Build(ctx context.Context, ds *graph.Dataset) error {
	ix.ds = ds
	ix.trees = make(map[canon.Key]graph.IDSet)
	ix.deltas = make(map[canon.Key]graph.IDSet)
	ix.seen = make(map[canon.Key]int)
	ix.protos = make(map[canon.Key]*graph.Graph)
	cfg := mining.Config{
		MinSupportRatio: ix.opts.SupportRatio,
		MaxEdges:        ix.opts.MaxFeatureSize,
		TreesOnly:       true,
		MaxPatterns:     ix.opts.MaxPatterns,
	}
	err := mining.Mine(ctx, ds, cfg, func(p *mining.Pattern) bool {
		key, ok := canon.TreeKey(p.Code.Graph())
		if ok {
			ix.trees[key] = p.Support
		}
		return true
	})
	if err != nil {
		return err
	}
	ix.built = true
	return nil
}

// Candidates implements core.Method: tree-based filtering, then Δ-based
// refinement and learning.
func (ix *Index) Candidates(q *graph.Graph) (graph.IDSet, error) {
	if !ix.built {
		return nil, core.ErrNotBuilt
	}
	cands := ix.treeCandidates(q)
	cands = ix.applyDeltas(q, cands)
	return cands, nil
}

// chunkSize is the producer's emission granularity.
const chunkSize = 512

var _ core.CandidateChunker = (*Index)(nil)

// CandidateChunks implements core.CandidateChunker. Tree+Δ cannot defer its
// filtering: Δ admission learns from the *complete* tree-based candidate
// set of every processed query (a lazily truncated set would corrupt the
// admission statistics and the discriminative test), so the candidate set
// is computed eagerly — once, not per iteration, since Candidates mutates
// the Δ state — and emitted in chunks. The verifier stage downstream is
// still lazy, which is where Tree+Δ's streaming win lives.
func (ix *Index) CandidateChunks(q *graph.Graph) (iter.Seq[graph.IDSet], error) {
	cands, err := ix.Candidates(q)
	if err != nil {
		return nil, err
	}
	return func(yield func(graph.IDSet) bool) {
		for lo := 0; lo < len(cands); lo += chunkSize {
			hi := min(lo+chunkSize, len(cands))
			if !yield(cands[lo:hi]) {
				return
			}
		}
	}, nil
}

// treeCandidates grows the query's subtrees level by level, expanding only
// subtrees present in the index, and intersects the postings of the maximal
// indexed subtrees.
func (ix *Index) treeCandidates(q *graph.Graph) graph.IDSet {
	es := features.NewEdgeSet(q)
	type frag struct {
		edgeIDs []int
		posting graph.IDSet
	}
	frontier := map[string]*frag{}
	cands := graph.UniverseIDSet(ix.ds.Len())
	for e := 0; e < es.NumEdges(); e++ {
		ids := []int{e}
		sub, _ := es.Subgraph(ids)
		key, _ := canon.TreeKey(sub)
		post, ok := ix.trees[key]
		if !ok {
			// A single edge not frequent in the dataset: its posting is the
			// (unknown, small) set of graphs containing it; Tree+Δ cannot
			// see it, so no pruning from this edge.
			continue
		}
		frontier[edgeSetKey(ids)] = &frag{edgeIDs: ids, posting: post}
	}
	visited := map[string]bool{}
	budget := ix.opts.FragmentBudget
	for level := 1; level < ix.opts.MaxFeatureSize && len(frontier) > 0 && budget > 0; level++ {
		next := map[string]*frag{}
		keys := make([]string, 0, len(frontier))
		for k := range frontier {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, fk := range keys {
			fr := frontier[fk]
			hasIndexedExt := false
			for _, ext := range treeExtensions(es, fr.edgeIDs) {
				ek := edgeSetKey(ext)
				if visited[ek] {
					hasIndexedExt = true
					continue
				}
				budget--
				if budget <= 0 {
					break
				}
				sub, _ := es.Subgraph(ext)
				key, ok := canon.TreeKey(sub)
				if !ok {
					continue
				}
				post, indexed := ix.trees[key]
				if !indexed {
					continue
				}
				hasIndexedExt = true
				visited[ek] = true
				next[ek] = &frag{edgeIDs: ext, posting: post}
			}
			if !hasIndexedExt || budget <= 0 {
				cands = cands.Intersect(fr.posting)
				if len(cands) == 0 {
					return cands
				}
			}
		}
		frontier = next
	}
	keys := make([]string, 0, len(frontier))
	for k := range frontier {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, fk := range keys {
		cands = cands.Intersect(frontier[fk].posting)
		if len(cands) == 0 {
			break
		}
	}
	return cands
}

// applyDeltas intersects admitted Δ postings for Δ structures found in the
// query and updates the Δ admission statistics, possibly admitting new Δ
// features (computing their full-dataset postings by subgraph isomorphism —
// the expensive step Tree+Δ amortizes over the query workload).
func (ix *Index) applyDeltas(q *graph.Graph, cands graph.IDSet) graph.IDSet {
	structs := ix.deltaStructures(q)
	if len(structs) == 0 {
		return cands
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	ix.queries++
	for key, proto := range structs {
		if post, ok := ix.deltas[key]; ok {
			cands = cands.Intersect(post)
			continue
		}
		ix.seen[key]++
		if _, ok := ix.protos[key]; !ok {
			ix.protos[key] = proto
		}
		if float64(ix.seen[key]) < ix.opts.QuerySupportToAdd*float64(ix.queries) {
			continue
		}
		// Candidate for admission: compute the full posting, admit if
		// discriminative against the current candidate estimate.
		post := ix.fullPosting(proto)
		pruned := len(cands) - len(cands.Intersect(post))
		if len(cands) > 0 && float64(pruned) >= ix.opts.DiscriminativeRatio*float64(len(cands)) {
			ix.deltas[key] = post
			delete(ix.seen, key)
			delete(ix.protos, key)
			cands = cands.Intersect(post)
		}
	}
	return cands
}

// deltaStructures returns the Δ structures of the query: its simple cycles
// and each cycle extended by one adjacent edge, keyed canonically.
func (ix *Index) deltaStructures(q *graph.Graph) map[canon.Key]*graph.Graph {
	out := map[canon.Key]*graph.Graph{}
	add := func(vertices []int32, extra [2]int32) {
		set := append([]int32(nil), vertices...)
		if extra[0] >= 0 {
			found := false
			for _, v := range set {
				if v == extra[1] {
					found = true
					break
				}
			}
			if !found {
				set = append(set, extra[1])
			}
		}
		sub, _, err := q.InducedSubgraph(set)
		if err != nil {
			return
		}
		// Keep only the cycle plus the one extension edge: induced subgraphs
		// may pull in chords, which is fine — chords only make the feature
		// more specific, and the key is canonical either way.
		key, ok := canon.FeatureKey(sub)
		if !ok {
			return
		}
		if _, dup := out[key]; !dup {
			out[key] = sub
		}
	}
	features.VisitCycles(q, ix.opts.MaxCycleLen, func(vs []int32) bool {
		add(vs, [2]int32{-1, -1})
		// Extensions: one adjacent edge from any cycle vertex.
		for _, v := range vs {
			for _, w := range q.Neighbors(v) {
				on := false
				for _, x := range vs {
					if x == w {
						on = true
						break
					}
				}
				if !on {
					add(vs, [2]int32{v, w})
				}
			}
		}
		return true
	})
	return out
}

// fullPosting computes the exact dataset posting of a Δ structure by
// subgraph isomorphism over every graph. Postings stored in the index must
// be complete — partial postings would cause false negatives for later
// queries.
func (ix *Index) fullPosting(proto *graph.Graph) graph.IDSet {
	var out graph.IDSet
	for _, g := range ix.ds.Graphs {
		if !ix.ds.Alive(g.ID()) {
			continue // tombstoned graphs never join a Δ posting
		}
		if subiso.Exists(proto, g) {
			out = append(out, g.ID())
		}
	}
	return out
}

func edgeSetKey(ids []int) string {
	buf := make([]byte, 0, len(ids)*3)
	for _, id := range ids {
		buf = append(buf, byte(id), byte(id>>8), byte(id>>16))
	}
	return string(buf)
}

// treeExtensions returns edge sets obtained by adding one adjacent edge that
// keeps the subgraph acyclic (one endpoint new).
func treeExtensions(es *features.EdgeSet, ids []int) [][]int {
	in := make(map[int]bool, len(ids))
	vs := make(map[int32]bool, len(ids)+1)
	for _, id := range ids {
		in[id] = true
		e := es.Edge(id)
		vs[e[0]] = true
		vs[e[1]] = true
	}
	var out [][]int
	for e := 0; e < es.NumEdges(); e++ {
		if in[e] {
			continue
		}
		ep := es.Edge(e)
		// Exactly one endpoint inside: adding keeps it a tree.
		if vs[ep[0]] == vs[ep[1]] {
			continue
		}
		ext := make([]int, 0, len(ids)+1)
		ext = append(ext, ids...)
		ext = append(ext, e)
		sort.Ints(ext)
		out = append(out, ext)
	}
	return out
}

// SizeBytes implements core.Method.
func (ix *Index) SizeBytes() int64 {
	var sz int64
	for key, post := range ix.trees {
		sz += int64(len(key)) + int64(len(post))*4 + 48
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	for key, post := range ix.deltas {
		sz += int64(len(key)) + int64(len(post))*4 + 48
	}
	return sz
}

// NumTreeFeatures returns the number of indexed tree features.
func (ix *Index) NumTreeFeatures() int { return len(ix.trees) }

// NumDeltaFeatures returns the number of admitted Δ features.
func (ix *Index) NumDeltaFeatures() int {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	return len(ix.deltas)
}
