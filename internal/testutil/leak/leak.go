// Package leak provides a goroutine-leak check for tests that cancel or
// abandon streams: pipeline stages run on internal goroutines (parallel
// verifiers, fan-out legs, hedged requests), and a consumer that stops
// early must leave none of them behind. Usage:
//
//	defer leak.Check(t)()
//
// at the top of the test (or subtest) body. The returned func compares the
// goroutine count against the snapshot taken at the call, retrying with
// backoff to let exiting goroutines unwind, and fails the test with a full
// stack dump of the survivors when the count stays elevated.
package leak

import (
	"fmt"
	"runtime"
	"strings"
	"time"
)

// TB is the subset of testing.TB the checker needs.
type TB interface {
	Helper()
	Errorf(format string, args ...any)
}

// maxWait bounds how long Check waits for goroutines to unwind before
// declaring a leak. Goroutines blocked forever (the leak) never exit, so
// the common failure converges immediately; the wait only covers healthy
// goroutines still tearing down.
const maxWait = 2 * time.Second

// Check snapshots the goroutine count and returns a func that asserts the
// count is back at (or below) the snapshot. Defer the result immediately:
//
//	defer leak.Check(t)()
func Check(t TB) func() {
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(maxWait)
		var after int
		for {
			after = runtime.NumGoroutine()
			if after <= before {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("goroutine leak: %d before, %d after\n%s", before, after, stacks())
	}
}

// stacks dumps all goroutine stacks, trimming the runtime-internal ones so
// the report leads with the leaked worker.
func stacks() string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	var out strings.Builder
	for _, g := range strings.Split(string(buf[:n]), "\n\n") {
		if strings.Contains(g, "runtime.gopark") && strings.Contains(g, "GC") {
			continue
		}
		fmt.Fprintf(&out, "%s\n\n", g)
	}
	return out.String()
}
