package graph

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// The text serialization follows the GFD format used by the Grapes and
// GraphGrepSX distributions, one graph after another:
//
//	#<graph name>
//	<number of vertices>
//	<label of vertex 0>
//	...
//	<label of vertex n-1>
//	<number of edges>
//	<u> <v>
//	...
//
// Labels are arbitrary whitespace-free strings interned into the dataset
// Dictionary; edges are undirected vertex-id pairs.

// WriteDataset serializes the dataset in GFD text form.
func WriteDataset(w io.Writer, ds *Dataset) error {
	bw := bufio.NewWriter(w)
	for _, g := range ds.Graphs {
		if !ds.Alive(g.ID()) {
			continue // tombstoned graphs compact away on save
		}
		if _, err := fmt.Fprintf(bw, "#%d\n%d\n", g.ID(), g.NumVertices()); err != nil {
			return err
		}
		for v := int32(0); int(v) < g.NumVertices(); v++ {
			name := ds.Dict.Name(g.Label(v))
			if name == "" {
				name = strconv.Itoa(int(g.Label(v)))
			}
			if _, err := fmt.Fprintln(bw, name); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintln(bw, g.NumEdges()); err != nil {
			return err
		}
		for _, e := range g.Edges() {
			if _, err := fmt.Fprintf(bw, "%d %d\n", e[0], e[1]); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadDataset parses a GFD text stream into a dataset named name. Labels
// are interned into the dataset's own fresh dictionary; use
// ReadDatasetWithDict when the stream must share a label space with an
// already-loaded dataset (query files against their data file).
func ReadDataset(r io.Reader, name string) (*Dataset, error) {
	ds := NewDataset(name)
	return ds, readDatasetInto(ds, r)
}

// ReadDatasetWithDict parses a GFD text stream, interning labels into dict
// so that label IDs agree with every other dataset loaded through the same
// dictionary. Labels first seen in this stream are appended to dict.
func ReadDatasetWithDict(r io.Reader, name string, dict *Dictionary) (*Dataset, error) {
	ds := NewDataset(name)
	ds.Dict = *dict
	err := readDatasetInto(ds, r)
	*dict = ds.Dict
	return ds, err
}

func readDatasetInto(ds *Dataset, r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	next := func() (string, bool) {
		for sc.Scan() {
			line++
			s := strings.TrimSpace(sc.Text())
			if s != "" {
				return s, true
			}
		}
		return "", false
	}
	for {
		header, ok := next()
		if !ok {
			break
		}
		if !strings.HasPrefix(header, "#") {
			return fmt.Errorf("graph: line %d: expected #<name> header, got %q", line, header)
		}
		ns, ok := next()
		if !ok {
			return fmt.Errorf("graph: line %d: missing vertex count", line)
		}
		n, err := strconv.Atoi(ns)
		if err != nil || n < 0 {
			return fmt.Errorf("graph: line %d: bad vertex count %q", line, ns)
		}
		g := NewWithCapacity(ID(ds.Len()), n)
		for i := 0; i < n; i++ {
			ls, ok := next()
			if !ok {
				return fmt.Errorf("graph: line %d: missing label %d/%d", line, i+1, n)
			}
			g.AddVertex(ds.Dict.Intern(ls))
		}
		es, ok := next()
		if !ok {
			return fmt.Errorf("graph: line %d: missing edge count", line)
		}
		m, err := strconv.Atoi(es)
		if err != nil || m < 0 {
			return fmt.Errorf("graph: line %d: bad edge count %q", line, es)
		}
		for i := 0; i < m; i++ {
			el, ok := next()
			if !ok {
				return fmt.Errorf("graph: line %d: missing edge %d/%d", line, i+1, m)
			}
			fields := strings.Fields(el)
			if len(fields) != 2 {
				return fmt.Errorf("graph: line %d: bad edge %q", line, el)
			}
			u, err1 := strconv.Atoi(fields[0])
			v, err2 := strconv.Atoi(fields[1])
			if err1 != nil || err2 != nil {
				return fmt.Errorf("graph: line %d: bad edge %q", line, el)
			}
			if err := g.AddEdge(int32(u), int32(v)); err != nil {
				return fmt.Errorf("graph: line %d: %w", line, err)
			}
		}
		ds.Add(g)
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("graph: read: %w", err)
	}
	return nil
}

// LoadDatasetFile reads a GFD dataset from path.
func LoadDatasetFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadDataset(f, path)
}

// LoadDatasetFileWithDict reads a GFD dataset from path, sharing dict with
// previously loaded data so label IDs agree across files (a query file must
// be loaded with its data file's dictionary, or its labels filter against
// the wrong IDs).
func LoadDatasetFileWithDict(path string, dict *Dictionary) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadDatasetWithDict(f, path, dict)
}

// SaveDatasetFile writes the dataset in GFD text form to path.
func SaveDatasetFile(path string, ds *Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteDataset(f, ds); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
