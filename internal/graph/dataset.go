package graph

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// Dictionary interns string vertex labels to dense Label values. It is used
// when loading external data; synthetic generators produce Labels directly.
// The zero value is ready for use.
type Dictionary struct {
	byName map[string]Label
	names  []string
}

// Intern returns the Label for name, assigning the next dense id on first use.
func (d *Dictionary) Intern(name string) Label {
	if d.byName == nil {
		d.byName = make(map[string]Label)
	}
	if l, ok := d.byName[name]; ok {
		return l
	}
	l := Label(len(d.names))
	d.byName[name] = l
	d.names = append(d.names, name)
	return l
}

// Lookup returns the Label for name if it has been interned.
func (d *Dictionary) Lookup(name string) (Label, bool) {
	l, ok := d.byName[name]
	return l, ok
}

// Name returns the string for a Label; Labels never interned map to "".
func (d *Dictionary) Name(l Label) string {
	if int(l) < 0 || int(l) >= len(d.names) {
		return ""
	}
	return d.names[l]
}

// Len returns the number of interned labels.
func (d *Dictionary) Len() int { return len(d.names) }

// Dataset is an ordered collection of graphs sharing one label space.
//
// Datasets are mutable: Add appends a graph under a fresh ID and Remove
// tombstones one in place. IDs are positional and never reused — a removed
// graph's slot stays occupied (so persisted indexes keyed by ID stay
// aligned) but Graph returns nil for it and Alive reports false. Every
// mutation bumps the dataset's monotonically increasing Epoch, the version
// stamp caches and persisted indexes validate against.
//
// Mutating a dataset concurrently with readers is not safe; the engine
// layer serializes mutations against queries.
type Dataset struct {
	Name   string
	Graphs []*Graph
	Dict   Dictionary

	removed map[ID]struct{}
	epoch   atomic.Uint64
}

// NewDataset returns an empty dataset with the given name.
func NewDataset(name string) *Dataset {
	return &Dataset{Name: name}
}

// Add appends g to the dataset, assigning it the next dataset-local ID and
// bumping the epoch.
func (ds *Dataset) Add(g *Graph) ID {
	id := ID(len(ds.Graphs))
	g.SetID(id)
	ds.Graphs = append(ds.Graphs, g)
	ds.epoch.Add(1)
	return id
}

// Remove tombstones the graph with the given ID and bumps the epoch,
// reporting whether a live graph was removed. The slot is retained — IDs
// are positional and never reused — but Graph returns nil for it, Alive
// reports false, and FilterLive drops it from candidate sets.
func (ds *Dataset) Remove(id ID) bool {
	if !ds.Alive(id) {
		return false
	}
	if ds.removed == nil {
		ds.removed = make(map[ID]struct{})
	}
	ds.removed[id] = struct{}{}
	ds.epoch.Add(1)
	return true
}

// Alive reports whether id names a live (present and not removed) graph.
func (ds *Dataset) Alive(id ID) bool {
	if int(id) < 0 || int(id) >= len(ds.Graphs) {
		return false
	}
	_, dead := ds.removed[id]
	return !dead
}

// Epoch returns the dataset's version: a counter bumped by every Add and
// Remove (loading a dataset counts one Add per graph). Two reads returning
// the same value bracket an unchanged dataset, which is what the serving
// layer's result cache and the persisted index files key on.
func (ds *Dataset) Epoch() uint64 { return ds.epoch.Load() }

// VersionTag returns a content fingerprint of the dataset: an FNV-1a hash
// over the slot count and, per live slot, the graph's vertex labels and
// edge list (tombstoned slots hash a sentinel). Persisted indexes store
// it next to the epoch: the epoch alone is an operation counter, so two
// different mutation histories of equal length (remove 3 vs remove 5, or
// adds of different graphs) would collide on it, and a stale index could
// restore silently against the wrong content. The tag is O(vertices +
// edges) of integer reads — negligible next to writing the index itself.
func (ds *Dataset) VersionTag() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		h ^= v
		h *= prime64
	}
	mix(uint64(len(ds.Graphs)))
	for i, g := range ds.Graphs {
		if _, dead := ds.removed[ID(i)]; dead {
			mix(^uint64(0))
			continue
		}
		mix(uint64(g.NumVertices()))
		for _, l := range g.Labels() {
			mix(uint64(uint32(l)))
		}
		for v := int32(0); int(v) < g.NumVertices(); v++ {
			for _, w := range g.Neighbors(v) {
				if w > v {
					mix(uint64(uint32(v))<<32 | uint64(uint32(w)))
				}
			}
		}
	}
	return h
}

// NumRemoved returns the number of tombstoned graphs.
func (ds *Dataset) NumRemoved() int { return len(ds.removed) }

// NumAlive returns the number of live graphs (Len minus tombstones).
func (ds *Dataset) NumAlive() int { return len(ds.Graphs) - len(ds.removed) }

// Len returns the number of graph slots, tombstoned ones included; it is
// also one past the largest ID ever assigned.
func (ds *Dataset) Len() int { return len(ds.Graphs) }

// Graph returns the live graph with the given dataset-local ID, or nil for
// out-of-range and tombstoned IDs.
func (ds *Dataset) Graph(id ID) *Graph {
	if !ds.Alive(id) {
		return nil
	}
	return ds.Graphs[id]
}

// LiveIDSet returns the sorted IDs of all live graphs.
func (ds *Dataset) LiveIDSet() IDSet {
	out := make(IDSet, 0, ds.NumAlive())
	for i := range ds.Graphs {
		if _, dead := ds.removed[ID(i)]; !dead {
			out = append(out, ID(i))
		}
	}
	return out
}

// FilterLive returns s with tombstoned and out-of-range IDs dropped. With
// no tombstones it returns s unchanged (no allocation), so the common
// immutable path pays nothing.
func (ds *Dataset) FilterLive(s IDSet) IDSet {
	if len(ds.removed) == 0 {
		if len(s) == 0 || int(s[len(s)-1]) < len(ds.Graphs) {
			return s
		}
	}
	out := make(IDSet, 0, len(s))
	for _, id := range s {
		if ds.Alive(id) {
			out = append(out, id)
		}
	}
	return out
}

// MaxLabel returns the largest label value used by any graph — tombstoned
// slots included, so the result stays a safe upper bound for label-keyed
// arrays sized at build time — or -1 for an empty dataset. Labels interned
// after a structure was sized can still exceed it: consumers must
// bounds-check (and treat unseen labels as unused/rarest) rather than
// index blindly.
func (ds *Dataset) MaxLabel() Label {
	max := Label(-1)
	for _, g := range ds.Graphs {
		for _, l := range g.Labels() {
			if l > max {
				max = l
			}
		}
	}
	return max
}

// Validate validates every member graph.
func (ds *Dataset) Validate() error {
	for i, g := range ds.Graphs {
		if g.ID() != ID(i) {
			return fmt.Errorf("dataset %q: graph at position %d has id %d", ds.Name, i, g.ID())
		}
		if err := g.Validate(); err != nil {
			return fmt.Errorf("dataset %q graph %d: %w", ds.Name, i, err)
		}
	}
	return nil
}

// Stats summarizes a dataset with the characteristics reported in Table 1 of
// the paper.
type Stats struct {
	NumGraphs         int
	NumDisconnected   int
	NumLabels         int     // distinct labels across the dataset
	AvgNodes          float64 // mean vertices per graph
	StdDevNodes       float64
	AvgEdges          float64
	AvgDensity        float64
	AvgDegree         float64
	AvgLabelsPerGraph float64 // mean distinct labels per graph
}

// ComputeStats scans the live graphs and returns their Table 1-style
// summary; tombstoned graphs are excluded.
func (ds *Dataset) ComputeStats() Stats {
	s := Stats{NumGraphs: ds.NumAlive()}
	if s.NumGraphs == 0 {
		return s
	}
	labels := make(map[Label]struct{})
	var sumN, sumN2, sumE, sumD, sumDeg, sumLG float64
	for _, g := range ds.Graphs {
		if !ds.Alive(g.ID()) {
			continue
		}
		n := float64(g.NumVertices())
		sumN += n
		sumN2 += n * n
		sumE += float64(g.NumEdges())
		sumD += g.Density()
		sumDeg += g.AvgDegree()
		gl := g.DistinctLabels()
		sumLG += float64(len(gl))
		for _, l := range gl {
			labels[l] = struct{}{}
		}
		if !g.IsConnected() {
			s.NumDisconnected++
		}
	}
	n := float64(s.NumGraphs)
	s.NumLabels = len(labels)
	s.AvgNodes = sumN / n
	variance := sumN2/n - s.AvgNodes*s.AvgNodes
	if variance > 0 {
		s.StdDevNodes = math.Sqrt(variance)
	}
	s.AvgEdges = sumE / n
	s.AvgDensity = sumD / n
	s.AvgDegree = sumDeg / n
	s.AvgLabelsPerGraph = sumLG / n
	return s
}

// SizeBytes estimates the in-memory footprint of all graphs.
func (ds *Dataset) SizeBytes() int64 {
	var sz int64
	for _, g := range ds.Graphs {
		sz += g.SizeBytes()
	}
	return sz
}

// IDSet is a sorted set of graph IDs, the currency of filtering: postings
// lists, candidate sets, and answer sets are all IDSets.
type IDSet []ID

// NewIDSet returns a sorted, deduplicated IDSet from ids.
func NewIDSet(ids ...ID) IDSet {
	s := append(IDSet(nil), ids...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	out := s[:0]
	var prev ID = -1
	for _, id := range s {
		if id != prev {
			out = append(out, id)
			prev = id
		}
	}
	return out
}

// UniverseIDSet returns {0, 1, ..., n-1}.
func UniverseIDSet(n int) IDSet {
	s := make(IDSet, n)
	for i := range s {
		s[i] = ID(i)
	}
	return s
}

// Contains reports whether id is in the set.
func (s IDSet) Contains(id ID) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= id })
	return i < len(s) && s[i] == id
}

// Intersect returns the intersection of two sorted IDSets.
func (s IDSet) Intersect(t IDSet) IDSet {
	// Iterate the smaller, binary-search or merge the larger.
	if len(s) > len(t) {
		s, t = t, s
	}
	out := make(IDSet, 0, len(s))
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] == t[j]:
			out = append(out, s[i])
			i++
			j++
		case s[i] < t[j]:
			i++
		default:
			j++
		}
	}
	return out
}

// Union returns the union of two sorted IDSets.
func (s IDSet) Union(t IDSet) IDSet {
	out := make(IDSet, 0, len(s)+len(t))
	i, j := 0, 0
	for i < len(s) || j < len(t) {
		switch {
		case j >= len(t) || (i < len(s) && s[i] < t[j]):
			out = append(out, s[i])
			i++
		case i >= len(s) || t[j] < s[i]:
			out = append(out, t[j])
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	return out
}

// Equal reports whether two IDSets hold the same ids.
func (s IDSet) Equal(t IDSet) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}
