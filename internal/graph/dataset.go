package graph

import (
	"fmt"
	"math"
	"sort"
)

// Dictionary interns string vertex labels to dense Label values. It is used
// when loading external data; synthetic generators produce Labels directly.
// The zero value is ready for use.
type Dictionary struct {
	byName map[string]Label
	names  []string
}

// Intern returns the Label for name, assigning the next dense id on first use.
func (d *Dictionary) Intern(name string) Label {
	if d.byName == nil {
		d.byName = make(map[string]Label)
	}
	if l, ok := d.byName[name]; ok {
		return l
	}
	l := Label(len(d.names))
	d.byName[name] = l
	d.names = append(d.names, name)
	return l
}

// Lookup returns the Label for name if it has been interned.
func (d *Dictionary) Lookup(name string) (Label, bool) {
	l, ok := d.byName[name]
	return l, ok
}

// Name returns the string for a Label; Labels never interned map to "".
func (d *Dictionary) Name(l Label) string {
	if int(l) < 0 || int(l) >= len(d.names) {
		return ""
	}
	return d.names[l]
}

// Len returns the number of interned labels.
func (d *Dictionary) Len() int { return len(d.names) }

// Dataset is an ordered collection of graphs sharing one label space.
type Dataset struct {
	Name   string
	Graphs []*Graph
	Dict   Dictionary
}

// NewDataset returns an empty dataset with the given name.
func NewDataset(name string) *Dataset {
	return &Dataset{Name: name}
}

// Add appends g to the dataset, assigning it the next dataset-local ID.
func (ds *Dataset) Add(g *Graph) ID {
	id := ID(len(ds.Graphs))
	g.SetID(id)
	ds.Graphs = append(ds.Graphs, g)
	return id
}

// Len returns the number of graphs.
func (ds *Dataset) Len() int { return len(ds.Graphs) }

// Graph returns the graph with the given dataset-local ID, or nil.
func (ds *Dataset) Graph(id ID) *Graph {
	if int(id) < 0 || int(id) >= len(ds.Graphs) {
		return nil
	}
	return ds.Graphs[id]
}

// MaxLabel returns the largest label value used by any graph, or -1 for an
// empty dataset. Index structures use it to size label-keyed arrays.
func (ds *Dataset) MaxLabel() Label {
	max := Label(-1)
	for _, g := range ds.Graphs {
		for _, l := range g.Labels() {
			if l > max {
				max = l
			}
		}
	}
	return max
}

// Validate validates every member graph.
func (ds *Dataset) Validate() error {
	for i, g := range ds.Graphs {
		if g.ID() != ID(i) {
			return fmt.Errorf("dataset %q: graph at position %d has id %d", ds.Name, i, g.ID())
		}
		if err := g.Validate(); err != nil {
			return fmt.Errorf("dataset %q graph %d: %w", ds.Name, i, err)
		}
	}
	return nil
}

// Stats summarizes a dataset with the characteristics reported in Table 1 of
// the paper.
type Stats struct {
	NumGraphs         int
	NumDisconnected   int
	NumLabels         int     // distinct labels across the dataset
	AvgNodes          float64 // mean vertices per graph
	StdDevNodes       float64
	AvgEdges          float64
	AvgDensity        float64
	AvgDegree         float64
	AvgLabelsPerGraph float64 // mean distinct labels per graph
}

// ComputeStats scans the dataset and returns its Table 1-style summary.
func (ds *Dataset) ComputeStats() Stats {
	s := Stats{NumGraphs: len(ds.Graphs)}
	if s.NumGraphs == 0 {
		return s
	}
	labels := make(map[Label]struct{})
	var sumN, sumN2, sumE, sumD, sumDeg, sumLG float64
	for _, g := range ds.Graphs {
		n := float64(g.NumVertices())
		sumN += n
		sumN2 += n * n
		sumE += float64(g.NumEdges())
		sumD += g.Density()
		sumDeg += g.AvgDegree()
		gl := g.DistinctLabels()
		sumLG += float64(len(gl))
		for _, l := range gl {
			labels[l] = struct{}{}
		}
		if !g.IsConnected() {
			s.NumDisconnected++
		}
	}
	n := float64(s.NumGraphs)
	s.NumLabels = len(labels)
	s.AvgNodes = sumN / n
	variance := sumN2/n - s.AvgNodes*s.AvgNodes
	if variance > 0 {
		s.StdDevNodes = math.Sqrt(variance)
	}
	s.AvgEdges = sumE / n
	s.AvgDensity = sumD / n
	s.AvgDegree = sumDeg / n
	s.AvgLabelsPerGraph = sumLG / n
	return s
}

// SizeBytes estimates the in-memory footprint of all graphs.
func (ds *Dataset) SizeBytes() int64 {
	var sz int64
	for _, g := range ds.Graphs {
		sz += g.SizeBytes()
	}
	return sz
}

// IDSet is a sorted set of graph IDs, the currency of filtering: postings
// lists, candidate sets, and answer sets are all IDSets.
type IDSet []ID

// NewIDSet returns a sorted, deduplicated IDSet from ids.
func NewIDSet(ids ...ID) IDSet {
	s := append(IDSet(nil), ids...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	out := s[:0]
	var prev ID = -1
	for _, id := range s {
		if id != prev {
			out = append(out, id)
			prev = id
		}
	}
	return out
}

// UniverseIDSet returns {0, 1, ..., n-1}.
func UniverseIDSet(n int) IDSet {
	s := make(IDSet, n)
	for i := range s {
		s[i] = ID(i)
	}
	return s
}

// Contains reports whether id is in the set.
func (s IDSet) Contains(id ID) bool {
	i := sort.Search(len(s), func(i int) bool { return s[i] >= id })
	return i < len(s) && s[i] == id
}

// Intersect returns the intersection of two sorted IDSets.
func (s IDSet) Intersect(t IDSet) IDSet {
	// Iterate the smaller, binary-search or merge the larger.
	if len(s) > len(t) {
		s, t = t, s
	}
	out := make(IDSet, 0, len(s))
	i, j := 0, 0
	for i < len(s) && j < len(t) {
		switch {
		case s[i] == t[j]:
			out = append(out, s[i])
			i++
			j++
		case s[i] < t[j]:
			i++
		default:
			j++
		}
	}
	return out
}

// Union returns the union of two sorted IDSets.
func (s IDSet) Union(t IDSet) IDSet {
	out := make(IDSet, 0, len(s)+len(t))
	i, j := 0, 0
	for i < len(s) || j < len(t) {
		switch {
		case j >= len(t) || (i < len(s) && s[i] < t[j]):
			out = append(out, s[i])
			i++
		case i >= len(s) || t[j] < s[i]:
			out = append(out, t[j])
			j++
		default:
			out = append(out, s[i])
			i++
			j++
		}
	}
	return out
}

// Equal reports whether two IDSets hold the same ids.
func (s IDSet) Equal(t IDSet) bool {
	if len(s) != len(t) {
		return false
	}
	for i := range s {
		if s[i] != t[i] {
			return false
		}
	}
	return true
}
