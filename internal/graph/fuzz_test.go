package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadDataset checks the GFD parser never panics and that everything it
// accepts is structurally valid and round-trips.
func FuzzReadDataset(f *testing.F) {
	f.Add("#g\n3\nA\nB\nC\n2\n0 1\n1 2\n")
	f.Add("#g\n1\nA\n0\n")
	f.Add("#g\n2\nA\nB\n1\n0 1\n#h\n1\nC\n0\n")
	f.Add("")
	f.Add("#\n0\n0\n")
	f.Add("#g\n-1\n")
	f.Add("#g\n2\nA\nB\n1\n1 1\n")
	f.Fuzz(func(t *testing.T, in string) {
		ds, err := ReadDataset(strings.NewReader(in), "fuzz")
		if err != nil {
			return
		}
		if verr := ds.Validate(); verr != nil {
			t.Fatalf("accepted dataset fails validation: %v\ninput: %q", verr, in)
		}
		var buf bytes.Buffer
		if werr := WriteDataset(&buf, ds); werr != nil {
			t.Fatalf("write-back failed: %v", werr)
		}
		ds2, rerr := ReadDataset(&buf, "fuzz2")
		if rerr != nil {
			t.Fatalf("round trip failed: %v\nserialized: %q", rerr, buf.String())
		}
		if ds2.Len() != ds.Len() {
			t.Fatalf("round trip changed graph count")
		}
		for i := range ds.Graphs {
			a, b := ds.Graphs[i], ds2.Graphs[i]
			if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
				t.Fatalf("round trip changed graph %d shape", i)
			}
		}
	})
}
