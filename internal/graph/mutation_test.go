package graph

import "testing"

func twoVertexGraph(l Label) *Graph {
	g := New(0)
	a := g.AddVertex(l)
	b := g.AddVertex(l)
	g.MustAddEdge(a, b)
	return g
}

// TestDatasetTombstones pins the mutation model: Remove tombstones in
// place (slot kept, Graph nil, Alive false), ids are never reused, and
// every mutation bumps the epoch.
func TestDatasetTombstones(t *testing.T) {
	ds := NewDataset("mut")
	for i := 0; i < 4; i++ {
		ds.Add(twoVertexGraph(Label(i)))
	}
	if got := ds.Epoch(); got != 4 {
		t.Errorf("epoch after 4 adds = %d", got)
	}
	if !ds.Remove(1) {
		t.Fatal("Remove(1) should succeed")
	}
	if ds.Remove(1) {
		t.Error("double remove must report false")
	}
	if ds.Remove(99) || ds.Remove(-1) {
		t.Error("out-of-range remove must report false")
	}
	if got := ds.Epoch(); got != 5 {
		t.Errorf("epoch after remove = %d", got)
	}
	if ds.Alive(1) || ds.Graph(1) != nil {
		t.Error("tombstoned graph must be dead and nil")
	}
	if !ds.Alive(0) || ds.Graph(2) == nil {
		t.Error("live graphs must stay reachable")
	}
	if ds.Len() != 4 || ds.NumAlive() != 3 || ds.NumRemoved() != 1 {
		t.Errorf("len=%d alive=%d removed=%d, want 4, 3, 1", ds.Len(), ds.NumAlive(), ds.NumRemoved())
	}
	if id := ds.Add(twoVertexGraph(9)); id != 4 {
		t.Errorf("re-add assigned id %d, want fresh id 4 (never reuse 1)", id)
	}
	if got, want := ds.LiveIDSet(), (IDSet{0, 2, 3, 4}); !got.Equal(want) {
		t.Errorf("LiveIDSet = %v, want %v", got, want)
	}
}

// TestFilterLive: tombstoned and out-of-range ids drop; the no-tombstone
// fast path returns the input unchanged.
func TestFilterLive(t *testing.T) {
	ds := NewDataset("fl")
	for i := 0; i < 3; i++ {
		ds.Add(twoVertexGraph(Label(i)))
	}
	in := IDSet{0, 1, 2}
	if got := ds.FilterLive(in); &got[0] != &in[0] {
		t.Error("no tombstones: FilterLive should return the input slice")
	}
	ds.Remove(1)
	if got, want := ds.FilterLive(IDSet{0, 1, 2, 7}), (IDSet{0, 2}); !got.Equal(want) {
		t.Errorf("FilterLive = %v, want %v", got, want)
	}
	if got := ds.FilterLive(nil); len(got) != 0 {
		t.Errorf("FilterLive(nil) = %v", got)
	}
}

// TestComputeStatsSkipsTombstones: stats describe the live dataset.
func TestComputeStatsSkipsTombstones(t *testing.T) {
	ds := NewDataset("st")
	for i := 0; i < 3; i++ {
		ds.Add(twoVertexGraph(Label(i)))
	}
	ds.Remove(0)
	if st := ds.ComputeStats(); st.NumGraphs != 2 {
		t.Errorf("stats graphs = %d, want 2 live", st.NumGraphs)
	}
}
