package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// buildPath returns a path graph v0-v1-...-v(n-1) with the given labels.
func buildPath(t *testing.T, labels ...Label) *Graph {
	t.Helper()
	g := New(0)
	for _, l := range labels {
		g.AddVertex(l)
	}
	for i := 1; i < len(labels); i++ {
		if err := g.AddEdge(int32(i-1), int32(i)); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
	}
	return g
}

func buildCycle(t *testing.T, labels ...Label) *Graph {
	t.Helper()
	g := buildPath(t, labels...)
	if len(labels) >= 3 {
		if err := g.AddEdge(int32(len(labels)-1), 0); err != nil {
			t.Fatalf("AddEdge: %v", err)
		}
	}
	return g
}

func TestEmptyGraph(t *testing.T) {
	g := New(0)
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph has vertices or edges")
	}
	if g.Density() != 0 || g.AvgDegree() != 0 {
		t.Fatalf("empty graph has nonzero density/degree")
	}
	if !g.IsConnected() {
		t.Fatalf("empty graph should count as connected")
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := buildPath(t, 1, 2, 3)
	cases := []struct {
		u, v int32
		name string
	}{
		{0, 0, "self-loop"},
		{0, 1, "duplicate"},
		{0, 3, "out of range high"},
		{-1, 0, "out of range low"},
	}
	for _, c := range cases {
		if err := g.AddEdge(c.u, c.v); err == nil {
			t.Errorf("AddEdge(%d,%d) [%s]: want error", c.u, c.v, c.name)
		}
	}
	// Failed AddEdge must not corrupt the structure.
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate after failed adds: %v", err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("edge count changed by failed adds: %d", g.NumEdges())
	}
}

func TestHasEdgeAndNeighbors(t *testing.T) {
	g := buildCycle(t, 1, 2, 3, 4)
	for _, e := range [][2]int32{{0, 1}, {1, 2}, {2, 3}, {3, 0}} {
		if !g.HasEdge(e[0], e[1]) || !g.HasEdge(e[1], e[0]) {
			t.Errorf("missing edge {%d,%d}", e[0], e[1])
		}
	}
	if g.HasEdge(0, 2) || g.HasEdge(1, 3) {
		t.Errorf("unexpected chord present")
	}
	if g.HasEdge(0, 99) || g.HasEdge(-1, 0) {
		t.Errorf("HasEdge out of range should be false")
	}
	want := []int32{1, 3}
	got := g.Neighbors(0)
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("Neighbors(0) = %v, want %v", got, want)
	}
}

func TestDensityAndDegree(t *testing.T) {
	// K4: density 1, avg degree 3.
	g := New(0)
	for i := 0; i < 4; i++ {
		g.AddVertex(1)
	}
	for i := int32(0); i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			g.MustAddEdge(i, j)
		}
	}
	if d := g.Density(); d != 1 {
		t.Errorf("K4 density = %v, want 1", d)
	}
	if d := g.AvgDegree(); d != 3 {
		t.Errorf("K4 avg degree = %v, want 3", d)
	}
	// Path of 5: 4 edges, density 2*4/(5*4) = 0.4.
	p := buildPath(t, 1, 1, 1, 1, 1)
	if d := p.Density(); d != 0.4 {
		t.Errorf("P5 density = %v, want 0.4", d)
	}
}

func TestConnectedComponents(t *testing.T) {
	g := New(0)
	for i := 0; i < 6; i++ {
		g.AddVertex(Label(i))
	}
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(4, 5)
	comps := g.ConnectedComponents()
	if len(comps) != 3 {
		t.Fatalf("components = %d, want 3", len(comps))
	}
	if len(comps[0]) != 3 || len(comps[1]) != 1 || len(comps[2]) != 2 {
		t.Errorf("component sizes = %d,%d,%d", len(comps[0]), len(comps[1]), len(comps[2]))
	}
	if g.IsConnected() {
		t.Errorf("disconnected graph reported connected")
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := buildCycle(t, 1, 2, 3, 4)
	sub, new2old, err := g.InducedSubgraph([]int32{0, 1, 2})
	if err != nil {
		t.Fatalf("InducedSubgraph: %v", err)
	}
	if sub.NumVertices() != 3 || sub.NumEdges() != 2 {
		t.Fatalf("induced P3 wrong shape: %v", sub)
	}
	if len(new2old) != 3 {
		t.Fatalf("mapping length %d", len(new2old))
	}
	if _, _, err := g.InducedSubgraph([]int32{0, 0}); err == nil {
		t.Errorf("duplicate vertex accepted")
	}
	if _, _, err := g.InducedSubgraph([]int32{99}); err == nil {
		t.Errorf("out-of-range vertex accepted")
	}
}

func TestCloneIndependence(t *testing.T) {
	g := buildPath(t, 1, 2, 3)
	c := g.Clone()
	c.AddVertex(9)
	c.MustAddEdge(2, 3)
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Errorf("mutating clone affected original")
	}
	if err := g.Validate(); err != nil {
		t.Errorf("original invalid after clone mutation: %v", err)
	}
}

func TestEdgesDeterministic(t *testing.T) {
	g := buildCycle(t, 1, 2, 3, 4)
	e1 := g.Edges()
	e2 := g.Edges()
	if len(e1) != 4 {
		t.Fatalf("edge count %d", len(e1))
	}
	for i := range e1 {
		if e1[i] != e2[i] {
			t.Fatalf("Edges not deterministic")
		}
		if e1[i][0] >= e1[i][1] {
			t.Fatalf("edge %v not normalized u<v", e1[i])
		}
	}
}

func TestDistinctLabels(t *testing.T) {
	g := buildPath(t, 3, 1, 3, 2)
	got := g.DistinctLabels()
	want := []Label{1, 2, 3}
	if len(got) != len(want) {
		t.Fatalf("DistinctLabels = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DistinctLabels = %v, want %v", got, want)
		}
	}
}

func TestRandomGraphValidates(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(30)
		g := New(0)
		for i := 0; i < n; i++ {
			g.AddVertex(Label(rng.Intn(5)))
		}
		for tries := 0; tries < 3*n; tries++ {
			u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
			if u != v && !g.HasEdge(u, v) {
				g.MustAddEdge(u, v)
			}
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestDatasetStats(t *testing.T) {
	ds := NewDataset("test")
	ds.Add(buildPath(t, 0, 1, 2))  // 3 nodes, 2 edges, connected
	ds.Add(buildCycle(t, 0, 1, 2)) // 3 nodes, 3 edges
	g3 := New(0)                   // disconnected: two isolated vertices
	g3.AddVertex(0)
	g3.AddVertex(5)
	ds.Add(g3)
	s := ds.ComputeStats()
	if s.NumGraphs != 3 {
		t.Errorf("NumGraphs = %d", s.NumGraphs)
	}
	if s.NumDisconnected != 1 {
		t.Errorf("NumDisconnected = %d, want 1", s.NumDisconnected)
	}
	if s.NumLabels != 4 { // 0,1,2,5
		t.Errorf("NumLabels = %d, want 4", s.NumLabels)
	}
	wantAvgNodes := (3.0 + 3.0 + 2.0) / 3.0
	if s.AvgNodes != wantAvgNodes {
		t.Errorf("AvgNodes = %v, want %v", s.AvgNodes, wantAvgNodes)
	}
	if err := ds.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestIDSetOps(t *testing.T) {
	a := NewIDSet(3, 1, 2, 3, 1)
	if !a.Equal(IDSet{1, 2, 3}) {
		t.Fatalf("NewIDSet dedup/sort failed: %v", a)
	}
	b := IDSet{2, 3, 4}
	if got := a.Intersect(b); !got.Equal(IDSet{2, 3}) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Union(b); !got.Equal(IDSet{1, 2, 3, 4}) {
		t.Errorf("Union = %v", got)
	}
	if !a.Contains(2) || a.Contains(9) {
		t.Errorf("Contains failed")
	}
	u := UniverseIDSet(3)
	if !u.Equal(IDSet{0, 1, 2}) {
		t.Errorf("Universe = %v", u)
	}
	empty := IDSet{}
	if got := empty.Intersect(a); len(got) != 0 {
		t.Errorf("empty intersect = %v", got)
	}
	if got := empty.Union(a); !got.Equal(a) {
		t.Errorf("empty union = %v", got)
	}
}

func TestIDSetIntersectProperty(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		var a, b IDSet
		for _, x := range xs {
			a = append(a, ID(x))
		}
		for _, y := range ys {
			b = append(b, ID(y))
		}
		a, b = NewIDSet(a...), NewIDSet(b...)
		got := a.Intersect(b)
		// Every element of got is in both; every common element is in got.
		for _, id := range got {
			if !a.Contains(id) || !b.Contains(id) {
				return false
			}
		}
		for _, id := range a {
			if b.Contains(id) && !got.Contains(id) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestIORoundTrip(t *testing.T) {
	ds := NewDataset("rt")
	la := ds.Dict.Intern("C")
	lb := ds.Dict.Intern("N")
	g := New(0)
	g.AddVertex(la)
	g.AddVertex(lb)
	g.AddVertex(la)
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	ds.Add(g)
	g2 := New(0)
	g2.AddVertex(lb)
	ds.Add(g2)

	var buf bytes.Buffer
	if err := WriteDataset(&buf, ds); err != nil {
		t.Fatalf("Write: %v", err)
	}
	got, err := ReadDataset(&buf, "rt")
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if got.Len() != 2 {
		t.Fatalf("round trip lost graphs: %d", got.Len())
	}
	rg := got.Graph(0)
	if rg.NumVertices() != 3 || rg.NumEdges() != 2 {
		t.Fatalf("graph 0 shape changed: %v", rg)
	}
	if got.Dict.Name(rg.Label(0)) != "C" || got.Dict.Name(rg.Label(1)) != "N" {
		t.Fatalf("labels lost in round trip")
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestReadDatasetErrors(t *testing.T) {
	cases := []struct {
		name, in string
	}{
		{"no header", "2\nA\nB\n0\n"},
		{"bad vertex count", "#g\nxx\n"},
		{"missing labels", "#g\n2\nA\n"},
		{"bad edge count", "#g\n1\nA\nzz\n"},
		{"bad edge line", "#g\n2\nA\nB\n1\n0\n"},
		{"edge out of range", "#g\n2\nA\nB\n1\n0 5\n"},
		{"self loop", "#g\n2\nA\nB\n1\n1 1\n"},
	}
	for _, c := range cases {
		if _, err := ReadDataset(strings.NewReader(c.in), c.name); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}

func TestDictionary(t *testing.T) {
	var d Dictionary
	a := d.Intern("x")
	b := d.Intern("y")
	if a == b {
		t.Fatalf("distinct names share a label")
	}
	if got := d.Intern("x"); got != a {
		t.Fatalf("re-intern changed label")
	}
	if l, ok := d.Lookup("y"); !ok || l != b {
		t.Fatalf("Lookup failed")
	}
	if _, ok := d.Lookup("zzz"); ok {
		t.Fatalf("Lookup of unknown name succeeded")
	}
	if d.Name(a) != "x" || d.Name(Label(99)) != "" {
		t.Fatalf("Name failed")
	}
	if d.Len() != 2 {
		t.Fatalf("Len = %d", d.Len())
	}
}
