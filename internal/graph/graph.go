// Package graph provides the labelled undirected graph model shared by all
// indexing methods in this repository: graphs, datasets, structural
// statistics, and (de)serialization.
//
// Graphs follow Definition 1 of the paper: a set of vertices, a set of
// undirected edges, and a labelling function assigning exactly one label to
// each vertex. Vertices are identified by dense non-negative integers local
// to their graph; labels are small integers interned through a dataset-level
// dictionary so the index structures can treat them as array offsets.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// Label is a vertex label identifier, interned via Dictionary.
type Label int32

// ID identifies a graph within a Dataset (its position in Dataset.Graphs).
type ID int32

// Graph is a labelled undirected graph. The zero value is an empty graph
// ready for use via AddVertex / AddEdge.
type Graph struct {
	id     ID
	labels []Label
	adj    [][]int32
	edges  int
}

// New returns an empty graph with the given dataset-local id.
func New(id ID) *Graph {
	return &Graph{id: id}
}

// NewWithCapacity returns an empty graph preallocated for n vertices.
func NewWithCapacity(id ID, n int) *Graph {
	return &Graph{
		id:     id,
		labels: make([]Label, 0, n),
		adj:    make([][]int32, 0, n),
	}
}

// ID returns the dataset-local identifier of the graph.
func (g *Graph) ID() ID { return g.id }

// SetID updates the dataset-local identifier of the graph.
func (g *Graph) SetID(id ID) { g.id = id }

// NumVertices returns the number of vertices in the graph.
func (g *Graph) NumVertices() int { return len(g.labels) }

// NumEdges returns the number of undirected edges in the graph.
func (g *Graph) NumEdges() int { return g.edges }

// Label returns the label of vertex v.
func (g *Graph) Label(v int32) Label { return g.labels[v] }

// Labels returns the label slice indexed by vertex. The caller must not
// modify the returned slice.
func (g *Graph) Labels() []Label { return g.labels }

// Degree returns the number of edges incident to vertex v.
func (g *Graph) Degree(v int32) int { return len(g.adj[v]) }

// Neighbors returns the adjacency list of vertex v, sorted ascending.
// The caller must not modify the returned slice.
func (g *Graph) Neighbors(v int32) []int32 { return g.adj[v] }

// AddVertex appends a vertex with the given label and returns its id.
func (g *Graph) AddVertex(l Label) int32 {
	g.labels = append(g.labels, l)
	g.adj = append(g.adj, nil)
	return int32(len(g.labels) - 1)
}

// HasEdge reports whether the undirected edge {u, v} exists.
func (g *Graph) HasEdge(u, v int32) bool {
	if u < 0 || v < 0 || int(u) >= len(g.adj) || int(v) >= len(g.adj) {
		return false
	}
	// Search the shorter adjacency list.
	a := g.adj[u]
	if len(g.adj[v]) < len(a) {
		a, v = g.adj[v], u
	}
	i := sort.Search(len(a), func(i int) bool { return a[i] >= v })
	return i < len(a) && a[i] == v
}

// AddEdge inserts the undirected edge {u, v}. It returns an error if either
// endpoint is out of range, if u == v (self-loops are not part of the model),
// or if the edge already exists.
func (g *Graph) AddEdge(u, v int32) error {
	n := int32(len(g.labels))
	switch {
	case u < 0 || u >= n || v < 0 || v >= n:
		return fmt.Errorf("graph: edge {%d,%d} out of range [0,%d)", u, v, n)
	case u == v:
		return fmt.Errorf("graph: self-loop on vertex %d", u)
	case g.HasEdge(u, v):
		return fmt.Errorf("graph: duplicate edge {%d,%d}", u, v)
	}
	g.adj[u] = insertSorted(g.adj[u], v)
	g.adj[v] = insertSorted(g.adj[v], u)
	g.edges++
	return nil
}

// MustAddEdge is AddEdge for construction code paths where the edge is known
// valid; it panics on error.
func (g *Graph) MustAddEdge(u, v int32) {
	if err := g.AddEdge(u, v); err != nil {
		panic(err)
	}
}

func insertSorted(a []int32, v int32) []int32 {
	i := sort.Search(len(a), func(i int) bool { return a[i] >= v })
	a = append(a, 0)
	copy(a[i+1:], a[i:])
	a[i] = v
	return a
}

// Density returns the graph density of Definition 4:
// 2|E| / (|V|(|V|-1)), in [0,1]. Graphs with fewer than two vertices have
// density 0.
func (g *Graph) Density() float64 {
	n := len(g.labels)
	if n < 2 {
		return 0
	}
	return 2 * float64(g.edges) / (float64(n) * float64(n-1))
}

// AvgDegree returns the average vertex degree of Definition 5: 2|E|/|V|.
func (g *Graph) AvgDegree() float64 {
	if len(g.labels) == 0 {
		return 0
	}
	return 2 * float64(g.edges) / float64(len(g.labels))
}

// DistinctLabels returns the sorted set of labels used in the graph.
func (g *Graph) DistinctLabels() []Label {
	seen := make(map[Label]struct{}, 16)
	for _, l := range g.labels {
		seen[l] = struct{}{}
	}
	out := make([]Label, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Edges returns all undirected edges as (u, v) pairs with u < v, in
// deterministic order.
func (g *Graph) Edges() [][2]int32 {
	out := make([][2]int32, 0, g.edges)
	for u := int32(0); int(u) < len(g.adj); u++ {
		for _, v := range g.adj[u] {
			if u < v {
				out = append(out, [2]int32{u, v})
			}
		}
	}
	return out
}

// ShallowWithID returns a copy of the graph that shares the label and
// adjacency storage (immutable once construction is done) but carries a
// different dataset-local id. Sharding uses it to re-home graphs into
// per-shard sub-datasets without duplicating or mutating the originals.
func (g *Graph) ShallowWithID(id ID) *Graph {
	c := *g
	c.id = id
	return &c
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		id:     g.id,
		labels: append([]Label(nil), g.labels...),
		adj:    make([][]int32, len(g.adj)),
		edges:  g.edges,
	}
	for i, a := range g.adj {
		c.adj[i] = append([]int32(nil), a...)
	}
	return c
}

// ConnectedComponents returns the vertex sets of the connected components of
// the graph, each sorted ascending, ordered by smallest contained vertex.
func (g *Graph) ConnectedComponents() [][]int32 {
	n := len(g.labels)
	comp := make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	var comps [][]int32
	stack := make([]int32, 0, n)
	for s := int32(0); int(s) < n; s++ {
		if comp[s] >= 0 {
			continue
		}
		c := int32(len(comps))
		members := []int32{}
		stack = append(stack[:0], s)
		comp[s] = c
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			members = append(members, v)
			for _, w := range g.adj[v] {
				if comp[w] < 0 {
					comp[w] = c
					stack = append(stack, w)
				}
			}
		}
		sort.Slice(members, func(i, j int) bool { return members[i] < members[j] })
		comps = append(comps, members)
	}
	return comps
}

// IsConnected reports whether the graph has exactly one connected component.
// The empty graph is considered connected.
func (g *Graph) IsConnected() bool {
	if len(g.labels) == 0 {
		return true
	}
	return len(g.ConnectedComponents()) == 1
}

// InducedSubgraph returns the subgraph induced by the given vertices together
// with the mapping from new vertex ids to original ids. Vertices may be given
// in any order; duplicates are an error.
func (g *Graph) InducedSubgraph(vertices []int32) (*Graph, []int32, error) {
	sub := NewWithCapacity(g.id, len(vertices))
	old2new := make(map[int32]int32, len(vertices))
	new2old := make([]int32, 0, len(vertices))
	for _, v := range vertices {
		if v < 0 || int(v) >= len(g.labels) {
			return nil, nil, fmt.Errorf("graph: vertex %d out of range", v)
		}
		if _, dup := old2new[v]; dup {
			return nil, nil, fmt.Errorf("graph: duplicate vertex %d", v)
		}
		old2new[v] = sub.AddVertex(g.labels[v])
		new2old = append(new2old, v)
	}
	for _, v := range vertices {
		for _, w := range g.adj[v] {
			nw, ok := old2new[w]
			if !ok {
				continue
			}
			nv := old2new[v]
			if nv < nw {
				sub.MustAddEdge(nv, nw)
			}
		}
	}
	return sub, new2old, nil
}

// Validate checks internal consistency (sorted symmetric adjacency, edge
// count, no self-loops) and returns a descriptive error on the first
// violation. It is intended for tests and for data loaded from disk.
func (g *Graph) Validate() error {
	if len(g.labels) != len(g.adj) {
		return errors.New("graph: label/adjacency length mismatch")
	}
	count := 0
	for u := int32(0); int(u) < len(g.adj); u++ {
		prev := int32(-1)
		for _, v := range g.adj[u] {
			if v < 0 || int(v) >= len(g.labels) {
				return fmt.Errorf("graph: neighbor %d of %d out of range", v, u)
			}
			if v == u {
				return fmt.Errorf("graph: self-loop on %d", u)
			}
			if v <= prev {
				return fmt.Errorf("graph: adjacency of %d not strictly sorted", u)
			}
			prev = v
			if !contains(g.adj[v], u) {
				return fmt.Errorf("graph: edge {%d,%d} not symmetric", u, v)
			}
			count++
		}
	}
	if count != 2*g.edges {
		return fmt.Errorf("graph: edge count %d inconsistent with adjacency (%d half-edges)", g.edges, count)
	}
	return nil
}

func contains(a []int32, v int32) bool {
	i := sort.Search(len(a), func(i int) bool { return a[i] >= v })
	return i < len(a) && a[i] == v
}

// String returns a compact human-readable rendering, mainly for tests.
func (g *Graph) String() string {
	return fmt.Sprintf("graph %d: %d vertices, %d edges", g.id, len(g.labels), g.edges)
}

// SizeBytes estimates the in-memory footprint of the graph structure.
func (g *Graph) SizeBytes() int64 {
	sz := int64(len(g.labels)) * 4
	for _, a := range g.adj {
		sz += int64(len(a))*4 + 24
	}
	return sz + 48
}
