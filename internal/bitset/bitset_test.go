package bitset

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSetGetClear(t *testing.T) {
	b := New(130)
	if b.Len() != 130 {
		t.Fatalf("Len = %d", b.Len())
	}
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if b.Get(i) {
			t.Fatalf("bit %d set in fresh bitset", i)
		}
		b.Set(i)
		if !b.Get(i) {
			t.Fatalf("bit %d not set after Set", i)
		}
	}
	if b.OnesCount() != 8 {
		t.Fatalf("OnesCount = %d, want 8", b.OnesCount())
	}
	b.Clear(64)
	if b.Get(64) || b.OnesCount() != 7 {
		t.Fatalf("Clear failed")
	}
}

func TestSubset(t *testing.T) {
	a := New(256)
	b := New(256)
	for _, i := range []int{3, 70, 200} {
		a.Set(i)
		b.Set(i)
	}
	b.Set(100)
	if !a.IsSubsetOf(b) {
		t.Fatalf("a should be subset of b")
	}
	if b.IsSubsetOf(a) {
		t.Fatalf("b should not be subset of a")
	}
	if !a.IsSubsetOf(a) {
		t.Fatalf("a should be subset of itself")
	}
	empty := New(256)
	if !empty.IsSubsetOf(a) {
		t.Fatalf("empty should be subset of anything")
	}
}

func TestOrEqualClone(t *testing.T) {
	a := New(100)
	b := New(100)
	a.Set(5)
	b.Set(99)
	c := a.Clone()
	c.Or(b)
	if !c.Get(5) || !c.Get(99) {
		t.Fatalf("Or missing bits")
	}
	if a.Get(99) {
		t.Fatalf("Or mutated source clone origin")
	}
	if a.Equal(b) || !a.Equal(a.Clone()) {
		t.Fatalf("Equal broken")
	}
	if a.Equal(New(101)) {
		t.Fatalf("different lengths reported equal")
	}
}

func TestSubsetProperty(t *testing.T) {
	// If a's bits are a subset of b's by construction, IsSubsetOf holds, and
	// the union of a and b equals b.
	f := func(bits []uint16, extra []uint16) bool {
		a := New(1 << 16)
		b := New(1 << 16)
		for _, i := range bits {
			a.Set(int(i))
			b.Set(int(i))
		}
		for _, i := range extra {
			b.Set(int(i))
		}
		if !a.IsSubsetOf(b) {
			return false
		}
		u := a.Clone()
		u.Or(b)
		return u.Equal(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestOnesCountMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	b := New(1000)
	set := map[int]bool{}
	for i := 0; i < 300; i++ {
		k := rng.Intn(1000)
		b.Set(k)
		set[k] = true
	}
	if b.OnesCount() != len(set) {
		t.Fatalf("OnesCount = %d, want %d", b.OnesCount(), len(set))
	}
}

func TestSizeBytes(t *testing.T) {
	if New(4096).SizeBytes() < 512 {
		t.Fatalf("4096-bit bitset smaller than 512 bytes")
	}
}
