// Package bitset provides fixed-size bit arrays used for CT-Index
// fingerprints and for candidate-set bookkeeping.
package bitset

import "math/bits"

// Bitset is a fixed-size bit array. Create with New; the size is set at
// construction and never changes.
type Bitset struct {
	words []uint64
	n     int
}

// New returns a Bitset with n bits, all zero.
func New(n int) *Bitset {
	return &Bitset{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the number of bits.
func (b *Bitset) Len() int { return b.n }

// Set sets bit i.
func (b *Bitset) Set(i int) { b.words[i>>6] |= 1 << (uint(i) & 63) }

// Clear clears bit i.
func (b *Bitset) Clear(i int) { b.words[i>>6] &^= 1 << (uint(i) & 63) }

// Get reports whether bit i is set.
func (b *Bitset) Get(i int) bool { return b.words[i>>6]&(1<<(uint(i)&63)) != 0 }

// OnesCount returns the number of set bits.
func (b *Bitset) OnesCount() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// IsSubsetOf reports whether every set bit of b is also set in other
// (b AND other == b). Both bitsets must have the same length.
func (b *Bitset) IsSubsetOf(other *Bitset) bool {
	for i, w := range b.words {
		if w&^other.words[i] != 0 {
			return false
		}
	}
	return true
}

// Or sets b to b OR other in place.
func (b *Bitset) Or(other *Bitset) {
	for i := range b.words {
		b.words[i] |= other.words[i]
	}
}

// Equal reports whether two bitsets have identical bits.
func (b *Bitset) Equal(other *Bitset) bool {
	if b.n != other.n {
		return false
	}
	for i, w := range b.words {
		if w != other.words[i] {
			return false
		}
	}
	return true
}

// Clone returns a copy of b.
func (b *Bitset) Clone() *Bitset {
	return &Bitset{words: append([]uint64(nil), b.words...), n: b.n}
}

// SizeBytes returns the memory footprint of the bit array.
func (b *Bitset) SizeBytes() int64 { return int64(len(b.words))*8 + 16 }

// Words exposes the packed 64-bit words for serialization. The caller must
// not modify the returned slice.
func (b *Bitset) Words() []uint64 { return b.words }

// FromWords reconstructs a Bitset of n bits from its packed words (as
// returned by Words). It returns nil if the word count does not match n.
func FromWords(n int, words []uint64) *Bitset {
	if len(words) != (n+63)/64 {
		return nil
	}
	return &Bitset{words: append([]uint64(nil), words...), n: n}
}
