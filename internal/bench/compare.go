package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
)

// CompareOptions tunes the perf-trajectory gate.
type CompareOptions struct {
	// Threshold is the tolerated relative slowdown: 0.30 fails cells more
	// than 30% slower than the baseline.
	Threshold float64
	// QueryFloorSeconds is an absolute slack under which query-time deltas
	// are noise, not regressions: a cell must be both Threshold-fraction
	// and floor slower to fail. Micro-cells in the bench scale run in
	// microseconds, where scheduler jitter dwarfs any real signal.
	QueryFloorSeconds float64
	// BuildFloorSeconds is the same slack for index construction, which
	// jitters far more: a sub-second bench-scale build can swing 2x on a
	// loaded runner, so builds only gate once they cost real time.
	BuildFloorSeconds float64
}

func (o CompareOptions) withDefaults() CompareOptions {
	if o.Threshold <= 0 {
		o.Threshold = 0.30
	}
	if o.QueryFloorSeconds <= 0 {
		o.QueryFloorSeconds = 0.005
	}
	if o.BuildFloorSeconds <= 0 {
		o.BuildFloorSeconds = 1.0
	}
	return o
}

// cellKey addresses one cell across reports: experiment, point, method.
func cellKey(exp, point, method string) string {
	return exp + " / " + point + " / " + method
}

func indexCells(r *JSONReport) map[string]JSONCell {
	out := map[string]JSONCell{}
	for _, group := range [][]JSONExperiment{r.Experiments, r.Ablations} {
		for _, e := range group {
			for _, p := range e.Points {
				for _, c := range p.Methods {
					out[cellKey(e.Name, p.Label, c.Method)] = c
				}
			}
		}
	}
	return out
}

// CompareReports checks a fresh sqbench run against a committed baseline
// and returns one line per regression (empty = pass). It fails on:
//
//   - cells present in the baseline but missing from the fresh run, or
//     newly DNF — coverage must never silently shrink;
//   - query or build time more than Threshold slower (beyond
//     FloorSeconds of absolute slack);
//   - candidate-set drift — filtering is deterministic for a fixed seed,
//     so any change in avg_candidates or fp_ratio means pruning behavior
//     changed and the baseline must be consciously regenerated.
//
// Cells that got faster, or that are new in the fresh run, never fail: the
// trajectory only gates against losing ground.
func CompareReports(baseline, current *JSONReport, opts CompareOptions) []string {
	opts = opts.withDefaults()
	base := indexCells(baseline)
	cur := indexCells(current)

	var bad []string
	for key, b := range base {
		c, ok := cur[key]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: cell missing from fresh run", key))
			continue
		}
		if c.DNF && !b.DNF {
			bad = append(bad, fmt.Sprintf("%s: newly DNF (%s)", key, c.Reason))
			continue
		}
		if b.DNF {
			continue // baseline had nothing to regress from
		}
		if slower(b.AvgQuerySeconds, c.AvgQuerySeconds, opts.Threshold, opts.QueryFloorSeconds) {
			bad = append(bad, fmt.Sprintf("%s: avg query %.3fms -> %.3fms (+%.0f%%)",
				key, b.AvgQuerySeconds*1e3, c.AvgQuerySeconds*1e3,
				100*(c.AvgQuerySeconds/b.AvgQuerySeconds-1)))
		}
		// First-answer latency gates only against baselines that recorded
		// it (older baselines predate the lazy pipeline), under the same
		// noise floor as whole-query time: micro-cell first answers land
		// in microseconds, where jitter is not signal.
		if b.FirstAnswerNs > 0 && slower(float64(b.FirstAnswerNs)/1e9, float64(c.FirstAnswerNs)/1e9,
			opts.Threshold, opts.QueryFloorSeconds) {
			bad = append(bad, fmt.Sprintf("%s: first answer %.3fms -> %.3fms (+%.0f%%)",
				key, float64(b.FirstAnswerNs)/1e6, float64(c.FirstAnswerNs)/1e6,
				100*(float64(c.FirstAnswerNs)/float64(b.FirstAnswerNs)-1)))
		}
		// Cold-open latency gates only against baselines that recorded it
		// (older baselines predate the disk-native tier). Opens are
		// O(header) and land in microseconds, so they share the query
		// noise floor.
		if b.OpenNs > 0 && slower(float64(b.OpenNs)/1e9, float64(c.OpenNs)/1e9,
			opts.Threshold, opts.QueryFloorSeconds) {
			bad = append(bad, fmt.Sprintf("%s: cold open %.3fms -> %.3fms (+%.0f%%)",
				key, float64(b.OpenNs)/1e6, float64(c.OpenNs)/1e6,
				100*(float64(c.OpenNs)/float64(b.OpenNs)-1)))
		}
		if slower(b.BuildSeconds, c.BuildSeconds, opts.Threshold, opts.BuildFloorSeconds) {
			bad = append(bad, fmt.Sprintf("%s: build %.3fs -> %.3fs (+%.0f%%)",
				key, b.BuildSeconds, c.BuildSeconds,
				100*(c.BuildSeconds/b.BuildSeconds-1)))
		}
		if drifted(b.AvgCandidates, c.AvgCandidates) {
			bad = append(bad, fmt.Sprintf("%s: avg candidates drifted %.4f -> %.4f (pruning changed; regenerate the baseline deliberately)",
				key, b.AvgCandidates, c.AvgCandidates))
		}
		if drifted(b.FPRatio, c.FPRatio) {
			bad = append(bad, fmt.Sprintf("%s: fp ratio drifted %.4f -> %.4f (pruning changed; regenerate the baseline deliberately)",
				key, b.FPRatio, c.FPRatio))
		}
	}
	return bad
}

// FirstAnswerImprovements reports streaming cells whose time-to-first-
// answer beats the baseline — against the baseline's own first_answer_ns
// when it recorded one, and otherwise against its whole-query time, the
// pre-pipeline bound (first answers then required draining the full
// candidate scan). Lines are sorted for stable output.
func FirstAnswerImprovements(baseline, current *JSONReport) []string {
	base := indexCells(baseline)
	cur := indexCells(current)
	var out []string
	for key, c := range cur {
		if c.FirstAnswerNs <= 0 {
			continue
		}
		b, ok := base[key]
		if !ok || b.DNF {
			continue
		}
		ref, refName := float64(b.FirstAnswerNs), "baseline first answer"
		if ref <= 0 {
			ref, refName = b.AvgQuerySeconds*1e9, "baseline full-query bound"
		}
		if ref <= 0 || float64(c.FirstAnswerNs) >= ref {
			continue
		}
		out = append(out, fmt.Sprintf("%s: first answer %.3fms vs %.3fms %s (-%.0f%%)",
			key, float64(c.FirstAnswerNs)/1e6, ref/1e6, refName,
			100*(1-float64(c.FirstAnswerNs)/ref)))
	}
	sort.Strings(out)
	return out
}

func slower(base, cur, threshold, floor float64) bool {
	if base <= 0 {
		return false
	}
	return cur > base*(1+threshold) && cur-base > floor
}

// drifted reports a deterministic metric that changed beyond float noise.
func drifted(base, cur float64) bool {
	diff := math.Abs(cur - base)
	scale := math.Max(math.Abs(base), math.Abs(cur))
	return diff > 1e-6*math.Max(scale, 1)
}

// LoadJSONReport reads a committed sqbench -json document.
func LoadJSONReport(path string) (*JSONReport, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r JSONReport
	if err := json.Unmarshal(b, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}
