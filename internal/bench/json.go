package bench

import (
	"encoding/json"
	"io"
	"strconv"

	"repro/internal/graph"
)

// JSONCell is one (method, point) cell in machine-readable form: the
// MethodResult fields CI trajectory tooling ingests, durations as seconds.
type JSONCell struct {
	Method string `json:"method"`
	// Spec is the full engine spec the cell ran with, so ablation and
	// experiment records are self-describing.
	Spec                 string             `json:"spec,omitempty"`
	DNF                  bool               `json:"dnf,omitempty"`
	Reason               string             `json:"reason,omitempty"`
	BuildSeconds         float64            `json:"build_seconds"`
	IndexBytes           int64              `json:"index_bytes"`
	Shards               int                `json:"shards,omitempty"`
	ShardBuildSumSeconds float64            `json:"shard_build_sum_seconds,omitempty"`
	AvgQuerySeconds      float64            `json:"avg_query_seconds"`
	FPRatio              float64            `json:"fp_ratio"`
	AvgCandidates        float64            `json:"avg_candidates"`
	AvgAnswers           float64            `json:"avg_answers"`
	Queries              int                `json:"queries"`
	TimeBySizeSeconds    map[string]float64 `json:"time_by_size_seconds,omitempty"`
	FPBySize             map[string]float64 `json:"fp_by_size,omitempty"`
	// FirstAnswerNs is the mean wall time to the first streamed answer in
	// nanoseconds (the lazy pipeline's time-to-first-result);
	// VerifiedCandidates is the mean verifier invocations per one-shot
	// query. Both are omitted in baselines predating the lazy pipeline,
	// and the compare gate only applies them when the baseline has them.
	FirstAnswerNs      int64   `json:"first_answer_ns,omitempty"`
	VerifiedCandidates float64 `json:"verified_candidates,omitempty"`
	// OpenNs is the cold-start wall time to open the cell's persisted v2
	// index with storage=mmap (header and directories only, no payload
	// decode); ResidentBytes is the index's resident heap footprint right
	// after that open, against index_bytes as the fully-decoded bound.
	// Both are omitted for methods without a v2 section format and in
	// baselines predating the disk-native tier.
	OpenNs        int64 `json:"open_ns,omitempty"`
	ResidentBytes int64 `json:"resident_bytes,omitempty"`
}

// JSONPoint is one x-axis point with all its method cells.
type JSONPoint struct {
	Label   string     `json:"label"`
	X       float64    `json:"x"`
	Methods []JSONCell `json:"methods"`
}

// JSONExperiment is one experiment or ablation sweep. Ablations render as
// one point per variant (XAxis "variant") with a single cell each.
type JSONExperiment struct {
	Name   string      `json:"name"`
	Title  string      `json:"title"`
	XAxis  string      `json:"xaxis"`
	Points []JSONPoint `json:"points"`
}

// JSONDataset is one Table 1 column: a dataset's name and characteristics.
type JSONDataset struct {
	Dataset string      `json:"dataset"`
	Stats   graph.Stats `json:"stats"`
}

// JSONReport is the sqbench -json document: everything the invocation ran.
type JSONReport struct {
	Table1      []JSONDataset    `json:"table1,omitempty"`
	Experiments []JSONExperiment `json:"experiments,omitempty"`
	Ablations   []JSONExperiment `json:"ablations,omitempty"`
	Cache       []CacheResult    `json:"cache_ablation,omitempty"`
	Router      []RouterResult   `json:"router_ablation,omitempty"`
	Update      []UpdateResult   `json:"update_ablation,omitempty"`
}

// Table1JSON converts the Table 1 dataset characteristics.
func Table1JSON(names []string, stats []graph.Stats) []JSONDataset {
	out := make([]JSONDataset, len(names))
	for i, n := range names {
		out[i] = JSONDataset{Dataset: n, Stats: stats[i]}
	}
	return out
}

func cellJSON(mr MethodResult) JSONCell {
	c := JSONCell{
		Method:               string(mr.Method),
		Spec:                 mr.Spec,
		DNF:                  mr.DNF,
		Reason:               mr.Reason,
		BuildSeconds:         mr.BuildTime.Seconds(),
		IndexBytes:           mr.IndexSize,
		Shards:               mr.Shards,
		ShardBuildSumSeconds: mr.ShardBuildSum.Seconds(),
		AvgQuerySeconds:      mr.AvgQueryTime.Seconds(),
		FPRatio:              mr.FPRatio,
		AvgCandidates:        mr.AvgCandidates,
		AvgAnswers:           mr.AvgAnswers,
		Queries:              mr.QueriesRun,
		FirstAnswerNs:        mr.AvgFirstAnswer.Nanoseconds(),
		VerifiedCandidates:   mr.AvgVerified,
		OpenNs:               mr.ColdOpen.Nanoseconds(),
		ResidentBytes:        mr.ColdResident,
	}
	if len(mr.TimeBySize) > 0 {
		c.TimeBySizeSeconds = make(map[string]float64, len(mr.TimeBySize))
		for size, t := range mr.TimeBySize {
			c.TimeBySizeSeconds[strconv.Itoa(size)] = t.Seconds()
		}
	}
	if len(mr.FPBySize) > 0 {
		c.FPBySize = make(map[string]float64, len(mr.FPBySize))
		for size, fp := range mr.FPBySize {
			c.FPBySize[strconv.Itoa(size)] = fp
		}
	}
	return c
}

// ExperimentJSON converts one figure experiment's results.
func ExperimentJSON(exp Experiment, results []PointResult) JSONExperiment {
	je := JSONExperiment{Name: exp.Name, Title: exp.Title, XAxis: exp.XAxis}
	for _, pr := range results {
		pt := JSONPoint{Label: pr.Spec.Label, X: pr.Spec.X}
		for _, mr := range pr.Methods {
			pt.Methods = append(pt.Methods, cellJSON(mr))
		}
		je.Points = append(je.Points, pt)
	}
	return je
}

// AblationJSON converts one ablation study's results: one point per
// variant, in sweep order.
func AblationJSON(ab Ablation, results []MethodResult) JSONExperiment {
	je := JSONExperiment{Name: "ablation/" + ab.Name, Title: ab.Title, XAxis: "variant"}
	for i, mr := range results {
		je.Points = append(je.Points, JSONPoint{
			Label:   string(mr.Method),
			X:       float64(i),
			Methods: []JSONCell{cellJSON(mr)},
		})
	}
	return je
}

// WriteJSONReport writes the indented JSON document.
func WriteJSONReport(w io.Writer, r *JSONReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
