package bench

import (
	"strings"
	"testing"
)

func reportWith(cells ...JSONCell) *JSONReport {
	pts := make([]JSONPoint, len(cells))
	for i, c := range cells {
		pts[i] = JSONPoint{Label: "p" + c.Method, Methods: []JSONCell{c}}
	}
	return &JSONReport{Experiments: []JSONExperiment{{Name: "fig2", Points: pts}}}
}

func TestCompareReportsPassesOnParityAndImprovement(t *testing.T) {
	base := reportWith(
		JSONCell{Method: "grapes", AvgQuerySeconds: 0.100, BuildSeconds: 1.0, AvgCandidates: 12, FPRatio: 1.5},
		JSONCell{Method: "ggsx", AvgQuerySeconds: 0.200, BuildSeconds: 2.0, AvgCandidates: 8, FPRatio: 1.2},
	)
	cur := reportWith(
		JSONCell{Method: "grapes", AvgQuerySeconds: 0.050, BuildSeconds: 0.9, AvgCandidates: 12, FPRatio: 1.5},
		JSONCell{Method: "ggsx", AvgQuerySeconds: 0.210, BuildSeconds: 2.1, AvgCandidates: 8, FPRatio: 1.2},
		JSONCell{Method: "gcode", AvgQuerySeconds: 9.9, BuildSeconds: 9.9}, // new cells never fail
	)
	if bad := CompareReports(base, cur, CompareOptions{}); len(bad) != 0 {
		t.Fatalf("unexpected regressions: %v", bad)
	}
}

func TestCompareReportsFlagsSlowdown(t *testing.T) {
	base := reportWith(JSONCell{Method: "grapes", AvgQuerySeconds: 0.100, BuildSeconds: 1.0, AvgCandidates: 12, FPRatio: 1.5})
	cur := reportWith(JSONCell{Method: "grapes", AvgQuerySeconds: 0.140, BuildSeconds: 1.0, AvgCandidates: 12, FPRatio: 1.5})
	bad := CompareReports(base, cur, CompareOptions{})
	if len(bad) != 1 || !strings.Contains(bad[0], "avg query") {
		t.Fatalf("40%% query slowdown not flagged: %v", bad)
	}

	// Under the floor, the same ratio is jitter, not a regression.
	base = reportWith(JSONCell{Method: "grapes", AvgQuerySeconds: 0.0001, BuildSeconds: 1.0})
	cur = reportWith(JSONCell{Method: "grapes", AvgQuerySeconds: 0.0002, BuildSeconds: 1.0})
	if bad := CompareReports(base, cur, CompareOptions{}); len(bad) != 0 {
		t.Fatalf("sub-floor jitter flagged: %v", bad)
	}
}

func TestCompareReportsGatesFirstAnswerLatency(t *testing.T) {
	// A real first-answer regression beyond the noise floor fails.
	base := reportWith(JSONCell{Method: "grapes", AvgQuerySeconds: 0.1, BuildSeconds: 1.0, FirstAnswerNs: 100e6})
	cur := reportWith(JSONCell{Method: "grapes", AvgQuerySeconds: 0.1, BuildSeconds: 1.0, FirstAnswerNs: 150e6})
	bad := CompareReports(base, cur, CompareOptions{})
	if len(bad) != 1 || !strings.Contains(bad[0], "first answer") {
		t.Fatalf("50%% first-answer slowdown not flagged: %v", bad)
	}

	// Under the floor, the same ratio is scheduler jitter.
	base = reportWith(JSONCell{Method: "grapes", AvgQuerySeconds: 0.1, BuildSeconds: 1.0, FirstAnswerNs: 1e5})
	cur = reportWith(JSONCell{Method: "grapes", AvgQuerySeconds: 0.1, BuildSeconds: 1.0, FirstAnswerNs: 2e5})
	if bad := CompareReports(base, cur, CompareOptions{}); len(bad) != 0 {
		t.Fatalf("sub-floor first-answer jitter flagged: %v", bad)
	}

	// Baselines predating the metric never gate on it.
	base = reportWith(JSONCell{Method: "grapes", AvgQuerySeconds: 0.1, BuildSeconds: 1.0})
	cur = reportWith(JSONCell{Method: "grapes", AvgQuerySeconds: 0.1, BuildSeconds: 1.0, FirstAnswerNs: 9e9})
	if bad := CompareReports(base, cur, CompareOptions{}); len(bad) != 0 {
		t.Fatalf("metric-less baseline gated on first answer: %v", bad)
	}
}

func TestCompareReportsFlagsLostCoverageAndDrift(t *testing.T) {
	base := reportWith(
		JSONCell{Method: "grapes", AvgQuerySeconds: 0.1, AvgCandidates: 12, FPRatio: 1.5},
		JSONCell{Method: "ggsx", AvgQuerySeconds: 0.1},
	)
	cur := reportWith(
		JSONCell{Method: "grapes", AvgQuerySeconds: 0.1, AvgCandidates: 14, FPRatio: 1.5},
	)
	bad := CompareReports(base, cur, CompareOptions{})
	joined := strings.Join(bad, "\n")
	if !strings.Contains(joined, "missing") {
		t.Errorf("dropped cell not flagged: %v", bad)
	}
	if !strings.Contains(joined, "candidates drifted") {
		t.Errorf("candidate drift not flagged: %v", bad)
	}

	cur = reportWith(
		JSONCell{Method: "grapes", DNF: true, Reason: "timeout"},
		JSONCell{Method: "ggsx", AvgQuerySeconds: 0.1},
	)
	bad = CompareReports(base, cur, CompareOptions{})
	if len(bad) != 1 || !strings.Contains(bad[0], "newly DNF") {
		t.Errorf("new DNF not flagged: %v", bad)
	}
}
