package bench

import (
	"context"
	"fmt"
	"io"
	"iter"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/diskfmt"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/workload"
)

// DatasetSpec is one x-axis point of an experiment: a labelled dataset
// constructor. Construction is deferred so a sweep doesn't hold every
// dataset in memory at once.
type DatasetSpec struct {
	// X is the x-axis value (number of nodes, density, ...).
	X float64
	// Label renders X for the report ("50", "0.025", "AIDS").
	Label string
	// Make constructs the dataset.
	Make func() *graph.Dataset
}

// Experiment describes one figure-generating run.
type Experiment struct {
	// Name identifies the experiment ("fig2", ...).
	Name string
	// Title is the human-readable description.
	Title string
	// XAxis names the swept parameter.
	XAxis string
	// Points are the x-axis dataset specs.
	Points []DatasetSpec
	// QuerySizes are the query edge counts (paper: 4, 8, 16, 32).
	QuerySizes []int
	// QueriesPerSize is the number of queries per size.
	QueriesPerSize int
	// Methods are the compared methods (default: all six).
	Methods []MethodID
	// BuildTimeout and QueryTimeout bound each method's build and whole
	// query phase per point; exceeding one marks the cell DNF, mirroring
	// the paper's 8-hour limit. Zero means no limit.
	BuildTimeout time.Duration
	QueryTimeout time.Duration
	// Limits bounds the unbounded-cost methods.
	Limits MethodLimits
	// MethodSpecs optionally overrides a method's construction parameters
	// with a full engine spec ("grapes:workers=8"); methods without an
	// entry use the registry defaults narrowed by Limits.
	MethodSpecs map[MethodID]string
	// Shards > 1 runs every method through a sharded engine
	// (engine.OpenSharded): the dataset is hash-partitioned, shard indexes
	// build in parallel, and queries fan out and merge. 0 or 1 keeps the
	// unsharded path.
	Shards int
	// Seed makes query workloads reproducible.
	Seed int64
}

// MethodResult is one (method, dataset point) cell of an experiment.
type MethodResult struct {
	Method MethodID
	// Spec is the full engine spec the cell was constructed from, so every
	// record — experiment cells and ablation variants alike — is
	// self-describing without consulting the sweep definition.
	Spec string
	// DNF is set when the method could not finish within its budget; Reason
	// explains which stage gave up.
	DNF    bool
	Reason string

	BuildTime time.Duration
	IndexSize int64

	// Sharded-run accounting: Shards is the shard count the cell ran with
	// (0 = unsharded), and ShardBuildSum is the sum of per-shard build
	// times — the serial-equivalent cost, so ShardBuildSum / BuildTime is
	// the parallel build speedup.
	Shards        int
	ShardBuildSum time.Duration

	// Query metrics, overall and per query size.
	AvgQueryTime  time.Duration
	FPRatio       float64
	TimeBySize    map[int]time.Duration
	FPBySize      map[int]float64
	QueriesRun    int
	AvgCandidates float64
	AvgAnswers    float64

	// Lazy-pipeline metrics: AvgFirstAnswer is the mean wall time from
	// query start to the first streamed answer (time-to-first-result of
	// the producer → liveness → verifier pipeline); AvgVerified is the
	// mean number of verifier invocations per one-shot query.
	AvgFirstAnswer time.Duration
	AvgVerified    float64

	// Disk-native tier metrics, for methods with a v2 section format:
	// ColdOpen is the wall time to open the persisted index with
	// storage=mmap (header and directory sections only, no payload
	// decode), and ColdResident the index's resident heap bytes
	// immediately after that open — against IndexSize, the fully decoded
	// footprint. Zero for methods without a v2 format and in sharded runs.
	ColdOpen     time.Duration
	ColdResident int64
}

// PointResult aggregates all methods at one x-axis point.
type PointResult struct {
	Spec    DatasetSpec
	Stats   graph.Stats
	Methods []MethodResult
}

// Run executes the experiment, streaming progress to log (if non-nil), and
// returns all point results.
func Run(ctx context.Context, exp Experiment, log io.Writer) ([]PointResult, error) {
	if len(exp.Methods) == 0 {
		exp.Methods = AllMethods
	}
	if exp.QueriesPerSize == 0 {
		exp.QueriesPerSize = 10
	}
	if len(exp.QuerySizes) == 0 {
		exp.QuerySizes = []int{4, 8, 16, 32}
	}
	logf := func(format string, args ...any) {
		if log != nil {
			fmt.Fprintf(log, format, args...)
		}
	}
	var out []PointResult
	for _, spec := range exp.Points {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		logf("[%s] %s=%s: generating dataset...\n", exp.Name, exp.XAxis, spec.Label)
		ds := spec.Make()
		pr := PointResult{Spec: spec, Stats: ds.ComputeStats()}

		queries, err := buildWorkload(ds, exp)
		if err != nil {
			return out, fmt.Errorf("bench: %s point %s: %w", exp.Name, spec.Label, err)
		}

		for _, id := range exp.Methods {
			if err := ctx.Err(); err != nil {
				return out, err
			}
			mr := runMethod(ctx, id, ds, queries, exp)
			logf("[%s] %s=%s %-10s build=%v size=%s query=%v fp=%.3f%s\n",
				exp.Name, exp.XAxis, spec.Label, id,
				mr.BuildTime.Round(time.Millisecond), fmtBytes(mr.IndexSize),
				mr.AvgQueryTime.Round(time.Microsecond), mr.FPRatio, dnfSuffix(mr))
			pr.Methods = append(pr.Methods, mr)
		}
		out = append(out, pr)
	}
	return out, nil
}

func dnfSuffix(mr MethodResult) string {
	if mr.DNF {
		return " DNF(" + mr.Reason + ")"
	}
	return ""
}

// sizedQuery pairs a query with its workload size bucket.
type sizedQuery struct {
	q    *graph.Graph
	size int
}

func buildWorkload(ds *graph.Dataset, exp Experiment) ([]sizedQuery, error) {
	var out []sizedQuery
	for _, size := range exp.QuerySizes {
		qs, err := workload.Generate(ds, workload.Config{
			NumQueries: exp.QueriesPerSize,
			QueryEdges: size,
			Seed:       exp.Seed + int64(size),
		})
		if err != nil {
			// Datasets whose graphs are too small for a query size skip
			// that size, as the paper does for its smallest datasets.
			continue
		}
		for _, q := range qs {
			out = append(out, sizedQuery{q: q, size: size})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no query size in %v is feasible", exp.QuerySizes)
	}
	return out, nil
}

func runMethod(ctx context.Context, id MethodID, ds *graph.Dataset, queries []sizedQuery, exp Experiment) MethodResult {
	spec, err := specFor(id, exp)
	if err != nil {
		return MethodResult{Method: id, DNF: true, Reason: err.Error()}
	}
	if exp.Shards > 1 {
		return runMethodSharded(ctx, id, spec, exp.Shards, ds, queries, exp)
	}
	m, err := engine.New(spec)
	if err != nil {
		return MethodResult{Method: id, Spec: spec, DNF: true, Reason: err.Error()}
	}
	return runMethodInstance(ctx, id, m, spec, ds, queries, exp)
}

// runMethodSharded measures one (method spec, shard count) cell through the
// sharded engine: parallel per-shard build, fan-out/merge queries.
func runMethodSharded(ctx context.Context, id MethodID, spec string, shards int, ds *graph.Dataset, queries []sizedQuery, exp Experiment) MethodResult {
	mr := MethodResult{
		Method:     id,
		Spec:       spec,
		Shards:     shards,
		TimeBySize: map[int]time.Duration{},
		FPBySize:   map[int]float64{},
	}
	// Verification stays serial per shard (as in every unsharded cell, the
	// paper's measurement mode), so shard fan-out is the only parallelism
	// the query timings attribute to sharding.
	buildCtx, cancel := withOptionalTimeout(ctx, exp.BuildTimeout)
	s, err := engine.OpenSharded(buildCtx, ds, shards,
		engine.WithSpec(spec), engine.WithVerifyWorkers(1))
	cancel()
	if err != nil {
		mr.DNF, mr.Reason = true, "indexing: "+err.Error()
		return mr
	}
	mr.BuildTime = s.BuildStats().Elapsed
	mr.IndexSize = s.SizeBytes()
	for _, st := range s.ShardStats() {
		mr.ShardBuildSum += st.Elapsed
	}

	queryCtx, cancel := withOptionalTimeout(ctx, exp.QueryTimeout)
	defer cancel()
	measureQueries(queryCtx, &mr, s.Query, queries)
	if !mr.DNF {
		measureFirstAnswer(queryCtx, &mr, s.Stream, queries)
	}
	return mr
}

// runMethodInstance measures one prebuilt method instance (constructed from
// spec, recorded on the cell); ablations use it to measure non-default
// configurations.
func runMethodInstance(ctx context.Context, id MethodID, m core.Method, spec string, ds *graph.Dataset, queries []sizedQuery, exp Experiment) MethodResult {
	mr := MethodResult{
		Method:     id,
		Spec:       spec,
		TimeBySize: map[int]time.Duration{},
		FPBySize:   map[int]float64{},
	}

	buildCtx, cancel := withOptionalTimeout(ctx, exp.BuildTimeout)
	st, err := core.BuildTimed(buildCtx, m, ds)
	cancel()
	mr.BuildTime = st.Elapsed
	if err != nil {
		mr.DNF, mr.Reason = true, "indexing: "+err.Error()
		return mr
	}
	mr.IndexSize = m.SizeBytes()

	proc := core.NewProcessor(m, ds)
	queryCtx, cancel := withOptionalTimeout(ctx, exp.QueryTimeout)
	defer cancel()
	measureQueries(queryCtx, &mr, proc.QueryCtx, queries)
	if !mr.DNF {
		measureFirstAnswer(queryCtx, &mr, func(ctx context.Context, q *graph.Graph) iter.Seq2[graph.ID, error] {
			return core.StreamAnswersOpts(ctx, m, ds, q, core.StreamOptions{})
		}, queries)
	}
	if !mr.DNF {
		measureColdOpen(&mr, m, spec, ds)
	}
	return mr
}

// specWithStorage appends a storage override to an engine spec.
func specWithStorage(spec, mode string) string {
	if strings.Contains(spec, ":") {
		return spec + ",storage=" + mode
	}
	return spec + ":storage=" + mode
}

// measureColdOpen times a storage=mmap open of the cell's persisted v2
// index — the disk-native tier's cold-start path: write the built index to
// a scratch file, then load it into a fresh instance and record the wall
// time and the resident heap bytes right after (postings stay on disk
// until queries fault them in). Methods without a v2 section format leave
// both cells zero. Failures just skip the cells — this measures the tier,
// it does not gate the run.
func measureColdOpen(mr *MethodResult, m core.Method, spec string, ds *graph.Dataset) {
	sp, ok := m.(core.SectionPersistable)
	if !ok {
		return
	}
	dir, err := os.MkdirTemp("", "sqbench-idx-*")
	if err != nil {
		return
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "idx")
	w := diskfmt.NewWriter(ds.Epoch(), ds.VersionTag(), m.Name())
	if err := sp.SaveIndexV2(w); err != nil {
		return
	}
	if err := engine.AtomicWriteFile(path, func(out io.Writer) error {
		_, err := w.WriteTo(out)
		return err
	}); err != nil {
		return
	}
	fresh, err := engine.New(specWithStorage(spec, core.StorageMmap))
	if err != nil {
		return
	}
	fsp, ok := fresh.(core.SectionPersistable)
	if !ok {
		return
	}
	t0 := time.Now()
	r, err := diskfmt.Open(path, true)
	if err != nil {
		return
	}
	if err := fsp.LoadIndexV2(r, ds); err != nil {
		r.Close()
		return
	}
	mr.ColdOpen = time.Since(t0)
	mr.ColdResident = fresh.SizeBytes()
	// The instance is done measuring and never queried, so unmap now
	// rather than on process exit.
	r.Close()
}

// measureQueries drives a workload through one query function — an
// unsharded Processor's QueryCtx or a sharded engine's Query — and fills in
// the result's query metrics, overall and per size bucket.
func measureQueries(ctx context.Context, mr *MethodResult,
	query func(context.Context, *graph.Graph) (*core.QueryResult, error), queries []sizedQuery) {
	type bucket struct {
		n     int
		time  time.Duration
		fpSum float64
	}
	buckets := map[int]*bucket{}
	var total time.Duration
	var fpTotal, candTotal, ansTotal, verTotal float64
	for _, sq := range queries {
		res, err := query(ctx, sq.q)
		if err != nil {
			mr.DNF, mr.Reason = true, "query processing: "+err.Error()
			break
		}
		b := buckets[sq.size]
		if b == nil {
			b = &bucket{}
			buckets[sq.size] = b
		}
		b.n++
		b.time += res.TotalTime()
		b.fpSum += res.FalsePositiveRatio()
		total += res.TotalTime()
		fpTotal += res.FalsePositiveRatio()
		candTotal += float64(len(res.Candidates))
		ansTotal += float64(len(res.Answers))
		verTotal += float64(res.Verified)
		mr.QueriesRun++
	}
	if mr.QueriesRun > 0 {
		mr.AvgQueryTime = total / time.Duration(mr.QueriesRun)
		mr.FPRatio = fpTotal / float64(mr.QueriesRun)
		mr.AvgCandidates = candTotal / float64(mr.QueriesRun)
		mr.AvgAnswers = ansTotal / float64(mr.QueriesRun)
		mr.AvgVerified = verTotal / float64(mr.QueriesRun)
		for size, b := range buckets {
			mr.TimeBySize[size] = b.time / time.Duration(b.n)
			mr.FPBySize[size] = b.fpSum / float64(b.n)
		}
	}
}

// measureFirstAnswer drives each workload query through the lazy stream
// and records the mean wall time to the first proven answer — the
// pipeline's time-to-first-result, measured at the same serial-verify
// settings as the one-shot timings. Queries with no answers are skipped;
// abandoning each stream after one answer is the limit=1 service path.
func measureFirstAnswer(ctx context.Context, mr *MethodResult,
	stream func(context.Context, *graph.Graph) iter.Seq2[graph.ID, error], queries []sizedQuery) {
	var total time.Duration
	n := 0
	for _, sq := range queries {
		t0 := time.Now()
		for _, err := range stream(ctx, sq.q) {
			if err != nil {
				mr.DNF, mr.Reason = true, "streaming: "+err.Error()
				return
			}
			total += time.Since(t0)
			n++
			break
		}
	}
	if n > 0 {
		mr.AvgFirstAnswer = total / time.Duration(n)
	}
}

func withOptionalTimeout(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		return context.WithCancel(ctx)
	}
	return context.WithTimeout(ctx, d)
}

func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}

// WriteReport renders the four panels of a figure (indexing time, index
// size, query time, false positive ratio) as gnuplot-style series: one line
// per x point, one column per method, DNF for missing cells.
func WriteReport(w io.Writer, exp Experiment, results []PointResult) {
	methods := exp.Methods
	if len(methods) == 0 {
		methods = AllMethods
	}
	panel := func(title string, cell func(MethodResult) string) {
		fmt.Fprintf(w, "\n# %s — %s (x: %s)\n", exp.Title, title, exp.XAxis)
		fmt.Fprintf(w, "%-12s", exp.XAxis)
		for _, id := range methods {
			fmt.Fprintf(w, " %12s", id)
		}
		fmt.Fprintln(w)
		for _, pr := range results {
			fmt.Fprintf(w, "%-12s", pr.Spec.Label)
			for _, id := range methods {
				mr, ok := findMethod(pr.Methods, id)
				if !ok || mr.DNF {
					fmt.Fprintf(w, " %12s", "DNF")
					continue
				}
				fmt.Fprintf(w, " %12s", cell(mr))
			}
			fmt.Fprintln(w)
		}
	}
	panel("(a) Indexing Time (s)", func(mr MethodResult) string {
		return fmt.Sprintf("%.3f", mr.BuildTime.Seconds())
	})
	panel("(b) Index Size (MB)", func(mr MethodResult) string {
		return fmt.Sprintf("%.3f", float64(mr.IndexSize)/(1<<20))
	})
	panel("(c) Query Processing Time (s)", func(mr MethodResult) string {
		return fmt.Sprintf("%.5f", mr.AvgQueryTime.Seconds())
	})
	panel("(d) Avg False Positive Ratio", func(mr MethodResult) string {
		return fmt.Sprintf("%.3f", mr.FPRatio)
	})
}

// WritePerSizeReport renders per-query-size query time panels (Figure 4).
func WritePerSizeReport(w io.Writer, exp Experiment, results []PointResult) {
	methods := exp.Methods
	if len(methods) == 0 {
		methods = AllMethods
	}
	sizes := append([]int(nil), exp.QuerySizes...)
	sort.Ints(sizes)
	for _, size := range sizes {
		fmt.Fprintf(w, "\n# %s — Query Size: %d (query time s, x: %s)\n", exp.Title, size, exp.XAxis)
		fmt.Fprintf(w, "%-12s", exp.XAxis)
		for _, id := range methods {
			fmt.Fprintf(w, " %12s", id)
		}
		fmt.Fprintln(w)
		for _, pr := range results {
			fmt.Fprintf(w, "%-12s", pr.Spec.Label)
			for _, id := range methods {
				mr, ok := findMethod(pr.Methods, id)
				if !ok || mr.DNF {
					fmt.Fprintf(w, " %12s", "DNF")
					continue
				}
				t, ok := mr.TimeBySize[size]
				if !ok {
					fmt.Fprintf(w, " %12s", "-")
					continue
				}
				fmt.Fprintf(w, " %12.5f", t.Seconds())
			}
			fmt.Fprintln(w)
		}
	}
}

func findMethod(ms []MethodResult, id MethodID) (MethodResult, bool) {
	for _, mr := range ms {
		if mr.Method == id {
			return mr, true
		}
	}
	return MethodResult{}, false
}

// WriteTable1 renders the dataset characteristics table.
func WriteTable1(w io.Writer, names []string, stats []graph.Stats) {
	fmt.Fprintf(w, "\n# Table 1: Characteristics of (simulated) real datasets\n")
	fmt.Fprintf(w, "%-22s", "metric")
	for _, n := range names {
		fmt.Fprintf(w, " %10s", n)
	}
	fmt.Fprintln(w)
	row := func(name string, f func(graph.Stats) string) {
		fmt.Fprintf(w, "%-22s", name)
		for _, s := range stats {
			fmt.Fprintf(w, " %10s", f(s))
		}
		fmt.Fprintln(w)
	}
	row("# graphs", func(s graph.Stats) string { return fmt.Sprintf("%d", s.NumGraphs) })
	row("# disconnected", func(s graph.Stats) string { return fmt.Sprintf("%d", s.NumDisconnected) })
	row("# labels", func(s graph.Stats) string { return fmt.Sprintf("%d", s.NumLabels) })
	row("avg nodes", func(s graph.Stats) string { return fmt.Sprintf("%.1f", s.AvgNodes) })
	row("stddev nodes", func(s graph.Stats) string { return fmt.Sprintf("%.1f", s.StdDevNodes) })
	row("avg edges", func(s graph.Stats) string { return fmt.Sprintf("%.1f", s.AvgEdges) })
	row("avg density", func(s graph.Stats) string { return fmt.Sprintf("%.4f", s.AvgDensity) })
	row("avg degree", func(s graph.Stats) string { return fmt.Sprintf("%.2f", s.AvgDegree) })
	row("avg labels/graph", func(s graph.Stats) string { return fmt.Sprintf("%.1f", s.AvgLabelsPerGraph) })
}
