package bench

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// TestRunRouterAblation smoke-runs the router ablation at tiny scale and
// pins its deterministic structure: every fixed method, every policy, and
// the oracle appear; oracle total never exceeds any fixed total (it is the
// per-query minimum of exactly those measurements); fixed win rates sum to
// 1; router variants carry routing snapshots with full attribution.
func TestRunRouterAblation(t *testing.T) {
	s := tinyScale()
	ds := AblationDataset(s)
	var log bytes.Buffer
	results, err := RunRouterAblation(context.Background(), ds, s, &log)
	if err != nil {
		t.Fatalf("RunRouterAblation: %v\n%s", err, log.String())
	}

	byVariant := map[string]RouterResult{}
	for _, r := range results {
		byVariant[r.Variant] = r
	}
	oracle, ok := byVariant["oracle"]
	if !ok {
		t.Fatalf("no oracle row in %v", variants(results))
	}
	var winSum float64
	for _, name := range routerAblationMethods {
		r, ok := byVariant["fixed:"+name]
		if !ok {
			t.Fatalf("no fixed:%s row", name)
		}
		if r.DNF {
			t.Fatalf("fixed:%s DNF: %s", name, r.Reason)
		}
		if r.TotalSeconds < oracle.TotalSeconds {
			t.Errorf("oracle total %.6f exceeds fixed:%s total %.6f", oracle.TotalSeconds, name, r.TotalSeconds)
		}
		if r.RegretVsOracle < 0 {
			t.Errorf("fixed:%s regret %.4f < 0; fixed regret is min-bounded by construction", name, r.RegretVsOracle)
		}
		if r.Spec == "" {
			t.Errorf("fixed:%s has no spec", name)
		}
		winSum += r.WinRate
	}
	if winSum < 0.999 || winSum > 1.001 {
		t.Errorf("fixed win rates sum to %.4f, want 1", winSum)
	}
	for _, policy := range []string{"static", "learned", "race"} {
		r, ok := byVariant["router:"+policy]
		if !ok {
			t.Fatalf("no router:%s row", policy)
		}
		if r.DNF {
			t.Fatalf("router:%s DNF: %s", policy, r.Reason)
		}
		if !strings.Contains(r.Spec, "policy="+policy) {
			t.Errorf("router:%s spec %q does not carry its policy", policy, r.Spec)
		}
		if r.Routing == nil {
			t.Fatalf("router:%s has no routing snapshot", policy)
		}
		var won int64
		for _, ms := range r.Routing.Methods {
			won += ms.Won
		}
		if won != r.Routing.Queries {
			t.Errorf("router:%s: wins %d != served queries %d", policy, won, r.Routing.Queries)
		}
		// Warmup + measured pass both routed through the snapshot.
		if want := int64(2 * r.Queries); r.Routing.Queries != want {
			t.Errorf("router:%s: snapshot served %d queries, want %d (two passes)", policy, r.Routing.Queries, want)
		}
	}

	var report bytes.Buffer
	WriteRouterReport(&report, results)
	for _, want := range []string{"oracle", "router:learned", "fixed:grapes", "regret", "routing"} {
		if !strings.Contains(report.String(), want) {
			t.Errorf("report missing %q:\n%s", want, report.String())
		}
	}
}

func variants(results []RouterResult) []string {
	out := make([]string, len(results))
	for i, r := range results {
		out[i] = r.Variant
	}
	return out
}
