package bench

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/graph"
)

// updateAblationSpecs are the methods the update ablation mutates under
// interleaved query/update traffic: the three incremental indexers plus
// CT-Index as the rebuild-fallback representative, so the report shows
// both maintenance regimes side by side.
var updateAblationSpecs = []string{"grapes", "ggsx", "gcode", "ctindex"}

// UpdateResult is one (method, maintenance strategy) cell of the update
// ablation.
type UpdateResult struct {
	// Variant labels the row: "online:<method>" (the engine's Mutable path
	// — incremental when the method supports it, engine-side rebuild
	// otherwise) or "rebuild:<method>" (full from-scratch reopen per
	// mutation, the offline baseline).
	Variant string `json:"variant"`
	Spec    string `json:"spec"`
	// Incremental reports whether the method implements
	// core.IncrementalIndexer, i.e. whether the online path folds single
	// graphs into the index instead of rebuilding it.
	Incremental bool   `json:"incremental"`
	DNF         bool   `json:"dnf,omitempty"`
	Reason      string `json:"reason,omitempty"`
	Mutations   int    `json:"mutations,omitempty"`
	Queries     int    `json:"queries,omitempty"`
	// MaintainSeconds is the total wall-clock spent keeping the index
	// consistent across the mutation stream; QuerySeconds the engine time
	// of the interleaved queries.
	MaintainSeconds float64 `json:"maintain_seconds"`
	QuerySeconds    float64 `json:"query_seconds"`
	// SpeedupVsRebuild, on online rows, is the rebuild baseline's
	// MaintainSeconds over this row's — how much online maintenance beats
	// a full rebuild per mutation.
	SpeedupVsRebuild float64 `json:"speedup_vs_rebuild,omitempty"`
}

// updateOp is one step of the deterministic mutation stream: either a
// removal of a then-live graph id or the addition of a generated graph.
type updateOp struct {
	remove graph.ID
	add    *graph.Graph // nil for removals
}

// updateOps derives the mutation stream: alternating remove/add, removal
// targets drawn from the evolving live id set, additions drawn from a
// synthetic pool matching the dataset's label universe. Both strategies
// replay exactly this stream.
func updateOps(ds *graph.Dataset, s Scale, count int) []updateOp {
	pool := gen.Synthetic(gen.SynthConfig{
		NumGraphs: (count + 1) / 2, MeanNodes: s.Nodes, MeanDensity: s.Density,
		NumLabels: s.Labels, Seed: s.Seed + 4242,
	})
	rng := rand.New(rand.NewSource(s.Seed + 17))
	live := ds.LiveIDSet()
	nextID := graph.ID(ds.Len())
	var ops []updateOp
	poolIdx := 0
	for i := 0; i < count; i++ {
		if i%2 == 0 && len(live) > 0 {
			j := rng.Intn(len(live))
			ops = append(ops, updateOp{remove: live[j]})
			live = append(live[:j], live[j+1:]...)
		} else {
			ops = append(ops, updateOp{add: pool.Graphs[poolIdx]})
			poolIdx++
			live = append(live, nextID)
			nextID++
		}
	}
	return ops
}

// RunUpdateAblation measures online index maintenance against the offline
// full-rebuild baseline under interleaved query/update traffic: for each
// method, the same deterministic mutation stream (alternating removals of
// live graphs and additions of generated ones, a query slice between
// mutations) runs twice —
//
//   - online: one engine stays open and applies every mutation through the
//     Mutable capability (incremental index maintenance for methods that
//     support it);
//   - rebuild: the dataset is mutated directly and a fresh engine is
//     opened — a full index build — after every mutation, the only option
//     before online mutation existed.
//
// Every variant runs on its own identically generated dataset copy, so the
// streams are comparable and the final datasets identical.
func RunUpdateAblation(ctx context.Context, s Scale, log io.Writer) ([]UpdateResult, error) {
	logf := func(format string, args ...any) {
		if log != nil {
			fmt.Fprintf(log, format, args...)
		}
	}
	// The query workload comes from the pristine dataset: queries stay
	// fixed while the dataset under them mutates.
	baseDS := AblationDataset(s)
	exp := Experiment{QuerySizes: s.QuerySizes, QueriesPerSize: s.QueriesPerSize, Seed: s.Seed}
	sized, err := buildWorkload(baseDS, exp)
	if err != nil {
		return nil, fmt.Errorf("bench: update ablation: %w", err)
	}
	queries := make([]*graph.Graph, len(sized))
	for i, sq := range sized {
		queries[i] = sq.q
	}
	mutations := len(queries) / 2
	if mutations < 4 {
		mutations = 4
	}
	perSlice := len(queries) / mutations
	if perSlice < 1 {
		perSlice = 1
	}

	var out []UpdateResult
	for _, spec := range updateAblationSpecs {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		m, err := engine.New(spec)
		if err != nil {
			return out, fmt.Errorf("bench: update ablation: %w", err)
		}
		_, incremental := m.(core.IncrementalIndexer)

		online := UpdateResult{Variant: "online:" + spec, Spec: spec, Incremental: incremental}
		runUpdateOnline(ctx, s, spec, mutations, perSlice, queries, &online)
		rebuild := UpdateResult{Variant: "rebuild:" + spec, Spec: spec, Incremental: incremental}
		runUpdateRebuild(ctx, s, spec, mutations, perSlice, queries, &rebuild)
		if !online.DNF && !rebuild.DNF && online.MaintainSeconds > 0 {
			online.SpeedupVsRebuild = rebuild.MaintainSeconds / online.MaintainSeconds
		}
		for _, r := range []UpdateResult{online, rebuild} {
			logf("[ablation/update] %-16s maintain=%.4fs query=%.4fs speedup=%.2fx%s\n",
				r.Variant, r.MaintainSeconds, r.QuerySeconds, r.SpeedupVsRebuild, updateDNFNote(r))
		}
		out = append(out, online, rebuild)
	}
	return out, nil
}

// runUpdateOnline replays the mutation stream through one live engine's
// Mutable capability.
func runUpdateOnline(ctx context.Context, s Scale, spec string, mutations, perSlice int, queries []*graph.Graph, res *UpdateResult) {
	ds := AblationDataset(s)
	ops := updateOps(ds, s, mutations)
	buildCtx, cancel := withOptionalTimeout(ctx, s.BuildTimeout)
	eng, err := engine.Open(buildCtx, ds, engine.WithSpec(spec), engine.WithVerifyWorkers(1))
	cancel()
	if err != nil {
		res.DNF, res.Reason = true, err.Error()
		return
	}
	qi := 0
	for _, op := range ops {
		t0 := time.Now()
		if op.add != nil {
			_, err = eng.AddGraph(ctx, op.add.ShallowWithID(0))
		} else {
			err = eng.RemoveGraph(ctx, op.remove)
		}
		res.MaintainSeconds += time.Since(t0).Seconds()
		if err != nil {
			res.DNF, res.Reason = true, err.Error()
			return
		}
		res.Mutations++
		if err := runUpdateQueries(ctx, s, eng, queries, &qi, perSlice, res); err != nil {
			res.DNF, res.Reason = true, err.Error()
			return
		}
	}
}

// runUpdateRebuild replays the mutation stream by mutating the dataset
// directly and paying a full from-scratch engine open after every
// mutation — the offline baseline.
func runUpdateRebuild(ctx context.Context, s Scale, spec string, mutations, perSlice int, queries []*graph.Graph, res *UpdateResult) {
	ds := AblationDataset(s)
	ops := updateOps(ds, s, mutations)
	var eng *engine.Engine
	qi := 0
	for _, op := range ops {
		t0 := time.Now()
		if op.add != nil {
			ds.Add(op.add.ShallowWithID(0))
		} else {
			ds.Remove(op.remove)
		}
		buildCtx, cancel := withOptionalTimeout(ctx, s.BuildTimeout)
		var err error
		eng, err = engine.Open(buildCtx, ds, engine.WithSpec(spec), engine.WithVerifyWorkers(1))
		cancel()
		res.MaintainSeconds += time.Since(t0).Seconds()
		if err != nil {
			res.DNF, res.Reason = true, err.Error()
			return
		}
		res.Mutations++
		if err := runUpdateQueries(ctx, s, eng, queries, &qi, perSlice, res); err != nil {
			res.DNF, res.Reason = true, err.Error()
			return
		}
	}
}

// runUpdateQueries runs the next perSlice queries (round-robin) through
// the engine, accumulating engine-measured latency.
func runUpdateQueries(ctx context.Context, s Scale, eng *engine.Engine, queries []*graph.Graph, qi *int, perSlice int, res *UpdateResult) error {
	qctx, cancel := withOptionalTimeout(ctx, s.QueryTimeout)
	defer cancel()
	for k := 0; k < perSlice; k++ {
		q := queries[*qi%len(queries)]
		*qi++
		r, err := eng.Query(qctx, q)
		if err != nil {
			return err
		}
		res.QuerySeconds += r.TotalTime().Seconds()
		res.Queries++
	}
	return nil
}

func updateDNFNote(r UpdateResult) string {
	if r.DNF {
		return " DNF(" + r.Reason + ")"
	}
	return ""
}

// WriteUpdateReport renders the update ablation: per method, the online
// maintenance cost against the full-rebuild baseline, with the interleaved
// query cost alongside.
func WriteUpdateReport(w io.Writer, results []UpdateResult) {
	fmt.Fprintf(w, "\n# Ablation: online mutation vs full rebuild (interleaved query/update traffic)\n")
	fmt.Fprintf(w, "%-18s %12s %10s %8s %14s %14s %9s\n",
		"variant", "incremental", "mutations", "queries", "maintain(s)", "query(s)", "speedup")
	for _, r := range results {
		if r.DNF {
			fmt.Fprintf(w, "%-18s %12s  DNF: %s\n", r.Variant, "-", r.Reason)
			continue
		}
		inc := "rebuild"
		if r.Incremental && strings.HasPrefix(r.Variant, "online:") {
			inc = "yes"
		} else if strings.HasPrefix(r.Variant, "rebuild:") {
			inc = "-"
		}
		speedup := "-"
		if r.SpeedupVsRebuild > 0 {
			speedup = fmt.Sprintf("%.2fx", r.SpeedupVsRebuild)
		}
		fmt.Fprintf(w, "%-18s %12s %10d %8d %14.4f %14.4f %9s\n",
			r.Variant, inc, r.Mutations, r.Queries, r.MaintainSeconds, r.QuerySeconds, speedup)
	}
}
