// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (§5): it builds datasets, runs all six
// methods under a per-point time budget (the analogue of the paper's 8-hour
// kill switch), and reports indexing time, index size, query processing
// time, and false positive ratio as gnuplot-style series.
package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/ctindex"
	"repro/internal/gcode"
	"repro/internal/ggsx"
	"repro/internal/gindex"
	"repro/internal/grapes"
	"repro/internal/scan"
	"repro/internal/treedelta"
)

// MethodID names one of the six compared methods, spelled as in the paper's
// figure legends.
type MethodID string

// The six methods of §3, plus the naive no-index baseline of §1.
const (
	Grapes    MethodID = "Grapes"
	GGSX      MethodID = "GGSX"
	CTIndex   MethodID = "CTindex"
	GIndex    MethodID = "gIndex"
	TreeDelta MethodID = "tree+delta"
	GCode     MethodID = "gCode"
	// NoIndex is the sequential VF2 scan the paper's introduction motivates
	// against. It is not part of AllMethods (the paper's figures exclude
	// it); select it explicitly with -methods NoIndex.
	NoIndex MethodID = "NoIndex"
)

// AllMethods lists the six compared methods in the paper's legend order.
var AllMethods = []MethodID{Grapes, GGSX, CTIndex, GIndex, TreeDelta, GCode}

// MethodLimits bounds the work of the unbounded-cost methods so that a
// stress point degenerates into a DNF instead of hanging forever. The zero
// value means "paper defaults with the harness's standard budgets".
type MethodLimits struct {
	// MaxPatterns caps gSpan pattern emission for gIndex and Tree+Δ
	// (0 = harness default).
	MaxPatterns int
}

// DefaultMaxPatterns is the standard mining budget; exceeding it marks the
// run DNF, mirroring the frequent-mining methods' 8-hour timeouts in the
// paper.
const DefaultMaxPatterns = 200000

// NewMethod instantiates a method with the paper's §4.1 parameter defaults.
func NewMethod(id MethodID, lim MethodLimits) (core.Method, error) {
	maxPatterns := lim.MaxPatterns
	if maxPatterns == 0 {
		maxPatterns = DefaultMaxPatterns
	}
	switch id {
	case Grapes:
		return grapes.New(grapes.Options{MaxPathLen: 4, Workers: 6}), nil
	case GGSX:
		return ggsx.New(ggsx.Options{MaxPathLen: 4}), nil
	case CTIndex:
		return ctindex.New(ctindex.Options{FingerprintBits: 4096, MaxTreeSize: 4, MaxCycleSize: 4}), nil
	case GIndex:
		return gindex.New(gindex.Options{
			MaxFeatureSize:     10,
			SupportRatio:       0.1,
			DiscriminativeGate: 2.0,
			MaxPatterns:        maxPatterns,
		}), nil
	case TreeDelta:
		return treedelta.New(treedelta.Options{
			MaxFeatureSize:      10,
			SupportRatio:        0.1,
			DiscriminativeRatio: 0.1,
			QuerySupportToAdd:   0.8,
			MaxPatterns:         maxPatterns,
		}), nil
	case GCode:
		return gcode.New(gcode.Options{PathLen: 2, NumEigenvalues: 2}), nil
	case NoIndex:
		return scan.New(), nil
	}
	return nil, fmt.Errorf("bench: unknown method %q", id)
}
