// Package bench is the experiment harness that regenerates every table and
// figure of the paper's evaluation (§5): it builds datasets, runs all six
// methods under a per-point time budget (the analogue of the paper's 8-hour
// kill switch), and reports indexing time, index size, query processing
// time, and false positive ratio as gnuplot-style series.
//
// Methods are constructed through the engine registry (repro/internal/
// engine); the harness's only method-specific knowledge is the list of
// figure-legend names below.
package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/engine"
	_ "repro/internal/engine/std" // link all built-in methods
)

// MethodID names one of the six compared methods, spelled as in the paper's
// figure legends. Every MethodID doubles as an engine registry name.
type MethodID string

// The six methods of §3, plus the naive no-index baseline of §1.
const (
	Grapes    MethodID = "Grapes"
	GGSX      MethodID = "GGSX"
	CTIndex   MethodID = "CTindex"
	GIndex    MethodID = "gIndex"
	TreeDelta MethodID = "tree+delta"
	GCode     MethodID = "gCode"
	// NoIndex is the sequential VF2 scan the paper's introduction motivates
	// against. It is not part of AllMethods (the paper's figures exclude
	// it); select it explicitly with -methods NoIndex.
	NoIndex MethodID = "NoIndex"
)

// AllMethods lists the six compared methods in the paper's legend order.
var AllMethods = []MethodID{Grapes, GGSX, CTIndex, GIndex, TreeDelta, GCode}

// MethodLimits bounds the work of the unbounded-cost methods so that a
// stress point degenerates into a DNF instead of hanging forever. The zero
// value means "paper defaults with the harness's standard budgets".
type MethodLimits struct {
	// MaxPatterns caps gSpan pattern emission for gIndex and Tree+Δ
	// (0 = harness default).
	MaxPatterns int
}

// DefaultMaxPatterns is the standard mining budget; exceeding it marks the
// run DNF, mirroring the frequent-mining methods' 8-hour timeouts in the
// paper. It equals the engine registry's maxPatterns default.
const DefaultMaxPatterns = 200000

// NewMethod instantiates a method with the paper's §4.1 parameter defaults.
//
// Deprecated: construct methods through the engine registry instead —
// engine.New("gIndex:maxPatterns=20000") — which accepts every parameter,
// not just the mining budget. NewMethod remains as a back-compat shim.
func NewMethod(id MethodID, lim MethodLimits) (core.Method, error) {
	d, ok := engine.Lookup(string(id))
	if !ok {
		return nil, fmt.Errorf("bench: unknown method %q", id)
	}
	p := d.Params()
	if lim.MaxPatterns > 0 && p.Has("maxPatterns") {
		if err := p.SetInt("maxPatterns", lim.MaxPatterns); err != nil {
			return nil, err
		}
	}
	return d.New(p)
}

// specFor renders the canonical engine spec for one experiment cell — an
// explicit per-method override from the experiment wins, otherwise the
// registry defaults narrowed by the experiment's limits apply — for runners
// to instantiate (once, or one instance per shard) and to record on the
// cell's result.
func specFor(id MethodID, exp Experiment) (string, error) {
	var p engine.Params
	if spec := exp.MethodSpecs[id]; spec != "" {
		_, parsed, err := engine.ParseSpec(spec)
		if err != nil {
			return "", err
		}
		p = parsed
	} else {
		d, ok := engine.Lookup(string(id))
		if !ok {
			return "", fmt.Errorf("bench: unknown method %q", id)
		}
		p = d.Params()
	}
	if exp.Limits.MaxPatterns > 0 && p.Has("maxPatterns") && !p.IsSet("maxPatterns") {
		if err := p.SetInt("maxPatterns", exp.Limits.MaxPatterns); err != nil {
			return "", err
		}
	}
	return p.Spec(), nil
}

// ResolveMethod maps a method spec string (name, alias, or full
// "name:key=value,..." spec) to its figure-legend MethodID and canonical
// spec, validating the parameters against the registry.
func ResolveMethod(spec string) (MethodID, string, error) {
	d, p, err := engine.ParseSpec(spec)
	if err != nil {
		return "", "", err
	}
	return MethodID(d.Display), p.Spec(), nil
}
