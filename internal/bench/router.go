package bench

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/router"
	"repro/internal/workload"
)

// routerAblationMethods are the fixed methods the router ablation routes
// over and races against: the three cheapest stable builders, spanning the
// filtering families whose winners the paper's figures show alternating.
var routerAblationMethods = []string{"grapes", "ggsx", "gcode"}

// RouterResult is one variant of the router ablation: a fixed method, a
// routing policy over all the fixed methods, or the per-query
// best-fixed-method oracle.
type RouterResult struct {
	// Variant labels the row: "fixed:<method>", "router:<policy>", or
	// "oracle".
	Variant string `json:"variant"`
	// Spec is the engine spec the variant ran with (empty for the oracle,
	// which is derived, not run).
	Spec    string `json:"spec,omitempty"`
	DNF     bool   `json:"dnf,omitempty"`
	Reason  string `json:"reason,omitempty"`
	Queries int    `json:"queries,omitempty"`
	// TotalSeconds is the summed per-query latency over the measured pass;
	// AvgSeconds the per-query mean.
	TotalSeconds float64 `json:"total_seconds,omitempty"`
	AvgSeconds   float64 `json:"avg_seconds,omitempty"`
	// WinRate is, for a fixed method, the fraction of workload queries it
	// was the fastest fixed method on — the oracle's choice distribution.
	WinRate float64 `json:"win_rate,omitempty"`
	// RegretVsOracle is (TotalSeconds - oracle TotalSeconds) / oracle
	// TotalSeconds: how far the variant's total latency sits above the
	// per-query best-fixed-method bound. Independently measured passes make
	// slightly negative values possible under timing noise.
	RegretVsOracle float64 `json:"regret_vs_oracle"`
	// Routing carries the router variants' per-method routing stats (win
	// rates, exploration, cost-model cells), warmup pass included.
	Routing *router.Snapshot `json:"routing,omitempty"`
}

// RunRouterAblation measures adaptive routing against every fixed method
// and the oracle on a mixed-shape, mixed-size workload:
//
//  1. one engine per fixed method is built over ds;
//  2. each fixed method runs the whole workload, yielding per-query
//     latencies, the per-query oracle (best fixed method), and each
//     method's oracle win rate;
//  3. each routing policy gets a router over the *same* engines, one
//     warmup pass (so the learned policy's cost model sees every feature
//     bucket under traffic), and one measured pass.
//
// The report answers the tentpole question operationally: how close does
// feature-based routing get to the oracle, and does it beat the worst —
// and ideally every — fixed choice.
func RunRouterAblation(ctx context.Context, ds *graph.Dataset, s Scale, log io.Writer) ([]RouterResult, error) {
	queries, err := workload.GenerateMixed(ds, workload.MixedConfig{
		NumQueries: s.QueriesPerSize * len(s.QuerySizes) * len(workload.AllShapes()),
		Sizes:      s.QuerySizes,
		Seed:       s.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("bench: router ablation: %w", err)
	}
	logf := func(format string, args ...any) {
		if log != nil {
			fmt.Fprintf(log, format, args...)
		}
	}

	// Build one engine per fixed method; the routers share them, so every
	// variant measures routing, not rebuild noise.
	engines := make([]router.Sub, len(routerAblationMethods))
	for i, name := range routerAblationMethods {
		buildCtx, cancel := withOptionalTimeout(ctx, s.BuildTimeout)
		eng, err := engine.Open(buildCtx, ds, engine.WithSpec(name), engine.WithVerifyWorkers(1))
		cancel()
		if err != nil {
			return nil, fmt.Errorf("bench: router ablation: building %s: %w", name, err)
		}
		engines[i] = router.Sub{Name: name, Engine: eng}
	}

	var out []RouterResult

	// Fixed passes: per-query latency per method.
	times := make([][]float64, len(engines)) // method -> query -> seconds
	fixedOK := true
	for i, sub := range engines {
		res := RouterResult{Variant: "fixed:" + sub.Name, Spec: sub.Name, Queries: len(queries)}
		times[i], err = measurePass(ctx, s, sub.Engine.Query, queries)
		if err != nil {
			res.DNF, res.Reason = true, err.Error()
			fixedOK = false
		} else {
			for _, t := range times[i] {
				res.TotalSeconds += t
			}
			res.AvgSeconds = res.TotalSeconds / float64(len(queries))
		}
		logf("[ablation/router] %-16s total=%.4fs avg=%v%s\n", res.Variant,
			res.TotalSeconds, time.Duration(res.AvgSeconds*float64(time.Second)).Round(time.Microsecond),
			dnfNote(res))
		out = append(out, res)
	}

	// Oracle: per-query minimum over the fixed methods.
	oracleTotal := 0.0
	if fixedOK {
		wins := make([]int, len(engines))
		for qi := range queries {
			best, bestT := 0, times[0][qi]
			for mi := 1; mi < len(engines); mi++ {
				if times[mi][qi] < bestT {
					best, bestT = mi, times[mi][qi]
				}
			}
			wins[best]++
			oracleTotal += bestT
		}
		for i := range engines {
			out[i].WinRate = float64(wins[i]) / float64(len(queries))
			if oracleTotal > 0 {
				out[i].RegretVsOracle = (out[i].TotalSeconds - oracleTotal) / oracleTotal
			}
		}
	}

	// Router passes: one router per policy over the shared engines, warmed
	// by one full pass of the same traffic before measurement.
	for _, policy := range router.Policies() {
		res := RouterResult{
			Variant: "router:" + policy,
			Spec:    fmt.Sprintf("router:methods=%s,policy=%s", strings.Join(routerAblationMethods, "+"), policy),
			Queries: len(queries),
		}
		m, err := router.New(ds, engines, router.Options{Policy: policy, Epsilon: 0.1, Seed: s.Seed})
		if err != nil {
			return out, fmt.Errorf("bench: router ablation: %w", err)
		}
		if _, err := measurePass(ctx, s, m.Query, queries); err != nil { // warmup
			res.DNF, res.Reason = true, err.Error()
		} else if ts, err := measurePass(ctx, s, m.Query, queries); err != nil {
			res.DNF, res.Reason = true, err.Error()
		} else {
			for _, t := range ts {
				res.TotalSeconds += t
			}
			res.AvgSeconds = res.TotalSeconds / float64(len(queries))
			if fixedOK && oracleTotal > 0 {
				res.RegretVsOracle = (res.TotalSeconds - oracleTotal) / oracleTotal
			}
			snap := m.Stats()
			res.Routing = &snap
		}
		logf("[ablation/router] %-16s total=%.4fs avg=%v regret=%+.3f%s\n", res.Variant,
			res.TotalSeconds, time.Duration(res.AvgSeconds*float64(time.Second)).Round(time.Microsecond),
			res.RegretVsOracle, dnfNote(res))
		out = append(out, res)
	}

	if fixedOK {
		out = append(out, RouterResult{
			Variant:      "oracle",
			Queries:      len(queries),
			TotalSeconds: oracleTotal,
			AvgSeconds:   oracleTotal / float64(len(queries)),
		})
	}
	return out, nil
}

// measurePass runs every query serially through query under the scale's
// query budget, returning per-query latencies (the engine-measured
// filter+verify time, comparable across engine shapes).
func measurePass(ctx context.Context, s Scale,
	query func(context.Context, *graph.Graph) (*core.QueryResult, error), queries []*graph.Graph) ([]float64, error) {
	qctx, cancel := withOptionalTimeout(ctx, s.QueryTimeout)
	defer cancel()
	out := make([]float64, len(queries))
	for i, q := range queries {
		res, err := query(qctx, q)
		if err != nil {
			return nil, fmt.Errorf("query %d: %w", i, err)
		}
		out[i] = res.TotalTime().Seconds()
	}
	return out, nil
}

func dnfNote(r RouterResult) string {
	if r.DNF {
		return " DNF(" + r.Reason + ")"
	}
	return ""
}

// WriteRouterReport renders the router ablation: total and average latency
// per variant, the fixed methods' oracle win rates, each variant's regret
// versus the oracle, and — for the router variants — where the queries were
// actually routed.
func WriteRouterReport(w io.Writer, results []RouterResult) {
	fmt.Fprintf(w, "\n# Ablation: adaptive method router vs fixed methods (mixed workload)\n")
	fmt.Fprintf(w, "%-18s %8s %12s %12s %10s %10s\n",
		"variant", "queries", "total(s)", "avg(ms)", "win rate", "regret")
	for _, r := range results {
		if r.DNF {
			fmt.Fprintf(w, "%-18s %8d %12s  %s\n", r.Variant, r.Queries, "DNF", r.Reason)
			continue
		}
		winRate := "-"
		if strings.HasPrefix(r.Variant, "fixed:") {
			winRate = fmt.Sprintf("%.3f", r.WinRate)
		}
		regret := "-"
		if r.Variant != "oracle" {
			regret = fmt.Sprintf("%+.3f", r.RegretVsOracle)
		}
		fmt.Fprintf(w, "%-18s %8d %12.4f %12.4f %10s %10s\n",
			r.Variant, r.Queries, r.TotalSeconds, r.AvgSeconds*1000, winRate, regret)
	}
	for _, r := range results {
		if r.Routing == nil {
			continue
		}
		fmt.Fprintf(w, "\n%s routing (warmup + measured):", r.Variant)
		for _, ms := range r.Routing.Methods {
			fmt.Fprintf(w, " %s won %d/%d", ms.Method, ms.Won, r.Routing.Queries)
		}
		fmt.Fprintf(w, "; raced %d, explored %d, model cells %d\n",
			r.Routing.Raced, r.Routing.Explored, len(r.Routing.Model))
	}
}
