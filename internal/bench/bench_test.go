package bench

import (
	"bytes"
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/graph"
)

func tinyScale() Scale {
	s := BenchScale()
	s.Graphs = 15
	s.Nodes = 15
	s.Density = 0.2
	s.Labels = 4
	s.NodeGrid = []int{10, 15}
	s.DensityGrid = []float64{0.15, 0.25}
	s.LabelGrid = []int{3, 6}
	s.GraphCountGrid = []int{10, 20}
	s.QuerySizes = []int{3, 5}
	s.QueriesPerSize = 2
	s.BuildTimeout = 20 * time.Second
	s.QueryTimeout = 20 * time.Second
	s.MaxPatterns = 5000
	return s
}

func TestNewMethodKnownIDs(t *testing.T) {
	for _, id := range AllMethods {
		m, err := NewMethod(id, MethodLimits{})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if m.Name() == "" {
			t.Errorf("%s: empty name", id)
		}
	}
	if _, err := NewMethod("bogus", MethodLimits{}); err == nil {
		t.Errorf("unknown method accepted")
	}
}

func TestRunProducesAllCells(t *testing.T) {
	s := tinyScale()
	exp := Fig2(s)
	results, err := Run(context.Background(), exp, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(results) != len(s.NodeGrid) {
		t.Fatalf("points = %d, want %d", len(results), len(s.NodeGrid))
	}
	for _, pr := range results {
		if len(pr.Methods) != len(AllMethods) {
			t.Fatalf("point %s: %d method cells", pr.Spec.Label, len(pr.Methods))
		}
		for _, mr := range pr.Methods {
			if mr.DNF {
				continue // a DNF cell is a valid outcome
			}
			if mr.BuildTime <= 0 {
				t.Errorf("%s@%s: no build time", mr.Method, pr.Spec.Label)
			}
			if mr.IndexSize <= 0 {
				t.Errorf("%s@%s: no index size", mr.Method, pr.Spec.Label)
			}
			if mr.QueriesRun == 0 {
				t.Errorf("%s@%s: no queries ran", mr.Method, pr.Spec.Label)
			}
			if mr.FPRatio < 0 || mr.FPRatio > 1 {
				t.Errorf("%s@%s: FP ratio %v", mr.Method, pr.Spec.Label, mr.FPRatio)
			}
		}
	}
}

func TestRunHonorsMethodSubset(t *testing.T) {
	s := tinyScale()
	exp := Fig2(s)
	exp.Points = exp.Points[:1]
	exp.Methods = []MethodID{Grapes, GGSX}
	results, err := Run(context.Background(), exp, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(results[0].Methods) != 2 {
		t.Fatalf("method cells = %d, want 2", len(results[0].Methods))
	}
}

func TestRunTimeoutYieldsDNF(t *testing.T) {
	s := tinyScale()
	s.Graphs = 40
	s.Nodes = 60
	s.Density = 0.1
	exp := Fig2(s)
	exp.Points = exp.Points[len(exp.Points)-1:]
	exp.Methods = []MethodID{CTIndex}
	exp.BuildTimeout = 1 * time.Nanosecond
	results, err := Run(context.Background(), exp, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	mr := results[0].Methods[0]
	if !mr.DNF {
		t.Fatalf("nanosecond budget did not DNF")
	}
	if !strings.Contains(mr.Reason, "indexing") {
		t.Errorf("DNF reason %q should mention indexing", mr.Reason)
	}
}

func TestRunCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, Fig2(tinyScale()), nil)
	if err == nil {
		t.Fatalf("cancelled run should error")
	}
}

func TestWriteReportFormat(t *testing.T) {
	s := tinyScale()
	exp := Fig2(s)
	exp.Points = exp.Points[:1]
	exp.Methods = []MethodID{Grapes, CTIndex}
	results, err := Run(context.Background(), exp, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var buf bytes.Buffer
	WriteReport(&buf, exp, results)
	out := buf.String()
	for _, want := range []string{
		"(a) Indexing Time", "(b) Index Size", "(c) Query Processing Time",
		"(d) Avg False Positive Ratio", "Grapes", "CTindex",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	var perSize bytes.Buffer
	WritePerSizeReport(&perSize, exp, results)
	if !strings.Contains(perSize.String(), "Query Size: 3") {
		t.Errorf("per-size report missing size panel:\n%s", perSize.String())
	}
}

func TestTable1StatsAndReport(t *testing.T) {
	s := tinyScale()
	s.RealConfigs = []gen.RealConfig{func() gen.RealConfig {
		c := gen.AIDS.Scaled(1000, 2)
		c.Seed = 3
		return c
	}()}
	names, stats := Table1Stats(s)
	if len(names) != 1 || len(stats) != 1 {
		t.Fatalf("stats size mismatch")
	}
	if stats[0].NumGraphs != s.RealConfigs[0].NumGraphs {
		t.Errorf("graph count %d", stats[0].NumGraphs)
	}
	var buf bytes.Buffer
	WriteTable1(&buf, names, stats)
	if !strings.Contains(buf.String(), "AIDS") || !strings.Contains(buf.String(), "avg degree") {
		t.Errorf("table 1 output malformed:\n%s", buf.String())
	}
}

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"bench", "default", "paper"} {
		s, err := ScaleByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if s.Graphs <= 0 || len(s.NodeGrid) == 0 {
			t.Errorf("%s: incomplete scale", name)
		}
	}
	if _, err := ScaleByName("huge"); err == nil {
		t.Errorf("unknown scale accepted")
	}
	if s, err := ScaleByName(""); err != nil || s.Name != "default" {
		t.Errorf("empty scale should default")
	}
}

func TestExperimentConstructors(t *testing.T) {
	s := tinyScale()
	for _, exp := range []Experiment{Fig1(s), Fig2(s), Fig3(s), Fig5(s), Fig6(s)} {
		if exp.Name == "" || exp.Title == "" || exp.XAxis == "" {
			t.Errorf("experiment %q incomplete", exp.Name)
		}
		if len(exp.Points) == 0 {
			t.Errorf("experiment %q has no points", exp.Name)
		}
		for _, p := range exp.Points {
			ds := p.Make()
			if ds.Len() == 0 {
				t.Errorf("%s point %s: empty dataset", exp.Name, p.Label)
			}
		}
	}
}

func TestPaperScaleGridsMatchPaper(t *testing.T) {
	s := PaperScale()
	if len(s.NodeGrid) != 19 {
		t.Errorf("node grid size %d, want 19 (§5.2.1)", len(s.NodeGrid))
	}
	if len(s.DensityGrid) != 21 {
		t.Errorf("density grid size %d, want 21 (§5.2.2)", len(s.DensityGrid))
	}
	if len(s.GraphCountGrid) != 9 {
		t.Errorf("graph count grid size %d, want 9 (§5.2.4)", len(s.GraphCountGrid))
	}
	if s.BuildTimeout != 8*time.Hour {
		t.Errorf("paper build timeout %v, want 8h", s.BuildTimeout)
	}
	if s.Graphs != 1000 || s.Nodes != 200 || s.Density != 0.025 || s.Labels != 20 {
		t.Errorf("paper sane defaults wrong: %+v", s)
	}
}

func TestWriteCSV(t *testing.T) {
	s := tinyScale()
	exp := Fig2(s)
	exp.Points = exp.Points[:1]
	exp.Methods = []MethodID{Grapes, GGSX}
	results, err := Run(context.Background(), exp, nil)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, exp, results); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1+2 { // header + 2 method rows
		t.Fatalf("csv rows = %d, want 3:\n%s", len(lines), buf.String())
	}
	if !strings.HasPrefix(lines[0], "experiment,nodes,method,dnf,") {
		t.Errorf("csv header = %q", lines[0])
	}
	for _, line := range lines[1:] {
		if !strings.HasPrefix(line, "fig2,") {
			t.Errorf("csv row missing experiment name: %q", line)
		}
	}
}

func TestRunAblationAndReport(t *testing.T) {
	s := tinyScale()
	ds := AblationDataset(s)
	ab := Ablations()[0] // path length
	results, err := RunAblation(context.Background(), ab, ds, s, nil)
	if err != nil {
		t.Fatalf("RunAblation: %v", err)
	}
	if len(results) != len(ab.Variants) {
		t.Fatalf("results = %d, want %d", len(results), len(ab.Variants))
	}
	// Longer path limits must index at least as much data.
	var prev int64 = -1
	for _, mr := range results {
		if mr.DNF {
			t.Fatalf("%s DNF at tiny scale", mr.Method)
		}
		if mr.IndexSize < prev {
			t.Errorf("index size not monotone over path length: %d then %d", prev, mr.IndexSize)
		}
		prev = mr.IndexSize
	}
	var buf bytes.Buffer
	WriteAblationReport(&buf, ab, results)
	if !strings.Contains(buf.String(), "Path feature length") {
		t.Errorf("ablation report malformed:\n%s", buf.String())
	}
}

func TestAblationsAreComplete(t *testing.T) {
	abs := Ablations()
	if len(abs) < 5 {
		t.Fatalf("ablations = %d, want >= 5", len(abs))
	}
	seen := map[string]bool{}
	for _, ab := range abs {
		if seen[ab.Name] {
			t.Errorf("duplicate ablation %q", ab.Name)
		}
		seen[ab.Name] = true
		if len(ab.Variants) < 2 {
			t.Errorf("ablation %q has %d variants", ab.Name, len(ab.Variants))
		}
		for _, v := range ab.Variants {
			if m, err := engine.New(v.Spec); err != nil || m == nil {
				t.Errorf("ablation %q variant %q spec %q: %v", ab.Name, v.Name, v.Spec, err)
			}
		}
	}
}

func TestNoIndexMethodAvailable(t *testing.T) {
	m, err := NewMethod(NoIndex, MethodLimits{})
	if err != nil {
		t.Fatalf("NoIndex: %v", err)
	}
	if m.Name() != "NoIndex" {
		t.Errorf("name = %q", m.Name())
	}
	for _, id := range AllMethods {
		if id == NoIndex {
			t.Errorf("NoIndex must not be part of the paper's six-method set")
		}
	}
}

func TestFmtBytes(t *testing.T) {
	cases := map[int64]string{
		100:     "100B",
		2048:    "2.0KiB",
		3 << 20: "3.0MiB",
		5 << 30: "5.0GiB",
	}
	for in, want := range cases {
		if got := fmtBytes(in); got != want {
			t.Errorf("fmtBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestFindMethod(t *testing.T) {
	ms := []MethodResult{{Method: Grapes}, {Method: GCode}}
	if _, ok := findMethod(ms, GCode); !ok {
		t.Errorf("GCode not found")
	}
	if _, ok := findMethod(ms, GIndex); ok {
		t.Errorf("absent method found")
	}
}

var _ = graph.Stats{} // keep the import for table tests
