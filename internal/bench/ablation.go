package bench

import (
	"context"
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/ctindex"
	"repro/internal/gen"
	"repro/internal/ggsx"
	"repro/internal/gindex"
	"repro/internal/grapes"
	"repro/internal/graph"
)

// Variant is one configuration of a method in an ablation study.
type Variant struct {
	Name string
	Make func() core.Method
}

// Ablation studies one design-space axis the paper's §6 analysis attributes
// the methods' behaviour to, by sweeping a single parameter of a single
// method over the sane-defaults dataset.
type Ablation struct {
	Name     string
	Title    string
	Variants []Variant
}

// Ablations returns the ablation studies for the design decisions called
// out in DESIGN.md:
//
//   - path feature length (Grapes/GGSX): filtering power vs index size;
//   - CT-Index feature size: the paper's §4.1 note that size-4 features
//     trade a little filtering power for much lower times than the
//     original's size-6;
//   - CT-Index fingerprint width: hash saturation vs memory;
//   - Grapes build parallelism: the paper credits Grapes's indexing lead
//     to its multi-threaded construction;
//   - gIndex discriminative gate: index size vs filtering power.
func Ablations() []Ablation {
	return []Ablation{
		{
			Name:  "pathlen",
			Title: "Path feature length (GGSX)",
			Variants: []Variant{
				{"paths<=2", func() core.Method { return ggsx.New(ggsx.Options{MaxPathLen: 2}) }},
				{"paths<=3", func() core.Method { return ggsx.New(ggsx.Options{MaxPathLen: 3}) }},
				{"paths<=4", func() core.Method { return ggsx.New(ggsx.Options{MaxPathLen: 4}) }},
				{"paths<=5", func() core.Method { return ggsx.New(ggsx.Options{MaxPathLen: 5}) }},
			},
		},
		{
			Name:  "ctfeature",
			Title: "CT-Index feature size (trees/cycles)",
			Variants: []Variant{
				{"size<=3", func() core.Method {
					return ctindex.New(ctindex.Options{MaxTreeSize: 3, MaxCycleSize: 3})
				}},
				{"size<=4", func() core.Method {
					return ctindex.New(ctindex.Options{MaxTreeSize: 4, MaxCycleSize: 4})
				}},
				{"size<=5", func() core.Method {
					return ctindex.New(ctindex.Options{MaxTreeSize: 5, MaxCycleSize: 5})
				}},
			},
		},
		{
			Name:  "fingerprint",
			Title: "CT-Index fingerprint width (bits)",
			Variants: []Variant{
				{"512b", func() core.Method { return ctindex.New(ctindex.Options{FingerprintBits: 512}) }},
				{"1024b", func() core.Method { return ctindex.New(ctindex.Options{FingerprintBits: 1024}) }},
				{"4096b", func() core.Method { return ctindex.New(ctindex.Options{FingerprintBits: 4096}) }},
				{"16384b", func() core.Method { return ctindex.New(ctindex.Options{FingerprintBits: 16384}) }},
			},
		},
		{
			Name:  "workers",
			Title: "Grapes build parallelism (threads)",
			Variants: []Variant{
				{"1 thread", func() core.Method { return grapes.New(grapes.Options{Workers: 1}) }},
				{"2 threads", func() core.Method { return grapes.New(grapes.Options{Workers: 2}) }},
				{"6 threads", func() core.Method { return grapes.New(grapes.Options{Workers: 6}) }},
				{"12 threads", func() core.Method { return grapes.New(grapes.Options{Workers: 12}) }},
			},
		},
		{
			Name:  "discgate",
			Title: "gIndex discriminative gate",
			Variants: []Variant{
				{"gate=1.0", func() core.Method {
					return gindex.New(gindex.Options{DiscriminativeGate: 1.0001, MaxFeatureSize: 6, MaxPatterns: 50000})
				}},
				{"gate=2.0", func() core.Method {
					return gindex.New(gindex.Options{DiscriminativeGate: 2.0, MaxFeatureSize: 6, MaxPatterns: 50000})
				}},
				{"gate=4.0", func() core.Method {
					return gindex.New(gindex.Options{DiscriminativeGate: 4.0, MaxFeatureSize: 6, MaxPatterns: 50000})
				}},
			},
		},
	}
}

// AblationDataset is the sane-defaults dataset the ablations run on.
func AblationDataset(s Scale) *graph.Dataset {
	return gen.Synthetic(gen.SynthConfig{
		NumGraphs: s.Graphs, MeanNodes: s.Nodes, MeanDensity: s.Density,
		NumLabels: s.Labels, Seed: s.Seed + 999,
	})
}

// RunAblation executes one ablation study over ds and returns a result per
// variant, in order.
func RunAblation(ctx context.Context, ab Ablation, ds *graph.Dataset, s Scale, log io.Writer) ([]MethodResult, error) {
	exp := Experiment{
		Name:           "ablation/" + ab.Name,
		Title:          ab.Title,
		XAxis:          "variant",
		QuerySizes:     s.QuerySizes,
		QueriesPerSize: s.QueriesPerSize,
		BuildTimeout:   s.BuildTimeout,
		QueryTimeout:   s.QueryTimeout,
		Seed:           s.Seed,
	}
	queries, err := buildWorkload(ds, exp)
	if err != nil {
		return nil, fmt.Errorf("bench: ablation %s: %w", ab.Name, err)
	}
	var out []MethodResult
	for _, v := range ab.Variants {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		mr := runMethodInstance(ctx, MethodID(v.Name), v.Make(), ds, queries, exp)
		if log != nil {
			fmt.Fprintf(log, "[ablation/%s] %-12s build=%v size=%s query=%v fp=%.3f%s\n",
				ab.Name, v.Name, mr.BuildTime.Round(1000), fmtBytes(mr.IndexSize),
				mr.AvgQueryTime, mr.FPRatio, dnfSuffix(mr))
		}
		out = append(out, mr)
	}
	return out, nil
}

// WriteAblationReport renders one ablation study's results.
func WriteAblationReport(w io.Writer, ab Ablation, results []MethodResult) {
	fmt.Fprintf(w, "\n# Ablation: %s\n", ab.Title)
	fmt.Fprintf(w, "%-12s %12s %12s %14s %10s\n", "variant", "build(s)", "size(MB)", "query(s)", "FP ratio")
	for _, mr := range results {
		if mr.DNF {
			fmt.Fprintf(w, "%-12s %12s\n", mr.Method, "DNF")
			continue
		}
		fmt.Fprintf(w, "%-12s %12.3f %12.3f %14.5f %10.3f\n",
			mr.Method, mr.BuildTime.Seconds(), float64(mr.IndexSize)/(1<<20),
			mr.AvgQueryTime.Seconds(), mr.FPRatio)
	}
}
