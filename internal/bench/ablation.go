package bench

import (
	"context"
	"fmt"
	"io"

	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/graph"
)

// Variant is one configuration of a method in an ablation study, expressed
// as an engine method spec. Shards > 0 runs the variant through a sharded
// engine with that many shards (parallel per-shard build, fan-out queries);
// 0 keeps the plain unsharded path.
type Variant struct {
	Name   string
	Spec   string
	Shards int
}

// Ablation studies one design-space axis the paper's §6 analysis attributes
// the methods' behaviour to, by sweeping a single parameter of a single
// method over the sane-defaults dataset.
type Ablation struct {
	Name     string
	Title    string
	Variants []Variant
}

// Ablations returns the ablation studies for the design decisions called
// out in DESIGN.md:
//
//   - path feature length (Grapes/GGSX): filtering power vs index size;
//   - CT-Index feature size: the paper's §4.1 note that size-4 features
//     trade a little filtering power for much lower times than the
//     original's size-6;
//   - CT-Index fingerprint width: hash saturation vs memory;
//   - Grapes build parallelism: the paper credits Grapes's indexing lead
//     to its multi-threaded construction;
//   - gIndex discriminative gate: index size vs filtering power;
//   - shard count: the engine-level answer to the paper's headline finding
//     that indexing time is what stops methods from scaling — partitioned
//     builds with fan-out/merge queries, swept over 1/2/4/8 shards.
func Ablations() []Ablation {
	return []Ablation{
		{
			Name:  "pathlen",
			Title: "Path feature length (GGSX)",
			Variants: []Variant{
				{Name: "paths<=2", Spec: "ggsx:maxPathLen=2"},
				{Name: "paths<=3", Spec: "ggsx:maxPathLen=3"},
				{Name: "paths<=4", Spec: "ggsx:maxPathLen=4"},
				{Name: "paths<=5", Spec: "ggsx:maxPathLen=5"},
			},
		},
		{
			Name:  "ctfeature",
			Title: "CT-Index feature size (trees/cycles)",
			Variants: []Variant{
				{Name: "size<=3", Spec: "ctindex:maxTreeSize=3,maxCycleSize=3"},
				{Name: "size<=4", Spec: "ctindex:maxTreeSize=4,maxCycleSize=4"},
				{Name: "size<=5", Spec: "ctindex:maxTreeSize=5,maxCycleSize=5"},
			},
		},
		{
			Name:  "fingerprint",
			Title: "CT-Index fingerprint width (bits)",
			Variants: []Variant{
				{Name: "512b", Spec: "ctindex:fingerprintBits=512"},
				{Name: "1024b", Spec: "ctindex:fingerprintBits=1024"},
				{Name: "4096b", Spec: "ctindex:fingerprintBits=4096"},
				{Name: "16384b", Spec: "ctindex:fingerprintBits=16384"},
			},
		},
		{
			Name:  "workers",
			Title: "Grapes build parallelism (threads)",
			Variants: []Variant{
				{Name: "1 thread", Spec: "grapes:workers=1"},
				{Name: "2 threads", Spec: "grapes:workers=2"},
				{Name: "6 threads", Spec: "grapes:workers=6"},
				{Name: "12 threads", Spec: "grapes:workers=12"},
			},
		},
		{
			// GGSX builds serially, so every speedup here is the shard
			// pool's; per-method build threads (grapes:workers) would
			// compound with it and muddy the attribution.
			Name:  "shards",
			Title: "Sharded index construction + query fan-out (GGSX)",
			Variants: []Variant{
				{Name: "1 shard", Spec: "ggsx", Shards: 1},
				{Name: "2 shards", Spec: "ggsx", Shards: 2},
				{Name: "4 shards", Spec: "ggsx", Shards: 4},
				{Name: "8 shards", Spec: "ggsx", Shards: 8},
			},
		},
		{
			Name:  "discgate",
			Title: "gIndex discriminative gate",
			Variants: []Variant{
				{Name: "gate=1.0", Spec: "gindex:discriminativeGate=1.0001,maxFeatureSize=6,maxPatterns=50000"},
				{Name: "gate=2.0", Spec: "gindex:discriminativeGate=2.0,maxFeatureSize=6,maxPatterns=50000"},
				{Name: "gate=4.0", Spec: "gindex:discriminativeGate=4.0,maxFeatureSize=6,maxPatterns=50000"},
			},
		},
	}
}

// AblationDataset is the sane-defaults dataset the ablations run on.
func AblationDataset(s Scale) *graph.Dataset {
	return gen.Synthetic(gen.SynthConfig{
		NumGraphs: s.Graphs, MeanNodes: s.Nodes, MeanDensity: s.Density,
		NumLabels: s.Labels, Seed: s.Seed + 999,
	})
}

// RunAblation executes one ablation study over ds and returns a result per
// variant, in order.
func RunAblation(ctx context.Context, ab Ablation, ds *graph.Dataset, s Scale, log io.Writer) ([]MethodResult, error) {
	exp := Experiment{
		Name:           "ablation/" + ab.Name,
		Title:          ab.Title,
		XAxis:          "variant",
		QuerySizes:     s.QuerySizes,
		QueriesPerSize: s.QueriesPerSize,
		BuildTimeout:   s.BuildTimeout,
		QueryTimeout:   s.QueryTimeout,
		Seed:           s.Seed,
	}
	queries, err := buildWorkload(ds, exp)
	if err != nil {
		return nil, fmt.Errorf("bench: ablation %s: %w", ab.Name, err)
	}
	var out []MethodResult
	for _, v := range ab.Variants {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		var mr MethodResult
		if v.Shards > 0 {
			// A malformed spec aborts the ablation like in the unsharded
			// branch below, instead of degrading into a misleading DNF row.
			if _, _, err := engine.ParseSpec(v.Spec); err != nil {
				return out, fmt.Errorf("bench: ablation %s variant %s: %w", ab.Name, v.Name, err)
			}
			mr = runMethodSharded(ctx, MethodID(v.Name), v.Spec, v.Shards, ds, queries, exp)
		} else {
			m, err := engine.New(v.Spec)
			if err != nil {
				return out, fmt.Errorf("bench: ablation %s variant %s: %w", ab.Name, v.Name, err)
			}
			mr = runMethodInstance(ctx, MethodID(v.Name), m, v.Spec, ds, queries, exp)
		}
		if log != nil {
			fmt.Fprintf(log, "[ablation/%s] %-12s build=%v size=%s query=%v fp=%.3f%s%s\n",
				ab.Name, v.Name, mr.BuildTime.Round(1000), fmtBytes(mr.IndexSize),
				mr.AvgQueryTime, mr.FPRatio, speedupSuffix(mr), dnfSuffix(mr))
		}
		out = append(out, mr)
	}
	return out, nil
}

// buildSpeedup returns a sharded cell's parallel build speedup —
// serial-equivalent build time over wall time — and whether the ratio is
// meaningful (sharded run with nonzero times on both sides).
func buildSpeedup(mr MethodResult) (float64, bool) {
	if mr.Shards <= 0 || mr.BuildTime <= 0 || mr.ShardBuildSum <= 0 {
		return 0, false
	}
	return float64(mr.ShardBuildSum) / float64(mr.BuildTime), true
}

// speedupSuffix renders buildSpeedup for progress logs.
func speedupSuffix(mr MethodResult) string {
	sp, ok := buildSpeedup(mr)
	if !ok {
		return ""
	}
	return fmt.Sprintf(" speedup=%.2fx", sp)
}

// WriteAblationReport renders one ablation study's results. Sharded studies
// get two extra columns: the serial-equivalent build time (sum over shards)
// and the parallel build speedup it implies.
func WriteAblationReport(w io.Writer, ab Ablation, results []MethodResult) {
	sharded := false
	for _, mr := range results {
		if mr.Shards > 0 {
			sharded = true
			break
		}
	}
	fmt.Fprintf(w, "\n# Ablation: %s\n", ab.Title)
	fmt.Fprintf(w, "%-12s %12s %12s %14s %10s", "variant", "build(s)", "size(MB)", "query(s)", "FP ratio")
	if sharded {
		fmt.Fprintf(w, " %12s %10s", "buildΣ(s)", "speedup")
	}
	fmt.Fprintln(w)
	for _, mr := range results {
		if mr.DNF {
			fmt.Fprintf(w, "%-12s %12s\n", mr.Method, "DNF")
			continue
		}
		fmt.Fprintf(w, "%-12s %12.3f %12.3f %14.5f %10.3f",
			mr.Method, mr.BuildTime.Seconds(), float64(mr.IndexSize)/(1<<20),
			mr.AvgQueryTime.Seconds(), mr.FPRatio)
		if sharded {
			if sp, ok := buildSpeedup(mr); ok {
				fmt.Fprintf(w, " %12.3f %9.2fx", mr.ShardBuildSum.Seconds(), sp)
			} else {
				fmt.Fprintf(w, " %12.3f %10s", mr.ShardBuildSum.Seconds(), "-")
			}
		}
		fmt.Fprintln(w)
	}
}
