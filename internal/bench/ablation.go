package bench

import (
	"context"
	"fmt"
	"io"

	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/graph"
)

// Variant is one configuration of a method in an ablation study, expressed
// as an engine method spec.
type Variant struct {
	Name string
	Spec string
}

// Ablation studies one design-space axis the paper's §6 analysis attributes
// the methods' behaviour to, by sweeping a single parameter of a single
// method over the sane-defaults dataset.
type Ablation struct {
	Name     string
	Title    string
	Variants []Variant
}

// Ablations returns the ablation studies for the design decisions called
// out in DESIGN.md:
//
//   - path feature length (Grapes/GGSX): filtering power vs index size;
//   - CT-Index feature size: the paper's §4.1 note that size-4 features
//     trade a little filtering power for much lower times than the
//     original's size-6;
//   - CT-Index fingerprint width: hash saturation vs memory;
//   - Grapes build parallelism: the paper credits Grapes's indexing lead
//     to its multi-threaded construction;
//   - gIndex discriminative gate: index size vs filtering power.
func Ablations() []Ablation {
	return []Ablation{
		{
			Name:  "pathlen",
			Title: "Path feature length (GGSX)",
			Variants: []Variant{
				{"paths<=2", "ggsx:maxPathLen=2"},
				{"paths<=3", "ggsx:maxPathLen=3"},
				{"paths<=4", "ggsx:maxPathLen=4"},
				{"paths<=5", "ggsx:maxPathLen=5"},
			},
		},
		{
			Name:  "ctfeature",
			Title: "CT-Index feature size (trees/cycles)",
			Variants: []Variant{
				{"size<=3", "ctindex:maxTreeSize=3,maxCycleSize=3"},
				{"size<=4", "ctindex:maxTreeSize=4,maxCycleSize=4"},
				{"size<=5", "ctindex:maxTreeSize=5,maxCycleSize=5"},
			},
		},
		{
			Name:  "fingerprint",
			Title: "CT-Index fingerprint width (bits)",
			Variants: []Variant{
				{"512b", "ctindex:fingerprintBits=512"},
				{"1024b", "ctindex:fingerprintBits=1024"},
				{"4096b", "ctindex:fingerprintBits=4096"},
				{"16384b", "ctindex:fingerprintBits=16384"},
			},
		},
		{
			Name:  "workers",
			Title: "Grapes build parallelism (threads)",
			Variants: []Variant{
				{"1 thread", "grapes:workers=1"},
				{"2 threads", "grapes:workers=2"},
				{"6 threads", "grapes:workers=6"},
				{"12 threads", "grapes:workers=12"},
			},
		},
		{
			Name:  "discgate",
			Title: "gIndex discriminative gate",
			Variants: []Variant{
				{"gate=1.0", "gindex:discriminativeGate=1.0001,maxFeatureSize=6,maxPatterns=50000"},
				{"gate=2.0", "gindex:discriminativeGate=2.0,maxFeatureSize=6,maxPatterns=50000"},
				{"gate=4.0", "gindex:discriminativeGate=4.0,maxFeatureSize=6,maxPatterns=50000"},
			},
		},
	}
}

// AblationDataset is the sane-defaults dataset the ablations run on.
func AblationDataset(s Scale) *graph.Dataset {
	return gen.Synthetic(gen.SynthConfig{
		NumGraphs: s.Graphs, MeanNodes: s.Nodes, MeanDensity: s.Density,
		NumLabels: s.Labels, Seed: s.Seed + 999,
	})
}

// RunAblation executes one ablation study over ds and returns a result per
// variant, in order.
func RunAblation(ctx context.Context, ab Ablation, ds *graph.Dataset, s Scale, log io.Writer) ([]MethodResult, error) {
	exp := Experiment{
		Name:           "ablation/" + ab.Name,
		Title:          ab.Title,
		XAxis:          "variant",
		QuerySizes:     s.QuerySizes,
		QueriesPerSize: s.QueriesPerSize,
		BuildTimeout:   s.BuildTimeout,
		QueryTimeout:   s.QueryTimeout,
		Seed:           s.Seed,
	}
	queries, err := buildWorkload(ds, exp)
	if err != nil {
		return nil, fmt.Errorf("bench: ablation %s: %w", ab.Name, err)
	}
	var out []MethodResult
	for _, v := range ab.Variants {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		m, err := engine.New(v.Spec)
		if err != nil {
			return out, fmt.Errorf("bench: ablation %s variant %s: %w", ab.Name, v.Name, err)
		}
		mr := runMethodInstance(ctx, MethodID(v.Name), m, ds, queries, exp)
		if log != nil {
			fmt.Fprintf(log, "[ablation/%s] %-12s build=%v size=%s query=%v fp=%.3f%s\n",
				ab.Name, v.Name, mr.BuildTime.Round(1000), fmtBytes(mr.IndexSize),
				mr.AvgQueryTime, mr.FPRatio, dnfSuffix(mr))
		}
		out = append(out, mr)
	}
	return out, nil
}

// WriteAblationReport renders one ablation study's results.
func WriteAblationReport(w io.Writer, ab Ablation, results []MethodResult) {
	fmt.Fprintf(w, "\n# Ablation: %s\n", ab.Title)
	fmt.Fprintf(w, "%-12s %12s %12s %14s %10s\n", "variant", "build(s)", "size(MB)", "query(s)", "FP ratio")
	for _, mr := range results {
		if mr.DNF {
			fmt.Fprintf(w, "%-12s %12s\n", mr.Method, "DNF")
			continue
		}
		fmt.Fprintf(w, "%-12s %12.3f %12.3f %14.5f %10.3f\n",
			mr.Method, mr.BuildTime.Seconds(), float64(mr.IndexSize)/(1<<20),
			mr.AvgQueryTime.Seconds(), mr.FPRatio)
	}
}
