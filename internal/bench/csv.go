package bench

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV renders an experiment's results as tidy CSV (one row per
// x-point × method, one column per metric), the format plotting pipelines
// ingest directly.
func WriteCSV(w io.Writer, exp Experiment, results []PointResult) error {
	cw := csv.NewWriter(w)
	header := []string{
		"experiment", exp.XAxis, "method", "dnf", "build_seconds",
		"index_bytes", "avg_query_seconds", "fp_ratio",
		"avg_candidates", "avg_answers", "queries",
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, pr := range results {
		for _, mr := range pr.Methods {
			row := []string{
				exp.Name,
				pr.Spec.Label,
				string(mr.Method),
				strconv.FormatBool(mr.DNF),
				fmt.Sprintf("%.6f", mr.BuildTime.Seconds()),
				strconv.FormatInt(mr.IndexSize, 10),
				fmt.Sprintf("%.6f", mr.AvgQueryTime.Seconds()),
				fmt.Sprintf("%.4f", mr.FPRatio),
				fmt.Sprintf("%.2f", mr.AvgCandidates),
				fmt.Sprintf("%.2f", mr.AvgAnswers),
				strconv.Itoa(mr.QueriesRun),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}
