package bench

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

// TestRunUpdateAblation smoke-runs the update ablation at tiny scale and
// pins its structure: every method appears under both maintenance
// strategies, nothing DNFs, mutation and query counts match across
// strategies (the streams are identical), and the incremental methods'
// online maintenance beats the full-rebuild baseline.
func TestRunUpdateAblation(t *testing.T) {
	s := tinyScale()
	var log bytes.Buffer
	results, err := RunUpdateAblation(context.Background(), s, &log)
	if err != nil {
		t.Fatalf("RunUpdateAblation: %v\n%s", err, log.String())
	}
	byVariant := map[string]UpdateResult{}
	for _, r := range results {
		if r.DNF {
			t.Fatalf("%s DNF: %s", r.Variant, r.Reason)
		}
		byVariant[r.Variant] = r
	}
	for _, spec := range updateAblationSpecs {
		online, ok := byVariant["online:"+spec]
		if !ok {
			t.Fatalf("no online:%s row", spec)
		}
		rebuild, ok := byVariant["rebuild:"+spec]
		if !ok {
			t.Fatalf("no rebuild:%s row", spec)
		}
		if online.Mutations != rebuild.Mutations || online.Queries != rebuild.Queries {
			t.Errorf("%s: strategies ran different streams: %+v vs %+v", spec, online, rebuild)
		}
		if online.Mutations == 0 || online.Queries == 0 {
			t.Errorf("online:%s ran no traffic", spec)
		}
		if online.MaintainSeconds <= 0 || rebuild.MaintainSeconds <= 0 {
			t.Errorf("%s: zero maintenance time", spec)
		}
	}
	// The tentpole claim: incremental maintenance beats full rebuild.
	for _, spec := range []string{"grapes", "ggsx", "gcode"} {
		online, rebuild := byVariant["online:"+spec], byVariant["rebuild:"+spec]
		if !online.Incremental {
			t.Errorf("%s should be incremental", spec)
		}
		if online.MaintainSeconds >= rebuild.MaintainSeconds {
			t.Errorf("%s: online %.4fs not faster than rebuild %.4fs",
				spec, online.MaintainSeconds, rebuild.MaintainSeconds)
		}
		if online.SpeedupVsRebuild <= 1 {
			t.Errorf("%s: speedup %.2f <= 1", spec, online.SpeedupVsRebuild)
		}
	}

	var report bytes.Buffer
	WriteUpdateReport(&report, results)
	for _, want := range []string{"online:grapes", "rebuild:ctindex", "speedup"} {
		if !strings.Contains(report.String(), want) {
			t.Errorf("report missing %q:\n%s", want, report.String())
		}
	}
}
