package bench

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"time"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/server"
	"repro/internal/workload"
)

// cacheAblationSpec is the method the cache ablation serves traffic
// through. GGSX is the cheapest stable build, so the sweep's signal is the
// cache's, not the index's.
const cacheAblationSpec = "ggsx"

// cacheRepeats is the swept traffic repetition factor: every base query is
// replayed this many times (as fresh isomorphic vertex permutations), so
// the expected steady-state hit ratio at factor r is (r-1)/r — 0%, 50%,
// 75%, 87.5%.
var cacheRepeats = []int{1, 2, 4, 8}

// CacheResult is one repeated-traffic cell of the cache ablation.
type CacheResult struct {
	Variant  string `json:"variant"`
	Repeats  int    `json:"repeats"`
	Requests int    `json:"requests"`
	Hits     int64  `json:"hits"`
	Misses   int64  `json:"misses"`
	// HitRatio is hits over requests; with r repeats it converges to
	// (r-1)/r since each isomorphism class computes exactly once.
	HitRatio float64 `json:"hit_ratio"`
	// AvgServedSeconds is the mean served latency over all requests
	// (hits and misses); AvgUncachedSeconds is the mean over the misses
	// alone — the no-cache baseline cost.
	AvgServedSeconds   float64 `json:"avg_served_seconds"`
	AvgUncachedSeconds float64 `json:"avg_uncached_seconds"`
	// Speedup is AvgUncachedSeconds / AvgServedSeconds.
	Speedup float64 `json:"speedup"`
}

// RunCacheAblation sweeps the serving layer's result cache over
// repeated-workload traffic: one engine is built once, then each variant
// replays the base workload with a different repetition factor — every
// repeat an isomorphic vertex permutation of its query, shuffled — through
// a fresh cache, reporting the hit ratio and the latency win.
func RunCacheAblation(ctx context.Context, ds *graph.Dataset, s Scale, log io.Writer) ([]CacheResult, error) {
	buildCtx, cancel := withOptionalTimeout(ctx, s.BuildTimeout)
	eng, err := engine.Open(buildCtx, ds, engine.WithSpec(cacheAblationSpec), engine.WithVerifyWorkers(1))
	cancel()
	if err != nil {
		return nil, fmt.Errorf("bench: cache ablation: building %s: %w", cacheAblationSpec, err)
	}
	exp := Experiment{QuerySizes: s.QuerySizes, QueriesPerSize: s.QueriesPerSize, Seed: s.Seed}
	sized, err := buildWorkload(ds, exp)
	if err != nil {
		return nil, fmt.Errorf("bench: cache ablation: %w", err)
	}
	base := make([]*graph.Graph, len(sized))
	for i, sq := range sized {
		base[i] = sq.q
	}

	var out []CacheResult
	for _, repeats := range cacheRepeats {
		if err := ctx.Err(); err != nil {
			return out, err
		}
		traffic := repeatedTraffic(base, repeats, s.Seed)
		cached := server.NewCached(eng, server.CacheConfig{})
		var served, uncached time.Duration
		misses := 0
		for _, q := range traffic {
			if err := ctx.Err(); err != nil {
				return out, err
			}
			res, err := cached.Query(ctx, q)
			if err != nil {
				return out, fmt.Errorf("bench: cache ablation x%d: %w", repeats, err)
			}
			served += res.TotalTime()
			if !res.Cached {
				uncached += res.TotalTime()
				misses++
			}
		}
		st := cached.CacheStats()
		row := CacheResult{
			Variant:          fmt.Sprintf("x%d", repeats),
			Repeats:          repeats,
			Requests:         len(traffic),
			Hits:             st.Hits,
			Misses:           st.Misses,
			HitRatio:         float64(st.Hits) / float64(len(traffic)),
			AvgServedSeconds: served.Seconds() / float64(len(traffic)),
		}
		if misses > 0 {
			row.AvgUncachedSeconds = uncached.Seconds() / float64(misses)
		}
		if row.AvgServedSeconds > 0 {
			row.Speedup = row.AvgUncachedSeconds / row.AvgServedSeconds
		}
		if log != nil {
			fmt.Fprintf(log, "[ablation/cache] %-4s requests=%d hits=%d ratio=%.3f served=%.6fs uncached=%.6fs speedup=%.2fx\n",
				row.Variant, row.Requests, row.Hits, row.HitRatio,
				row.AvgServedSeconds, row.AvgUncachedSeconds, row.Speedup)
		}
		out = append(out, row)
	}
	return out, nil
}

// repeatedTraffic replays the base workload `repeats` times — every replay
// of a query a fresh random vertex permutation, so cache hits must come
// from canonical keying, not byte equality — in a deterministic shuffle.
func repeatedTraffic(base []*graph.Graph, repeats int, seed int64) []*graph.Graph {
	rng := rand.New(rand.NewSource(seed + int64(repeats)*7919))
	traffic := make([]*graph.Graph, 0, len(base)*repeats)
	for rep := 0; rep < repeats; rep++ {
		for _, q := range base {
			if rep == 0 {
				traffic = append(traffic, q)
				continue
			}
			traffic = append(traffic, workload.Permute(q, rng.Int63()))
		}
	}
	rng.Shuffle(len(traffic), func(i, j int) { traffic[i], traffic[j] = traffic[j], traffic[i] })
	return traffic
}

// WriteCacheAblationReport renders the cache ablation sweep.
func WriteCacheAblationReport(w io.Writer, results []CacheResult) {
	fmt.Fprintf(w, "\n# Ablation: result cache on repeated isomorphic traffic (%s)\n", cacheAblationSpec)
	fmt.Fprintf(w, "%-8s %10s %8s %10s %14s %14s %9s\n",
		"variant", "requests", "hits", "hitratio", "served(s)", "uncached(s)", "speedup")
	for _, r := range results {
		fmt.Fprintf(w, "%-8s %10d %8d %10.3f %14.6f %14.6f %8.2fx\n",
			r.Variant, r.Requests, r.Hits, r.HitRatio,
			r.AvgServedSeconds, r.AvgUncachedSeconds, r.Speedup)
	}
}
