package bench

import (
	"fmt"
	"time"

	"repro/internal/gen"
	"repro/internal/graph"
)

// Scale selects how close the experiment grids are to the paper's full
// parameter space. The paper's setup (1000-graph datasets of 200-2000-node
// graphs, 8-hour timeouts, dual 8-core Xeons) is out of reach for a unit
// bench run; Scale keeps the sweep shapes — who wins, by what factor, where
// the DNF breaking points appear — while bounding wall-clock time.
type Scale struct {
	Name string

	// Sane defaults (§4.2: 200 nodes, density 0.025, 20 labels, 1000
	// graphs at paper scale), used for the parameters not being swept.
	Graphs  int
	Nodes   int
	Density float64
	Labels  int

	// Sweep grids.
	NodeGrid       []int
	DensityGrid    []float64
	LabelGrid      []int
	GraphCountGrid []int

	// Real-dataset simulator configs for Figure 1 / Table 1.
	RealConfigs []gen.RealConfig

	// Workload shape.
	QuerySizes     []int
	QueriesPerSize int

	// Budgets: the analogue of the paper's 8-hour limit.
	BuildTimeout time.Duration
	QueryTimeout time.Duration
	MaxPatterns  int

	Seed int64
}

// BenchScale is the smallest scale: suitable for `go test -bench`, finishing
// in seconds per figure.
func BenchScale() Scale {
	return Scale{
		Name:    "bench",
		Graphs:  40,
		Nodes:   40,
		Density: 0.06,
		Labels:  10,

		NodeGrid:       []int{20, 40, 60},
		DensityGrid:    []float64{0.03, 0.06, 0.1, 0.15},
		LabelGrid:      []int{4, 10, 20, 40},
		GraphCountGrid: []int{25, 50, 100, 200},
		RealConfigs:    benchRealConfigs(),

		QuerySizes:     []int{4, 8, 16},
		QueriesPerSize: 4,

		BuildTimeout: 15 * time.Second,
		QueryTimeout: 15 * time.Second,
		MaxPatterns:  20000,
		Seed:         42,
	}
}

// DefaultScale runs in minutes per figure and reproduces the paper's trends
// with clear separation between the methods.
func DefaultScale() Scale {
	return Scale{
		Name:    "default",
		Graphs:  100,
		Nodes:   100,
		Density: 0.025,
		Labels:  20,

		NodeGrid:       []int{30, 50, 75, 100, 150, 200, 300},
		DensityGrid:    []float64{0.01, 0.02, 0.025, 0.03, 0.05, 0.075, 0.1, 0.15, 0.2},
		LabelGrid:      []int{5, 10, 20, 40, 60, 80},
		GraphCountGrid: []int{100, 250, 500, 1000, 2000},
		RealConfigs:    defaultRealConfigs(),

		QuerySizes:     []int{4, 8, 16, 32},
		QueriesPerSize: 10,

		BuildTimeout: 3 * time.Minute,
		QueryTimeout: 3 * time.Minute,
		MaxPatterns:  100000,
		Seed:         42,
	}
}

// PaperScale is the full §4.2 grid with the paper's 8-hour timeout; running
// it end-to-end takes days, as it did for the authors.
func PaperScale() Scale {
	return Scale{
		Name:    "paper",
		Graphs:  1000,
		Nodes:   200,
		Density: 0.025,
		Labels:  20,

		NodeGrid: []int{50, 75, 100, 125, 150, 175, 200, 250, 300, 400, 500,
			600, 800, 1000, 1200, 1400, 1600, 1800, 2000},
		DensityGrid: []float64{0.005, 0.006, 0.007, 0.008, 0.009, 0.01, 0.015,
			0.02, 0.025, 0.03, 0.035, 0.04, 0.045, 0.05, 0.06, 0.07, 0.08,
			0.09, 0.1, 0.2, 0.3},
		LabelGrid:      []int{10, 20, 30, 40, 50, 60, 70, 80},
		GraphCountGrid: []int{1000, 2500, 5000, 7500, 10000, 25000, 50000, 100000, 500000},
		RealConfigs:    paperRealConfigs(),

		QuerySizes:     []int{4, 8, 16, 32},
		QueriesPerSize: 20,

		BuildTimeout: 8 * time.Hour,
		QueryTimeout: 8 * time.Hour,
		MaxPatterns:  0, // unlimited: the timeout is the only budget
		Seed:         42,
	}
}

// ScaleByName resolves "bench", "default", or "paper".
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "bench":
		return BenchScale(), nil
	case "default", "":
		return DefaultScale(), nil
	case "paper":
		return PaperScale(), nil
	}
	return Scale{}, fmt.Errorf("bench: unknown scale %q (want bench, default, or paper)", name)
}

// benchRealConfigs are heavily scaled-down Table 1 datasets: graph counts
// and node counts shrink, the degree *ordering* (PCM densest, then PPI,
// then AIDS/PDBS sparse) is preserved, which is what drives Figure 1's
// shape. PCM/PPI degree is additionally reduced — path and subtree
// enumeration cost grows as degree^4, so the original degree 23 would DNF
// every method at bench time budgets, flattening the comparison.
func benchRealConfigs() []gen.RealConfig {
	aids := gen.AIDS.Scaled(200, 1)
	pdbs := gen.PDBS.Scaled(15, 20)
	pcm := gen.PCM.Scaled(5, 8)
	pcm.AvgEdges = pcm.AvgNodes * 2.5 // degree ~5, still the densest
	ppi := gen.PPI.Scaled(2, 40)
	ppi.AvgEdges = ppi.AvgNodes * 2 // degree ~4
	return seeded([]gen.RealConfig{aids, pdbs, pcm, ppi})
}

func defaultRealConfigs() []gen.RealConfig {
	aids := gen.AIDS.Scaled(50, 1)
	pdbs := gen.PDBS.Scaled(5, 10)
	pcm := gen.PCM.Scaled(2, 4)
	pcm.AvgEdges = pcm.AvgNodes * 4 // degree ~8
	ppi := gen.PPI.Scaled(1, 20)
	ppi.AvgEdges = ppi.AvgNodes * 2.75 // degree ~5.5
	return seeded([]gen.RealConfig{aids, pdbs, pcm, ppi})
}

func paperRealConfigs() []gen.RealConfig {
	return seeded([]gen.RealConfig{gen.AIDS, gen.PDBS, gen.PCM, gen.PPI})
}

func seeded(cfgs []gen.RealConfig) []gen.RealConfig {
	for i := range cfgs {
		cfgs[i].Seed = int64(1000 + i)
	}
	return cfgs
}

func (s Scale) experiment(name, title, xaxis string, points []DatasetSpec) Experiment {
	return Experiment{
		Name:           name,
		Title:          title,
		XAxis:          xaxis,
		Points:         points,
		QuerySizes:     s.QuerySizes,
		QueriesPerSize: s.QueriesPerSize,
		BuildTimeout:   s.BuildTimeout,
		QueryTimeout:   s.QueryTimeout,
		Limits:         MethodLimits{MaxPatterns: s.MaxPatterns},
		Seed:           s.Seed,
	}
}

// Fig1 is the real-dataset comparison (Figure 1: indexing time/size, query
// time, FP ratio over AIDS, PDBS, PCM, PPI).
func Fig1(s Scale) Experiment {
	var points []DatasetSpec
	for i, cfg := range s.RealConfigs {
		cfg := cfg
		points = append(points, DatasetSpec{
			X:     float64(i),
			Label: cfg.Name,
			Make:  func() *graph.Dataset { return gen.Realistic(cfg) },
		})
	}
	return s.experiment("fig1", "Figure 1: real datasets", "dataset", points)
}

// Fig2 varies the number of nodes per graph (Figure 2).
func Fig2(s Scale) Experiment {
	var points []DatasetSpec
	for _, n := range s.NodeGrid {
		n := n
		points = append(points, DatasetSpec{
			X:     float64(n),
			Label: fmt.Sprintf("%d", n),
			Make: func() *graph.Dataset {
				return gen.Synthetic(gen.SynthConfig{
					NumGraphs: s.Graphs, MeanNodes: n, MeanDensity: s.Density,
					NumLabels: s.Labels, Seed: s.Seed + int64(n),
				})
			},
		})
	}
	return s.experiment("fig2", "Figure 2: varying number of nodes", "nodes", points)
}

// Fig3 varies graph density (Figure 3); its per-query-size view is Figure 4.
func Fig3(s Scale) Experiment {
	var points []DatasetSpec
	for i, d := range s.DensityGrid {
		d := d
		points = append(points, DatasetSpec{
			X:     d,
			Label: fmt.Sprintf("%g", d),
			Make: func() *graph.Dataset {
				return gen.Synthetic(gen.SynthConfig{
					NumGraphs: s.Graphs, MeanNodes: s.Nodes, MeanDensity: d,
					NumLabels: s.Labels, Seed: s.Seed + int64(i),
				})
			},
		})
	}
	return s.experiment("fig3", "Figure 3: varying density", "density", points)
}

// Fig5 varies the number of distinct labels (Figure 5).
func Fig5(s Scale) Experiment {
	var points []DatasetSpec
	for _, l := range s.LabelGrid {
		l := l
		points = append(points, DatasetSpec{
			X:     float64(l),
			Label: fmt.Sprintf("%d", l),
			Make: func() *graph.Dataset {
				return gen.Synthetic(gen.SynthConfig{
					NumGraphs: s.Graphs, MeanNodes: s.Nodes, MeanDensity: s.Density,
					NumLabels: l, Seed: s.Seed + int64(l)*7,
				})
			},
		})
	}
	return s.experiment("fig5", "Figure 5: varying number of distinct labels", "labels", points)
}

// Fig6 varies the number of graphs in the dataset (Figure 6).
func Fig6(s Scale) Experiment {
	var points []DatasetSpec
	for _, g := range s.GraphCountGrid {
		g := g
		points = append(points, DatasetSpec{
			X:     float64(g),
			Label: fmt.Sprintf("%d", g),
			Make: func() *graph.Dataset {
				return gen.Synthetic(gen.SynthConfig{
					NumGraphs: g, MeanNodes: s.Nodes, MeanDensity: s.Density,
					NumLabels: s.Labels, Seed: s.Seed + int64(g)*13,
				})
			},
		})
	}
	return s.experiment("fig6", "Figure 6: varying number of graphs", "graphs", points)
}

// Table1Stats computes the Table 1 dataset characteristics for the scale's
// real-dataset simulators.
func Table1Stats(s Scale) (names []string, stats []graph.Stats) {
	for _, cfg := range s.RealConfigs {
		ds := gen.Realistic(cfg)
		names = append(names, cfg.Name)
		stats = append(stats, ds.ComputeStats())
	}
	return names, stats
}
