package cluster_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/server"
	"repro/internal/testutil/leak"
	"repro/internal/workload"
)

func clusterPostJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp
}

func clusterDecode[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return v
}

// TestClusterLimitEarlyTermination is the cluster leg of the limit
// matrix: on a 2000-graph dataset spread over 3 nodes × 4 shards, the
// coordinator's ?limit=N one-shot and streaming paths must return exactly
// the first N global answers, and the per-node lazy pipeline must verify
// a small fraction of its candidates before the first answer is proven —
// asserted directly against Node.StreamStats counters, since a cancelled
// HTTP leg never reports its tail.
func TestClusterLimitEarlyTermination(t *testing.T) {
	t.Cleanup(leak.Check(t)) // registered before startClusterWith: runs after tc.close
	mkDS := func() *graph.Dataset {
		return gen.Synthetic(gen.SynthConfig{
			NumGraphs: 2000, MeanNodes: 8, MeanDensity: 0.2, NumLabels: 4, Seed: 21,
		})
	}
	ds := mkDS()
	qs, err := workload.Generate(ds, workload.Config{NumQueries: 1, QueryEdges: 2, Seed: 22})
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	q := qs[0]
	ctx := context.Background()
	const shards = 4
	tc := startClusterWith(t, mkDS, "noindex", 3, shards, 2, cluster.CoordConfig{})
	cs := cluster.NewCoordServer(tc.coord, cluster.CoordServerConfig{})
	ts := httptest.NewServer(cs.Handler())
	t.Cleanup(ts.Close)
	gj := toWire(q, ds)

	full := clusterDecode[server.QueryResponse](t, clusterPostJSON(t, ts.URL+"/query", gj))
	if full.Partial {
		t.Fatalf("full query partial: %v", full.FailedShards)
	}
	if len(full.Answers) < 3 {
		t.Fatalf("fixture too narrow: %d answers", len(full.Answers))
	}

	// One-shot limit=1 returns exactly the first global answer.
	lim := clusterDecode[server.QueryResponse](t, clusterPostJSON(t, ts.URL+"/query?limit=1", gj))
	if lim.Limit != 1 || len(lim.Answers) != 1 || lim.Answers[0] != full.Answers[0] {
		t.Fatalf("limit=1 response limit=%d answers=%v, want [%d]", lim.Limit, lim.Answers, full.Answers[0])
	}

	// Streaming limit=3 yields exactly the first three, then the done line.
	resp := clusterPostJSON(t, ts.URL+"/query?stream=1&limit=3", gj)
	defer resp.Body.Close()
	var ids graph.IDSet
	sawDone := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var line server.StreamLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch {
		case line.Error != "":
			t.Fatalf("stream error: %s", line.Error)
		case line.Done:
			sawDone = true
		case line.ID != nil:
			ids = append(ids, *line.ID)
		}
	}
	if !sawDone {
		t.Fatal("limited stream ended without a done line")
	}
	if !idsEqual(ids, full.Answers[:3]) {
		t.Errorf("stream limit=3 ids %v, want %v", ids, full.Answers[:3])
	}

	// The per-node pipeline is lazy: verifications until the first answer
	// must be a small fraction of a full drain of the same shards.
	owned := tc.man.ShardsOf(0)
	var fullStats core.PipelineStats
	for _, err := range tc.nodes[0].StreamStats(ctx, owned, q, -1, &fullStats) {
		if err != nil {
			t.Fatalf("node full stream: %v", err)
		}
	}
	var firstStats core.PipelineStats
	for _, err := range tc.nodes[0].StreamStats(ctx, owned, q, -1, &firstStats) {
		if err != nil {
			t.Fatalf("node first-answer stream: %v", err)
		}
		break
	}
	firstV, fullV := firstStats.Verified.Load(), fullStats.Verified.Load()
	if fullV < 100 {
		t.Fatalf("node full stream verified only %d candidates; fixture not broad enough", fullV)
	}
	if firstV < 1 || 20*firstV >= fullV {
		t.Errorf("first answer verified %d of %d candidates (>= 5%%): node pipeline is not lazy", firstV, fullV)
	}
}
