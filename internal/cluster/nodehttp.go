package cluster

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"io"

	"repro/internal/core"
	"repro/internal/diskfmt"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/server"
)

// NodeServerConfig configures the HTTP layer over a Node.
type NodeServerConfig struct {
	// RequestTimeout bounds each request's engine work (default 30s;
	// negative = unlimited).
	RequestTimeout time.Duration
	// Client performs outbound dump fetches for /node/load (default: a
	// plain client with no overall timeout — the request context bounds it).
	Client *http.Client
	// Registry hosts the node's metrics, served at GET /metrics. Nil
	// creates a private registry.
	Registry *obs.Registry
	// SlowQuery > 0 logs any /node/query slower than it as one structured
	// JSON line (span tree included) on SlowQueryWriter (default stderr).
	SlowQuery       time.Duration
	SlowQueryWriter io.Writer
	// EnablePprof mounts net/http/pprof under GET /debug/pprof/.
	EnablePprof bool
}

// NodeServer is the HTTP face of a shard node: the node protocol
// (/node/query, /node/info, mutations, dump/load) plus the
// liveness/readiness pair cluster membership probes.
type NodeServer struct {
	node     *Node
	cfg      NodeServerConfig
	mux      *http.ServeMux
	draining atomic.Bool

	reqQuery, reqMutate, reqErrors *obs.Counter
	queryDur                       *obs.Family
	slow                           *obs.SlowQueryLog
}

// NewNodeServer wraps a built node.
func NewNodeServer(n *Node, cfg NodeServerConfig) *NodeServer {
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	s := &NodeServer{node: n, cfg: cfg}
	req := cfg.Registry.Counter("sq_node_requests_total", "Node protocol requests by kind.", "kind")
	s.reqQuery = req.Counter("query")
	s.reqMutate = req.Counter("mutate")
	s.reqErrors = req.Counter("errors")
	s.queryDur = cfg.Registry.Histogram("sq_query_duration_seconds",
		"Query latency by method.", obs.DefBuckets, "method")
	s.slow = obs.NewSlowQueryLog(cfg.SlowQuery, cfg.SlowQueryWriter)
	s.slow.SetDropped(cfg.Registry.Counter("sq_slowlog_dropped_total",
		"Slow-query log lines dropped by the byte budget.").Counter())
	obs.RegisterRuntimeMetrics(cfg.Registry)
	obs.RegisterIndexMetrics(cfg.Registry)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /node/info", s.handleInfo)
	mux.HandleFunc("POST /node/query", s.handleQuery)
	mux.HandleFunc("POST /node/graphs", s.handleAdd)
	mux.HandleFunc("DELETE /node/graphs/{id}", s.handleRemove)
	mux.HandleFunc("GET /node/dump", s.handleDump)
	mux.HandleFunc("GET /node/indexfile", s.handleIndexFile)
	mux.HandleFunc("POST /node/load", s.handleLoad)
	mux.HandleFunc("DELETE /node/shards/{shard}", s.handleDropShard)
	mux.Handle("GET /metrics", cfg.Registry.Handler())
	if cfg.EnablePprof {
		server.RegisterPprof(mux)
	}
	s.mux = mux
	return s
}

// Registry returns the node server's metrics registry.
func (s *NodeServer) Registry() *obs.Registry { return s.cfg.Registry }

// Handler returns the node's HTTP handler.
func (s *NodeServer) Handler() http.Handler { return s.mux }

// Node returns the wrapped node, for in-process use and tests.
func (s *NodeServer) Node() *Node { return s.node }

// Drain flips readiness off so the coordinator routes away, while requests
// in flight complete.
func (s *NodeServer) Drain() { s.draining.Store(true) }

func (s *NodeServer) fail(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(server.ErrorResponse{Error: err.Error()})
}

func (s *NodeServer) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// statusFor maps node errors onto the statuses the coordinator's failover
// logic distinguishes: a shard this node does not serve is 404 (stale
// routing — fail over), engine.ErrNoSuchGraph 404, context ends 504.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrNotOwned), errors.Is(err, engine.ErrNoSuchGraph):
		return http.StatusNotFound
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

// handleHealthz is pure liveness: the process is up.
func (s *NodeServer) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, map[string]string{"status": "ok"})
}

// handleReadyz is readiness: 200 only when the node serves traffic. The
// node is constructed before the server, so readiness here means "not
// draining and not warming" — sqnode answers 503 from a bootstrap handler
// while shards are still building, and a node whose shards restored with
// storage=mmap answers 503 here until their first-touch sections have
// materialized.
func (s *NodeServer) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		s.fail(w, http.StatusServiceUnavailable, errors.New("draining"))
		return
	}
	if !s.node.Ready() {
		s.fail(w, http.StatusServiceUnavailable, errors.New("warming"))
		return
	}
	s.writeJSON(w, map[string]string{"status": "ready"})
}

func (s *NodeServer) handleInfo(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, s.node.Info())
}

// parseShards parses the ?shards=1,2,5 selector.
func parseShards(v string) ([]int, error) {
	if v == "" {
		return nil, errors.New("missing shards parameter")
	}
	parts := strings.Split(v, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		k, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad shard %q", p)
		}
		out = append(out, k)
	}
	return out, nil
}

// handleQuery serves POST /node/query?shards=...: body is one GraphJSON;
// ?stream=1 switches to NDJSON global answer ids merged ascending across
// the requested shards, with ?after=N resuming past a failed-over stream's
// frontier.
func (s *NodeServer) handleQuery(w http.ResponseWriter, r *http.Request) {
	s.reqQuery.Inc()
	t0 := time.Now()
	shards, err := parseShards(r.URL.Query().Get("shards"))
	if err != nil {
		s.reqErrors.Inc()
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	var gj server.GraphJSON
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 32<<20)).Decode(&gj); err != nil {
		s.reqErrors.Inc()
		s.fail(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	ctx := r.Context()
	if s.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
	}
	// A trace id on the request links this node's spans into the
	// coordinator's tree: the node runs its own trace under the same id and
	// echoes the subtree in the response. Without a header, a trace is still
	// run when the slow log needs one.
	var tr *obs.Trace
	echo := false
	if id := obs.TraceIDFromHeader(r.Header.Get(obs.TraceHeader)); id != "" {
		tr = obs.NewTraceWithID(id)
		echo = true
	} else if s.slow.Enabled() {
		tr = obs.NewTrace()
	}
	root := tr.StartSpan(nil, "node-query")
	root.Attr("node", s.node.Name())
	root.Attr("shards", shards)
	ctx = obs.ContextWithSpan(ctx, root)
	q, unknown, err := s.node.ResolveQuery(gj)
	if err != nil {
		s.reqErrors.Inc()
		root.Cancel()
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if r.URL.Query().Get("stream") != "" {
		var after graph.ID = -1
		if a := r.URL.Query().Get("after"); a != "" {
			v, err := strconv.ParseInt(a, 10, 32)
			if err != nil {
				s.fail(w, http.StatusBadRequest, fmt.Errorf("bad after %q", a))
				return
			}
			after = graph.ID(v)
		}
		s.streamQuery(ctx, w, shards, q, unknown, after)
		return
	}
	if unknown {
		// No graph on this node carries the label: every requested shard
		// answers empty at its current epoch.
		resp := ShardQueryResponse{Node: s.node.Name()}
		info := s.node.Info()
		epochs := make(map[int]uint64, len(info.Shards))
		owned := make(map[int]bool, len(info.Shards))
		for _, si := range info.Shards {
			epochs[si.Shard] = si.Epoch
			owned[si.Shard] = true
		}
		for _, k := range shards {
			if !owned[k] {
				s.reqErrors.Inc()
				root.Cancel()
				s.fail(w, http.StatusNotFound, fmt.Errorf("%w: shard %d on node %s", ErrNotOwned, k, s.node.Name()))
				return
			}
			resp.Results = append(resp.Results, ShardResult{
				Shard: k, Epoch: epochs[k],
				Candidates: graph.IDSet{}, Answers: graph.IDSet{},
			})
		}
		root.Attr("unknown_label", true)
		root.End()
		if echo {
			resp.Trace = tr.Tree()
			if resp.Trace != nil {
				resp.Trace.Node = s.node.Name()
			}
		}
		s.writeJSON(w, resp)
		return
	}
	results, err := s.node.Query(ctx, shards, q)
	if err != nil {
		s.reqErrors.Inc()
		root.Cancel()
		s.fail(w, statusFor(err), err)
		return
	}
	var candidates, produced, verified, answers int
	var filterUs, verifyUs int64
	for i := range results {
		if results[i].Candidates == nil {
			results[i].Candidates = graph.IDSet{}
		}
		if results[i].Answers == nil {
			results[i].Answers = graph.IDSet{}
		}
		candidates += len(results[i].Candidates)
		answers += len(results[i].Answers)
		produced += results[i].Produced
		verified += results[i].Verified
		filterUs += results[i].FilterUs
		verifyUs += results[i].VerifyUs
	}
	wall := time.Since(t0)
	s.queryDur.Histogram(s.node.Spec()).Observe(wall.Seconds())
	root.Attr("answers", answers)
	root.End()
	resp := ShardQueryResponse{Node: s.node.Name(), Results: results}
	if echo {
		resp.Trace = tr.Tree()
		if resp.Trace != nil {
			resp.Trace.Node = s.node.Name()
		}
	}
	s.slow.Record(wall, obs.SlowQueryRecord{
		Kind: "node-query", Trace: tr.ID(), Method: s.node.Spec(),
		Candidates: candidates, Produced: produced, Verified: verified,
		Answers: answers, FilterUs: filterUs, VerifyUs: verifyUs,
		Extra: map[string]any{"shards": shards}, Spans: tr.Tree(),
	})
	s.writeJSON(w, resp)
}

// streamQuery writes NDJSON answer lines, flushing per line. The node
// streams under epoch-checked chunked locking (no lock held across
// writes), so a client that stops reading no longer blocks mutations; the
// write deadline still bounds how long such a client pins the connection.
// An abort caused by a concurrent mutation is marked Stale on the error
// line, so the coordinator retries the leg on this node instead of
// failing it over. The done line carries the pipeline's produced/verified
// counters for coordinator-side aggregation.
func (s *NodeServer) streamQuery(ctx context.Context, w http.ResponseWriter, shards []int, q *graph.Graph, unknown bool, after graph.ID) {
	if s.cfg.RequestTimeout > 0 {
		rc := http.NewResponseController(w)
		_ = rc.SetWriteDeadline(time.Now().Add(s.cfg.RequestTimeout))
		defer rc.SetWriteDeadline(time.Time{})
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	var stats core.PipelineStats
	n := 0
	if !unknown {
		for id, err := range s.node.StreamStats(ctx, shards, q, after, &stats) {
			if err != nil {
				enc.Encode(server.StreamLine{
					Error: err.Error(),
					Stale: errors.Is(err, engine.ErrStreamStale),
				})
				if fl != nil {
					fl.Flush()
				}
				return
			}
			id := id
			if enc.Encode(server.StreamLine{ID: &id}) != nil {
				return
			}
			if fl != nil {
				fl.Flush()
			}
			n++
		}
	}
	enc.Encode(server.StreamLine{
		Done: true, Matches: n,
		Produced: stats.Produced.Load(), Verified: stats.Verified.Load(),
	})
	if fl != nil {
		fl.Flush()
	}
}

// handleAdd serves POST /node/graphs: a coordinator-routed add.
func (s *NodeServer) handleAdd(w http.ResponseWriter, r *http.Request) {
	s.reqMutate.Inc()
	var req AddRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 32<<20)).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	g, err := s.node.InternGraph(req.Graph)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	ack, err := s.node.Add(r.Context(), req.ID, req.Epoch, g)
	if err != nil {
		s.fail(w, statusFor(err), err)
		return
	}
	s.writeJSON(w, ack)
}

// handleRemove serves DELETE /node/graphs/{id}?epoch=E.
func (s *NodeServer) handleRemove(w http.ResponseWriter, r *http.Request) {
	s.reqMutate.Inc()
	id64, err := strconv.ParseInt(r.PathValue("id"), 10, 32)
	if err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad graph id %q", r.PathValue("id")))
		return
	}
	epoch, err := strconv.ParseUint(r.URL.Query().Get("epoch"), 10, 64)
	if err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad epoch %q", r.URL.Query().Get("epoch")))
		return
	}
	ack, err := s.node.Remove(r.Context(), graph.ID(id64), epoch)
	if err != nil {
		s.fail(w, statusFor(err), err)
		return
	}
	s.writeJSON(w, ack)
}

// handleDump serves GET /node/dump?shard=k: the shard's live graphs as
// NDJSON DumpLines in ascending global-id order, terminated by a Done line
// carrying the shard epoch and max homed id.
func (s *NodeServer) handleDump(w http.ResponseWriter, r *http.Request) {
	k, err := strconv.Atoi(r.URL.Query().Get("shard"))
	if err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad shard %q", r.URL.Query().Get("shard")))
		return
	}
	graphs, epoch, maxID, err := s.node.Dump(k)
	if err != nil {
		s.fail(w, statusFor(err), err)
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	enc := json.NewEncoder(w)
	dict := &s.node.src.Dict
	s.node.mu.RLock()
	defer s.node.mu.RUnlock()
	for _, dg := range graphs {
		gj := server.GraphToJSON(dg.Graph, dict)
		if enc.Encode(DumpLine{ID: dg.ID, Graph: &gj}) != nil {
			return
		}
	}
	enc.Encode(DumpLine{Done: true, Epoch: epoch, MaxID: maxID})
}

// handleIndexFile serves GET /node/indexfile?shard=k: the shard's persisted
// v2 index file, byte for byte. A peer installing the shard fetches it
// alongside the dump so its engine restores the index in O(header) time
// instead of rebuilding; the file's epoch+tag stamp makes the transfer
// self-validating — a receiver whose reassembled sub-dataset mismatches
// falls back to a rebuild. 404 when the node does not persist, does not
// serve the shard, or the file is absent or not in the v2 container format
// (legacy v1 gob files are node-local and never shipped).
func (s *NodeServer) handleIndexFile(w http.ResponseWriter, r *http.Request) {
	k, err := strconv.Atoi(r.URL.Query().Get("shard"))
	if err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad shard %q", r.URL.Query().Get("shard")))
		return
	}
	s.node.mu.RLock()
	_, owned := s.node.shards[k]
	s.node.mu.RUnlock()
	if !owned {
		s.fail(w, http.StatusNotFound, fmt.Errorf("%w: shard %d on node %s", ErrNotOwned, k, s.node.Name()))
		return
	}
	if s.node.cfg.IndexPath == "" {
		s.fail(w, http.StatusNotFound, fmt.Errorf("node %s does not persist indexes", s.node.Name()))
		return
	}
	f, err := os.Open(s.node.shardIndexPath(k))
	if err != nil {
		s.fail(w, http.StatusNotFound, fmt.Errorf("no index file for shard %d", k))
		return
	}
	defer f.Close()
	var magic [8]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil || !diskfmt.IsMagic(magic[:]) {
		s.fail(w, http.StatusNotFound, fmt.Errorf("shard %d index file is not a v2 container", k))
		return
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		s.fail(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	io.Copy(w, f)
}

// fetchIndexFile best-effort copies the dump owner's persisted shard index
// file to this node's own shard index path, so the engine open inside the
// following Install restores it instead of rebuilding. Reports whether the
// full file landed; the atomic rename means any failure leaves no partial
// file behind and the install just rebuilds as before.
func (s *NodeServer) fetchIndexFile(ctx context.Context, from string, k int) bool {
	if s.node.cfg.IndexPath == "" {
		return false
	}
	url := fmt.Sprintf("%s/node/indexfile?shard=%d", strings.TrimSuffix(from, "/"), k)
	httpReq, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return false
	}
	resp, err := s.cfg.Client.Do(httpReq)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false
	}
	return engine.AtomicWriteFile(s.node.shardIndexPath(k), func(w io.Writer) error {
		_, err := io.Copy(w, resp.Body)
		return err
	}) == nil
}

// handleLoad serves POST /node/load: install a shard, either rebuilt from
// the node's local dataset copy (From empty, epoch-0 shards only) or
// streamed from the owner at From.
func (s *NodeServer) handleLoad(w http.ResponseWriter, r *http.Request) {
	var req LoadRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20)).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if req.From == "" {
		if req.Epoch != 0 {
			s.fail(w, http.StatusBadRequest,
				fmt.Errorf("shard %d is at epoch %d; a local rebuild would miss its mutations", req.Shard, req.Epoch))
			return
		}
		if err := s.node.LoadLocal(r.Context(), req.Shard); err != nil {
			s.fail(w, statusFor(err), err)
			return
		}
	} else if err := s.loadFrom(r, req); err != nil {
		s.fail(w, statusFor(err), err)
		return
	}
	info := s.node.Info()
	for _, si := range info.Shards {
		if si.Shard == req.Shard {
			s.writeJSON(w, MutateAck{Node: s.node.Name(), Shard: si.Shard, Epoch: si.Epoch, Graphs: si.Graphs})
			return
		}
	}
	s.fail(w, http.StatusInternalServerError, fmt.Errorf("shard %d missing after load", req.Shard))
}

// loadFrom fetches a shard dump from a peer and installs it.
func (s *NodeServer) loadFrom(r *http.Request, req LoadRequest) error {
	url := fmt.Sprintf("%s/node/dump?shard=%d", strings.TrimSuffix(req.From, "/"), req.Shard)
	httpReq, err := http.NewRequestWithContext(r.Context(), http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := s.cfg.Client.Do(httpReq)
	if err != nil {
		return fmt.Errorf("fetching dump from %s: %w", req.From, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("dump from %s: %s", req.From, resp.Status)
	}
	var graphs []DumpGraph
	var epoch uint64
	maxID := int64(-1)
	done := false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 32<<20)
	for sc.Scan() {
		var line DumpLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return fmt.Errorf("decoding dump line: %w", err)
		}
		if line.Done {
			epoch, maxID, done = line.Epoch, line.MaxID, true
			break
		}
		if line.Graph == nil {
			return errors.New("dump line missing graph")
		}
		g, err := s.node.InternGraph(*line.Graph)
		if err != nil {
			return err
		}
		graphs = append(graphs, DumpGraph{ID: line.ID, Graph: g})
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("reading dump: %w", err)
	}
	if !done {
		return errors.New("dump ended without done marker — source died mid-dump")
	}
	// Ship the owner's v2 index file alongside the dump: the install's
	// engine open restores it byte-for-byte when its epoch+tag stamp
	// matches the reassembled sub-dataset (always for unmutated and
	// add-only shard histories; removals leave tombstones the reassembly
	// does not reproduce, so those validate stale and rebuild — which is
	// exactly what would have happened without the fetch).
	s.fetchIndexFile(r.Context(), req.From, req.Shard)
	return s.node.Install(r.Context(), req.Shard, epoch, maxID, graphs)
}

// handleDropShard serves DELETE /node/shards/{shard}.
func (s *NodeServer) handleDropShard(w http.ResponseWriter, r *http.Request) {
	k, err := strconv.Atoi(r.PathValue("shard"))
	if err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad shard %q", r.PathValue("shard")))
		return
	}
	s.node.Drop(k)
	s.writeJSON(w, map[string]string{"status": "dropped"})
}
