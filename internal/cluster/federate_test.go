package cluster_test

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/obs"
	"repro/internal/testutil/leak"
)

func labelVal(labels []obs.PromLabel, name string) string {
	for _, l := range labels {
		if l.Name == name {
			return l.Value
		}
	}
	return ""
}

// sumByNode folds a family's samples into per-node-label totals (the ""
// key collects unlabeled rows, i.e. the _agg families).
func sumByNode(f *obs.PromFamily) map[string]float64 {
	out := map[string]float64{}
	if f == nil {
		return out
	}
	for _, s := range f.Samples {
		out[labelVal(s.Labels, "node")] += s.Value
	}
	return out
}

// TestFederateThreeNodesOneTimeout is the federation acceptance test: a
// coordinator over three live nodes, one of which answers /metrics slower
// than the scrape timeout. The combined snapshot must carry the two
// responsive nodes' families under their node labels, the coordinator's
// own families under node="coordinator", a sq_federate_node_up 0 row for
// the slow node, a failed count of one — and _agg families whose values
// equal the sum of the per-node rows that did arrive. The slow node must
// cost its own series only, never the scrape.
func TestFederateThreeNodesOneTimeout(t *testing.T) {
	t.Cleanup(leak.Check(t))
	ds := testDataset(t)
	queries := testQueries(t, ds)
	ctx := context.Background()
	tc := startCluster(t, "Grapes:maxPathLen=3", 3, 4, 2, cluster.CoordConfig{})

	for _, q := range queries {
		if _, err := tc.coord.Query(ctx, toWire(q, ds)); err != nil {
			t.Fatalf("query: %v", err)
		}
	}

	const slow = 2
	tc.hooks[slow].metricsDelayMs.Store(5000)

	start := time.Now()
	snap, failed := tc.coord.Federate(ctx, 300*time.Millisecond)
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Errorf("federation took %v despite a 300ms per-leg timeout", elapsed)
	}
	if failed != 1 {
		t.Fatalf("failed = %d, want 1 (only the slow node)", failed)
	}

	reqs := snap.Family("sq_node_requests_total")
	if reqs == nil {
		t.Fatalf("combined snapshot has no sq_node_requests_total family")
	}
	perNode := sumByNode(reqs)
	var liveSum float64
	for i, srv := range tc.servers {
		if i == slow {
			if _, ok := perNode[srv.URL]; ok {
				t.Errorf("slow node %s contributed sq_node_requests_total rows despite timing out", srv.URL)
			}
			continue
		}
		v, ok := perNode[srv.URL]
		if !ok || v <= 0 {
			t.Errorf("no sq_node_requests_total rows labeled node=%q (got %v)", srv.URL, perNode)
		}
		liveSum += v
	}

	// The _agg family is the sum of exactly the per-node rows that arrived.
	agg := sumByNode(snap.Family("sq_node_requests_total_agg"))[""]
	if agg != liveSum {
		t.Errorf("sq_node_requests_total_agg = %v, want the per-node sum %v", agg, liveSum)
	}

	// Coordinator-local families ride along under node="coordinator".
	coordReqs := sumByNode(snap.Family("sq_cluster_requests_total"))
	if coordReqs["coordinator"] <= 0 {
		t.Errorf("no sq_cluster_requests_total rows labeled node=\"coordinator\": %v", coordReqs)
	}

	// Scrape outcome rows: 1 for each responsive node, 0 for the slow one.
	up := snap.Family("sq_federate_node_up")
	if up == nil {
		t.Fatalf("combined snapshot has no sq_federate_node_up family")
	}
	seen := map[string]float64{}
	for _, s := range up.Samples {
		seen[labelVal(s.Labels, "node")] = s.Value
	}
	for i, srv := range tc.servers {
		want := 1.0
		if i == slow {
			want = 0
		}
		if got, ok := seen[srv.URL]; !ok || got != want {
			t.Errorf("sq_federate_node_up{node=%q} = %v (present=%v), want %v", srv.URL, got, ok, want)
		}
	}
	if fc := sumByNode(snap.Family("sq_federate_failed_nodes"))["coordinator"]; fc != 1 {
		t.Errorf("sq_federate_failed_nodes = %v in the scrape's own output, want 1", fc)
	}

	// Same-bound histograms merge bucket-wise: the _agg count equals the
	// total of every instance's count (coordinator + the two live nodes).
	durAgg := snap.Family("sq_query_duration_seconds_agg")
	if durAgg == nil {
		t.Fatalf("no sq_query_duration_seconds_agg family")
	}
	var aggCount, instCount int64
	for _, h := range durAgg.Hists {
		aggCount += h.Count
	}
	for _, h := range snap.Family("sq_query_duration_seconds").Hists {
		instCount += h.Count
	}
	if aggCount == 0 || aggCount != instCount {
		t.Errorf("query-duration _agg count %d, want the per-instance total %d (nonzero)", aggCount, instCount)
	}

	// The combined exposition must itself parse and re-serve cleanly.
	var b strings.Builder
	if err := snap.Write(&b); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if _, err := obs.ParsePromText(strings.NewReader(b.String())); err != nil {
		t.Fatalf("combined exposition does not re-parse: %v", err)
	}
}

// TestHealthScoreFlipsOnNodeKill drives GET /health/score through the
// coordinator's HTTP face: ok with every member up, then — after a node
// dies and a probe notices — degraded with a membership reason naming the
// lost node, while /metrics/cluster keeps answering 200.
func TestHealthScoreFlipsOnNodeKill(t *testing.T) {
	t.Cleanup(leak.Check(t))
	ds := testDataset(t)
	queries := testQueries(t, ds)
	ctx := context.Background()
	tc := startCluster(t, "Grapes:maxPathLen=3", 3, 4, 2, cluster.CoordConfig{})
	cs := cluster.NewCoordServer(tc.coord, cluster.CoordServerConfig{
		ScrapeTimeout: 300 * time.Millisecond,
		SLO:           10 * time.Second,
	})
	srv := httptest.NewServer(cs.Handler())
	defer srv.Close()

	for _, q := range queries {
		if _, err := tc.coord.Query(ctx, toWire(q, ds)); err != nil {
			t.Fatalf("query: %v", err)
		}
	}

	score := func() *obs.HealthReport {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + "/health/score")
		if err != nil {
			t.Fatalf("GET /health/score: %v", err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Fatalf("GET /health/score: %s", resp.Status)
		}
		var rep obs.HealthReport
		if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
			t.Fatalf("decode health report: %v", err)
		}
		return &rep
	}

	if rep := score(); rep.Status != obs.HealthOK {
		t.Fatalf("healthy cluster scored %q, want %q (%+v)", rep.Status, obs.HealthOK, rep.Checks)
	}

	const victim = 1
	tc.kill(victim)
	tc.coord.ProbeOnce(ctx)

	rep := score()
	if rep.Status == obs.HealthOK {
		t.Fatalf("node %d dead but health still %q (%+v)", victim, rep.Status, rep.Checks)
	}
	named := false
	for _, c := range rep.Checks {
		if c.Name == "membership" {
			if c.Status == obs.HealthOK {
				t.Errorf("membership check still ok after node kill: %+v", c)
			}
			if !strings.Contains(c.Reason, "n1") {
				t.Errorf("membership reason %q does not name the dead node n1", c.Reason)
			}
			named = true
		}
	}
	if !named {
		t.Errorf("health report has no membership check: %+v", rep.Checks)
	}

	// The federation scrape must survive the dead member: 200, with a
	// node_up 0 row for it rather than an error.
	resp, err := srv.Client().Get(srv.URL + "/metrics/cluster")
	if err != nil {
		t.Fatalf("GET /metrics/cluster after node kill: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET /metrics/cluster after node kill: %s", resp.Status)
	}
	snap, err := obs.ParsePromText(resp.Body)
	if err != nil {
		t.Fatalf("parse federated scrape: %v", err)
	}
	dead := tc.servers[victim].URL
	for _, s := range snap.Family("sq_federate_node_up").Samples {
		if labelVal(s.Labels, "node") == dead && s.Value != 0 {
			t.Errorf("sq_federate_node_up{node=%q} = %v after kill, want 0", dead, s.Value)
		}
	}
}
