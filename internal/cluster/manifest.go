// Package cluster is the multi-node tier over the sharded engine: a
// coordinator that owns the shard manifest and consistent-hash placement
// fans queries out to shard nodes, each of which serves a subset of the
// logical shards over the HTTP/NDJSON protocol the single-process service
// already speaks.
//
// The placement reuses engine.ShardOf, so a graph lives in the same logical
// shard whether the dataset is partitioned inside one process
// (engine.Sharded) or across machines — a cluster answers every query
// exactly as the single-process sharded engine does. Each logical shard is
// assigned to a primary node plus optional read replicas; the coordinator
// health-checks membership, fails queries over to replicas, hedges slow
// fan-out legs, routes mutations to every owner with cluster-epoch
// propagation, and re-replicates under-replicated shards from surviving
// owners through the node-side shard dump/load path.
package cluster

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// NodeInfo is one node entry of the cluster manifest.
type NodeInfo struct {
	// Name identifies the node; sqnode -name must match it.
	Name string `json:"name"`
	// Addr is the node's base URL, e.g. "http://10.0.0.3:7501".
	Addr string `json:"addr"`
}

// Manifest is the cluster topology the coordinator owns: the logical shard
// count (fixed for the cluster's lifetime — it is the modulus of
// engine.ShardOf), the replication factor, and the member nodes. Placement
// is a pure function of the manifest, so every process that reads the same
// manifest derives the same shard -> node assignment without coordination.
type Manifest struct {
	// Shards is the number of logical shards graphs hash into.
	Shards int `json:"shards"`
	// Replication is the number of owners per shard (1 = no replicas).
	Replication int `json:"replication"`
	// Nodes are the member shard nodes.
	Nodes []NodeInfo `json:"nodes"`
}

// Validate checks the manifest's invariants.
func (m *Manifest) Validate() error {
	if m.Shards < 1 {
		return fmt.Errorf("cluster: manifest shards %d < 1", m.Shards)
	}
	if len(m.Nodes) == 0 {
		return fmt.Errorf("cluster: manifest has no nodes")
	}
	if m.Replication < 1 || m.Replication > len(m.Nodes) {
		return fmt.Errorf("cluster: replication %d outside [1, %d nodes]", m.Replication, len(m.Nodes))
	}
	seen := make(map[string]bool, len(m.Nodes))
	for i, n := range m.Nodes {
		if n.Name == "" {
			return fmt.Errorf("cluster: node %d has no name", i)
		}
		if n.Addr == "" {
			return fmt.Errorf("cluster: node %q has no addr", n.Name)
		}
		if seen[n.Name] {
			return fmt.Errorf("cluster: duplicate node name %q", n.Name)
		}
		seen[n.Name] = true
	}
	return nil
}

// Owners returns the node indexes that own shard s, primary first: the
// round-robin window nodes[(s+r) mod N] for r in [0, Replication). With
// Replication == len(Nodes), every node owns every shard.
func (m *Manifest) Owners(s int) []int {
	owners := make([]int, m.Replication)
	for r := 0; r < m.Replication; r++ {
		owners[r] = (s + r) % len(m.Nodes)
	}
	return owners
}

// ShardsOf returns the logical shards node index i owns under the manifest
// placement, ascending.
func (m *Manifest) ShardsOf(i int) []int {
	var shards []int
	for s := 0; s < m.Shards; s++ {
		for _, o := range m.Owners(s) {
			if o == i {
				shards = append(shards, s)
				break
			}
		}
	}
	return shards
}

// NodeIndex returns the index of the node named name, or -1.
func (m *Manifest) NodeIndex(name string) int {
	for i, n := range m.Nodes {
		if n.Name == name {
			return i
		}
	}
	return -1
}

// LoadManifest reads and validates a manifest JSON file.
func LoadManifest(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("cluster: reading manifest: %w", err)
	}
	return ParseManifest(data)
}

// ParseManifest parses and validates manifest JSON.
func ParseManifest(data []byte) (*Manifest, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var m Manifest
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("cluster: parsing manifest: %w", err)
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// String summarizes the topology for logs.
func (m *Manifest) String() string {
	names := make([]string, len(m.Nodes))
	for i, n := range m.Nodes {
		names[i] = n.Name
	}
	return fmt.Sprintf("cluster{%d shards x%d replicas over %s}", m.Shards, m.Replication, strings.Join(names, " "))
}
