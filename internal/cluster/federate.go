package cluster

import (
	"bytes"
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/obs"
)

// Federation: GET /metrics/cluster turns the coordinator into a single
// scrape target for the whole cluster. Every member's /metrics is fetched
// concurrently under a per-leg timeout; each family comes back twice —
// once per instance, relabeled with node="<addr>" so per-node series stay
// distinct, and once summed into an _agg family (same-bound histograms
// merge bucket-wise). A member that fails to answer in time costs nothing
// but a sq_federate_node_up{node=...} 0 row and a bump of the
// sq_federate_failed_nodes gauge — a dead node never fails the scrape.

// DefScrapeTimeout bounds each federation scrape leg.
const DefScrapeTimeout = 3 * time.Second

// scrapeTarget is one member the federation endpoint scrapes.
type scrapeTarget struct {
	name   string
	addr   string
	client *NodeClient
}

// scrapeTargets snapshots the membership for a federation pass.
func (c *Coordinator) scrapeTargets() []scrapeTarget {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]scrapeTarget, len(c.nodes))
	for i, ns := range c.nodes {
		out[i] = scrapeTarget{name: ns.info.Name, addr: ns.info.Addr, client: ns.client}
	}
	return out
}

// Federate scrapes every member's /metrics concurrently (each leg bounded
// by timeout) and returns the combined snapshot: per-node relabeled
// families, coordinator-local families under node="coordinator", synthetic
// sq_federate_node_up rows, and summed _agg families. The second return is
// how many members failed to answer.
func (c *Coordinator) Federate(ctx context.Context, timeout time.Duration) (*obs.PromSnapshot, int) {
	if timeout <= 0 {
		timeout = DefScrapeTimeout
	}
	targets := c.scrapeTargets()
	snaps := make([]*obs.PromSnapshot, len(targets))
	errs := make([]error, len(targets))
	var wg sync.WaitGroup
	for i, t := range targets {
		wg.Add(1)
		go func(i int, t scrapeTarget) {
			defer wg.Done()
			lctx, cancel := context.WithTimeout(ctx, timeout)
			defer cancel()
			body, err := t.client.Metrics(lctx)
			if err != nil {
				errs[i] = err
				return
			}
			snaps[i], errs[i] = obs.ParsePromText(bytes.NewReader(body))
		}(i, t)
	}
	wg.Wait()

	failed := 0
	for i := range targets {
		if errs[i] != nil {
			failed++
			c.cfg.Logf("cluster: federation scrape of %s (%s) failed: %v", targets[i].name, targets[i].addr, errs[i])
		}
	}
	// The failure gauge is set before the self snapshot so the value this
	// very scrape observed is part of its own output.
	c.fedFailed.Set(int64(failed))

	var buf bytes.Buffer
	agg := obs.NewPromSnapshot()
	combined := obs.NewPromSnapshot()
	if err := c.cfg.Registry.WritePrometheus(&buf); err == nil {
		if self, err := obs.ParsePromText(bytes.NewReader(buf.Bytes())); err == nil {
			agg.Merge(self)
			combined.Extend(self.Relabel("node", "coordinator"))
		}
	}
	for i, t := range targets {
		up := 1.0
		if errs[i] != nil {
			up = 0
		}
		combined.AddSample("sq_federate_node_up", "Whether the last federation scrape of this node succeeded.",
			obs.KindGauge, []obs.PromLabel{{Name: "node", Value: t.addr}, {Name: "name", Value: t.name}}, up)
		if snaps[i] == nil {
			continue
		}
		agg.Merge(snaps[i])
		combined.Extend(snaps[i].Relabel("node", t.addr))
	}
	combined.Extend(agg.WithSuffix("_agg"))
	return combined, failed
}

// ClusterHealth is the membership view /health/score folds into its
// verdict.
type ClusterHealth struct {
	Nodes       int
	Down        []string // "name (addr)" per down member
	StaleShards []int    // shards some owner serves at an old epoch
	Ownerless   []int    // shards with no reachable fresh owner right now
}

// Health snapshots membership for the health scorer.
func (c *Coordinator) Health() ClusterHealth {
	c.mu.RLock()
	defer c.mu.RUnlock()
	h := ClusterHealth{Nodes: len(c.nodes)}
	stale := make(map[int]bool)
	for _, ns := range c.nodes {
		if !ns.up {
			h.Down = append(h.Down, fmt.Sprintf("%s (%s)", ns.info.Name, ns.info.Addr))
		}
		for s := range ns.stale {
			stale[s] = true
		}
	}
	for s := 0; s < c.man.Shards; s++ {
		if stale[s] {
			h.StaleShards = append(h.StaleShards, s)
		}
		if len(c.eligible(s)) == 0 {
			h.Ownerless = append(h.Ownerless, s)
		}
	}
	sort.Strings(h.Down)
	return h
}

// refreshNodeGauges updates the per-node membership gauges; it runs as a
// collect hook so every /metrics (and federation) scrape sees the current
// membership without a background sampler.
func (c *Coordinator) refreshNodeGauges() {
	c.mu.RLock()
	defer c.mu.RUnlock()
	owned := make([]int64, len(c.nodes))
	for s := 0; s < c.man.Shards; s++ {
		for _, o := range c.owners(s) {
			owned[o]++
		}
	}
	for i, ns := range c.nodes {
		up := int64(0)
		if ns.up {
			up = 1
		}
		c.nodeUp.Gauge(ns.info.Addr, ns.info.Name).Set(up)
		c.nodeStale.Gauge(ns.info.Addr, ns.info.Name).Set(int64(len(ns.stale)))
		c.nodeShards.Gauge(ns.info.Addr, ns.info.Name).Set(owned[i])
	}
}
