package cluster

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"runtime"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/server"
)

// ErrNotOwned is returned when a request addresses a shard the node does
// not currently serve; the coordinator treats it as a failed leg and fails
// over to another owner.
var ErrNotOwned = errors.New("cluster: shard not served by this node")

// NodeConfig configures a shard node.
type NodeConfig struct {
	// Name is the node's identity; it must match a manifest entry.
	Name string
	// Spec is the concrete method spec every shard index is built with.
	// Composite specs (the router) are rejected — routing composes above
	// the cluster, not inside a node.
	Spec string
	// ShardCount is the cluster's logical shard count (the ShardOf
	// modulus); it must agree across all nodes and the coordinator.
	ShardCount int
	// Shards are the logical shards this node initially serves.
	Shards []int
	// IndexPath is the persistence base ("" = none): shard k persists at
	// "<IndexPath>.node-shard-<k>" with the engine's epoch+tag header, so a
	// restart restores unmutated shards instead of rebuilding.
	IndexPath string
	// VerifyWorkers is the node's total verification budget, divided
	// across its shards (0 = GOMAXPROCS).
	VerifyWorkers int
}

// nodeShard is one logical shard a node serves: the engine over its
// re-homed sub-dataset plus the local<->global id mappings. global is
// ascending — the initial partition re-homes in parent order and the
// coordinator assigns fresh ids monotonically and serializes mutations — so
// a shard's local-order stream maps to an ascending global-id stream.
type nodeShard struct {
	eng    *engine.Engine
	global []graph.ID
	g2l    map[graph.ID]graph.ID
	// epoch is the cluster epoch of the last mutation applied to the
	// shard; 0 since build. Guarded by Node.mu.
	epoch uint64
	// maxID is the largest global id ever homed to the shard, dead or
	// alive; -1 when none. Fresh-id allocation state for the coordinator.
	maxID int64
}

func (sh *nodeShard) toGlobal(local graph.IDSet) graph.IDSet {
	out := make(graph.IDSet, len(local))
	for i, id := range local {
		out[i] = sh.global[id]
	}
	return out
}

// Node is one cluster member: a set of logical shards, each an independent
// engine over the shard's re-homed sub-dataset (built by the same
// engine.PartitionShard the in-process sharded engine partitions with), a
// shared label dictionary, and the mutation/dump/load surface the
// coordinator drives. All methods are safe for concurrent use: queries take
// the read side, mutations and shard installs the write side.
type Node struct {
	mu     sync.RWMutex
	cfg    NodeConfig
	spec   string // canonical
	src    *graph.Dataset
	shards map[int]*nodeShard
}

// NewNode builds (or restores) the node's initial shards from its local
// copy of the dataset.
func NewNode(ctx context.Context, src *graph.Dataset, cfg NodeConfig) (*Node, error) {
	if src == nil {
		return nil, errors.New("cluster: nil dataset")
	}
	if cfg.ShardCount < 1 {
		return nil, fmt.Errorf("cluster: shard count %d < 1", cfg.ShardCount)
	}
	if cfg.Spec == "" {
		cfg.Spec = "grapes"
	}
	if cfg.VerifyWorkers <= 0 {
		cfg.VerifyWorkers = runtime.GOMAXPROCS(0)
	}
	d, p, err := engine.ParseSpec(cfg.Spec)
	if err != nil {
		return nil, err
	}
	if d.OpenQuerier != nil {
		return nil, fmt.Errorf("cluster: node requires a concrete indexing method, not composite %q", d.Name)
	}
	n := &Node{cfg: cfg, spec: p.Spec(), src: src, shards: make(map[int]*nodeShard, len(cfg.Shards))}
	seen := make(map[int]bool, len(cfg.Shards))
	for _, k := range cfg.Shards {
		if k < 0 || k >= cfg.ShardCount {
			return nil, fmt.Errorf("cluster: shard %d outside [0, %d)", k, cfg.ShardCount)
		}
		if seen[k] {
			return nil, fmt.Errorf("cluster: duplicate shard %d", k)
		}
		seen[k] = true
		sh, err := n.buildLocal(ctx, k)
		if err != nil {
			return nil, err
		}
		n.shards[k] = sh
	}
	return n, nil
}

// shardIndexPath is shard k's persistence path under the node's base.
func (n *Node) shardIndexPath(k int) string {
	return fmt.Sprintf("%s.node-shard-%d", n.cfg.IndexPath, k)
}

// perShardWorkers divides the node's verification budget across the shards
// it serves, mirroring the in-process sharded engine.
func (n *Node) perShardWorkers() int {
	shards := len(n.cfg.Shards)
	if shards == 0 {
		shards = 1
	}
	w := n.cfg.VerifyWorkers / shards
	if w < 1 {
		w = 1
	}
	return w
}

// buildLocal partitions shard k out of the node's local dataset copy and
// builds (or, with persistence, restores) its engine.
func (n *Node) buildLocal(ctx context.Context, k int) (*nodeShard, error) {
	sub, global := engine.PartitionShard(n.src, n.cfg.ShardCount, k)
	return n.openShard(ctx, k, sub, global)
}

// openShard opens the engine over an assembled sub-dataset.
func (n *Node) openShard(ctx context.Context, k int, sub *graph.Dataset, global []graph.ID) (*nodeShard, error) {
	opts := []engine.Option{
		engine.WithSpec(n.cfg.Spec),
		engine.WithVerifyWorkers(n.perShardWorkers()),
	}
	if n.cfg.IndexPath != "" {
		opts = append(opts, engine.WithIndexPath(n.shardIndexPath(k)))
	}
	eng, err := engine.Open(ctx, sub, opts...)
	if err != nil {
		return nil, fmt.Errorf("cluster: opening shard %d: %w", k, err)
	}
	sh := &nodeShard{eng: eng, global: global, g2l: make(map[graph.ID]graph.ID, len(global)), maxID: -1}
	for local, gid := range global {
		sh.g2l[gid] = graph.ID(local)
		if int64(gid) > sh.maxID {
			sh.maxID = int64(gid)
		}
	}
	return sh, nil
}

// Name returns the node's identity.
func (n *Node) Name() string { return n.cfg.Name }

// Ready reports whether every shard the node serves is ready: a shard
// restored with storage=mmap is not ready while its index is still
// materializing first-touch sections in the background. /readyz reports
// 503 until this turns true, so the coordinator keeps routing to warmed
// replicas.
func (n *Node) Ready() bool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	for _, sh := range n.shards {
		if !sh.eng.Ready() {
			return false
		}
	}
	return true
}

// Spec returns the canonical method spec the node indexes with.
func (n *Node) Spec() string { return n.spec }

// ResolveQuery resolves a wire graph into a query against the node's label
// space. unknown reports a label no graph on this node carries — the
// query's answer over this node's shards is then empty with no engine work.
func (n *Node) ResolveQuery(gj server.GraphJSON) (q *graph.Graph, unknown bool, err error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return server.ToGraph(gj, &n.src.Dict)
}

// InternGraph converts a wire graph for insertion, interning labels the
// node has never seen — a routed add may grow the label universe.
func (n *Node) InternGraph(gj server.GraphJSON) (*graph.Graph, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return server.InternGraph(gj, &n.src.Dict)
}

// Shards returns the logical shards the node currently serves, ascending.
func (n *Node) Shards() []int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]int, 0, len(n.shards))
	for k := range n.shards {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// Info reports the node's identity and per-shard serving state.
func (n *Node) Info() InfoResponse {
	n.mu.RLock()
	defer n.mu.RUnlock()
	info := InfoResponse{
		Name:        n.cfg.Name,
		Spec:        n.spec,
		ShardCount:  n.cfg.ShardCount,
		MaxGlobalID: -1,
	}
	keys := make([]int, 0, len(n.shards))
	for k := range n.shards {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		sh := n.shards[k]
		info.Shards = append(info.Shards, ShardInfo{
			Shard:      k,
			Graphs:     sh.eng.Dataset().NumAlive(),
			Epoch:      sh.epoch,
			IndexBytes: sh.eng.Method().SizeBytes(),
		})
		if sh.maxID > info.MaxGlobalID {
			info.MaxGlobalID = sh.maxID
		}
	}
	return info
}

// Query fans one query across the requested shards (concurrently, bounded
// by GOMAXPROCS) and returns per-shard results in global ids. A requested
// shard the node does not serve fails the whole call with ErrNotOwned —
// the coordinator's routing table was stale and it must fail over.
func (n *Node) Query(ctx context.Context, shards []int, q *graph.Graph) ([]ShardResult, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	for _, k := range shards {
		if _, ok := n.shards[k]; !ok {
			return nil, fmt.Errorf("%w: shard %d on node %s", ErrNotOwned, k, n.cfg.Name)
		}
	}
	results := make([]ShardResult, len(shards))
	err := engine.ForEachBounded(ctx, len(shards), runtime.GOMAXPROCS(0), func(ctx context.Context, i int) error {
		sh := n.shards[shards[i]]
		sctx, ssp := obs.StartSpan(ctx, fmt.Sprintf("shard-%d", shards[i]))
		r, err := sh.eng.Query(sctx, q)
		if err != nil {
			ssp.Cancel()
			return err
		}
		ssp.Attr("answers", len(r.Answers))
		ssp.End()
		results[i] = ShardResult{
			Shard:      shards[i],
			Epoch:      sh.epoch,
			Candidates: sh.toGlobal(r.Candidates),
			Answers:    sh.toGlobal(r.Answers),
			FilterUs:   r.FilterTime.Microseconds(),
			VerifyUs:   r.VerifyTime.Microseconds(),
			Produced:   r.Produced,
			Verified:   r.Verified,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// nodeStreamQuantum caps the merge steps (verifications) per lock hold in
// a node stream; the quantum starts at 1 and doubles per chunk, mirroring
// the engine's chunked-locking streams.
const nodeStreamQuantum = 64

// Stream yields matching global graph ids across the requested shards in
// ascending order, verifying lazily — the node-local half of the cluster's
// streamed k-way merge. Ids <= after are skipped before verification, so a
// coordinator resuming a failed-over stream pays no duplicate verify work.
// A filtering failure or context cancellation is yielded once as a non-nil
// error, then the sequence ends.
//
// The node's read lock is NOT held across yields: the merge runs a growing
// quantum of verifications per lock hold and releases the lock before
// every yield, so a slow downstream consumer never stalls mutations or
// shard installs. A mutation (or shard replacement) landing mid-stream
// aborts it with an engine.ErrStreamStale-wrapped error; the coordinator
// retries the leg, resumed after its frontier.
func (n *Node) Stream(ctx context.Context, shards []int, q *graph.Graph, after graph.ID) iter.Seq2[graph.ID, error] {
	return n.StreamStats(ctx, shards, q, after, nil)
}

// StreamStats is Stream with pipeline counters accumulated into stats
// (nil = no accounting): candidates produced and live across the shard
// cursors, plus verifier invocations.
func (n *Node) StreamStats(ctx context.Context, shards []int, q *graph.Graph, after graph.ID, stats *core.PipelineStats) iter.Seq2[graph.ID, error] {
	return func(yield func(graph.ID, error) bool) {
		if stats == nil {
			stats = &core.PipelineStats{}
		}
		n.mu.RLock()
		locked := true
		unlock := func() {
			if locked {
				n.mu.RUnlock()
				locked = false
			}
		}
		defer unlock()

		// leg is one shard's lazy candidate stream: the plan, the cursor
		// pulling its live candidates, and the head in local and global ids.
		// The shard pointer and its dataset epoch pin the index generation
		// the plan was built against — either moving aborts the stream.
		type leg struct {
			key    int
			sh     *nodeShard
			epoch  uint64
			plan   core.QueryPlan
			cur    *core.Cursor
			local  graph.ID
			global graph.ID
			done   bool
		}
		advance := func(l *leg) {
			id, ok := l.cur.Next()
			if !ok {
				l.done = true
				return
			}
			l.local, l.global = id, l.sh.global[id]
		}
		legs := make([]*leg, 0, len(shards))
		defer func() {
			for _, l := range legs {
				l.cur.Stop()
			}
		}()
		for _, k := range shards {
			sh, ok := n.shards[k]
			if !ok {
				unlock()
				yield(0, fmt.Errorf("%w: shard %d on node %s", ErrNotOwned, k, n.cfg.Name))
				return
			}
			plan, err := core.NewPlan(ctx, sh.eng.Method(), sh.eng.Dataset(), q)
			if err != nil {
				unlock()
				yield(0, err)
				return
			}
			// Resume strictly after the frontier before any verification:
			// global ids ascend with local ids, so the cutoff is the first
			// local id whose global id exceeds it.
			skip := graph.ID(sort.Search(len(sh.global), func(i int) bool { return sh.global[i] > after }))
			l := &leg{
				key: k, sh: sh, epoch: sh.eng.Dataset().Epoch(), plan: plan,
				cur: core.NewCursor(sh.eng.Dataset(), plan, core.StreamOptions{Stats: stats, SkipTo: skip}),
			}
			advance(l)
			legs = append(legs, l)
		}

		quantum := 1
		out := make(graph.IDSet, 0, nodeStreamQuantum)
		for {
			// Under the lock: up to quantum merge steps (verifications, not
			// matches — the hold must stay bounded even when nothing
			// matches), verifying the globally smallest head each time.
			out = out[:0]
			done := false
			var verr error
			for step := 0; step < quantum; step++ {
				var best *leg
				for _, l := range legs {
					if l.done {
						continue
					}
					if best == nil || l.global < best.global {
						best = l
					}
				}
				if best == nil {
					done = true
					break
				}
				if verr = ctx.Err(); verr != nil {
					break
				}
				stats.Verified.Add(1)
				matched := best.plan.Verify(best.local)
				id := best.global
				advance(best)
				if matched {
					out = append(out, id)
				}
			}
			unlock()
			for _, id := range out {
				if !yield(id, nil) {
					return
				}
			}
			if verr != nil {
				yield(0, verr)
				return
			}
			if done {
				return
			}
			if quantum < nodeStreamQuantum {
				quantum *= 2
			}
			n.mu.RLock()
			locked = true
			for _, l := range legs {
				if cur, ok := n.shards[l.key]; !ok || cur != l.sh || cur.eng.Dataset().Epoch() != l.epoch {
					unlock()
					yield(0, fmt.Errorf("cluster: %w (shard %d)", engine.ErrStreamStale, l.key))
					return
				}
			}
		}
	}
}

// Add applies a coordinator-routed add: the graph joins shard
// ShardOf(id, ShardCount) under the coordinator-assigned global id and the
// shard index is maintained online. Re-delivery of an already-applied id
// acks success without re-indexing, so coordinator retries are safe.
func (n *Node) Add(ctx context.Context, id graph.ID, epoch uint64, g *graph.Graph) (MutateAck, error) {
	k := engine.ShardOf(id, n.cfg.ShardCount)
	n.mu.Lock()
	defer n.mu.Unlock()
	sh, ok := n.shards[k]
	if !ok {
		return MutateAck{}, fmt.Errorf("%w: shard %d on node %s", ErrNotOwned, k, n.cfg.Name)
	}
	if _, applied := sh.g2l[id]; !applied {
		local, err := sh.eng.AddGraph(ctx, g)
		if err != nil {
			return MutateAck{}, err
		}
		if int(local) != len(sh.global) {
			// AddGraph assigns dense local ids, so this cannot drift; guard
			// the mapping invariant the stream merge depends on anyway.
			return MutateAck{}, fmt.Errorf("cluster: shard %d local id %d != mapping length %d", k, local, len(sh.global))
		}
		sh.global = append(sh.global, id)
		sh.g2l[id] = local
		if int64(id) > sh.maxID {
			sh.maxID = int64(id)
		}
	}
	if epoch > sh.epoch {
		sh.epoch = epoch
	}
	return MutateAck{Node: n.cfg.Name, Shard: k, Epoch: sh.epoch, Graphs: sh.eng.Dataset().NumAlive()}, nil
}

// Remove applies a coordinator-routed removal: the graph is tombstoned in
// its shard and the shard index drops its postings. Removing an id the
// node has already tombstoned acks success (idempotent retry); removing an
// id never homed here returns engine.ErrNoSuchGraph.
func (n *Node) Remove(ctx context.Context, id graph.ID, epoch uint64) (MutateAck, error) {
	k := engine.ShardOf(id, n.cfg.ShardCount)
	n.mu.Lock()
	defer n.mu.Unlock()
	sh, ok := n.shards[k]
	if !ok {
		return MutateAck{}, fmt.Errorf("%w: shard %d on node %s", ErrNotOwned, k, n.cfg.Name)
	}
	local, known := sh.g2l[id]
	if !known {
		return MutateAck{}, fmt.Errorf("cluster: removing graph %d: %w", id, engine.ErrNoSuchGraph)
	}
	if sh.eng.Dataset().Alive(local) {
		if err := sh.eng.RemoveGraph(ctx, local); err != nil {
			return MutateAck{}, err
		}
	}
	if epoch > sh.epoch {
		sh.epoch = epoch
	}
	return MutateAck{Node: n.cfg.Name, Shard: k, Epoch: sh.epoch, Graphs: sh.eng.Dataset().NumAlive()}, nil
}

// DumpGraph is one live graph of a shard dump, in ascending global-id order.
type DumpGraph struct {
	ID    graph.ID
	Graph *graph.Graph
}

// Dump snapshots shard k for re-replication: its live graphs in ascending
// global-id order, the shard's epoch, and the largest id ever homed to it.
// The returned graphs are shared references — they are immutable once in a
// dataset.
func (n *Node) Dump(k int) ([]DumpGraph, uint64, int64, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	sh, ok := n.shards[k]
	if !ok {
		return nil, 0, 0, fmt.Errorf("%w: shard %d on node %s", ErrNotOwned, k, n.cfg.Name)
	}
	sub := sh.eng.Dataset()
	out := make([]DumpGraph, 0, sub.NumAlive())
	for local, gid := range sh.global {
		if g := sub.Graph(graph.ID(local)); g != nil {
			out = append(out, DumpGraph{ID: gid, Graph: g})
		}
	}
	return out, sh.epoch, sh.maxID, nil
}

// Install builds shard k from dumped graphs (ascending global ids) and
// installs it at the given epoch, replacing any prior instance — the
// re-replication path. The build runs outside the node's lock; the swap is
// atomic under it.
func (n *Node) Install(ctx context.Context, k int, epoch uint64, maxID int64, graphs []DumpGraph) error {
	if k < 0 || k >= n.cfg.ShardCount {
		return fmt.Errorf("cluster: shard %d outside [0, %d)", k, n.cfg.ShardCount)
	}
	sub := graph.NewDataset(fmt.Sprintf("%s/shard-%d", n.src.Name, k))
	sub.Dict = n.src.Dict
	global := make([]graph.ID, 0, len(graphs))
	var prev graph.ID = -1
	for _, dg := range graphs {
		if dg.ID <= prev {
			return fmt.Errorf("cluster: shard %d dump not ascending (%d after %d)", k, dg.ID, prev)
		}
		if engine.ShardOf(dg.ID, n.cfg.ShardCount) != k {
			return fmt.Errorf("cluster: graph %d does not hash to shard %d", dg.ID, k)
		}
		prev = dg.ID
		global = append(global, dg.ID)
		sub.Add(dg.Graph.ShallowWithID(0))
	}
	sh, err := n.openShard(ctx, k, sub, global)
	if err != nil {
		return err
	}
	sh.epoch = epoch
	if maxID > sh.maxID {
		sh.maxID = maxID
	}
	n.mu.Lock()
	n.shards[k] = sh
	n.mu.Unlock()
	return nil
}

// LoadLocal builds shard k from the node's local dataset copy and serves
// it — valid only for shards at epoch 0 (no mutations to miss). The
// coordinator uses it to re-replicate a never-mutated shard without
// streaming a dump.
func (n *Node) LoadLocal(ctx context.Context, k int) error {
	if k < 0 || k >= n.cfg.ShardCount {
		return fmt.Errorf("cluster: shard %d outside [0, %d)", k, n.cfg.ShardCount)
	}
	sh, err := n.buildLocal(ctx, k)
	if err != nil {
		return err
	}
	n.mu.Lock()
	n.shards[k] = sh
	n.mu.Unlock()
	return nil
}

// Drop stops serving shard k, releasing its index.
func (n *Node) Drop(k int) {
	n.mu.Lock()
	delete(n.shards, k)
	n.mu.Unlock()
}
