package cluster

import (
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/server"
)

// Node-protocol wire types. The node side of the cluster speaks an
// extension of the public serving protocol: graphs travel as
// server.GraphJSON (label strings, resolved against each node's own
// dictionary) and streams as server.StreamLine NDJSON, so the node endpoints
// are the existing protocol plus shard addressing and epoch propagation.

// InfoResponse is GET /node/info: the node's identity and what it serves.
// The coordinator uses it at startup to seed its id allocator and per-shard
// epochs, and at rejoin to detect stale shards.
type InfoResponse struct {
	Name       string      `json:"name"`
	Spec       string      `json:"spec"`
	ShardCount int         `json:"shard_count"`
	Shards     []ShardInfo `json:"shards"`
	// MaxGlobalID is the largest parent-dataset id the node holds, -1 when
	// it holds none. The coordinator allocates fresh ids above the cluster
	// maximum.
	MaxGlobalID int64 `json:"max_global_id"`
}

// ShardInfo describes one shard a node serves.
type ShardInfo struct {
	Shard int `json:"shard"`
	// Graphs is the live graph count of the shard.
	Graphs int `json:"graphs"`
	// Epoch is the cluster epoch of the last mutation applied to the shard
	// on this node; 0 when the shard is unmutated since its build.
	Epoch uint64 `json:"epoch"`
	// IndexBytes is the shard index's in-memory size.
	IndexBytes int64 `json:"index_bytes"`
}

// ShardQueryResponse is POST /node/query?shards=...: per-shard results in
// parent-dataset (global) ids.
type ShardQueryResponse struct {
	Node    string        `json:"node"`
	Results []ShardResult `json:"results"`
	// Trace is the node-side span tree, echoed when the request carried an
	// X-SQ-Trace header; the coordinator grafts it under its leg span so
	// one tree covers both processes.
	Trace *obs.SpanTree `json:"trace,omitempty"`
}

// ShardResult is one shard's answer to a fan-out query. Epoch lets the
// coordinator reject a stale replica: a node that missed a mutation to the
// shard reports an older epoch than the coordinator requires and the
// coordinator fails the leg over to a fresh owner.
type ShardResult struct {
	Shard      int         `json:"shard"`
	Epoch      uint64      `json:"epoch"`
	Candidates graph.IDSet `json:"candidates"`
	Answers    graph.IDSet `json:"answers"`
	FilterUs   int64       `json:"filter_us"`
	VerifyUs   int64       `json:"verify_us"`
	// Produced/Verified are the shard pipeline's candidate counters, summed
	// by the coordinator so a merged cluster response reports its pipeline
	// work like a single-process one.
	Produced int `json:"produced,omitempty"`
	Verified int `json:"verified,omitempty"`
}

// AddRequest is POST /node/graphs: an add routed by the coordinator, which
// owns id assignment and the cluster epoch. Nodes apply it idempotently —
// re-delivery of an already-applied id acks success without re-indexing.
type AddRequest struct {
	ID    graph.ID         `json:"id"`
	Epoch uint64           `json:"epoch"`
	Graph server.GraphJSON `json:"graph"`
}

// MutateAck is the response to a routed mutation.
type MutateAck struct {
	Node  string `json:"node"`
	Shard int    `json:"shard"`
	// Epoch is the shard's epoch after applying the mutation.
	Epoch uint64 `json:"epoch"`
	// Graphs is the shard's live graph count after the mutation.
	Graphs int `json:"graphs"`
}

// LoadRequest is POST /node/load: install (or replace) a shard on the node.
// With From == "", the node rebuilds the shard from its local dataset file —
// valid only while the shard is unmutated (Epoch 0). Otherwise the node
// fetches the shard's graphs from the owner at From via GET
// /node/dump?shard=k, so post-start mutations survive re-replication.
type LoadRequest struct {
	Shard int    `json:"shard"`
	Epoch uint64 `json:"epoch"`
	From  string `json:"from,omitempty"`
}

// DumpLine is one NDJSON line of GET /node/dump?shard=k: a live graph with
// its global id, in ascending id order; the terminal line carries Done plus
// the shard's epoch and the largest id ever homed to the shard (dead or
// alive), so the receiver reconstructs id-allocation state exactly.
type DumpLine struct {
	ID    graph.ID          `json:"id,omitempty"`
	Graph *server.GraphJSON `json:"graph,omitempty"`
	Done  bool              `json:"done,omitempty"`
	Epoch uint64            `json:"epoch,omitempty"`
	MaxID int64             `json:"max_id,omitempty"`
}

// ClusterStats is GET /stats on the coordinator.
type ClusterStats struct {
	UptimeSeconds float64         `json:"uptime_seconds"`
	Spec          string          `json:"method"`
	Shards        int             `json:"shards"`
	Replication   int             `json:"replication"`
	Epoch         uint64          `json:"epoch"`
	Graphs        int             `json:"graphs"`
	Nodes         []NodeStatus    `json:"nodes"`
	Requests      ClusterRequests `json:"requests"`
	Fanout        FanoutStats     `json:"fanout"`
}

// NodeStatus is one node's health row in /stats and /cluster.
type NodeStatus struct {
	Name   string `json:"name"`
	Addr   string `json:"addr"`
	Up     bool   `json:"up"`
	Shards []int  `json:"shards"`
	// Stale lists shards the node owns under the placement but currently
	// serves at an older epoch than the coordinator requires (it missed a
	// mutation while down); they are excluded from fan-out until
	// re-replication refreshes them.
	Stale []int `json:"stale,omitempty"`
}

// ClusterRequests counts coordinator requests by kind.
type ClusterRequests struct {
	Query  int64 `json:"query"`
	Stream int64 `json:"stream"`
	Batch  int64 `json:"batch"`
	Mutate int64 `json:"mutate"`
	Errors int64 `json:"errors"`
}

// FanoutStats counts fan-out mechanics: partial responses served, per-leg
// failovers, hedges fired and won, and shards re-replicated.
type FanoutStats struct {
	Partials      int64 `json:"partials"`
	Failovers     int64 `json:"failovers"`
	HedgesFired   int64 `json:"hedges_fired"`
	HedgesWon     int64 `json:"hedges_won"`
	Rereplicated  int64 `json:"rereplicated"`
	StaleRejected int64 `json:"stale_rejected"`
	// StaleRetries counts streaming legs retried on the same node after a
	// concurrent mutation aborted their chunked-locking stream.
	StaleRetries int64 `json:"stale_retries,omitempty"`
	// Rollbacks counts shards adopted at an older epoch because no fresh
	// owner survived — the bounded data loss of an under-replicated
	// cluster, counted rather than silent.
	Rollbacks int64 `json:"rollbacks,omitempty"`
}
