package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"io"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/server"
)

// CoordServerConfig configures the coordinator's public HTTP face.
type CoordServerConfig struct {
	// RequestTimeout bounds each public request (default 30s; negative =
	// unlimited).
	RequestTimeout time.Duration
	// SlowQuery > 0 logs any /query slower than it as one structured JSON
	// line (span tree included) on SlowQueryWriter (default stderr).
	SlowQuery       time.Duration
	SlowQueryWriter io.Writer
	// EnablePprof mounts net/http/pprof under GET /debug/pprof/.
	EnablePprof bool
	// ScrapeTimeout bounds each per-node leg of a GET /metrics/cluster
	// federation scrape (default 3s).
	ScrapeTimeout time.Duration
	// SLO is the p99 latency target GET /health/score compares against;
	// non-positive disables the latency check.
	SLO time.Duration
}

// CoordServer serves the coordinator over the same public protocol as the
// single-process sqserve — POST /query (streaming included), /batch,
// /graphs, DELETE /graphs/{id}, /stats — so gquery -remote talks to a
// cluster without knowing it is one. /cluster adds the topology view.
type CoordServer struct {
	coord    *Coordinator
	cfg      CoordServerConfig
	mux      *http.ServeMux
	draining atomic.Bool

	queryDur *obs.Family
	slow     *obs.SlowQueryLog

	// Sliding windows behind GET /health/score: each request samples the
	// lifetime counters and reads rates over whatever the window holds.
	reqWin, errWin *obs.RateWindow
	latWin         *obs.HistWindow
}

// NewCoordServer wraps a coordinator.
func NewCoordServer(c *Coordinator, cfg CoordServerConfig) *CoordServer {
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	s := &CoordServer{
		coord:  c,
		cfg:    cfg,
		reqWin: obs.NewRateWindow(time.Minute),
		errWin: obs.NewRateWindow(time.Minute),
		latWin: obs.NewHistWindow(time.Minute),
	}
	// The histogram lives on the coordinator's registry, next to the
	// fan-out counters, so one /metrics scrape covers both.
	s.queryDur = c.Registry().Histogram("sq_query_duration_seconds",
		"Query latency by method.", obs.DefBuckets, "method")
	s.slow = obs.NewSlowQueryLog(cfg.SlowQuery, cfg.SlowQueryWriter)
	s.slow.SetDropped(c.Registry().Counter("sq_slowlog_dropped_total",
		"Slow-query log lines dropped by the byte budget.").Counter())
	obs.RegisterRuntimeMetrics(c.Registry())
	obs.RegisterIndexMetrics(c.Registry())
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /cluster", s.handleStats)
	mux.HandleFunc("GET /health/score", s.handleHealthScore)
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("POST /batch", s.handleBatch)
	mux.HandleFunc("POST /graphs", s.handleAdd)
	mux.HandleFunc("DELETE /graphs/{id}", s.handleRemove)
	mux.Handle("GET /metrics", c.Registry().Handler())
	mux.HandleFunc("GET /metrics/cluster", s.handleFederate)
	if cfg.EnablePprof {
		server.RegisterPprof(mux)
	}
	s.mux = mux
	return s
}

// Handler returns the coordinator's public HTTP handler.
func (s *CoordServer) Handler() http.Handler { return s.mux }

// Drain flips readiness off for graceful shutdown.
func (s *CoordServer) Drain() { s.draining.Store(true) }

func (s *CoordServer) fail(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(server.ErrorResponse{Error: err.Error()})
}

func (s *CoordServer) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func (s *CoordServer) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, map[string]string{"status": "ok"})
}

func (s *CoordServer) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		s.fail(w, http.StatusServiceUnavailable, errors.New("draining"))
		return
	}
	s.writeJSON(w, map[string]string{"status": "ready"})
}

func (s *CoordServer) handleStats(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, s.coord.Stats())
}

func (s *CoordServer) handleFederate(w http.ResponseWriter, r *http.Request) {
	snap, _ := s.coord.Federate(r.Context(), s.cfg.ScrapeTimeout)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	snap.Write(w)
}

func (s *CoordServer) handleHealthScore(w http.ResponseWriter, _ *http.Request) {
	s.writeJSON(w, s.healthReport(time.Now()))
}

// healthReport scores the coordinator: windowed error rate, windowed p99
// against the configured SLO, and cluster membership — down nodes (named
// in the reason), stale shards, and ownerless shards. The lifetime ratios
// stand in until the windows hold two samples.
func (s *CoordServer) healthReport(now time.Time) *obs.HealthReport {
	req := float64(s.coord.reqQuery.Value() + s.coord.reqStream.Value() +
		s.coord.reqBatch.Value() + s.coord.reqMutate.Value())
	errs := float64(s.coord.reqErrors.Value())
	s.reqWin.Observe(now, req)
	s.errWin.Observe(now, errs)
	errRate := 0.0
	if d := s.reqWin.Delta(); d > 0 {
		errRate = s.errWin.Delta() / d
	} else if req > 0 {
		errRate = errs / req
	}
	rep := obs.NewHealthReport()
	rep.Add(obs.CheckErrorRate(errRate))

	bounds, cum, total := obs.MergedHistogram(s.queryDur)
	s.latWin.Observe(now, cum, total)
	p99, ok := s.latWin.Quantile(bounds, 0.99)
	if !ok {
		p99 = obs.QuantileFromCells(bounds, cum, total, 0.99)
	}
	rep.Add(obs.CheckLatency(p99, s.cfg.SLO.Seconds()))

	h := s.coord.Health()
	member := obs.HealthCheck{Name: "membership", Status: obs.HealthOK,
		Value:  float64(len(h.Down)),
		Reason: fmt.Sprintf("all %d nodes up", h.Nodes)}
	if len(h.Down) > 0 {
		member.Status = obs.HealthDegraded
		member.Reason = fmt.Sprintf("%d of %d nodes down: %s",
			len(h.Down), h.Nodes, strings.Join(h.Down, ", "))
	}
	rep.Add(member)

	stale := obs.HealthCheck{Name: "stale_shards", Status: obs.HealthOK,
		Value: float64(len(h.StaleShards)), Reason: "no stale shards"}
	if len(h.StaleShards) > 0 {
		stale.Status = obs.HealthDegraded
		stale.Reason = fmt.Sprintf("%d shards serving old epochs: %v",
			len(h.StaleShards), h.StaleShards)
	}
	rep.Add(stale)

	owner := obs.HealthCheck{Name: "ownerless_shards", Status: obs.HealthOK,
		Value: float64(len(h.Ownerless)), Reason: "every shard has a reachable owner"}
	if len(h.Ownerless) > 0 {
		owner.Status = obs.HealthCritical
		owner.Reason = fmt.Sprintf("%d shards with no reachable fresh owner: %v",
			len(h.Ownerless), h.Ownerless)
	}
	rep.Add(owner)
	return rep
}

func (s *CoordServer) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.cfg.RequestTimeout > 0 {
		return context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	}
	return r.Context(), func() {}
}

func coordStatus(err error) int {
	switch {
	case errors.Is(err, ErrNoOwner):
		return http.StatusServiceUnavailable
	case errors.Is(err, engine.ErrNoSuchGraph):
		return http.StatusNotFound
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusGatewayTimeout
	default:
		return http.StatusInternalServerError
	}
}

func (s *CoordServer) toResponse(res *QueryResult, wall time.Duration) server.QueryResponse {
	return server.QueryResponse{
		Candidates:   res.Candidates,
		Answers:      res.Answers,
		Method:       s.coord.Spec(),
		FilterUs:     res.FilterUs,
		VerifyUs:     res.VerifyUs,
		TotalUs:      wall.Microseconds(),
		Produced:     res.Produced,
		Verified:     res.Verified,
		Partial:      res.Partial,
		FailedShards: res.FailedShards,
	}
}

func (s *CoordServer) handleQuery(w http.ResponseWriter, r *http.Request) {
	var gj server.GraphJSON
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 32<<20)).Decode(&gj); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	limit := 0
	if ls := r.URL.Query().Get("limit"); ls != "" {
		n, err := strconv.Atoi(ls)
		if err != nil || n < 1 {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("bad limit %q: want a positive integer", ls))
			return
		}
		limit = n
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	// A client-supplied trace id makes this request the root of a
	// cross-process tree: leg spans carry the id to the nodes, whose echoed
	// subtrees graft back under them. The slow log creates one on its own
	// when no header asked.
	var tr *obs.Trace
	echo := false
	if id := obs.TraceIDFromHeader(r.Header.Get(obs.TraceHeader)); id != "" {
		tr = obs.NewTraceWithID(id)
		echo = true
	} else if s.slow.Enabled() {
		tr = obs.NewTrace()
	}
	root := tr.StartSpan(nil, "cluster-query")
	ctx = obs.ContextWithSpan(ctx, root)
	if r.URL.Query().Get("stream") != "" {
		s.streamQuery(ctx, w, gj, limit)
		root.End()
		return
	}
	t0 := time.Now()
	if limit > 0 {
		// The limited one-shot runs through the streaming merge and stops
		// after limit answers: node legs are cancelled, so the cluster does
		// only (roughly — legs read ahead) the work it returns, exactly
		// like the single-process server's limited path.
		answers := make(graph.IDSet, 0, limit)
		st, err := s.coord.Stream(ctx, gj, func(id graph.ID) bool {
			answers = append(answers, id)
			return len(answers) < limit
		})
		if err != nil {
			root.Cancel()
			s.fail(w, coordStatus(err), err)
			return
		}
		wall := time.Since(t0)
		s.queryDur.Histogram(s.coord.Spec()).Observe(wall.Seconds())
		root.Attr("limit", limit)
		root.Attr("answers", len(answers))
		root.End()
		resp := server.QueryResponse{
			Candidates:   graph.IDSet{},
			Answers:      answers,
			Method:       s.coord.Spec(),
			TotalUs:      wall.Microseconds(),
			Partial:      st.Partial,
			FailedShards: st.FailedShards,
			Limit:        limit,
			Produced:     int(st.Produced),
			Verified:     int(st.Verified),
		}
		if echo {
			resp.Trace = tr.Tree()
		}
		s.slow.Record(wall, obs.SlowQueryRecord{
			Kind: "cluster-query", Trace: tr.ID(), Method: s.coord.Spec(),
			Produced: int(st.Produced), Verified: int(st.Verified),
			Answers: len(answers), Partial: st.Partial,
			Extra: map[string]any{"limit": limit}, Spans: tr.Tree(),
		})
		s.writeJSON(w, resp)
		return
	}
	res, err := s.coord.Query(ctx, gj)
	if err != nil {
		root.Cancel()
		s.fail(w, coordStatus(err), err)
		return
	}
	wall := time.Since(t0)
	s.queryDur.Histogram(s.coord.Spec()).Observe(wall.Seconds())
	root.Attr("answers", len(res.Answers))
	if res.Partial {
		root.Attr("partial", true)
	}
	root.End()
	resp := s.toResponse(res, wall)
	if echo {
		resp.Trace = tr.Tree()
	}
	s.slow.Record(wall, obs.SlowQueryRecord{
		Kind: "cluster-query", Trace: tr.ID(), Method: s.coord.Spec(),
		Candidates: len(res.Candidates), Produced: res.Produced,
		Verified: res.Verified, Answers: len(res.Answers),
		FilterUs: res.FilterUs, VerifyUs: res.VerifyUs, Partial: res.Partial,
		Spans: tr.Tree(),
	})
	s.writeJSON(w, resp)
}

// streamQuery relays the cluster merge as NDJSON, stopping after limit
// answers when limit > 0 (the unconsumed node legs are cancelled). The
// done line carries the partial flags: a consumer that saw every id line
// still must check it — a shard lost mid-stream silently truncates that
// shard's tail otherwise.
func (s *CoordServer) streamQuery(ctx context.Context, w http.ResponseWriter, gj server.GraphJSON, limit int) {
	if s.cfg.RequestTimeout > 0 {
		rc := http.NewResponseController(w)
		_ = rc.SetWriteDeadline(time.Now().Add(s.cfg.RequestTimeout))
		defer rc.SetWriteDeadline(time.Time{})
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	broken := false
	n := 0
	st, err := s.coord.Stream(ctx, gj, func(id graph.ID) bool {
		line := server.StreamLine{ID: &id}
		if enc.Encode(line) != nil {
			broken = true
			return false
		}
		if fl != nil {
			fl.Flush()
		}
		n++
		return limit <= 0 || n < limit
	})
	if broken {
		return
	}
	if err != nil {
		enc.Encode(server.StreamLine{Error: err.Error()})
		if fl != nil {
			fl.Flush()
		}
		return
	}
	enc.Encode(server.StreamLine{
		Done: true, Matches: st.Matches, Partial: st.Partial, FailedShards: st.FailedShards,
		Produced: st.Produced, Verified: st.Verified,
	})
	if fl != nil {
		fl.Flush()
	}
}

func (s *CoordServer) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req server.BatchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20)).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if len(req.Queries) == 0 {
		s.fail(w, http.StatusBadRequest, errors.New("batch has no queries"))
		return
	}
	s.coord.reqBatch.Add(1)
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	items := make([]server.BatchItem, len(req.Queries))
	workers := req.Workers
	if workers <= 0 || workers > len(req.Queries) {
		workers = min(4, len(req.Queries))
	}
	engine.ForEachBounded(ctx, len(req.Queries), workers, func(qctx context.Context, i int) error {
		t0 := time.Now()
		res, err := s.coord.Query(qctx, req.Queries[i])
		if err != nil {
			items[i] = server.BatchItem{Error: err.Error()}
			return nil
		}
		items[i] = server.BatchItem{QueryResponse: s.toResponse(res, time.Since(t0))}
		return nil
	})
	s.writeJSON(w, server.BatchResponse{Results: items})
}

func (s *CoordServer) handleAdd(w http.ResponseWriter, r *http.Request) {
	var gj server.GraphJSON
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, 32<<20)).Decode(&gj); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
		return
	}
	if len(gj.Vertices) == 0 {
		s.fail(w, http.StatusBadRequest, errors.New("graph has no vertices"))
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	resp, err := s.coord.Add(ctx, gj)
	if err != nil {
		s.fail(w, coordStatus(err), err)
		return
	}
	s.writeJSON(w, resp)
}

func (s *CoordServer) handleRemove(w http.ResponseWriter, r *http.Request) {
	id64, err := strconv.ParseInt(r.PathValue("id"), 10, 32)
	if err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad graph id %q", r.PathValue("id")))
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	resp, err := s.coord.Remove(ctx, graph.ID(id64))
	if err != nil {
		s.fail(w, coordStatus(err), err)
		return
	}
	s.writeJSON(w, resp)
}
