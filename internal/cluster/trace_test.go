package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	_ "repro/internal/engine/std"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/testutil/leak"
)

// traceQuery POSTs one query through a CoordServer with an X-SQ-Trace
// header and returns the decoded response.
func traceQuery(t *testing.T, cs *cluster.CoordServer, gj server.GraphJSON, traceID string) server.QueryResponse {
	t.Helper()
	srv := httptest.NewServer(cs.Handler())
	defer srv.Close()
	body, err := json.Marshal(gj)
	if err != nil {
		t.Fatalf("marshal query: %v", err)
	}
	req, err := http.NewRequest(http.MethodPost, srv.URL+"/query", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("build request: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceHeader, traceID)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("query: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query status %d", resp.StatusCode)
	}
	var qr server.QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatalf("decode response: %v", err)
	}
	return qr
}

// TestClusterTracePropagation: a trace id supplied to the coordinator's
// public face round-trips to every node and back — the echoed tree is one
// cross-process span tree: the coordinator's root holds one leg span per
// fan-out leg, each grafted with the node's own subtree (identified by the
// node name it stamps), all under the same trace id.
func TestClusterTracePropagation(t *testing.T) {
	t.Cleanup(leak.Check(t)) // registered before startCluster: runs after tc.close
	ds := testDataset(t)
	queries := testQueries(t, ds)
	const shards = 4
	tc := startCluster(t, "Grapes:maxPathLen=3", 3, shards, 1, cluster.CoordConfig{})
	cs := cluster.NewCoordServer(tc.coord, cluster.CoordServerConfig{})

	const traceID = "0123abcd"
	qr := traceQuery(t, cs, toWire(queries[0], ds), traceID)
	if qr.Trace == nil {
		t.Fatalf("response carries no trace despite %s header", obs.TraceHeader)
	}
	if qr.Trace.TraceID != traceID {
		t.Errorf("echoed trace id %q, want %q", qr.Trace.TraceID, traceID)
	}
	if qr.Trace.Name != "cluster-query" {
		t.Errorf("root span %q, want cluster-query", qr.Trace.Name)
	}

	// With replication 1 on 3 nodes, wave-0 fans out to every node: the
	// tree must link one leg span per node, each carrying the node's own
	// grafted subtree stamped with its name.
	legs := 0
	nodeSubtrees := map[string]bool{}
	qr.Trace.Walk(func(st *obs.SpanTree) {
		if strings.HasPrefix(st.Name, "node:") {
			legs++
		}
		if st.Node != "" && st.Name == "node-query" {
			nodeSubtrees[st.Node] = true
		}
	})
	if legs != 3 {
		t.Errorf("trace has %d leg spans, want 3", legs)
	}
	if len(nodeSubtrees) != 3 {
		t.Errorf("trace links %d node subtrees (%v), want 3", len(nodeSubtrees), nodeSubtrees)
	}
}

// TestClusterTraceHedgedLoserCancelled: under hedging, the losing leg's
// span survives in the tree marked cancelled — the trace shows the hedge
// happened rather than silently dropping the abandoned leg. The leak check
// proves the loser's goroutine ended before teardown.
func TestClusterTraceHedgedLoserCancelled(t *testing.T) {
	t.Cleanup(leak.Check(t)) // registered before startCluster: runs after tc.close
	ds := testDataset(t)
	queries := testQueries(t, ds)
	const shards = 4
	tc := startCluster(t, "Grapes:maxPathLen=3", 3, shards, 2, cluster.CoordConfig{
		HedgeDelay: 25 * time.Millisecond,
	})
	cs := cluster.NewCoordServer(tc.coord, cluster.CoordServerConfig{})

	// Every leg through node 0 stalls well past the hedge delay, so its
	// shards resolve through hedged replicas and the stalled legs are
	// cancelled when the fan-out completes.
	tc.hooks[0].queryDelayMs.Store(2000)

	qr := traceQuery(t, cs, toWire(queries[0], ds), "feedbeef")
	if qr.Trace == nil {
		t.Fatalf("response carries no trace")
	}
	cancelled, completed := 0, 0
	qr.Trace.Walk(func(st *obs.SpanTree) {
		if !strings.HasPrefix(st.Name, "node:") {
			return
		}
		if st.Cancelled {
			cancelled++
		} else {
			completed++
		}
	})
	if cancelled == 0 {
		t.Errorf("no leg span marked cancelled despite a stalled, hedged-over primary")
	}
	if completed == 0 {
		t.Errorf("no leg span completed")
	}
	if fo := tc.coord.Stats().Fanout; fo.HedgesWon == 0 {
		t.Errorf("hedges won = 0: the stall did not force a hedge, test proves nothing")
	}
}

// TestClusterQueryReportsPipelineWork: the merged (non-streaming) cluster
// response reports the summed per-shard Produced/Verified pipeline
// counters, like a single-process response does.
func TestClusterQueryReportsPipelineWork(t *testing.T) {
	ds := testDataset(t)
	queries := testQueries(t, ds)
	ctx := context.Background()
	const shards = 4
	tc := startCluster(t, "Grapes:maxPathLen=3", 3, shards, 2, cluster.CoordConfig{})

	ref, err := engine.OpenSharded(ctx, ds, shards, engine.WithSpec("Grapes:maxPathLen=3"))
	if err != nil {
		t.Fatalf("OpenSharded: %v", err)
	}
	reported := false
	for i, q := range queries {
		got, err := tc.coord.Query(ctx, toWire(q, ds))
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		want, err := ref.Query(ctx, q)
		if err != nil {
			t.Fatalf("reference query %d: %v", i, err)
		}
		if len(want.Answers) > 0 && got.Verified == 0 {
			t.Errorf("query %d: %d answers but Verified=0 — pipeline counters dropped on the merge path", i, len(want.Answers))
		}
		if got.Produced < got.Verified {
			t.Errorf("query %d: Produced=%d < Verified=%d", i, got.Produced, got.Verified)
		}
		if got.Produced > 0 {
			reported = true
		}
	}
	if !reported {
		t.Errorf("no query reported any pipeline work")
	}
}
