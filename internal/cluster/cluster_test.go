package cluster_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/engine"
	_ "repro/internal/engine/std"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/server"
	"repro/internal/testutil/leak"
	"repro/internal/workload"
)

// testDataset returns a fresh, deterministic copy of the test dataset.
// Every node gets its own copy, exactly as every sqnode process loads the
// same file.
func testDataset(t testing.TB) *graph.Dataset {
	t.Helper()
	return gen.Synthetic(gen.SynthConfig{
		NumGraphs: 25, MeanNodes: 14, MeanDensity: 0.2, NumLabels: 4, Seed: 41,
	})
}

func testQueries(t testing.TB, ds *graph.Dataset) []*graph.Graph {
	t.Helper()
	qs, err := workload.Generate(ds, workload.Config{NumQueries: 4, QueryEdges: 5, Seed: 42})
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	return qs
}

// nodeHooks injects faults into one node's HTTP face.
type nodeHooks struct {
	queryDelayMs   atomic.Int64 // sleep before serving /node/query (ctx-aware)
	writeDelayMs   atomic.Int64 // sleep before each response write on /node/query
	failMutate     atomic.Bool  // 500 every POST /node/graphs
	metricsDelayMs atomic.Int64 // sleep before serving /metrics (ctx-aware)
}

// slowWriter delays each Write so a streamed response trickles out,
// keeping the connection killable mid-stream. Flush passes through (the
// node handler type-asserts http.Flusher) and Unwrap keeps
// http.NewResponseController working.
type slowWriter struct {
	http.ResponseWriter
	d   time.Duration
	ctx context.Context
}

func (sw *slowWriter) Write(p []byte) (int, error) {
	select {
	case <-time.After(sw.d):
	case <-sw.ctx.Done():
		return 0, sw.ctx.Err()
	}
	return sw.ResponseWriter.Write(p)
}

func (sw *slowWriter) Flush() {
	if fl, ok := sw.ResponseWriter.(http.Flusher); ok {
		fl.Flush()
	}
}

func (sw *slowWriter) Unwrap() http.ResponseWriter { return sw.ResponseWriter }

func (h *nodeHooks) wrap(inner http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if d := h.metricsDelayMs.Load(); d > 0 && r.URL.Path == "/metrics" {
			select {
			case <-time.After(time.Duration(d) * time.Millisecond):
			case <-r.Context().Done():
				return
			}
		}
		if d := h.queryDelayMs.Load(); d > 0 && r.URL.Path == "/node/query" {
			select {
			case <-time.After(time.Duration(d) * time.Millisecond):
			case <-r.Context().Done():
				return
			}
		}
		if h.failMutate.Load() && r.Method == http.MethodPost && r.URL.Path == "/node/graphs" {
			http.Error(w, `{"error":"injected mutation failure"}`, http.StatusInternalServerError)
			return
		}
		if d := h.writeDelayMs.Load(); d > 0 && r.URL.Path == "/node/query" {
			w = &slowWriter{ResponseWriter: w, d: time.Duration(d) * time.Millisecond, ctx: r.Context()}
		}
		inner.ServeHTTP(w, r)
	})
}

// testCluster is an in-process cluster: N sqnode-equivalents behind
// httptest listeners plus a coordinator, faults injectable per node.
type testCluster struct {
	man     *cluster.Manifest
	coord   *cluster.Coordinator
	nodes   []*cluster.Node
	servers []*httptest.Server
	hooks   []*nodeHooks
}

func startCluster(t testing.TB, spec string, nNodes, shards, replication int, cfg cluster.CoordConfig) *testCluster {
	t.Helper()
	return startClusterWith(t, func() *graph.Dataset { return testDataset(t) }, spec, nNodes, shards, replication, cfg)
}

// startClusterWith is startCluster over an arbitrary per-node dataset
// factory (each node loads its own copy, as each sqnode process would).
func startClusterWith(t testing.TB, mkDS func() *graph.Dataset, spec string, nNodes, shards, replication int, cfg cluster.CoordConfig) *testCluster {
	t.Helper()
	ctx := context.Background()
	tc := &testCluster{}

	// Placement is a pure function of the topology, so nodes derive their
	// shard lists before the manifest has real addresses.
	skeleton := &cluster.Manifest{Shards: shards, Replication: replication}
	for i := 0; i < nNodes; i++ {
		skeleton.Nodes = append(skeleton.Nodes, cluster.NodeInfo{Name: fmt.Sprintf("n%d", i), Addr: "pending"})
	}
	man := &cluster.Manifest{Shards: shards, Replication: replication}
	for i := 0; i < nNodes; i++ {
		node, err := cluster.NewNode(ctx, mkDS(), cluster.NodeConfig{
			Name:       fmt.Sprintf("n%d", i),
			Spec:       spec,
			ShardCount: shards,
			Shards:     skeleton.ShardsOf(i),
		})
		if err != nil {
			t.Fatalf("node %d: %v", i, err)
		}
		ns := cluster.NewNodeServer(node, cluster.NodeServerConfig{})
		hooks := &nodeHooks{}
		srv := httptest.NewServer(hooks.wrap(ns.Handler()))
		tc.nodes = append(tc.nodes, node)
		tc.servers = append(tc.servers, srv)
		tc.hooks = append(tc.hooks, hooks)
		man.Nodes = append(man.Nodes, cluster.NodeInfo{Name: fmt.Sprintf("n%d", i), Addr: srv.URL})
	}
	tc.man = man

	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = -1 // tests drive ProbeOnce explicitly
	}
	if cfg.HedgeDelay == 0 {
		cfg.HedgeDelay = -1
	}
	if cfg.Logf == nil {
		cfg.Logf = t.Logf
	}
	coord, err := cluster.NewCoordinator(ctx, man, cfg)
	if err != nil {
		t.Fatalf("coordinator: %v", err)
	}
	tc.coord = coord
	t.Cleanup(tc.close)
	return tc
}

func (tc *testCluster) close() {
	if tc.coord != nil {
		tc.coord.Close()
		tc.coord = nil
	}
	for _, s := range tc.servers {
		s.CloseClientConnections()
		s.Close()
	}
	tc.servers = nil
}

// kill severs a node abruptly: every open connection (streams included)
// dies mid-flight and new dials are refused.
func (tc *testCluster) kill(i int) {
	tc.servers[i].CloseClientConnections()
	tc.servers[i].Close()
}

func toWire(q *graph.Graph, ds *graph.Dataset) server.GraphJSON {
	return server.GraphToJSON(q, &ds.Dict)
}

func idsEqual(a, b graph.IDSet) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// clusterParitySpecs mirrors the engine parity suite: every registered
// indexing method, with the same tighter mining bounds the in-process
// sharded parity run uses on quarter-size shards.
var clusterParitySpecs = []string{
	"Grapes:maxPathLen=3,workers=2",
	"GraphGrepSX:maxPathLen=3",
	"ctindex:fingerprintBits=512,maxTreeSize=3",
	"gindex:maxPatterns=20000,supportRatio=0.2",
	"treedelta:maxFeatureSize=5,maxPatterns=20000,querySupportToAdd=0.5",
	"gcode:pathLen=1",
	"NoIndex",
}

// TestClusterParityEveryMethod is the acceptance gate: a coordinator over
// three nodes answers every query identically — candidates, answers, and
// the streamed sequence — to the single-process sharded engine with the
// same shard count, for every method.
func TestClusterParityEveryMethod(t *testing.T) {
	ds := testDataset(t)
	queries := testQueries(t, ds)
	ctx := context.Background()
	const shards = 4

	for _, spec := range clusterParitySpecs {
		t.Run(spec, func(t *testing.T) {
			ref, err := engine.OpenSharded(ctx, ds, shards, engine.WithSpec(spec))
			if err != nil {
				t.Fatalf("OpenSharded: %v", err)
			}
			tc := startCluster(t, spec, 3, shards, 2, cluster.CoordConfig{})

			for i, q := range queries {
				want, err := ref.Query(ctx, q)
				if err != nil {
					t.Fatalf("reference query %d: %v", i, err)
				}
				got, err := tc.coord.Query(ctx, toWire(q, ds))
				if err != nil {
					t.Fatalf("cluster query %d: %v", i, err)
				}
				if got.Partial {
					t.Fatalf("query %d: partial answer from a healthy cluster", i)
				}
				if !idsEqual(got.Answers, want.Answers) {
					t.Errorf("query %d answers: cluster %v, sharded %v", i, got.Answers, want.Answers)
				}
				if !idsEqual(got.Candidates, want.Candidates) {
					t.Errorf("query %d candidates: cluster %v, sharded %v", i, got.Candidates, want.Candidates)
				}

				var wantStream []graph.ID
				for id, err := range ref.Stream(ctx, q) {
					if err != nil {
						t.Fatalf("reference stream %d: %v", i, err)
					}
					wantStream = append(wantStream, id)
				}
				var gotStream []graph.ID
				st, err := tc.coord.Stream(ctx, toWire(q, ds), func(id graph.ID) bool {
					gotStream = append(gotStream, id)
					return true
				})
				if err != nil {
					t.Fatalf("cluster stream %d: %v", i, err)
				}
				if st.Partial {
					t.Fatalf("stream %d: partial from a healthy cluster", i)
				}
				if !idsEqual(gotStream, wantStream) {
					t.Errorf("query %d stream: cluster %v, sharded %v", i, gotStream, wantStream)
				}
			}
		})
	}
}

// TestClusterMutationParity routes removes and adds through the
// coordinator and checks the cluster keeps answering exactly like a
// single-process mutable engine that applied the same mutations: same
// assigned ids, same answers, epochs propagated to every replica.
func TestClusterMutationParity(t *testing.T) {
	ds := testDataset(t)
	queries := testQueries(t, ds)
	ctx := context.Background()
	const spec = "Grapes:maxPathLen=3"

	flat, err := engine.Open(ctx, ds, engine.WithSpec(spec))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	tc := startCluster(t, spec, 3, 4, 2, cluster.CoordConfig{})

	// Remove two graphs, then add two new ones (interned from another
	// deterministic dataset, as a wire client would submit them).
	for _, id := range []graph.ID{3, 17} {
		if err := flat.RemoveGraph(ctx, id); err != nil {
			t.Fatalf("flat remove %d: %v", id, err)
		}
		mr, err := tc.coord.Remove(ctx, id)
		if err != nil {
			t.Fatalf("cluster remove %d: %v", id, err)
		}
		if mr.ID != id {
			t.Errorf("remove ack id %d, want %d", mr.ID, id)
		}
	}
	extra := gen.Synthetic(gen.SynthConfig{NumGraphs: 2, MeanNodes: 10, MeanDensity: 0.25, NumLabels: 4, Seed: 77})
	var added []*graph.Graph
	for i, g := range extra.Graphs {
		ig, err := server.InternGraph(toWire(g, extra), &ds.Dict)
		if err != nil {
			t.Fatalf("intern add %d: %v", i, err)
		}
		wantID, err := flat.AddGraph(ctx, ig)
		if err != nil {
			t.Fatalf("flat add %d: %v", i, err)
		}
		mr, err := tc.coord.Add(ctx, toWire(ig, ds))
		if err != nil {
			t.Fatalf("cluster add %d: %v", i, err)
		}
		if mr.ID != wantID {
			t.Errorf("add %d: cluster assigned id %d, single-process %d", i, mr.ID, wantID)
		}
		added = append(added, ig)
	}

	for i, q := range append(append([]*graph.Graph{}, queries...), added...) {
		want, err := flat.Query(ctx, q)
		if err != nil {
			t.Fatalf("flat query %d: %v", i, err)
		}
		got, err := tc.coord.Query(ctx, toWire(q, ds))
		if err != nil {
			t.Fatalf("cluster query %d: %v", i, err)
		}
		if !idsEqual(got.Answers, want.Answers) {
			t.Errorf("query %d answers after mutations: cluster %v, flat %v", i, got.Answers, want.Answers)
		}
	}

	st := tc.coord.Stats()
	if st.Epoch != 4 {
		t.Errorf("cluster epoch %d after 4 mutations, want 4", st.Epoch)
	}
	for _, row := range st.Nodes {
		if len(row.Stale) != 0 {
			t.Errorf("node %s has stale shards %v after healthy mutations", row.Name, row.Stale)
		}
	}

	// Mutations are idempotent at the node protocol (redelivery on retry
	// must be safe): re-removing a tombstoned graph acks, while a genuinely
	// unknown id surfaces as an error.
	if _, err := tc.coord.Remove(ctx, 3); err != nil {
		t.Errorf("re-remove of tombstoned graph: %v, want idempotent ack", err)
	}
	if _, err := tc.coord.Remove(ctx, 9999); err == nil {
		t.Errorf("remove of unknown graph succeeded, want error")
	}
}

// TestClusterPartialOnNodeLoss: with no replication, killing a node must
// yield flagged partial results naming the lost shards — never a silently
// truncated answer — and queries keep serving the surviving shards.
func TestClusterPartialOnNodeLoss(t *testing.T) {
	ds := testDataset(t)
	queries := testQueries(t, ds)
	ctx := context.Background()
	const shards = 4
	tc := startCluster(t, "Grapes:maxPathLen=3", 3, shards, 1, cluster.CoordConfig{})

	ref, err := engine.OpenSharded(ctx, ds, shards, engine.WithSpec("Grapes:maxPathLen=3"))
	if err != nil {
		t.Fatalf("OpenSharded: %v", err)
	}

	const victim = 1
	lost := tc.man.ShardsOf(victim)
	tc.kill(victim)

	for i, q := range queries {
		got, err := tc.coord.Query(ctx, toWire(q, ds))
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if !got.Partial {
			t.Fatalf("query %d: node %d dead but answer not flagged partial", i, victim)
		}
		if fmt.Sprint(got.FailedShards) != fmt.Sprint(lost) {
			t.Errorf("query %d failed shards %v, want %v", i, got.FailedShards, lost)
		}
		// The surviving shards' answers must still be exact.
		want, err := ref.Query(ctx, q)
		if err != nil {
			t.Fatalf("reference query %d: %v", i, err)
		}
		lostSet := map[int]bool{}
		for _, s := range lost {
			lostSet[s] = true
		}
		var wantSurviving graph.IDSet
		for _, id := range want.Answers {
			if !lostSet[engine.ShardOf(id, shards)] {
				wantSurviving = append(wantSurviving, id)
			}
		}
		if !idsEqual(got.Answers, wantSurviving) {
			t.Errorf("query %d surviving answers %v, want %v", i, got.Answers, wantSurviving)
		}
	}
	if p := tc.coord.Stats().Fanout.Partials; p == 0 {
		t.Errorf("partials counter is 0 after partial answers")
	}
}

// bestStreamQuery picks the query with the most streamed answers (so a
// kill can land mid-stream) and returns the reference sequences for all.
func bestStreamQuery(t *testing.T, ctx context.Context, ref *engine.Sharded, queries []*graph.Graph) (int, [][]graph.ID) {
	t.Helper()
	best, bestLen := 0, -1
	want := make([][]graph.ID, len(queries))
	for i, q := range queries {
		for id, err := range ref.Stream(ctx, q) {
			if err != nil {
				t.Fatalf("reference stream: %v", err)
			}
			want[i] = append(want[i], id)
		}
		if len(want[i]) > bestLen {
			best, bestLen = i, len(want[i])
		}
	}
	if bestLen < 2 {
		t.Skip("no query streams enough answers to kill mid-stream")
	}
	return best, want
}

// TestClusterStreamFailover: killing a replica-backed node mid-stream loses
// nothing — the replacement legs resume each shard past its last emitted id
// and the merged sequence stays exactly the full answer set, in order.
func TestClusterStreamFailover(t *testing.T) {
	t.Cleanup(leak.Check(t)) // registered before startCluster: runs after tc.close
	ds := testDataset(t)
	queries := testQueries(t, ds)
	ctx := context.Background()
	const shards = 4
	tc := startCluster(t, "Grapes:maxPathLen=3", 3, shards, 2, cluster.CoordConfig{})

	ref, err := engine.OpenSharded(ctx, ds, shards, engine.WithSpec("Grapes:maxPathLen=3"))
	if err != nil {
		t.Fatalf("OpenSharded: %v", err)
	}
	best, want := bestStreamQuery(t, ctx, ref, queries)

	// Node 0 leads shards 0 and 3 in wave-0; trickle its stream lines so
	// its legs are provably still in flight when the first answer arrives.
	const victim = 0
	tc.hooks[victim].writeDelayMs.Store(40)

	killed := false
	var got []graph.ID
	st, err := tc.coord.Stream(ctx, toWire(queries[best], ds), func(id graph.ID) bool {
		got = append(got, id)
		if !killed {
			killed = true
			tc.kill(victim)
		}
		return true
	})
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	if st.Partial {
		t.Fatalf("stream flagged partial (failed shards %v) despite replicas for every shard", st.FailedShards)
	}
	if !idsEqual(got, want[best]) {
		t.Errorf("failover stream %v, want %v", got, want[best])
	}
	if f := tc.coord.Stats().Fanout.Failovers; f == 0 {
		t.Errorf("failover counter is 0 after mid-stream node loss")
	}
}

// TestClusterStreamPartialOnUnreplicatedLoss: without replicas, a node
// dying mid-stream ends the stream with the partial flag and the lost
// shards reported — the emitted prefix stays correct, the truncation loud.
func TestClusterStreamPartialOnUnreplicatedLoss(t *testing.T) {
	t.Cleanup(leak.Check(t)) // registered before startCluster: runs after tc.close
	ds := testDataset(t)
	queries := testQueries(t, ds)
	ctx := context.Background()
	const shards = 4
	tc := startCluster(t, "Grapes:maxPathLen=3", 3, shards, 1, cluster.CoordConfig{})

	ref, err := engine.OpenSharded(ctx, ds, shards, engine.WithSpec("Grapes:maxPathLen=3"))
	if err != nil {
		t.Fatalf("OpenSharded: %v", err)
	}
	best, want := bestStreamQuery(t, ctx, ref, queries)

	// The victim must still owe answers when the first id is emitted, or
	// its leg completes before the kill: take the sole owner of the shard
	// holding the query's last answer.
	lastID := want[best][len(want[best])-1]
	victim := tc.man.Owners(engine.ShardOf(lastID, shards))[0]
	tc.hooks[victim].writeDelayMs.Store(40)

	killed := false
	var got []graph.ID
	st, err := tc.coord.Stream(ctx, toWire(queries[best], ds), func(id graph.ID) bool {
		got = append(got, id)
		if !killed {
			killed = true
			tc.kill(victim)
		}
		return true
	})
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	if !st.Partial {
		t.Fatalf("unreplicated node died mid-stream but the stream was not flagged partial")
	}
	if len(st.FailedShards) == 0 {
		t.Fatalf("partial stream names no failed shards")
	}
	// Everything emitted must be a true answer, strictly ascending.
	wantSet := map[graph.ID]bool{}
	for _, id := range want[best] {
		wantSet[id] = true
	}
	for i, id := range got {
		if !wantSet[id] {
			t.Errorf("emitted %d is not an answer", id)
		}
		if i > 0 && got[i-1] >= id {
			t.Errorf("stream not strictly ascending at %d: %v", i, got)
		}
	}
}

// TestHedgedQueryCancelsLoser: a slow primary is hedged to its replica
// after HedgeDelay; the replica's result wins, the answer stays exact, and
// the losing leg is canceled — no goroutine outlives the teardown (the
// suite runs under -race, which would also flag an unsynchronized loser).
func TestHedgedQueryCancelsLoser(t *testing.T) {
	t.Cleanup(leak.Check(t)) // registered before startCluster: runs after tc.close
	ds := testDataset(t)
	queries := testQueries(t, ds)
	ctx := context.Background()
	const shards = 4

	tc := startCluster(t, "Grapes:maxPathLen=3", 3, shards, 2, cluster.CoordConfig{
		HedgeDelay: 25 * time.Millisecond,
	})
	ref, err := engine.OpenSharded(ctx, ds, shards, engine.WithSpec("Grapes:maxPathLen=3"))
	if err != nil {
		t.Fatalf("OpenSharded: %v", err)
	}
	// Every leg through node 0 stalls well past the hedge delay.
	tc.hooks[0].queryDelayMs.Store(2000)

	for i, q := range queries {
		t0 := time.Now()
		got, err := tc.coord.Query(ctx, toWire(q, ds))
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if got.Partial {
			t.Fatalf("query %d partial under hedging", i)
		}
		want, err := ref.Query(ctx, q)
		if err != nil {
			t.Fatalf("reference query %d: %v", i, err)
		}
		if !idsEqual(got.Answers, want.Answers) {
			t.Errorf("query %d hedged answers %v, want %v", i, got.Answers, want.Answers)
		}
		if e := time.Since(t0); e > time.Second {
			t.Errorf("query %d took %v: hedge did not shortcut the slow primary", i, e)
		}
	}
	fo := tc.coord.Stats().Fanout
	if fo.HedgesFired == 0 || fo.HedgesWon == 0 {
		t.Errorf("hedges fired=%d won=%d, want both > 0", fo.HedgesFired, fo.HedgesWon)
	}
	// The losers were canceled when their shards resolved; the leak check
	// registered above verifies nothing lingers after teardown.
}

// TestClusterRereplication: when a node dies, the prober re-replicates its
// shards onto surviving nodes (from a fresh owner's dump for mutated
// shards, a local rebuild otherwise) and the cluster serves complete,
// mutation-current answers again.
func TestClusterRereplication(t *testing.T) {
	ds := testDataset(t)
	queries := testQueries(t, ds)
	ctx := context.Background()
	const shards = 4
	tc := startCluster(t, "Grapes:maxPathLen=3", 3, shards, 2, cluster.CoordConfig{})

	flat, err := engine.Open(ctx, ds, engine.WithSpec("Grapes:maxPathLen=3"))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	// Mutate before the crash so re-replication must carry epochs, not
	// just rebuild from the dataset file.
	if err := flat.RemoveGraph(ctx, 5); err != nil {
		t.Fatalf("flat remove: %v", err)
	}
	if _, err := tc.coord.Remove(ctx, 5); err != nil {
		t.Fatalf("cluster remove: %v", err)
	}

	tc.kill(0)
	tc.coord.ProbeOnce(ctx)

	st := tc.coord.Stats()
	if st.Fanout.Rereplicated == 0 {
		t.Fatalf("no shards re-replicated after node loss (fanout %+v)", st.Fanout)
	}
	for i, q := range queries {
		got, err := tc.coord.Query(ctx, toWire(q, ds))
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if got.Partial {
			t.Fatalf("query %d partial after re-replication (failed %v)", i, got.FailedShards)
		}
		want, err := flat.Query(ctx, q)
		if err != nil {
			t.Fatalf("flat query %d: %v", i, err)
		}
		if !idsEqual(got.Answers, want.Answers) {
			t.Errorf("query %d answers %v, want %v", i, got.Answers, want.Answers)
		}
	}
}

// TestClusterStaleReplicaRecovery: a replica that misses a mutation is
// marked stale and excluded from fan-out, then refreshed from a fresh
// owner by the prober.
func TestClusterStaleReplicaRecovery(t *testing.T) {
	ds := testDataset(t)
	ctx := context.Background()
	const shards = 4
	tc := startCluster(t, "Grapes:maxPathLen=3", 3, shards, 2, cluster.CoordConfig{})

	// The coordinator allocates the next id above the dataset maximum, so
	// the first add's shard — and its replica — are known up front.
	id := graph.ID(len(ds.Graphs))
	s := engine.ShardOf(id, shards)
	replica := tc.man.Owners(s)[1]

	// The replica rejects the routed add: it misses the mutation.
	tc.hooks[replica].failMutate.Store(true)
	add := gen.Synthetic(gen.SynthConfig{NumGraphs: 1, MeanNodes: 8, MeanDensity: 0.3, NumLabels: 4, Seed: 99})
	mr, err := tc.coord.Add(ctx, toWire(add.Graphs[0], add))
	if err != nil {
		t.Fatalf("add: %v", err)
	}
	if mr.ID != id {
		t.Fatalf("add assigned id %d, want %d", mr.ID, id)
	}

	stale := func() []int {
		for _, row := range tc.coord.Stats().Nodes {
			if row.Name == tc.man.Nodes[replica].Name {
				return row.Stale
			}
		}
		return nil
	}
	if got := stale(); len(got) != 1 || got[0] != s {
		t.Fatalf("replica %d missed the mutation on shard %d but its stale set is %v", replica, s, got)
	}

	// Heal the replica and let the prober repair it from the fresh owner.
	tc.hooks[replica].failMutate.Store(false)
	tc.coord.ProbeOnce(ctx)
	if got := stale(); len(got) != 0 {
		t.Fatalf("replica still stale after repair: %v", got)
	}
	if tc.coord.Stats().Fanout.Rereplicated == 0 {
		t.Errorf("rereplicated counter is 0 after stale repair")
	}

	// The repaired replica now answers the added graph: queries stay full
	// even with the shard's other owner gone.
	tc.kill(tc.man.Owners(s)[0])
	got, err := tc.coord.Query(ctx, toWire(add.Graphs[0], add))
	if err != nil {
		t.Fatalf("query after repair: %v", err)
	}
	if got.Partial {
		t.Fatalf("query partial after repair (failed %v)", got.FailedShards)
	}
	found := false
	for _, a := range got.Answers {
		if a == id {
			found = true
		}
	}
	if !found {
		t.Errorf("added graph %d missing from answers %v served by the repaired replica", id, got.Answers)
	}
}

// TestNodeDumpInstallRoundTrip: a shard moved by dump/install answers
// identically on the receiving node, epoch and id-allocation state intact.
func TestNodeDumpInstallRoundTrip(t *testing.T) {
	ctx := context.Background()
	const shards = 4
	src, err := cluster.NewNode(ctx, testDataset(t), cluster.NodeConfig{
		Name: "src", Spec: "Grapes:maxPathLen=3", ShardCount: shards, Shards: []int{1},
	})
	if err != nil {
		t.Fatalf("src node: %v", err)
	}
	dst, err := cluster.NewNode(ctx, testDataset(t), cluster.NodeConfig{
		Name: "dst", Spec: "Grapes:maxPathLen=3", ShardCount: shards, Shards: nil,
	})
	if err != nil {
		t.Fatalf("dst node: %v", err)
	}
	graphs, epoch, maxID, err := src.Dump(1)
	if err != nil {
		t.Fatalf("dump: %v", err)
	}
	if err := dst.Install(ctx, 1, epoch, maxID, graphs); err != nil {
		t.Fatalf("install: %v", err)
	}
	ds := testDataset(t)
	for i, q := range testQueries(t, ds) {
		want, err := src.Query(ctx, []int{1}, q)
		if err != nil {
			t.Fatalf("src query: %v", err)
		}
		got, err := dst.Query(ctx, []int{1}, q)
		if err != nil {
			t.Fatalf("dst query: %v", err)
		}
		if !idsEqual(got[0].Answers, want[0].Answers) {
			t.Errorf("query %d: installed shard answers %v, want %v", i, got[0].Answers, want[0].Answers)
		}
	}
	info := dst.Info()
	if len(info.Shards) != 1 || info.Shards[0].Shard != 1 {
		t.Fatalf("dst serves %+v, want shard 1", info.Shards)
	}
	if info.MaxGlobalID != maxID {
		t.Errorf("dst max id %d, want %d", info.MaxGlobalID, maxID)
	}
}
