package cluster

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/server"
)

// NodeError is a non-2xx node response, preserving the status so the
// coordinator's failover logic can tell routing staleness (404: the node no
// longer serves the shard, or the graph id is unknown) from node trouble.
type NodeError struct {
	Status int
	Msg    string
}

func (e *NodeError) Error() string {
	return fmt.Sprintf("node responded %d: %s", e.Status, e.Msg)
}

// NodeClient speaks the node protocol to one shard node.
type NodeClient struct {
	// Addr is the node's base URL.
	Addr string
	// HTTP performs the requests; it should have no overall timeout — each
	// call's context carries the budget.
	HTTP *http.Client
}

func (c *NodeClient) url(path string) string {
	return strings.TrimSuffix(c.Addr, "/") + path
}

// injectTrace propagates the caller's trace id to the node: when the
// request context carries an active span, the node runs its own trace under
// the same id and echoes the subtree for the coordinator to graft.
func injectTrace(req *http.Request) {
	if id := obs.SpanFromContext(req.Context()).Trace().ID(); id != "" {
		req.Header.Set(obs.TraceHeader, id)
	}
}

// do runs a request and decodes a JSON body into out, converting non-2xx
// responses into *NodeError.
func (c *NodeClient) do(req *http.Request, out any) error {
	injectTrace(req)
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var er server.ErrorResponse
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
		if json.Unmarshal(body, &er) != nil || er.Error == "" {
			er.Error = strings.TrimSpace(string(body))
		}
		return &NodeError{Status: resp.StatusCode, Msg: er.Error}
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func (c *NodeClient) getJSON(ctx context.Context, path string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url(path), nil)
	if err != nil {
		return err
	}
	return c.do(req, out)
}

func (c *NodeClient) postJSON(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.url(path), bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return c.do(req, out)
}

// Ready probes GET /readyz.
func (c *NodeClient) Ready(ctx context.Context) error {
	return c.getJSON(ctx, "/readyz", nil)
}

// Info fetches GET /node/info.
func (c *NodeClient) Info(ctx context.Context) (InfoResponse, error) {
	var info InfoResponse
	err := c.getJSON(ctx, "/node/info", &info)
	return info, err
}

// Metrics fetches the node's raw GET /metrics exposition (capped at 8 MiB)
// for the coordinator's federation endpoint.
func (c *NodeClient) Metrics(ctx context.Context) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.url("/metrics"), nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		return nil, &NodeError{Status: resp.StatusCode, Msg: strings.TrimSpace(string(body))}
	}
	return io.ReadAll(io.LimitReader(resp.Body, 8<<20))
}

func shardsParam(shards []int) string {
	parts := make([]string, len(shards))
	for i, k := range shards {
		parts[i] = strconv.Itoa(k)
	}
	return strings.Join(parts, ",")
}

// Query runs a non-streaming fan-out leg over the given shards.
func (c *NodeClient) Query(ctx context.Context, shards []int, gj server.GraphJSON) (ShardQueryResponse, error) {
	var resp ShardQueryResponse
	err := c.postJSON(ctx, "/node/query?shards="+shardsParam(shards), gj, &resp)
	return resp, err
}

// ErrLegStale is wrapped into a streaming leg's terminal error when the
// node aborted the stream because a mutation landed under it (the node's
// epoch-checked chunked locking). The leg is retryable on the same node,
// resumed after the coordinator's merge frontier — unlike a transport
// failure, the node is healthy.
var ErrLegStale = errors.New("cluster: node stream aborted by concurrent mutation")

// StreamTail is the terminal accounting of a streaming leg: the pipeline
// counters the node reported on its done line. Zero when the leg ended
// early (error, cancellation, or yield stop) — the counters are
// observability, not an invariant.
type StreamTail struct {
	Produced int64
	Verified int64
}

// Stream opens a streaming leg over the given shards, yielding global
// answer ids ascending, starting strictly after `after` (-1 = from the
// start). The yield loop ends on the done line; a mid-stream error or
// truncated body surfaces as the terminal error.
func (c *NodeClient) Stream(ctx context.Context, shards []int, gj server.GraphJSON, after graph.ID, yield func(graph.ID) bool) (StreamTail, error) {
	body, err := json.Marshal(gj)
	if err != nil {
		return StreamTail{}, err
	}
	url := fmt.Sprintf("%s&stream=1&after=%d", c.url("/node/query?shards="+shardsParam(shards)), after)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return StreamTail{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	injectTrace(req)
	resp, err := c.HTTP.Do(req)
	if err != nil {
		return StreamTail{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var er server.ErrorResponse
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 64<<10))
		if json.Unmarshal(b, &er) != nil || er.Error == "" {
			er.Error = strings.TrimSpace(string(b))
		}
		return StreamTail{}, &NodeError{Status: resp.StatusCode, Msg: er.Error}
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		var line server.StreamLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return StreamTail{}, fmt.Errorf("decoding stream line: %w", err)
		}
		switch {
		case line.Stale:
			return StreamTail{}, fmt.Errorf("%w: %s", ErrLegStale, line.Error)
		case line.Error != "":
			return StreamTail{}, fmt.Errorf("node stream: %s", line.Error)
		case line.Done:
			return StreamTail{Produced: line.Produced, Verified: line.Verified}, nil
		case line.ID != nil:
			if !yield(*line.ID) {
				return StreamTail{}, nil
			}
		}
	}
	if err := sc.Err(); err != nil {
		return StreamTail{}, fmt.Errorf("reading stream: %w", err)
	}
	return StreamTail{}, fmt.Errorf("stream ended without done marker — node died mid-stream")
}

// Add routes an add to the node.
func (c *NodeClient) Add(ctx context.Context, req AddRequest) (MutateAck, error) {
	var ack MutateAck
	err := c.postJSON(ctx, "/node/graphs", req, &ack)
	return ack, err
}

// Remove routes a remove to the node.
func (c *NodeClient) Remove(ctx context.Context, id graph.ID, epoch uint64) (MutateAck, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete,
		fmt.Sprintf("%s/node/graphs/%d?epoch=%d", strings.TrimSuffix(c.Addr, "/"), id, epoch), nil)
	if err != nil {
		return MutateAck{}, err
	}
	var ack MutateAck
	err = c.do(req, &ack)
	return ack, err
}

// Load asks the node to install a shard (from a peer dump, or a local
// rebuild when From is empty).
func (c *NodeClient) Load(ctx context.Context, req LoadRequest) (MutateAck, error) {
	var ack MutateAck
	err := c.postJSON(ctx, "/node/load", req, &ack)
	return ack, err
}

// DropShard asks the node to forget a shard.
func (c *NodeClient) DropShard(ctx context.Context, k int) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete,
		fmt.Sprintf("%s/node/shards/%d", strings.TrimSuffix(c.Addr, "/"), k), nil)
	if err != nil {
		return err
	}
	return c.do(req, nil)
}
