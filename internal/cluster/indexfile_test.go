package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"repro/internal/gen"
	"repro/internal/workload"
)

// TestLoadFromShipsIndexFile: re-replication via /node/load fetches the
// owner's persisted v2 shard index alongside the dump, so the receiving
// node's engine restores it byte-for-byte instead of rebuilding.
func TestLoadFromShipsIndexFile(t *testing.T) {
	ctx := context.Background()
	src := gen.Synthetic(gen.SynthConfig{
		NumGraphs: 30, MeanNodes: 12, MeanDensity: 0.2, NumLabels: 4, Seed: 21,
	})
	queries, err := workload.Generate(src, workload.Config{NumQueries: 3, QueryEdges: 4, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	a, err := NewNode(ctx, src, NodeConfig{
		Name: "a", ShardCount: 2, Shards: []int{0, 1},
		IndexPath: filepath.Join(dir, "a.idx"),
	})
	if err != nil {
		t.Fatal(err)
	}
	tsA := httptest.NewServer(NewNodeServer(a, NodeServerConfig{}).Handler())
	defer tsA.Close()

	b, err := NewNode(ctx, src, NodeConfig{
		Name: "b", ShardCount: 2, Shards: []int{0},
		IndexPath: filepath.Join(dir, "b.idx"),
	})
	if err != nil {
		t.Fatal(err)
	}
	tsB := httptest.NewServer(NewNodeServer(b, NodeServerConfig{}).Handler())
	defer tsB.Close()

	// The indexfile endpoint serves shard 1's v2 container from a.
	resp, err := http.Get(tsA.URL + "/node/indexfile?shard=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /node/indexfile = %d, want 200", resp.StatusCode)
	}
	// A shard the node does not serve is 404.
	resp, err = http.Get(tsB.URL + "/node/indexfile?shard=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /node/indexfile for unserved shard = %d, want 404", resp.StatusCode)
	}

	// Re-replicate shard 1 onto b from a.
	body, _ := json.Marshal(LoadRequest{Shard: 1, From: tsA.URL})
	resp, err = http.Post(tsB.URL+"/node/load", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /node/load = %d, want 200", resp.StatusCode)
	}

	b.mu.RLock()
	sh := b.shards[1]
	b.mu.RUnlock()
	if sh == nil {
		t.Fatalf("shard 1 missing on b after load")
	}
	if !sh.eng.Restored() {
		t.Fatalf("installed shard rebuilt its index; the shipped v2 file was not restored")
	}

	// The restored replica answers exactly like the owner.
	for i, q := range queries {
		ra, err := a.Query(ctx, []int{1}, q)
		if err != nil {
			t.Fatalf("a query %d: %v", i, err)
		}
		rb, err := b.Query(ctx, []int{1}, q)
		if err != nil {
			t.Fatalf("b query %d: %v", i, err)
		}
		if !rb[0].Answers.Equal(ra[0].Answers) {
			t.Errorf("query %d: replica answers %v != owner answers %v", i, rb[0].Answers, ra[0].Answers)
		}
	}
}
