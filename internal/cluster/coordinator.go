package cluster

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sort"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/server"
)

// CoordConfig tunes the coordinator's fan-out behaviour.
type CoordConfig struct {
	// NodeTimeout bounds each fan-out leg (default 10s).
	NodeTimeout time.Duration
	// HedgeDelay is how long a leg may run before a duplicate is fired at
	// the shard's next replica, first result winning (default 2s; negative
	// disables hedging; hedges only fire when a replica exists).
	HedgeDelay time.Duration
	// ProbeInterval is the membership health-check period (default 2s;
	// negative disables the background prober — tests drive ProbeOnce).
	ProbeInterval time.Duration
	// Client performs node requests; it should carry no overall timeout.
	Client *http.Client
	// Logf receives membership and re-replication events (default log.Printf).
	Logf func(format string, args ...any)
	// Registry hosts the coordinator's metrics families (request counts,
	// fan-out mechanics); the coordinator's HTTP face serves it at
	// GET /metrics. Nil creates a private registry.
	Registry *obs.Registry
}

// nodeState is the coordinator's view of one member.
type nodeState struct {
	info   NodeInfo
	client *NodeClient
	// up is flipped by probes and by transport failures mid-request.
	up bool
	// stale maps shard -> the epoch the node last reported for it, for
	// shards the node serves at an older epoch than the coordinator
	// requires (it missed mutations while down). Stale shards are excluded
	// from fan-out until re-replication refreshes them.
	stale map[int]uint64
}

// Coordinator owns the cluster: the manifest placement, the cluster epoch
// and id allocator, membership health, and the fan-out/merge machinery that
// makes N nodes answer exactly like one in-process sharded engine.
type Coordinator struct {
	cfg CoordConfig
	man *Manifest

	// mu guards nodes' up/stale state, shardEpoch, extras, clusterEpoch,
	// nextID, and graphs.
	mu    sync.RWMutex
	nodes []*nodeState
	// shardEpoch is the epoch of the last committed mutation per shard.
	shardEpoch []uint64
	// extras lists re-replication owners per shard, beyond the manifest's.
	extras       [][]int
	clusterEpoch uint64
	nextID       graph.ID
	graphs       int
	spec         string

	// mutateMu serializes mutations: the coordinator is the single writer,
	// so epochs and ids are totally ordered across the cluster.
	mutateMu sync.Mutex

	start     time.Time
	stopProbe chan struct{}
	probeWG   sync.WaitGroup

	// Counters live on cfg.Registry so /stats and /metrics read the same
	// cells; the fields are the cells, fetched once at construction.
	reqQuery, reqStream, reqBatch, reqMutate, reqErrors  *obs.Counter
	partials, failovers, hedgesFired, hedgesWon          *obs.Counter
	rereplicated, staleRejected, rollbacks, staleRetries *obs.Counter

	// Per-node membership gauges, refreshed at scrape time by a collect
	// hook (see refreshNodeGauges), plus the federation failure gauge.
	nodeUp, nodeStale, nodeShards *obs.Family
	fedFailed                     *obs.Gauge
}

// ErrNoOwner means a shard had no reachable fresh owner.
var ErrNoOwner = errors.New("cluster: shard has no reachable owner")

// NewCoordinator connects to the manifest's nodes, seeds the id allocator
// and per-shard epochs from what they report, and starts the health prober.
// Unreachable nodes are tolerated: they join when the prober sees them.
func NewCoordinator(ctx context.Context, man *Manifest, cfg CoordConfig) (*Coordinator, error) {
	if err := man.Validate(); err != nil {
		return nil, err
	}
	if cfg.NodeTimeout == 0 {
		cfg.NodeTimeout = 10 * time.Second
	}
	if cfg.HedgeDelay == 0 {
		cfg.HedgeDelay = 2 * time.Second
	}
	if cfg.ProbeInterval == 0 {
		cfg.ProbeInterval = 2 * time.Second
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	c := &Coordinator{
		cfg:        cfg,
		man:        man,
		nodes:      make([]*nodeState, len(man.Nodes)),
		shardEpoch: make([]uint64, man.Shards),
		extras:     make([][]int, man.Shards),
		nextID:     0,
		start:      time.Now(),
		stopProbe:  make(chan struct{}),
	}
	req := cfg.Registry.Counter("sq_cluster_requests_total", "Coordinator requests by kind.", "kind")
	c.reqQuery = req.Counter("query")
	c.reqStream = req.Counter("stream")
	c.reqBatch = req.Counter("batch")
	c.reqMutate = req.Counter("mutate")
	c.reqErrors = req.Counter("errors")
	c.partials = cfg.Registry.Counter("sq_cluster_partials_total",
		"Queries answered with one or more shards missing.").Counter()
	c.failovers = cfg.Registry.Counter("sq_cluster_failovers_total",
		"Fan-out legs retried on another owner.").Counter()
	c.hedgesFired = cfg.Registry.Counter("sq_cluster_hedges_fired_total",
		"Duplicate legs fired after the hedge delay.").Counter()
	c.hedgesWon = cfg.Registry.Counter("sq_cluster_hedges_won_total",
		"Shards resolved by a hedged leg.").Counter()
	c.rereplicated = cfg.Registry.Counter("sq_cluster_rereplicated_total",
		"Shard loads performed to restore replication.").Counter()
	c.staleRejected = cfg.Registry.Counter("sq_cluster_stale_rejected_total",
		"Shard results rejected for reporting an old epoch.").Counter()
	c.rollbacks = cfg.Registry.Counter("sq_cluster_rollbacks_total",
		"Shards adopted at an older epoch because no fresh owner survived.").Counter()
	c.staleRetries = cfg.Registry.Counter("sq_cluster_stale_retries_total",
		"Streaming legs retried on the same node after a mutation aborted them.").Counter()
	c.nodeUp = cfg.Registry.Gauge("sq_cluster_node_up",
		"Whether the coordinator considers the node up (1) per its probes.", "node", "name")
	c.nodeStale = cfg.Registry.Gauge("sq_cluster_node_stale_shards",
		"Shards the node serves at an old epoch, excluded from fan-out.", "node", "name")
	c.nodeShards = cfg.Registry.Gauge("sq_cluster_node_shards",
		"Shards the node owns (manifest placement plus re-replication).", "node", "name")
	c.fedFailed = cfg.Registry.Gauge("sq_federate_failed_nodes",
		"Nodes whose /metrics scrape failed in the last federation request.").Gauge()
	cfg.Registry.OnCollect(c.refreshNodeGauges)
	for i, ni := range man.Nodes {
		c.nodes[i] = &nodeState{
			info:   ni,
			client: &NodeClient{Addr: ni.Addr, HTTP: cfg.Client},
			stale:  make(map[int]uint64),
		}
	}
	// Seed from whoever answers: the id allocator must clear every id any
	// node has ever homed, and per-shard epochs start at the maximum any
	// owner reports (a restarted cluster resumes its epoch history).
	for i, ns := range c.nodes {
		ictx, cancel := context.WithTimeout(ctx, cfg.NodeTimeout)
		info, err := ns.client.Info(ictx)
		cancel()
		if err != nil {
			cfg.Logf("cluster: node %s (%s) unreachable at startup: %v", ns.info.Name, ns.info.Addr, err)
			continue
		}
		ns.up = true
		if c.spec == "" {
			c.spec = info.Spec
		} else if info.Spec != c.spec {
			return nil, fmt.Errorf("cluster: node %s runs %q, cluster runs %q", ns.info.Name, info.Spec, c.spec)
		}
		if info.ShardCount != man.Shards {
			return nil, fmt.Errorf("cluster: node %s partitions into %d shards, manifest says %d", ns.info.Name, info.ShardCount, man.Shards)
		}
		if info.MaxGlobalID >= int64(c.nextID) {
			c.nextID = graph.ID(info.MaxGlobalID + 1)
		}
		for _, si := range info.Shards {
			if si.Epoch > c.shardEpoch[si.Shard] {
				c.shardEpoch[si.Shard] = si.Epoch
			}
		}
		_ = i
	}
	for _, e := range c.shardEpoch {
		if e > c.clusterEpoch {
			c.clusterEpoch = e
		}
	}
	c.recountGraphs(ctx)
	if cfg.ProbeInterval > 0 {
		c.probeWG.Add(1)
		go c.probeLoop()
	}
	return c, nil
}

// Close stops the health prober.
func (c *Coordinator) Close() {
	close(c.stopProbe)
	c.probeWG.Wait()
}

// Manifest returns the cluster topology.
func (c *Coordinator) Manifest() *Manifest { return c.man }

// Registry returns the coordinator's metrics registry.
func (c *Coordinator) Registry() *obs.Registry { return c.cfg.Registry }

// Spec returns the canonical method spec the nodes run.
func (c *Coordinator) Spec() string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.spec
}

// recountGraphs refreshes the advisory live-graph total from one fresh
// owner per shard.
func (c *Coordinator) recountGraphs(ctx context.Context) {
	counts := make(map[int]int, c.man.Shards)
	for _, ns := range c.nodes {
		if !ns.up {
			continue
		}
		ictx, cancel := context.WithTimeout(ctx, c.cfg.NodeTimeout)
		info, err := ns.client.Info(ictx)
		cancel()
		if err != nil {
			continue
		}
		for _, si := range info.Shards {
			if si.Epoch == c.shardEpoch[si.Shard] {
				counts[si.Shard] = si.Graphs
			}
		}
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	c.graphs = total
}

// owners returns shard s's owner node indexes, manifest placement first,
// then re-replication extras. Callers hold c.mu.
func (c *Coordinator) owners(s int) []int {
	base := c.man.Owners(s)
	if len(c.extras[s]) == 0 {
		return base
	}
	return append(append([]int{}, base...), c.extras[s]...)
}

// eligible returns the owner indexes fit to serve shard s right now: up and
// not stale. Callers hold c.mu.
func (c *Coordinator) eligible(s int) []int {
	var out []int
	for _, o := range c.owners(s) {
		ns := c.nodes[o]
		if !ns.up {
			continue
		}
		if _, isStale := ns.stale[s]; isStale {
			continue
		}
		out = append(out, o)
	}
	return out
}

// markDown flips a node down after a transport failure and marks every
// shard it owns as needing an epoch check at rejoin.
func (c *Coordinator) markDown(i int, cause error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ns := c.nodes[i]
	if !ns.up {
		return
	}
	ns.up = false
	c.cfg.Logf("cluster: node %s down: %v", ns.info.Name, cause)
}

// markStale records that node i serves shard s at reportedEpoch, older than
// required.
func (c *Coordinator) markStale(i, s int, reportedEpoch uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nodes[i].stale[s] = reportedEpoch
}

// isTransport reports an error that indicts the node's process (connection
// refused/reset, timeout at transport level) rather than this one request.
func isTransport(err error) bool {
	var ne *NodeError
	return !errors.As(err, &ne) && !errors.Is(err, context.Canceled) && !errors.Is(err, ErrLegStale)
}

// ---------------------------------------------------------------------------
// Query fan-out

// shardOutcome is one attempt's result for one shard.
type shardOutcome struct {
	shard int
	node  int
	hedge bool
	res   *ShardResult
	err   error
}

// QueryResult is a merged cluster answer.
type QueryResult struct {
	Candidates graph.IDSet
	Answers    graph.IDSet
	FilterUs   int64
	VerifyUs   int64
	// Produced/Verified sum the per-shard pipeline counters, so a merged
	// cluster answer reports its pipeline work like a single-process one.
	Produced     int
	Verified     int
	Partial      bool
	FailedShards []int
}

// Query fans gj across the shard owners and merges the per-shard results.
// Shards whose every owner is unreachable are reported in FailedShards with
// Partial set — a degraded answer is flagged, never silent.
func (c *Coordinator) Query(ctx context.Context, gj server.GraphJSON) (*QueryResult, error) {
	c.reqQuery.Add(1)
	resolved, failed, err := c.fanQuery(ctx, gj)
	if err != nil {
		c.reqErrors.Add(1)
		return nil, err
	}
	_, msp := obs.StartSpan(ctx, "merge")
	out := &QueryResult{Candidates: graph.IDSet{}, Answers: graph.IDSet{}}
	for _, r := range resolved {
		out.Candidates = append(out.Candidates, r.Candidates...)
		out.Answers = append(out.Answers, r.Answers...)
		out.FilterUs += r.FilterUs
		out.VerifyUs += r.VerifyUs
		out.Produced += r.Produced
		out.Verified += r.Verified
	}
	sort.Slice(out.Candidates, func(i, j int) bool { return out.Candidates[i] < out.Candidates[j] })
	sort.Slice(out.Answers, func(i, j int) bool { return out.Answers[i] < out.Answers[j] })
	if len(failed) > 0 {
		sort.Ints(failed)
		out.Partial = true
		out.FailedShards = failed
		c.partials.Add(1)
	}
	msp.Attr("shards", len(resolved))
	msp.End()
	return out, nil
}

// fanQuery runs the per-shard fan-out state machine: wave 0 groups shards
// by their first eligible owner; a failed leg fails each of its shards over
// to the next untried owner; after HedgeDelay, still-unresolved shards get
// a duplicate attempt on their next replica, first result winning. Stale
// results (epoch older than the shard requires) are rejected and failed
// over. Returns resolved per-shard results and the shards that exhausted
// every owner.
func (c *Coordinator) fanQuery(ctx context.Context, gj server.GraphJSON) (map[int]*ShardResult, []int, error) {
	c.mu.RLock()
	nShards := c.man.Shards
	required := append([]uint64{}, c.shardEpoch...)
	ownerSeq := make([][]int, nShards)
	for s := 0; s < nShards; s++ {
		ownerSeq[s] = c.eligible(s)
	}
	c.mu.RUnlock()

	resolved := make(map[int]*ShardResult, nShards)
	failedSet := make(map[int]bool)
	tried := make([]map[int]bool, nShards)
	inflight := make([]int, nShards)
	for s := range tried {
		tried[s] = make(map[int]bool)
	}
	// Each (shard, owner) pair is attempted at most once, so this buffer
	// bounds every send: attempt goroutines never block, and the final
	// wait below cannot deadlock.
	maxOutcomes := 0
	for s := 0; s < nShards; s++ {
		maxOutcomes += len(ownerSeq[s])
	}
	outcomes := make(chan shardOutcome, maxOutcomes)

	attemptCtx, cancelAttempts := context.WithCancel(ctx)
	var wg sync.WaitGroup
	defer func() {
		cancelAttempts()
		wg.Wait()
	}()

	launch := func(nodeIdx int, shards []int, hedge bool) {
		for _, s := range shards {
			tried[s][nodeIdx] = true
			inflight[s]++
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			// The leg span lives under the request's root span (attemptCtx
			// inherits ctx's values); the node's echoed subtree grafts under
			// it, and a leg cancelled because the fan-out already finished —
			// a hedged loser — is marked cancelled, not failed.
			sctx, lsp := obs.StartSpan(attemptCtx, "node:"+c.nodes[nodeIdx].info.Name)
			lsp.Attr("shards", shards)
			if hedge {
				lsp.Attr("hedge", true)
			}
			lctx, cancel := context.WithTimeout(sctx, c.cfg.NodeTimeout)
			defer cancel()
			resp, err := c.nodes[nodeIdx].client.Query(lctx, shards, gj)
			if err != nil {
				if attemptCtx.Err() != nil {
					lsp.Cancel()
				} else {
					lsp.Attr("error", err.Error())
					lsp.End()
				}
				if isTransport(err) && attemptCtx.Err() == nil {
					c.markDown(nodeIdx, err)
				}
				for _, s := range shards {
					outcomes <- shardOutcome{shard: s, node: nodeIdx, hedge: hedge, err: err}
				}
				return
			}
			lsp.Graft(resp.Trace)
			lsp.End()
			byShard := make(map[int]*ShardResult, len(resp.Results))
			for i := range resp.Results {
				byShard[resp.Results[i].Shard] = &resp.Results[i]
			}
			for _, s := range shards {
				if r, ok := byShard[s]; ok {
					outcomes <- shardOutcome{shard: s, node: nodeIdx, hedge: hedge, res: r}
				} else {
					outcomes <- shardOutcome{shard: s, node: nodeIdx, hedge: hedge,
						err: fmt.Errorf("node %s omitted shard %d", c.nodes[nodeIdx].info.Name, s)}
				}
			}
		}()
	}

	nextUntried := func(s int) int {
		for _, o := range ownerSeq[s] {
			if !tried[s][o] {
				return o
			}
		}
		return -1
	}

	// Wave 0: group shards by their first eligible owner so each node gets
	// one request covering all its shards.
	wave0 := make(map[int][]int)
	for s := 0; s < nShards; s++ {
		if len(ownerSeq[s]) == 0 {
			failedSet[s] = true
			continue
		}
		o := ownerSeq[s][0]
		wave0[o] = append(wave0[o], s)
	}
	for o, shards := range wave0 {
		launch(o, shards, false)
	}

	var hedgeCh <-chan time.Time
	if c.cfg.HedgeDelay > 0 {
		t := time.NewTimer(c.cfg.HedgeDelay)
		defer t.Stop()
		hedgeCh = t.C
	}

	for len(resolved)+len(failedSet) < nShards {
		select {
		case o := <-outcomes:
			inflight[o.shard]--
			if resolved[o.shard] != nil || failedSet[o.shard] {
				continue
			}
			if o.err == nil {
				if o.res.Epoch < required[o.shard] {
					c.staleRejected.Add(1)
					c.markStale(o.node, o.shard, o.res.Epoch)
					o.err = fmt.Errorf("node %s serves shard %d at epoch %d, need %d",
						c.nodes[o.node].info.Name, o.shard, o.res.Epoch, required[o.shard])
				} else {
					resolved[o.shard] = o.res
					if o.hedge {
						c.hedgesWon.Add(1)
					}
					continue
				}
			}
			if next := nextUntried(o.shard); next >= 0 {
				c.failovers.Add(1)
				launch(next, []int{o.shard}, false)
			} else if inflight[o.shard] == 0 {
				failedSet[o.shard] = true
			}
		case <-hedgeCh:
			hedgeCh = nil
			hedges := make(map[int][]int)
			for s := 0; s < nShards; s++ {
				if resolved[s] != nil || failedSet[s] {
					continue
				}
				if next := nextUntried(s); next >= 0 {
					hedges[next] = append(hedges[next], s)
				}
			}
			for o, shards := range hedges {
				c.hedgesFired.Add(1)
				launch(o, shards, true)
			}
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		}
	}
	var failed []int
	for s := range failedSet {
		failed = append(failed, s)
	}
	return resolved, failed, nil
}

// ---------------------------------------------------------------------------
// Streaming fan-out

// streamMsg is one message from a stream leg: an answer id, or a terminal
// (done or err) with the leg's pipeline accounting.
type streamMsg struct {
	id       graph.ID
	terminal bool
	err      error
	tail     StreamTail
}

// streamLeg is one live node stream covering a set of shards.
type streamLeg struct {
	node   int
	shards []int
	ch     chan streamMsg
	cancel context.CancelFunc
	head   graph.ID
}

// StreamStats is the terminal state of a cluster stream. Produced and
// Verified aggregate the node-side pipeline counters from the legs that
// ran to completion (a leg cancelled mid-stream never reports its tail),
// so they are best-effort observability: exact when the stream is
// consumed fully, a lower bound when it stops early.
type StreamStats struct {
	Matches      int
	Partial      bool
	FailedShards []int
	Produced     int64
	Verified     int64
}

// Stream fans gj out as one stream leg per first-owner node and k-way
// merges the legs into a single ascending global-id sequence, calling emit
// per answer. A leg that dies mid-stream is replaced per shard on the next
// owner, resumed strictly after the shard's last emitted id — the
// replacement re-yields exactly the unemitted suffix, so nothing is lost,
// duplicated, or reordered. Shards whose owners are exhausted end up in
// FailedShards with Partial set. emit returning false stops the stream.
func (c *Coordinator) Stream(ctx context.Context, gj server.GraphJSON, emit func(graph.ID) bool) (StreamStats, error) {
	c.reqStream.Add(1)
	st := StreamStats{}

	c.mu.RLock()
	nShards := c.man.Shards
	ownerSeq := make([][]int, nShards)
	for s := 0; s < nShards; s++ {
		ownerSeq[s] = c.eligible(s)
	}
	c.mu.RUnlock()

	tried := make([]map[int]bool, nShards)
	lastEmitted := make([]graph.ID, nShards)
	for s := range tried {
		tried[s] = make(map[int]bool)
		lastEmitted[s] = -1
	}
	failedSet := make(map[int]bool)

	legCtx, cancelLegs := context.WithCancel(ctx)
	var wg sync.WaitGroup
	defer func() {
		cancelLegs()
		wg.Wait()
	}()

	launch := func(nodeIdx int, shards []int, after graph.ID) *streamLeg {
		for _, s := range shards {
			tried[s][nodeIdx] = true
		}
		lctx, cancel := context.WithCancel(legCtx)
		leg := &streamLeg{node: nodeIdx, shards: shards, ch: make(chan streamMsg, 64), cancel: cancel}
		wg.Add(1)
		go func() {
			defer wg.Done()
			tail, err := c.nodes[nodeIdx].client.Stream(lctx, shards, gj, after, func(id graph.ID) bool {
				select {
				case leg.ch <- streamMsg{id: id}:
					return true
				case <-lctx.Done():
					return false
				}
			})
			if err != nil && isTransport(err) && legCtx.Err() == nil {
				c.markDown(nodeIdx, err)
			}
			select {
			case leg.ch <- streamMsg{terminal: true, err: err, tail: tail}:
			case <-lctx.Done():
			}
		}()
		return leg
	}

	// failover replaces a dead leg. A leg the node aborted because a
	// mutation landed under its chunked-locking stream (ErrLegStale) is
	// retried on the SAME node — the node is healthy and the resume
	// frontier skips everything already emitted — bounded per shard so a
	// mutation storm degrades to normal failover instead of livelock.
	// Any other death restarts each shard on its next untried owner,
	// resumed after that shard's last emitted id.
	const maxStaleRetries = 8
	staleRetries := make([]int, nShards)
	var legs []*streamLeg
	failover := func(leg *streamLeg, cause error) {
		stale := errors.Is(cause, ErrLegStale)
		for _, s := range leg.shards {
			if stale && staleRetries[s] < maxStaleRetries {
				staleRetries[s]++
				c.staleRetries.Add(1)
				legs = append(legs, launch(leg.node, []int{s}, lastEmitted[s]))
				continue
			}
			next := -1
			for _, o := range ownerSeq[s] {
				if !tried[s][o] {
					next = o
					break
				}
			}
			if next < 0 {
				failedSet[s] = true
				continue
			}
			c.failovers.Add(1)
			legs = append(legs, launch(next, []int{s}, lastEmitted[s]))
		}
	}

	// advance pulls leg's next head, skipping ids at or below the merge
	// frontier (a replacement leg may replay a prefix). Returns false when
	// the leg terminated; a terminal error triggers failover.
	frontier := graph.ID(-1)
	advance := func(leg *streamLeg) (bool, error) {
		for {
			select {
			case m := <-leg.ch:
				if m.terminal {
					leg.cancel()
					st.Produced += m.tail.Produced
					st.Verified += m.tail.Verified
					if m.err != nil {
						failover(leg, m.err)
					}
					return false, nil
				}
				if m.id <= frontier {
					continue
				}
				leg.head = m.id
				return true, nil
			case <-ctx.Done():
				return false, ctx.Err()
			}
		}
	}

	wave0 := make(map[int][]int)
	for s := 0; s < nShards; s++ {
		if len(ownerSeq[s]) == 0 {
			failedSet[s] = true
			continue
		}
		wave0[ownerSeq[s][0]] = append(wave0[ownerSeq[s][0]], s)
	}
	for o, shards := range wave0 {
		legs = append(legs, launch(o, shards, -1))
	}

	// Prime heads; legs that die here are failed over by advance itself
	// (failover appends to legs, which this loop re-checks via the index).
	heads := legs[:0:0]
	for i := 0; i < len(legs); i++ {
		ok, err := advance(legs[i])
		if err != nil {
			return st, err
		}
		if ok {
			heads = append(heads, legs[i])
		}
	}

	for len(heads) > 0 {
		// Emit the minimum head; shards are disjoint so ids never tie.
		min := 0
		for i := 1; i < len(heads); i++ {
			if heads[i].head < heads[min].head {
				min = i
			}
		}
		leg := heads[min]
		id := leg.head
		if !emit(id) {
			return st, nil
		}
		st.Matches++
		frontier = id
		lastEmitted[engine.ShardOf(id, nShards)] = id
		before := len(legs)
		ok, err := advance(leg)
		if err != nil {
			return st, err
		}
		if !ok {
			heads = append(heads[:min], heads[min+1:]...)
		}
		// Prime any replacement legs failover just launched.
		for i := before; i < len(legs); i++ {
			ok, err := advance(legs[i])
			if err != nil {
				return st, err
			}
			if ok {
				heads = append(heads, legs[i])
			}
		}
	}
	if len(failedSet) > 0 {
		st.Partial = true
		for s := range failedSet {
			st.FailedShards = append(st.FailedShards, s)
		}
		sort.Ints(st.FailedShards)
		c.partials.Add(1)
	}
	return st, nil
}

// ---------------------------------------------------------------------------
// Mutations

// Add routes a new graph to every owner of its shard. The coordinator
// assigns the id and epoch under the mutation lock, so mutations are
// totally ordered cluster-wide; the mutation commits when at least one
// owner applies it, and owners that missed it are marked stale for
// re-replication.
func (c *Coordinator) Add(ctx context.Context, gj server.GraphJSON) (server.MutationResponse, error) {
	c.reqMutate.Add(1)
	c.mutateMu.Lock()
	defer c.mutateMu.Unlock()

	c.mu.RLock()
	id := c.nextID
	epoch := c.clusterEpoch + 1
	s := engine.ShardOf(id, c.man.Shards)
	targets := c.eligible(s)
	prevEpoch := c.shardEpoch[s]
	c.mu.RUnlock()

	acked, failed := c.routeMutation(ctx, targets, func(nc *NodeClient) error {
		_, err := nc.Add(ctx, AddRequest{ID: id, Epoch: epoch, Graph: gj})
		return err
	})
	if acked == 0 {
		c.reqErrors.Add(1)
		return server.MutationResponse{}, fmt.Errorf("%w: shard %d (graph %d not added)", ErrNoOwner, s, id)
	}
	c.mu.Lock()
	c.nextID = id + 1
	c.clusterEpoch = epoch
	c.shardEpoch[s] = epoch
	c.graphs++
	for _, o := range failed {
		c.nodes[o].stale[s] = prevEpoch
	}
	graphs := c.graphs
	c.mu.Unlock()
	return server.MutationResponse{ID: id, Epoch: epoch, Graphs: graphs}, nil
}

// Remove tombstones a graph on every owner of its shard. All-fresh-owners
// agreeing the id is unknown surfaces as engine.ErrNoSuchGraph.
func (c *Coordinator) Remove(ctx context.Context, id graph.ID) (server.MutationResponse, error) {
	c.reqMutate.Add(1)
	c.mutateMu.Lock()
	defer c.mutateMu.Unlock()

	c.mu.RLock()
	epoch := c.clusterEpoch + 1
	s := engine.ShardOf(id, c.man.Shards)
	targets := c.eligible(s)
	prevEpoch := c.shardEpoch[s]
	c.mu.RUnlock()

	unknown := 0
	acked, failed := c.routeMutation(ctx, targets, func(nc *NodeClient) error {
		_, err := nc.Remove(ctx, id, epoch)
		var ne *NodeError
		if errors.As(err, &ne) && ne.Status == http.StatusNotFound {
			unknown++
		}
		return err
	})
	if acked == 0 {
		c.reqErrors.Add(1)
		if unknown > 0 && unknown == len(targets) {
			return server.MutationResponse{}, fmt.Errorf("%w: graph %d", engine.ErrNoSuchGraph, id)
		}
		return server.MutationResponse{}, fmt.Errorf("%w: shard %d (graph %d not removed)", ErrNoOwner, s, id)
	}
	c.mu.Lock()
	c.clusterEpoch = epoch
	c.shardEpoch[s] = epoch
	if c.graphs > 0 {
		c.graphs--
	}
	for _, o := range failed {
		c.nodes[o].stale[s] = prevEpoch
	}
	graphs := c.graphs
	c.mu.Unlock()
	return server.MutationResponse{ID: id, Epoch: epoch, Graphs: graphs}, nil
}

// routeMutation applies op to each target owner sequentially (the mutation
// lock serializes writers anyway), returning the ack count and the node
// indexes that failed with a non-404 error. A 404 (unknown graph) is
// neither an ack nor a staleness signal.
func (c *Coordinator) routeMutation(ctx context.Context, targets []int, op func(*NodeClient) error) (int, []int) {
	acked := 0
	var failed []int
	for _, o := range targets {
		octx, cancel := context.WithTimeout(ctx, c.cfg.NodeTimeout)
		err := op(c.nodes[o].client)
		cancel()
		_ = octx
		if err == nil {
			acked++
			continue
		}
		var ne *NodeError
		if errors.As(err, &ne) && ne.Status == http.StatusNotFound {
			continue
		}
		if isTransport(err) {
			c.markDown(o, err)
		}
		failed = append(failed, o)
	}
	return acked, failed
}

// ---------------------------------------------------------------------------
// Membership and re-replication

func (c *Coordinator) probeLoop() {
	defer c.probeWG.Done()
	t := time.NewTicker(c.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			ctx, cancel := context.WithTimeout(context.Background(), c.cfg.NodeTimeout)
			c.ProbeOnce(ctx)
			cancel()
		case <-c.stopProbe:
			return
		}
	}
}

// ProbeOnce health-checks every node, reconciles membership transitions,
// and repairs stale or under-replicated shards. The background prober calls
// it periodically; tests call it directly.
func (c *Coordinator) ProbeOnce(ctx context.Context) {
	type probe struct {
		i    int
		up   bool
		info InfoResponse
	}
	results := make([]probe, len(c.nodes))
	var wg sync.WaitGroup
	for i, ns := range c.nodes {
		wg.Add(1)
		go func(i int, ns *nodeState) {
			defer wg.Done()
			pctx, cancel := context.WithTimeout(ctx, c.cfg.NodeTimeout)
			defer cancel()
			if err := ns.client.Ready(pctx); err != nil {
				results[i] = probe{i: i}
				return
			}
			info, err := ns.client.Info(pctx)
			if err != nil {
				results[i] = probe{i: i}
				return
			}
			results[i] = probe{i: i, up: true, info: info}
		}(i, ns)
	}
	wg.Wait()

	c.mu.Lock()
	for _, p := range results {
		ns := c.nodes[p.i]
		wasUp := ns.up
		ns.up = p.up
		if !p.up {
			if wasUp {
				c.cfg.Logf("cluster: node %s down (probe failed)", ns.info.Name)
			}
			continue
		}
		if !wasUp {
			c.cfg.Logf("cluster: node %s up", ns.info.Name)
		}
		// Reconcile the node's reported shards against required epochs: a
		// shard at an older epoch is stale; a required shard the node no
		// longer serves is stale at epoch 0 (it must be re-loaded); a fresh
		// one clears any stale mark.
		reported := make(map[int]uint64, len(p.info.Shards))
		for _, si := range p.info.Shards {
			reported[si.Shard] = si.Epoch
		}
		owned := make(map[int]bool)
		for s := 0; s < c.man.Shards; s++ {
			for _, o := range c.owners(s) {
				if o == p.i {
					owned[s] = true
				}
			}
		}
		for s := range owned {
			e, has := reported[s]
			switch {
			case has && e >= c.shardEpoch[s]:
				delete(ns.stale, s)
			case has:
				ns.stale[s] = e
			default:
				ns.stale[s] = 0
				// Track absence distinctly from epoch 0: an unserved shard
				// cannot satisfy even epoch-0 reads, so keep it stale until
				// loaded. (Epoch 0 with no mutations is repaired by a local
				// rebuild below.)
				if c.shardEpoch[s] == 0 {
					ns.stale[s] = ^uint64(0) // sentinel: must load, even at epoch 0
				}
			}
		}
	}
	c.mu.Unlock()

	c.repair(ctx)
}

// repair restores the replication invariant: every shard fresh on every up
// owner, Replication owners when membership allows. Stale owners reload
// from a fresh owner's dump (or rebuild locally when the shard was never
// mutated); a shard with no fresh owner left but a reachable stale one is
// adopted at the stale epoch — data past it is lost, which only happens
// when replication couldn't cover the failure, and is counted and logged
// rather than silent.
func (c *Coordinator) repair(ctx context.Context) {
	type job struct {
		node  int
		req   LoadRequest
		extra bool
	}
	var jobs []job

	c.mu.Lock()
	for s := 0; s < c.man.Shards; s++ {
		owners := c.owners(s)
		var fresh []int
		for _, o := range owners {
			ns := c.nodes[o]
			if !ns.up {
				continue
			}
			if _, isStale := ns.stale[s]; !isStale {
				fresh = append(fresh, o)
			}
		}
		if len(fresh) == 0 {
			// No fresh owner: adopt the best reachable stale epoch so the
			// shard serves again (bounded data loss, counted), or wait for
			// one to come back.
			best, bestEpoch := -1, uint64(0)
			for _, o := range owners {
				ns := c.nodes[o]
				if !ns.up {
					continue
				}
				if e, isStale := ns.stale[s]; isStale && e != ^uint64(0) && (best == -1 || e > bestEpoch) {
					best, bestEpoch = o, e
				}
			}
			if best >= 0 && bestEpoch < c.shardEpoch[s] {
				c.cfg.Logf("cluster: shard %d has no owner at epoch %d; adopting node %s at epoch %d (mutations past it lost)",
					s, c.shardEpoch[s], c.nodes[best].info.Name, bestEpoch)
				c.shardEpoch[s] = bestEpoch
				delete(c.nodes[best].stale, s)
				c.rollbacks.Add(1)
				fresh = []int{best}
			} else if best < 0 && c.shardEpoch[s] == 0 {
				// Never mutated: any up owner can rebuild it locally.
				for _, o := range owners {
					if c.nodes[o].up {
						jobs = append(jobs, job{node: o, req: LoadRequest{Shard: s, Epoch: 0}})
						break
					}
				}
				continue
			} else {
				continue
			}
		}
		src := c.nodes[fresh[0]].info.Addr
		// Refresh stale up owners from a fresh one.
		for _, o := range owners {
			ns := c.nodes[o]
			if !ns.up {
				continue
			}
			if _, isStale := ns.stale[s]; isStale {
				req := LoadRequest{Shard: s, Epoch: c.shardEpoch[s], From: src}
				if c.shardEpoch[s] == 0 {
					req.From = "" // never mutated: local rebuild is cheaper
				}
				jobs = append(jobs, job{node: o, req: req})
			}
		}
		// Under-replicated with spare up nodes: place an extra replica on
		// the next non-owner in the ring.
		if len(fresh) < c.man.Replication {
			isOwner := make(map[int]bool, len(owners))
			for _, o := range owners {
				isOwner[o] = true
			}
			for r := 0; r < len(c.nodes); r++ {
				cand := (s + r) % len(c.nodes)
				if isOwner[cand] || !c.nodes[cand].up {
					continue
				}
				req := LoadRequest{Shard: s, Epoch: c.shardEpoch[s], From: src}
				if c.shardEpoch[s] == 0 {
					req.From = ""
				}
				jobs = append(jobs, job{node: cand, req: req, extra: true})
				break
			}
		}
	}
	c.mu.Unlock()

	for _, j := range jobs {
		jctx, cancel := context.WithTimeout(ctx, c.cfg.NodeTimeout)
		ack, err := c.nodes[j.node].client.Load(jctx, j.req)
		cancel()
		if err != nil {
			c.cfg.Logf("cluster: loading shard %d onto %s: %v", j.req.Shard, c.nodes[j.node].info.Name, err)
			continue
		}
		c.rereplicated.Add(1)
		c.mu.Lock()
		delete(c.nodes[j.node].stale, j.req.Shard)
		if ack.Epoch < c.shardEpoch[j.req.Shard] {
			// The source moved on mid-copy; the prober will retry.
			c.nodes[j.node].stale[j.req.Shard] = ack.Epoch
		} else if j.extra {
			present := false
			for _, e := range c.extras[j.req.Shard] {
				if e == j.node {
					present = true
				}
			}
			if !present {
				c.extras[j.req.Shard] = append(c.extras[j.req.Shard], j.node)
			}
		}
		c.mu.Unlock()
		c.cfg.Logf("cluster: shard %d loaded onto %s at epoch %d", j.req.Shard, c.nodes[j.node].info.Name, ack.Epoch)
	}
}

// ---------------------------------------------------------------------------
// Introspection

// Stats snapshots the cluster state for /stats and /cluster.
func (c *Coordinator) Stats() ClusterStats {
	c.mu.RLock()
	defer c.mu.RUnlock()
	st := ClusterStats{
		UptimeSeconds: time.Since(c.start).Seconds(),
		Spec:          c.spec,
		Shards:        c.man.Shards,
		Replication:   c.man.Replication,
		Epoch:         c.clusterEpoch,
		Graphs:        c.graphs,
		Requests: ClusterRequests{
			Query:  c.reqQuery.Value(),
			Stream: c.reqStream.Value(),
			Batch:  c.reqBatch.Value(),
			Mutate: c.reqMutate.Value(),
			Errors: c.reqErrors.Value(),
		},
		Fanout: FanoutStats{
			Partials:      c.partials.Value(),
			Failovers:     c.failovers.Value(),
			HedgesFired:   c.hedgesFired.Value(),
			HedgesWon:     c.hedgesWon.Value(),
			Rereplicated:  c.rereplicated.Value(),
			StaleRejected: c.staleRejected.Value(),
			StaleRetries:  c.staleRetries.Value(),
			Rollbacks:     c.rollbacks.Value(),
		},
	}
	for i, ns := range c.nodes {
		row := NodeStatus{Name: ns.info.Name, Addr: ns.info.Addr, Up: ns.up}
		for s := 0; s < c.man.Shards; s++ {
			for _, o := range c.owners(s) {
				if o == i {
					row.Shards = append(row.Shards, s)
					break
				}
			}
		}
		for s := range ns.stale {
			row.Stale = append(row.Stale, s)
		}
		sort.Ints(row.Stale)
		st.Nodes = append(st.Nodes, row)
	}
	return st
}
