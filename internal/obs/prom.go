package obs

import (
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// escapeLabel escapes a label value per the Prometheus text format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// labelString renders {k="v",...}; extra appends one more pair (used for
// le on histogram buckets). Returns "" when there is nothing to render.
func labelString(names, values []string, extraK, extraV string) string {
	if len(names) == 0 && extraK == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		// Quote by hand: %q would re-escape the backslashes escapeLabel
		// just produced (and apply Go escapes the format does not define).
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraK != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraK)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraV))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// formatFloat renders a float the way Prometheus expects (shortest exact).
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// WritePrometheus writes every family in the registry in the Prometheus
// text exposition format (version 0.0.4), families sorted by name, cells
// by label values, so the output is stable and diffable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, hook := range r.collectHooks() {
		hook()
	}
	var err error
	pf := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	for _, f := range r.families() {
		if f.help != "" {
			pf("# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		}
		pf("# TYPE %s %s\n", f.name, f.kind)
		f.Cells(func(values []string, cell any) {
			switch c := cell.(type) {
			case *Counter:
				pf("%s%s %d\n", f.name, labelString(f.labels, values, "", ""), c.Value())
			case *Gauge:
				pf("%s%s %d\n", f.name, labelString(f.labels, values, "", ""), c.Value())
			case *FloatGauge:
				pf("%s%s %s\n", f.name, labelString(f.labels, values, "", ""), formatFloat(c.Value()))
			case *Histogram:
				cum, total, sum := c.snapshot()
				for i, bound := range c.bounds {
					pf("%s_bucket%s %d\n", f.name,
						labelString(f.labels, values, "le", formatFloat(bound)), cum[i])
				}
				pf("%s_bucket%s %d\n", f.name, labelString(f.labels, values, "le", "+Inf"), total)
				pf("%s_sum%s %s\n", f.name, labelString(f.labels, values, "", ""), formatFloat(sum))
				pf("%s_count%s %d\n", f.name, labelString(f.labels, values, "", ""), total)
			}
		})
	}
	return err
}

// Handler serves the registry at GET /metrics in the text exposition
// format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
