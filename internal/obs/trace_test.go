package obs

import (
	"context"
	"encoding/json"
	"testing"
	"time"
)

// TestTraceTree builds a small trace and checks the exported tree nests
// children under parents with attrs and cancellation preserved.
func TestTraceTree(t *testing.T) {
	tr := NewTrace()
	root := tr.StartSpan(nil, "query")
	ctx := ContextWithSpan(context.Background(), root)

	fctx, filter := StartSpan(ctx, "filter")
	filter.Attr("produced", 42)
	if SpanFromContext(fctx) != filter {
		t.Fatal("context does not carry the child span")
	}
	filter.End()

	_, verify := StartSpan(ctx, "verify")
	verify.Cancel()
	root.End()

	tree := tr.Tree()
	if tree.TraceID != tr.ID() || tree.Name != "query" {
		t.Fatalf("root = %q trace %q, want query/%s", tree.Name, tree.TraceID, tr.ID())
	}
	if len(tree.Children) != 2 {
		t.Fatalf("root has %d children, want 2", len(tree.Children))
	}
	if tree.Children[0].Name != "filter" || tree.Children[0].Attrs["produced"] != 42 {
		t.Errorf("filter child wrong: %+v", tree.Children[0])
	}
	if !tree.Children[1].Cancelled {
		t.Errorf("verify span not marked cancelled")
	}
	if _, err := json.Marshal(tree); err != nil {
		t.Fatalf("tree not JSON-marshalable: %v", err)
	}
}

// TestNilSpanSafety: every instrumentation call must be a no-op without a
// trace — the untraced hot path.
func TestNilSpanSafety(t *testing.T) {
	ctx := context.Background()
	ctx2, s := StartSpan(ctx, "anything")
	if s != nil || ctx2 != ctx {
		t.Fatal("StartSpan without a trace must return (ctx, nil)")
	}
	s.End()
	s.Cancel()
	s.Attr("k", "v")
	s.Graft(&SpanTree{})
	if s.Trace().ID() != "" {
		t.Fatal("nil trace ID must be empty")
	}
	var tr *Trace
	if tr.Tree() != nil {
		t.Fatal("nil trace Tree must be nil")
	}
}

// TestGraft links a remote subtree under a local span, as the coordinator
// does with node-echoed spans.
func TestGraft(t *testing.T) {
	tr := NewTrace()
	root := tr.StartSpan(nil, "cluster-query")
	leg := tr.StartSpan(root, "node:n1")
	leg.Graft(&SpanTree{TraceID: tr.ID(), Node: "n1", Name: "node-query", DurUs: 10})
	leg.End()
	root.End()

	tree := tr.Tree()
	legT := tree.Children[0]
	if len(legT.Children) != 1 || legT.Children[0].Node != "n1" {
		t.Fatalf("grafted subtree missing: %+v", legT)
	}
}

// TestTraceIDFromHeader accepts hex tokens and rejects garbage.
func TestTraceIDFromHeader(t *testing.T) {
	id := NewTrace().ID()
	if got := TraceIDFromHeader(id); got != id {
		t.Errorf("own ID rejected: %q", got)
	}
	for _, bad := range []string{"", "xyz!", "abc def", string(make([]byte, 80))} {
		if TraceIDFromHeader(bad) != "" {
			t.Errorf("accepted invalid header %q", bad)
		}
	}
}

// TestUnendedSpanExports: exporting a live trace reports the duration so
// far instead of zero.
func TestUnendedSpanExports(t *testing.T) {
	tr := NewTrace()
	tr.StartSpan(nil, "open")
	time.Sleep(2 * time.Millisecond)
	if d := tr.Tree().DurUs; d <= 0 {
		t.Errorf("unended span exported dur %dus, want > 0", d)
	}
}
