package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestHistogramBucketBoundaries pins the le semantics: a value equal to a
// bound lands in that bound's bucket, a value just above in the next, and
// values beyond the last bound in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.0, 1.0001, 2.0, 3.9, 4.0, 4.0001, 100} {
		h.Observe(v)
	}
	want := []int64{2, 2, 2, 2} // (-inf,1], (1,2], (2,4], (4,+inf)
	for i, w := range want {
		if got := h.counts[i].Load(); got != w {
			t.Errorf("bucket %d: count %d, want %d", i, got, w)
		}
	}
	if h.Count() != 8 {
		t.Errorf("count %d, want 8", h.Count())
	}
	wantSum := 0.5 + 1 + 1.0001 + 2 + 3.9 + 4 + 4.0001 + 100
	if math.Abs(h.Sum()-wantSum) > 1e-9 {
		t.Errorf("sum %g, want %g", h.Sum(), wantSum)
	}
}

// TestHistogramQuantile checks interpolation inside a bucket and the +Inf
// clamp.
func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 4})
	for i := 0; i < 100; i++ {
		h.Observe(1.5) // all mass in (1,2]
	}
	if q := h.Quantile(0.5); q < 1 || q > 2 {
		t.Errorf("p50 %g outside the (1,2] bucket", q)
	}
	// p99 of a distribution living beyond the last bound clamps to it.
	h2 := NewHistogram([]float64{1, 2, 4})
	for i := 0; i < 10; i++ {
		h2.Observe(50)
	}
	if q := h2.Quantile(0.99); q != 4 {
		t.Errorf("p99 in +Inf bucket = %g, want clamp to 4", q)
	}
	if q := NewHistogram(nil).Quantile(0.5); q != 0 {
		t.Errorf("empty histogram quantile %g, want 0", q)
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines and
// checks no observation is lost (run under -race in CI).
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogramEWMA(DefBuckets, 0.2, 3)
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i%100) / 1000)
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Errorf("count %d, want %d", h.Count(), workers*per)
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
	}
	if cum != workers*per {
		t.Errorf("bucket counts sum to %d, want %d", cum, workers*per)
	}
	if n, mean := h.EWMA(); n != workers*per || mean <= 0 || mean >= 0.1 {
		t.Errorf("ewma n=%d mean=%g, want n=%d and mean in (0, 0.1)", n, mean, workers*per)
	}
}

// TestHistogramEWMAWarmup pins the cost-model semantics the router relies
// on: plain running mean for the first warm observations, then decay.
func TestHistogramEWMAWarmup(t *testing.T) {
	h := NewHistogramEWMA(nil, 0.5, 2)
	h.Observe(1)
	h.Observe(3)
	if _, mean := h.EWMA(); mean != 2 {
		t.Fatalf("warmup mean %g, want running mean 2", mean)
	}
	h.Observe(4) // 2 + 0.5*(4-2) = 3
	if _, mean := h.EWMA(); mean != 3 {
		t.Fatalf("post-warmup mean %g, want 3", mean)
	}
	h.SeedEWMA(10, 0.25)
	if n, mean := h.EWMA(); n != 10 || mean != 0.25 {
		t.Fatalf("seeded ewma (%d, %g), want (10, 0.25)", n, mean)
	}
}

// TestRegistryFamilies checks idempotent registration and cell reuse.
func TestRegistryFamilies(t *testing.T) {
	r := NewRegistry()
	f1 := r.Counter("sq_test_total", "help", "method")
	f2 := r.Counter("sq_test_total", "other help", "method")
	if f1 != f2 {
		t.Fatal("re-registration returned a different family")
	}
	c := f1.Counter("grapes")
	c.Add(3)
	if got := f2.Counter("grapes").Value(); got != 3 {
		t.Errorf("cell not shared: %d, want 3", got)
	}
	if f1.Counter("gcode") == c {
		t.Error("distinct label values share a cell")
	}
}

// TestWritePrometheus checks the exposition shape: TYPE lines, labeled
// samples, cumulative histogram buckets with +Inf, sum and count.
func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("sq_requests_total", "requests", "endpoint").Counter("query").Add(7)
	r.Gauge("sq_inflight", "inflight").Gauge().Set(2)
	h := r.Histogram("sq_latency_seconds", "latency", []float64{0.1, 1}, "method")
	h.Histogram("grapes").Observe(0.05)
	h.Histogram("grapes").Observe(0.5)
	h.Histogram("grapes").Observe(5)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE sq_requests_total counter",
		`sq_requests_total{endpoint="query"} 7`,
		"# TYPE sq_inflight gauge",
		"sq_inflight 2",
		"# TYPE sq_latency_seconds histogram",
		`sq_latency_seconds_bucket{method="grapes",le="0.1"} 1`,
		`sq_latency_seconds_bucket{method="grapes",le="1"} 2`,
		`sq_latency_seconds_bucket{method="grapes",le="+Inf"} 3`,
		`sq_latency_seconds_sum{method="grapes"} 5.55`,
		`sq_latency_seconds_count{method="grapes"} 3`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n%s", want, out)
		}
	}
}
