// Package obs is the repo's dependency-free observability core: a metrics
// registry (atomic counters, gauges, fixed-bucket latency histograms with
// quantile estimation, all groupable into labeled families), a Prometheus
// text-exposition writer, and a lightweight per-query trace/span model that
// crosses process boundaries through the X-SQ-Trace header.
//
// Everything is safe for concurrent use. The hot path — Counter.Inc,
// Histogram.Observe — is a handful of atomic operations; families resolve
// label cells through a read-locked map and callers that care cache the
// resolved cell.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing int64.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the exposition to stay meaningful).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable int64 (inflight requests, live graphs, queue depth).
type Gauge struct{ v atomic.Int64 }

// FloatGauge is a settable float64 gauge (ratios, seconds). It exposes as a
// plain Prometheus gauge; the separate type keeps the int64 Gauge hot path
// free of float bit tricks.
type FloatGauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *FloatGauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *FloatGauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the value by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// AddGet moves the value by n and returns the new value atomically — for
// gauges that double as control state (an admission count checked against
// a limit).
func (g *Gauge) AddGet(n int64) int64 { return g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefBuckets are the default latency bucket upper bounds in seconds,
// spanning 10µs (a cache hit) to 10s (a pathological verification), roughly
// log-spaced. Prometheus `le` semantics: a bucket counts observations <=
// its bound; an implicit +Inf bucket catches the rest.
var DefBuckets = []float64{
	1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket histogram of float64 observations (latencies
// in seconds by convention). Recording is lock-free; quantiles are
// estimated by linear interpolation inside the bucket holding the rank.
//
// A histogram can additionally maintain an exponentially weighted moving
// average of its observations (see NewHistogramEWMA): this is what lets the
// router's learned cost model and the exported latency series share one
// cell per (bucket, method) instead of double-counting.
type Histogram struct {
	bounds  []float64      // ascending upper bounds; len(counts) == len(bounds)+1
	counts  []atomic.Int64 // counts[i] observes v <= bounds[i]; last is +Inf
	total   atomic.Int64
	sumBits atomic.Uint64 // float64 bits of the running sum, CAS-updated

	// EWMA state; alpha == 0 disables it. The mean warms up as a plain
	// running mean for the first warm observations, then decays with alpha —
	// the exact semantics the router's cost model had before it moved here.
	alpha float64
	warm  int64
	ewma  struct {
		sync.Mutex
		n    int64
		mean float64
	}
}

// NewHistogram returns a histogram over the given ascending bucket bounds
// (DefBuckets when nil).
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// NewHistogramEWMA is NewHistogram plus an attached EWMA: a running mean
// for the first warm observations, then mean += alpha*(v-mean).
func NewHistogramEWMA(bounds []float64, alpha float64, warm int) *Histogram {
	h := NewHistogram(bounds)
	h.alpha, h.warm = alpha, int64(warm)
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v, i.e. the le bucket
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	if h.alpha > 0 {
		h.ewma.Lock()
		h.ewma.n++
		if h.ewma.n <= h.warm {
			h.ewma.mean += (v - h.ewma.mean) / float64(h.ewma.n)
		} else {
			h.ewma.mean += h.alpha * (v - h.ewma.mean)
		}
		h.ewma.Unlock()
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// EWMA returns the observation count and current EWMA mean (0, 0 before
// any observation or when EWMA is disabled).
func (h *Histogram) EWMA() (n int64, mean float64) {
	h.ewma.Lock()
	defer h.ewma.Unlock()
	return h.ewma.n, h.ewma.mean
}

// SeedEWMA overwrites the EWMA state; used to restore a persisted cost
// model. It does not touch the bucket counts — a restored mean carries no
// distribution.
func (h *Histogram) SeedEWMA(n int64, mean float64) {
	h.ewma.Lock()
	h.ewma.n, h.ewma.mean = n, mean
	h.ewma.Unlock()
}

// Quantile estimates the q-quantile by linear interpolation within the
// bucket containing the rank. q is clamped into [0, 1] (a NaN q reads as
// 0); values in the +Inf bucket clamp to the largest finite bound; an empty
// histogram returns 0. The result is always finite — dashboards divide by
// and render these numbers directly.
func (h *Histogram) Quantile(q float64) float64 {
	cum, total, _ := h.snapshot()
	return QuantileFromCells(h.bounds, cum, total, q)
}

// QuantileFromCells estimates a quantile from the Prometheus exposition
// shape of a histogram: ascending finite bucket bounds, cumulative le
// counts (one per bound), and the total count including the +Inf bucket.
// It never returns NaN or an infinity: q is clamped into [0, 1] (NaN reads
// as 0), an empty histogram returns 0, and mass in the +Inf bucket clamps
// to the largest finite bound.
func QuantileFromCells(bounds []float64, cum []int64, total int64, q float64) float64 {
	if len(bounds) == 0 || len(cum) != len(bounds) || total <= 0 {
		return 0
	}
	if !(q >= 0) { // catches q < 0 and NaN
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var prev int64
	for i, c := range cum {
		n := c - prev
		if float64(c) >= rank && n > 0 {
			lo := 0.0
			if i > 0 {
				lo = bounds[i-1]
			}
			return lo + (bounds[i]-lo)*(rank-float64(prev))/float64(n)
		}
		prev = c
	}
	// Rank falls in the +Inf bucket (or all mass does): clamp.
	return bounds[len(bounds)-1]
}

// snapshot returns cumulative le counts (one per finite bound, ascending),
// the total including +Inf, and the sum — the Prometheus exposition shape.
func (h *Histogram) snapshot() (cum []int64, total int64, sum float64) {
	cum = make([]int64, len(h.bounds))
	var run int64
	for i := range h.bounds {
		run += h.counts[i].Load()
		cum[i] = run
	}
	return cum, run + h.counts[len(h.bounds)].Load(), h.Sum()
}

// Snapshot returns the histogram's bucket bounds, cumulative le counts,
// total count (including the +Inf bucket), and sum — the exposition shape,
// for callers computing windowed quantiles from successive snapshots.
func (h *Histogram) Snapshot() (bounds []float64, cum []int64, total int64, sum float64) {
	cum, total, sum = h.snapshot()
	return h.bounds, cum, total, sum
}

// Kind discriminates family types in the registry.
type Kind int

// Family kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	default:
		return "histogram"
	}
}

// Family is a named group of metrics of one kind sharing a label schema:
// sq_query_duration_seconds{method=...} is one family with one histogram
// cell per method. A family with no labels has a single anonymous cell.
type Family struct {
	name   string
	help   string
	kind   Kind
	labels []string

	// histogram construction parameters
	bounds []float64
	alpha  float64
	warm   int

	flt bool // KindGauge family with *FloatGauge cells

	mu    sync.RWMutex
	cells map[string]any      // label-key -> *Counter | *Gauge | *FloatGauge | *Histogram
	vals  map[string][]string // label-key -> label values (for exposition)
}

// labelKey joins label values unambiguously (values may not contain \x1f,
// which no method name, shard number, or policy name does).
func labelKey(values []string) string {
	switch len(values) {
	case 0:
		return ""
	case 1:
		return values[0]
	}
	n := len(values) - 1
	for _, v := range values {
		n += len(v)
	}
	b := make([]byte, 0, n)
	for i, v := range values {
		if i > 0 {
			b = append(b, '\x1f')
		}
		b = append(b, v...)
	}
	return string(b)
}

func (f *Family) cell(values []string) any {
	if len(values) != len(f.labels) {
		panic("obs: wrong label cardinality for " + f.name)
	}
	key := labelKey(values)
	f.mu.RLock()
	c, ok := f.cells[key]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.cells[key]; ok {
		return c
	}
	var nc any
	switch f.kind {
	case KindCounter:
		nc = &Counter{}
	case KindGauge:
		if f.flt {
			nc = &FloatGauge{}
		} else {
			nc = &Gauge{}
		}
	default:
		if f.alpha > 0 {
			nc = NewHistogramEWMA(f.bounds, f.alpha, f.warm)
		} else {
			nc = NewHistogram(f.bounds)
		}
	}
	f.cells[key] = nc
	f.vals[key] = append([]string(nil), values...)
	return nc
}

// Counter returns (creating on first use) the counter cell for the given
// label values.
func (f *Family) Counter(labelValues ...string) *Counter {
	return f.cell(labelValues).(*Counter)
}

// Gauge returns the gauge cell for the given label values.
func (f *Family) Gauge(labelValues ...string) *Gauge {
	return f.cell(labelValues).(*Gauge)
}

// FloatGauge returns the float gauge cell for the given label values (the
// family must have been registered with Registry.FloatGauge).
func (f *Family) FloatGauge(labelValues ...string) *FloatGauge {
	return f.cell(labelValues).(*FloatGauge)
}

// Histogram returns the histogram cell for the given label values.
func (f *Family) Histogram(labelValues ...string) *Histogram {
	return f.cell(labelValues).(*Histogram)
}

// Cells calls fn for every live cell with its label values, in unspecified
// order. The cell is a *Counter, *Gauge, or *Histogram per the family kind.
func (f *Family) Cells(fn func(labelValues []string, cell any)) {
	f.mu.RLock()
	keys := make([]string, 0, len(f.cells))
	for k := range f.cells {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fn(f.vals[k], f.cells[k])
	}
	f.mu.RUnlock()
}

// Registry holds metric families by name. The zero value is not usable;
// call NewRegistry.
type Registry struct {
	mu    sync.RWMutex
	fams  map[string]*Family
	hooks []func()
}

// OnCollect registers fn to run at the start of every exposition
// (WritePrometheus / the /metrics handler). Hooks refresh gauges whose
// source of truth lives elsewhere — runtime stats, cluster membership —
// so they are only sampled when someone is looking. Hooks run outside the
// registry lock and must be safe for concurrent scrapes.
func (r *Registry) OnCollect(fn func()) {
	r.mu.Lock()
	r.hooks = append(r.hooks, fn)
	r.mu.Unlock()
}

// collectHooks returns a snapshot of the registered hooks.
func (r *Registry) collectHooks() []func() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.hooks[:len(r.hooks):len(r.hooks)]
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{fams: make(map[string]*Family)} }

// register returns the existing family under name (first registration
// wins — re-registering is idempotent so independently wired layers can
// share series) or installs a new one.
func (r *Registry) register(name, help string, kind Kind, labels []string, bounds []float64, alpha float64, warm int) *Family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		return f
	}
	f := &Family{
		name: name, help: help, kind: kind, labels: labels,
		bounds: bounds, alpha: alpha, warm: warm,
		cells: make(map[string]any), vals: make(map[string][]string),
	}
	r.fams[name] = f
	return f
}

// Counter registers (or fetches) a counter family.
func (r *Registry) Counter(name, help string, labels ...string) *Family {
	return r.register(name, help, KindCounter, labels, nil, 0, 0)
}

// Gauge registers (or fetches) a gauge family.
func (r *Registry) Gauge(name, help string, labels ...string) *Family {
	return r.register(name, help, KindGauge, labels, nil, 0, 0)
}

// FloatGauge registers (or fetches) a gauge family whose cells hold
// float64 values (exposed as an ordinary Prometheus gauge).
func (r *Registry) FloatGauge(name, help string, labels ...string) *Family {
	f := r.register(name, help, KindGauge, labels, nil, 0, 0)
	f.mu.Lock()
	f.flt = true
	f.mu.Unlock()
	return f
}

// Histogram registers (or fetches) a histogram family over bounds
// (DefBuckets when nil).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...string) *Family {
	if bounds == nil {
		bounds = DefBuckets
	}
	return r.register(name, help, KindHistogram, labels, bounds, 0, 0)
}

// HistogramEWMA registers a histogram family whose cells also track an
// EWMA mean (running mean for the first warm observations, then
// exponential decay with alpha).
func (r *Registry) HistogramEWMA(name, help string, bounds []float64, alpha float64, warm int, labels ...string) *Family {
	if bounds == nil {
		bounds = DefBuckets
	}
	return r.register(name, help, KindHistogram, labels, bounds, alpha, warm)
}

// Adopt installs an already-built family under its own name, first
// registration winning like register: a component that created its metrics
// on a private registry can expose them on a shared one without copying
// cells — both registries then serve the same live series.
func (r *Registry) Adopt(f *Family) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.fams[f.name]; !ok {
		r.fams[f.name] = f
	}
}

// Family returns the registered family by name, or nil.
func (r *Registry) Family(name string) *Family {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.fams[name]
}

// families returns all families sorted by name.
func (r *Registry) families() []*Family {
	r.mu.RLock()
	out := make([]*Family, 0, len(r.fams))
	for _, f := range r.fams {
		out = append(out, f)
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
