package obs

import (
	"encoding/json"
	"io"
	"os"
	"sync"
	"time"
)

// SlowQueryRecord is one slow-query log line: what the query was, how much
// pipeline work it did, and where the time went (the span tree). Emitted as
// a single JSON object so the log stays grep- and jq-able.
type SlowQueryRecord struct {
	// Kind tags the serving path: "query", "stream", "cluster-query",
	// "node-query". Marshals under the key "slow_query" so a log line is
	// self-identifying.
	Kind       string         `json:"slow_query"`
	Trace      string         `json:"trace,omitempty"`
	Method     string         `json:"method,omitempty"`
	WallUs     int64          `json:"wall_us"`
	Candidates int            `json:"candidates,omitempty"`
	Produced   int            `json:"produced,omitempty"`
	Verified   int            `json:"verified,omitempty"`
	Answers    int            `json:"answers,omitempty"`
	FilterUs   int64          `json:"filter_us,omitempty"`
	VerifyUs   int64          `json:"verify_us,omitempty"`
	Partial    bool           `json:"partial,omitempty"`
	Extra      map[string]any `json:"extra,omitempty"`
	Spans      *SpanTree      `json:"spans,omitempty"`
}

// SlowQueryLog emits one JSON line per query slower than a threshold.
// Writes are serialized so concurrent handlers never interleave lines. A
// nil log (threshold unset) is a valid, disabled log — every method
// no-ops, mirroring the nil-span convention.
type SlowQueryLog struct {
	threshold time.Duration
	mu        sync.Mutex
	w         io.Writer
}

// NewSlowQueryLog builds a log emitting to w (nil = stderr) for queries at
// or over threshold. A non-positive threshold returns nil: disabled.
func NewSlowQueryLog(threshold time.Duration, w io.Writer) *SlowQueryLog {
	if threshold <= 0 {
		return nil
	}
	if w == nil {
		w = os.Stderr
	}
	return &SlowQueryLog{threshold: threshold, w: w}
}

// Enabled reports whether the log records anything at all — instrumented
// paths use it to decide whether a query needs a trace.
func (l *SlowQueryLog) Enabled() bool { return l != nil }

// Record emits rec if wall is at or over the threshold. Safe on nil.
func (l *SlowQueryLog) Record(wall time.Duration, rec SlowQueryRecord) {
	if l == nil || wall < l.threshold {
		return
	}
	rec.WallUs = wall.Microseconds()
	b, err := json.Marshal(rec)
	if err != nil {
		return
	}
	b = append(b, '\n')
	l.mu.Lock()
	l.w.Write(b)
	l.mu.Unlock()
}
