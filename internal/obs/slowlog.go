package obs

import (
	"encoding/json"
	"io"
	"os"
	"sync"
	"time"
)

// SlowQueryRecord is one slow-query log line: what the query was, how much
// pipeline work it did, and where the time went (the span tree). Emitted as
// a single JSON object so the log stays grep- and jq-able.
type SlowQueryRecord struct {
	// Kind tags the serving path: "query", "stream", "cluster-query",
	// "node-query". Marshals under the key "slow_query" so a log line is
	// self-identifying.
	Kind       string         `json:"slow_query"`
	Trace      string         `json:"trace,omitempty"`
	Method     string         `json:"method,omitempty"`
	WallUs     int64          `json:"wall_us"`
	Candidates int            `json:"candidates,omitempty"`
	Produced   int            `json:"produced,omitempty"`
	Verified   int            `json:"verified,omitempty"`
	Answers    int            `json:"answers,omitempty"`
	FilterUs   int64          `json:"filter_us,omitempty"`
	VerifyUs   int64          `json:"verify_us,omitempty"`
	Partial    bool           `json:"partial,omitempty"`
	Extra      map[string]any `json:"extra,omitempty"`
	Spans      *SpanTree      `json:"spans,omitempty"`
}

// Slow-log byte budget defaults: at most 1 MiB of log lines per minute. A
// span tree for a pathological query can run to kilobytes, and every query
// being slow is exactly when the log would otherwise grow without bound.
const (
	DefSlowLogBytes    = 1 << 20
	DefSlowLogInterval = time.Minute
)

// SlowQueryLog emits one JSON line per query slower than a threshold.
// Writes are serialized so concurrent handlers never interleave lines, and
// rate-limited to a byte budget per interval — lines over budget are
// dropped (counted via SetDropped, never blocking the query). A nil log
// (threshold unset) is a valid, disabled log — every method no-ops,
// mirroring the nil-span convention.
type SlowQueryLog struct {
	threshold time.Duration
	mu        sync.Mutex
	w         io.Writer

	maxBytes int64
	interval time.Duration
	winStart time.Time
	winBytes int64
	dropped  *Counter
	now      func() time.Time // test hook
}

// NewSlowQueryLog builds a log emitting to w (nil = stderr) for queries at
// or over threshold, with the default byte budget. A non-positive
// threshold returns nil: disabled.
func NewSlowQueryLog(threshold time.Duration, w io.Writer) *SlowQueryLog {
	if threshold <= 0 {
		return nil
	}
	if w == nil {
		w = os.Stderr
	}
	return &SlowQueryLog{
		threshold: threshold, w: w,
		maxBytes: DefSlowLogBytes, interval: DefSlowLogInterval,
		now: time.Now,
	}
}

// SetLimit overrides the byte budget: at most maxBytes of log lines per
// interval (maxBytes <= 0 disables the cap). Safe on nil.
func (l *SlowQueryLog) SetLimit(maxBytes int64, interval time.Duration) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.maxBytes = maxBytes
	if interval > 0 {
		l.interval = interval
	}
	l.mu.Unlock()
}

// SetDropped attaches a counter incremented once per line dropped by the
// byte budget (sq_slowlog_dropped_total on the serving registries). Safe
// on nil.
func (l *SlowQueryLog) SetDropped(c *Counter) {
	if l == nil {
		return
	}
	l.mu.Lock()
	l.dropped = c
	l.mu.Unlock()
}

// Enabled reports whether the log records anything at all — instrumented
// paths use it to decide whether a query needs a trace.
func (l *SlowQueryLog) Enabled() bool { return l != nil }

// Record emits rec if wall is at or over the threshold. Safe on nil.
func (l *SlowQueryLog) Record(wall time.Duration, rec SlowQueryRecord) {
	if l == nil || wall < l.threshold {
		return
	}
	rec.WallUs = wall.Microseconds()
	b, err := json.Marshal(rec)
	if err != nil {
		return
	}
	b = append(b, '\n')
	l.mu.Lock()
	if l.maxBytes > 0 {
		now := l.now()
		if l.winStart.IsZero() || now.Sub(l.winStart) >= l.interval {
			l.winStart, l.winBytes = now, 0
		}
		if l.winBytes+int64(len(b)) > l.maxBytes {
			if l.dropped != nil {
				l.dropped.Inc()
			}
			l.mu.Unlock()
			return
		}
		l.winBytes += int64(len(b))
	}
	l.w.Write(b)
	l.mu.Unlock()
}
