package obs

import "sync"

// Index storage instrumentation: process-wide families tracking how index
// files are opened and how much of them is actually resident. The engine
// layer records opens; the method layers record lazy materializations.
// They live on a hidden package-level registry because index opens happen
// below any server — RegisterIndexMetrics adopts the live families into a
// scrape registry (sqserve, sqnode, sqcoord all call it), so every
// exposition sees the same cells.

var indexMetrics struct {
	once     sync.Once
	reg      *Registry
	open     *Family // sq_index_open_seconds{method,storage}
	resident *Family // sq_index_resident_bytes{method,storage}
	lazy     *Family // sq_index_lazy_loads_total{method}
}

func indexFams() (open, resident, lazy *Family) {
	m := &indexMetrics
	m.once.Do(func() {
		m.reg = NewRegistry()
		m.open = m.reg.Histogram("sq_index_open_seconds",
			"Time to open (restore) a persisted index, by method and storage mode.",
			[]float64{0.0001, 0.001, 0.01, 0.1, 0.5, 1, 5, 30, 120, 600},
			"method", "storage")
		m.resident = m.reg.Gauge("sq_index_resident_bytes",
			"Estimated heap-resident bytes of opened indexes, by method and storage mode.",
			"method", "storage")
		m.lazy = m.reg.Counter("sq_index_lazy_loads_total",
			"Lazy materializations of index sections (postings, trie nodes, codes) under storage=mmap.",
			"method")
	})
	return m.open, m.resident, m.lazy
}

// RegisterIndexMetrics adopts the index storage families into r.
// Idempotent per registry.
func RegisterIndexMetrics(r *Registry) {
	open, resident, lazy := indexFams()
	r.Adopt(open)
	r.Adopt(resident)
	r.Adopt(lazy)
}

// IndexOpenObserve records one index open (restore from disk) taking sec
// seconds under the given storage mode.
func IndexOpenObserve(method, storage string, sec float64) {
	open, _, _ := indexFams()
	open.Histogram(method, storage).Observe(sec)
}

// IndexResidentSet sets the resident-bytes estimate for one opened index.
func IndexResidentSet(method, storage string, bytes int64) {
	_, resident, _ := indexFams()
	resident.Gauge(method, storage).Set(bytes)
}

// IndexResidentAdd adjusts the resident-bytes estimate by delta — methods
// call it as lazy materializations pull sections into the heap.
func IndexResidentAdd(method, storage string, delta int64) {
	_, resident, _ := indexFams()
	resident.Gauge(method, storage).Add(delta)
}

// IndexLazyLoadInc counts one lazy materialization under storage=mmap.
func IndexLazyLoadInc(method string) {
	_, _, lazy := indexFams()
	lazy.Counter(method).Inc()
}
