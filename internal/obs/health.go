package obs

import (
	"fmt"
	"sync"
	"time"
)

// Health scoring: a derived ok/degraded/critical verdict with
// human-readable reasons, computed from the same counters and histograms
// /metrics exposes. The windows here turn lifetime-monotonic series into
// "over the last minute" rates without the servers having to run a
// background sampler — each /health/score request records one sample and
// reads the delta across whatever the window still holds.

// HealthStatus is a coarse health verdict.
type HealthStatus string

// Health verdicts, ordered ok < degraded < critical.
const (
	HealthOK       HealthStatus = "ok"
	HealthDegraded HealthStatus = "degraded"
	HealthCritical HealthStatus = "critical"
)

func (s HealthStatus) rank() int {
	switch s {
	case HealthCritical:
		return 2
	case HealthDegraded:
		return 1
	default:
		return 0
	}
}

// Worse reports whether s is a worse verdict than o.
func (s HealthStatus) Worse(o HealthStatus) bool { return s.rank() > o.rank() }

// HealthCheck is one scored dimension with the reason for its verdict.
type HealthCheck struct {
	Name   string       `json:"name"`
	Status HealthStatus `json:"status"`
	Reason string       `json:"reason"`
	Value  float64      `json:"value"`
}

// HealthReport is the /health/score response body: the worst verdict
// across all checks, plus every check with its reason.
type HealthReport struct {
	Status HealthStatus  `json:"status"`
	Checks []HealthCheck `json:"checks"`
}

// NewHealthReport returns an ok report with no checks.
func NewHealthReport() *HealthReport { return &HealthReport{Status: HealthOK} }

// Add appends a check and escalates the overall status if it is worse.
func (r *HealthReport) Add(c HealthCheck) {
	if c.Status == "" {
		c.Status = HealthOK
	}
	r.Checks = append(r.Checks, c)
	if c.Status.Worse(r.Status) {
		r.Status = c.Status
	}
}

// Default health thresholds. Error rate and queue pressure are ratios in
// [0, 1]; latency compares p99 against a configured SLO.
const (
	ErrRateDegraded = 0.05
	ErrRateCritical = 0.50
	QueueDegraded   = 0.50
	QueueCritical   = 0.90
)

// CheckErrorRate scores an error ratio (errors/requests over a window).
func CheckErrorRate(rate float64) HealthCheck {
	c := HealthCheck{Name: "error_rate", Status: HealthOK, Value: rate,
		Reason: fmt.Sprintf("error rate %.2f%%", rate*100)}
	switch {
	case rate >= ErrRateCritical:
		c.Status = HealthCritical
		c.Reason = fmt.Sprintf("error rate %.1f%% >= %.0f%%", rate*100, ErrRateCritical*100)
	case rate >= ErrRateDegraded:
		c.Status = HealthDegraded
		c.Reason = fmt.Sprintf("error rate %.1f%% >= %.0f%%", rate*100, ErrRateDegraded*100)
	}
	return c
}

// CheckLatency scores a p99 against an SLO threshold in seconds. A
// non-positive slo disables the check (always ok).
func CheckLatency(p99, slo float64) HealthCheck {
	c := HealthCheck{Name: "latency_p99", Status: HealthOK, Value: p99}
	if slo <= 0 {
		c.Reason = "no -slo configured"
		return c
	}
	c.Reason = fmt.Sprintf("p99 %.1fms within slo %.1fms", p99*1e3, slo*1e3)
	switch {
	case p99 > 2*slo:
		c.Status = HealthCritical
		c.Reason = fmt.Sprintf("p99 %.1fms > 2x slo %.1fms", p99*1e3, slo*1e3)
	case p99 > slo:
		c.Status = HealthDegraded
		c.Reason = fmt.Sprintf("p99 %.1fms > slo %.1fms", p99*1e3, slo*1e3)
	}
	return c
}

// CheckQueue scores admission-queue pressure: requests waiting versus
// queue capacity. A non-positive capacity disables the check.
func CheckQueue(waiting, capacity int64) HealthCheck {
	c := HealthCheck{Name: "queue", Status: HealthOK}
	if capacity <= 0 {
		c.Reason = "no admission queue"
		return c
	}
	ratio := float64(waiting) / float64(capacity)
	c.Value = ratio
	c.Reason = fmt.Sprintf("%d of %d queue slots used", waiting, capacity)
	switch {
	case ratio >= QueueCritical:
		c.Status = HealthCritical
		c.Reason = fmt.Sprintf("queue %d/%d >= %.0f%% full", waiting, capacity, QueueCritical*100)
	case ratio >= QueueDegraded:
		c.Status = HealthDegraded
		c.Reason = fmt.Sprintf("queue %d/%d >= %.0f%% full", waiting, capacity, QueueDegraded*100)
	}
	return c
}

// MergedHistogram folds every cell of a histogram family into one
// exposition-shaped snapshot (bounds, cumulative counts, total) — the
// method-agnostic latency view the health scorer compares against an SLO.
// Returns (nil, nil, 0) for a nil or non-histogram family.
func MergedHistogram(f *Family) (bounds []float64, cum []int64, total int64) {
	if f == nil || f.kind != KindHistogram {
		return nil, nil, 0
	}
	f.Cells(func(_ []string, cell any) {
		h, ok := cell.(*Histogram)
		if !ok {
			return
		}
		b, c, t, _ := h.Snapshot()
		if bounds == nil {
			bounds = b
			cum = make([]int64, len(c))
		}
		if len(c) != len(cum) {
			return
		}
		for i := range c {
			cum[i] += c[i]
		}
		total += t
	})
	return bounds, cum, total
}

// RateWindow tracks a monotonically increasing value (a counter) over a
// sliding window. Observe records the current total; Delta and Rate read
// the increase across the window. One sample older than the window is kept
// as the baseline so a fresh scrape always has something to diff against.
type RateWindow struct {
	mu      sync.Mutex
	window  time.Duration
	samples []rateSample
}

type rateSample struct {
	t time.Time
	v float64
}

// NewRateWindow returns a window of the given width (1m when
// non-positive).
func NewRateWindow(window time.Duration) *RateWindow {
	if window <= 0 {
		window = time.Minute
	}
	return &RateWindow{window: window}
}

// Observe records the counter's current total at time now.
func (w *RateWindow) Observe(now time.Time, v float64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.samples = append(w.samples, rateSample{now, v})
	w.prune(now)
}

// prune drops samples older than the window, keeping the newest such
// sample as the baseline. Callers hold w.mu.
func (w *RateWindow) prune(now time.Time) {
	cut := now.Add(-w.window)
	i := 0
	for i < len(w.samples)-1 && !w.samples[i+1].t.After(cut) {
		i++
	}
	w.samples = w.samples[i:]
}

// Delta returns the increase across the window (0 with fewer than two
// samples; clamped at 0 if the counter reset).
func (w *RateWindow) Delta() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.samples) < 2 {
		return 0
	}
	d := w.samples[len(w.samples)-1].v - w.samples[0].v
	if d < 0 {
		return 0
	}
	return d
}

// Rate returns the increase per second across the window (0 with fewer
// than two samples or no elapsed time).
func (w *RateWindow) Rate() float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.samples) < 2 {
		return 0
	}
	first, last := w.samples[0], w.samples[len(w.samples)-1]
	el := last.t.Sub(first.t).Seconds()
	d := last.v - first.v
	if el <= 0 || d < 0 {
		return 0
	}
	return d / el
}

// HistWindow tracks histogram snapshots over a sliding window so quantiles
// can be computed over recent observations only (lifetime quantiles stop
// moving once a server has seen millions of queries).
type HistWindow struct {
	mu      sync.Mutex
	window  time.Duration
	samples []histSample
}

type histSample struct {
	t     time.Time
	cum   []int64
	total int64
}

// NewHistWindow returns a window of the given width (1m when
// non-positive).
func NewHistWindow(window time.Duration) *HistWindow {
	if window <= 0 {
		window = time.Minute
	}
	return &HistWindow{window: window}
}

// Observe records a histogram snapshot (cumulative le counts plus total,
// as returned by Histogram.Snapshot) at time now.
func (w *HistWindow) Observe(now time.Time, cum []int64, total int64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.samples = append(w.samples, histSample{now, append([]int64(nil), cum...), total})
	cut := now.Add(-w.window)
	i := 0
	for i < len(w.samples)-1 && !w.samples[i+1].t.After(cut) {
		i++
	}
	w.samples = w.samples[i:]
}

// Quantile estimates the q-quantile of the observations that arrived
// within the window. ok is false when the window holds fewer than two
// samples or no new observations — callers then fall back to the lifetime
// quantile.
func (w *HistWindow) Quantile(bounds []float64, q float64) (v float64, ok bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if len(w.samples) < 2 {
		return 0, false
	}
	first, last := w.samples[0], w.samples[len(w.samples)-1]
	if len(first.cum) != len(last.cum) {
		return 0, false
	}
	total := last.total - first.total
	if total <= 0 {
		return 0, false
	}
	cum := make([]int64, len(last.cum))
	for i := range cum {
		cum[i] = last.cum[i] - first.cum[i]
	}
	return QuantileFromCells(bounds, cum, total, q), true
}
