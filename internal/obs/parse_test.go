package obs

import (
	"math"
	"strings"
	"testing"
	"time"
)

// buildTestRegistry wires one family of every kind with labeled cells and
// some observations, the way the serving layers do.
func buildTestRegistry() *Registry {
	r := NewRegistry()
	req := r.Counter("sq_requests_total", "Requests by kind.", "kind")
	req.Counter("query").Add(7)
	req.Counter("batch").Add(3)
	r.Gauge("sq_graphs", "Graphs by state.", "state").Gauge("live").Set(25)
	r.FloatGauge("sq_cache_ratio", "Cache hit ratio.").FloatGauge().Set(0.75)
	dur := r.Histogram("sq_query_duration_seconds", "Query latency.", []float64{0.01, 0.1, 1}, "method")
	for i := 0; i < 10; i++ {
		dur.Histogram("grapes").Observe(0.05)
	}
	dur.Histogram("ggsx").Observe(0.5)
	dur.Histogram("ggsx").Observe(5) // +Inf bucket
	return r
}

// TestPromRoundTrip: exposing a registry, parsing the text, and writing
// the snapshot back reproduces the exposition byte for byte.
func TestPromRoundTrip(t *testing.T) {
	r := buildTestRegistry()
	var orig strings.Builder
	if err := r.WritePrometheus(&orig); err != nil {
		t.Fatal(err)
	}
	snap, err := ParsePromText(strings.NewReader(orig.String()))
	if err != nil {
		t.Fatal(err)
	}
	var back strings.Builder
	if err := snap.Write(&back); err != nil {
		t.Fatal(err)
	}
	if back.String() != orig.String() {
		t.Errorf("round trip drifted:\n--- exposed ---\n%s\n--- reparsed ---\n%s", orig.String(), back.String())
	}

	// Spot-check the parsed cells.
	f := snap.Family("sq_requests_total")
	if f == nil || f.Kind != KindCounter || len(f.Samples) != 2 {
		t.Fatalf("sq_requests_total parsed as %+v", f)
	}
	h := snap.Family("sq_query_duration_seconds")
	if h == nil || h.Kind != KindHistogram || len(h.Hists) != 2 {
		t.Fatalf("sq_query_duration_seconds parsed as %+v", h)
	}
	for _, cell := range h.Hists {
		if cell.Labels[0].Value == "ggsx" {
			if cell.Count != 2 || cell.Sum != 5.5 {
				t.Errorf("ggsx cell count=%d sum=%g, want 2, 5.5", cell.Count, cell.Sum)
			}
			if got := cell.Quantile(0.99); got != 1 { // +Inf mass clamps to last bound
				t.Errorf("ggsx p99 %g, want clamp to 1", got)
			}
		}
	}
}

// TestParseLabelEscaping: values with backslashes, quotes, and newlines
// survive expose -> parse, and a hand-written escaped line parses right.
func TestParseLabelEscaping(t *testing.T) {
	r := NewRegistry()
	hairy := "pa\\th \"q\"\nnext"
	r.Counter("sq_test_total", "", "name").Counter(hairy).Add(1)
	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	snap, err := ParsePromText(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	f := snap.Family("sq_test_total")
	if f == nil || len(f.Samples) != 1 {
		t.Fatalf("parsed %+v", f)
	}
	if got := f.Samples[0].Labels[0].Value; got != hairy {
		t.Errorf("escaped label round-tripped to %q, want %q", got, hairy)
	}

	line := `x{a="b\\c",d="e\"f",g="h\ni"} 4.5`
	name, labels, value, err := parseSampleLine(line)
	if err != nil {
		t.Fatal(err)
	}
	if name != "x" || value != 4.5 || len(labels) != 3 {
		t.Fatalf("parsed name=%q value=%g labels=%v", name, value, labels)
	}
	want := []PromLabel{{"a", `b\c`}, {"d", `e"f`}, {"g", "h\ni"}}
	for i, l := range labels {
		if l != want[i] {
			t.Errorf("label %d = %+v, want %+v", i, l, want[i])
		}
	}

	for _, bad := range []string{`x{a="b} 1`, `x{a=b} 1`, `x{a="b"`, "x", `x{a="b\`} {
		if _, _, _, err := parseSampleLine(bad); err == nil {
			t.Errorf("parseSampleLine(%q) accepted malformed input", bad)
		}
	}
}

// TestPromMerge: counters and gauges sum per label set, same-bound
// histograms merge bucket-wise, mismatched bounds are skipped, and
// relabeled snapshots stay distinct under Extend.
func TestPromMerge(t *testing.T) {
	expose := func(r *Registry) *PromSnapshot {
		var buf strings.Builder
		if err := r.WritePrometheus(&buf); err != nil {
			t.Fatal(err)
		}
		snap, err := ParsePromText(strings.NewReader(buf.String()))
		if err != nil {
			t.Fatal(err)
		}
		return snap
	}

	a, b := buildTestRegistry(), buildTestRegistry()
	b.Family("sq_requests_total").Counter("query").Add(5) // 12 total on b

	agg := NewPromSnapshot()
	agg.Merge(expose(a))
	agg.Merge(expose(b))

	f := agg.Family("sq_requests_total")
	var query, batch float64
	for _, s := range f.Samples {
		switch s.Labels[0].Value {
		case "query":
			query = s.Value
		case "batch":
			batch = s.Value
		}
	}
	if query != 19 || batch != 6 {
		t.Errorf("merged counters query=%g batch=%g, want 19, 6", query, batch)
	}
	if g := agg.Family("sq_graphs").Samples[0].Value; g != 50 {
		t.Errorf("merged gauge %g, want 50", g)
	}
	for _, h := range agg.Family("sq_query_duration_seconds").Hists {
		if h.Labels[0].Value == "grapes" && h.Count != 20 {
			t.Errorf("merged grapes count %d, want 20", h.Count)
		}
		if h.Labels[0].Value == "ggsx" && (h.Count != 4 || h.Sum != 11) {
			t.Errorf("merged ggsx count=%d sum=%g, want 4, 11", h.Count, h.Sum)
		}
	}

	// Mismatched bounds: the second snapshot's cell is skipped, not summed.
	c := NewRegistry()
	c.Histogram("sq_query_duration_seconds", "", []float64{1, 2}, "method").Histogram("grapes").Observe(1.5)
	before := agg.Family("sq_query_duration_seconds").Hists[0].Count
	agg.Merge(expose(c))
	var grapes *PromHistogram
	for _, h := range agg.Family("sq_query_duration_seconds").Hists {
		if h.Labels[0].Value == "grapes" {
			grapes = h
		}
	}
	if grapes.Count != 20 {
		t.Errorf("mismatched-bounds merge changed count to %d, want 20 (skip)", grapes.Count)
	}
	_ = before

	// Extend keeps relabeled instances distinct instead of summing.
	ext := NewPromSnapshot()
	ext.Extend(expose(a).Relabel("node", "n0"))
	ext.Extend(expose(b).Relabel("node", "n1"))
	rf := ext.Family("sq_requests_total")
	if len(rf.Samples) != 4 {
		t.Fatalf("extended family has %d samples, want 4", len(rf.Samples))
	}
	for _, s := range rf.Samples {
		last := s.Labels[len(s.Labels)-1]
		if last.Name != "node" || (last.Value != "n0" && last.Value != "n1") {
			t.Errorf("extended sample missing node label: %+v", s.Labels)
		}
	}
}

// TestQuantileFromCellsEdges pins the failure modes sqtop renders through:
// empty input, q outside [0,1] (and NaN), single-bucket histograms, and
// all-+Inf mass must all yield finite numbers.
func TestQuantileFromCellsEdges(t *testing.T) {
	if v := QuantileFromCells(nil, nil, 0, 0.5); v != 0 {
		t.Errorf("empty bounds -> %g, want 0", v)
	}
	if v := QuantileFromCells([]float64{1, 2}, []int64{0, 0}, 0, 0.5); v != 0 {
		t.Errorf("zero total -> %g, want 0", v)
	}
	bounds, cum := []float64{1, 2, 4}, []int64{2, 6, 8}
	for _, q := range []float64{-1, 0, 0.5, 1, 2, math.NaN()} {
		v := QuantileFromCells(bounds, cum, 8, q)
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || v > 4 {
			t.Errorf("q=%g -> %g, want finite within [0,4]", q, v)
		}
	}
	if lo, hi := QuantileFromCells(bounds, cum, 8, -1), QuantileFromCells(bounds, cum, 8, 0); lo != hi {
		t.Errorf("q<0 (%g) != q=0 (%g)", lo, hi)
	}
	if lo, hi := QuantileFromCells(bounds, cum, 8, 2), QuantileFromCells(bounds, cum, 8, 1); lo != hi {
		t.Errorf("q>1 (%g) != q=1 (%g)", lo, hi)
	}

	// Single bucket: everything interpolates inside (0, 1].
	h := NewHistogram([]float64{1})
	h.Observe(0.5)
	for _, q := range []float64{0, 0.5, 1} {
		if v := h.Quantile(q); math.IsNaN(v) || v < 0 || v > 1 {
			t.Errorf("single-bucket q=%g -> %g", q, v)
		}
	}
	// Single bucket, all mass beyond the bound: clamp to the bound.
	h2 := NewHistogram([]float64{1})
	h2.Observe(9)
	if v := h2.Quantile(0.5); v != 1 {
		t.Errorf("single-bucket +Inf mass -> %g, want 1", v)
	}
	// q clamping on the Histogram method too.
	if v := h2.Quantile(math.NaN()); math.IsNaN(v) {
		t.Error("Histogram.Quantile(NaN) returned NaN")
	}
}

// TestSlowLogByteBudget: lines over the per-interval byte budget are
// dropped and counted; the budget refills when the interval rolls over.
func TestSlowLogByteBudget(t *testing.T) {
	var out strings.Builder
	l := NewSlowQueryLog(time.Millisecond, &out)
	now := time.Unix(1000, 0)
	l.now = func() time.Time { return now }
	var dropped Counter
	l.SetDropped(&dropped)

	rec := SlowQueryRecord{Kind: "query", Method: "grapes"}
	l.Record(time.Second, rec)
	line := out.Len()
	l.SetLimit(int64(2*line), time.Minute)

	for i := 0; i < 5; i++ {
		l.Record(time.Second, rec)
	}
	if got := strings.Count(out.String(), "\n"); got != 2 {
		t.Errorf("wrote %d lines under a 2-line budget, want 2", got)
	}
	if dropped.Value() != 4 {
		t.Errorf("dropped %d, want 4", dropped.Value())
	}

	now = now.Add(2 * time.Minute) // budget refills
	l.Record(time.Second, rec)
	if got := strings.Count(out.String(), "\n"); got != 3 {
		t.Errorf("after interval rollover wrote %d lines, want 3", got)
	}
	if dropped.Value() != 4 {
		t.Errorf("rollover write counted as dropped (%d)", dropped.Value())
	}
}

// TestRateAndHistWindows covers the sliding-window helpers the health
// scorer reads.
func TestRateAndHistWindows(t *testing.T) {
	w := NewRateWindow(time.Minute)
	t0 := time.Unix(2000, 0)
	if w.Rate() != 0 || w.Delta() != 0 {
		t.Error("fresh window should read 0")
	}
	w.Observe(t0, 100)
	w.Observe(t0.Add(10*time.Second), 160)
	if d := w.Delta(); d != 60 {
		t.Errorf("delta %g, want 60", d)
	}
	if r := w.Rate(); math.Abs(r-6) > 1e-9 {
		t.Errorf("rate %g, want 6/s", r)
	}
	// Samples beyond the window age out down to one baseline.
	w.Observe(t0.Add(2*time.Minute), 200)
	w.Observe(t0.Add(2*time.Minute+time.Second), 210)
	if d := w.Delta(); d != 50 {
		t.Errorf("post-prune delta %g, want 50 (from the 160 baseline)", d)
	}
	// Counter reset clamps to zero.
	w.Observe(t0.Add(2*time.Minute+2*time.Second), 5)
	if d := w.Delta(); d != 0 {
		t.Errorf("reset delta %g, want 0", d)
	}

	h := NewHistWindow(time.Minute)
	bounds := []float64{1, 2, 4}
	if _, ok := h.Quantile(bounds, 0.5); ok {
		t.Error("quantile from a fresh window should not be ok")
	}
	h.Observe(t0, []int64{10, 20, 30}, 30)
	if _, ok := h.Quantile(bounds, 0.5); ok {
		t.Error("quantile from one sample should not be ok")
	}
	h.Observe(t0.Add(10*time.Second), []int64{10, 120, 130}, 130)
	v, ok := h.Quantile(bounds, 0.5)
	if !ok {
		t.Fatal("quantile not ok with two samples")
	}
	if v <= 1 || v > 2 {
		t.Errorf("windowed p50 %g, want inside (1,2] where the new mass landed", v)
	}
	// No new observations between samples: not ok.
	h2 := NewHistWindow(time.Minute)
	h2.Observe(t0, []int64{5}, 5)
	h2.Observe(t0.Add(time.Second), []int64{5}, 5)
	if _, ok := h2.Quantile([]float64{1}, 0.5); ok {
		t.Error("quantile with zero delta should not be ok")
	}
}

// TestHealthReport covers verdict escalation and the check builders'
// thresholds.
func TestHealthReport(t *testing.T) {
	r := NewHealthReport()
	if r.Status != HealthOK {
		t.Fatalf("fresh report %q", r.Status)
	}
	r.Add(CheckErrorRate(0.01))
	if r.Status != HealthOK {
		t.Errorf("1%% errors -> %q, want ok", r.Status)
	}
	r.Add(CheckErrorRate(0.1))
	if r.Status != HealthDegraded {
		t.Errorf("10%% errors -> %q, want degraded", r.Status)
	}
	r.Add(CheckErrorRate(0.6))
	if r.Status != HealthCritical {
		t.Errorf("60%% errors -> %q, want critical", r.Status)
	}
	r.Add(CheckErrorRate(0)) // a later ok check never improves the verdict
	if r.Status != HealthCritical {
		t.Errorf("verdict improved to %q", r.Status)
	}

	if c := CheckLatency(5, 0); c.Status != HealthOK {
		t.Errorf("no slo -> %q, want ok", c.Status)
	}
	if c := CheckLatency(0.05, 0.1); c.Status != HealthOK {
		t.Errorf("p99 under slo -> %q", c.Status)
	}
	if c := CheckLatency(0.15, 0.1); c.Status != HealthDegraded {
		t.Errorf("p99 over slo -> %q, want degraded", c.Status)
	}
	if c := CheckLatency(0.25, 0.1); c.Status != HealthCritical {
		t.Errorf("p99 over 2x slo -> %q, want critical", c.Status)
	}

	if c := CheckQueue(100, 0); c.Status != HealthOK {
		t.Errorf("no queue -> %q", c.Status)
	}
	if c := CheckQueue(10, 100); c.Status != HealthOK {
		t.Errorf("10%% queue -> %q", c.Status)
	}
	if c := CheckQueue(60, 100); c.Status != HealthDegraded {
		t.Errorf("60%% queue -> %q, want degraded", c.Status)
	}
	if c := CheckQueue(95, 100); c.Status != HealthCritical {
		t.Errorf("95%% queue -> %q, want critical", c.Status)
	}
	for _, c := range []HealthCheck{CheckErrorRate(0.1), CheckLatency(0.2, 0.1), CheckQueue(60, 100)} {
		if c.Reason == "" {
			t.Errorf("check %s has no reason string", c.Name)
		}
	}
}

// TestRuntimeMetrics: the go_* families appear on scrape with sane,
// finite values, and registration is idempotent.
func TestRuntimeMetrics(t *testing.T) {
	r := NewRegistry()
	RegisterRuntimeMetrics(r)
	RegisterRuntimeMetrics(r) // idempotent
	var buf strings.Builder
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, fam := range []string{"go_goroutines", "go_heap_bytes", "go_memory_total_bytes", "go_gc_cycles_total", "go_gc_pause_p99_seconds"} {
		if !strings.Contains(out, "# TYPE "+fam+" ") {
			t.Errorf("scrape missing %s:\n%s", fam, out)
		}
	}
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Errorf("runtime metrics rendered non-finite values:\n%s", out)
	}
	if g := r.Family("go_goroutines").Gauge().Value(); g < 1 {
		t.Errorf("go_goroutines %d, want >= 1", g)
	}
	if h := r.Family("go_heap_bytes").Gauge().Value(); h <= 0 {
		t.Errorf("go_heap_bytes %d, want > 0", h)
	}
}
