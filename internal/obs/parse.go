package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file is the inverse of prom.go: a parser for the Prometheus text
// exposition format (version 0.0.4) plus the relabel/merge algebra the
// coordinator's /metrics/cluster federation endpoint is built from. The
// parser only needs to understand what WritePrometheus (and any
// conventional exporter) emits: # HELP / # TYPE comments, samples with
// optional {label="value"} sets, histograms exposed as _bucket/_sum/_count
// series.

// PromLabel is one name="value" pair on a parsed sample.
type PromLabel struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// PromSample is one parsed counter or gauge row: its labels (in exposition
// order) and value.
type PromSample struct {
	Labels []PromLabel `json:"labels,omitempty"`
	Value  float64     `json:"value"`
}

// PromHistogram is one parsed histogram cell, reassembled from its
// _bucket/_sum/_count rows: labels exclude le; Cum holds cumulative counts
// per finite bound; Count is the total including the +Inf bucket.
type PromHistogram struct {
	Labels []PromLabel `json:"labels,omitempty"`
	Bounds []float64   `json:"bounds"`
	Cum    []int64     `json:"cum"`
	Count  int64       `json:"count"`
	Sum    float64     `json:"sum"`
}

// Quantile estimates the q-quantile of the parsed histogram; same
// semantics as Histogram.Quantile (clamped q, never NaN/Inf, 0 on empty).
func (h *PromHistogram) Quantile(q float64) float64 {
	return QuantileFromCells(h.Bounds, h.Cum, h.Count, q)
}

// PromFamily is one parsed metric family: every sample (counter/gauge) or
// histogram cell that appeared under its name.
type PromFamily struct {
	Name    string           `json:"name"`
	Help    string           `json:"help,omitempty"`
	Kind    Kind             `json:"kind"`
	Samples []PromSample     `json:"samples,omitempty"`
	Hists   []*PromHistogram `json:"hists,omitempty"`
}

// PromSnapshot is a parsed (or synthesized) set of metric families — the
// unit the federation endpoint relabels, concatenates, and sums.
type PromSnapshot struct {
	fams  []*PromFamily
	index map[string]*PromFamily
}

// NewPromSnapshot returns an empty snapshot.
func NewPromSnapshot() *PromSnapshot {
	return &PromSnapshot{index: make(map[string]*PromFamily)}
}

// Family returns the parsed family by name, or nil.
func (s *PromSnapshot) Family(name string) *PromFamily { return s.index[name] }

// Families returns every family sorted by name.
func (s *PromSnapshot) Families() []*PromFamily {
	out := append([]*PromFamily(nil), s.fams...)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func (s *PromSnapshot) family(name, help string, kind Kind) *PromFamily {
	if f, ok := s.index[name]; ok {
		return f
	}
	f := &PromFamily{Name: name, Help: help, Kind: kind}
	s.fams = append(s.fams, f)
	s.index[name] = f
	return f
}

// ParsePromText parses a Prometheus text-format exposition. Unknown comment
// lines are skipped; untyped samples parse as gauges; timestamps are
// accepted and dropped. Histogram families are reassembled from their
// _bucket/_sum/_count rows grouped by label set (excluding le), with
// _count authoritative for the total.
func ParsePromText(r io.Reader) (*PromSnapshot, error) {
	s := NewPromSnapshot()
	// hist cell lookup: family name -> labelKey(non-le labels) -> cell
	cells := make(map[string]map[string]*PromHistogram)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			rest := strings.TrimSpace(line[1:])
			switch {
			case strings.HasPrefix(rest, "HELP "):
				name, help, _ := strings.Cut(strings.TrimSpace(rest[5:]), " ")
				if name != "" {
					s.family(name, "", KindGauge).Help = help
				}
			case strings.HasPrefix(rest, "TYPE "):
				name, kindStr, _ := strings.Cut(strings.TrimSpace(rest[5:]), " ")
				if name == "" {
					continue
				}
				f := s.family(name, "", KindGauge)
				switch strings.TrimSpace(kindStr) {
				case "counter":
					f.Kind = KindCounter
				case "histogram":
					f.Kind = KindHistogram
				default: // gauge, untyped, summary — read as gauge
					f.Kind = KindGauge
				}
			}
			continue
		}
		name, labels, value, err := parseSampleLine(line)
		if err != nil {
			return nil, fmt.Errorf("obs: parse line %d: %w", lineNo, err)
		}
		// A histogram's rows carry suffixed names; map them back to the
		// declared family.
		if base, part, ok := histPart(s, name); ok {
			hl, le := splitLE(labels)
			cellsOf := cells[base.Name]
			if cellsOf == nil {
				cellsOf = make(map[string]*PromHistogram)
				cells[base.Name] = cellsOf
			}
			key := promLabelKey(hl)
			h := cellsOf[key]
			if h == nil {
				h = &PromHistogram{Labels: hl}
				cellsOf[key] = h
				base.Hists = append(base.Hists, h)
			}
			switch part {
			case "bucket":
				if le == "+Inf" {
					continue // _count is authoritative for the total
				}
				bound, err := strconv.ParseFloat(le, 64)
				if err != nil {
					return nil, fmt.Errorf("obs: parse line %d: bad le %q", lineNo, le)
				}
				h.Bounds = append(h.Bounds, bound)
				h.Cum = append(h.Cum, int64(value))
			case "sum":
				h.Sum = value
			case "count":
				h.Count = int64(value)
			}
			continue
		}
		f := s.family(name, "", KindGauge)
		f.Samples = append(f.Samples, PromSample{Labels: labels, Value: value})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("obs: parse: %w", err)
	}
	return s, nil
}

// histPart reports whether name is a _bucket/_sum/_count row of a family
// already declared `# TYPE ... histogram`.
func histPart(s *PromSnapshot, name string) (*PromFamily, string, bool) {
	for _, suf := range [...]string{"_bucket", "_sum", "_count"} {
		base, ok := strings.CutSuffix(name, suf)
		if !ok {
			continue
		}
		if f := s.index[base]; f != nil && f.Kind == KindHistogram {
			return f, suf[1:], true
		}
	}
	return nil, "", false
}

// splitLE strips the le pair off a bucket row's labels.
func splitLE(labels []PromLabel) (rest []PromLabel, le string) {
	for _, l := range labels {
		if l.Name == "le" {
			le = l.Value
			continue
		}
		rest = append(rest, l)
	}
	return rest, le
}

// parseSampleLine parses `name{l="v",...} value [timestamp]`.
func parseSampleLine(line string) (name string, labels []PromLabel, value float64, err error) {
	i := strings.IndexAny(line, "{ \t")
	if i < 0 {
		return "", nil, 0, fmt.Errorf("no value in %q", line)
	}
	name = line[:i]
	rest := line[i:]
	if rest[0] == '{' {
		labels, rest, err = parseLabels(rest[1:])
		if err != nil {
			return "", nil, 0, err
		}
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return "", nil, 0, fmt.Errorf("no value in %q", line)
	}
	value, err = strconv.ParseFloat(fields[0], 64)
	if err != nil {
		return "", nil, 0, fmt.Errorf("bad value %q", fields[0])
	}
	return name, labels, value, nil
}

// parseLabels parses `l="v",...}` (the opening brace already consumed) and
// returns the labels plus the unparsed remainder of the line.
func parseLabels(in string) ([]PromLabel, string, error) {
	var labels []PromLabel
	for {
		in = strings.TrimLeft(in, ", \t")
		if in == "" {
			return nil, "", fmt.Errorf("unterminated label set")
		}
		if in[0] == '}' {
			return labels, in[1:], nil
		}
		eq := strings.IndexByte(in, '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("label without '='")
		}
		name := strings.TrimSpace(in[:eq])
		in = strings.TrimLeft(in[eq+1:], " \t")
		if in == "" || in[0] != '"' {
			return nil, "", fmt.Errorf("unquoted label value for %q", name)
		}
		value, rest, err := parseQuoted(in[1:])
		if err != nil {
			return nil, "", err
		}
		labels = append(labels, PromLabel{Name: name, Value: value})
		in = rest
	}
}

// parseQuoted consumes a label value up to its closing quote, resolving
// the \\, \", and \n escapes the format defines.
func parseQuoted(in string) (value, rest string, err error) {
	var b strings.Builder
	for i := 0; i < len(in); i++ {
		switch in[i] {
		case '"':
			return b.String(), in[i+1:], nil
		case '\\':
			i++
			if i >= len(in) {
				return "", "", fmt.Errorf("dangling escape in label value")
			}
			switch in[i] {
			case 'n':
				b.WriteByte('\n')
			default: // \\ and \" resolve to the escaped byte
				b.WriteByte(in[i])
			}
		default:
			b.WriteByte(in[i])
		}
	}
	return "", "", fmt.Errorf("unterminated label value")
}

// promLabelKey keys a label set for matching across snapshots; pairs are
// sorted by name so label order never affects identity.
func promLabelKey(labels []PromLabel) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]PromLabel(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Name < ls[j].Name })
	var b strings.Builder
	for _, l := range ls {
		b.WriteString(l.Name)
		b.WriteByte('\x1f')
		b.WriteString(l.Value)
		b.WriteByte('\x1e')
	}
	return b.String()
}

func copyLabels(ls []PromLabel) []PromLabel { return append([]PromLabel(nil), ls...) }

// Relabel appends name="value" to every sample and histogram cell in the
// snapshot — how federation stamps each node's series with node="addr".
// Rows already carrying the label keep their value (the coordinator's own
// per-node gauges are labeled node="<addr>" and must stay that way).
func (s *PromSnapshot) Relabel(name, value string) *PromSnapshot {
	l := PromLabel{Name: name, Value: value}
	for _, f := range s.fams {
		for i := range f.Samples {
			if !hasLabel(f.Samples[i].Labels, name) {
				f.Samples[i].Labels = append(f.Samples[i].Labels, l)
			}
		}
		for _, h := range f.Hists {
			if !hasLabel(h.Labels, name) {
				h.Labels = append(h.Labels, l)
			}
		}
	}
	return s
}

func hasLabel(labels []PromLabel, name string) bool {
	for _, l := range labels {
		if l.Name == name {
			return true
		}
	}
	return false
}

// WithSuffix renames every family to name+suffix (federation's _agg
// families) and returns the snapshot.
func (s *PromSnapshot) WithSuffix(suffix string) *PromSnapshot {
	index := make(map[string]*PromFamily, len(s.fams))
	for _, f := range s.fams {
		f.Name += suffix
		index[f.Name] = f
	}
	s.index = index
	return s
}

// Extend appends src's rows to s without any summing — the concatenation
// step of federation, where instances are kept distinct by a node label.
// src is absorbed and must not be used afterwards.
func (s *PromSnapshot) Extend(src *PromSnapshot) {
	for _, sf := range src.fams {
		f, ok := s.index[sf.Name]
		if !ok {
			s.fams = append(s.fams, sf)
			s.index[sf.Name] = sf
			continue
		}
		if f.Kind != sf.Kind {
			continue // schema clash across nodes; keep first
		}
		if f.Help == "" {
			f.Help = sf.Help
		}
		f.Samples = append(f.Samples, sf.Samples...)
		f.Hists = append(f.Hists, sf.Hists...)
	}
}

// Merge folds src into s by summing: counters and gauges add per label
// set; histograms with identical bounds merge bucket-wise (differing
// bounds are skipped — summing them would fabricate a distribution). src
// is not modified; s deep-copies whatever it absorbs.
func (s *PromSnapshot) Merge(src *PromSnapshot) {
	for _, sf := range src.fams {
		f, ok := s.index[sf.Name]
		if !ok {
			f = s.family(sf.Name, sf.Help, sf.Kind)
		} else if f.Kind != sf.Kind {
			continue
		}
		if f.Help == "" {
			f.Help = sf.Help
		}
		switch sf.Kind {
		case KindHistogram:
			byKey := make(map[string]*PromHistogram, len(f.Hists))
			for _, h := range f.Hists {
				byKey[promLabelKey(h.Labels)] = h
			}
			for _, sh := range sf.Hists {
				h, ok := byKey[promLabelKey(sh.Labels)]
				if !ok {
					cp := &PromHistogram{
						Labels: copyLabels(sh.Labels),
						Bounds: append([]float64(nil), sh.Bounds...),
						Cum:    append([]int64(nil), sh.Cum...),
						Count:  sh.Count,
						Sum:    sh.Sum,
					}
					f.Hists = append(f.Hists, cp)
					byKey[promLabelKey(cp.Labels)] = cp
					continue
				}
				if !sameBounds(h.Bounds, sh.Bounds) {
					continue
				}
				for i := range h.Cum {
					h.Cum[i] += sh.Cum[i]
				}
				h.Count += sh.Count
				h.Sum += sh.Sum
			}
		default:
			byKey := make(map[string]int, len(f.Samples))
			for i, smp := range f.Samples {
				byKey[promLabelKey(smp.Labels)] = i
			}
			for _, smp := range sf.Samples {
				if i, ok := byKey[promLabelKey(smp.Labels)]; ok {
					f.Samples[i].Value += smp.Value
					continue
				}
				byKey[promLabelKey(smp.Labels)] = len(f.Samples)
				f.Samples = append(f.Samples, PromSample{Labels: copyLabels(smp.Labels), Value: smp.Value})
			}
		}
	}
}

func sameBounds(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// AddSample appends one synthetic sample (registering the family on first
// use) — how federation emits rows like sq_federate_node_up{node="..."}.
func (s *PromSnapshot) AddSample(name, help string, kind Kind, labels []PromLabel, value float64) {
	f := s.family(name, help, kind)
	f.Kind = kind
	if f.Help == "" {
		f.Help = help
	}
	f.Samples = append(f.Samples, PromSample{Labels: labels, Value: value})
}

// Write emits the snapshot in the text exposition format: families sorted
// by name, rows sorted by label values, so output is stable regardless of
// scrape completion order. Parsing a registry's exposition and writing it
// back reproduces the input byte for byte.
func (s *PromSnapshot) Write(w io.Writer) error {
	var err error
	pf := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	for _, f := range s.Families() {
		if f.Help != "" {
			pf("# HELP %s %s\n", f.Name, strings.ReplaceAll(f.Help, "\n", " "))
		}
		pf("# TYPE %s %s\n", f.Name, f.Kind)
		if f.Kind == KindHistogram {
			hists := append([]*PromHistogram(nil), f.Hists...)
			sort.Slice(hists, func(i, j int) bool {
				return promLabelKey(hists[i].Labels) < promLabelKey(hists[j].Labels)
			})
			for _, h := range hists {
				names, values := splitPairs(h.Labels)
				for i, bound := range h.Bounds {
					pf("%s_bucket%s %d\n", f.Name, labelString(names, values, "le", formatFloat(bound)), h.Cum[i])
				}
				pf("%s_bucket%s %d\n", f.Name, labelString(names, values, "le", "+Inf"), h.Count)
				pf("%s_sum%s %s\n", f.Name, labelString(names, values, "", ""), formatFloat(h.Sum))
				pf("%s_count%s %d\n", f.Name, labelString(names, values, "", ""), h.Count)
			}
			continue
		}
		samples := append([]PromSample(nil), f.Samples...)
		sort.Slice(samples, func(i, j int) bool {
			return promLabelKey(samples[i].Labels) < promLabelKey(samples[j].Labels)
		})
		for _, smp := range samples {
			names, values := splitPairs(smp.Labels)
			pf("%s%s %s\n", f.Name, labelString(names, values, "", ""), formatValue(f.Kind, smp.Value))
		}
	}
	return err
}

func splitPairs(labels []PromLabel) (names, values []string) {
	if len(labels) == 0 {
		return nil, nil
	}
	names = make([]string, len(labels))
	values = make([]string, len(labels))
	for i, l := range labels {
		names[i], values[i] = l.Name, l.Value
	}
	return names, values
}

// formatValue keeps counter/gauge rows integral when they are — the shape
// WritePrometheus produces for int-backed cells — and falls back to the
// float form otherwise.
func formatValue(kind Kind, v float64) string {
	if v == float64(int64(v)) && kind != KindHistogram {
		return strconv.FormatInt(int64(v), 10)
	}
	return formatFloat(v)
}
