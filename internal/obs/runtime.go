package obs

import (
	"math"
	"runtime/metrics"
	"sync"
)

// Go runtime instrumentation: a handful of go_* families sourced from
// runtime/metrics, refreshed lazily through the registry's collect hook so
// a process that nobody scrapes pays nothing.

const (
	rmGoroutines = "/sched/goroutines:goroutines"
	rmHeapBytes  = "/memory/classes/heap/objects:bytes"
	rmTotalBytes = "/memory/classes/total:bytes"
	rmGCCycles   = "/gc/cycles/total:gc-cycles"
	rmGCPauses   = "/gc/pauses:seconds"
)

// RegisterRuntimeMetrics installs go_* runtime families (goroutine count,
// heap and total memory, GC cycle counter, GC pause p99) on the registry,
// refreshed at scrape time via OnCollect. Idempotent per registry.
func RegisterRuntimeMetrics(r *Registry) {
	if r.Family("go_goroutines") != nil {
		return
	}
	goroutines := r.Gauge("go_goroutines", "Number of live goroutines.").Gauge()
	heap := r.Gauge("go_heap_bytes", "Bytes of live heap objects.").Gauge()
	total := r.Gauge("go_memory_total_bytes", "Total bytes of memory mapped by the Go runtime.").Gauge()
	gcCycles := r.Counter("go_gc_cycles_total", "Completed GC cycles.").Counter()
	gcPause := r.FloatGauge("go_gc_pause_p99_seconds", "p99 of GC stop-the-world pause durations.").FloatGauge()

	samples := []metrics.Sample{
		{Name: rmGoroutines},
		{Name: rmHeapBytes},
		{Name: rmTotalBytes},
		{Name: rmGCCycles},
		{Name: rmGCPauses},
	}
	var mu sync.Mutex
	var prevCycles uint64
	r.OnCollect(func() {
		mu.Lock()
		defer mu.Unlock()
		metrics.Read(samples)
		for _, s := range samples {
			switch s.Name {
			case rmGoroutines:
				if s.Value.Kind() == metrics.KindUint64 {
					goroutines.Set(int64(s.Value.Uint64()))
				}
			case rmHeapBytes:
				if s.Value.Kind() == metrics.KindUint64 {
					heap.Set(int64(s.Value.Uint64()))
				}
			case rmTotalBytes:
				if s.Value.Kind() == metrics.KindUint64 {
					total.Set(int64(s.Value.Uint64()))
				}
			case rmGCCycles:
				if s.Value.Kind() == metrics.KindUint64 {
					cur := s.Value.Uint64()
					if cur > prevCycles {
						gcCycles.Add(int64(cur - prevCycles))
					}
					prevCycles = cur
				}
			case rmGCPauses:
				if s.Value.Kind() == metrics.KindFloat64Histogram {
					gcPause.Set(runtimeHistQuantile(s.Value.Float64Histogram(), 0.99))
				}
			}
		}
	})
}

// runtimeHistQuantile estimates a quantile of a runtime/metrics
// Float64Histogram (len(Buckets) == len(Counts)+1, possibly with infinite
// edge buckets). Always finite: infinite edges clamp to the nearest finite
// boundary; an empty histogram returns 0.
func runtimeHistQuantile(h *metrics.Float64Histogram, q float64) float64 {
	if h == nil || len(h.Counts) == 0 || len(h.Buckets) != len(h.Counts)+1 {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	if !(q >= 0) {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range h.Counts {
		cum += float64(c)
		if cum >= rank && c > 0 {
			return finiteEdge(h.Buckets, i+1)
		}
	}
	return finiteEdge(h.Buckets, len(h.Buckets)-1)
}

// finiteEdge returns the bucket boundary at i, walking inward past any
// infinite edges.
func finiteEdge(buckets []float64, i int) float64 {
	for i >= 0 && i < len(buckets) {
		if !math.IsInf(buckets[i], 0) {
			return buckets[i]
		}
		if math.IsInf(buckets[i], 1) {
			i--
		} else {
			i++
		}
	}
	return 0
}
