package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// TraceHeader is the HTTP header carrying a trace ID across process
// boundaries: the coordinator sets it on /node/query legs (hedged legs
// included) so node-side spans join the coordinator's trace, and clients
// set it on /query to ask the server to trace and echo the span tree.
const TraceHeader = "X-SQ-Trace"

// Trace collects the spans of one query. A trace is cheap — spans append
// to a slice under a mutex — and short-lived: it exists for the duration
// of the request, is exported once (slow-query log, response echo), and
// dropped.
type Trace struct {
	id    string
	start time.Time

	mu    sync.Mutex
	spans []*Span
}

// NewTrace starts a trace with a fresh random 16-hex-digit ID.
func NewTrace() *Trace { return NewTraceWithID(newTraceID()) }

// NewTraceWithID starts a trace under an existing ID — the node side of a
// propagated trace.
func NewTraceWithID(id string) *Trace {
	return &Trace{id: id, start: time.Now()}
}

func newTraceID() string {
	var b [8]byte
	rand.Read(b[:])
	return hex.EncodeToString(b[:])
}

// TraceIDFromHeader validates a propagated header value: a non-empty
// hex-ish token of sane length. Returns "" for anything else, so a garbage
// header degrades to an untraced request rather than an error.
func TraceIDFromHeader(v string) string {
	if v == "" || len(v) > 64 {
		return ""
	}
	for _, r := range v {
		ok := r >= '0' && r <= '9' || r >= 'a' && r <= 'f' || r >= 'A' && r <= 'F'
		if !ok {
			return ""
		}
	}
	return v
}

// ID returns the trace ID ("" on nil).
func (t *Trace) ID() string {
	if t == nil {
		return ""
	}
	return t.id
}

// Span is one timed operation inside a trace. All methods are nil-safe:
// instrumented code calls StartSpan/End/Attr unconditionally and pays a
// nil check when tracing is off.
type Span struct {
	tr     *Trace
	idx    int // index in tr.spans
	parent int // parent's idx, -1 for a root
	name   string
	start  time.Time

	mu        sync.Mutex
	dur       time.Duration
	ended     bool
	cancelled bool
	attrs     map[string]any
	grafts    []*SpanTree // remote subtrees attached under this span
}

// StartSpan opens a span under parent (nil parent = a root span of the
// trace). Returns nil on a nil trace.
func (t *Trace) StartSpan(parent *Span, name string) *Span {
	if t == nil {
		return nil
	}
	s := &Span{tr: t, parent: -1, name: name, start: time.Now()}
	if parent != nil && parent.tr == t {
		s.parent = parent.idx
	}
	t.mu.Lock()
	s.idx = len(t.spans)
	t.spans = append(t.spans, s)
	t.mu.Unlock()
	return s
}

// Trace returns the span's trace (nil on a nil span).
func (s *Span) Trace() *Trace {
	if s == nil {
		return nil
	}
	return s.tr
}

// End closes the span, fixing its duration. Idempotent; safe on nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.start)
	}
	s.mu.Unlock()
}

// Cancel marks the span cancelled (a hedged leg that lost the race, a
// stream the consumer abandoned) and ends it.
func (s *Span) Cancel() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.cancelled = true
	if !s.ended {
		s.ended = true
		s.dur = time.Since(s.start)
	}
	s.mu.Unlock()
}

// Attr attaches a key/value to the span (candidate counts, chosen method,
// shard list). Safe on nil.
func (s *Span) Attr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = make(map[string]any, 4)
	}
	s.attrs[key] = value
	s.mu.Unlock()
}

// Graft attaches a remote span tree (a node's echoed spans) as a child of
// this span, linking cross-process trees into one. Safe on nil.
func (s *Span) Graft(t *SpanTree) {
	if s == nil || t == nil {
		return
	}
	s.mu.Lock()
	s.grafts = append(s.grafts, t)
	s.mu.Unlock()
}

// ctxKey carries the active span through a context.
type ctxKey struct{}

// ContextWithSpan returns ctx with s as the active span.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	if s == nil {
		return ctx
	}
	return context.WithValue(ctx, ctxKey{}, s)
}

// SpanFromContext returns the active span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// StartSpan opens a child of the context's active span and returns a
// context carrying it. With no active span it returns ctx unchanged and a
// nil span — the instrumentation no-op.
func StartSpan(ctx context.Context, name string) (context.Context, *Span) {
	parent := SpanFromContext(ctx)
	if parent == nil {
		return ctx, nil
	}
	s := parent.tr.StartSpan(parent, name)
	return ContextWithSpan(ctx, s), s
}

// SpanTree is the exported (JSON) form of a trace: spans nested under
// their parents, times as microsecond offsets from the trace start so
// trees from different processes read the same way.
type SpanTree struct {
	TraceID   string         `json:"trace,omitempty"` // set on roots only
	Node      string         `json:"node,omitempty"`  // process that recorded the subtree
	Name      string         `json:"name"`
	StartUs   int64          `json:"start_us"`
	DurUs     int64          `json:"dur_us"`
	Cancelled bool           `json:"cancelled,omitempty"`
	Attrs     map[string]any `json:"attrs,omitempty"`
	Children  []*SpanTree    `json:"children,omitempty"`
}

// Tree exports the trace as a span tree. A trace normally has exactly one
// root; with several (or none ended yet) a synthetic root named "trace"
// holds them. Unended spans export with their duration so far. Safe on
// nil (returns nil).
func (t *Trace) Tree() *SpanTree {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	spans := make([]*Span, len(t.spans))
	copy(spans, t.spans)
	t.mu.Unlock()

	nodes := make([]*SpanTree, len(spans))
	var roots []*SpanTree
	for i, s := range spans {
		s.mu.Lock()
		dur := s.dur
		if !s.ended {
			dur = time.Since(s.start)
		}
		n := &SpanTree{
			Name:      s.name,
			StartUs:   s.start.Sub(t.start).Microseconds(),
			DurUs:     dur.Microseconds(),
			Cancelled: s.cancelled,
		}
		if len(s.attrs) > 0 {
			n.Attrs = make(map[string]any, len(s.attrs))
			for k, v := range s.attrs {
				n.Attrs[k] = v
			}
		}
		n.Children = append(n.Children, s.grafts...)
		s.mu.Unlock()
		nodes[i] = n
	}
	for i, s := range spans {
		if s.parent >= 0 {
			p := nodes[s.parent]
			p.Children = append(p.Children, nodes[i])
		} else {
			roots = append(roots, nodes[i])
		}
	}
	var root *SpanTree
	if len(roots) == 1 {
		root = roots[0]
	} else {
		root = &SpanTree{Name: "trace", Children: roots}
	}
	root.TraceID = t.id
	return root
}

// Fprint renders the tree human-readably, one span per line, children
// indented under parents:
//
//	cluster-query 12.43ms  trace=0123abcd
//	  node:n0 8.10ms  shards=[0 3]
//	    node-query 7.92ms  [n0]  answers=4
//	  node:n1 2.31ms  CANCELLED hedge=true
//
// Safe on nil (prints nothing).
func (st *SpanTree) Fprint(w io.Writer) {
	st.fprint(w, 0)
}

func (st *SpanTree) fprint(w io.Writer, depth int) {
	if st == nil {
		return
	}
	fmt.Fprintf(w, "%s%s %s", strings.Repeat("  ", depth), st.Name,
		(time.Duration(st.DurUs) * time.Microsecond).Round(10*time.Microsecond))
	if st.Cancelled {
		fmt.Fprint(w, "  CANCELLED")
	}
	if st.Node != "" {
		fmt.Fprintf(w, "  [%s]", st.Node)
	}
	if st.TraceID != "" {
		fmt.Fprintf(w, "  trace=%s", st.TraceID)
	}
	keys := make([]string, 0, len(st.Attrs))
	for k := range st.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "  %s=%v", k, st.Attrs[k])
	}
	fmt.Fprintln(w)
	for _, c := range st.Children {
		c.fprint(w, depth+1)
	}
}

// Walk visits every node of the tree depth-first, parents before children.
func (st *SpanTree) Walk(fn func(*SpanTree)) {
	if st == nil {
		return
	}
	fn(st)
	for _, c := range st.Children {
		c.Walk(fn)
	}
}
