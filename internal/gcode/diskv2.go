package gcode

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"repro/internal/core"
	"repro/internal/diskfmt"
	"repro/internal/graph"
	"repro/internal/obs"
)

// repro-index v2 layout for gCode. Phase-1 filtering only needs the
// per-graph summaries, so those are a fixed-stride table read in place
// from the mapped file; the vertex signatures — the bulk of the index —
// live in a separate section and materialize per graph only when a code
// survives phase 1.
//
//	secMeta      pathLen, numEig, nCodes, reserved (4×u32)
//	secSummaries nCodes × {id, nVertices, nEdges, labelBits, nbrBits,
//	             sigOff, sigLen (7×u32), maxEig numEig×f64}
//	secSigs      per code: nSigs u32, then per sig {label, labelBits,
//	             nbrBits, degree (4×u32), eig numEig×f64}
const (
	secMeta      = 1
	secSummaries = 2
	secSigs      = 3

	summaryFixed = 28 // bytes before the maxEig tail
	sigFixed     = 16 // bytes before the eig tail
)

var (
	_ core.SectionPersistable = (*Index)(nil)
	_ core.StorageSelector    = (*Index)(nil)
	_ core.Warmable           = (*Index)(nil)
)

// StorageMode implements core.StorageSelector.
func (ix *Index) StorageMode() string {
	if ix.opts.Storage == core.StorageMmap {
		return core.StorageMmap
	}
	return core.StorageHeap
}

func (ix *Index) summaryStride() int { return summaryFixed + ix.opts.NumEigenvalues*8 }
func (ix *Index) sigStride() int     { return sigFixed + ix.opts.NumEigenvalues*8 }

// SaveIndexV2 implements core.SectionPersistable.
func (ix *Index) SaveIndexV2(w *diskfmt.Writer) error {
	if !ix.built {
		return fmt.Errorf("gcode: save before Build")
	}
	if err := ix.materializeAll(); err != nil {
		return err
	}
	var summaries, sigBlob []byte
	for i := range ix.codes {
		gc := &ix.codes[i]
		sigOff := len(sigBlob)
		sigBlob = binary.LittleEndian.AppendUint32(sigBlob, uint32(len(gc.sigs)))
		for j := range gc.sigs {
			s := &gc.sigs[j]
			sigBlob = binary.LittleEndian.AppendUint32(sigBlob, uint32(s.label))
			sigBlob = binary.LittleEndian.AppendUint32(sigBlob, s.labelBits)
			sigBlob = binary.LittleEndian.AppendUint32(sigBlob, s.nbrBits)
			sigBlob = binary.LittleEndian.AppendUint32(sigBlob, uint32(s.degree))
			for _, e := range s.eig {
				sigBlob = binary.LittleEndian.AppendUint64(sigBlob, math.Float64bits(e))
			}
		}
		summaries = binary.LittleEndian.AppendUint32(summaries, uint32(gc.id))
		summaries = binary.LittleEndian.AppendUint32(summaries, uint32(gc.nVertices))
		summaries = binary.LittleEndian.AppendUint32(summaries, uint32(gc.nEdges))
		summaries = binary.LittleEndian.AppendUint32(summaries, gc.labelBits)
		summaries = binary.LittleEndian.AppendUint32(summaries, gc.nbrBits)
		summaries = binary.LittleEndian.AppendUint32(summaries, uint32(sigOff))
		summaries = binary.LittleEndian.AppendUint32(summaries, uint32(len(sigBlob)-sigOff))
		for _, e := range gc.maxEig {
			summaries = binary.LittleEndian.AppendUint64(summaries, math.Float64bits(e))
		}
	}
	meta := binary.LittleEndian.AppendUint32(nil, uint32(ix.opts.PathLen))
	meta = binary.LittleEndian.AppendUint32(meta, uint32(ix.opts.NumEigenvalues))
	meta = binary.LittleEndian.AppendUint32(meta, uint32(len(ix.codes)))
	meta = binary.LittleEndian.AppendUint32(meta, 0)

	w.AddSection(secMeta, meta)
	w.AddSection(secSummaries, summaries)
	w.AddSection(secSigs, sigBlob)
	return nil
}

// LoadIndexV2 implements core.SectionPersistable. Under storage=heap every
// section is decoded eagerly, like the legacy gob path; under storage=mmap
// only the 16-byte meta section is touched — summaries are scanned in
// place from the mapping during queries and signatures materialize per
// graph when a code survives phase-1 filtering. The index then owns the
// reader (materializeAll closes it).
func (ix *Index) LoadIndexV2(r *diskfmt.Reader, ds *graph.Dataset) error {
	meta, err := r.Section(secMeta)
	if err != nil {
		return fmt.Errorf("gcode: load v2: %w", err)
	}
	if len(meta) != 16 {
		return fmt.Errorf("gcode: load v2: meta section of %d bytes", len(meta))
	}
	nCodes := int(binary.LittleEndian.Uint32(meta[8:]))
	if nCodes != ds.NumAlive() {
		return fmt.Errorf("gcode: load v2: index covers %d graphs, dataset has %d live", nCodes, ds.NumAlive())
	}
	storage := ix.opts.Storage
	ix.opts = Options{
		PathLen:        int(binary.LittleEndian.Uint32(meta)),
		NumEigenvalues: int(binary.LittleEndian.Uint32(meta[4:])),
		Storage:        storage,
	}
	ix.opts.fill()
	if want := int64(nCodes * ix.summaryStride()); r.SectionLen(secSummaries) != want {
		return fmt.Errorf("gcode: load v2: summary table of %d bytes, want %d",
			r.SectionLen(secSummaries), want)
	}

	if ix.StorageMode() == core.StorageMmap {
		ix.codes = nil
		ix.lazy = &lazyCodes{r: r, nCodes: nCodes, numEig: ix.opts.NumEigenvalues, sigs: make(map[int][]vertexSignature)}
		ix.built = true
		return nil
	}

	// Heap mode reads everything anyway: verify payload CRCs up front so a
	// bit-flipped file fails here and triggers a rebuild.
	for _, sid := range []uint32{secSummaries, secSigs} {
		if err := r.VerifySection(sid); err != nil {
			return fmt.Errorf("gcode: load v2: %w", err)
		}
	}
	lz := &lazyCodes{r: r, nCodes: nCodes, numEig: ix.opts.NumEigenvalues}
	codes, err := lz.decodeAll()
	if err != nil {
		return fmt.Errorf("gcode: load v2: %w", err)
	}
	for i := range codes {
		if id := int(codes[i].id); id < 0 || id >= ds.Len() {
			return fmt.Errorf("gcode: load v2: graph id %d out of range", id)
		}
	}
	ix.codes = codes
	ix.lazy = nil
	ix.built = true
	return nil
}

// WarmIndex implements core.Warmable: pre-fault the summary table (the
// small fixed-stride section phase-1 scans) so first queries skip the
// section lookup. Signatures stay lazy.
func (ix *Index) WarmIndex() {
	if lz := ix.lazy; lz != nil {
		lz.mu.Lock()
		lz.fetchSections()
		lz.mu.Unlock()
	}
}

// materializeAll converts a lazily-opened index into the fully resident
// form and releases the mapping. Mutations and saves call it: incremental
// maintenance splices ix.codes in place, which a mapped table cannot
// support.
func (ix *Index) materializeAll() error {
	lz := ix.lazy
	if lz == nil {
		return nil
	}
	lz.mu.Lock()
	defer lz.mu.Unlock()
	codes, err := lz.decodeAll()
	if err != nil {
		return fmt.Errorf("gcode: materialize: %w", err)
	}
	ix.codes = codes
	ix.lazy = nil
	obs.IndexResidentSet("gCode", core.StorageMmap, 0)
	return lz.r.Close()
}

// lazyCodes serves gCode summaries in place from an open v2 container and
// materializes vertex signatures per graph on demand.
type lazyCodes struct {
	r      *diskfmt.Reader
	nCodes int
	numEig int

	mu        sync.RWMutex
	fetched   bool
	summaries []byte
	sigBlob   []byte
	sigs      map[int][]vertexSignature // by summary position
	resident  int64
	err       error // sticky first section/decode failure
}

// fetchSections slices the payload sections out of the mapping. Neither is
// CRC-verified here — summaries decode by fixed stride (length checked at
// load) and signature decodes are bounds-checked — so only the pages a
// query touches ever fault in. Callers hold lz.mu.
func (lz *lazyCodes) fetchSections() error {
	if lz.fetched {
		return lz.err
	}
	if lz.err == nil {
		lz.summaries, lz.err = lz.r.SectionLazy(secSummaries)
	}
	if lz.err == nil {
		lz.sigBlob, lz.err = lz.r.SectionLazy(secSigs)
	}
	lz.fetched = lz.err == nil
	return lz.err
}

func (lz *lazyCodes) summaryStride() int { return summaryFixed + lz.numEig*8 }
func (lz *lazyCodes) sigStride() int     { return sigFixed + lz.numEig*8 }

// summaryAt decodes the phase-1 fields of code i in place, filling eig
// (len numEig) so the hot scan loop allocates nothing. Callers hold lz.mu
// (read suffices) with sections fetched.
func (lz *lazyCodes) summaryAt(i int, eig []float64) codeSummary {
	e := lz.summaries[i*lz.summaryStride():]
	for k := range eig {
		eig[k] = math.Float64frombits(binary.LittleEndian.Uint64(e[summaryFixed+8*k:]))
	}
	return codeSummary{
		id:        graph.ID(binary.LittleEndian.Uint32(e)),
		nVertices: int32(binary.LittleEndian.Uint32(e[4:])),
		nEdges:    int32(binary.LittleEndian.Uint32(e[8:])),
		labelBits: binary.LittleEndian.Uint32(e[12:]),
		nbrBits:   binary.LittleEndian.Uint32(e[16:]),
		maxEig:    eig,
	}
}

// decodeSigs decodes the signature block of summary position i. Callers
// hold lz.mu with sections fetched.
func (lz *lazyCodes) decodeSigs(i int) ([]vertexSignature, error) {
	e := lz.summaries[i*lz.summaryStride():]
	off := binary.LittleEndian.Uint32(e[20:])
	blen := binary.LittleEndian.Uint32(e[24:])
	if uint64(off)+uint64(blen) > uint64(len(lz.sigBlob)) {
		return nil, fmt.Errorf("gcode: signature block for code %d out of bounds", i)
	}
	b := lz.sigBlob[off : off+blen]
	if len(b) < 4 {
		return nil, fmt.Errorf("gcode: signature block for code %d truncated", i)
	}
	n := int(binary.LittleEndian.Uint32(b))
	stride := lz.sigStride()
	if 4+n*stride != len(b) {
		return nil, fmt.Errorf("gcode: signature block for code %d holds %d bytes for %d sigs", i, len(b), n)
	}
	sigs := make([]vertexSignature, n)
	for j := range sigs {
		s := b[4+j*stride:]
		eig := make([]float64, lz.numEig)
		for k := range eig {
			eig[k] = math.Float64frombits(binary.LittleEndian.Uint64(s[sigFixed+8*k:]))
		}
		sigs[j] = vertexSignature{
			label:     graph.Label(binary.LittleEndian.Uint32(s)),
			labelBits: binary.LittleEndian.Uint32(s[4:]),
			nbrBits:   binary.LittleEndian.Uint32(s[8:]),
			degree:    int32(binary.LittleEndian.Uint32(s[12:])),
			eig:       eig,
		}
	}
	return sigs, nil
}

// sigsAt materializes (and caches) the signatures of summary position i.
func (lz *lazyCodes) sigsAt(i int) ([]vertexSignature, error) {
	lz.mu.RLock()
	sigs, cached := lz.sigs[i]
	lz.mu.RUnlock()
	if cached {
		return sigs, nil
	}
	lz.mu.Lock()
	defer lz.mu.Unlock()
	if sigs, cached = lz.sigs[i]; cached {
		return sigs, nil
	}
	if err := lz.fetchSections(); err != nil {
		return nil, err
	}
	sigs, err := lz.decodeSigs(i)
	if err != nil {
		lz.err = err
		return nil, err
	}
	lz.sigs[i] = sigs
	delta := int64(len(sigs)) * int64(sigFixed+lz.numEig*8+24)
	lz.resident += delta
	obs.IndexLazyLoadInc("gCode")
	obs.IndexResidentAdd("gCode", core.StorageMmap, delta)
	return sigs, nil
}

// decodeAll materializes every code in summary order. Callers hold lz.mu.
func (lz *lazyCodes) decodeAll() ([]graphCode, error) {
	if err := lz.fetchSections(); err != nil {
		return nil, err
	}
	codes := make([]graphCode, lz.nCodes)
	for i := range codes {
		eig := make([]float64, lz.numEig)
		s := lz.summaryAt(i, eig)
		sigs, err := lz.decodeSigs(i)
		if err != nil {
			return nil, err
		}
		codes[i] = graphCode{
			id:        s.id,
			nVertices: s.nVertices,
			nEdges:    s.nEdges,
			labelBits: s.labelBits,
			nbrBits:   s.nbrBits,
			maxEig:    eig,
			sigs:      sigs,
		}
	}
	return codes, nil
}

// residentBytes estimates the heap bytes pinned by materialized signature
// blocks.
func (lz *lazyCodes) residentBytes() int64 {
	lz.mu.RLock()
	defer lz.mu.RUnlock()
	return lz.resident
}
