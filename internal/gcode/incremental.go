package gcode

import (
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
)

var _ core.IncrementalIndexer = (*Index)(nil)

// codeLess is the index's sort order: (labelBits, id).
func codeLess(a, b *graphCode) bool {
	if a.labelBits != b.labelBits {
		return a.labelBits < b.labelBits
	}
	return a.id < b.id
}

// AddGraphToIndex implements core.IncrementalIndexer: the graph is encoded
// exactly as during Build and its code spliced into the sorted structure.
func (ix *Index) AddGraphToIndex(g *graph.Graph) error {
	if !ix.built {
		return core.ErrNotBuilt
	}
	// Mutation splices the sorted code table in place; a mapped table
	// materializes into heap form first so the splice has somewhere to live.
	if err := ix.materializeAll(); err != nil {
		return err
	}
	gc := ix.encode(g)
	i := sort.Search(len(ix.codes), func(i int) bool { return !codeLess(&ix.codes[i], &gc) })
	ix.codes = append(ix.codes, graphCode{})
	copy(ix.codes[i+1:], ix.codes[i:])
	ix.codes[i] = gc
	return nil
}

// RemoveGraphFromIndex implements core.IncrementalIndexer: graph id's code
// is cut out of the structure. The scan is linear in the number of graphs
// — the sort key leads with labelBits, not id — but touches only the
// fixed-size codes, not the graphs.
func (ix *Index) RemoveGraphFromIndex(id graph.ID) error {
	if !ix.built {
		return core.ErrNotBuilt
	}
	if err := ix.materializeAll(); err != nil {
		return err
	}
	for i := range ix.codes {
		if ix.codes[i].id == id {
			ix.codes = append(ix.codes[:i], ix.codes[i+1:]...)
			return nil
		}
	}
	return nil // already absent: removal is idempotent
}
