package gcode

import (
	"repro/internal/core"
	"repro/internal/engine"
)

func init() {
	engine.Register(engine.Descriptor{
		Name:    "gcode",
		Display: "gCode",
		Help:    "spectral vertex signatures with two-phase dominance filtering",
		Notes: "Reproduces gCode (Zou, Chen, Yu, Lu, EDBT 2008). Every vertex gets a signature " +
			"(label bit-strings plus the top `numEigenvalues` eigenvalues of its level-`pathLen` path " +
			"tree adjacency); per-graph codes are filtered by dominance in two phases. Build cost is " +
			"per-vertex eigen decomposition — moderate and embarrassingly parallel across graphs — but " +
			"the paper finds its filtering power weak on dense, label-poor datasets.",
		Fields: []engine.Field{
			{Name: "pathLen", Kind: engine.Int, Default: DefaultPathLen, Help: "level of the per-vertex path tree"},
			{Name: "numEigenvalues", Kind: engine.Int, Default: DefaultNumEigenvalues, Help: "top eigenvalues kept per signature"},
			{Name: "storage", Kind: engine.String, Default: core.StorageHeap, Runtime: true,
				Help: "how a restored index is held: heap (eager decode) or mmap (lazy, paged)"},
		},
		Factory: func(p engine.Params) (core.Method, error) {
			return New(Options{
				PathLen:        p.Int("pathLen"),
				NumEigenvalues: p.Int("numEigenvalues"),
				Storage:        p.String("storage"),
			}), nil
		},
		Check: engine.CheckStorageField,
	})
}
