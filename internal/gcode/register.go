package gcode

import (
	"repro/internal/core"
	"repro/internal/engine"
)

func init() {
	engine.Register(engine.Descriptor{
		Name:    "gcode",
		Display: "gCode",
		Help:    "spectral vertex signatures with two-phase dominance filtering",
		Fields: []engine.Field{
			{Name: "pathLen", Kind: engine.Int, Default: DefaultPathLen, Help: "level of the per-vertex path tree"},
			{Name: "numEigenvalues", Kind: engine.Int, Default: DefaultNumEigenvalues, Help: "top eigenvalues kept per signature"},
		},
		Factory: func(p engine.Params) (core.Method, error) {
			return New(Options{
				PathLen:        p.Int("pathLen"),
				NumEigenvalues: p.Int("numEigenvalues"),
			}), nil
		},
	})
}
