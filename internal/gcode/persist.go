package gcode

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/graph"
)

// sigDTO is one vertex signature's serialized form.
type sigDTO struct {
	Label     int32
	LabelBits uint32
	NbrBits   uint32
	Degree    int32
	Eig       []float64
}

// codeDTO is one graph code's serialized form.
type codeDTO struct {
	ID        int32
	NVertices int32
	NEdges    int32
	LabelBits uint32
	NbrBits   uint32
	MaxEig    []float64
	Sigs      []sigDTO
}

// indexDTO is the serialized form of a gCode index.
type indexDTO struct {
	PathLen        int
	NumEigenvalues int
	Codes          []codeDTO
}

// SaveIndex implements core.Persistable.
func (ix *Index) SaveIndex(w io.Writer) error {
	if !ix.built {
		return fmt.Errorf("gcode: save before Build")
	}
	if err := ix.materializeAll(); err != nil {
		return err
	}
	dto := indexDTO{PathLen: ix.opts.PathLen, NumEigenvalues: ix.opts.NumEigenvalues}
	for i := range ix.codes {
		gc := &ix.codes[i]
		cd := codeDTO{
			ID:        int32(gc.id),
			NVertices: gc.nVertices,
			NEdges:    gc.nEdges,
			LabelBits: gc.labelBits,
			NbrBits:   gc.nbrBits,
			MaxEig:    gc.maxEig,
		}
		for _, s := range gc.sigs {
			cd.Sigs = append(cd.Sigs, sigDTO{
				Label: int32(s.label), LabelBits: s.labelBits, NbrBits: s.nbrBits,
				Degree: s.degree, Eig: s.eig,
			})
		}
		dto.Codes = append(dto.Codes, cd)
	}
	return gob.NewEncoder(w).Encode(&dto)
}

// LoadIndex implements core.Persistable.
func (ix *Index) LoadIndex(r io.Reader, ds *graph.Dataset) error {
	var dto indexDTO
	if err := gob.NewDecoder(r).Decode(&dto); err != nil {
		return fmt.Errorf("gcode: load: %w", err)
	}
	// Codes cover exactly the live graphs: removals cut codes out of the
	// index while the tombstoned dataset slot remains.
	if len(dto.Codes) != ds.NumAlive() {
		return fmt.Errorf("gcode: load: index covers %d graphs, dataset has %d live", len(dto.Codes), ds.NumAlive())
	}
	ix.opts = Options{PathLen: dto.PathLen, NumEigenvalues: dto.NumEigenvalues, Storage: ix.opts.Storage}
	ix.opts.fill()
	ix.lazy = nil
	ix.codes = make([]graphCode, len(dto.Codes))
	for i, cd := range dto.Codes {
		gc := graphCode{
			id:        graph.ID(cd.ID),
			nVertices: cd.NVertices,
			nEdges:    cd.NEdges,
			labelBits: cd.LabelBits,
			nbrBits:   cd.NbrBits,
			maxEig:    cd.MaxEig,
		}
		if int(cd.ID) < 0 || int(cd.ID) >= ds.Len() {
			return fmt.Errorf("gcode: load: graph id %d out of range", cd.ID)
		}
		for _, s := range cd.Sigs {
			gc.sigs = append(gc.sigs, vertexSignature{
				label: graph.Label(s.Label), labelBits: s.LabelBits,
				nbrBits: s.NbrBits, degree: s.Degree, eig: s.Eig,
			})
		}
		ix.codes[i] = gc
	}
	ix.built = true
	return nil
}
