// Package gcode implements gCode (Zou, Chen, Yu, Lu, EDBT 2008): every
// vertex receives a signature built from exhaustively enumerated paths of
// bounded length — a bit-string of the labels seen on those paths, a
// bit-string of neighbor labels, and the top eigenvalues of the adjacency
// matrix of the vertex's level-N path tree. The per-graph combination of
// vertex signatures (the graph code) is kept in a sorted structure; queries
// are filtered in two phases: graph-code dominance first, then a
// vertex-signature matching test requiring every query vertex signature to
// be dominated by a distinct data vertex signature.
//
// gCode is one of the six indexed subgraph query processing methods
// compared in the reproduced paper (Katsarou, Ntarmos, Triantafillou,
// PVLDB 2015); register.go exposes it to the engine registry as "gcode".
package gcode

import (
	"context"
	"encoding/binary"
	"iter"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/spectral"
)

// Defaults from §4.1 of the paper: paths of up to size 2 for the signatures,
// top 2 eigenvalues, 32-bit label and neighbor bit-strings.
const (
	DefaultPathLen        = 2
	DefaultNumEigenvalues = 2
	signatureBits         = 32
	// eigenSlack absorbs numeric error in eigenvalue dominance comparisons.
	eigenSlack = 1e-9
)

// Options configures a gCode index.
type Options struct {
	// PathLen is the level of the per-vertex path tree (paper: 2).
	PathLen int
	// NumEigenvalues is the number of top eigenvalues kept (paper: 2).
	NumEigenvalues int
	// Storage selects how a persisted index is held when restored:
	// core.StorageHeap (default) decodes eagerly, core.StorageMmap keeps
	// the v2 container mapped, scans summaries in place, and materializes
	// vertex signatures lazily.
	Storage string
}

func (o *Options) fill() {
	if o.PathLen <= 0 {
		o.PathLen = DefaultPathLen
	}
	if o.NumEigenvalues <= 0 {
		o.NumEigenvalues = DefaultNumEigenvalues
	}
}

// vertexSignature is the per-vertex code.
type vertexSignature struct {
	label     graph.Label
	labelBits uint32 // labels on paths of length <= PathLen from the vertex
	nbrBits   uint32 // labels of direct neighbors
	degree    int32
	eig       []float64 // top eigenvalues of the level-N path tree
}

// dominates reports whether data signature d can host query signature q:
// same label, bit containment, degree and spectral dominance. Spectral
// dominance is sound because the query's path tree embeds into the data
// vertex's path tree, and adding rows/columns to a nonnegative symmetric
// matrix cannot decrease its top eigenvalues (Cauchy interlacing).
func (d *vertexSignature) dominatesQ(q *vertexSignature) bool {
	if d.label != q.label || d.degree < q.degree {
		return false
	}
	if q.labelBits&^d.labelBits != 0 || q.nbrBits&^d.nbrBits != 0 {
		return false
	}
	for i := range q.eig {
		if q.eig[i] > d.eig[i]+eigenSlack {
			return false
		}
	}
	return true
}

// graphCode is the per-graph aggregation used in filtering phase 1.
type graphCode struct {
	id        graph.ID
	nVertices int32
	nEdges    int32
	labelBits uint32
	nbrBits   uint32
	maxEig    []float64 // component-wise max over vertex signatures
	sigs      []vertexSignature
}

// codeSummary is the phase-1 slice of a graph code: everything dominance
// filtering needs, without the vertex signatures. Heap codes view their
// graphCode fields directly; lazy codes decode it in place from the
// mapped summary table.
type codeSummary struct {
	id        graph.ID
	nVertices int32
	nEdges    int32
	labelBits uint32
	nbrBits   uint32
	maxEig    []float64
}

// dominatesQ is the phase-1 test.
func (d *codeSummary) dominatesQ(q *graphCode) bool {
	if d.nVertices < q.nVertices || d.nEdges < q.nEdges {
		return false
	}
	if q.labelBits&^d.labelBits != 0 || q.nbrBits&^d.nbrBits != 0 {
		return false
	}
	for i := range q.maxEig {
		if q.maxEig[i] > d.maxEig[i]+eigenSlack {
			return false
		}
	}
	return true
}

// Index is a built gCode index. Create with New, then Build.
type Index struct {
	opts  Options
	codes []graphCode // sorted by (labelBits, id): the "balanced search tree"
	// lazy, when non-nil, backs the code table with a mapped v2 container
	// (storage=mmap): codes is nil and the table resolves through view.
	lazy  *lazyCodes
	built bool
}

// codeView is a single-query read view over the code table, uniform
// across heap and lazy storage. Not safe for concurrent use (the lazy
// form reuses an eigenvalue scratch buffer); each query takes its own.
type codeView struct {
	codes []graphCode // heap form
	lz    *lazyCodes  // lazy form
	eig   []float64   // lazy summary decode scratch
}

// view captures the current storage form. For a lazy index this fetches
// the mapped sections once (under the store lock), so the per-code
// accessors below need no further synchronization to read them.
func (ix *Index) view() (codeView, error) {
	if lz := ix.lazy; lz != nil {
		lz.mu.Lock()
		err := lz.fetchSections()
		lz.mu.Unlock()
		if err != nil {
			return codeView{}, err
		}
		return codeView{lz: lz, eig: make([]float64, lz.numEig)}, nil
	}
	return codeView{codes: ix.codes}, nil
}

func (v *codeView) n() int {
	if v.lz != nil {
		return v.lz.nCodes
	}
	return len(v.codes)
}

// id returns code i's graph id without decoding the rest of the summary.
func (v *codeView) id(i int) graph.ID {
	if v.lz != nil {
		return graph.ID(binary.LittleEndian.Uint32(v.lz.summaries[i*v.lz.summaryStride():]))
	}
	return v.codes[i].id
}

// summary returns code i's phase-1 fields. The lazy form decodes into the
// view's scratch buffer, valid until the next summary call.
func (v *codeView) summary(i int) codeSummary {
	if v.lz != nil {
		return v.lz.summaryAt(i, v.eig)
	}
	gc := &v.codes[i]
	return codeSummary{
		id: gc.id, nVertices: gc.nVertices, nEdges: gc.nEdges,
		labelBits: gc.labelBits, nbrBits: gc.nbrBits, maxEig: gc.maxEig,
	}
}

// sigs returns code i's vertex signatures, materializing them on first
// touch in the lazy form.
func (v *codeView) sigs(i int) ([]vertexSignature, error) {
	if v.lz != nil {
		return v.lz.sigsAt(i)
	}
	return v.codes[i].sigs, nil
}

// New returns an unbuilt gCode index.
func New(opts Options) *Index {
	opts.fill()
	return &Index{opts: opts}
}

// Name implements core.Method.
func (ix *Index) Name() string { return "gCode" }

// Build implements core.Method.
func (ix *Index) Build(ctx context.Context, ds *graph.Dataset) error {
	ix.codes = make([]graphCode, 0, ds.NumAlive())
	for _, g := range ds.Graphs {
		if err := ctx.Err(); err != nil {
			return err
		}
		if !ds.Alive(g.ID()) {
			continue // tombstoned slots index nothing
		}
		ix.codes = append(ix.codes, ix.encode(g))
	}
	sort.Slice(ix.codes, func(a, b int) bool {
		if ix.codes[a].labelBits != ix.codes[b].labelBits {
			return ix.codes[a].labelBits < ix.codes[b].labelBits
		}
		return ix.codes[a].id < ix.codes[b].id
	})
	ix.built = true
	return nil
}

func labelBit(l graph.Label) uint32 { return 1 << (uint32(l) % signatureBits) }

// encode computes the graph code of g.
func (ix *Index) encode(g *graph.Graph) graphCode {
	n := g.NumVertices()
	gc := graphCode{
		id:        g.ID(),
		nVertices: int32(n),
		nEdges:    int32(g.NumEdges()),
		maxEig:    make([]float64, ix.opts.NumEigenvalues),
		sigs:      make([]vertexSignature, n),
	}
	for v := int32(0); int(v) < n; v++ {
		sig := ix.vertexSig(g, v)
		gc.sigs[v] = sig
		gc.labelBits |= labelBit(sig.label)
		gc.nbrBits |= sig.nbrBits
		for i, e := range sig.eig {
			if e > gc.maxEig[i] {
				gc.maxEig[i] = e
			}
		}
	}
	return gc
}

// vertexSig computes the signature of one vertex: the label/neighbor
// bit-strings over paths of length <= PathLen, and the top eigenvalues of
// the level-PathLen path tree rooted at the vertex.
func (ix *Index) vertexSig(g *graph.Graph, v int32) vertexSignature {
	sig := vertexSignature{
		label:  g.Label(v),
		degree: int32(g.Degree(v)),
		eig:    make([]float64, ix.opts.NumEigenvalues),
	}
	sig.labelBits |= labelBit(g.Label(v))
	for _, w := range g.Neighbors(v) {
		sig.nbrBits |= labelBit(g.Label(w))
	}

	// Build the level-N path tree: nodes are simple paths from v; children
	// extend by one edge. Collect the tree's adjacency matrix.
	type node struct {
		vertex int32
		parent int
	}
	tree := []node{{vertex: v, parent: -1}}
	onPath := make([]bool, g.NumVertices())
	var walk func(cur int32, depth int, parent int, path []int32)
	walk = func(cur int32, depth int, parent int, path []int32) {
		sig.labelBits |= labelBit(g.Label(cur))
		if depth == ix.opts.PathLen {
			return
		}
		for _, w := range g.Neighbors(cur) {
			if onPath[w] {
				continue
			}
			tree = append(tree, node{vertex: w, parent: parent})
			child := len(tree) - 1
			onPath[w] = true
			walk(w, depth+1, child, append(path, w))
			onPath[w] = false
		}
	}
	onPath[v] = true
	walk(v, 0, 0, []int32{v})
	onPath[v] = false

	m := spectral.NewSymmetric(len(tree))
	for i := 1; i < len(tree); i++ {
		m.Set(i, tree[i].parent, 1)
	}
	copy(sig.eig, m.TopEigenvalues(ix.opts.NumEigenvalues))
	// Clamp tiny negatives from numeric noise: path trees are bipartite,
	// their spectra are symmetric, top eigenvalues are >= 0.
	for i, e := range sig.eig {
		if e < 0 && e > -1e-9 {
			sig.eig[i] = 0
		} else if math.IsNaN(e) {
			sig.eig[i] = 0
		}
	}
	return sig
}

// Candidates implements core.Method: phase 1 graph-code dominance, phase 2
// vertex-signature bipartite matching.
func (ix *Index) Candidates(q *graph.Graph) (graph.IDSet, error) {
	if !ix.built {
		return nil, core.ErrNotBuilt
	}
	qc := ix.encode(q)
	v, err := ix.view()
	if err != nil {
		return nil, err
	}
	var out graph.IDSet
	for i, n := 0, v.n(); i < n; i++ {
		s := v.summary(i)
		if !s.dominatesQ(&qc) {
			continue
		}
		sigs, err := v.sigs(i)
		if err != nil {
			return nil, err
		}
		if !signatureMatch(qc.sigs, sigs) {
			continue
		}
		out = append(out, s.id)
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out, nil
}

// scanChunk is the number of graph codes the lazy producer tests per
// emitted chunk.
const scanChunk = 512

var _ core.CandidateChunker = (*Index)(nil)

// CandidateChunks implements core.CandidateChunker: the query is encoded
// eagerly and an ID-ordered view of the code table is built (the table is
// sorted by (labelBits, id), not id — a cheap position sort next to the
// dominance tests), then the two-phase filter runs lazily over windows of
// that view so candidates stream out in ascending ID order.
func (ix *Index) CandidateChunks(q *graph.Graph) (iter.Seq[graph.IDSet], error) {
	if !ix.built {
		return nil, core.ErrNotBuilt
	}
	qc := ix.encode(q)
	v, err := ix.view()
	if err != nil {
		return nil, err
	}
	ids := make([]graph.ID, v.n())
	byID := make([]int32, len(ids))
	for i := range byID {
		ids[i] = v.id(i)
		byID[i] = int32(i)
	}
	sort.Slice(byID, func(a, b int) bool { return ids[byID[a]] < ids[byID[b]] })
	return func(yield func(graph.IDSet) bool) {
		for lo := 0; lo < len(byID); lo += scanChunk {
			hi := min(lo+scanChunk, len(byID))
			var chunk graph.IDSet
			for _, pos := range byID[lo:hi] {
				s := v.summary(int(pos))
				if !s.dominatesQ(&qc) {
					continue
				}
				// A signature decode failure mid-stream conservatively keeps
				// the candidate: the filter may produce false positives
				// (verification prunes them), never false negatives.
				if sigs, err := v.sigs(int(pos)); err == nil && !signatureMatch(qc.sigs, sigs) {
					continue
				}
				chunk = append(chunk, s.id)
			}
			if len(chunk) > 0 && !yield(chunk) {
				return
			}
		}
	}, nil
}

// signatureMatch reports whether every query vertex signature can be
// assigned a distinct dominating data vertex signature — a maximum bipartite
// matching (Kuhn's augmenting paths). If the query embeds in the data graph,
// a perfect matching exists, so failure proves non-containment and the test
// produces no false negatives.
func signatureMatch(qs, gs []vertexSignature) bool {
	if len(qs) > len(gs) {
		return false
	}
	// adjacency: query vertex -> candidate data vertices
	adj := make([][]int32, len(qs))
	for i := range qs {
		for j := range gs {
			if gs[j].dominatesQ(&qs[i]) {
				adj[i] = append(adj[i], int32(j))
			}
		}
		if len(adj[i]) == 0 {
			return false
		}
	}
	matchG := make([]int32, len(gs))
	for i := range matchG {
		matchG[i] = -1
	}
	var try func(int, []bool) bool
	try = func(qi int, visited []bool) bool {
		for _, gj := range adj[qi] {
			if visited[gj] {
				continue
			}
			visited[gj] = true
			if matchG[gj] < 0 || try(int(matchG[gj]), visited) {
				matchG[gj] = int32(qi)
				return true
			}
		}
		return false
	}
	for i := range qs {
		visited := make([]bool, len(gs))
		if !try(i, visited) {
			return false
		}
	}
	return true
}

// SizeBytes implements core.Method. A lazily-opened index reports only
// the materialized signature blocks.
func (ix *Index) SizeBytes() int64 {
	if ix.lazy != nil {
		return ix.lazy.residentBytes()
	}
	var sz int64
	for i := range ix.codes {
		gc := &ix.codes[i]
		sz += 40 + int64(len(gc.maxEig))*8
		sz += int64(len(gc.sigs)) * (16 + int64(len(gc.maxEig))*8)
	}
	return sz
}
