package gcode

import (
	"context"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/subiso"
	"repro/internal/workload"
)

func pathGraph(labels ...graph.Label) *graph.Graph {
	g := graph.New(0)
	for _, l := range labels {
		g.AddVertex(l)
	}
	for i := 1; i < len(labels); i++ {
		g.MustAddEdge(int32(i-1), int32(i))
	}
	return g
}

func build(t *testing.T, ds *graph.Dataset, opts Options) *Index {
	t.Helper()
	ix := New(opts)
	if err := ix.Build(context.Background(), ds); err != nil {
		t.Fatalf("Build: %v", err)
	}
	return ix
}

func TestSignatureDominanceOnEmbedding(t *testing.T) {
	// For every embedding q ⊆ g, each query vertex signature must be
	// dominated by the signature of its image — the soundness core of gCode.
	ds := gen.Synthetic(gen.SynthConfig{NumGraphs: 8, MeanNodes: 12, MeanDensity: 0.25, NumLabels: 3, Seed: 20})
	ix := build(t, ds, Options{})
	qs, err := workload.Generate(ds, workload.Config{NumQueries: 8, QueryEdges: 5, Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	for qi, q := range qs {
		for _, g := range ds.Graphs {
			m := subiso.FindOne(q, g)
			if m == nil {
				continue
			}
			for qv := int32(0); int(qv) < q.NumVertices(); qv++ {
				qsig := ix.vertexSig(q, qv)
				gsig := ix.vertexSig(g, m[qv])
				if !gsig.dominatesQ(&qsig) {
					t.Errorf("query %d: signature of image vertex does not dominate (qv=%d)", qi, qv)
				}
			}
		}
	}
}

func TestCandidatesBasic(t *testing.T) {
	ds := graph.NewDataset("t")
	ds.Add(pathGraph(1, 2, 3))
	ds.Add(pathGraph(4, 5))
	ix := build(t, ds, Options{})
	cands, err := ix.Candidates(pathGraph(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	if !cands.Contains(0) {
		t.Errorf("containing graph filtered out")
	}
	if cands.Contains(1) {
		t.Errorf("label-disjoint graph survived")
	}
}

func TestPhase2DistinctnessFiltering(t *testing.T) {
	// Query star with 3 leaves of label 1; data star with only 2 such
	// leaves: every query signature has *a* dominating vertex, but not
	// three distinct ones — the bipartite matching must reject it.
	q := graph.New(0)
	qc := q.AddVertex(0)
	for i := 0; i < 3; i++ {
		v := q.AddVertex(1)
		q.MustAddEdge(qc, v)
	}
	g := graph.New(0)
	gc := g.AddVertex(0)
	for i := 0; i < 2; i++ {
		v := g.AddVertex(1)
		g.MustAddEdge(gc, v)
	}
	// pad with an unrelated label-2 vertex to keep |V(g)| >= |V(q)|
	g.MustAddEdge(g.AddVertex(2), gc)
	ds := graph.NewDataset("t")
	ds.Add(g)
	ix := build(t, ds, Options{})
	cands, err := ix.Candidates(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 0 {
		t.Errorf("distinctness filtering failed: candidates = %v", cands)
	}
}

func TestNoFalseNegativesRandom(t *testing.T) {
	ds := gen.Synthetic(gen.SynthConfig{NumGraphs: 20, MeanNodes: 14, MeanDensity: 0.2, NumLabels: 4, Seed: 22})
	ix := build(t, ds, Options{})
	qs, err := workload.Generate(ds, workload.Config{NumQueries: 12, QueryEdges: 6, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		cands, err := ix.Candidates(q)
		if err != nil {
			t.Fatal(err)
		}
		for _, g := range ds.Graphs {
			if subiso.Exists(q, g) && !cands.Contains(g.ID()) {
				t.Errorf("query %d: false negative for graph %d", i, g.ID())
			}
		}
	}
}

func TestLargerPathLen(t *testing.T) {
	// PathLen 3 signatures must stay sound.
	ds := gen.Synthetic(gen.SynthConfig{NumGraphs: 10, MeanNodes: 10, MeanDensity: 0.25, NumLabels: 2, Seed: 24})
	ix := build(t, ds, Options{PathLen: 3, NumEigenvalues: 3})
	qs, err := workload.Generate(ds, workload.Config{NumQueries: 6, QueryEdges: 4, Seed: 25})
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		cands, err := ix.Candidates(q)
		if err != nil {
			t.Fatal(err)
		}
		for _, g := range ds.Graphs {
			if subiso.Exists(q, g) && !cands.Contains(g.ID()) {
				t.Errorf("query %d: false negative with PathLen=3", i)
			}
		}
	}
}

func TestUnbuiltAndSize(t *testing.T) {
	ix := New(Options{})
	if _, err := ix.Candidates(pathGraph(1)); err == nil {
		t.Errorf("want error before Build")
	}
	ds := graph.NewDataset("t")
	ds.Add(pathGraph(1, 2))
	built := build(t, ds, Options{})
	if built.SizeBytes() <= 0 {
		t.Errorf("SizeBytes = %d", built.SizeBytes())
	}
}
