// Package std links every built-in method into the engine registry, in the
// style of database/sql drivers. Import it for side effects wherever method
// specs must resolve to all six paper methods, the NoIndex baseline, and
// the composite adaptive router:
//
//	import _ "repro/internal/engine/std"
package std

import (
	_ "repro/internal/ctindex"
	_ "repro/internal/gcode"
	_ "repro/internal/ggsx"
	_ "repro/internal/gindex"
	_ "repro/internal/grapes"
	_ "repro/internal/router"
	_ "repro/internal/scan"
	_ "repro/internal/treedelta"
)
