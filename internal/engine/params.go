package engine

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
)

// Kind is the type of one method parameter.
type Kind int

// Parameter kinds. Every parameter of every registered method is one of
// these; the spec parser converts the textual value accordingly and rejects
// mismatches up front, so factories never see malformed input.
const (
	Int Kind = iota
	Float
	Bool
	String
)

func (k Kind) String() string {
	switch k {
	case Int:
		return "int"
	case Float:
		return "float"
	case Bool:
		return "bool"
	case String:
		return "string"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Field declares one typed parameter of a method: its canonical name (spec
// keys match it case-insensitively), kind, default value, and a one-line
// help string surfaced by CLIs.
type Field struct {
	Name    string
	Kind    Kind
	Default any // int, float64, bool, or string, matching Kind
	Help    string
	// Runtime marks a parameter that changes how an index is held in
	// memory, not what gets built or persisted (e.g. storage=mmap|heap).
	// canonicalSpec omits runtime fields, so an index written under one
	// runtime setting restores under any other.
	Runtime bool
}

func (f Field) validate() error {
	if f.Name == "" {
		return fmt.Errorf("engine: field with empty name")
	}
	ok := false
	switch f.Kind {
	case Int:
		_, ok = f.Default.(int)
	case Float:
		_, ok = f.Default.(float64)
	case Bool:
		_, ok = f.Default.(bool)
	case String:
		_, ok = f.Default.(string)
	default:
		return fmt.Errorf("engine: field %s: unknown kind %v", f.Name, f.Kind)
	}
	if !ok {
		return fmt.Errorf("engine: field %s: default %v (%T) does not match kind %s",
			f.Name, f.Default, f.Default, f.Kind)
	}
	return nil
}

// Params is a resolved, typed parameter set for one method: every declared
// field is present, holding either its default or a spec override. Factories
// read values with the typed getters; lookups of undeclared names panic,
// making a typo in a factory a loud programming error rather than a silent
// default.
type Params struct {
	desc *Descriptor
	vals map[string]any // keyed by canonical field name
	set  map[string]bool
}

func newParams(d *Descriptor) Params {
	p := Params{desc: d, vals: make(map[string]any, len(d.Fields)), set: map[string]bool{}}
	for _, f := range d.Fields {
		p.vals[f.Name] = f.Default
	}
	return p
}

// field resolves a case-insensitive name to its declared field.
func (p Params) field(name string) (Field, bool) {
	for _, f := range p.desc.Fields {
		if strings.EqualFold(f.Name, name) {
			return f, true
		}
	}
	return Field{}, false
}

func (p Params) get(name string, k Kind) any {
	f, ok := p.field(name)
	if !ok {
		panic(fmt.Sprintf("engine: method %s has no parameter %q", p.desc.Name, name))
	}
	if f.Kind != k {
		panic(fmt.Sprintf("engine: parameter %s.%s is %s, read as %s", p.desc.Name, f.Name, f.Kind, k))
	}
	return p.vals[f.Name]
}

// Int returns the value of an Int field.
func (p Params) Int(name string) int { return p.get(name, Int).(int) }

// Float returns the value of a Float field.
func (p Params) Float(name string) float64 { return p.get(name, Float).(float64) }

// Bool returns the value of a Bool field.
func (p Params) Bool(name string) bool { return p.get(name, Bool).(bool) }

// String returns the value of a String field.
func (p Params) String(name string) string { return p.get(name, String).(string) }

// Has reports whether the method declares a parameter with this name.
func (p Params) Has(name string) bool {
	_, ok := p.field(name)
	return ok
}

// IsSet reports whether the parameter was explicitly overridden (by Set or a
// spec string) rather than left at its default.
func (p Params) IsSet(name string) bool {
	f, ok := p.field(name)
	return ok && p.set[f.Name]
}

// Set parses value according to the field's declared kind and stores it.
// Unknown names and unparseable values are errors that name the method and
// list the declared parameters.
func (p Params) Set(name, value string) error {
	f, ok := p.field(name)
	if !ok {
		return fmt.Errorf("engine: method %s has no parameter %q (have %s)",
			p.desc.Name, name, strings.Join(p.desc.fieldNames(), ", "))
	}
	switch f.Kind {
	case Int:
		v, err := strconv.Atoi(value)
		if err != nil {
			return fmt.Errorf("engine: %s.%s: %q is not an int", p.desc.Name, f.Name, value)
		}
		p.vals[f.Name] = v
	case Float:
		v, err := strconv.ParseFloat(value, 64)
		if err != nil {
			return fmt.Errorf("engine: %s.%s: %q is not a float", p.desc.Name, f.Name, value)
		}
		p.vals[f.Name] = v
	case Bool:
		v, err := strconv.ParseBool(value)
		if err != nil {
			return fmt.Errorf("engine: %s.%s: %q is not a bool", p.desc.Name, f.Name, value)
		}
		p.vals[f.Name] = v
	case String:
		p.vals[f.Name] = value
	}
	p.set[f.Name] = true
	return nil
}

// SetInt stores an already-typed int override.
func (p Params) SetInt(name string, v int) error { return p.Set(name, strconv.Itoa(v)) }

// Spec renders the parameter set back into canonical spec form:
// "name" when everything is at its default, "name:k=v,..." otherwise, with
// overridden keys in declaration order. ParseSpec(p.Spec()) reproduces p.
func (p Params) Spec() string {
	var kv []string
	for _, f := range p.desc.Fields {
		if !p.set[f.Name] {
			continue
		}
		kv = append(kv, fmt.Sprintf("%s=%v", f.Name, p.vals[f.Name]))
	}
	if len(kv) == 0 {
		return p.desc.Name
	}
	return p.desc.Name + ":" + strings.Join(kv, ",")
}

// canonicalSpec renders the parameter set like Spec but also omits
// overrides whose value equals the field's default, so two functionally
// identical configurations render identically ("grapes:workers=6" and
// "grapes" when 6 is the default), and omits Runtime fields, so an index
// persisted under storage=heap restores under storage=mmap and vice
// versa. The sharded index manifest uses it, so that respelling a default
// never invalidates a restorable index.
func (p Params) canonicalSpec() string {
	var kv []string
	for _, f := range p.desc.Fields {
		if !p.set[f.Name] || p.vals[f.Name] == f.Default || f.Runtime {
			continue
		}
		kv = append(kv, fmt.Sprintf("%s=%v", f.Name, p.vals[f.Name]))
	}
	if len(kv) == 0 {
		return p.desc.Name
	}
	return p.desc.Name + ":" + strings.Join(kv, ",")
}

// CheckStorageField validates the conventional "storage" runtime
// parameter shared by the disk-native methods: it must be "heap" or
// "mmap". Methods with extra cross-field constraints compose it from
// their own Check.
func CheckStorageField(p Params) error {
	if !p.Has("storage") {
		return nil
	}
	switch v := p.String("storage"); v {
	case core.StorageHeap, core.StorageMmap:
		return nil
	default:
		return fmt.Errorf("engine: storage=%q: must be %q or %q", v, core.StorageHeap, core.StorageMmap)
	}
}

// normalize canonicalizes a method name for registry lookup: lower-cased
// with separators removed, so "tree+delta", "Tree-Delta", and "TreeDelta"
// all resolve to the same entry.
func normalize(name string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(strings.TrimSpace(name)) {
		switch r {
		case '+', '-', '_', ' ':
			continue
		}
		b.WriteRune(r)
	}
	return b.String()
}

// ParseSpec splits a method spec into its descriptor and resolved
// parameters. The grammar is
//
//	spec   := name | name ":" params
//	params := key "=" value { "," key "=" value }
//
// Names match registered names and aliases case-insensitively, ignoring
// "+", "-", "_", and spaces; keys match declared parameter names
// case-insensitively.
func ParseSpec(spec string) (*Descriptor, Params, error) {
	name, rest, hasParams := strings.Cut(spec, ":")
	d, ok := Lookup(name)
	if !ok {
		return nil, Params{}, fmt.Errorf("engine: unknown method %q (registered: %s)",
			strings.TrimSpace(name), strings.Join(Names(), ", "))
	}
	p := d.Params()
	if hasParams {
		if strings.TrimSpace(rest) == "" {
			return nil, Params{}, fmt.Errorf("engine: spec %q: empty parameter list after %q", spec, name)
		}
		for _, pair := range strings.Split(rest, ",") {
			k, v, ok := strings.Cut(pair, "=")
			if !ok {
				return nil, Params{}, fmt.Errorf("engine: spec %q: parameter %q is not key=value", spec, pair)
			}
			if err := p.Set(strings.TrimSpace(k), strings.TrimSpace(v)); err != nil {
				return nil, Params{}, err
			}
		}
	}
	// Cross-field validation runs on the defaults too: a spec is valid iff
	// the configuration it resolves to is.
	if d.Check != nil {
		if err := d.Check(p); err != nil {
			return nil, Params{}, err
		}
	}
	return d, p, nil
}

func (d *Descriptor) fieldNames() []string {
	names := make([]string, len(d.Fields))
	for i, f := range d.Fields {
		names[i] = f.Name
	}
	sort.Strings(names)
	return names
}
