package engine_test

import (
	"context"
	"errors"
	"iter"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/testutil/leak"
)

// pullFirstAnswer starts a pull-based consumer over the stream and returns
// after the first answer: the stream goroutine is then parked in its yield
// with the engine's read lock released (chunked locking), which is exactly
// the stalled-consumer state these tests exercise.
func pullFirstAnswer(t *testing.T, seq iter.Seq2[graph.ID, error]) (next func() (graph.ID, error, bool), stop func()) {
	t.Helper()
	next, stop = iter.Pull2(seq)
	id, err, ok := next()
	if !ok {
		t.Fatal("stream ended before its first answer")
	}
	if err != nil {
		t.Fatalf("stream: %v", err)
	}
	_ = id
	return next, stop
}

// TestMutationCompletesWhileStreamStalled is the regression test for the
// chunked-locking rewrite: under the previous whole-iteration read lock, a
// stream stalled mid-consumption blocked AddGraph forever. Now the lock is
// released around every yield, the mutation completes promptly, and the
// stalled stream — whose plan is now a generation behind — aborts with
// ErrStreamStale when resumed.
func TestMutationCompletesWhileStreamStalled(t *testing.T) {
	defer leak.Check(t)()
	ctx := context.Background()
	ds := tinyDataset(t)
	eng, err := engine.Open(ctx, ds, engine.WithSpec("noindex"))
	if err != nil {
		t.Fatal(err)
	}
	queries := tinyQueries(t, ds)
	var q *graph.Graph
	for _, cand := range queries {
		res, err := eng.Query(ctx, cand)
		if err != nil {
			t.Fatal(err)
		}
		// At least two answers: after the first is pulled there is provably
		// more stream left, so the resumed stream must hit the epoch check.
		if len(res.Answers) >= 2 {
			q = cand
			break
		}
	}
	if q == nil {
		t.Fatal("no workload query with >= 2 answers; pick a different seed")
	}

	next, stop := pullFirstAnswer(t, eng.Stream(ctx, q))
	defer stop()

	// The stream is stalled between chunks; the mutation must not block.
	pool := gen.Synthetic(gen.SynthConfig{
		NumGraphs: 1, MeanNodes: 8, MeanDensity: 0.3, NumLabels: 4, Seed: 77,
	})
	done := make(chan error, 1)
	go func() {
		_, err := eng.AddGraph(ctx, pool.Graphs[0].ShallowWithID(0))
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("AddGraph: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("mutation blocked behind a stalled stream")
	}

	// Resuming the stale stream must surface ErrStreamStale, not silently
	// mix two index generations.
	for {
		_, err, ok := next()
		if !ok {
			t.Fatal("stale stream ended without an error")
		}
		if err != nil {
			if !errors.Is(err, engine.ErrStreamStale) {
				t.Fatalf("stream err = %v, want ErrStreamStale", err)
			}
			break
		}
	}
}

// TestShardedMutationCompletesWhileStreamStalled is the sharded analogue.
func TestShardedMutationCompletesWhileStreamStalled(t *testing.T) {
	defer leak.Check(t)()
	ctx := context.Background()
	ds := tinyDataset(t)
	s, err := engine.OpenSharded(ctx, ds, 3, engine.WithSpec("noindex"))
	if err != nil {
		t.Fatal(err)
	}
	queries := tinyQueries(t, ds)
	var q *graph.Graph
	for _, cand := range queries {
		res, err := s.Query(ctx, cand)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Answers) >= 2 {
			q = cand
			break
		}
	}
	if q == nil {
		t.Fatal("no workload query with >= 2 answers; pick a different seed")
	}

	next, stop := pullFirstAnswer(t, s.Stream(ctx, q))
	defer stop()

	pool := gen.Synthetic(gen.SynthConfig{
		NumGraphs: 1, MeanNodes: 8, MeanDensity: 0.3, NumLabels: 4, Seed: 78,
	})
	done := make(chan error, 1)
	go func() {
		_, err := s.AddGraph(ctx, pool.Graphs[0].ShallowWithID(0))
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("AddGraph: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("mutation blocked behind a stalled sharded stream")
	}

	for {
		_, err, ok := next()
		if !ok {
			t.Fatal("stale sharded stream ended without an error")
		}
		if err != nil {
			if !errors.Is(err, engine.ErrStreamStale) {
				t.Fatalf("stream err = %v, want ErrStreamStale", err)
			}
			break
		}
	}
}
