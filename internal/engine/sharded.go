package engine

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"iter"
	"os"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/diskfmt"
	"repro/internal/graph"
)

// ShardOf returns the shard (in [0, shards)) that graph id is assigned to.
// The assignment is a pure function of the id — an FNV-1a hash of its bytes
// reduced modulo the shard count — so a dataset always partitions the same
// way and persisted shard files remain valid across runs.
func ShardOf(id graph.ID, shards int) int {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	x := uint32(id)
	for i := 0; i < 4; i++ {
		h ^= uint64(byte(x >> (8 * i)))
		h *= prime64
	}
	return int(h % uint64(shards))
}

// ShardIndexPath returns the file path of shard i of a sharded index rooted
// at base: "<base>.shard-<i>". The manifest lives at base itself.
func ShardIndexPath(base string, i int) string {
	return fmt.Sprintf("%s.shard-%d", base, i)
}

// shardManifestMagic heads the manifest file of a persisted sharded index;
// bump the version when the layout changes. v2 added the dataset epoch, so
// shard files persisted before a mutation can never restore silently
// against the mutated dataset; v3 records the on-disk format of every
// shard file (v1 gob stream or v2 mmap-able container).
const shardManifestMagic = "repro-shards v3"

// shardFileMagic heads every legacy (v1) shard index file; the header line
// also carries the canonical spec the shard was built with, so a shard file
// overwritten under a different spec fails its load and rebuilds even when
// a stale manifest (from a save that crashed before its final manifest
// write) still endorses it. v2 shard files are diskfmt containers carrying
// the spec in their binary header instead.
const shardFileMagic = "repro-shard v1"

// shard is one horizontal partition of a sharded engine: a sub-dataset of
// re-homed graphs, the method index built over it, and the mapping from
// shard-local graph ids back to parent-dataset ids.
type shard struct {
	sub      *graph.Dataset
	global   []graph.ID // local id -> parent dataset id, ascending
	method   core.Method
	restored bool
	build    core.BuildStats
	// Lazy first-touch loading (storage=mmap restores only): loaded flips
	// once the shard's index is restored or rebuilt; until then every
	// access goes through Sharded.ensureShard, serialized on loadMu.
	loaded atomic.Bool
	loadMu sync.Mutex
}

func (sh *shard) empty() bool { return sh.sub.Len() == 0 }

// toGlobal maps a sorted shard-local IDSet to parent-dataset ids. The local
// -> global mapping is monotonic (graphs are assigned to shards in parent
// order), so the result is sorted too.
func (sh *shard) toGlobal(local graph.IDSet) graph.IDSet {
	out := make(graph.IDSet, len(local))
	for i, id := range local {
		out[i] = sh.global[id]
	}
	return out
}

// Sharded is a horizontally partitioned engine over one dataset: the graphs
// are hash-partitioned into N sub-datasets, one method index is built per
// shard (concurrently, on a pool bounded by GOMAXPROCS), and queries fan out
// across the shards with their candidate and answer sets merged back —
// order-preserved — into the same QueryResult / iter.Seq2 surface the
// unsharded Engine serves. Construct with OpenSharded.
//
// Because filtering never produces false negatives and subgraph-isomorphism
// answers depend on each dataset graph alone, a sharded engine returns
// exactly the unsharded engine's answer set for every method (candidate sets
// may differ for the frequent-mining methods, whose feature selection is
// dataset-global).
type Sharded struct {
	// mu serializes mutations (write side) against queries (read side),
	// mirroring Engine.
	mu            sync.RWMutex
	ds            *graph.Dataset
	shards        []*shard
	desc          *Descriptor
	params        Params // resolved params fresh shard instances rebuild from
	spec          string // canonical spec all shards were constructed from
	indexPath     string // persistence base ("" = none); mutated shards rewrite their file + the manifest
	build         core.BuildStats
	restored      int  // non-empty shards restored from disk
	allRestored   bool // every non-empty shard restored (nothing built)
	verifyWorkers int
}

// OpenSharded hash-partitions ds into the given number of shards, builds (or
// restores) one index of the configured method per shard, and returns the
// fan-out engine over them.
//
// Shard indexes build concurrently on a pool bounded by GOMAXPROCS; the
// first failure (or ctx cancellation) stops the remaining builds. With
// WithIndexPath(base), each shard persists independently and atomically at
// ShardIndexPath(base, i) under a manifest at base, so a corrupt or missing
// shard file rebuilds alone while the healthy shards restore. A manifest
// that does not match the dataset, shard count, or method spec invalidates
// all shard files and rebuilds everything.
//
// The method must be selected with WithSpec: OpenSharded constructs one
// instance per shard, so WithMethod's single pre-built instance is rejected.
func OpenSharded(ctx context.Context, ds *graph.Dataset, shards int, opts ...Option) (*Sharded, error) {
	if ds == nil {
		return nil, errors.New("engine: nil dataset")
	}
	if shards < 1 {
		return nil, fmt.Errorf("engine: shard count %d < 1", shards)
	}
	cfg := config{spec: "grapes", verifyWorkers: runtime.GOMAXPROCS(0)}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.method != nil {
		return nil, errors.New("engine: OpenSharded constructs one method per shard; select it with WithSpec, not WithMethod")
	}
	d, p, err := ParseSpec(cfg.spec)
	if err != nil {
		return nil, err
	}
	s := &Sharded{
		ds:            ds,
		shards:        partition(ds, shards),
		desc:          d,
		params:        p,
		spec:          p.canonicalSpec(),
		indexPath:     cfg.indexPath,
		verifyWorkers: cfg.verifyWorkers,
	}
	for _, sh := range s.shards {
		if sh.method, err = d.New(p); err != nil {
			return nil, err
		}
	}

	manifestOK := false
	if cfg.indexPath != "" {
		// Fail fast before any build, as Open does — not at save time
		// after the full parallel build has already been paid.
		if _, ok := s.shards[0].method.(core.Persistable); !ok {
			return nil, fmt.Errorf("engine: %s does not support index persistence",
				s.shards[0].method.Name())
		}
		if manifestOK, err = s.manifestMatches(cfg.indexPath); err != nil {
			return nil, err
		}
		if manifestOK {
			for i, sh := range s.shards {
				if sh.empty() {
					continue // nothing to load, nothing to build
				}
				if storageModeOf(sh.method) == core.StorageMmap {
					// Lazy first-touch load: the manifest endorses the file,
					// so defer even the O(header) open until a query, a
					// mutation, or the background warmer touches the shard.
					sh.restored = true
					continue
				}
				if s.loadShardIndex(cfg.indexPath, i) {
					sh.restored = true
					sh.loaded.Store(true)
					continue
				}
				// A failed load may have half-mutated the instance; rebuild
				// from a pristine one (same policy as Open).
				if sh.method, err = d.New(p); err != nil {
					return nil, err
				}
			}
		}
	}

	t0 := time.Now()
	err = ForEachBounded(ctx, len(s.shards), runtime.GOMAXPROCS(0), func(ctx context.Context, i int) error {
		sh := s.shards[i]
		if sh.restored || sh.empty() {
			return nil
		}
		st, err := core.BuildTimed(ctx, sh.method, sh.sub)
		if err != nil {
			return fmt.Errorf("engine: building %s shard %d/%d: %w", sh.method.Name(), i, len(s.shards), err)
		}
		sh.build = st
		sh.loaded.Store(true)
		return nil
	})
	buildWall := time.Since(t0)
	if err != nil {
		return nil, err
	}
	built, nonEmpty := false, 0
	for _, sh := range s.shards {
		if sh.empty() {
			sh.loaded.Store(true) // nothing to load: always serviceable
		} else {
			nonEmpty++
			if sh.restored {
				s.restored++
			} else {
				built = true
			}
		}
		s.build.SizeBytes += sh.method.SizeBytes()
		s.build.Features += sh.build.Features
	}
	s.allRestored = nonEmpty > 0 && s.restored == nonEmpty
	if built {
		s.build.Elapsed = buildWall
	}
	// Persistence happens outside the timed build phase, as in Open, so
	// build stats compare like for like between the two engines.
	if cfg.indexPath != "" {
		for i, sh := range s.shards {
			if sh.restored || sh.empty() {
				continue
			}
			if err := s.saveShardIndex(cfg.indexPath, i); err != nil {
				return nil, err
			}
		}
		if !manifestOK {
			if err := s.writeManifest(cfg.indexPath); err != nil {
				return nil, err
			}
		}
	}
	for _, sh := range s.shards {
		if !sh.loaded.Load() {
			// Materialize deferred shards off the open path; Ready() (and
			// /readyz) reports false until the warmer has touched them all.
			go s.warmShards()
			break
		}
	}
	return s, nil
}

// warmShards loads every still-deferred shard in the background so a node
// becomes Ready without waiting for queries to touch each shard.
func (s *Sharded) warmShards() {
	for i := range s.shards {
		_ = s.ensureShard(context.Background(), i)
	}
}

// ensureShard makes shard i's index serviceable, loading it on first touch
// when OpenSharded deferred it (storage=mmap restores). A load failure —
// the file vanished or rotted since the manifest endorsed it — falls back
// to rebuilding that one shard in place.
func (s *Sharded) ensureShard(ctx context.Context, i int) error {
	sh := s.shards[i]
	if sh.loaded.Load() {
		return nil
	}
	sh.loadMu.Lock()
	defer sh.loadMu.Unlock()
	if sh.loaded.Load() {
		return nil
	}
	if s.loadShardIndex(s.indexPath, i) {
		if warm, ok := sh.method.(core.Warmable); ok {
			warm.WarmIndex()
		}
		sh.loaded.Store(true)
		return nil
	}
	fresh, err := s.desc.New(s.params)
	if err != nil {
		return err
	}
	st, err := core.BuildTimed(ctx, fresh, sh.sub)
	if err != nil {
		return fmt.Errorf("engine: rebuilding %s shard %d/%d on first touch: %w",
			fresh.Name(), i, len(s.shards), err)
	}
	sh.method = fresh
	sh.build = st
	sh.restored = false
	if s.indexPath != "" {
		if err := s.saveShardIndex(s.indexPath, i); err != nil {
			return err
		}
	}
	sh.loaded.Store(true)
	return nil
}

// Ready reports whether every shard's index is serviceable without further
// materialization — false only while lazily-deferred shards are still
// loading (first touch or background warm). Queries are correct either
// way: an unloaded shard loads inline when a query reaches it.
func (s *Sharded) Ready() bool {
	for _, sh := range s.shards {
		if !sh.loaded.Load() {
			return false
		}
	}
	return true
}

// partition assigns every graph of ds to its ShardOf shard, re-homing it
// into the shard's sub-dataset as a shallow copy with a shard-local id. The
// sub-datasets share the parent's label dictionary. Tombstones propagate:
// a graph the parent has removed is re-homed (so the global mapping stays
// positional) and immediately tombstoned in its sub-dataset, so opening a
// sharded engine over an already-mutated dataset never resurrects it.
func partition(ds *graph.Dataset, n int) []*shard {
	shards := make([]*shard, n)
	for i := range shards {
		sub, global := PartitionShard(ds, n, i)
		shards[i] = &shard{sub: sub, global: global}
	}
	return shards
}

// PartitionShard extracts shard i of an n-way hash partition of ds: a
// sub-dataset of shallow re-homed graphs (sharing the parent's label
// dictionary) plus the shard-local -> parent id mapping, ascending. A graph
// the parent has tombstoned is re-homed and immediately tombstoned in the
// sub-dataset, so the mapping stays positional and a removed graph can
// never resurface from a partition built after its removal. The in-process
// Sharded engine and the multi-node cluster tier partition through this one
// function, so a cluster node owning shard i indexes exactly the graphs the
// single-process engine's shard i does.
func PartitionShard(ds *graph.Dataset, n, i int) (*graph.Dataset, []graph.ID) {
	sub := graph.NewDataset(fmt.Sprintf("%s/shard-%d", ds.Name, i))
	sub.Dict = ds.Dict
	var global []graph.ID
	for _, g := range ds.Graphs {
		if ShardOf(g.ID(), n) != i {
			continue
		}
		global = append(global, g.ID())
		local := sub.Add(g.ShallowWithID(0)) // Add assigns the shard-local id
		if !ds.Alive(g.ID()) {
			sub.Remove(local)
		}
	}
	return sub, global
}

// manifest renders the sharded-index manifest: a short text file binding
// the shard files to the shard count, dataset size, epoch and structural
// version tag, canonical method spec, and per-shard on-disk format they
// were written for. The format entry is v2 (diskfmt container) for methods
// implementing core.SectionPersistable, v1 (gob stream) otherwise, and "-"
// for empty shards that have no file; it is a pure function of the method,
// so manifests compare by string equality, and a manifest written before
// a method gained v2 support mismatches — invalidating the stale v1 shard
// files wholesale instead of sniffing each.
func (s *Sharded) manifest() string {
	formats := make([]string, len(s.shards))
	for i, sh := range s.shards {
		switch {
		case sh.empty():
			formats[i] = "-"
		case isSectionPersistable(sh.method):
			formats[i] = "v2"
		default:
			formats[i] = "v1"
		}
	}
	return fmt.Sprintf("%s\nshards %d\ngraphs %d\nepoch %d\ntag %x\nspec %s\nformats %s\n",
		shardManifestMagic, len(s.shards), s.ds.Len(), s.ds.Epoch(), s.ds.VersionTag(), s.spec,
		strings.Join(formats, ","))
}

func isSectionPersistable(m core.Method) bool {
	_, ok := m.(core.SectionPersistable)
	return ok
}

// manifestMatches reports whether the manifest at base matches this engine's
// partitioning. A missing manifest is a mismatch (rebuild everything); a
// present-but-unreadable one is an error, mirroring Open.
func (s *Sharded) manifestMatches(base string) (bool, error) {
	data, err := os.ReadFile(base)
	if errors.Is(err, fs.ErrNotExist) {
		return false, nil
	}
	if err != nil {
		return false, fmt.Errorf("engine: opening shard manifest at %s: %w", base, err)
	}
	return string(data) == s.manifest(), nil
}

// writeManifest atomically writes the manifest at base. It is written after
// every shard file, so a crash mid-save leaves either the old manifest
// (whose shard files restore as usual, with any overwritten shard failing
// its load and rebuilding alone) or no new manifest (full rebuild) — never a
// manifest endorsing shard files that were not all written.
func (s *Sharded) writeManifest(base string) error {
	return AtomicWriteFile(base, func(w io.Writer) error {
		_, err := io.WriteString(w, s.manifest())
		return err
	})
}

// saveShardIndex atomically writes shard i's index file under base.
// Section-persistable methods get a v2 container stamped with the
// sub-dataset's epoch/tag and the engine's canonical spec — partitioning
// is deterministic, so another process partitioning the same parent
// dataset computes the same stamps and can restore (or ship) the file
// byte-for-byte. Legacy methods get the v1 form: a header line binding
// the file to the spec, then the method's own gob stream.
func (s *Sharded) saveShardIndex(base string, i int) error {
	sh := s.shards[i]
	m := sh.method
	if sp, ok := m.(core.SectionPersistable); ok {
		w := diskfmt.NewWriter(sh.sub.Epoch(), sh.sub.VersionTag(), s.spec)
		if err := sp.SaveIndexV2(w); err != nil {
			return fmt.Errorf("engine: saving %s shard %d: %w", m.Name(), i, err)
		}
		return AtomicWriteFile(ShardIndexPath(base, i), func(out io.Writer) error {
			_, err := w.WriteTo(out)
			return err
		})
	}
	persist, ok := m.(core.Persistable)
	if !ok {
		return fmt.Errorf("engine: %s does not support index persistence", m.Name())
	}
	return AtomicWriteFile(ShardIndexPath(base, i), func(w io.Writer) error {
		if _, err := fmt.Fprintf(w, "%s %s\n", shardFileMagic, s.spec); err != nil {
			return err
		}
		if err := persist.SaveIndex(w); err != nil {
			return fmt.Errorf("engine: saving %s shard %d: %w", m.Name(), i, err)
		}
		return nil
	})
}

// loadShardIndex tries to restore shard i's index from its file under base,
// reporting success. Any failure — missing file, wrong header spec, corrupt
// content — just means this one shard rebuilds.
func (s *Sharded) loadShardIndex(base string, i int) bool {
	sh := s.shards[i]
	path := ShardIndexPath(base, i)
	f, err := os.Open(path)
	if err != nil {
		return false
	}
	var magic [8]byte
	n, _ := io.ReadFull(f, magic[:])
	if n == len(magic) && diskfmt.IsMagic(magic[:]) {
		f.Close()
		sp, ok := sh.method.(core.SectionPersistable)
		if !ok {
			return false
		}
		r, err := diskfmt.Open(path, storageModeOf(sh.method) == core.StorageMmap)
		if err != nil {
			return false
		}
		// The binary header carries what the v1 header line + manifest did:
		// the spec the shard was built with and the sub-dataset version it
		// was persisted at.
		if r.Spec() != s.spec || r.Epoch() != sh.sub.Epoch() || r.Tag() != sh.sub.VersionTag() {
			r.Close()
			return false
		}
		if sp.LoadIndexV2(r, sh.sub) != nil {
			r.Close()
			return false
		}
		if storageModeOf(sh.method) != core.StorageMmap {
			r.Close()
		}
		return true
	}
	defer f.Close()
	persist, ok := sh.method.(core.Persistable)
	if !ok {
		return false
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return false
	}
	br := bufio.NewReader(f)
	header, err := br.ReadString('\n')
	if err != nil || strings.TrimSuffix(header, "\n") != shardFileMagic+" "+s.spec {
		return false
	}
	return persist.LoadIndex(br, sh.sub) == nil
}

// ForEachBounded runs f(i) for i in [0, n) on a pool of bounded parallelism.
// The first error cancels the context passed to the remaining calls and is
// returned; a parent-context cancellation surfaces as ctx.Err().
func ForEachBounded(parent context.Context, n, workers int, f func(ctx context.Context, i int) error) error {
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	ctx, cancel := context.WithCancel(parent)
	defer cancel()
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				if err := f(ctx, i); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					cancel()
				}
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return parent.Err()
}

// Shards returns the number of shards.
func (s *Sharded) Shards() int { return len(s.shards) }

// Dataset returns the (unpartitioned) dataset the engine serves queries over.
func (s *Sharded) Dataset() *graph.Dataset { return s.ds }

// Name returns the method's display name.
func (s *Sharded) Name() string { return s.desc.Display }

// Spec returns the canonical method spec every shard was constructed from.
func (s *Sharded) Spec() string { return s.spec }

// SizeBytes returns the total in-memory size of all shard indexes.
func (s *Sharded) SizeBytes() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.build.SizeBytes
}

// Restored reports whether every non-empty shard was restored from disk
// (nothing was built). It is false for an empty dataset, where there was
// nothing to restore.
func (s *Sharded) Restored() bool { return s.allRestored }

// RestoredShards returns how many non-empty shards were restored from disk
// rather than built.
func (s *Sharded) RestoredShards() int { return s.restored }

// BuildStats reports aggregate index construction: Elapsed is the wall-clock
// time of the parallel build phase (zero when every shard was restored),
// SizeBytes the total size of all shard indexes, and Features the sum over
// built shards. Per-shard figures are available from ShardStats.
func (s *Sharded) BuildStats() core.BuildStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.build
}

// ShardStats returns per-shard build stats, indexed by shard. Restored
// shards report the zero value, mirroring Engine.BuildStats. Summing the
// Elapsed fields gives the serial-equivalent build time; dividing that by
// BuildStats().Elapsed gives the parallel build speedup.
func (s *Sharded) ShardStats() []core.BuildStats {
	out := make([]core.BuildStats, len(s.shards))
	for i, sh := range s.shards {
		out[i] = sh.build
	}
	return out
}

// ShardLen returns the number of graphs in shard i.
func (s *Sharded) ShardLen(i int) int { return s.shards[i].sub.Len() }

// perShardWorkers divides the configured verification parallelism across
// the shard fan-out so a query does not oversubscribe the scheduler.
func (s *Sharded) perShardWorkers() int {
	w := s.verifyWorkers / len(s.shards)
	if w < 1 {
		w = 1
	}
	return w
}

// fanoutWorkers sizes the shard fan-out pool so that the total verification
// concurrency (concurrent shards × perShardWorkers) never exceeds the
// configured WithVerifyWorkers budget — WithVerifyWorkers(1) really is the
// paper's serial measurement mode, shards processed one at a time.
func (s *Sharded) fanoutWorkers() int {
	w := s.verifyWorkers
	if max := runtime.GOMAXPROCS(0); w > max {
		w = max
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Query processes one subgraph query by fanning it out across all shards
// concurrently and merging the per-shard results: Candidates and Answers
// are the sorted unions of the shard sets (mapped back to parent-dataset
// ids). Timings stay truthful even when shards outnumber the fan-out
// pool's workers and run in waves: FilterTime is the slowest shard's
// filter stage, and VerifyTime is the remainder of the fan-out's measured
// wall time, so TotalTime() is the query's real wall-clock latency —
// directly comparable to an unsharded engine's.
func (s *Sharded) Query(ctx context.Context, q *graph.Graph) (*core.QueryResult, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	results := make([]*core.QueryResult, len(s.shards))
	workers := s.perShardWorkers()
	t0 := time.Now()
	err := ForEachBounded(ctx, len(s.shards), s.fanoutWorkers(), func(ctx context.Context, i int) error {
		sh := s.shards[i]
		if sh.empty() {
			results[i] = &core.QueryResult{}
			return nil
		}
		if err := s.ensureShard(ctx, i); err != nil {
			return err
		}
		proc := core.Processor{Method: sh.method, DS: sh.sub, VerifyWorkers: workers}
		r, err := proc.QueryCtx(ctx, q)
		if err != nil {
			return err
		}
		r.Candidates = sh.toGlobal(r.Candidates)
		r.Answers = sh.toGlobal(r.Answers)
		results[i] = r
		return nil
	})
	wall := time.Since(t0)
	if err != nil {
		return nil, err
	}
	merged := s.mergeSets(results)
	for _, r := range results {
		if r.FilterTime > merged.FilterTime {
			merged.FilterTime = r.FilterTime
		}
	}
	if merged.VerifyTime = wall - merged.FilterTime; merged.VerifyTime < 0 {
		merged.VerifyTime = 0
	}
	return merged, nil
}

// mergeSets folds per-shard candidate and answer sets (already mapped to
// global ids) into one QueryResult, leaving the timings to the caller —
// fan-out and serial execution attribute time differently.
func (s *Sharded) mergeSets(results []*core.QueryResult) *core.QueryResult {
	merged := &core.QueryResult{Method: s.Name()}
	for _, r := range results {
		merged.Candidates = merged.Candidates.Union(r.Candidates)
		merged.Answers = merged.Answers.Union(r.Answers)
		merged.Produced += r.Produced
		merged.Verified += r.Verified
	}
	return merged
}

// querySerial is Query without the shard fan-out: shards are processed one
// after another with serial verification, so stage times sum. QueryBatch
// uses it so batch-level parallelism is the only pool in play.
func (s *Sharded) querySerial(ctx context.Context, q *graph.Graph) (*core.QueryResult, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	results := make([]*core.QueryResult, 0, len(s.shards))
	for i, sh := range s.shards {
		if sh.empty() {
			continue
		}
		if err := s.ensureShard(ctx, i); err != nil {
			return nil, err
		}
		proc := core.Processor{Method: sh.method, DS: sh.sub, VerifyWorkers: 1}
		r, err := proc.QueryCtx(ctx, q)
		if err != nil {
			return nil, err
		}
		r.Candidates = sh.toGlobal(r.Candidates)
		r.Answers = sh.toGlobal(r.Answers)
		results = append(results, r)
	}
	merged := s.mergeSets(results)
	for _, r := range results {
		merged.FilterTime += r.FilterTime
		merged.VerifyTime += r.VerifyTime
	}
	return merged, nil
}

// QueryBatch processes a workload concurrently, returning per-query results
// in input order with the same semantics as Processor.QueryBatch (shared
// via core.QueryBatchFunc). Parallelism is at the batch level only — each
// query walks the shards serially, for the same reason Engine.QueryBatch
// verifies serially: compounding pools oversubscribes the scheduler.
func (s *Sharded) QueryBatch(ctx context.Context, queries []*graph.Graph, opts core.BatchOptions) ([]core.BatchResult, error) {
	return core.QueryBatchFunc(ctx, queries, opts, s.querySerial)
}

// Stream processes one query and yields matching parent-dataset graph IDs
// as verification confirms them, in ascending ID order, without
// materializing the answer set — the sharded counterpart of Engine.Stream.
// Filtering fans out across the shards concurrently; the shard candidate
// streams are then merged by a k-way walk that verifies lazily in global
// order. A filtering failure or context cancellation is yielded once as a
// non-nil error, then the sequence ends.
// Stream does NOT hold the engine's read lock across yields: like
// Engine.Stream it verifies a growing quantum per lock hold, releases the
// lock before every yield, and aborts with an ErrStreamStale-wrapped error
// when a mutation lands mid-stream. The per-shard candidate sets are never
// materialized — each shard contributes a lazy cursor to the merge.
func (s *Sharded) Stream(ctx context.Context, q *graph.Graph) iter.Seq2[graph.ID, error] {
	return s.StreamOpts(ctx, q, core.StreamOptions{})
}

// Save persists every shard's index under base — ShardIndexPath(base, i) per
// shard, each written atomically — and then the manifest at base, so a later
// OpenSharded with WithIndexPath(base) restores instead of rebuilding.
func (s *Sharded) Save(base string) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	for i, sh := range s.shards {
		if sh.empty() {
			continue
		}
		// A still-deferred shard must materialize before it can serialize.
		if err := s.ensureShard(context.Background(), i); err != nil {
			return err
		}
		if err := s.saveShardIndex(base, i); err != nil {
			return err
		}
	}
	return s.writeManifest(base)
}

// String summarizes the engine for logs.
func (s *Sharded) String() string {
	lens := make([]string, len(s.shards))
	for i, sh := range s.shards {
		lens[i] = fmt.Sprint(sh.sub.Len())
	}
	return fmt.Sprintf("sharded{%s x%d graphs [%s]}", s.spec, len(s.shards), strings.Join(lens, " "))
}
