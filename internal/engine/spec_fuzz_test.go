package engine_test

import (
	"strings"
	"testing"

	"repro/internal/engine"
	_ "repro/internal/engine/std"
)

// TestCompositeSpecParses covers the composite router spec end to end at
// the parse layer: the default spec, explicit method lists, and policy
// overrides all resolve; the Factory refuses direct construction (a
// composite opens through OpenAny).
func TestCompositeSpecParses(t *testing.T) {
	valid := []string{
		"router",
		"router:methods=grapes+ggsx",
		"router:methods=grapes+ggsx+gcode,policy=race",
		// Aliases normalize inside the list ("+" itself is the separator,
		// so the "tree+delta" display spelling is written separator-free).
		"router:methods=GGSX+TreeDelta+gcode,policy=static",
		"router:policy=learned,epsilon=0.25,seed=7",
		"router:epsilon=0", // explicit zero means greedy-only, not "default"
	}
	for _, spec := range valid {
		d, p, err := engine.ParseSpec(spec)
		if err != nil {
			t.Errorf("ParseSpec(%q): %v", spec, err)
			continue
		}
		if d.OpenQuerier == nil {
			t.Errorf("ParseSpec(%q): descriptor is not composite", spec)
		}
		// Canonical re-render parses back to the same descriptor.
		canon := p.Spec()
		if d2, _, err := engine.ParseSpec(canon); err != nil || d2 != d {
			t.Errorf("ParseSpec(canonical %q): %v (descriptor %v)", canon, err, d2)
		}
		if _, err := engine.New(spec); err == nil {
			t.Errorf("New(%q): composite spec must refuse direct construction", spec)
		}
	}
}

// TestCompositeSpecErrors pins the error paths of the composite grammar:
// unknown methods inside a router:methods= list fail at parse time with the
// offending name in the message, as do duplicate and too-short lists,
// nested composites, and bad policy parameters.
func TestCompositeSpecErrors(t *testing.T) {
	cases := []struct {
		spec    string
		wantSub string
	}{
		{"router:methods=grapes+nosuch", `unknown method "nosuch"`},
		{"router:methods=nosuch+grapes", `unknown method "nosuch"`},
		{"router:methods=grapes+ggsx+bogus,policy=race", `unknown method "bogus"`},
		{"router:methods=grapes", "at least two"},
		{"router:methods=grapes+", `unknown method ""`},
		{"router:methods=grapes+grapes", "listed twice"},
		{"router:methods=grapes+Grapes", "listed twice"}, // aliases of one method
		{"router:methods=grapes+router", "nest composite"},
		{"router:policy=bogus", "unknown policy"},
		{"router:epsilon=1.5", "outside [0, 1]"},
		{"router:epsilon=-0.1", "outside [0, 1]"},
	}
	for _, tc := range cases {
		_, _, err := engine.ParseSpec(tc.spec)
		if err == nil {
			t.Errorf("ParseSpec(%q): want error containing %q, got nil", tc.spec, tc.wantSub)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("ParseSpec(%q): error %q does not mention %q", tc.spec, err, tc.wantSub)
		}
	}
}

// FuzzParseSpec drives the full spec grammar — plain names, typed
// parameters, and the composite router's nested method list — checking the
// parser's core invariant: a spec that parses re-renders to a canonical
// form that parses back to the same descriptor and the same canonical
// form (idempotence), and never panics on arbitrary input.
func FuzzParseSpec(f *testing.F) {
	seeds := []string{
		// Every method family with and without parameters.
		"grapes",
		"grapes:maxPathLen=3,workers=2",
		"GGSX:maxPathLen=4",
		"CT-Index:fingerprintBits=512,maxTreeSize=3",
		"gindex:maxPatterns=20000,supportRatio=0.2",
		"tree+delta:supportRatio=0.05",
		"gCode:pathLen=2",
		"NoIndex",
		// Composite specs: the router's nested '+'-separated method list.
		"router",
		"router:methods=grapes+ggsx",
		"router:methods=grapes+ggsx+gcode,policy=race,epsilon=0.2",
		"router:methods=GGSX+CT-Index,policy=static,seed=42",
		// Error-shaped inputs the parser must reject without panicking.
		"router:methods=grapes+nosuch",
		"router:methods=grapes",
		"router:policy=bogus",
		"bogus",
		"grapes:",
		"grapes:maxPathLen",
		"grapes:maxPathLen=abc",
		"grapes:=3",
		":",
		"",
		"router:methods=",
		"router:methods=+",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		d, p, err := engine.ParseSpec(spec)
		if err != nil {
			return
		}
		canon := p.Spec()
		d2, p2, err := engine.ParseSpec(canon)
		if err != nil {
			t.Fatalf("canonical spec %q of %q does not parse: %v", canon, spec, err)
		}
		if d2 != d {
			t.Fatalf("canonical spec %q resolved to %s, want %s", canon, d2.Name, d.Name)
		}
		if got := p2.Spec(); got != canon {
			t.Fatalf("canonical form not stable: %q -> %q -> %q", spec, canon, got)
		}
	})
}
