package engine

//go:generate sh -c "cd ../.. && go run ./cmd/sqbench -describe > docs/METHODS.md"

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/core"
)

// maintenanceOf classifies a descriptor's mutation maintenance: methods
// implementing core.IncrementalIndexer fold added/removed graphs into the
// live index; composites route mutations to every sub-index; the rest
// rebuild the affected structures.
func maintenanceOf(d *Descriptor) string {
	if d.OpenQuerier != nil {
		return "routes to sub-indexes"
	}
	m, err := d.Factory(d.Params())
	if err != nil {
		return "rebuild"
	}
	if _, ok := m.(core.IncrementalIndexer); ok {
		return "incremental"
	}
	return "rebuild"
}

// storageOf classifies a descriptor's on-disk index representation:
// methods implementing core.SectionPersistable persist the mmap-able
// repro-index v2 container and honor `storage=heap|mmap`; plain
// core.Persistable methods persist the legacy v1 gob stream (always
// decoded eagerly); composites delegate persistence to their sub-indexes.
func storageOf(d *Descriptor) string {
	if d.OpenQuerier != nil {
		return "per sub-index"
	}
	m, err := d.Factory(d.Params())
	if err != nil {
		return "none"
	}
	if _, ok := m.(core.SectionPersistable); ok {
		return "v2 (heap/mmap)"
	}
	if _, ok := m.(core.Persistable); ok {
		return "v1 gob (heap)"
	}
	return "none"
}

// WriteMethodsMarkdown renders the per-method reference (docs/METHODS.md)
// from the live registry: every registered method's names, aliases, typed
// parameters with defaults, and reference notes, in registration order. It
// is invoked by `sqbench -describe` and by `go generate ./internal/engine`;
// CI regenerates the file and fails on any diff, so the document cannot
// drift from the code.
func WriteMethodsMarkdown(w io.Writer) error {
	bw := &errWriter{w: w}
	bw.printf("# Method reference\n\n")
	bw.printf("<!-- Generated from the engine registry by `sqbench -describe`.\n")
	bw.printf("     Do not edit by hand: run `go generate ./internal/engine`\n")
	bw.printf("     (CI regenerates this file and fails on drift). -->\n\n")
	bw.printf("Every method is constructed from a spec string — a registered name or\n")
	bw.printf("alias, optionally followed by `:key=value,...` typed parameter\n")
	bw.printf("overrides (`grapes:maxPathLen=3,workers=8`). Names and keys match\n")
	bw.printf("case-insensitively, ignoring `+`, `-`, `_`, and spaces.\n\n")

	bw.printf("Engines are mutable: `AddGraph`/`RemoveGraph` maintain a live index\n")
	bw.printf("under dataset mutation. The **Updates** column shows each method's\n")
	bw.printf("maintenance regime — *incremental* methods fold a single graph's\n")
	bw.printf("features into (or out of) the built index; *rebuild* methods fall back\n")
	bw.printf("to rebuilding the affected structures (one shard under a sharded\n")
	bw.printf("engine). Removals are tombstone-based either way, so they are cheap\n")
	bw.printf("for every method.\n\n")

	bw.printf("Every method serves the same lazy query pipeline: candidates are\n")
	bw.printf("produced in chunks, filtered for liveness, and verified on demand, so\n")
	bw.printf("`Stream` yields answers in ascending graph-id order as they are proven\n")
	bw.printf("and the server's `limit=N` query parameter stops the pipeline after N\n")
	bw.printf("answers without verifying the unreturned tail. The per-method\n")
	bw.printf("differences below are filtering power and index cost — never answer\n")
	bw.printf("order or early-termination semantics.\n\n")

	bw.printf("The **Storage** column shows each method's on-disk index\n")
	bw.printf("representation. *v2 (heap/mmap)* methods persist the mmap-able\n")
	bw.printf("repro-index v2 section container and accept a `storage=heap|mmap`\n")
	bw.printf("runtime parameter: `heap` decodes the file eagerly at open, `mmap`\n")
	bw.printf("maps it and faults sections in on first touch, so a cold open is\n")
	bw.printf("O(header) regardless of index size. *v1 gob (heap)* methods persist\n")
	bw.printf("the legacy header-line gob stream, always decoded eagerly. See\n")
	bw.printf("ARCHITECTURE.md's Storage section for the format and tradeoffs.\n\n")

	bw.printf("| Method | Spec name | Parameters | Updates | Storage | Summary |\n")
	bw.printf("|---|---|---|---|---|---|\n")
	for _, d := range Descriptors() {
		bw.printf("| %s | `%s` | %d | %s | %s | %s |\n", d.Display, d.Name, len(d.Fields), maintenanceOf(d), storageOf(d), d.Help)
	}
	bw.printf("\n")

	for _, d := range Descriptors() {
		bw.printf("## %s — `%s`\n\n", d.Display, d.Name)
		bw.printf("%s.\n\n", upperFirst(d.Help))
		names := []string{d.Name}
		if !strings.EqualFold(d.Display, d.Name) {
			names = append(names, d.Display)
		}
		names = append(names, d.Aliases...)
		quoted := make([]string, len(names))
		for i, n := range names {
			quoted[i] = "`" + n + "`"
		}
		bw.printf("**Accepted names:** %s (case- and separator-insensitive).\n\n", strings.Join(quoted, ", "))
		bw.printf("**Mutation maintenance:** %s.\n\n", maintenanceOf(d))
		bw.printf("**Storage:** %s.\n\n", storageOf(d))
		if len(d.Fields) == 0 {
			bw.printf("No parameters.\n\n")
		} else {
			bw.printf("| Parameter | Type | Default | Description |\n")
			bw.printf("|---|---|---|---|\n")
			for _, f := range d.Fields {
				bw.printf("| `%s` | %s | `%v` | %s |\n", f.Name, f.Kind, f.Default, f.Help)
			}
			bw.printf("\n")
		}
		if d.Notes != "" {
			bw.printf("%s\n\n", d.Notes)
		}
	}
	return bw.err
}

// errWriter latches the first write error so the renderer stays linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}

func upperFirst(s string) string {
	if s == "" {
		return s
	}
	return strings.ToUpper(s[:1]) + s[1:]
}
