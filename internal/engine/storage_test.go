package engine_test

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/engine"
	_ "repro/internal/engine/std"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/workload"
)

// storageSpecs are the methods with a v2 section format behind the storage
// parameter: every one must answer identically whether its restored index
// is decoded eagerly (heap) or resolved lazily off the mapping (mmap).
var storageSpecs = []string{
	"grapes:maxPathLen=3",
	"ggsx:maxPathLen=3",
	"gcode:pathLen=1",
}

func queryParity(t *testing.T, stage string, queries []*graph.Graph, want, got *engine.Engine) {
	t.Helper()
	ctx := context.Background()
	for i, q := range queries {
		rw, err := want.Query(ctx, q)
		if err != nil {
			t.Fatalf("%s: heap query %d: %v", stage, i, err)
		}
		rg, err := got.Query(ctx, q)
		if err != nil {
			t.Fatalf("%s: mmap query %d: %v", stage, i, err)
		}
		if !rg.Answers.Equal(rw.Answers) {
			t.Errorf("%s: query %d answers diverge: heap %v, mmap %v", stage, i, rw.Answers, rg.Answers)
		}
		if !rg.Candidates.Equal(rw.Candidates) {
			t.Errorf("%s: query %d candidates diverge: heap %v, mmap %v", stage, i, rw.Candidates, rg.Candidates)
		}
	}
}

// TestMmapHeapParityEveryMethod: for every converted method, a restored
// storage=mmap engine answers exactly like a restored storage=heap engine —
// including after mutations force the mapped index to materialize and
// re-persist.
func TestMmapHeapParityEveryMethod(t *testing.T) {
	ctx := context.Background()
	for _, spec := range storageSpecs {
		t.Run(spec, func(t *testing.T) {
			ds := tinyDataset(t)
			queries := tinyQueries(t, ds)
			path := filepath.Join(t.TempDir(), "idx")

			if _, err := engine.Open(ctx, ds, engine.WithSpec(spec), engine.WithIndexPath(path)); err != nil {
				t.Fatalf("build open: %v", err)
			}
			heap, err := engine.Open(ctx, ds, engine.WithSpec(spec+",storage=heap"), engine.WithIndexPath(path))
			if err != nil {
				t.Fatalf("heap open: %v", err)
			}
			if !heap.Restored() {
				t.Fatalf("heap open rebuilt instead of restoring")
			}
			mm, err := engine.Open(ctx, ds, engine.WithSpec(spec+",storage=mmap"), engine.WithIndexPath(path))
			if err != nil {
				t.Fatalf("mmap open: %v", err)
			}
			if !mm.Restored() {
				t.Fatalf("mmap open rebuilt instead of restoring")
			}
			queryParity(t, "restored", queries, heap, mm)

			// Mutations splice heap structures, so they force a mapped index
			// to materialize and then re-persist at the new epoch+tag. (The
			// heap engine above shares the dataset and goes stale — a fresh
			// engine restores the re-persisted file for comparison.)
			if _, err := mm.AddGraph(ctx, ds.Graphs[1].ShallowWithID(0)); err != nil {
				t.Fatalf("AddGraph: %v", err)
			}
			if err := mm.RemoveGraph(ctx, 0); err != nil {
				t.Fatalf("RemoveGraph: %v", err)
			}
			heap2, err := engine.Open(ctx, ds, engine.WithSpec(spec+",storage=heap"), engine.WithIndexPath(path))
			if err != nil {
				t.Fatalf("heap open after mutation: %v", err)
			}
			if !heap2.Restored() {
				t.Fatalf("mutation did not re-persist a restorable v2 index")
			}
			queryParity(t, "mutated", queries, heap2, mm)
			mm2, err := engine.Open(ctx, ds, engine.WithSpec(spec+",storage=mmap"), engine.WithIndexPath(path))
			if err != nil {
				t.Fatalf("mmap open after mutation: %v", err)
			}
			if !mm2.Restored() {
				t.Fatalf("mmap open after mutation rebuilt instead of restoring")
			}
			queryParity(t, "mutated-reopen", queries, heap2, mm2)
		})
	}
}

// TestMmapHeapParitySharded: a sharded engine restored with storage=mmap —
// every shard deferred to first touch — answers exactly like its heap twin.
func TestMmapHeapParitySharded(t *testing.T) {
	ctx := context.Background()
	for _, spec := range storageSpecs {
		t.Run(spec, func(t *testing.T) {
			ds := tinyDataset(t)
			queries := tinyQueries(t, ds)
			base := filepath.Join(t.TempDir(), "idx")

			if _, err := engine.OpenSharded(ctx, ds, 3, engine.WithSpec(spec), engine.WithIndexPath(base)); err != nil {
				t.Fatalf("build open: %v", err)
			}
			heap, err := engine.OpenSharded(ctx, ds, 3, engine.WithSpec(spec+",storage=heap"), engine.WithIndexPath(base))
			if err != nil {
				t.Fatalf("heap open: %v", err)
			}
			if !heap.Restored() {
				t.Fatalf("heap open rebuilt instead of restoring")
			}
			mm, err := engine.OpenSharded(ctx, ds, 3, engine.WithSpec(spec+",storage=mmap"), engine.WithIndexPath(base))
			if err != nil {
				t.Fatalf("mmap open: %v", err)
			}
			if !mm.Restored() {
				t.Fatalf("mmap open rebuilt instead of restoring")
			}
			for i, q := range queries {
				rw, err := heap.Query(ctx, q)
				if err != nil {
					t.Fatalf("heap query %d: %v", i, err)
				}
				rg, err := mm.Query(ctx, q)
				if err != nil {
					t.Fatalf("mmap query %d: %v", i, err)
				}
				if !rg.Answers.Equal(rw.Answers) {
					t.Errorf("query %d answers diverge: heap %v, mmap %v", i, rw.Answers, rg.Answers)
				}
			}
			waitReady(t, mm.Ready)
		})
	}
}

func waitReady(t *testing.T, ready func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !ready() {
		if time.Now().After(deadline) {
			t.Fatalf("engine never became ready")
		}
		time.Sleep(time.Millisecond)
	}
}

// TestEngineReadiness: a heap open is ready immediately; an mmap open may
// warm in the background but must converge to ready.
func TestEngineReadiness(t *testing.T) {
	ctx := context.Background()
	ds := tinyDataset(t)
	path := filepath.Join(t.TempDir(), "idx")
	if _, err := engine.Open(ctx, ds, engine.WithSpec("grapes"), engine.WithIndexPath(path)); err != nil {
		t.Fatal(err)
	}
	heap, err := engine.Open(ctx, ds, engine.WithSpec("grapes:storage=heap"), engine.WithIndexPath(path))
	if err != nil {
		t.Fatal(err)
	}
	if !heap.Ready() {
		t.Fatalf("heap engine not ready after open")
	}
	mm, err := engine.Open(ctx, ds, engine.WithSpec("grapes:storage=mmap"), engine.WithIndexPath(path))
	if err != nil {
		t.Fatal(err)
	}
	waitReady(t, mm.Ready)
}

// TestMmapOpenIsLazyColdStart is the cold-start smoke: an mmap open must
// not decode the index — resident bytes are zero until the first query
// faults postings in, and stay below the fully-decoded heap footprint.
func TestMmapOpenIsLazyColdStart(t *testing.T) {
	ctx := context.Background()
	ds := gen.Synthetic(gen.SynthConfig{
		NumGraphs: 120, MeanNodes: 18, MeanDensity: 0.18, NumLabels: 5, Seed: 7,
	})
	queries, err := workload.Generate(ds, workload.Config{NumQueries: 3, QueryEdges: 4, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "idx")
	if _, err := engine.Open(ctx, ds, engine.WithSpec("grapes"), engine.WithIndexPath(path)); err != nil {
		t.Fatal(err)
	}
	heap, err := engine.Open(ctx, ds, engine.WithSpec("grapes:storage=heap"), engine.WithIndexPath(path))
	if err != nil {
		t.Fatal(err)
	}
	heapSize := heap.Method().SizeBytes()
	if heapSize <= 0 {
		t.Fatalf("heap SizeBytes = %d, want > 0", heapSize)
	}
	mm, err := engine.Open(ctx, ds, engine.WithSpec("grapes:storage=mmap"), engine.WithIndexPath(path))
	if err != nil {
		t.Fatal(err)
	}
	if !mm.Restored() {
		t.Fatalf("mmap open rebuilt instead of restoring")
	}
	if got := mm.Method().SizeBytes(); got != 0 {
		t.Fatalf("mmap open materialized %d resident bytes before any query", got)
	}
	for i, q := range queries {
		rw, err := heap.Query(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		rg, err := mm.Query(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if !rg.Answers.Equal(rw.Answers) {
			t.Errorf("query %d answers diverge between heap and mmap", i)
		}
	}
	grown := mm.Method().SizeBytes()
	if grown <= 0 {
		t.Fatalf("resident bytes did not grow after queries")
	}
	if grown >= heapSize {
		t.Fatalf("lazy resident %d >= full heap footprint %d; nothing stayed on disk", grown, heapSize)
	}
}

// TestCorruptV2FileRebuilds: a truncated or bit-flipped v2 index file must
// trigger a clean rebuild — never a decode panic or silently wrong answers.
func TestCorruptV2FileRebuilds(t *testing.T) {
	ctx := context.Background()
	ds := tinyDataset(t)
	queries := tinyQueries(t, ds)
	path := filepath.Join(t.TempDir(), "idx")
	built, err := engine.Open(ctx, ds, engine.WithSpec("grapes"), engine.WithIndexPath(path))
	if err != nil {
		t.Fatal(err)
	}
	want := make([]graph.IDSet, len(queries))
	for i, q := range queries {
		r, err := built.Query(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r.Answers
	}
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		corrupt func([]byte) []byte
		modes   []string
	}{
		// Both modes catch a truncated tail at open: the section table
		// points past the end of the file.
		{"truncated-tail", func(b []byte) []byte { return b[:len(b)*3/5] }, []string{"heap", "mmap"}},
		// A payload bit-flip fails heap's eager CRC pass. (mmap defers bulk
		// payloads past the CRC by design, so it is not asserted here.)
		{"bit-flip", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[len(c)/2] ^= 0x40
			return c
		}, []string{"heap"}},
		{"garbage-header", func([]byte) []byte { return []byte("not an index at all") }, []string{"heap", "mmap"}},
	}
	for _, tc := range cases {
		for _, mode := range tc.modes {
			t.Run(tc.name+"/"+mode, func(t *testing.T) {
				if err := os.WriteFile(path, tc.corrupt(pristine), 0o644); err != nil {
					t.Fatal(err)
				}
				spec := fmt.Sprintf("grapes:storage=%s", mode)
				eng, err := engine.Open(ctx, ds, engine.WithSpec(spec), engine.WithIndexPath(path))
				if err != nil {
					t.Fatalf("open over corrupt file: %v", err)
				}
				if eng.Restored() {
					t.Fatalf("engine trusted a corrupt index file")
				}
				for i, q := range queries {
					r, err := eng.Query(ctx, q)
					if err != nil {
						t.Fatalf("query %d after rebuild: %v", i, err)
					}
					if !r.Answers.Equal(want[i]) {
						t.Errorf("query %d answers wrong after rebuild", i)
					}
				}
				// The rebuild overwrote the corrupt file with a good one.
				again, err := engine.Open(ctx, ds, engine.WithSpec(spec), engine.WithIndexPath(path))
				if err != nil {
					t.Fatal(err)
				}
				if !again.Restored() {
					t.Fatalf("rebuild did not overwrite the corrupt index")
				}
			})
		}
	}
}
