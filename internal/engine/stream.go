package engine

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"runtime"
	"sort"

	"repro/internal/core"
	"repro/internal/graph"
)

// ErrStreamStale is wrapped into the terminal error of a stream whose
// dataset was mutated mid-iteration. Streams use epoch-checked chunked
// locking: the engine's read lock is released before every yield and
// re-acquired after, so a slow streaming consumer never blocks mutations —
// the price is that a mutation landing inside that window invalidates the
// plan's view of the index, and the stream aborts with this error instead
// of silently mixing two index generations. The consumer restarts the
// stream (resuming via core.StreamOptions.SkipTo if it kept a frontier).
var ErrStreamStale = errors.New("dataset mutated during stream; restart the stream")

// StatsStreamer is the optional Querier extension for streamed queries with
// pipeline observability: limit-honoring consumers (the server's limit=N)
// read how many candidates were produced and verified from the stats.
// Engine, Sharded, router.Multi, and server.CachedEngine implement it.
type StatsStreamer interface {
	StreamStats(ctx context.Context, q *graph.Graph, stats *core.PipelineStats) iter.Seq2[graph.ID, error]
}

// streamQuantum is the maximum candidates verified per lock hold in a
// chunked-locking stream. The quantum starts at 1 — the first answer is
// yielded after a single verification — and doubles per chunk up to this
// cap, amortizing lock traffic on long streams while keeping the writer
// wait bounded.
const streamQuantum = 64

func growQuantum(q int) int {
	if q < streamQuantum {
		q *= 2
	}
	return q
}

// StreamOpts is Stream with explicit pipeline options. The engine's read
// lock is held while candidates are pulled and verified, released around
// every yield (and re-acquired after), and the stream aborts with an
// ErrStreamStale-wrapped error if the dataset epoch moved while it was
// unlocked.
func (e *Engine) StreamOpts(ctx context.Context, q *graph.Graph, opts core.StreamOptions) iter.Seq2[graph.ID, error] {
	return func(yield func(graph.ID, error) bool) {
		stats := opts.Stats
		if stats == nil {
			stats = &core.PipelineStats{}
			opts.Stats = stats
		}
		workers := opts.VerifyWorkers
		if workers < 1 {
			workers = 1
		}

		e.mu.RLock()
		locked := true
		unlock := func() {
			if locked {
				e.mu.RUnlock()
				locked = false
			}
		}
		defer unlock()

		epoch := e.ds.Epoch()
		plan, err := core.NewPlan(ctx, e.method, e.ds, q)
		if err != nil {
			unlock()
			yield(0, fmt.Errorf("core: filtering with %s: %w", e.method.Name(), err))
			return
		}
		cur := core.NewCursor(e.ds, plan, opts)
		defer cur.Stop()

		quantum := 1
		batch := make(graph.IDSet, 0, streamQuantum)
		for {
			// Under the lock: pull up to quantum live candidates and verify
			// them (bounded-parallel, answers reassembled in order).
			batch = batch[:0]
			done := false
			for len(batch) < quantum {
				id, ok := cur.Next()
				if !ok {
					done = true
					break
				}
				batch = append(batch, id)
			}
			matched, verr := core.VerifyCandidates(ctx, plan, batch, workers)
			stats.Verified.Add(int64(len(batch)))
			unlock()
			if verr != nil {
				yield(0, verr)
				return
			}
			for _, id := range matched {
				if !yield(id, nil) {
					return
				}
			}
			if done {
				return
			}
			if err := ctx.Err(); err != nil {
				yield(0, err)
				return
			}
			quantum = growQuantum(quantum)
			e.mu.RLock()
			locked = true
			if now := e.ds.Epoch(); now != epoch {
				unlock()
				yield(0, fmt.Errorf("engine: %w (epoch %d -> %d)", ErrStreamStale, epoch, now))
				return
			}
		}
	}
}

// StreamStats implements StatsStreamer.
func (e *Engine) StreamStats(ctx context.Context, q *graph.Graph, stats *core.PipelineStats) iter.Seq2[graph.ID, error] {
	return e.StreamOpts(ctx, q, core.StreamOptions{Stats: stats, VerifyWorkers: e.verifyWorkers})
}

// shardLeg is one shard's lazy candidate stream inside a merged Sharded or
// cluster stream: the plan, the cursor pulling its live candidates, and the
// current head in shard-local and global (parent-dataset) IDs.
type shardLeg struct {
	shard  int
	plan   core.QueryPlan
	cur    *core.Cursor
	local  graph.ID
	global graph.ID
	done   bool
}

// advance pulls the leg's next live candidate; global mapping is supplied
// by the caller. Must be called under the owning engine's read lock.
func (l *shardLeg) advance(toGlobal func(graph.ID) graph.ID) {
	id, ok := l.cur.Next()
	if !ok {
		l.done = true
		return
	}
	l.local, l.global = id, toGlobal(id)
}

// localSkip translates a global resume frontier into a shard-local SkipTo:
// the smallest local ID whose global ID is >= skipTo. global is ascending
// (partitioning preserves parent order).
func localSkip(global []graph.ID, skipTo graph.ID) graph.ID {
	if skipTo <= 0 {
		return 0
	}
	return graph.ID(sort.Search(len(global), func(i int) bool { return global[i] >= skipTo }))
}

// StreamOpts is Stream with explicit pipeline options — the sharded
// counterpart of Engine.StreamOpts, with the same epoch-checked chunked
// locking: shard plans are built under the read lock (fan-out), then the
// k-way merge pulls each shard's lazy candidate cursor and verifies in
// global ID order, releasing the lock around every yield and aborting with
// an ErrStreamStale-wrapped error if the parent dataset epoch moved.
func (s *Sharded) StreamOpts(ctx context.Context, q *graph.Graph, opts core.StreamOptions) iter.Seq2[graph.ID, error] {
	return func(yield func(graph.ID, error) bool) {
		stats := opts.Stats
		if stats == nil {
			stats = &core.PipelineStats{}
		}

		s.mu.RLock()
		locked := true
		unlock := func() {
			if locked {
				s.mu.RUnlock()
				locked = false
			}
		}
		defer unlock()

		epoch := s.ds.Epoch()
		plans := make([]core.QueryPlan, len(s.shards))
		// The plans outlive the fan-out pool, so they must capture the
		// caller's ctx (cancellation still reaches the verifiers through
		// it), not the pool's internally cancelled one.
		err := ForEachBounded(ctx, len(s.shards), runtime.GOMAXPROCS(0), func(_ context.Context, i int) error {
			sh := s.shards[i]
			if sh.empty() {
				return nil
			}
			if err := s.ensureShard(ctx, i); err != nil {
				return err
			}
			p, err := core.NewPlan(ctx, sh.method, sh.sub, q)
			if err != nil {
				return err
			}
			plans[i] = p
			return nil
		})
		if err != nil {
			unlock()
			yield(0, err)
			return
		}
		legs := make([]*shardLeg, 0, len(s.shards))
		defer func() {
			for _, l := range legs {
				l.cur.Stop()
			}
		}()
		for i, p := range plans {
			if p == nil {
				continue
			}
			sh := s.shards[i]
			leg := &shardLeg{
				shard: i,
				plan:  p,
				cur: core.NewCursor(sh.sub, p, core.StreamOptions{
					Stats:  stats,
					SkipTo: localSkip(sh.global, opts.SkipTo),
				}),
			}
			leg.advance(func(id graph.ID) graph.ID { return sh.global[id] })
			legs = append(legs, leg)
		}

		quantum := 1
		out := make(graph.IDSet, 0, streamQuantum)
		for {
			// Under the lock: up to quantum k-way merge steps (verifications,
			// not matches — the hold must stay bounded even when nothing
			// matches), verifying the globally smallest head each time.
			out = out[:0]
			done := false
			var verr error
			for step := 0; step < quantum; step++ {
				var best *shardLeg
				for _, l := range legs {
					if l.done {
						continue
					}
					if best == nil || l.global < best.global {
						best = l
					}
				}
				if best == nil {
					done = true
					break
				}
				if verr = ctx.Err(); verr != nil {
					break
				}
				stats.Verified.Add(1)
				matched := best.plan.Verify(best.local)
				id := best.global
				sh := s.shards[best.shard]
				best.advance(func(id graph.ID) graph.ID { return sh.global[id] })
				if matched {
					out = append(out, id)
				}
			}
			unlock()
			for _, id := range out {
				if !yield(id, nil) {
					return
				}
			}
			if verr != nil {
				yield(0, verr)
				return
			}
			if done {
				return
			}
			quantum = growQuantum(quantum)
			s.mu.RLock()
			locked = true
			if now := s.ds.Epoch(); now != epoch {
				unlock()
				yield(0, fmt.Errorf("engine: %w (epoch %d -> %d)", ErrStreamStale, epoch, now))
				return
			}
		}
	}
}

// StreamStats implements StatsStreamer.
func (s *Sharded) StreamStats(ctx context.Context, q *graph.Graph, stats *core.PipelineStats) iter.Seq2[graph.ID, error] {
	return s.StreamOpts(ctx, q, core.StreamOptions{Stats: stats})
}
