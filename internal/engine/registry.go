// Package engine is the single front door to the reproduction: a registry
// of the indexed subgraph query processing methods, a typed spec syntax for
// constructing them ("grapes:maxPathLen=4,workers=8"), an Engine type that
// owns the build/restore/query lifecycle around the core filter-and-verify
// pipeline, and a Sharded variant that hash-partitions the dataset, builds
// per-shard indexes in parallel, and serves queries by fan-out/merge.
//
// Method packages self-register in their init functions via Register, so
// importing a method package (directly, or through the convenience package
// engine/std which links all built-ins) makes it constructible by name:
//
//	import _ "repro/internal/engine/std"
//
//	m, err := engine.New("gIndex:maxPatterns=20000")
//	eng, err := engine.Open(ctx, ds, engine.WithSpec("grapes:workers=8"))
//	sh, err := engine.OpenSharded(ctx, ds, 4, engine.WithSpec("grapes"))
//
// The registry doubles as the source of truth for documentation:
// WriteMethodsMarkdown renders docs/METHODS.md from the live descriptors
// (via sqbench -describe), so the reference can never drift from the code.
package engine

import (
	"context"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/graph"
)

// Descriptor is the neutral description one method package registers:
// naming, typed parameters with defaults, and a factory. It carries no
// method-specific types, so the registry depends only on core.
type Descriptor struct {
	// Name is the canonical registry name (conventionally lower-case,
	// e.g. "grapes", "treedelta").
	Name string
	// Display is the paper's figure-legend spelling (e.g. "tree+delta").
	// It doubles as a lookup alias.
	Display string
	// Aliases are extra accepted spellings. Lookup normalizes case and
	// separators, so "CT-Index" finds "ctindex" without an explicit alias.
	Aliases []string
	// Help is a one-line description surfaced by CLIs.
	Help string
	// Notes carries the longer reference prose rendered into docs/METHODS.md:
	// complexity characteristics, the paper's parameter defaults, and
	// anything an operator should know before picking the method.
	Notes string
	// Fields declare the method's typed parameters and defaults.
	Fields []Field
	// Factory builds an unbuilt method from a resolved parameter set.
	// Composite entries that are not a single indexing method (the adaptive
	// router) return a descriptive error here and open through OpenQuerier
	// instead.
	Factory func(p Params) (core.Method, error)
	// Check optionally validates a resolved parameter set beyond per-field
	// typing — cross-field constraints, or values that must resolve against
	// the registry (the router's method list). ParseSpec runs it, so invalid
	// composite specs fail at parse time like any other malformed spec.
	Check func(p Params) error
	// OpenQuerier, when set, marks the entry as a composite engine: OpenAny
	// routes construction here instead of the Open/OpenSharded lifecycle.
	OpenQuerier func(ctx context.Context, ds *graph.Dataset, p Params, cfg OpenConfig) (Querier, error)
}

// Params returns the descriptor's parameter set with every field at its
// default.
func (d *Descriptor) Params() Params { return newParams(d) }

// New constructs the method with the given parameters.
func (d *Descriptor) New(p Params) (core.Method, error) {
	if p.desc != d {
		return nil, fmt.Errorf("engine: params for %s used with %s", p.desc.Name, d.Name)
	}
	return d.Factory(p)
}

var registry = struct {
	sync.RWMutex
	byKey map[string]*Descriptor // normalized name/alias -> descriptor
	order []*Descriptor          // registration order
}{byKey: map[string]*Descriptor{}}

// Register adds a method descriptor to the registry. It is intended to be
// called from method package init functions and panics on invalid
// descriptors or conflicting names — both are programming errors.
func Register(d Descriptor) {
	if d.Name == "" || d.Factory == nil {
		panic("engine: Register requires a Name and a Factory")
	}
	if d.Display == "" {
		d.Display = d.Name
	}
	for _, f := range d.Fields {
		if err := f.validate(); err != nil {
			panic(fmt.Sprintf("engine: Register(%s): %v", d.Name, err))
		}
	}
	keys := append([]string{d.Name, d.Display}, d.Aliases...)
	registry.Lock()
	defer registry.Unlock()
	desc := &d
	seen := map[string]bool{}
	for _, k := range keys {
		nk := normalize(k)
		if nk == "" || seen[nk] {
			continue
		}
		seen[nk] = true
		if prev, ok := registry.byKey[nk]; ok {
			panic(fmt.Sprintf("engine: method name %q already registered by %s", k, prev.Name))
		}
		registry.byKey[nk] = desc
	}
	registry.order = append(registry.order, desc)
}

// Lookup resolves a method name or alias (case- and separator-insensitive)
// to its descriptor.
func Lookup(name string) (*Descriptor, bool) {
	registry.RLock()
	defer registry.RUnlock()
	d, ok := registry.byKey[normalize(name)]
	return d, ok
}

// Descriptors returns all registered methods in registration order.
func Descriptors() []*Descriptor {
	registry.RLock()
	defer registry.RUnlock()
	out := make([]*Descriptor, len(registry.order))
	copy(out, registry.order)
	return out
}

// Names returns the canonical names of all registered methods, sorted.
func Names() []string {
	registry.RLock()
	defer registry.RUnlock()
	names := make([]string, 0, len(registry.order))
	for _, d := range registry.order {
		names = append(names, d.Name)
	}
	sort.Strings(names)
	return names
}

// FprintMethods writes a human-readable listing of every registered method
// and its parameters to w — the shared implementation of the CLIs' -list
// flag.
func FprintMethods(w io.Writer) {
	for _, d := range Descriptors() {
		fmt.Fprintf(w, "%-12s %s\n", d.Display, d.Help)
		for _, f := range d.Fields {
			fmt.Fprintf(w, "    %-22s %-6s default %-8v %s\n", f.Name, f.Kind, f.Default, f.Help)
		}
	}
}

// New constructs an unbuilt method from a spec string — a registered name
// or alias, optionally followed by ":key=value,..." parameter overrides:
//
//	engine.New("grapes")
//	engine.New("grapes:maxPathLen=3,workers=8")
//	engine.New("tree+delta:supportRatio=0.05")
func New(spec string) (core.Method, error) {
	d, p, err := ParseSpec(spec)
	if err != nil {
		return nil, err
	}
	return d.New(p)
}
