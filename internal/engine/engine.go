package engine

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"iter"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/diskfmt"
	"repro/internal/graph"
	"repro/internal/obs"
)

// Option configures Open.
type Option func(*config)

type config struct {
	spec          string
	method        core.Method
	indexPath     string
	verifyWorkers int
}

// WithSpec selects the method by spec string ("grapes",
// "gIndex:maxPatterns=20000", ...). The default is "grapes".
func WithSpec(spec string) Option { return func(c *config) { c.spec = spec } }

// WithMethod supplies an already-constructed (unbuilt) method instead of a
// spec. It overrides WithSpec.
func WithMethod(m core.Method) Option { return func(c *config) { c.method = m } }

// WithIndexPath enables transparent index persistence: Open restores the
// index from path when a loadable copy exists there, and otherwise builds it
// and saves it to path atomically. Corrupt files are rebuilt from a fresh
// instance and overwritten, never trusted (with WithMethod, where no fresh
// instance can be constructed, a corrupt file is an error instead). A
// successfully restored index carries the parameters it was persisted with;
// they take precedence over the spec's.
func WithIndexPath(path string) Option { return func(c *config) { c.indexPath = path } }

// WithVerifyWorkers sets the per-query verification parallelism. The
// default is GOMAXPROCS; pass 1 for the paper's serial measurement mode.
func WithVerifyWorkers(n int) Option { return func(c *config) { c.verifyWorkers = n } }

// Engine is a built (or restored) index over one dataset, serving subgraph
// queries through the plan-based filter-and-verify pipeline. It is safe for
// concurrent queries (Tree+Δ serializes its index mutations internally),
// and implements Mutable: AddGraph/RemoveGraph mutate the dataset and
// maintain the index — incrementally when the method implements
// core.IncrementalIndexer, by rebuild otherwise — serialized against
// in-flight queries by an internal reader/writer lock.
type Engine struct {
	// mu serializes dataset/index mutations (write side) against queries
	// (read side).
	mu       sync.RWMutex
	method   core.Method
	ds       *graph.Dataset
	proc     *core.Processor
	build    core.BuildStats
	restored bool
	// fresh constructs a pristine unbuilt instance for rebuild fallbacks;
	// nil when the engine was opened with WithMethod, whose mutations then
	// fail cleanly when they need a rebuild (the live index is never
	// rebuilt in place — see rebuildLocked).
	fresh         func() (core.Method, error)
	indexPath     string
	verifyWorkers int
	// ready is false only while a lazily-opened (storage=mmap) index is
	// still warming its directory sections in the background; /readyz
	// reports 503 until it flips.
	ready atomic.Bool
}

// storageModeOf resolves how a method wants its persisted index held;
// methods that predate the v2 disk format are always heap.
func storageModeOf(m core.Method) string {
	if ss, ok := m.(core.StorageSelector); ok {
		return ss.StorageMode()
	}
	return core.StorageHeap
}

// indexFileMagic heads every engine-written index file; the header line
// also carries the dataset epoch and structural version tag the index was
// built at, so a file persisted before a mutation — or against a
// different mutation history of the same length — can never restore
// silently against the mutated dataset. Raw SaveMethod/LoadMethod streams
// stay headerless.
const indexFileMagic = "repro-index v1"

func indexFileHeader(ds *graph.Dataset) string {
	return fmt.Sprintf("%s epoch %d tag %x", indexFileMagic, ds.Epoch(), ds.VersionTag())
}

// Open constructs the configured method, then builds its index over ds — or
// transparently restores a previously persisted one when WithIndexPath names
// a loadable file — and returns an Engine serving queries over it.
func Open(ctx context.Context, ds *graph.Dataset, opts ...Option) (*Engine, error) {
	if ds == nil {
		return nil, errors.New("engine: nil dataset")
	}
	cfg := config{spec: "grapes", verifyWorkers: runtime.GOMAXPROCS(0)}
	for _, o := range opts {
		o(&cfg)
	}
	m := cfg.method
	if m == nil {
		var err error
		if m, err = New(cfg.spec); err != nil {
			return nil, err
		}
	}
	e := &Engine{method: m, ds: ds, indexPath: cfg.indexPath, verifyWorkers: cfg.verifyWorkers}
	if cfg.method == nil {
		spec := cfg.spec
		e.fresh = func() (core.Method, error) { return New(spec) }
	}

	if cfg.indexPath != "" {
		persist, ok := m.(core.Persistable)
		if !ok {
			return nil, fmt.Errorf("engine: %s does not support index persistence", m.Name())
		}
		openStart := time.Now()
		f, ferr := os.Open(cfg.indexPath)
		if ferr != nil && !errors.Is(ferr, fs.ErrNotExist) {
			// A present-but-unreadable index is an error, not a silent
			// multi-hour rebuild.
			return nil, fmt.Errorf("engine: opening index at %s: %w", cfg.indexPath, ferr)
		}
		if ferr == nil {
			var magic [8]byte
			n, _ := io.ReadFull(f, magic[:])
			legacy := true
			if n == len(magic) && diskfmt.IsMagic(magic[:]) {
				// A v2 container: reopen through diskfmt (mapped when the
				// method asks for storage=mmap) so the load is O(header).
				legacy = false
				f.Close()
				lerr := restoreV2(cfg.indexPath, m, ds)
				e.restored = lerr == nil
				if lerr != nil && !errors.Is(lerr, errStaleIndex) {
					// The load touched the instance before failing; rebuild
					// from a pristine one so the corrupt file's parameters
					// never leak into the build.
					if cfg.method != nil {
						return nil, fmt.Errorf("engine: loading %s index from %s: %w",
							m.Name(), cfg.indexPath, lerr)
					}
					fresh, nerr := New(cfg.spec)
					if nerr != nil {
						return nil, nerr
					}
					m = fresh
					e.method = m
				}
			}
			if legacy {
				if _, serr := f.Seek(0, io.SeekStart); serr != nil {
					f.Close()
					return nil, fmt.Errorf("engine: opening index at %s: %w", cfg.indexPath, serr)
				}
				br := bufio.NewReader(f)
				header, herr := br.ReadString('\n')
				if herr == nil && strings.TrimSuffix(header, "\n") == indexFileHeader(ds) {
					lerr := persist.LoadIndex(br, ds)
					e.restored = lerr == nil
					if lerr != nil {
						// A failed load may have left the instance partially
						// mutated (some implementations overwrite their options
						// before validating); rebuild from a pristine instance so
						// the corrupt file's parameters never leak into the build.
						if cfg.method != nil {
							f.Close()
							return nil, fmt.Errorf("engine: loading %s index from %s: %w",
								m.Name(), cfg.indexPath, lerr)
						}
						fresh, nerr := New(cfg.spec)
						if nerr != nil {
							f.Close()
							return nil, nerr
						}
						m = fresh
						e.method = m
					}
				}
				// A missing or mismatched header — a legacy file, or an index
				// persisted at another dataset epoch — never reaches LoadIndex:
				// the instance is untouched and the engine rebuilds over the
				// current dataset, overwriting the stale file.
				f.Close()
				if e.restored {
					if _, ok := m.(core.SectionPersistable); ok {
						// Upgrade the legacy gob file in place so the next
						// open is O(header) instead of a full decode.
						if err := saveEngineIndex(cfg.indexPath, m, ds); err != nil {
							return nil, err
						}
					}
				}
			}
		}
		if e.restored {
			storage := storageModeOf(m)
			obs.IndexOpenObserve(m.Name(), storage, time.Since(openStart).Seconds())
			obs.IndexResidentSet(m.Name(), storage, m.SizeBytes())
		}
	}
	if !e.restored {
		st, err := core.BuildTimed(ctx, m, ds)
		if err != nil {
			return nil, fmt.Errorf("engine: building %s: %w", m.Name(), err)
		}
		e.build = st
		if cfg.indexPath != "" {
			if err := saveEngineIndex(cfg.indexPath, m, ds); err != nil {
				return nil, err
			}
		}
	}
	e.ready.Store(true)
	if e.restored && storageModeOf(m) == core.StorageMmap {
		if warm, ok := m.(core.Warmable); ok {
			// Pre-fault the directory sections off the open path: queries
			// are answerable immediately, /readyz flips once the warm lands.
			e.ready.Store(false)
			go func() {
				warm.WarmIndex()
				e.ready.Store(true)
			}()
		}
	}
	e.proc = &core.Processor{Method: m, DS: ds, VerifyWorkers: cfg.verifyWorkers}
	return e, nil
}

// errStaleIndex marks v2 restore failures that never touched the method
// instance (wrong epoch, unsupported format): the engine rebuilds over the
// live instance instead of constructing a fresh one.
var errStaleIndex = errors.New("engine: stale index file")

// restoreV2 opens a v2 container at path and loads it into m, mapped when
// the method selects storage=mmap. On success in mmap mode the method owns
// the reader; in heap mode (everything decoded) the reader is closed here.
func restoreV2(path string, m core.Method, ds *graph.Dataset) error {
	sp, ok := m.(core.SectionPersistable)
	if !ok {
		return errStaleIndex // a v2 file for a method that cannot read it
	}
	r, err := diskfmt.Open(path, storageModeOf(m) == core.StorageMmap)
	if err != nil {
		if errors.Is(err, diskfmt.ErrNotDiskFmt) || diskfmt.IsCorrupt(err) {
			return errStaleIndex // truncated or bit-flipped: rebuild
		}
		return err
	}
	if r.Epoch() != ds.Epoch() || r.Tag() != ds.VersionTag() {
		// Persisted against another mutation history; the instance is
		// untouched, so the caller rebuilds in place and overwrites.
		r.Close()
		return errStaleIndex
	}
	if err := sp.LoadIndexV2(r, ds); err != nil {
		r.Close()
		return err
	}
	if storageModeOf(m) != core.StorageMmap {
		return r.Close()
	}
	return nil
}

// saveEngineIndex persists a built method's index at path, written
// atomically. Methods that implement core.SectionPersistable get the v2
// container (epoch+tag in the binary header, mmap-able on restore);
// everything else gets the legacy v1 format: an epoch+tag-stamped header
// line, then the method's own gob stream.
func saveEngineIndex(path string, m core.Method, ds *graph.Dataset) error {
	if sp, ok := m.(core.SectionPersistable); ok {
		w := diskfmt.NewWriter(ds.Epoch(), ds.VersionTag(), m.Name())
		if err := sp.SaveIndexV2(w); err != nil {
			return fmt.Errorf("engine: saving %s index: %w", m.Name(), err)
		}
		return AtomicWriteFile(path, func(out io.Writer) error {
			_, err := w.WriteTo(out)
			return err
		})
	}
	p, ok := m.(core.Persistable)
	if !ok {
		return fmt.Errorf("engine: %s does not support index persistence", m.Name())
	}
	return AtomicWriteFile(path, func(w io.Writer) error {
		if _, err := fmt.Fprintf(w, "%s\n", indexFileHeader(ds)); err != nil {
			return err
		}
		if err := p.SaveIndex(w); err != nil {
			return fmt.Errorf("engine: saving %s index: %w", m.Name(), err)
		}
		return nil
	})
}

// Method returns the engine's built method. After a mutation that fell
// back to a rebuild this is a different instance than before.
func (e *Engine) Method() core.Method {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.method
}

// Dataset returns the dataset the engine serves queries over.
func (e *Engine) Dataset() *graph.Dataset { return e.ds }

// BuildStats reports on index construction; its zero value means the index
// was restored from disk rather than built.
func (e *Engine) BuildStats() core.BuildStats {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.build
}

// Restored reports whether the engine's current index was loaded from a
// persisted file rather than built; a mutation that fell back to a
// rebuild resets it.
func (e *Engine) Restored() bool {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.restored
}

// Ready reports whether the engine is fully open for serving: false only
// while a lazily-opened (storage=mmap) index is still pre-faulting its
// directory sections in the background. Queries are correct either way;
// readiness gates load balancers off a node whose first queries would pay
// the materialization cost.
func (e *Engine) Ready() bool { return e.ready.Load() }

// Processor exposes the engine's underlying pipeline for callers that need
// per-stage control. The snapshot is not updated by later mutations.
func (e *Engine) Processor() *core.Processor {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.proc
}

// Query processes one subgraph query end to end.
func (e *Engine) Query(ctx context.Context, q *graph.Graph) (*core.QueryResult, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.proc.QueryCtx(ctx, q)
}

// QueryBatch processes a workload concurrently, returning per-query results
// in input order. Per-query verification runs serially inside the batch:
// batch-level parallelism already saturates the cores, and compounding it
// with the engine's per-query worker pool would oversubscribe the scheduler
// and distort per-query timings.
func (e *Engine) QueryBatch(ctx context.Context, queries []*graph.Graph, opts core.BatchOptions) ([]core.BatchResult, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()
	serial := *e.proc
	serial.VerifyWorkers = 1
	return serial.QueryBatch(ctx, queries, opts)
}

// Stream processes one query and yields matching graph IDs as verification
// confirms them, in candidate (ascending ID) order, without materializing
// the answer or candidate sets: candidates are pulled lazily through the
// chunked producer, so the first answer is yielded after one verification.
// A filtering failure or context cancellation is yielded once as a non-nil
// error, then the sequence ends.
//
// The engine's read lock is NOT held across yields: the stream verifies a
// growing quantum of candidates per lock hold and releases the lock before
// every yield, so a slow streaming consumer never stalls mutations. A
// mutation landing mid-stream aborts it with an ErrStreamStale-wrapped
// error on the next lock re-acquisition.
func (e *Engine) Stream(ctx context.Context, q *graph.Graph) iter.Seq2[graph.ID, error] {
	return e.StreamOpts(ctx, q, core.StreamOptions{VerifyWorkers: e.verifyWorkers})
}

// Save persists the engine's built index to path, atomically and stamped
// with the dataset's current epoch, in the format Open restores from.
func (e *Engine) Save(path string) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return saveEngineIndex(path, e.method, e.ds)
}

// SaveMethod persists a built method's index to path. The index is written
// to a temporary file in the same directory and renamed into place, so a
// mid-stream failure never leaves a partial or corrupt index at path.
func SaveMethod(path string, m core.Method) error {
	p, ok := m.(core.Persistable)
	if !ok {
		return fmt.Errorf("engine: %s does not support index persistence", m.Name())
	}
	return AtomicWriteFile(path, func(w io.Writer) error {
		if err := p.SaveIndex(w); err != nil {
			return fmt.Errorf("engine: saving %s index: %w", m.Name(), err)
		}
		return nil
	})
}

// AtomicWriteFile streams write's output into a temporary file next to path and
// renames it into place, cleaning up on any failure, so path only ever
// holds a complete file.
func AtomicWriteFile(path string, write func(w io.Writer) error) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	if err := write(tmp); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// LoadMethod restores a method's persisted index from path. The method must
// be unbuilt and constructed with the same parameters, and ds must be the
// dataset the index was built over.
func LoadMethod(path string, m core.Method, ds *graph.Dataset) error {
	p, ok := m.(core.Persistable)
	if !ok {
		return fmt.Errorf("engine: %s does not support index persistence", m.Name())
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := p.LoadIndex(f, ds); err != nil {
		return fmt.Errorf("engine: loading %s index: %w", m.Name(), err)
	}
	return nil
}
