package engine_test

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	_ "repro/internal/engine/std"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/workload"
)

func tinyDataset(t testing.TB) *graph.Dataset {
	t.Helper()
	return gen.Synthetic(gen.SynthConfig{
		NumGraphs: 25, MeanNodes: 14, MeanDensity: 0.2, NumLabels: 4, Seed: 41,
	})
}

func tinyQueries(t testing.TB, ds *graph.Dataset) []*graph.Graph {
	t.Helper()
	qs, err := workload.Generate(ds, workload.Config{NumQueries: 4, QueryEdges: 5, Seed: 42})
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	return qs
}

// allSpecs pairs every registered method with a spec that overrides at least
// one parameter (where the method has any), exercising the full grammar.
var allSpecs = []struct {
	def      string // default spec (name or alias)
	override string // spec with explicit params ("" = method has none)
}{
	{"grapes", "Grapes:maxPathLen=3,workers=2"},
	{"GGSX", "GraphGrepSX:maxPathLen=3"},
	{"CT-Index", "ctindex:fingerprintBits=512,maxTreeSize=3"},
	{"gIndex", "gindex:maxPatterns=20000,supportRatio=0.2"},
	{"tree+delta", "treedelta:maxPatterns=20000,querySupportToAdd=0.5"},
	{"gCode", "gcode:pathLen=1"},
	{"NoIndex", ""},
}

// compositeSpecs are registry entries that are not a single indexing
// method: they parse and validate like any spec but construct through
// OpenAny instead of New.
var compositeSpecs = []string{"router"}

func TestRegistryCoversAllMethods(t *testing.T) {
	if got, want := len(engine.Descriptors()), len(allSpecs)+len(compositeSpecs); got != want {
		t.Fatalf("registered methods = %d, want %d", got, want)
	}
	for _, d := range engine.Descriptors() {
		if _, ok := engine.Lookup(d.Name); !ok {
			t.Errorf("Lookup(%q) failed for registered method", d.Name)
		}
		if _, ok := engine.Lookup(d.Display); !ok {
			t.Errorf("Lookup(%q) (display) failed", d.Display)
		}
	}
}

func TestSpecRoundTripEveryMethod(t *testing.T) {
	for _, tc := range allSpecs {
		for _, spec := range []string{tc.def, tc.override} {
			if spec == "" {
				continue
			}
			m, err := engine.New(spec)
			if err != nil {
				t.Fatalf("New(%q): %v", spec, err)
			}
			if m == nil {
				t.Fatalf("New(%q) = nil", spec)
			}
			// The parsed params re-render to a canonical spec that parses
			// back to the same method.
			d, p, err := engine.ParseSpec(spec)
			if err != nil {
				t.Fatalf("ParseSpec(%q): %v", spec, err)
			}
			canon := p.Spec()
			d2, p2, err := engine.ParseSpec(canon)
			if err != nil {
				t.Fatalf("ParseSpec(canonical %q): %v", canon, err)
			}
			if d2 != d {
				t.Errorf("canonical spec %q resolved to %s, want %s", canon, d2.Name, d.Name)
			}
			if got := p2.Spec(); got != canon {
				t.Errorf("canonical spec not stable: %q then %q", canon, got)
			}
		}
	}
}

func TestSpecErrors(t *testing.T) {
	cases := []struct {
		spec    string
		wantSub string
	}{
		{"bogus", "unknown method"},
		{"grapes:nope=3", "no parameter"},
		{"grapes:maxPathLen=abc", "not an int"},
		{"gindex:supportRatio=x", "not a float"},
		{"grapes:", "empty parameter list"},
		{"grapes:maxPathLen", "not key=value"},
	}
	for _, tc := range cases {
		if _, err := engine.New(tc.spec); err == nil {
			t.Errorf("New(%q): want error containing %q, got nil", tc.spec, tc.wantSub)
		} else if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("New(%q): error %q does not mention %q", tc.spec, err, tc.wantSub)
		}
	}
}

func TestAliasNormalization(t *testing.T) {
	for _, alias := range []string{"Tree+Delta", "tree_delta", "TREEDELTA", " tree delta "} {
		d, ok := engine.Lookup(alias)
		if !ok || d.Name != "treedelta" {
			t.Errorf("Lookup(%q) = %v, %v; want treedelta", alias, d, ok)
		}
	}
}

// TestSaveLoadRoundTripEveryMethod is the registry round-trip: every
// persistable method builds on a fixed dataset, saves, reloads into a
// freshly constructed instance, and must produce identical candidate sets
// over a fixed workload.
func TestSaveLoadRoundTripEveryMethod(t *testing.T) {
	ds := tinyDataset(t)
	queries := tinyQueries(t, ds)
	dir := t.TempDir()
	ctx := context.Background()

	for _, tc := range allSpecs {
		spec := tc.override
		if spec == "" {
			spec = tc.def
		}
		t.Run(spec, func(t *testing.T) {
			built, err := engine.New(spec)
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			if err := built.Build(ctx, ds); err != nil {
				t.Fatalf("Build: %v", err)
			}
			path := filepath.Join(dir, strings.ReplaceAll(built.Name(), "+", "_")+".idx")
			if _, ok := built.(core.Persistable); !ok {
				if err := engine.SaveMethod(path, built); err == nil {
					t.Fatalf("SaveMethod on non-persistable %s: want error", built.Name())
				}
				return
			}
			if err := engine.SaveMethod(path, built); err != nil {
				t.Fatalf("SaveMethod: %v", err)
			}
			loaded, err := engine.New(spec)
			if err != nil {
				t.Fatalf("New (loaded): %v", err)
			}
			if err := engine.LoadMethod(path, loaded, ds); err != nil {
				t.Fatalf("LoadMethod: %v", err)
			}
			for i, q := range queries {
				want, err := built.Candidates(q)
				if err != nil {
					t.Fatalf("built.Candidates(%d): %v", i, err)
				}
				got, err := loaded.Candidates(q)
				if err != nil {
					t.Fatalf("loaded.Candidates(%d): %v", i, err)
				}
				if !got.Equal(want) {
					t.Errorf("query %d: candidates diverge after reload: built %v, loaded %v", i, want, got)
				}
			}
		})
	}
}

func TestOpenPersistenceLifecycle(t *testing.T) {
	ds := tinyDataset(t)
	queries := tinyQueries(t, ds)
	path := filepath.Join(t.TempDir(), "grapes.idx")
	ctx := context.Background()

	eng1, err := engine.Open(ctx, ds, engine.WithSpec("grapes:workers=2"), engine.WithIndexPath(path))
	if err != nil {
		t.Fatalf("first Open: %v", err)
	}
	if eng1.Restored() {
		t.Fatalf("first Open restored a nonexistent index")
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("first Open did not persist the index: %v", err)
	}

	eng2, err := engine.Open(ctx, ds, engine.WithSpec("grapes:workers=2"), engine.WithIndexPath(path))
	if err != nil {
		t.Fatalf("second Open: %v", err)
	}
	if !eng2.Restored() {
		t.Fatalf("second Open rebuilt instead of restoring")
	}
	for i, q := range queries {
		r1, err := eng1.Query(ctx, q)
		if err != nil {
			t.Fatalf("eng1 query %d: %v", i, err)
		}
		r2, err := eng2.Query(ctx, q)
		if err != nil {
			t.Fatalf("eng2 query %d: %v", i, err)
		}
		if !r1.Answers.Equal(r2.Answers) {
			t.Errorf("query %d: restored engine answers diverge", i)
		}
	}

	// A corrupt index file is rebuilt and overwritten, not trusted.
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	eng3, err := engine.Open(ctx, ds, engine.WithSpec("grapes:workers=2"), engine.WithIndexPath(path))
	if err != nil {
		t.Fatalf("Open over corrupt index: %v", err)
	}
	if eng3.Restored() {
		t.Fatalf("Open trusted a corrupt index")
	}
	eng4, err := engine.Open(ctx, ds, engine.WithSpec("grapes:workers=2"), engine.WithIndexPath(path))
	if err != nil {
		t.Fatalf("Open after rebuild: %v", err)
	}
	if !eng4.Restored() {
		t.Fatalf("rebuild did not overwrite the corrupt index")
	}
}

func TestOpenBuildCancellation(t *testing.T) {
	ds := tinyDataset(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := engine.Open(ctx, ds, engine.WithSpec("grapes")); !errors.Is(err, context.Canceled) {
		t.Fatalf("Open with canceled ctx: err = %v, want context.Canceled", err)
	}
}

func TestQueryCancellation(t *testing.T) {
	ds := tinyDataset(t)
	queries := tinyQueries(t, ds)
	eng, err := engine.Open(context.Background(), ds, engine.WithSpec("noindex"))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, workers := range []int{1, 4} {
		eng.Processor().VerifyWorkers = workers
		if _, err := eng.Query(ctx, queries[0]); !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
}

// TestVerifyWorkersParity checks the concurrent verification pool returns
// exactly the serial pipeline's answers for every method.
func TestVerifyWorkersParity(t *testing.T) {
	ds := tinyDataset(t)
	queries := tinyQueries(t, ds)
	ctx := context.Background()
	for _, tc := range allSpecs {
		spec := tc.override
		if spec == "" {
			spec = tc.def
		}
		m, err := engine.New(spec)
		if err != nil {
			t.Fatalf("New(%q): %v", spec, err)
		}
		if err := m.Build(ctx, ds); err != nil {
			t.Fatalf("%s: Build: %v", spec, err)
		}
		serial := core.Processor{Method: m, DS: ds, VerifyWorkers: 1}
		pooled := core.Processor{Method: m, DS: ds, VerifyWorkers: 4}
		for i, q := range queries {
			want, err := serial.QueryCtx(ctx, q)
			if err != nil {
				t.Fatalf("%s query %d serial: %v", spec, i, err)
			}
			got, err := pooled.QueryCtx(ctx, q)
			if err != nil {
				t.Fatalf("%s query %d pooled: %v", spec, i, err)
			}
			if !got.Answers.Equal(want.Answers) {
				t.Errorf("%s query %d: pooled answers %v != serial %v", spec, i, got.Answers, want.Answers)
			}
		}
	}
}

func TestStreamMatchesQuery(t *testing.T) {
	ds := tinyDataset(t)
	queries := tinyQueries(t, ds)
	ctx := context.Background()
	eng, err := engine.Open(ctx, ds, engine.WithSpec("grapes"))
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		res, err := eng.Query(ctx, q)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		var streamed graph.IDSet
		for id, err := range eng.Stream(ctx, q) {
			if err != nil {
				t.Fatalf("stream %d: %v", i, err)
			}
			streamed = append(streamed, id)
		}
		if !streamed.Equal(res.Answers) {
			t.Errorf("query %d: streamed %v != answers %v", i, streamed, res.Answers)
		}
	}
}

// failingSaver is a Persistable method whose SaveIndex fails after writing
// some bytes, to prove SaveMethod never leaves a partial index behind.
type failingSaver struct{ core.Method }

func (f *failingSaver) SaveIndex(w io.Writer) error {
	if _, err := w.Write([]byte("partial bytes")); err != nil {
		return err
	}
	return fmt.Errorf("disk on fire")
}

func (f *failingSaver) LoadIndex(r io.Reader, ds *graph.Dataset) error {
	return fmt.Errorf("unreachable")
}

func TestSaveMethodCleansUpOnFailure(t *testing.T) {
	ds := tinyDataset(t)
	m, err := engine.New("noindex")
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Build(context.Background(), ds); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	path := filepath.Join(dir, "broken.idx")
	err = engine.SaveMethod(path, &failingSaver{Method: m})
	if err == nil || !strings.Contains(err.Error(), "disk on fire") {
		t.Fatalf("SaveMethod: err = %v, want the save failure", err)
	}
	entries, derr := os.ReadDir(dir)
	if derr != nil {
		t.Fatal(derr)
	}
	if len(entries) != 0 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("failed save left files behind: %v", names)
	}
}
