package engine

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
)

// ErrNoSuchGraph is returned by RemoveGraph when the id names no live
// graph — out of range, or already removed.
var ErrNoSuchGraph = errors.New("engine: no live graph with that id")

// ErrNotMutable is returned by serving-layer wrappers whose inner engine
// does not implement Mutable.
var ErrNotMutable = errors.New("engine: engine does not support mutation")

// Mutable is the online-mutation capability of an engine: live datasets
// grow and shrink without a full offline rebuild. Engine, Sharded, and the
// adaptive router all implement it.
//
// AddGraph appends a graph under a fresh dataset ID and folds it into the
// index — incrementally when the method implements core.IncrementalIndexer,
// by rebuilding the affected structures otherwise (a sharded engine
// rebuilds only the owning shard). RemoveGraph tombstones the graph: the
// dataset slot is retained, the query pipeline filters the id out of every
// candidate set, and incremental indexers additionally drop its postings.
// Epoch returns the dataset's monotonically increasing version, bumped by
// every mutation — the stamp the serving layer's result cache and the
// persisted index files validate against.
//
// Mutations are serialized against in-flight queries; answers observed
// after a mutation returns reflect it exactly (no eventual consistency
// window).
type Mutable interface {
	AddGraph(ctx context.Context, g *graph.Graph) (graph.ID, error)
	RemoveGraph(ctx context.Context, id graph.ID) error
	Epoch() uint64
}

// IndexMaintainer is the index-only half of Mutable: maintenance for a
// graph a composite engine (the adaptive router) already added to — or
// removed from — the shared dataset itself. ApplyAdd must be given a graph
// that is already in the engine's dataset under its assigned ID;
// ApplyRemove a graph id the dataset has already tombstoned.
type IndexMaintainer interface {
	ApplyAdd(ctx context.Context, g *graph.Graph) error
	ApplyRemove(ctx context.Context, id graph.ID) error
}

var (
	_ Mutable         = (*Engine)(nil)
	_ IndexMaintainer = (*Engine)(nil)
	_ Mutable         = (*Sharded)(nil)
	_ IndexMaintainer = (*Sharded)(nil)
)

// Epoch implements Mutable: the dataset's version counter.
func (e *Engine) Epoch() uint64 { return e.ds.Epoch() }

// AddGraph implements Mutable: g joins the dataset under a fresh ID and the
// index is maintained — incrementally for core.IncrementalIndexer methods,
// by rebuild otherwise. If index maintenance fails, the added graph is
// tombstoned again so a half-applied add can never surface wrong answers.
func (e *Engine) AddGraph(ctx context.Context, g *graph.Graph) (graph.ID, error) {
	if g == nil || g.NumVertices() == 0 {
		return 0, errors.New("engine: cannot add an empty graph")
	}
	e.mu.Lock()
	id := e.ds.Add(g)
	if err := e.applyAddLocked(ctx, g); err != nil {
		e.ds.Remove(id)
		e.mu.Unlock()
		return 0, err
	}
	e.mu.Unlock()
	if err := e.persist(); err != nil {
		// Keep "error => no live mutation": the add committed in memory
		// but its persistence failed, so roll it back (tombstone + posting
		// drop). The stale on-disk file fails its epoch/tag check on the
		// next open and rebuilds.
		e.mu.Lock()
		e.ds.Remove(id)
		if inc, ok := e.method.(core.IncrementalIndexer); ok {
			_ = inc.RemoveGraphFromIndex(id)
		}
		e.mu.Unlock()
		return 0, err
	}
	return id, nil
}

// RemoveGraph implements Mutable: the graph is tombstoned (its ID is never
// reused) and, for incremental indexers, its postings dropped from the
// index. Removal is correct even without index maintenance — the pipeline
// filters candidates against the tombstones — so a failed maintenance step
// falls back to a rebuild only to reclaim index space.
func (e *Engine) RemoveGraph(ctx context.Context, id graph.ID) error {
	e.mu.Lock()
	if !e.ds.Remove(id) {
		e.mu.Unlock()
		return fmt.Errorf("engine: removing graph %d: %w", id, ErrNoSuchGraph)
	}
	if err := e.applyRemoveLocked(ctx, id); err != nil {
		e.mu.Unlock()
		return err
	}
	e.mu.Unlock()
	// A persist failure surfaces, but the tombstone stays committed: the
	// removal is already query-correct, and un-removing would be the one
	// thing worse than a stale file (which the epoch/tag check catches).
	return e.persist()
}

// ApplyAdd implements IndexMaintainer: index-only maintenance for a graph
// already added to the dataset by a composite engine.
func (e *Engine) ApplyAdd(ctx context.Context, g *graph.Graph) error {
	e.mu.Lock()
	if err := e.applyAddLocked(ctx, g); err != nil {
		e.mu.Unlock()
		return err
	}
	e.mu.Unlock()
	return e.persist()
}

// ApplyRemove implements IndexMaintainer: index-only maintenance for a
// graph the dataset has already tombstoned.
func (e *Engine) ApplyRemove(ctx context.Context, id graph.ID) error {
	e.mu.Lock()
	if err := e.applyRemoveLocked(ctx, id); err != nil {
		e.mu.Unlock()
		return err
	}
	e.mu.Unlock()
	return e.persist()
}

func (e *Engine) applyAddLocked(ctx context.Context, g *graph.Graph) error {
	if inc, ok := e.method.(core.IncrementalIndexer); ok {
		if err := inc.AddGraphToIndex(g); err == nil {
			e.build.SizeBytes = e.method.SizeBytes()
			return nil
		}
		// An incremental failure falls through to the rebuild: the index
		// may be half-mutated and cannot be trusted.
	}
	return e.rebuildLocked(ctx)
}

func (e *Engine) applyRemoveLocked(ctx context.Context, id graph.ID) error {
	if inc, ok := e.method.(core.IncrementalIndexer); ok {
		if err := inc.RemoveGraphFromIndex(id); err != nil {
			return e.rebuildLocked(ctx)
		}
	}
	// Non-incremental methods need no index work: the tombstone filter
	// already guarantees the removed graph never surfaces.
	e.build.SizeBytes = e.method.SizeBytes()
	return nil
}

// rebuildLocked rebuilds the whole index over the current dataset — the
// fallback for methods without incremental maintenance. The rebuild always
// happens on a pristine instance, installed only after its Build succeeds:
// rebuilding the held instance in place would wipe the live index first,
// and a mid-rebuild failure (context cancellation) would then leave a
// silently empty index serving empty answers. Engines opened with
// WithMethod have no way to construct a pristine instance, so their
// rebuild path errors out with the live index untouched; the caller rolls
// the dataset mutation back.
func (e *Engine) rebuildLocked(ctx context.Context) error {
	if e.fresh == nil {
		return fmt.Errorf("engine: %s needs a rebuild to apply this mutation, but the engine was opened with WithMethod and cannot construct a pristine instance; open by spec, or use a method with incremental maintenance", e.method.Name())
	}
	m, err := e.fresh()
	if err != nil {
		return err
	}
	st, err := core.BuildTimed(ctx, m, e.ds)
	if err != nil {
		return fmt.Errorf("engine: rebuilding %s after mutation: %w", e.method.Name(), err)
	}
	e.method = m
	e.build = st
	e.restored = false
	e.proc = &core.Processor{Method: m, DS: e.ds, VerifyWorkers: e.verifyWorkers}
	return nil
}

// persist re-persists the index at the configured path with the current
// epoch+tag stamp, so a process that reopens the *same dataset state* (an
// in-process reopen, or a data file that already reflects the mutations)
// restores the mutated index instead of rebuilding. A restart that
// reloads a pre-mutation data file will not match the stamp and rebuilds
// — by design: restoring mutation-era postings against a dataset that
// lacks the mutations would answer wrongly.
//
// The O(index) file write runs under the *read* lock: concurrent queries
// proceed during it (every method's SaveIndex is safe alongside readers;
// Tree+Δ locks itself), and only other mutations wait. If another
// mutation slipped in between the write-locked apply and this snapshot,
// the file simply captures the newer — still consistent — state. Engines
// opened without WithIndexPath skip it.
func (e *Engine) persist() error {
	if e.indexPath == "" {
		return nil
	}
	e.mu.RLock()
	defer e.mu.RUnlock()
	return saveEngineIndex(e.indexPath, e.method, e.ds)
}

// Epoch implements Mutable: the dataset's version counter.
func (s *Sharded) Epoch() uint64 { return s.ds.Epoch() }

// AddGraph implements Mutable for the sharded engine: g joins the parent
// dataset under a fresh ID, is re-homed into its ShardOf shard, and only
// that shard's index is maintained (incrementally when the method supports
// it). With persistence configured, only the owning shard's file and the
// manifest are rewritten.
func (s *Sharded) AddGraph(ctx context.Context, g *graph.Graph) (graph.ID, error) {
	if g == nil || g.NumVertices() == 0 {
		return 0, errors.New("engine: cannot add an empty graph")
	}
	s.mu.Lock()
	id := s.ds.Add(g)
	if err := s.applyAddLocked(ctx, g); err != nil {
		s.rollbackAddLocked(id)
		s.mu.Unlock()
		return 0, err
	}
	si := ShardOf(id, len(s.shards))
	s.mu.Unlock()
	if err := s.persistShard(si); err != nil {
		// Keep "error => no live mutation", mirroring the flat engine.
		s.mu.Lock()
		s.rollbackAddLocked(id)
		s.mu.Unlock()
		return 0, err
	}
	return id, nil
}

// rollbackAddLocked undoes a (possibly half-applied) add of id: the
// parent tombstone, the shard sub-dataset tombstone of the re-homed copy,
// and its postings when the shard index is incremental.
func (s *Sharded) rollbackAddLocked(id graph.ID) {
	s.ds.Remove(id)
	sh := s.shards[ShardOf(id, len(s.shards))]
	local, ok := sh.localOf(id)
	if !ok {
		return // the failure hit before re-homing
	}
	if sh.sub.Remove(local) {
		if inc, ok := sh.method.(core.IncrementalIndexer); ok {
			_ = inc.RemoveGraphFromIndex(local)
		}
	}
}

// RemoveGraph implements Mutable for the sharded engine: the graph is
// tombstoned in both the parent dataset and its shard's sub-dataset, the
// shard's index postings dropped when the method is incremental, and only
// that shard's file (plus the manifest) rewritten under persistence.
func (s *Sharded) RemoveGraph(ctx context.Context, id graph.ID) error {
	s.mu.Lock()
	if !s.ds.Remove(id) {
		s.mu.Unlock()
		return fmt.Errorf("engine: removing graph %d: %w", id, ErrNoSuchGraph)
	}
	if err := s.applyRemoveLocked(ctx, id); err != nil {
		s.mu.Unlock()
		return err
	}
	s.mu.Unlock()
	// The tombstone stays committed on a persist failure, like the flat
	// engine: the removal is already query-correct.
	return s.persistShard(ShardOf(id, len(s.shards)))
}

// ApplyAdd implements IndexMaintainer: shard re-homing and index
// maintenance for a graph already added to the parent dataset.
func (s *Sharded) ApplyAdd(ctx context.Context, g *graph.Graph) error {
	s.mu.Lock()
	if err := s.applyAddLocked(ctx, g); err != nil {
		s.mu.Unlock()
		return err
	}
	si := ShardOf(g.ID(), len(s.shards))
	s.mu.Unlock()
	return s.persistShard(si)
}

// ApplyRemove implements IndexMaintainer: shard-local tombstone and index
// maintenance for a graph the parent dataset has already tombstoned.
func (s *Sharded) ApplyRemove(ctx context.Context, id graph.ID) error {
	s.mu.Lock()
	if err := s.applyRemoveLocked(ctx, id); err != nil {
		s.mu.Unlock()
		return err
	}
	s.mu.Unlock()
	return s.persistShard(ShardOf(id, len(s.shards)))
}

func (s *Sharded) applyAddLocked(ctx context.Context, g *graph.Graph) error {
	si := ShardOf(g.ID(), len(s.shards))
	sh := s.shards[si]
	// A still-deferred shard loads now: incremental maintenance needs the
	// restored index, not an unbuilt instance (which would force a rebuild).
	if err := s.ensureShard(ctx, si); err != nil {
		return err
	}
	wasEmpty := sh.empty()
	sh.global = append(sh.global, g.ID()) // parent ids stay ascending, so toGlobal stays monotonic
	local := sh.sub.Add(g.ShallowWithID(0))
	if !wasEmpty {
		// A shard that was empty at open time never built its index, so it
		// takes the rebuild path below regardless of the method.
		if inc, ok := sh.method.(core.IncrementalIndexer); ok {
			if err := inc.AddGraphToIndex(sh.sub.Graphs[local]); err == nil {
				s.refreshSizeLocked()
				return nil
			}
		}
	}
	return s.rebuildShardLocked(ctx, si)
}

func (s *Sharded) applyRemoveLocked(ctx context.Context, id graph.ID) error {
	si := ShardOf(id, len(s.shards))
	sh := s.shards[si]
	if err := s.ensureShard(ctx, si); err != nil {
		return err
	}
	local, ok := sh.localOf(id)
	if !ok {
		return fmt.Errorf("engine: graph %d not re-homed in shard %d", id, si)
	}
	if !sh.sub.Remove(local) {
		return fmt.Errorf("engine: removing graph %d from shard %d: %w", id, si, ErrNoSuchGraph)
	}
	if inc, ok := sh.method.(core.IncrementalIndexer); ok {
		if err := inc.RemoveGraphFromIndex(local); err != nil {
			return s.rebuildShardLocked(ctx, si)
		}
	}
	s.refreshSizeLocked()
	return nil
}

// localOf maps a parent-dataset id to the shard-local id of its re-homed
// copy, via binary search over the ascending global mapping.
func (sh *shard) localOf(id graph.ID) (graph.ID, bool) {
	lo, hi := 0, len(sh.global)
	for lo < hi {
		mid := (lo + hi) / 2
		if sh.global[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(sh.global) && sh.global[lo] == id {
		return graph.ID(lo), true
	}
	return 0, false
}

// rebuildShardLocked rebuilds shard si's index alone over its current
// sub-dataset, from a pristine method instance.
func (s *Sharded) rebuildShardLocked(ctx context.Context, si int) error {
	sh := s.shards[si]
	fresh, err := s.desc.New(s.params)
	if err != nil {
		return err
	}
	st, err := core.BuildTimed(ctx, fresh, sh.sub)
	if err != nil {
		return fmt.Errorf("engine: rebuilding shard %d/%d after mutation: %w", si, len(s.shards), err)
	}
	sh.method = fresh
	sh.build = st
	sh.restored = false
	s.refreshSizeLocked()
	return nil
}

// refreshSizeLocked recomputes the aggregate index size after a mutation.
func (s *Sharded) refreshSizeLocked() {
	var size int64
	for _, sh := range s.shards {
		size += sh.method.SizeBytes()
	}
	s.build.SizeBytes = size
}

// persistShard rewrites shard si's index file and the manifest (the epoch
// moved) when persistence is configured — the shard-local rewrite that
// keeps mutation IO proportional to one shard, not the dataset. Like
// Engine.persist it runs under the read lock, so queries proceed during
// the file write and only other mutations wait.
func (s *Sharded) persistShard(si int) error {
	if s.indexPath == "" {
		return nil
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if err := s.saveShardIndex(s.indexPath, si); err != nil {
		return err
	}
	return s.writeManifest(s.indexPath)
}
