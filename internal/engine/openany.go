package engine

import (
	"context"
	"errors"
	"runtime"

	"repro/internal/graph"
)

// OpenConfig carries the engine-lifecycle options OpenAny resolved from its
// Option list into a composite entry's OpenQuerier: the composite applies
// them to each sub-engine it opens (per-method index paths derived from
// IndexPath, verification budget, per-method shard count).
type OpenConfig struct {
	// IndexPath is the persistence base path ("" = no persistence). A
	// composite derives per-component paths from it and writes its own
	// manifest at the base, mirroring the sharded layout.
	IndexPath string
	// VerifyWorkers is the per-query verification parallelism.
	VerifyWorkers int
	// Shards is the shard count each sub-engine opens with (0/1 =
	// unsharded).
	Shards int
}

// OpenAny is the spec-driven front door over every engine shape: it parses
// the spec, then opens a composite entry (the adaptive router) through its
// own OpenQuerier, a sharded engine when shards > 1, and a plain Engine
// otherwise. CLIs and the serving layer use it so one -method flag reaches
// all three without caring which it got.
func OpenAny(ctx context.Context, ds *graph.Dataset, shards int, opts ...Option) (Querier, error) {
	if ds == nil {
		return nil, errors.New("engine: nil dataset")
	}
	cfg := config{spec: "grapes", verifyWorkers: runtime.GOMAXPROCS(0)}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.method != nil {
		// A pre-built instance bypasses the registry, so no composite or
		// sharded resolution applies.
		if shards > 1 {
			return OpenSharded(ctx, ds, shards, opts...)
		}
		return Open(ctx, ds, opts...)
	}
	d, p, err := ParseSpec(cfg.spec)
	if err != nil {
		return nil, err
	}
	if d.OpenQuerier != nil {
		return d.OpenQuerier(ctx, ds, p, OpenConfig{
			IndexPath:     cfg.indexPath,
			VerifyWorkers: cfg.verifyWorkers,
			Shards:        shards,
		})
	}
	if shards > 1 {
		return OpenSharded(ctx, ds, shards, opts...)
	}
	return Open(ctx, ds, opts...)
}
