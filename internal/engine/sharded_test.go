package engine_test

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	_ "repro/internal/engine/std"
	"repro/internal/graph"
	"repro/internal/testutil/leak"
)

// TestShardOfDeterministicAndCovering: the hash partition is a pure function
// of the graph id and spreads a realistic id range over every shard.
func TestShardOfDeterministicAndCovering(t *testing.T) {
	for _, shards := range []int{1, 2, 4, 8} {
		counts := make([]int, shards)
		for id := graph.ID(0); id < 1000; id++ {
			s := engine.ShardOf(id, shards)
			if s != engine.ShardOf(id, shards) {
				t.Fatalf("ShardOf(%d, %d) not deterministic", id, shards)
			}
			if s < 0 || s >= shards {
				t.Fatalf("ShardOf(%d, %d) = %d out of range", id, shards, s)
			}
			counts[s]++
		}
		for s, n := range counts {
			if n == 0 {
				t.Errorf("shards=%d: shard %d got no graphs out of 1000", shards, s)
			}
		}
	}
}

// TestShardedParityEveryMethod is the core correctness contract: for every
// registered method, a sharded engine with N in {1, 2, 4} returns exactly
// the unsharded engine's answer set, and its candidate set never loses an
// answer (candidate sets themselves may differ for the frequent-mining
// methods, whose feature selection is dataset-global).
// shardParityOverrides swaps in tighter mining bounds for the sharded
// parity run: support thresholds are ratios, so a quarter-size shard mines
// with a quarter of the absolute support — on the tiny test dataset that
// inflates the pattern space past the standard test budget. Bounding the
// feature size keeps the same code paths while staying inside it.
var shardParityOverrides = map[string]string{
	"treedelta:maxPatterns=20000,querySupportToAdd=0.5": "treedelta:maxFeatureSize=5,maxPatterns=20000,querySupportToAdd=0.5",
}

func TestShardedParityEveryMethod(t *testing.T) {
	ds := tinyDataset(t)
	queries := tinyQueries(t, ds)
	ctx := context.Background()

	for _, tc := range allSpecs {
		spec := tc.override
		if spec == "" {
			spec = tc.def
		}
		if o, ok := shardParityOverrides[spec]; ok {
			spec = o
		}
		t.Run(spec, func(t *testing.T) {
			flat, err := engine.Open(ctx, ds, engine.WithSpec(spec))
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			want := make([]*core.QueryResult, len(queries))
			for i, q := range queries {
				if want[i], err = flat.Query(ctx, q); err != nil {
					t.Fatalf("unsharded query %d: %v", i, err)
				}
			}
			for _, shards := range []int{1, 2, 4} {
				s, err := engine.OpenSharded(ctx, ds, shards, engine.WithSpec(spec))
				if err != nil {
					t.Fatalf("OpenSharded(%d): %v", shards, err)
				}
				total := 0
				for i := 0; i < s.Shards(); i++ {
					total += s.ShardLen(i)
				}
				if total != ds.Len() {
					t.Fatalf("shards=%d: partition holds %d graphs, dataset %d", shards, total, ds.Len())
				}
				for i, q := range queries {
					got, err := s.Query(ctx, q)
					if err != nil {
						t.Fatalf("shards=%d query %d: %v", shards, i, err)
					}
					if !got.Answers.Equal(want[i].Answers) {
						t.Errorf("shards=%d query %d: answers %v != unsharded %v",
							shards, i, got.Answers, want[i].Answers)
					}
					for _, id := range got.Answers {
						if !got.Candidates.Contains(id) {
							t.Errorf("shards=%d query %d: answer %d missing from merged candidates", shards, i, id)
						}
					}
				}
			}
		})
	}
}

// TestShardedStreamMatchesQuery: the merged stream yields exactly the
// fan-out Query's answers, in ascending global id order.
func TestShardedStreamMatchesQuery(t *testing.T) {
	ds := tinyDataset(t)
	queries := tinyQueries(t, ds)
	ctx := context.Background()
	s, err := engine.OpenSharded(ctx, ds, 3, engine.WithSpec("grapes:workers=2"))
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range queries {
		res, err := s.Query(ctx, q)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		var streamed graph.IDSet
		prev := graph.ID(-1)
		for id, err := range s.Stream(ctx, q) {
			if err != nil {
				t.Fatalf("stream %d: %v", i, err)
			}
			if id <= prev {
				t.Fatalf("stream %d: ids not strictly ascending (%d after %d)", i, id, prev)
			}
			prev = id
			streamed = append(streamed, id)
		}
		if !streamed.Equal(res.Answers) {
			t.Errorf("query %d: streamed %v != answers %v", i, streamed, res.Answers)
		}
	}
}

// TestShardedQueryBatchMatchesQuery: batch results agree with one-by-one
// fan-out queries and come back in input order.
func TestShardedQueryBatchMatchesQuery(t *testing.T) {
	ds := tinyDataset(t)
	queries := tinyQueries(t, ds)
	ctx := context.Background()
	s, err := engine.OpenSharded(ctx, ds, 2, engine.WithSpec("ggsx:maxPathLen=3"))
	if err != nil {
		t.Fatal(err)
	}
	batch, err := s.QueryBatch(ctx, queries, core.BatchOptions{Workers: 3})
	if err != nil {
		t.Fatalf("QueryBatch: %v", err)
	}
	if len(batch) != len(queries) {
		t.Fatalf("batch has %d entries, want %d", len(batch), len(queries))
	}
	for i, br := range batch {
		if br.Err != nil {
			t.Fatalf("batch entry %d: %v", i, br.Err)
		}
		if br.Query != i {
			t.Fatalf("batch entry %d claims query %d", i, br.Query)
		}
		want, err := s.Query(ctx, queries[i])
		if err != nil {
			t.Fatal(err)
		}
		if !br.Result.Answers.Equal(want.Answers) {
			t.Errorf("batch entry %d: answers %v != query answers %v", i, br.Result.Answers, want.Answers)
		}
	}
}

// TestShardedCancellation: a cancelled context aborts the parallel build,
// the fan-out query, and — mid-stream — the merged answer stream, exactly
// like the unsharded engine.
func TestShardedCancellation(t *testing.T) {
	defer leak.Check(t)()
	ds := tinyDataset(t)
	queries := tinyQueries(t, ds)

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := engine.OpenSharded(cancelled, ds, 2, engine.WithSpec("grapes")); !errors.Is(err, context.Canceled) {
		t.Fatalf("OpenSharded with cancelled ctx: err = %v, want context.Canceled", err)
	}

	s, err := engine.OpenSharded(context.Background(), ds, 2, engine.WithSpec("noindex"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query(cancelled, queries[0]); !errors.Is(err, context.Canceled) {
		t.Errorf("Query with cancelled ctx: err = %v, want context.Canceled", err)
	}

	// Mid-query: cancel after the stream yields its first answer. Every
	// later candidate must surface the cancellation (or the stream was
	// already past its last candidate — then it must have produced the
	// full, correct answer set).
	full, err := s.Query(context.Background(), queries[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Answers) == 0 {
		t.Fatal("workload query has no answers; pick a different seed")
	}
	ctx, cancelMid := context.WithCancel(context.Background())
	defer cancelMid()
	var streamed graph.IDSet
	var streamErr error
	for id, err := range s.Stream(ctx, queries[0]) {
		if err != nil {
			streamErr = err
			break
		}
		streamed = append(streamed, id)
		cancelMid()
	}
	if streamErr != nil {
		if !errors.Is(streamErr, context.Canceled) {
			t.Fatalf("mid-stream error = %v, want context.Canceled", streamErr)
		}
		for _, id := range streamed {
			if !full.Answers.Contains(id) {
				t.Errorf("cancelled stream yielded non-answer %d", id)
			}
		}
	} else if !streamed.Equal(full.Answers) {
		t.Errorf("uncancelled tail: streamed %v != full answers %v", streamed, full.Answers)
	}
}

// TestShardedPersistenceLifecycle: per-shard files restore independently, a
// corrupt shard rebuilds alone, and a changed shard count invalidates the
// manifest and rebuilds everything.
func TestShardedPersistenceLifecycle(t *testing.T) {
	ds := tinyDataset(t)
	queries := tinyQueries(t, ds)
	base := filepath.Join(t.TempDir(), "tiny.idx")
	ctx := context.Background()
	const shards = 3
	open := func() *engine.Sharded {
		t.Helper()
		s, err := engine.OpenSharded(ctx, ds, shards,
			engine.WithSpec("grapes:workers=2"), engine.WithIndexPath(base))
		if err != nil {
			t.Fatalf("OpenSharded: %v", err)
		}
		return s
	}

	s1 := open()
	if s1.Restored() {
		t.Fatal("first open restored a nonexistent index")
	}
	if _, err := os.Stat(base); err != nil {
		t.Fatalf("manifest not written: %v", err)
	}
	for i := 0; i < shards; i++ {
		if s1.ShardLen(i) == 0 {
			continue
		}
		if _, err := os.Stat(engine.ShardIndexPath(base, i)); err != nil {
			t.Fatalf("shard file %d not written: %v", i, err)
		}
	}

	s2 := open()
	if !s2.Restored() {
		t.Fatal("second open rebuilt instead of restoring")
	}
	for i, q := range queries {
		r1, err := s1.Query(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := s2.Query(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if !r1.Answers.Equal(r2.Answers) {
			t.Errorf("query %d: restored answers diverge", i)
		}
	}

	// Corrupt one shard: only it rebuilds, and the overwrite heals it.
	victim, nonEmpty := -1, 0
	for i := 0; i < shards; i++ {
		if s1.ShardLen(i) > 0 {
			nonEmpty++
			if victim < 0 {
				victim = i
			}
		}
	}
	if err := os.WriteFile(engine.ShardIndexPath(base, victim), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	s3 := open()
	if s3.Restored() {
		t.Fatal("open trusted a corrupt shard")
	}
	if got, want := s3.RestoredShards(), nonEmpty-1; got != want {
		t.Fatalf("corrupt shard: restored %d shards, want %d", got, want)
	}
	if !open().Restored() {
		t.Fatal("rebuild did not overwrite the corrupt shard file")
	}

	// Respelling a default parameter is the same configuration and must
	// still restore (the manifest stores the default-eliding canonical
	// spec). maxPathLen=4 is the grapes default.
	same, err := engine.OpenSharded(ctx, ds, shards,
		engine.WithSpec("grapes:maxPathLen=4,workers=2"), engine.WithIndexPath(base))
	if err != nil {
		t.Fatal(err)
	}
	if !same.Restored() {
		t.Fatal("explicitly spelling a default parameter forced a rebuild")
	}

	// A different shard count must not trust the old shard files.
	s5, err := engine.OpenSharded(ctx, ds, shards+1,
		engine.WithSpec("grapes:workers=2"), engine.WithIndexPath(base))
	if err != nil {
		t.Fatal(err)
	}
	if s5.RestoredShards() != 0 {
		t.Fatalf("changed shard count restored %d shards, want 0", s5.RestoredShards())
	}
}

// TestShardedRejectsWithMethod: a single pre-built instance cannot back N
// shards.
func TestShardedRejectsWithMethod(t *testing.T) {
	ds := tinyDataset(t)
	m, err := engine.New("noindex")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := engine.OpenSharded(context.Background(), ds, 2, engine.WithMethod(m)); err == nil {
		t.Fatal("OpenSharded accepted WithMethod")
	}
	if _, err := engine.OpenSharded(context.Background(), ds, 0); err == nil {
		t.Fatal("OpenSharded accepted 0 shards")
	}
}
