package engine_test

import (
	"context"
	"errors"
	"sync"
	"testing"

	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/graph"
)

// TestMutableConcurrentQueries hammers one engine with concurrent queries,
// streams, and mutations. Run under -race (CI does) this pins the
// reader/writer serialization: no data race between index maintenance and
// in-flight queries, and every query sees a consistent snapshot.
func TestMutableConcurrentQueries(t *testing.T) {
	ctx := context.Background()
	ds := tinyDataset(t)
	pool := gen.Synthetic(gen.SynthConfig{
		NumGraphs: 8, MeanNodes: 10, MeanDensity: 0.2, NumLabels: 4, Seed: 43,
	})
	for _, spec := range []string{"grapes", "ctindex:fingerprintBits=512"} {
		t.Run(spec, func(t *testing.T) {
			eng, err := engine.Open(ctx, ds, engine.WithSpec(spec))
			if err != nil {
				t.Fatal(err)
			}
			queries := tinyQueries(t, ds)
			var wg sync.WaitGroup
			for w := 0; w < 4; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := 0; i < 20; i++ {
						q := queries[(w+i)%len(queries)]
						if w%2 == 0 {
							if _, err := eng.Query(ctx, q); err != nil {
								t.Errorf("query: %v", err)
								return
							}
							continue
						}
						for _, err := range eng.Stream(ctx, q) {
							if err != nil {
								// A mutation landing mid-stream aborts it
								// with ErrStreamStale by design (the lock is
								// no longer held across yields); anything
								// else is a real failure.
								if errors.Is(err, engine.ErrStreamStale) {
									break
								}
								t.Errorf("stream: %v", err)
								return
							}
						}
					}
				}(w)
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i, g := range pool.Graphs {
					id, err := eng.AddGraph(ctx, g.ShallowWithID(0))
					if err != nil {
						t.Errorf("add %d: %v", i, err)
						return
					}
					if i%2 == 0 {
						if err := eng.RemoveGraph(ctx, id); err != nil {
							t.Errorf("remove %d: %v", id, err)
							return
						}
					}
				}
			}()
			wg.Wait()
		})
	}
}

// TestMutableErrors pins the mutation error surface.
func TestMutableErrors(t *testing.T) {
	ctx := context.Background()
	ds := tinyDataset(t)
	eng, err := engine.Open(ctx, ds, engine.WithSpec("ggsx"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.AddGraph(ctx, nil); err == nil {
		t.Error("adding nil graph must fail")
	}
	if _, err := eng.AddGraph(ctx, graph.New(0)); err == nil {
		t.Error("adding empty graph must fail")
	}
	if err := eng.RemoveGraph(ctx, 9999); !errors.Is(err, engine.ErrNoSuchGraph) {
		t.Errorf("remove of unknown id = %v, want engine.ErrNoSuchGraph", err)
	}
	if err := eng.RemoveGraph(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if err := eng.RemoveGraph(ctx, 0); !errors.Is(err, engine.ErrNoSuchGraph) {
		t.Errorf("double remove = %v, want engine.ErrNoSuchGraph", err)
	}
}

// TestShardedMutationRoutesToOwningShard: mutations land in ShardOf's
// shard, and shard-local ids stay consistent with the global mapping.
func TestShardedMutationRoutesToOwningShard(t *testing.T) {
	ctx := context.Background()
	ds := tinyDataset(t)
	s, err := engine.OpenSharded(ctx, ds, 4, engine.WithSpec("ggsx"))
	if err != nil {
		t.Fatal(err)
	}
	before := make([]int, 4)
	for i := range before {
		before[i] = s.ShardLen(i)
	}
	pool := gen.Synthetic(gen.SynthConfig{
		NumGraphs: 3, MeanNodes: 10, MeanDensity: 0.2, NumLabels: 4, Seed: 44,
	})
	for _, g := range pool.Graphs {
		id, err := s.AddGraph(ctx, g.ShallowWithID(0))
		if err != nil {
			t.Fatal(err)
		}
		owner := engine.ShardOf(id, 4)
		before[owner]++
		if got := s.ShardLen(owner); got != before[owner] {
			t.Errorf("graph %d: owning shard %d has %d graphs, want %d", id, owner, got, before[owner])
		}
	}
	// Removal of a graph keeps the slot (sub-dataset lengths unchanged)
	// but queries lose it; covered by parity tests — here just assert the
	// call succeeds and the epoch moves.
	e0 := s.Epoch()
	if err := s.RemoveGraph(ctx, 0); err != nil {
		t.Fatal(err)
	}
	if s.Epoch() != e0+1 {
		t.Errorf("epoch %d after remove, want %d", s.Epoch(), e0+1)
	}
}
