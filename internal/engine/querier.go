package engine

import (
	"context"
	"iter"

	"repro/internal/core"
	"repro/internal/graph"
)

// Querier is the query-serving surface Engine and Sharded share: one-shot
// queries, concurrent batches, and streamed answers over a single dataset.
// It is the contract a serving layer (repro/internal/server) wraps — a
// result cache or an RPC fan-out interposes on Querier without caring
// whether the index behind it is sharded.
type Querier interface {
	// Dataset returns the dataset queries are answered over.
	Dataset() *graph.Dataset
	// Query processes one subgraph query end to end.
	Query(ctx context.Context, q *graph.Graph) (*core.QueryResult, error)
	// QueryBatch processes a workload concurrently, returning per-query
	// results in input order.
	QueryBatch(ctx context.Context, queries []*graph.Graph, opts core.BatchOptions) ([]core.BatchResult, error)
	// Stream yields matching graph IDs as verification confirms them, in
	// ascending ID order, without materializing the answer set.
	Stream(ctx context.Context, q *graph.Graph) iter.Seq2[graph.ID, error]
}

var (
	_ Querier = (*Engine)(nil)
	_ Querier = (*Sharded)(nil)
)
