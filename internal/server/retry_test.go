package server

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"
)

// fastPolicy keeps test backoff in the microseconds.
var fastPolicy = RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond}

func TestRetryClientRetriesAdmissionRejections(t *testing.T) {
	for _, code := range []int{http.StatusTooManyRequests, http.StatusServiceUnavailable} {
		var calls atomic.Int64
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if calls.Add(1) <= 2 {
				w.WriteHeader(code)
				return
			}
			w.Write([]byte("ok"))
		}))
		defer ts.Close()

		retries := 0
		rc := &RetryClient{Policy: fastPolicy, OnRetry: func(int, error, time.Duration) { retries++ }}
		resp, err := rc.Get(ts.URL)
		if err != nil {
			t.Fatalf("status %d: %v", code, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || string(body) != "ok" {
			t.Errorf("status %d: final response %d %q, want 200 ok", code, resp.StatusCode, body)
		}
		if calls.Load() != 3 || retries != 2 {
			t.Errorf("status %d: %d calls with %d retries, want 3 and 2", code, calls.Load(), retries)
		}
	}
}

func TestRetryClientExhaustionReturnsFinalResponse(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	retries := 0
	rc := &RetryClient{Policy: fastPolicy, OnRetry: func(int, error, time.Duration) { retries++ }}
	resp, err := rc.Get(ts.URL)
	if err != nil {
		t.Fatalf("exhausted retries should return the response, got error %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("final status %d, want 503", resp.StatusCode)
	}
	if retries != fastPolicy.MaxAttempts-1 {
		t.Errorf("%d retries, want %d", retries, fastPolicy.MaxAttempts-1)
	}
}

func TestRetryClientRetriesRefusedConnection(t *testing.T) {
	// A listener grabbed and closed gives an address that refuses dials.
	ts := httptest.NewServer(http.NewServeMux())
	addr := ts.URL
	ts.Close()

	retries := 0
	rc := &RetryClient{Policy: fastPolicy, OnRetry: func(int, error, time.Duration) { retries++ }}
	if _, err := rc.Get(addr); err == nil {
		t.Fatalf("dial to closed port succeeded")
	}
	if retries != fastPolicy.MaxAttempts-1 {
		t.Errorf("refused dial retried %d times, want %d", retries, fastPolicy.MaxAttempts-1)
	}

	// Non-GET requests retry dial failures too: the connection never
	// opened, so the server provably did not execute anything.
	retries = 0
	req, _ := http.NewRequest(http.MethodDelete, addr+"/graphs/1", nil)
	if _, err := rc.Do(req); err == nil {
		t.Fatalf("dial to closed port succeeded")
	}
	if retries != fastPolicy.MaxAttempts-1 {
		t.Errorf("refused DELETE retried %d times, want %d", retries, fastPolicy.MaxAttempts-1)
	}
}

func TestRetryClientDoesNotRetryExecutedFailures(t *testing.T) {
	// A 500 means the server ran the request and failed; replaying a
	// mutation could double-apply it.
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer ts.Close()

	rc := &RetryClient{Policy: fastPolicy}
	req, _ := http.NewRequest(http.MethodPost, ts.URL, bytes.NewReader([]byte(`{"g":1}`)))
	resp, err := rc.Do(req)
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Errorf("status %d, want 500", resp.StatusCode)
	}
	if calls.Load() != 1 {
		t.Errorf("500 POST attempted %d times, want exactly 1", calls.Load())
	}
}

func TestRetryClientReplaysBody(t *testing.T) {
	// Each 503 retry must re-send the full body, not a drained reader.
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		if string(body) != `{"vertices":["a"]}` {
			t.Errorf("attempt %d saw body %q", calls.Load()+1, body)
		}
		if calls.Add(1) == 1 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte("ok"))
	}))
	defer ts.Close()

	rc := &RetryClient{Policy: fastPolicy}
	req, _ := http.NewRequest(http.MethodPost, ts.URL, bytes.NewReader([]byte(`{"vertices":["a"]}`)))
	resp, err := rc.Do(req)
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status %d, want 200 after one retry", resp.StatusCode)
	}
	if calls.Load() != 2 {
		t.Errorf("%d attempts, want 2", calls.Load())
	}
}
