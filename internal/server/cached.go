package server

import (
	"context"
	"errors"
	"iter"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/obs"
)

// CachedEngine wraps any engine.Querier — flat or sharded — with an
// isomorphism-invariant result cache and single-flight deduplication. The
// cache is keyed by QueryKey, so two queries that are isomorphic as
// labelled graphs share an entry regardless of vertex ordering; concurrent
// misses on the same key share one computation instead of racing the
// pipeline. Cached answers are exactly the underlying engine's: a hit
// returns the stored Candidates/Answers sets with Cached set and the
// lookup latency as FilterTime.
type CachedEngine struct {
	inner engine.Querier
	cache *cache // nil when caching is disabled

	mu      sync.Mutex
	flights map[string]*flight
	dedups  atomic.Int64

	// Registry-backed mirrors of the cache counters, so /metrics exposes
	// hit rates without reaching into the cache's internal state. They
	// start as private cells and are rebound by instrument().
	obsHits, obsMisses, obsDedups *obs.Counter
}

// flight is one in-progress computation shared by all queries with its key.
type flight struct {
	done chan struct{} // closed after res/err are set
	res  *core.QueryResult
	err  error
}

var _ engine.Querier = (*CachedEngine)(nil)

// NewCached wraps inner with a result cache bounded by cfg. With
// cfg.Disabled every call passes straight through (single-flight included),
// so a CachedEngine can stand in unconditionally.
func NewCached(inner engine.Querier, cfg CacheConfig) *CachedEngine {
	c := &CachedEngine{
		inner: inner, flights: make(map[string]*flight),
		obsHits: new(obs.Counter), obsMisses: new(obs.Counter), obsDedups: new(obs.Counter),
	}
	if !cfg.Disabled {
		c.cache = newCache(cfg)
	}
	return c
}

// instrument rebinds the cache counters onto reg, so the serving layer's
// /metrics and /stats report from one set of cells.
func (c *CachedEngine) instrument(reg *obs.Registry) {
	c.obsHits = reg.Counter("sq_cache_hits_total", "Result cache hits.").Counter()
	c.obsMisses = reg.Counter("sq_cache_misses_total", "Result cache misses.").Counter()
	c.obsDedups = reg.Counter("sq_cache_dedups_total",
		"Queries that joined an in-flight identical computation.").Counter()
}

// Dataset returns the dataset the wrapped engine serves queries over.
func (c *CachedEngine) Dataset() *graph.Dataset { return c.inner.Dataset() }

// Ready forwards the wrapped engine's readiness: false while a
// lazily-opened (storage=mmap) index is still materializing its
// first-touch sections. Engines without a readiness notion are always
// ready.
func (c *CachedEngine) Ready() bool {
	if r, ok := c.inner.(interface{ Ready() bool }); ok {
		return r.Ready()
	}
	return true
}

// CacheStats snapshots cache and deduplication counters.
func (c *CachedEngine) CacheStats() CacheStats {
	var s CacheStats
	if c.cache != nil {
		s = c.cache.stats()
	}
	s.Dedups = c.dedups.Load()
	return s
}

// Query serves one query through the cache: a hit returns immediately, a
// miss computes through the wrapped engine (joining an in-flight identical
// computation when one exists) and stores the result. Errors are never
// cached; a waiter whose context ends before the shared computation does
// returns its own ctx error, and a waiter whose leader died of the
// leader's own context recomputes rather than inheriting the failure.
func (c *CachedEngine) Query(ctx context.Context, q *graph.Graph) (*core.QueryResult, error) {
	if c.cache == nil {
		return c.inner.Query(ctx, q)
	}
	t0 := time.Now()
	key, ok := QueryKey(q)
	if !ok {
		return c.inner.Query(ctx, q)
	}
	for {
		// The epoch is read before the lookup and before the compute: a
		// mutation that lands in between stamps this entry with an
		// already-old epoch, so the worst case is an unnecessary
		// invalidation later — never a stale replay.
		epoch := c.epoch()
		if res, hit := c.cache.get(key, epoch); hit {
			c.obsHits.Inc()
			return cachedResult(res, time.Since(t0)), nil
		}
		// Flights are keyed by (epoch, key): a query racing a mutation
		// must not join a computation started against the previous
		// dataset version.
		fkey := strconv.FormatUint(epoch, 36) + "/" + key
		c.mu.Lock()
		f, inflight := c.flights[fkey]
		if !inflight {
			f = &flight{done: make(chan struct{})}
			c.flights[fkey] = f
			c.mu.Unlock()
			c.cache.countMiss()
			c.obsMisses.Inc()
			res, err := c.inner.Query(ctx, q)
			// Store before retiring the flight: a query arriving between
			// the two would otherwise see neither and recompute in full.
			if err == nil {
				c.cache.put(key, res, epoch)
			}
			f.res, f.err = res, err
			c.mu.Lock()
			delete(c.flights, fkey)
			c.mu.Unlock()
			close(f.done)
			return res, err
		}
		c.mu.Unlock()
		c.dedups.Add(1)
		c.obsDedups.Inc()
		select {
		case <-f.done:
			if f.err == nil {
				return cachedResult(f.res, time.Since(t0)), nil
			}
			if isContextErr(f.err) && ctx.Err() == nil {
				// The leader died of its *own* canceled context or
				// deadline; this waiter's budget is still alive, so one
				// impatient client must not poison the flight — loop and
				// recompute (or join the next flight).
				continue
			}
			return nil, f.err
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// isContextErr reports whether err is a context cancellation or deadline,
// wherever it sits in the chain.
func isContextErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// cachedResult is a hit's surface: the stored answer and candidate sets
// (shared, read-only by convention), Cached set, and the key+lookup latency
// as FilterTime so TotalTime() stays the real served latency.
func cachedResult(res *core.QueryResult, lookup time.Duration) *core.QueryResult {
	return &core.QueryResult{
		Candidates: res.Candidates,
		Answers:    res.Answers,
		FilterTime: lookup,
		Method:     res.Method,
		Cached:     true,
	}
}

// QueryBatch runs the batch through the cache item by item on the shared
// batch pool, so repeated or isomorphic queries inside one batch hit (or
// single-flight) like they do across requests. Unlike Engine.QueryBatch it
// does not force per-item verification serial: a serving layer bounds total
// load through admission control, not by flattening each request.
func (c *CachedEngine) QueryBatch(ctx context.Context, queries []*graph.Graph, opts core.BatchOptions) ([]core.BatchResult, error) {
	return core.QueryBatchFunc(ctx, queries, opts, c.Query)
}

// Stream passes through uncached: streaming exists to avoid materializing
// answer sets, which is exactly what caching would require.
func (c *CachedEngine) Stream(ctx context.Context, q *graph.Graph) iter.Seq2[graph.ID, error] {
	return c.inner.Stream(ctx, q)
}

// StreamStats implements engine.StatsStreamer by delegation: streams pass
// through uncached, with pipeline counters accumulated into stats when the
// wrapped engine exposes them (and silently without accounting when not).
func (c *CachedEngine) StreamStats(ctx context.Context, q *graph.Graph, stats *core.PipelineStats) iter.Seq2[graph.ID, error] {
	if ss, ok := c.inner.(engine.StatsStreamer); ok {
		return ss.StreamStats(ctx, q, stats)
	}
	return c.inner.Stream(ctx, q)
}

// methodName mirrors the attribution an unlimited QueryResult carries in
// its Method field: a flat engine's method display name, a sharded or
// routed engine's own name.
func methodName(q engine.Querier) string {
	switch e := q.(type) {
	case interface{ Method() core.Method }:
		return e.Method().Name()
	case interface{ Name() string }:
		return e.Name()
	}
	return ""
}

// QueryLimited serves one query capped at limit answers (limit <= 0 means
// uncapped and defers to Query). A cache hit returns a truncated copy of
// the stored full result — the cap never costs a recompute. A miss runs
// the lazy streaming pipeline and stops after limit answers, so it does
// only the work it returns (Produced/Verified report exactly how much);
// the partial result is NEVER stored, so a limited query cannot poison
// the cache for a later unlimited one — that one misses, computes the
// full set, and stores it. Limited results carry no Candidates set: the
// limited path exists to avoid materializing it.
func (c *CachedEngine) QueryLimited(ctx context.Context, q *graph.Graph, limit int) (*core.QueryResult, error) {
	if limit <= 0 {
		return c.Query(ctx, q)
	}
	if c.cache != nil {
		if key, ok := QueryKey(q); ok {
			t0 := time.Now()
			if res, hit := c.cache.get(key, c.epoch()); hit {
				c.obsHits.Inc()
				out := cachedResult(res, time.Since(t0))
				out.Candidates = nil
				if len(out.Answers) > limit {
					out.Answers = out.Answers[:limit:limit]
				}
				return out, nil
			}
		}
	}
	t0 := time.Now()
	var stats core.PipelineStats
	answers := make(graph.IDSet, 0, limit)
	for id, err := range c.StreamStats(ctx, q, &stats) {
		if err != nil {
			return nil, err
		}
		answers = append(answers, id)
		if len(answers) >= limit {
			break
		}
	}
	return &core.QueryResult{
		Answers:    answers,
		VerifyTime: time.Since(t0),
		Method:     methodName(c.inner),
		Produced:   int(stats.Produced.Load()),
		Verified:   int(stats.Verified.Load()),
	}, nil
}

// epoch reads the wrapped engine's dataset epoch — the version stamp every
// cache entry carries. A non-mutable engine is permanently at epoch 0.
func (c *CachedEngine) epoch() uint64 {
	if m, ok := c.inner.(interface{ Epoch() uint64 }); ok {
		return m.Epoch()
	}
	return 0
}

// Epoch implements engine.Mutable (delegated): the wrapped engine's
// dataset epoch, 0 for engines that do not mutate.
func (c *CachedEngine) Epoch() uint64 { return c.epoch() }

// AddGraph implements engine.Mutable by delegating to the wrapped engine.
// Entries cached at earlier epochs invalidate lazily: the epoch stamp
// mismatches on their next lookup, so no flush pass is needed.
func (c *CachedEngine) AddGraph(ctx context.Context, g *graph.Graph) (graph.ID, error) {
	m, ok := c.inner.(engine.Mutable)
	if !ok {
		return 0, engine.ErrNotMutable
	}
	return m.AddGraph(ctx, g)
}

// RemoveGraph implements engine.Mutable by delegating to the wrapped
// engine, with the same lazy epoch-based invalidation as AddGraph.
func (c *CachedEngine) RemoveGraph(ctx context.Context, id graph.ID) error {
	m, ok := c.inner.(engine.Mutable)
	if !ok {
		return engine.ErrNotMutable
	}
	return m.RemoveGraph(ctx, id)
}

var _ engine.Mutable = (*CachedEngine)(nil)
