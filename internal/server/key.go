// Package server is the long-lived serving layer over the query engine: an
// isomorphism-invariant result cache with single-flight deduplication
// (CachedEngine) and an HTTP/JSON front end (Server) with admission
// control, NDJSON streaming, and observable stats — the subsystem behind
// cmd/sqserve. It wraps any engine.Querier, so the index behind it may be
// flat or sharded.
package server

import (
	"sort"
	"strconv"
	"strings"

	"repro/internal/canon"
	"repro/internal/graph"
)

// QueryKey returns a canonical, isomorphism-invariant cache key for a query
// graph: two queries receive the same key iff they are isomorphic as
// labelled graphs, so a cache keyed by it hits regardless of vertex
// ordering. Connected queries key on their minimum DFS code
// (canon.GraphKey); disconnected queries on the sorted, length-prefixed
// multiset of their components' keys. ok is false only for the empty
// graph, which has no meaningful key — such queries bypass the cache.
func QueryKey(q *graph.Graph) (key string, ok bool) {
	if q.NumVertices() == 0 {
		return "", false
	}
	if k, ok := canon.GraphKey(q); ok {
		return string(k), true
	}
	comps := q.ConnectedComponents()
	keys := make([]string, 0, len(comps))
	for _, vs := range comps {
		sub, _, err := q.InducedSubgraph(vs)
		if err != nil {
			return "", false
		}
		k, ok := canon.GraphKey(sub)
		if !ok {
			return "", false
		}
		keys = append(keys, string(k))
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(strconv.Itoa(len(k)))
		b.WriteByte(':')
		b.WriteString(k)
	}
	return b.String(), true
}
