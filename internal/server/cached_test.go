package server

import (
	"context"
	"errors"
	"iter"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	_ "repro/internal/engine/std"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/workload"
)

func testDataset(t testing.TB) *graph.Dataset {
	t.Helper()
	return gen.Synthetic(gen.SynthConfig{
		NumGraphs: 25, MeanNodes: 14, MeanDensity: 0.2, NumLabels: 4, Seed: 41,
	})
}

func testQueries(t testing.TB, ds *graph.Dataset) []*graph.Graph {
	t.Helper()
	qs, err := workload.Generate(ds, workload.Config{NumQueries: 6, QueryEdges: 5, Seed: 42})
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	// Drop isomorphic duplicates: the tests assert that the first serve of
	// each query misses, which two isomorphic workload queries would break.
	seen := map[string]bool{}
	out := qs[:0]
	for _, q := range qs {
		k, ok := QueryKey(q)
		if ok && seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, q)
	}
	return out
}

// blockingQuerier is an engine.Querier whose Query blocks on gate (when
// set) and counts its calls, for single-flight tests.
type blockingQuerier struct {
	ds      *graph.Dataset
	calls   atomic.Int64
	entered chan struct{} // receives one token per Query entry
	gate    chan struct{} // Query blocks until closed (nil = no blocking)
}

func (b *blockingQuerier) Dataset() *graph.Dataset { return b.ds }

func (b *blockingQuerier) Query(ctx context.Context, q *graph.Graph) (*core.QueryResult, error) {
	b.calls.Add(1)
	if b.entered != nil {
		b.entered <- struct{}{}
	}
	if b.gate != nil {
		select {
		case <-b.gate:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	return &core.QueryResult{Candidates: graph.NewIDSet(1, 2), Answers: graph.NewIDSet(2)}, nil
}

func (b *blockingQuerier) QueryBatch(ctx context.Context, queries []*graph.Graph, opts core.BatchOptions) ([]core.BatchResult, error) {
	return core.QueryBatchFunc(ctx, queries, opts, b.Query)
}

func (b *blockingQuerier) Stream(ctx context.Context, q *graph.Graph) iter.Seq2[graph.ID, error] {
	return func(yield func(graph.ID, error) bool) {}
}

// TestSingleFlightDedup: concurrent isomorphic queries share one
// computation — the engine runs once, every caller gets the answer, and
// the latecomers count as dedups, not misses.
func TestSingleFlightDedup(t *testing.T) {
	ds := testDataset(t)
	q := testQueries(t, ds)[0]
	fake := &blockingQuerier{ds: ds, entered: make(chan struct{}, 1), gate: make(chan struct{})}
	ce := NewCached(fake, CacheConfig{})

	leaderDone := make(chan error, 1)
	go func() {
		_, err := ce.Query(context.Background(), q)
		leaderDone <- err
	}()
	<-fake.entered // the leader is inside the engine, holding the flight

	const followers = 7
	var wg sync.WaitGroup
	errs := make([]error, followers)
	results := make([]*core.QueryResult, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Isomorphic copies: same canonical key, distinct bytes.
			results[i], errs[i] = ce.Query(context.Background(), workload.Permute(q, int64(i+1)))
		}(i)
	}
	// Wait until every follower has joined the flight, then release.
	for ce.CacheStats().Dedups < followers {
		runtime.Gosched()
	}
	close(fake.gate)
	wg.Wait()
	if err := <-leaderDone; err != nil {
		t.Fatalf("leader: %v", err)
	}
	for i := 0; i < followers; i++ {
		if errs[i] != nil {
			t.Fatalf("follower %d: %v", i, errs[i])
		}
		if !results[i].Answers.Equal(graph.NewIDSet(2)) {
			t.Errorf("follower %d answers = %v, want [2]", i, results[i].Answers)
		}
		if !results[i].Cached {
			t.Errorf("follower %d should report Cached", i)
		}
	}
	if calls := fake.calls.Load(); calls != 1 {
		t.Errorf("engine ran %d times for %d concurrent identical queries, want 1", calls, followers+1)
	}
	st := ce.CacheStats()
	if st.Dedups != followers {
		t.Errorf("dedups = %d, want %d", st.Dedups, followers)
	}
	if st.Misses != 1 {
		t.Errorf("misses = %d, want 1 — only the leader computed; joiners are dedups, not misses", st.Misses)
	}
	// And the flight's result is now cached for later arrivals.
	res, err := ce.Query(context.Background(), q)
	if err != nil || !res.Cached {
		t.Errorf("post-flight query: err=%v cached=%v, want hit", err, res.Cached)
	}
	if calls := fake.calls.Load(); calls != 1 {
		t.Errorf("engine re-ran after the result was cached (%d calls)", calls)
	}
}

// TestSingleFlightLeaderCancellationDoesNotPoison: when the flight's
// leader dies of its *own* canceled context, a waiter with a live context
// recomputes instead of inheriting the cancellation.
func TestSingleFlightLeaderCancellationDoesNotPoison(t *testing.T) {
	ds := testDataset(t)
	q := testQueries(t, ds)[0]
	fake := &blockingQuerier{ds: ds, entered: make(chan struct{}, 2), gate: make(chan struct{})}
	ce := NewCached(fake, CacheConfig{})

	leaderCtx, leaderCancel := context.WithCancel(context.Background())
	leaderDone := make(chan error, 1)
	go func() {
		_, err := ce.Query(leaderCtx, q)
		leaderDone <- err
	}()
	<-fake.entered // leader holds the flight, parked on the gate

	followerDone := make(chan error, 1)
	var followerRes *core.QueryResult
	go func() {
		var err error
		followerRes, err = ce.Query(context.Background(), q)
		followerDone <- err
	}()
	for ce.CacheStats().Dedups < 1 {
		runtime.Gosched()
	}

	leaderCancel() // the impatient client gives up mid-compute
	if err := <-leaderDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("leader error = %v, want context.Canceled", err)
	}
	<-fake.entered // the follower retried and is now computing itself
	close(fake.gate)
	if err := <-followerDone; err != nil {
		t.Fatalf("follower inherited the leader's cancellation: %v", err)
	}
	if !followerRes.Answers.Equal(graph.NewIDSet(2)) {
		t.Errorf("follower answers = %v, want [2]", followerRes.Answers)
	}
	if calls := fake.calls.Load(); calls != 2 {
		t.Errorf("engine calls = %d, want 2 (canceled leader + retrying follower)", calls)
	}
}

// TestCachedParityEveryMethod is the serving-layer correctness contract:
// for every registered method, flat and sharded (N in {1, 4}), the cached
// engine's answers — on the miss, on the identical-query hit, and on an
// isomorphic permuted hit — are identical to the uncached engine's.
func TestCachedParityEveryMethod(t *testing.T) {
	ds := testDataset(t)
	queries := testQueries(t, ds)
	ctx := context.Background()
	// Mining-method overrides, mirroring the sharded parity test: per-shard
	// support is a ratio of the (smaller) shard, so unbounded feature sizes
	// blow the test budget.
	specs := map[string]string{
		"gindex":    "gindex:maxPatterns=20000,supportRatio=0.2",
		"treedelta": "treedelta:maxFeatureSize=5,maxPatterns=20000,querySupportToAdd=0.5",
	}
	for _, d := range engine.Descriptors() {
		spec := specs[d.Name]
		if spec == "" {
			spec = d.Name
		}
		t.Run(spec, func(t *testing.T) {
			for _, shards := range []int{0, 1, 4} {
				var q engine.Querier
				var err error
				switch {
				case d.OpenQuerier != nil:
					// Composite entries (the router) only construct through
					// OpenAny; with shards > 1 every routed sub-engine is
					// sharded.
					q, err = engine.OpenAny(ctx, ds, shards, engine.WithSpec(spec))
				case shards == 0:
					q, err = engine.Open(ctx, ds, engine.WithSpec(spec))
				default:
					q, err = engine.OpenSharded(ctx, ds, shards, engine.WithSpec(spec))
				}
				if err != nil {
					t.Fatalf("open (shards=%d): %v", shards, err)
				}
				ce := NewCached(q, CacheConfig{})
				for i, query := range queries {
					want, err := q.Query(ctx, query)
					if err != nil {
						t.Fatalf("shards=%d query %d: %v", shards, i, err)
					}
					miss, err := ce.Query(ctx, query)
					if err != nil {
						t.Fatalf("shards=%d query %d (miss): %v", shards, i, err)
					}
					if miss.Cached {
						t.Fatalf("shards=%d query %d: first serve must compute", shards, i)
					}
					hit, err := ce.Query(ctx, query)
					if err != nil {
						t.Fatalf("shards=%d query %d (hit): %v", shards, i, err)
					}
					if !hit.Cached {
						t.Errorf("shards=%d query %d: second serve must hit", shards, i)
					}
					perm, err := ce.Query(ctx, workload.Permute(query, int64(31+i)))
					if err != nil {
						t.Fatalf("shards=%d query %d (permuted): %v", shards, i, err)
					}
					if !perm.Cached {
						t.Errorf("shards=%d query %d: isomorphic permutation must hit", shards, i)
					}
					// Answers must match the uncached engine's on every
					// path. Candidate sets are asserted against the miss's
					// computation, not want's: Tree+Δ legitimately refines
					// its index between runs of the same query, so only
					// the cached copies must be byte-identical to what was
					// actually computed and stored.
					for name, got := range map[string]*core.QueryResult{"miss": miss, "hit": hit, "permuted hit": perm} {
						if !got.Answers.Equal(want.Answers) {
							t.Errorf("shards=%d query %d (%s): answers %v != uncached %v",
								shards, i, name, got.Answers, want.Answers)
						}
					}
					for name, got := range map[string]*core.QueryResult{"hit": hit, "permuted hit": perm} {
						if !got.Candidates.Equal(miss.Candidates) {
							t.Errorf("shards=%d query %d (%s): candidates diverge from the stored computation",
								shards, i, name)
						}
					}
				}
			}
		})
	}
}
