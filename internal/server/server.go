package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/router"
)

// maxBodyBytes bounds request bodies; a query graph is tiny, a batch of a
// few thousand is comfortably under this.
const maxBodyBytes = 32 << 20

// Config configures a Server around an opened engine.
type Config struct {
	// Spec is the canonical method spec being served, shown in /stats.
	Spec string
	// Shards is the engine's shard count (0 = unsharded), shown in /stats.
	Shards int
	// Cache bounds the result cache; the zero value takes the defaults.
	Cache CacheConfig
	// Workers caps concurrently executing requests (admission control's
	// worker pool; default GOMAXPROCS).
	Workers int
	// MaxQueue caps requests waiting for a worker slot beyond the
	// executing ones; arrivals past Workers+MaxQueue are rejected with
	// 429 (default 4×Workers).
	MaxQueue int
	// RequestTimeout bounds each request's query execution, admission
	// wait included (default 30s; negative = unlimited).
	RequestTimeout time.Duration
	// MaxBatch caps the queries accepted in one /batch request
	// (default 1024).
	MaxBatch int
	// Registry hosts the server's metrics families, served at
	// GET /metrics. Pass a shared registry (the router's, a test's) to
	// pool series; nil creates a private one. /stats reads the same cells,
	// so the two views can never disagree.
	Registry *obs.Registry
	// SlowQuery emits one JSON line (span tree, pipeline counters) to
	// SlowQueryWriter for every query at or over this duration; 0
	// disables the log.
	SlowQuery time.Duration
	// SlowQueryWriter receives slow-query lines (default stderr).
	SlowQueryWriter io.Writer
	// EnablePprof registers the /debug/pprof/* handlers on the server mux.
	EnablePprof bool
	// SLO is the p99 latency target GET /health/score compares against;
	// non-positive disables the latency check.
	SLO time.Duration
}

// Server is the HTTP/JSON front end over a cached engine: /query (one-shot
// or NDJSON streaming), /batch, /methods, /stats, and /healthz, with a
// bounded worker pool admitting query work and a drain mode for graceful
// shutdown.
type Server struct {
	eng     *CachedEngine
	cfg     Config
	mux     *http.ServeMux
	slots   chan struct{}
	started time.Time
	// routing is the wrapped engine when it is the adaptive router, so
	// /stats can expose win rates and the learned cost model.
	routing *router.Multi

	// dsMu guards the label dictionary every request resolves against:
	// request decoding reads it (RLock) while POST /graphs interns new
	// labels into it (Lock). It is held only around dictionary access —
	// never across engine work, whose own locks serialize index
	// maintenance against queries — so a slow rebuild-fallback mutation
	// cannot stall request decoding or /stats.
	dsMu sync.RWMutex

	// mutateMu serializes the mutation handlers (engine call + mirror
	// update): the engine serializes mutations internally anyway, so this
	// adds no real contention, but it makes the epoch-delta bookkeeping
	// below atomic with respect to other mutations. Queries never take it.
	mutateMu sync.Mutex
	// Counters and gauges live on the registry (reg) so /stats and
	// /metrics read the same cells; the named fields below are the cells,
	// fetched once at construction.

	// gLive/gRemoved mirror the dataset's counts for /stats and mutation
	// responses, maintained by the mutation handlers (under mutateMu) so
	// reads never touch the dataset structures a mutation is moving.
	gLive    *obs.Gauge
	gRemoved *obs.Gauge

	gAdmitted *obs.Gauge // in the system: waiting for a slot or executing
	gInflight *obs.Gauge // executing
	cRejected *obs.Counter
	cTimedOut *obs.Counter
	draining  atomic.Bool

	cQuery, cBatch, cStream, cMutate, cErrors *obs.Counter
	queryDur                                  *obs.Family // sq_query_duration_seconds{method}

	// Sliding windows behind GET /health/score (see health.go).
	reqWin, errWin *obs.RateWindow
	latWin         *obs.HistWindow

	reg  *obs.Registry
	slow *obs.SlowQueryLog
}

// New wraps an opened engine — *engine.Engine, *engine.Sharded, or any
// other Querier — in the serving layer.
func New(q engine.Querier, cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 4 * cfg.Workers
	}
	if cfg.RequestTimeout == 0 {
		cfg.RequestTimeout = 30 * time.Second
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 1024
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	s := &Server{
		eng:     NewCached(q, cfg.Cache),
		cfg:     cfg,
		slots:   make(chan struct{}, cfg.Workers),
		started: time.Now(),
		reg:     reg,
		slow:    obs.NewSlowQueryLog(cfg.SlowQuery, cfg.SlowQueryWriter),
	}
	req := reg.Counter("sq_requests_total",
		"Requests by kind; errors counts failed requests across kinds.", "kind")
	s.cQuery = req.Counter("query")
	s.cBatch = req.Counter("batch")
	s.cStream = req.Counter("stream")
	s.cMutate = req.Counter("mutate")
	s.cErrors = req.Counter("errors")
	adm := reg.Gauge("sq_admission",
		"Admission control state: admitted = waiting + executing, inflight = executing.", "state")
	s.gAdmitted = adm.Gauge("admitted")
	s.gInflight = adm.Gauge("inflight")
	s.cRejected = reg.Counter("sq_admission_rejected_total",
		"Requests rejected because the admission queue was full.").Counter()
	s.cTimedOut = reg.Counter("sq_admission_timeouts_total",
		"Requests whose admission wait outlived their budget.").Counter()
	graphs := reg.Gauge("sq_graphs", "Dataset graph counts by state.", "state")
	s.gLive = graphs.Gauge("live")
	s.gRemoved = graphs.Gauge("removed")
	s.queryDur = reg.Histogram("sq_query_duration_seconds",
		"End-to-end query latency by served method.", nil, "method")
	s.eng.instrument(reg)
	s.gLive.Set(int64(q.Dataset().NumAlive()))
	s.gRemoved.Set(int64(q.Dataset().NumRemoved()))
	if m, ok := q.(*router.Multi); ok {
		s.routing = m
		m.Instrument(reg)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("POST /batch", s.handleBatch)
	mux.HandleFunc("POST /graphs", s.handleAddGraph)
	mux.HandleFunc("DELETE /graphs/{id}", s.handleRemoveGraph)
	mux.HandleFunc("GET /methods", s.handleMethods)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.Handle("GET /metrics", reg.Handler())
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /health/score", s.handleHealthScore)
	if cfg.EnablePprof {
		RegisterPprof(mux)
	}
	s.slow.SetDropped(reg.Counter("sq_slowlog_dropped_total",
		"Slow-query log lines dropped by the byte budget.").Counter())
	obs.RegisterRuntimeMetrics(reg)
	obs.RegisterIndexMetrics(reg)
	s.reqWin = obs.NewRateWindow(time.Minute)
	s.errWin = obs.NewRateWindow(time.Minute)
	s.latWin = obs.NewHistWindow(time.Minute)
	s.mux = mux
	return s
}

// RegisterPprof registers the net/http/pprof handlers on mux — shared by
// every serving face (flat server, coordinator, node) behind their
// respective -pprof flags.
func RegisterPprof(mux *http.ServeMux) {
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}

// Registry returns the server's metrics registry (the one /metrics serves).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Engine returns the serving layer's cached engine, for in-process use and
// tests.
func (s *Server) Engine() *CachedEngine { return s.eng }

// Drain puts the server into drain mode: /readyz flips to 503 so load
// balancers stop routing here and new query work is rejected, while
// requests already admitted run to completion. Call it before
// http.Server.Shutdown, which then waits for the in-flight handlers.
func (s *Server) Drain() { s.draining.Store(true) }

// Admission control errors.
var (
	errQueueFull = errors.New("admission queue full")
	errDraining  = errors.New("server draining")
)

// acquire claims a worker slot, queueing up to the configured depth: at
// most Workers requests execute and at most MaxQueue more wait; an arrival
// beyond Workers+MaxQueue in the system is rejected.
func (s *Server) acquire(ctx context.Context) error {
	if s.draining.Load() {
		return errDraining
	}
	if s.gAdmitted.AddGet(1) > int64(s.cfg.Workers+s.cfg.MaxQueue) {
		s.gAdmitted.Add(-1)
		s.cRejected.Inc()
		return errQueueFull
	}
	select {
	case s.slots <- struct{}{}:
		s.gInflight.Add(1)
		return nil
	case <-ctx.Done():
		s.gAdmitted.Add(-1)
		s.cTimedOut.Inc()
		return ctx.Err()
	}
}

func (s *Server) release() {
	s.gInflight.Add(-1)
	s.gAdmitted.Add(-1)
	<-s.slots
}

// tryAcquireExtra opportunistically claims up to n additional worker slots
// without waiting, returning how many it got. A batch widens its internal
// pool only with idle capacity, so the Workers bound holds across
// concurrent requests and partial acquisition can never deadlock.
func (s *Server) tryAcquireExtra(n int) int {
	for got := 0; ; got++ {
		if got == n {
			return got
		}
		select {
		case s.slots <- struct{}{}:
		default:
			return got
		}
	}
}

func (s *Server) releaseExtra(n int) {
	for i := 0; i < n; i++ {
		<-s.slots
	}
}

// admit applies admission control and the per-request budget: it derives
// the bounded context and claims a worker slot, writing the rejection
// response itself on failure. The returned release func is non-nil iff ok;
// it frees the slot and cancels the context.
func (s *Server) admit(w http.ResponseWriter, r *http.Request) (ctx context.Context, release func(), ok bool) {
	ctx = r.Context()
	cancel := context.CancelFunc(func() {})
	if s.cfg.RequestTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
	}
	if err := s.acquire(ctx); err != nil {
		cancel()
		switch {
		case errors.Is(err, errQueueFull):
			w.Header().Set("Retry-After", "1")
			s.fail(w, http.StatusTooManyRequests, err)
		case errors.Is(err, errDraining):
			s.fail(w, http.StatusServiceUnavailable, err)
		default: // admission wait outlived the request budget or the client
			s.fail(w, http.StatusServiceUnavailable, err)
		}
		return nil, nil, false
	}
	return ctx, func() { s.release(); cancel() }, true
}

// fail writes a JSON error body and counts it.
func (s *Server) fail(w http.ResponseWriter, code int, err error) {
	s.cErrors.Inc()
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(ErrorResponse{Error: err.Error()})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

func decodeJSON(r *http.Request, w http.ResponseWriter, v any) error {
	body := http.MaxBytesReader(w, r.Body, maxBodyBytes)
	if err := json.NewDecoder(body).Decode(v); err != nil {
		return fmt.Errorf("decoding request: %w", err)
	}
	return nil
}

// queryStatusCode maps an engine error to an HTTP status: context ends are
// the request budget's doing, everything else is the server's.
func queryStatusCode(err error) int {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		return http.StatusGatewayTimeout
	}
	return http.StatusInternalServerError
}

// handleQuery serves POST /query: body is one GraphJSON; `?stream=1`
// switches the response to NDJSON answer ids backed by the engine's lazy
// Stream iterator (uncached), cancelled mid-stream when the client
// disconnects or the request budget ends. `?limit=N` caps the answer
// count in both modes, honored end to end: the streaming pipeline stops
// after N answers and the unexecuted tail of the query is never computed.
func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	stream := r.URL.Query().Get("stream") != ""
	if stream {
		s.cStream.Inc()
	} else {
		s.cQuery.Inc()
	}
	limit := 0
	if ls := r.URL.Query().Get("limit"); ls != "" {
		n, err := strconv.Atoi(ls)
		if err != nil || n < 1 {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("bad limit %q: want a positive integer", ls))
			return
		}
		limit = n
	}
	// A trace exists when the client asked for one (the header) or the
	// slow-query log might need it; otherwise every span call below is a
	// nil no-op.
	var tr *obs.Trace
	echo := false
	if id := obs.TraceIDFromHeader(r.Header.Get(obs.TraceHeader)); id != "" {
		tr = obs.NewTraceWithID(id)
		echo = true
	} else if s.slow.Enabled() {
		tr = obs.NewTrace()
	}
	root := tr.StartSpan(nil, "query")
	if root != nil {
		r = r.WithContext(obs.ContextWithSpan(r.Context(), root))
	}
	psp := tr.StartSpan(root, "parse")
	var gj GraphJSON
	if err := decodeJSON(r, w, &gj); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	s.dsMu.RLock()
	q, unknown, err := ToGraph(gj, &s.eng.Dataset().Dict)
	s.dsMu.RUnlock()
	psp.End()
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if unknown {
		// A label absent from the dataset dictionary is in no dataset
		// graph: the answer is empty, no engine work needed.
		if stream {
			w.Header().Set("Content-Type", "application/x-ndjson")
			json.NewEncoder(w).Encode(StreamLine{Done: true})
			return
		}
		writeJSON(w, queryResponse(&core.QueryResult{}))
		return
	}
	ctx, release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	if stream {
		s.streamQuery(ctx, w, q, limit, tr, root, t0)
		return
	}
	var res *core.QueryResult
	if limit > 0 {
		res, err = s.eng.QueryLimited(ctx, q, limit)
	} else {
		res, err = s.eng.Query(ctx, q)
	}
	if err != nil {
		root.Cancel()
		s.fail(w, queryStatusCode(err), err)
		return
	}
	wall := time.Since(t0)
	method := res.Method
	if method == "" {
		method = s.cfg.Spec
	}
	s.queryDur.Histogram(method).Observe(wall.Seconds())
	root.Attr("method", method)
	if res.Cached {
		root.Attr("cached", true)
	}
	root.End()
	resp := queryResponse(res)
	resp.Limit = limit
	if echo {
		resp.Trace = tr.Tree()
	}
	writeJSON(w, resp)
	s.slow.Record(wall, obs.SlowQueryRecord{
		Kind: "query", Trace: tr.ID(), Method: method,
		Candidates: len(res.Candidates), Produced: res.Produced, Verified: res.Verified,
		Answers:  len(res.Answers),
		FilterUs: res.FilterTime.Microseconds(), VerifyUs: res.VerifyTime.Microseconds(),
		Spans: tr.Tree(),
	})
}

// streamQuery writes NDJSON answer lines as verification confirms them,
// flushing per line so clients observe answers before the query finishes —
// the first line lands after a single verification, not after the full
// candidate scan. With limit > 0 the stream stops after that many answers
// and the pipeline's tail is never executed; the done line reports the
// produced/verified counters that prove it. The engine streams under
// epoch-checked chunked locking (no lock held across writes), so a client
// that stops reading can no longer block mutations; the write deadline
// still bounds how long such a client pins a worker slot and connection.
func (s *Server) streamQuery(ctx context.Context, w http.ResponseWriter, q *graph.Graph, limit int,
	tr *obs.Trace, root *obs.Span, t0 time.Time) {
	if s.cfg.RequestTimeout > 0 {
		rc := http.NewResponseController(w)
		_ = rc.SetWriteDeadline(time.Now().Add(s.cfg.RequestTimeout))
		// Clear it when the stream ends: the deadline belongs to the
		// connection, not the request, and would otherwise poison the next
		// request on a keep-alive connection (http.Server only re-arms
		// write deadlines itself when Server.WriteTimeout is set).
		defer rc.SetWriteDeadline(time.Time{})
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	var stats core.PipelineStats
	n := 0
	for id, err := range s.eng.StreamStats(ctx, q, &stats) {
		if err != nil {
			s.cErrors.Inc()
			root.Cancel()
			enc.Encode(StreamLine{Error: err.Error()})
			if fl != nil {
				fl.Flush()
			}
			return
		}
		id := id
		if enc.Encode(StreamLine{ID: &id}) != nil {
			return // client gone; ctx cancellation stops the iterator next round
		}
		if fl != nil {
			fl.Flush()
		}
		n++
		if limit > 0 && n >= limit {
			break // stops the lazy pipeline; the tail is never verified
		}
	}
	enc.Encode(StreamLine{
		Done: true, Matches: n,
		Produced: stats.Produced.Load(), Verified: stats.Verified.Load(),
	})
	if fl != nil {
		fl.Flush()
	}
	wall := time.Since(t0)
	s.queryDur.Histogram(s.cfg.Spec).Observe(wall.Seconds())
	root.Attr("matches", n)
	root.End()
	s.slow.Record(wall, obs.SlowQueryRecord{
		Kind: "stream", Trace: tr.ID(), Method: s.cfg.Spec,
		Produced: int(stats.Produced.Load()), Verified: int(stats.Verified.Load()),
		Answers: n, Spans: tr.Tree(),
	})
}

// handleBatch serves POST /batch: each query runs through the cache on the
// shared batch pool; malformed items fail individually without sinking the
// batch.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.cBatch.Inc()
	var req BatchRequest
	if err := decodeJSON(r, w, &req); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	if len(req.Queries) == 0 {
		s.fail(w, http.StatusBadRequest, errors.New("empty batch"))
		return
	}
	if len(req.Queries) > s.cfg.MaxBatch {
		s.fail(w, http.StatusBadRequest,
			fmt.Errorf("batch of %d exceeds limit %d", len(req.Queries), s.cfg.MaxBatch))
		return
	}
	items := make([]BatchItem, len(req.Queries))
	var valid []*graph.Graph
	var validIdx []int
	s.dsMu.RLock()
	for i, gj := range req.Queries {
		q, unknown, err := ToGraph(gj, &s.eng.Dataset().Dict)
		switch {
		case err != nil:
			items[i] = BatchItem{Error: err.Error()}
		case unknown:
			items[i] = BatchItem{QueryResponse: queryResponse(&core.QueryResult{})}
		default:
			valid = append(valid, q)
			validIdx = append(validIdx, i)
		}
	}
	s.dsMu.RUnlock()
	ctx, release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	// The batch runs on its own admission slot plus whatever slots are
	// idle right now: its internal parallelism never takes the total
	// executing concurrency past the Workers bound, so batch traffic
	// cannot tunnel around admission control.
	want := req.Workers
	if want <= 0 || want > s.cfg.Workers {
		want = s.cfg.Workers
	}
	extra := s.tryAcquireExtra(want - 1)
	defer s.releaseExtra(extra)
	// The per-item errors land in the results; the batch-level first error
	// is deliberately not a request failure.
	results, _ := s.eng.QueryBatch(ctx, valid, core.BatchOptions{Workers: 1 + extra})
	for j, br := range results {
		i := validIdx[j]
		if br.Err != nil {
			items[i] = BatchItem{Error: br.Err.Error()}
			continue
		}
		items[i] = BatchItem{QueryResponse: queryResponse(br.Result)}
	}
	writeJSON(w, BatchResponse{Results: items})
}

// mutationStatusCode maps a mutation error to an HTTP status: engines
// without the Mutable capability are 501, a remove of an unknown or
// already-removed graph 404, context ends 504, anything else 500.
func mutationStatusCode(err error) int {
	switch {
	case errors.Is(err, engine.ErrNotMutable):
		return http.StatusNotImplemented
	case errors.Is(err, engine.ErrNoSuchGraph):
		return http.StatusNotFound
	default:
		return queryStatusCode(err)
	}
}

// handleAddGraph serves POST /graphs: the body graph joins the live
// dataset under a fresh id and every index is maintained before the
// response returns, so a subsequent query observes it. New vertex labels
// are interned — an added graph may grow the label universe. Mutations
// pass through admission control like queries: index maintenance is real
// engine work.
func (s *Server) handleAddGraph(w http.ResponseWriter, r *http.Request) {
	s.cMutate.Inc()
	var gj GraphJSON
	if err := decodeJSON(r, w, &gj); err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	ctx, release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	// Interning holds the dictionary write lock; the engine call runs
	// outside it (the engine's own lock serializes index maintenance
	// against queries), so a slow rebuild never blocks request decoding.
	s.dsMu.Lock()
	g, err := InternGraph(gj, &s.eng.Dataset().Dict)
	s.dsMu.Unlock()
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	s.mutateMu.Lock()
	before := s.eng.Epoch()
	id, err := s.eng.AddGraph(ctx, g)
	if err != nil {
		// A failed add may still have committed dataset operations: the
		// engine rolls a half-applied add back by tombstoning the fresh id
		// (epoch +2: one add, one remove). Keep the mirrors truthful —
		// mutateMu makes the epoch delta attributable to this request.
		if s.eng.Epoch() == before+2 {
			s.gRemoved.Add(1)
		}
		s.mutateMu.Unlock()
		s.fail(w, mutationStatusCode(err), err)
		return
	}
	s.gLive.Add(1)
	live := int(s.gLive.Value())
	epoch := s.eng.Epoch()
	s.mutateMu.Unlock()
	writeJSON(w, MutationResponse{ID: id, Epoch: epoch, Graphs: live})
}

// handleRemoveGraph serves DELETE /graphs/{id}: the graph is tombstoned —
// it can never again appear in any candidate or answer set — and
// incremental indexes drop its postings. The id is never reused.
func (s *Server) handleRemoveGraph(w http.ResponseWriter, r *http.Request) {
	s.cMutate.Inc()
	idStr := r.PathValue("id")
	id64, err := strconv.ParseInt(idStr, 10, 32)
	if err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad graph id %q", idStr))
		return
	}
	ctx, release, ok := s.admit(w, r)
	if !ok {
		return
	}
	defer release()
	s.mutateMu.Lock()
	before := s.eng.Epoch()
	if err := s.eng.RemoveGraph(ctx, graph.ID(id64)); err != nil {
		// The tombstone may have committed even when a later maintenance
		// step (re-persist, rebuild) failed — under mutateMu the epoch
		// moved iff this request's remove did. The error still surfaces
		// (persistence needs operator attention), but the mirrors track
		// the dataset, not the response code.
		if s.eng.Epoch() != before {
			s.gRemoved.Add(1)
			s.gLive.Add(-1)
		}
		s.mutateMu.Unlock()
		s.fail(w, mutationStatusCode(err), err)
		return
	}
	s.gRemoved.Add(1)
	s.gLive.Add(-1)
	live := int(s.gLive.Value())
	epoch := s.eng.Epoch()
	s.mutateMu.Unlock()
	writeJSON(w, MutationResponse{ID: graph.ID(id64), Epoch: epoch, Graphs: live})
}

// handleMethods serves GET /methods: the live registry listing.
func (s *Server) handleMethods(w http.ResponseWriter, _ *http.Request) {
	var out []MethodJSON
	for _, d := range engine.Descriptors() {
		m := MethodJSON{Name: d.Name, Display: d.Display, Help: d.Help}
		for _, f := range d.Fields {
			m.Params = append(m.Params, ParamJSON{
				Name: f.Name, Kind: f.Kind.String(), Default: f.Default, Help: f.Help,
			})
		}
		out = append(out, m)
	}
	writeJSON(w, out)
}

// handleStats serves GET /stats.
func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	ds := s.eng.Dataset()
	var routing *router.Snapshot
	if s.routing != nil {
		snap := s.routing.Stats()
		routing = &snap
	}
	graphs, removed, epoch := int(s.gLive.Value()), int(s.gRemoved.Value()), s.eng.Epoch()
	writeJSON(w, StatsResponse{
		Routing:       routing,
		UptimeSeconds: time.Since(s.started).Seconds(),
		Dataset:       ds.Name,
		Graphs:        graphs,
		Removed:       removed,
		Epoch:         epoch,
		Method:        s.cfg.Spec,
		Shards:        s.cfg.Shards,
		Draining:      s.draining.Load(),
		Cache:         s.eng.CacheStats(),
		Admission: AdmissionStats{
			Workers:    s.cfg.Workers,
			QueueLimit: s.cfg.MaxQueue,
			InFlight:   s.gInflight.Value(),
			Waiting:    max(s.gAdmitted.Value()-s.gInflight.Value(), 0),
			Rejected:   s.cRejected.Value(),
			TimedOut:   s.cTimedOut.Value(),
		},
		Requests: RequestStats{
			Query:  s.cQuery.Value(),
			Batch:  s.cBatch.Value(),
			Stream: s.cStream.Value(),
			Mutate: s.cMutate.Value(),
			Errors: s.cErrors.Value(),
		},
	})
}

// handleHealthz serves GET /healthz: pure liveness. It answers 200 as long
// as the process runs — draining included, so an orchestrator does not kill
// a process that is still finishing in-flight work. Routability is /readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, map[string]string{"status": "ok"})
}

// handleReadyz serves GET /readyz: readiness to take traffic. 503 while
// draining (and, via the bootstrap handler the commands install before the
// index build finishes, during startup), and 503 while a lazily-opened
// (storage=mmap) index is still materializing its first-touch sections;
// load balancers route on this, not on liveness.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]string{"status": "draining"})
		return
	}
	if !s.eng.Ready() {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(map[string]string{"status": "warming"})
		return
	}
	writeJSON(w, map[string]string{"status": "ready"})
}
