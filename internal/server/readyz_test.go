package server

import (
	"context"
	"iter"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
)

// readyFake is a Querier with a switchable readiness signal, standing in
// for an engine whose lazily-opened (storage=mmap) index is still warming.
type readyFake struct {
	ds    *graph.Dataset
	ready atomic.Bool
}

func (f *readyFake) Ready() bool             { return f.ready.Load() }
func (f *readyFake) Dataset() *graph.Dataset { return f.ds }
func (f *readyFake) Query(ctx context.Context, q *graph.Graph) (*core.QueryResult, error) {
	return &core.QueryResult{}, nil
}
func (f *readyFake) QueryBatch(ctx context.Context, queries []*graph.Graph, opts core.BatchOptions) ([]core.BatchResult, error) {
	return core.QueryBatchFunc(ctx, queries, opts, f.Query)
}
func (f *readyFake) Stream(ctx context.Context, q *graph.Graph) iter.Seq2[graph.ID, error] {
	return func(yield func(graph.ID, error) bool) {}
}

// TestReadyzWarming: /readyz reports 503 "warming" while the engine's
// index is still materializing, and flips to 200 once it is ready.
func TestReadyzWarming(t *testing.T) {
	ds := testDataset(t)
	f := &readyFake{ds: ds}
	srv := New(f, Config{Spec: "fake"})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("warming /readyz = %d, want 503", resp.StatusCode)
	}
	if body := decodeBody[map[string]string](t, resp); body["status"] != "warming" {
		t.Fatalf("warming /readyz status = %q, want warming", body["status"])
	}

	f.ready.Store(true)
	resp, err = http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ready /readyz = %d, want 200", resp.StatusCode)
	}
	if body := decodeBody[map[string]string](t, resp); body["status"] != "ready" {
		t.Fatalf("ready /readyz status = %q, want ready", body["status"])
	}
}
