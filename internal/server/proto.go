package server

import (
	"fmt"
	"strconv"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/router"
)

// GraphJSON is the wire form of a query graph: vertex labels by index plus
// undirected vertex-id edge pairs — the JSON analogue of one GFD record.
// Labels are the dataset's label strings; a label no dataset graph carries
// makes the query unsatisfiable and the server answers it empty without
// touching the engine.
type GraphJSON struct {
	Vertices []string   `json:"vertices"`
	Edges    [][2]int32 `json:"edges"`
}

// GraphToJSON renders g in wire form, naming labels through dict; labels
// never interned render as their numeric value, mirroring the GFD writer.
func GraphToJSON(g *graph.Graph, dict *graph.Dictionary) GraphJSON {
	gj := GraphJSON{
		Vertices: make([]string, g.NumVertices()),
		Edges:    g.Edges(),
	}
	if gj.Edges == nil {
		gj.Edges = [][2]int32{}
	}
	for v := int32(0); int(v) < g.NumVertices(); v++ {
		name := dict.Name(g.Label(v))
		if name == "" {
			name = strconv.Itoa(int(g.Label(v)))
		}
		gj.Vertices[v] = name
	}
	return gj
}

// ToGraph converts a wire graph into a query against dict's label space.
// unknown reports a vertex label absent from the dictionary: no dataset
// graph can then contain the query, so the caller short-circuits to an
// empty result instead of interning a new id (the dictionary is shared
// across concurrent requests and must not be mutated).
func ToGraph(gj GraphJSON, dict *graph.Dictionary) (q *graph.Graph, unknown bool, err error) {
	if len(gj.Vertices) == 0 {
		return nil, false, fmt.Errorf("query has no vertices")
	}
	for _, e := range gj.Edges {
		if e[0] < 0 || int(e[0]) >= len(gj.Vertices) || e[1] < 0 || int(e[1]) >= len(gj.Vertices) {
			return nil, false, fmt.Errorf("edge (%d,%d) out of range [0,%d)", e[0], e[1], len(gj.Vertices))
		}
	}
	g := graph.NewWithCapacity(0, len(gj.Vertices))
	for _, name := range gj.Vertices {
		l, ok := dict.Lookup(name)
		if !ok {
			return nil, true, nil
		}
		g.AddVertex(l)
	}
	for _, e := range gj.Edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			return nil, false, err
		}
	}
	return g, false, nil
}

// InternGraph converts a wire graph for insertion: unlike ToGraph, a
// label the dictionary has never seen is interned rather than reported —
// an added graph is allowed to grow the label universe. The caller must
// hold the server's dataset write lock.
func InternGraph(gj GraphJSON, dict *graph.Dictionary) (*graph.Graph, error) {
	if len(gj.Vertices) == 0 {
		return nil, fmt.Errorf("graph has no vertices")
	}
	for _, e := range gj.Edges {
		if e[0] < 0 || int(e[0]) >= len(gj.Vertices) || e[1] < 0 || int(e[1]) >= len(gj.Vertices) {
			return nil, fmt.Errorf("edge (%d,%d) out of range [0,%d)", e[0], e[1], len(gj.Vertices))
		}
	}
	g := graph.NewWithCapacity(0, len(gj.Vertices))
	for _, name := range gj.Vertices {
		g.AddVertex(dict.Intern(name))
	}
	for _, e := range gj.Edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// MutationResponse is the body of a successful POST /graphs or
// DELETE /graphs/{id}: the affected graph id, the dataset epoch after the
// mutation, and the live graph count.
type MutationResponse struct {
	ID     graph.ID `json:"id"`
	Epoch  uint64   `json:"epoch"`
	Graphs int      `json:"graphs"`
}

// QueryResponse is the non-streaming /query (and per-item /batch) result.
type QueryResponse struct {
	Candidates []graph.ID `json:"candidates"`
	Answers    []graph.ID `json:"answers"`
	// Method names the concrete method that served the query — under an
	// adaptive router this is the routing decision, observable per
	// response. Empty for short-circuited unknown-label queries, which no
	// method ever saw.
	Method   string `json:"method,omitempty"`
	Cached   bool   `json:"cached"`
	FilterUs int64  `json:"filter_us"`
	VerifyUs int64  `json:"verify_us"`
	TotalUs  int64  `json:"total_us"`
	// Partial marks a degraded cluster answer: one or more logical shards
	// (listed in FailedShards) had no reachable owner, so their graphs are
	// absent from Candidates and Answers. A single-process server never
	// sets it — an answer is complete or the request fails.
	Partial      bool  `json:"partial,omitempty"`
	FailedShards []int `json:"failed_shards,omitempty"`
	// Limit echoes the request's limit=N cap when one was applied: Answers
	// then holds at most Limit ids, Candidates is omitted (the limited
	// path never materializes the candidate set), and Produced/Verified
	// expose how much pipeline work the early-terminated query actually
	// did — the observable form of "limit=1 does one verification's worth
	// of work, not the full query's".
	Limit    int `json:"limit,omitempty"`
	Produced int `json:"produced,omitempty"`
	Verified int `json:"verified,omitempty"`
	// Trace is the server-side span tree, echoed when the request carried
	// an X-SQ-Trace header. On a cluster coordinator it includes the
	// grafted node-side subtrees.
	Trace *obs.SpanTree `json:"trace,omitempty"`
}

func queryResponse(res *core.QueryResult) QueryResponse {
	r := QueryResponse{
		Candidates: res.Candidates,
		Answers:    res.Answers,
		Method:     res.Method,
		Cached:     res.Cached,
		FilterUs:   res.FilterTime.Microseconds(),
		VerifyUs:   res.VerifyTime.Microseconds(),
		TotalUs:    res.TotalTime().Microseconds(),
		Produced:   res.Produced,
		Verified:   res.Verified,
	}
	// Encode empty sets as [] rather than null.
	if r.Candidates == nil {
		r.Candidates = graph.IDSet{}
	}
	if r.Answers == nil {
		r.Answers = graph.IDSet{}
	}
	return r
}

// BatchRequest is the /batch request body.
type BatchRequest struct {
	Queries []GraphJSON `json:"queries"`
	// Workers bounds the batch's internal parallelism; 0 or out-of-range
	// values are clamped to the server's worker budget.
	Workers int `json:"workers,omitempty"`
}

// BatchItem is one query's outcome inside a /batch response: a result or an
// item-level error (a malformed graph, or the batch's context ending).
type BatchItem struct {
	QueryResponse
	Error string `json:"error,omitempty"`
}

// BatchResponse is the /batch response body.
type BatchResponse struct {
	Results []BatchItem `json:"results"`
}

// StreamLine is one NDJSON line of a streaming /query response: an answer
// id, a terminal error, or the terminal done marker with the match count
// and the pipeline's produced/verified candidate counters (how much work
// the stream did — a limit=N stream that stopped early reports the small
// numbers that prove it). On a cluster coordinator the done line may be
// marked Partial with the shards that lost every owner mid-stream; their
// answers beyond the merge frontier are missing.
type StreamLine struct {
	ID           *graph.ID `json:"id,omitempty"`
	Error        string    `json:"error,omitempty"`
	Done         bool      `json:"done,omitempty"`
	Matches      int       `json:"matches,omitempty"`
	Partial      bool      `json:"partial,omitempty"`
	FailedShards []int     `json:"failed_shards,omitempty"`
	Produced     int64     `json:"produced,omitempty"`
	Verified     int64     `json:"verified,omitempty"`
	// Stale marks an error line caused by a mutation landing under the
	// stream (the epoch-checked chunked locking abort): the stream is
	// retryable on the same server, resumed after the last received id.
	Stale bool `json:"stale,omitempty"`
}

// MethodJSON is one registry entry in the /methods listing.
type MethodJSON struct {
	Name    string      `json:"name"`
	Display string      `json:"display"`
	Help    string      `json:"help,omitempty"`
	Params  []ParamJSON `json:"params,omitempty"`
}

// ParamJSON is one typed method parameter in the /methods listing.
type ParamJSON struct {
	Name    string `json:"name"`
	Kind    string `json:"kind"`
	Default any    `json:"default"`
	Help    string `json:"help,omitempty"`
}

// AdmissionStats reports the worker pool and queue state in /stats.
type AdmissionStats struct {
	Workers    int   `json:"workers"`
	QueueLimit int   `json:"queue_limit"`
	InFlight   int64 `json:"in_flight"`
	Waiting    int64 `json:"waiting"`
	Rejected   int64 `json:"rejected"`
	TimedOut   int64 `json:"timed_out"`
}

// RequestStats counts requests by endpoint in /stats.
type RequestStats struct {
	Query  int64 `json:"query"`
	Batch  int64 `json:"batch"`
	Stream int64 `json:"stream"`
	// Mutate counts POST /graphs and DELETE /graphs/{id} requests.
	Mutate int64 `json:"mutate"`
	Errors int64 `json:"errors"`
}

// StatsResponse is the /stats body.
type StatsResponse struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Dataset       string  `json:"dataset"`
	// Graphs counts live graphs; Removed the tombstoned ones whose slots
	// remain. Epoch is the dataset version, bumped by every mutation.
	Graphs    int            `json:"graphs"`
	Removed   int            `json:"removed,omitempty"`
	Epoch     uint64         `json:"epoch"`
	Method    string         `json:"method"`
	Shards    int            `json:"shards,omitempty"`
	Draining  bool           `json:"draining"`
	Cache     CacheStats     `json:"cache"`
	Admission AdmissionStats `json:"admission"`
	Requests  RequestStats   `json:"requests"`
	// Routing is present when the served engine is the adaptive router:
	// per-method win rates and the learned cost model's cells.
	Routing *router.Snapshot `json:"routing,omitempty"`
}

// ErrorResponse is the body of every non-2xx JSON response.
type ErrorResponse struct {
	Error string `json:"error"`
}
