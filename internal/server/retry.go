package server

import (
	"errors"
	"math/rand"
	"net"
	"net/http"
	"time"
)

// RetryPolicy shapes RetryClient's backoff: attempt n waits
// BaseDelay<<n, capped at MaxDelay, with the upper half jittered so a
// burst of failing clients does not reconverge on the server in lockstep.
type RetryPolicy struct {
	// MaxAttempts is the total tries, first included (default 4).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (default 100ms).
	BaseDelay time.Duration
	// MaxDelay caps a single wait (default 2s).
	MaxDelay time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 100 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	return p
}

// delay returns the jittered wait before retry attempt (0-based retry
// count): full backoff in [d/2, d] rather than exactly d.
func (p RetryPolicy) delay(attempt int) time.Duration {
	d := p.BaseDelay << attempt
	if d > p.MaxDelay || d <= 0 {
		d = p.MaxDelay
	}
	half := int64(d) / 2
	return time.Duration(half + rand.Int63n(half+1))
}

// RetryClient retries the transient failures a serving fleet emits by
// design: 429 (admission queue full) and 503 (draining, or a cluster shard
// momentarily ownerless) mean "try again shortly", and a refused connection
// means the process is restarting. Responses the server actually executed
// are never retried, so non-idempotent mutations stay safe: a transport
// error after the request may have reached the server only retries when the
// failure was at dial time (the connection never opened).
type RetryClient struct {
	// Client performs the attempts (default http.DefaultClient).
	Client *http.Client
	Policy RetryPolicy
	// OnRetry, when set, observes each retry: the attempt number just
	// failed (1-based), the cause, and the coming wait.
	OnRetry func(attempt int, cause error, wait time.Duration)
}

// retryableStatus reports a response the server rejected without executing.
func retryableStatus(code int) bool {
	return code == http.StatusTooManyRequests || code == http.StatusServiceUnavailable
}

// isDialError reports a failure to open the connection at all — the one
// transport error where the server provably never saw the request.
func isDialError(err error) bool {
	var oe *net.OpError
	return errors.As(err, &oe) && oe.Op == "dial"
}

// Do performs req, retrying per the policy. The request body must be
// replayable (req.GetBody set, which http.NewRequest arranges for
// bytes.Reader and friends) for a request with a body to retry.
func (rc *RetryClient) Do(req *http.Request) (*http.Response, error) {
	client := rc.Client
	if client == nil {
		client = http.DefaultClient
	}
	policy := rc.Policy.withDefaults()
	for attempt := 0; ; attempt++ {
		if attempt > 0 && req.Body != nil {
			body, err := req.GetBody()
			if err != nil {
				return nil, err
			}
			req.Body = body
		}
		resp, err := client.Do(req)
		last := attempt+1 >= policy.MaxAttempts
		replayable := req.Body == nil || req.GetBody != nil
		var cause error
		if err == nil {
			if !retryableStatus(resp.StatusCode) || last || !replayable {
				// Exhausted retries hand the caller the server's final
				// word (the 429/503 response), not a synthetic error.
				return resp, nil
			}
			cause = errors.New(resp.Status)
			resp.Body.Close()
		} else {
			// GET is idempotent, so any transport failure retries; other
			// methods only when the connection never opened.
			if last || !replayable || !(isDialError(err) || req.Method == http.MethodGet) {
				return nil, err
			}
			cause = err
		}
		wait := policy.delay(attempt)
		if rc.OnRetry != nil {
			rc.OnRetry(attempt+1, cause, wait)
		}
		select {
		case <-time.After(wait):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
}

// Get issues a retried GET.
func (rc *RetryClient) Get(url string) (*http.Response, error) {
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	return rc.Do(req)
}
