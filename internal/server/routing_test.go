package server

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/engine"
	_ "repro/internal/engine/std"
	"repro/internal/workload"
)

// TestServeRoutedEngine: a server over the adaptive router attributes every
// response to the concrete method that served it, and /stats carries the
// routing snapshot — win rates summing to the served queries and a warming
// cost model.
func TestServeRoutedEngine(t *testing.T) {
	ds := testDataset(t)
	spec := "router:methods=grapes+ggsx+gcode,policy=learned,epsilon=0"
	q, err := engine.OpenAny(context.Background(), ds, 0, engine.WithSpec(spec))
	if err != nil {
		t.Fatalf("OpenAny: %v", err)
	}
	srv := New(q, Config{Spec: spec})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	queries := testQueries(t, ds)
	served := 0
	for i, query := range queries {
		// Permute so the cache never swallows the routing decision.
		resp := postJSON(t, ts.URL+"/query", GraphToJSON(workload.Permute(query, int64(i)), &ds.Dict))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d: %s", i, resp.Status)
		}
		qr := decodeBody[QueryResponse](t, resp)
		if qr.Method == "" {
			t.Fatalf("query %d: response carries no serving method", i)
		}
		if d, ok := engine.Lookup(qr.Method); !ok || (d.Name != "grapes" && d.Name != "ggsx" && d.Name != "gcode") {
			t.Fatalf("query %d: served by %q, not a routed method", i, qr.Method)
		}
		served++
	}

	stats := decodeBody[StatsResponse](t, mustGet(t, ts.URL+"/stats"))
	if stats.Routing == nil {
		t.Fatal("/stats has no routing section for a routed engine")
	}
	if stats.Routing.Policy != "learned" {
		t.Errorf("routing policy = %q, want learned", stats.Routing.Policy)
	}
	if stats.Routing.Queries != int64(served) {
		t.Errorf("routing served %d queries, want %d", stats.Routing.Queries, served)
	}
	var won int64
	for _, ms := range stats.Routing.Methods {
		won += ms.Won
	}
	if won != stats.Routing.Queries {
		t.Errorf("routing wins sum to %d, want %d", won, stats.Routing.Queries)
	}
	if len(stats.Routing.Model) == 0 {
		t.Error("routing cost model empty after served traffic")
	}

	// A cached hit replays the stored attribution rather than rerouting.
	first := postJSON(t, ts.URL+"/query", GraphToJSON(queries[0], &ds.Dict))
	fr := decodeBody[QueryResponse](t, first)
	again := postJSON(t, ts.URL+"/query", GraphToJSON(queries[0], &ds.Dict))
	ar := decodeBody[QueryResponse](t, again)
	if !ar.Cached {
		t.Fatal("identical repeat did not hit the cache")
	}
	if ar.Method != fr.Method {
		t.Errorf("cached hit attributed to %q, computed result to %q", ar.Method, fr.Method)
	}

	// A plain (non-routed) engine serves no routing section.
	_, _, plain := newTestService(t, Config{})
	if s := decodeBody[StatsResponse](t, mustGet(t, plain.URL+"/stats")); s.Routing != nil {
		t.Error("plain engine /stats carries a routing section")
	}
}
