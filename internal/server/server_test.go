package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"iter"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	_ "repro/internal/engine/std"
	"repro/internal/graph"
	"repro/internal/testutil/leak"
	"repro/internal/workload"
)

// newTestService opens a GGSX engine over the shared tiny dataset and
// serves it from an httptest server.
func newTestService(t *testing.T, cfg Config) (*graph.Dataset, *Server, *httptest.Server) {
	t.Helper()
	ds := testDataset(t)
	eng, err := engine.Open(context.Background(), ds, engine.WithSpec("ggsx"))
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if cfg.Spec == "" {
		cfg.Spec = "ggsx"
	}
	srv := New(eng, cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ds, srv, ts
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	return resp
}

func decodeBody[T any](t *testing.T, resp *http.Response) T {
	t.Helper()
	defer resp.Body.Close()
	var v T
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return v
}

// TestServeQueryEndToEnd: /query answers match the engine, an isomorphic
// repeat hits the cache, and /stats reflects it.
func TestServeQueryEndToEnd(t *testing.T) {
	ds, srv, ts := newTestService(t, Config{})
	q := testQueries(t, ds)[0]
	direct, err := srv.Engine().Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}

	resp := postJSON(t, ts.URL+"/query", GraphToJSON(q, &ds.Dict))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s", resp.Status)
	}
	qr := decodeBody[QueryResponse](t, resp)
	if !graph.IDSet(qr.Answers).Equal(direct.Answers) {
		t.Errorf("answers %v != engine's %v", qr.Answers, direct.Answers)
	}

	resp = postJSON(t, ts.URL+"/query", GraphToJSON(workload.Permute(q, 99), &ds.Dict))
	qr2 := decodeBody[QueryResponse](t, resp)
	if !qr2.Cached {
		t.Error("isomorphic repeat should be served from cache")
	}
	if !graph.IDSet(qr2.Answers).Equal(direct.Answers) {
		t.Errorf("cached answers %v != engine's %v", qr2.Answers, direct.Answers)
	}

	stats := decodeBody[StatsResponse](t, mustGet(t, ts.URL+"/stats"))
	if stats.Cache.Hits < 1 {
		t.Errorf("stats cache hits = %d, want >= 1", stats.Cache.Hits)
	}
	if stats.Requests.Query < 2 {
		t.Errorf("stats query count = %d, want >= 2", stats.Requests.Query)
	}
	if stats.Method != "ggsx" || stats.Graphs != ds.Len() {
		t.Errorf("stats identity: method=%q graphs=%d", stats.Method, stats.Graphs)
	}
}

func mustGet(t *testing.T, url string) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	return resp
}

// TestServeQueryStream: ?stream=1 yields one NDJSON line per answer plus a
// terminal done line whose count matches the non-streaming answer set.
func TestServeQueryStream(t *testing.T) {
	ds, srv, ts := newTestService(t, Config{})
	q := testQueries(t, ds)[0]
	direct, err := srv.Engine().Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}

	resp := postJSON(t, ts.URL+"/query?stream=1", GraphToJSON(q, &ds.Dict))
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	var ids graph.IDSet
	done := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var line StreamLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch {
		case line.Error != "":
			t.Fatalf("stream error: %s", line.Error)
		case line.Done:
			done = true
			if line.Matches != len(ids) {
				t.Errorf("done reports %d matches, saw %d", line.Matches, len(ids))
			}
		case line.ID != nil:
			ids = append(ids, *line.ID)
		}
	}
	if !done {
		t.Fatal("stream ended without a done line")
	}
	if !ids.Equal(direct.Answers) {
		t.Errorf("streamed answers %v != engine's %v", ids, direct.Answers)
	}
}

// slowStreamer is a Querier whose Stream trickles ids until its context
// ends, recording whether cancellation reached it — the mid-stream
// cancellation contract.
type slowStreamer struct {
	ds       *graph.Dataset
	canceled chan struct{}
}

func (s *slowStreamer) Dataset() *graph.Dataset { return s.ds }
func (s *slowStreamer) Query(ctx context.Context, q *graph.Graph) (*core.QueryResult, error) {
	return &core.QueryResult{}, nil
}
func (s *slowStreamer) QueryBatch(ctx context.Context, queries []*graph.Graph, opts core.BatchOptions) ([]core.BatchResult, error) {
	return core.QueryBatchFunc(ctx, queries, opts, s.Query)
}
func (s *slowStreamer) Stream(ctx context.Context, q *graph.Graph) iter.Seq2[graph.ID, error] {
	return func(yield func(graph.ID, error) bool) {
		for id := graph.ID(0); ; id++ {
			select {
			case <-ctx.Done():
				close(s.canceled)
				yield(0, ctx.Err())
				return
			case <-time.After(2 * time.Millisecond):
			}
			if !yield(id, nil) {
				return
			}
		}
	}
}

// TestServeStreamMidStreamCancellation: closing the client connection
// cancels the in-flight stream on the server.
func TestServeStreamMidStreamCancellation(t *testing.T) {
	defer leak.Check(t)()
	ds := testDataset(t)
	fake := &slowStreamer{ds: ds, canceled: make(chan struct{})}
	srv := New(fake, Config{Spec: "fake"})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	q := testQueries(t, ds)[0]
	body, _ := json.Marshal(GraphToJSON(q, &ds.Dict))
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/query?stream=1", bytes.NewReader(body))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// Read a couple of lines mid-stream, then drop the connection.
	sc := bufio.NewScanner(resp.Body)
	for i := 0; i < 3 && sc.Scan(); i++ {
	}
	cancel()
	select {
	case <-fake.canceled:
	case <-time.After(5 * time.Second):
		t.Fatal("server stream never observed the client's cancellation")
	}
}

// TestServeBatch: valid items answer, malformed items fail individually,
// unknown-label items are empty — one request, per-item outcomes.
func TestServeBatch(t *testing.T) {
	ds, srv, ts := newTestService(t, Config{})
	qs := testQueries(t, ds)
	direct0, err := srv.Engine().Query(context.Background(), qs[0])
	if err != nil {
		t.Fatal(err)
	}
	req := BatchRequest{Queries: []GraphJSON{
		GraphToJSON(qs[0], &ds.Dict),
		{Vertices: []string{"A"}, Edges: [][2]int32{{0, 5}}}, // bad edge
		{Vertices: []string{"no-such-label"}},                // unknown label
	}}
	resp := postJSON(t, ts.URL+"/batch", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %s", resp.Status)
	}
	br := decodeBody[BatchResponse](t, resp)
	if len(br.Results) != 3 {
		t.Fatalf("%d results, want 3", len(br.Results))
	}
	if br.Results[0].Error != "" || !graph.IDSet(br.Results[0].Answers).Equal(direct0.Answers) {
		t.Errorf("item 0: err=%q answers=%v, want engine's %v",
			br.Results[0].Error, br.Results[0].Answers, direct0.Answers)
	}
	if br.Results[1].Error == "" {
		t.Error("item 1 (out-of-range edge) should fail individually")
	}
	if br.Results[2].Error != "" || len(br.Results[2].Answers) != 0 {
		t.Errorf("item 2 (unknown label) should answer empty, got err=%q answers=%v",
			br.Results[2].Error, br.Results[2].Answers)
	}
}

// blockingServerQuerier parks queries on a gate so admission-control tests
// can fill the worker pool deterministically.
type blockingServerQuerier struct {
	ds      *graph.Dataset
	entered chan struct{}
	gate    chan struct{}
}

func (b *blockingServerQuerier) Dataset() *graph.Dataset { return b.ds }
func (b *blockingServerQuerier) Query(ctx context.Context, q *graph.Graph) (*core.QueryResult, error) {
	b.entered <- struct{}{}
	select {
	case <-b.gate:
		return &core.QueryResult{}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}
func (b *blockingServerQuerier) QueryBatch(ctx context.Context, queries []*graph.Graph, opts core.BatchOptions) ([]core.BatchResult, error) {
	return core.QueryBatchFunc(ctx, queries, opts, b.Query)
}
func (b *blockingServerQuerier) Stream(ctx context.Context, q *graph.Graph) iter.Seq2[graph.ID, error] {
	return func(yield func(graph.ID, error) bool) {}
}

// TestServeAdmissionControl: with one worker and a one-deep queue, the
// third concurrent request is rejected with 429 and counted; the admitted
// ones finish once the pool unblocks.
func TestServeAdmissionControl(t *testing.T) {
	ds := testDataset(t)
	fake := &blockingServerQuerier{ds: ds, entered: make(chan struct{}, 8), gate: make(chan struct{})}
	srv := New(fake, Config{Spec: "fake", Workers: 1, MaxQueue: 1, RequestTimeout: time.Minute, Cache: CacheConfig{Disabled: true}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Distinct (non-isomorphic) queries so single-flight cannot merge them.
	qs := testQueries(t, ds)
	if len(qs) < 2 {
		t.Fatal("need two distinct queries")
	}
	body := func(i int) []byte {
		b, _ := json.Marshal(GraphToJSON(qs[i%len(qs)], &ds.Dict))
		return b
	}
	var wg sync.WaitGroup
	codes := make([]int, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body(i)))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			codes[i] = resp.StatusCode
		}(i)
	}
	<-fake.entered // one request is executing; the other is queued or about to be
	// Wait until the system holds both (1 executing + 1 queued), then
	// overflow the queue.
	deadline := time.Now().Add(5 * time.Second)
	for srv.gAdmitted.Value() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader(body(0)))
	if err != nil {
		t.Fatal(err)
	}
	er := decodeBody[ErrorResponse](t, resp)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow request: status %s (%s), want 429", resp.Status, er.Error)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 should carry Retry-After")
	}
	close(fake.gate)
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Errorf("admitted request %d: status %d, want 200", i, code)
		}
	}
	stats := decodeBody[StatsResponse](t, mustGet(t, ts.URL+"/stats"))
	if stats.Admission.Rejected != 1 {
		t.Errorf("rejected = %d, want 1", stats.Admission.Rejected)
	}
}

// TestServeMethodsHealthzDrain: /methods lists the registry; /healthz is
// pure liveness (200 even while draining), /readyz flips to 503 on Drain,
// and query work is refused while in-flight requests still complete
// (exercised implicitly by Shutdown elsewhere).
func TestServeMethodsHealthzDrain(t *testing.T) {
	ds, srv, ts := newTestService(t, Config{})
	methods := decodeBody[[]MethodJSON](t, mustGet(t, ts.URL+"/methods"))
	if len(methods) != len(engine.Descriptors()) {
		t.Errorf("/methods lists %d methods, registry has %d", len(methods), len(engine.Descriptors()))
	}
	for _, ep := range []string{"/healthz", "/readyz"} {
		if resp := mustGet(t, ts.URL+ep); resp.StatusCode != http.StatusOK {
			t.Errorf("%s: %s", ep, resp.Status)
		} else {
			resp.Body.Close()
		}
	}

	srv.Drain()
	if resp := mustGet(t, ts.URL+"/healthz"); resp.StatusCode != http.StatusOK {
		t.Errorf("draining healthz: %s, want 200 (liveness is not readiness)", resp.Status)
	} else {
		resp.Body.Close()
	}
	if resp := mustGet(t, ts.URL+"/readyz"); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining readyz: %s, want 503", resp.Status)
	} else {
		resp.Body.Close()
	}
	resp := postJSON(t, ts.URL+"/query", GraphToJSON(testQueries(t, ds)[0], &ds.Dict))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining query: %s, want 503", resp.Status)
	}
	resp.Body.Close()
}

// TestServeBadRequests: malformed body, empty graph, and oversized batch
// are 400s, not engine work.
func TestServeBadRequests(t *testing.T) {
	ds, _, ts := newTestService(t, Config{MaxBatch: 2})
	resp, err := http.Post(ts.URL+"/query", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: %s, want 400", resp.Status)
	}
	resp = postJSON(t, ts.URL+"/query", GraphJSON{})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty graph: %s, want 400", resp.Status)
	}
	three := make([]GraphJSON, 3)
	for i := range three {
		three[i] = GraphToJSON(testQueries(t, ds)[0], &ds.Dict)
	}
	resp = postJSON(t, ts.URL+"/batch", BatchRequest{Queries: three})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized batch: %s, want 400", resp.Status)
	}
	// An unknown label answers empty with 200 — not an error.
	resp = postJSON(t, ts.URL+"/query", GraphJSON{Vertices: []string{"no-such-label"}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("unknown label: %s, want 200", resp.Status)
	}
	qr := decodeBody[QueryResponse](t, resp)
	if len(qr.Answers) != 0 || len(qr.Candidates) != 0 {
		t.Errorf("unknown label answered %v/%v, want empty", qr.Candidates, qr.Answers)
	}
}
