package server

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/workload"
)

func resultOf(ids ...graph.ID) *core.QueryResult {
	return &core.QueryResult{Candidates: graph.NewIDSet(ids...), Answers: graph.NewIDSet(ids...)}
}

// TestCacheEvictionOrder: the LRU evicts the least recently *used* entry,
// with gets refreshing recency.
func TestCacheEvictionOrder(t *testing.T) {
	c := newCache(CacheConfig{MaxEntries: 2})
	c.put("a", resultOf(1), 0)
	c.put("b", resultOf(2), 0)
	if _, ok := c.get("a", 0); !ok { // refresh a: b is now LRU
		t.Fatal("a should be cached")
	}
	c.put("c", resultOf(3), 0) // evicts b
	if _, ok := c.get("b", 0); ok {
		t.Error("b should have been evicted as LRU")
	}
	if _, ok := c.get("a", 0); !ok {
		t.Error("a should have survived (recently used)")
	}
	if _, ok := c.get("c", 0); !ok {
		t.Error("c should be cached")
	}
	st := c.stats()
	if st.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", st.Evictions)
	}
	if st.Entries != 2 {
		t.Errorf("entries = %d, want 2", st.Entries)
	}
}

// TestCacheTTLExpiry: entries expire TTL after insertion; an expired entry
// counts as expiration + miss and re-inserting makes it live again.
func TestCacheTTLExpiry(t *testing.T) {
	c := newCache(CacheConfig{TTL: time.Minute})
	now := time.Unix(1000, 0)
	c.now = func() time.Time { return now }

	c.put("a", resultOf(1), 0)
	now = now.Add(30 * time.Second)
	if _, ok := c.get("a", 0); !ok {
		t.Fatal("a should still be live at TTL/2")
	}
	now = now.Add(31 * time.Second)
	if _, ok := c.get("a", 0); ok {
		t.Fatal("a should have expired past TTL")
	}
	st := c.stats()
	if st.Expirations != 1 || st.Entries != 0 {
		t.Errorf("expirations=%d entries=%d, want 1, 0", st.Expirations, st.Entries)
	}
	c.put("a", resultOf(2), 0)
	if _, ok := c.get("a", 0); !ok {
		t.Error("re-inserted a should be live again")
	}
	// A put refreshes the clock: the entry's lifetime restarts.
	now = now.Add(45 * time.Second)
	c.put("a", resultOf(3), 0)
	now = now.Add(45 * time.Second)
	if _, ok := c.get("a", 0); !ok {
		t.Error("refreshed a should live TTL past its last put")
	}
}

// TestCacheByteBound: the approximate byte budget evicts independently of
// the entry count.
func TestCacheByteBound(t *testing.T) {
	big := make(graph.IDSet, 1000)
	for i := range big {
		big[i] = graph.ID(i)
	}
	c := newCache(CacheConfig{MaxEntries: 100, MaxBytes: 6000})
	c.put("a", &core.QueryResult{Candidates: big, Answers: big}, 0) // ~8KB > budget
	if st := c.stats(); st.Entries != 0 || st.Evictions != 1 {
		t.Errorf("oversized entry: entries=%d evictions=%d, want 0, 1", st.Entries, st.Evictions)
	}
	c.put("b", resultOf(1), 0)
	c.put("c", resultOf(2), 0)
	if st := c.stats(); st.Entries != 2 {
		t.Errorf("small entries should fit: entries=%d, want 2", st.Entries)
	}
	if st := c.stats(); st.Bytes <= 0 || st.Bytes > 6000 {
		t.Errorf("bytes=%d, want within (0, 6000]", st.Bytes)
	}
}

// TestQueryKeyIsomorphismInvariance: permuted copies key identically,
// structurally or label-wise different graphs do not, and disconnected
// queries key on their component multiset in any component order.
func TestQueryKeyIsomorphismInvariance(t *testing.T) {
	tri := func(l0, l1, l2 graph.Label) *graph.Graph {
		g := graph.New(0)
		g.AddVertex(l0)
		g.AddVertex(l1)
		g.AddVertex(l2)
		g.MustAddEdge(0, 1)
		g.MustAddEdge(1, 2)
		g.MustAddEdge(2, 0)
		return g
	}
	g := tri(1, 2, 3)
	key, ok := QueryKey(g)
	if !ok {
		t.Fatal("QueryKey failed on a triangle")
	}
	for seed := int64(1); seed <= 8; seed++ {
		pk, ok := QueryKey(workload.Permute(g, seed))
		if !ok || pk != key {
			t.Fatalf("permuted triangle (seed %d) key mismatch", seed)
		}
	}
	if k2, _ := QueryKey(tri(1, 2, 4)); k2 == key {
		t.Error("different labels must key differently")
	}
	path := graph.New(0)
	path.AddVertex(1)
	path.AddVertex(2)
	path.AddVertex(3)
	path.MustAddEdge(0, 1)
	path.MustAddEdge(1, 2)
	if kp, _ := QueryKey(path); kp == key {
		t.Error("path and triangle must key differently")
	}

	// Disconnected: edge{1-2} + isolated vertex 3, in both layouts.
	d1 := graph.New(0)
	d1.AddVertex(1)
	d1.AddVertex(2)
	d1.AddVertex(3)
	d1.MustAddEdge(0, 1)
	d2 := graph.New(0)
	d2.AddVertex(3)
	d2.AddVertex(2)
	d2.AddVertex(1)
	d2.MustAddEdge(1, 2)
	k1, ok1 := QueryKey(d1)
	k2, ok2 := QueryKey(d2)
	if !ok1 || !ok2 || k1 != k2 {
		t.Errorf("disconnected layouts of the same graph must key identically")
	}
	if _, ok := QueryKey(graph.New(0)); ok {
		t.Error("empty graph must not key")
	}
}
