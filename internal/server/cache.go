package server

import (
	"container/list"
	"sync"
	"time"

	"repro/internal/core"
)

// Cache bounds, defaults applied by NewCached.
const (
	DefaultMaxEntries = 4096
	DefaultMaxBytes   = 64 << 20
)

// CacheConfig bounds the result cache.
type CacheConfig struct {
	// Disabled switches the cache off entirely: every query computes.
	Disabled bool
	// MaxEntries caps the number of cached results (<= 0: DefaultMaxEntries).
	MaxEntries int
	// MaxBytes caps the approximate memory held by cached results
	// (<= 0: DefaultMaxBytes).
	MaxBytes int64
	// TTL expires an entry this long after it was stored (0 = no expiry).
	TTL time.Duration
}

// CacheStats counts cache and deduplication activity since construction.
// Hits + Misses + Dedups partitions the keyed queries: served from the
// cache, computed through the engine, or joined onto an in-flight
// identical computation — so Misses is exactly the engine's compute count.
type CacheStats struct {
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Evictions   int64 `json:"evictions"`
	Expirations int64 `json:"expirations"`
	// Invalidations counts entries dropped because their dataset epoch no
	// longer matched: a mutation (add/remove) happened after the result
	// was stored, so replaying it could have served a stale answer.
	Invalidations int64 `json:"invalidations"`
	// Dedups counts queries that neither hit nor computed: they arrived
	// while an identical (isomorphic) query was in flight and shared its
	// result (single-flight).
	Dedups  int64 `json:"dedups"`
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
}

// cache is a mutex-guarded LRU of canonical query key → QueryResult with
// optional TTL and approximate byte accounting. Stored results are shared,
// never copied — callers must treat Candidates/Answers as read-only, as
// everywhere else in the pipeline.
type cache struct {
	maxEntries int
	maxBytes   int64
	ttl        time.Duration
	now        func() time.Time // injectable for TTL tests

	mu    sync.Mutex
	ll    *list.List // front = most recently used
	items map[string]*list.Element
	bytes int64

	hits, misses, evictions, expirations, invalidations int64
}

// centry is one cache slot.
type centry struct {
	key   string
	res   *core.QueryResult
	size  int64
	added time.Time
	// epoch is the engine's dataset epoch when the result was computed;
	// a lookup at any other epoch invalidates the entry instead of
	// replaying a result the mutated dataset may contradict.
	epoch uint64
}

func newCache(cfg CacheConfig) *cache {
	if cfg.MaxEntries <= 0 {
		cfg.MaxEntries = DefaultMaxEntries
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = DefaultMaxBytes
	}
	return &cache{
		maxEntries: cfg.MaxEntries,
		maxBytes:   cfg.MaxBytes,
		ttl:        cfg.TTL,
		now:        time.Now,
		ll:         list.New(),
		items:      make(map[string]*list.Element),
	}
}

// entrySize approximates the memory one entry holds: the key, the id sets
// (4 bytes per graph.ID), and a fixed overhead for the structs, slice
// headers, and list/map bookkeeping.
func entrySize(key string, res *core.QueryResult) int64 {
	const overhead = 160
	return overhead + int64(len(key)) + 4*int64(len(res.Candidates)+len(res.Answers))
}

// get returns the live entry for key at the given dataset epoch, expiring
// it if its TTL has passed and invalidating it if it was stored at a
// different epoch (the dataset mutated since; the stored answer may be
// stale). Misses are not counted here but by countMiss at the point a
// query actually computes, so single-flight joiners show up as Dedups
// only.
func (c *cache) get(key string, epoch uint64) (*core.QueryResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	e := el.Value.(*centry)
	if e.epoch != epoch {
		c.remove(el)
		c.invalidations++
		return nil, false
	}
	if c.ttl > 0 && c.now().Sub(e.added) >= c.ttl {
		c.remove(el)
		c.expirations++
		return nil, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	return e.res, true
}

// countMiss records one query computing through the engine after its
// cache lookup failed.
func (c *cache) countMiss() {
	c.mu.Lock()
	c.misses++
	c.mu.Unlock()
}

// put stores (or refreshes) key's result stamped with the dataset epoch it
// was computed at, and evicts from the LRU tail until both bounds hold
// again.
func (c *cache) put(key string, res *core.QueryResult, epoch uint64) {
	size := entrySize(key, res)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*centry)
		c.bytes += size - e.size
		e.res, e.size, e.added, e.epoch = res, size, c.now(), epoch
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&centry{key: key, res: res, size: size, added: c.now(), epoch: epoch})
		c.bytes += size
	}
	for c.ll.Len() > 0 && (c.ll.Len() > c.maxEntries || c.bytes > c.maxBytes) {
		c.remove(c.ll.Back())
		c.evictions++
	}
}

// remove unlinks an element; the caller holds mu and accounts the reason.
func (c *cache) remove(el *list.Element) {
	e := el.Value.(*centry)
	c.ll.Remove(el)
	delete(c.items, e.key)
	c.bytes -= e.size
}

// stats snapshots the counters (Dedups is tracked by CachedEngine).
func (c *cache) stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		Expirations:   c.expirations,
		Invalidations: c.invalidations,
		Entries:       c.ll.Len(),
		Bytes:         c.bytes,
	}
}
