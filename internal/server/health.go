package server

import (
	"net/http"
	"time"

	"repro/internal/obs"
)

// GET /health/score: a derived verdict over the same cells /metrics
// exposes — windowed error rate, windowed p99 against the configured SLO,
// admission-queue pressure, and drain state — each check carrying a
// human-readable reason. Always 200: the verdict is the body, not the
// status code (that is /readyz's job).
func (s *Server) handleHealthScore(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, s.healthReport(time.Now()))
}

// healthReport samples the lifetime counters into the sliding windows and
// scores them. Until a window holds two samples the lifetime ratios stand
// in, so the very first request already reports something sensible.
func (s *Server) healthReport(now time.Time) *obs.HealthReport {
	req := float64(s.cQuery.Value() + s.cBatch.Value() + s.cStream.Value() + s.cMutate.Value())
	errs := float64(s.cErrors.Value())
	s.reqWin.Observe(now, req)
	s.errWin.Observe(now, errs)
	errRate := 0.0
	if d := s.reqWin.Delta(); d > 0 {
		errRate = s.errWin.Delta() / d
	} else if req > 0 {
		errRate = errs / req
	}
	rep := obs.NewHealthReport()
	rep.Add(obs.CheckErrorRate(errRate))

	bounds, cum, total := obs.MergedHistogram(s.queryDur)
	s.latWin.Observe(now, cum, total)
	p99, ok := s.latWin.Quantile(bounds, 0.99)
	if !ok {
		p99 = obs.QuantileFromCells(bounds, cum, total, 0.99)
	}
	rep.Add(obs.CheckLatency(p99, s.cfg.SLO.Seconds()))

	waiting := max(s.gAdmitted.Value()-s.gInflight.Value(), 0)
	rep.Add(obs.CheckQueue(waiting, int64(s.cfg.MaxQueue)))

	if s.draining.Load() {
		rep.Add(obs.HealthCheck{Name: "draining", Status: obs.HealthDegraded,
			Reason: "server is draining", Value: 1})
	} else {
		rep.Add(obs.HealthCheck{Name: "draining", Status: obs.HealthOK,
			Reason: "accepting requests"})
	}
	return rep
}
