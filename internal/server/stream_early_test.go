package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"testing"

	"repro/internal/engine"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/workload"
)

// bigDataset is the early-termination fixture: ten thousand small graphs,
// so a low-selectivity query has a huge candidate set and the gap between
// "verified the first answer" and "verified everything" is four orders of
// magnitude.
func bigDataset(t *testing.T) *graph.Dataset {
	t.Helper()
	return gen.Synthetic(gen.SynthConfig{
		NumGraphs: 10000, MeanNodes: 8, MeanDensity: 0.2, NumLabels: 4, Seed: 11,
	})
}

// broadQuery extracts a two-edge query: on the 10k-graph fixture nearly
// every graph is a candidate, which is exactly the workload where lazy
// early termination pays.
func broadQuery(t *testing.T, ds *graph.Dataset) *graph.Graph {
	t.Helper()
	qs, err := workload.Generate(ds, workload.Config{NumQueries: 1, QueryEdges: 2, Seed: 12})
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	return qs[0]
}

// serveQuerier wraps an already-open querier in a Server + httptest server.
func serveQuerier(t *testing.T, q engine.Querier, cfg Config) *httptest.Server {
	t.Helper()
	srv := New(q, cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// streamCollect POSTs the query with ?stream=1 (and limit when > 0) and
// returns the id lines and the terminal done line.
func streamCollect(t *testing.T, url string, body any) (graph.IDSet, StreamLine) {
	t.Helper()
	resp := postJSON(t, url, body)
	defer resp.Body.Close()
	var ids graph.IDSet
	var done StreamLine
	sawDone := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var line StreamLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
		}
		switch {
		case line.Error != "":
			t.Fatalf("stream error: %s", line.Error)
		case line.Done:
			done, sawDone = line, true
		case line.ID != nil:
			ids = append(ids, *line.ID)
		}
	}
	if !sawDone {
		t.Fatal("stream ended without a done line")
	}
	return ids, done
}

// TestStreamFirstAnswerEarly is the headline early-termination assertion:
// on a 10k-graph dataset, ?stream=1&limit=1 must verify under 5% of the
// candidates the one-shot query verifies — the lazy pipeline stops at the
// first proven answer instead of materializing and verifying the whole
// candidate set. Checked for three methods, flat and sharded.
func TestStreamFirstAnswerEarly(t *testing.T) {
	ds := bigDataset(t)
	q := broadQuery(t, ds)
	specs := []string{"noindex", "ctindex:maxTreeSize=4,maxCycleSize=4", "gcode"}
	ctx := context.Background()

	for _, spec := range specs {
		for _, shards := range []int{0, 4} {
			name := fmt.Sprintf("%s/shards=%d", spec, shards)
			t.Run(name, func(t *testing.T) {
				var (
					eng engine.Querier
					err error
				)
				if shards == 0 {
					eng, err = engine.Open(ctx, ds, engine.WithSpec(spec))
				} else {
					eng, err = engine.OpenSharded(ctx, ds, shards, engine.WithSpec(spec))
				}
				if err != nil {
					t.Fatalf("open: %v", err)
				}
				ts := serveQuerier(t, eng, Config{Spec: spec, Shards: shards})
				gj := GraphToJSON(q, &ds.Dict)

				full := decodeBody[QueryResponse](t, postJSON(t, ts.URL+"/query", gj))
				if full.Verified < 100 {
					t.Fatalf("one-shot verified only %d candidates; fixture not broad enough", full.Verified)
				}
				if len(full.Answers) == 0 {
					t.Fatal("workload query has no answers")
				}

				ids, done := streamCollect(t, ts.URL+"/query?stream=1&limit=1", gj)
				if len(ids) != 1 {
					t.Fatalf("limit=1 stream yielded %d ids, want 1", len(ids))
				}
				if ids[0] != full.Answers[0] {
					t.Errorf("first streamed answer %d, want %d", ids[0], full.Answers[0])
				}
				if done.Verified < 1 {
					t.Fatalf("done line reports %d verified", done.Verified)
				}
				if 20*done.Verified >= int64(full.Verified) {
					t.Errorf("limit=1 verified %d of %d candidates (>= 5%%): stream is not lazy",
						done.Verified, full.Verified)
				}
			})
		}
	}
}

// TestLimitEarlyTerminationRouter is the routed leg of the limit matrix:
// the adaptive router's one-shot ?limit=N path must go through the lazy
// stream of whichever sub-engine it picks, verifying far fewer candidates
// than the full query, and still return the true first answers.
func TestLimitEarlyTerminationRouter(t *testing.T) {
	ds := gen.Synthetic(gen.SynthConfig{
		NumGraphs: 2000, MeanNodes: 8, MeanDensity: 0.2, NumLabels: 4, Seed: 13,
	})
	q := broadQuery(t, ds)
	ctx := context.Background()
	eng, err := engine.OpenAny(ctx, ds, 0, engine.WithSpec("router:methods=noindex+gcode"))
	if err != nil {
		t.Fatalf("open router: %v", err)
	}
	ts := serveQuerier(t, eng, Config{Spec: "router"})
	gj := GraphToJSON(q, &ds.Dict)

	// Limited first: as a cache miss it runs the lazy stream-collect path
	// (a hit would legitimately verify zero candidates).
	lim := decodeBody[QueryResponse](t, postJSON(t, ts.URL+"/query?limit=2", gj))
	full := decodeBody[QueryResponse](t, postJSON(t, ts.URL+"/query", gj))
	if full.Verified < 100 || len(full.Answers) < 2 {
		t.Fatalf("fixture too narrow: verified %d, answers %d", full.Verified, len(full.Answers))
	}
	if full.Cached {
		t.Fatal("unlimited query served from cache: the limited miss was stored")
	}
	if lim.Limit != 2 || len(lim.Answers) != 2 {
		t.Fatalf("limit=2 response: limit %d, %d answers", lim.Limit, len(lim.Answers))
	}
	for i := range lim.Answers {
		if lim.Answers[i] != full.Answers[i] {
			t.Fatalf("limited answers %v are not a prefix of %v", lim.Answers, full.Answers)
		}
	}
	if lim.Verified < 1 || 10*lim.Verified >= full.Verified {
		t.Errorf("routed limit=2 verified %d of %d candidates: limit did not terminate early",
			lim.Verified, full.Verified)
	}
}

// TestLimitDoesNotPoisonCache: the limited path must compose with the
// result cache in both directions — a limited miss must NOT install its
// truncated result (the later unlimited query would silently lose
// answers), while a limited query after an unlimited one must be served
// from the cached full result, truncated on the way out.
func TestLimitDoesNotPoisonCache(t *testing.T) {
	ds, _, ts := newTestService(t, Config{})
	var q *graph.Graph
	// Need a query with >= 2 answers so the truncation is observable.
	for _, cand := range testQueries(t, ds) {
		resp := postJSON(t, ts.URL+"/query?limit=1", GraphToJSON(cand, &ds.Dict))
		lim := decodeBody[QueryResponse](t, resp)
		if len(lim.Answers) == 1 {
			q = cand
			break
		}
	}
	if q == nil {
		t.Skip("no workload query with answers")
	}
	gj := GraphToJSON(q, &ds.Dict)

	// The probe above ran limit=1 as a cache miss. The unlimited query
	// must now still see the full answer set, uncached — the truncated
	// result must not have been stored.
	full := decodeBody[QueryResponse](t, postJSON(t, ts.URL+"/query", gj))
	if full.Cached {
		t.Fatal("unlimited query after a limited one was served from cache: the limited result was stored")
	}
	if len(full.Answers) < 1 {
		t.Fatal("unlimited query returned no answers")
	}

	// The unlimited result IS cached; a limited query now hits it and
	// truncates on the way out.
	lim := decodeBody[QueryResponse](t, postJSON(t, ts.URL+"/query?limit=1", gj))
	if !lim.Cached {
		t.Error("limited query after an unlimited one missed the cache")
	}
	if len(lim.Answers) != 1 || lim.Answers[0] != full.Answers[0] {
		t.Errorf("cached limited answers %v, want [%d]", lim.Answers, full.Answers[0])
	}
	if lim.Limit != 1 {
		t.Errorf("cached limited response echoes limit %d, want 1", lim.Limit)
	}

	// And the cache still serves the full set afterwards.
	again := decodeBody[QueryResponse](t, postJSON(t, ts.URL+"/query", gj))
	if !again.Cached || len(again.Answers) != len(full.Answers) {
		t.Errorf("unlimited after limited hit: cached=%v answers=%v, want cached full %v",
			again.Cached, again.Answers, full.Answers)
	}
}
