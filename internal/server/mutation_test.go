package server

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/engine"
	_ "repro/internal/engine/std"
	"repro/internal/graph"
)

// TestCacheStalenessAcrossMutation is the cache-staleness regression: a
// result cached before a mutation must never replay afterwards. Before
// epoch stamping, the canonical key ignored dataset version entirely, so
// the cache would happily serve a removed graph as an answer.
func TestCacheStalenessAcrossMutation(t *testing.T) {
	ctx := context.Background()
	ds := testDataset(t)
	eng, err := engine.Open(ctx, ds, engine.WithSpec("ggsx"))
	if err != nil {
		t.Fatal(err)
	}
	cached := NewCached(eng, CacheConfig{})
	q := testQueries(t, ds)[0]

	res, err := cached.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Answers) == 0 {
		t.Fatal("walk query must have an answer")
	}
	victim := res.Answers[0]
	victimGraph := ds.Graph(victim).Clone()

	// Warm the cache.
	if res, err = cached.Query(ctx, q); err != nil || !res.Cached {
		t.Fatalf("expected a warm hit (err %v, cached %v)", err, res.Cached)
	}

	if err := cached.RemoveGraph(ctx, victim); err != nil {
		t.Fatal(err)
	}
	res, err = cached.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached {
		t.Error("post-mutation query replayed a stale cache entry")
	}
	if res.Answers.Contains(victim) {
		t.Errorf("removed graph %d replayed from cache: %v", victim, res.Answers)
	}
	st := cached.CacheStats()
	if st.Invalidations == 0 {
		t.Error("epoch mismatch should count an invalidation")
	}

	// Re-add: the identical graph reappears under a new id, and again no
	// stale entry (which would miss it) survives.
	newID, err := cached.AddGraph(ctx, victimGraph)
	if err != nil {
		t.Fatal(err)
	}
	// Warm at the new epoch, then verify the hit carries the new answer.
	if _, err = cached.Query(ctx, q); err != nil {
		t.Fatal(err)
	}
	res, err = cached.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cached {
		t.Error("expected a warm hit at the new epoch")
	}
	if !res.Answers.Contains(newID) {
		t.Errorf("re-added graph %d absent from cached answers %v", newID, res.Answers)
	}
	if res.Answers.Contains(victim) {
		t.Errorf("tombstoned id %d resurfaced: %v", victim, res.Answers)
	}
}

// TestMutationEndpoints drives POST /graphs and DELETE /graphs/{id} end to
// end: mutations move the epoch, queries observe them immediately, new
// labels intern, and error paths return the right statuses.
func TestMutationEndpoints(t *testing.T) {
	ds, srv, ts := newTestService(t, Config{})
	q := testQueries(t, ds)[0]
	qj := GraphToJSON(q, &ds.Dict)

	resp := postJSON(t, ts.URL+"/query", qj)
	first := decodeBody[QueryResponse](t, resp)
	if len(first.Answers) == 0 {
		t.Fatal("walk query must have an answer")
	}
	victim := first.Answers[0]
	victimJSON := GraphToJSON(ds.Graph(victim), &ds.Dict)

	// Remove the known answer.
	req, _ := http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/graphs/%d", ts.URL, victim), nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	mr := decodeBody[MutationResponse](t, resp)
	if mr.ID != victim || mr.Epoch == 0 {
		t.Errorf("mutation response = %+v", mr)
	}

	resp = postJSON(t, ts.URL+"/query", qj)
	after := decodeBody[QueryResponse](t, resp)
	for _, id := range after.Answers {
		if id == victim {
			t.Errorf("removed graph %d still answered", victim)
		}
	}
	if after.Cached {
		t.Error("post-mutation answer served from a stale cache entry")
	}

	// Double delete: 404.
	req, _ = http.NewRequest(http.MethodDelete, fmt.Sprintf("%s/graphs/%d", ts.URL, victim), nil)
	if resp, err = http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("double delete status = %d, want 404", resp.StatusCode)
	}

	// Re-add the graph: it reappears under a fresh id.
	resp = postJSON(t, ts.URL+"/graphs", victimJSON)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /graphs status = %d", resp.StatusCode)
	}
	added := decodeBody[MutationResponse](t, resp)
	if added.ID == victim {
		t.Errorf("re-add reused id %d", victim)
	}
	resp = postJSON(t, ts.URL+"/query", qj)
	again := decodeBody[QueryResponse](t, resp)
	found := false
	for _, id := range again.Answers {
		if id == added.ID {
			found = true
		}
	}
	if !found {
		t.Errorf("re-added graph %d absent from answers %v", added.ID, again.Answers)
	}

	// A graph with a brand-new label interns and is immediately queryable.
	novel := GraphJSON{Vertices: []string{"novel-label", "novel-label"}, Edges: [][2]int32{{0, 1}}}
	resp = postJSON(t, ts.URL+"/graphs", novel)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /graphs with new label status = %d", resp.StatusCode)
	}
	nr := decodeBody[MutationResponse](t, resp)
	resp = postJSON(t, ts.URL+"/query", novel)
	nq := decodeBody[QueryResponse](t, resp)
	if len(nq.Answers) != 1 || nq.Answers[0] != nr.ID {
		t.Errorf("fresh-label query answers = %v, want [%d]", nq.Answers, nr.ID)
	}

	// Stats reflect the mutations.
	resp, err = http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	st := decodeBody[StatsResponse](t, resp)
	if st.Epoch == 0 || st.Removed != 1 || st.Requests.Mutate != 4 {
		t.Errorf("stats epoch=%d removed=%d mutate=%d, want >0, 1, 4", st.Epoch, st.Removed, st.Requests.Mutate)
	}
	if st.Graphs != srv.Engine().Dataset().NumAlive() {
		t.Errorf("stats graphs=%d, want live count %d", st.Graphs, srv.Engine().Dataset().NumAlive())
	}

	// Malformed bodies and ids: 400.
	resp = postJSON(t, ts.URL+"/graphs", GraphJSON{})
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty graph add status = %d, want 400", resp.StatusCode)
	}
	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/graphs/not-a-number", nil)
	if resp, err = http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad id delete status = %d, want 400", resp.StatusCode)
	}
}

// TestMutationNotImplemented: a serving layer over a non-mutable engine
// rejects mutations with 501 instead of panicking or half-applying.
func TestMutationNotImplemented(t *testing.T) {
	ds := testDataset(t)
	srv := New(&blockingQuerier{ds: ds}, Config{})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	g := graph.New(0)
	g.AddVertex(0)
	resp := postJSON(t, ts.URL+"/graphs", GraphToJSON(g, &ds.Dict))
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Errorf("add on immutable engine status = %d, want 501", resp.StatusCode)
	}
}
