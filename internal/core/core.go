// Package core defines the common contract of the six indexed subgraph
// query processing methods and the filter-and-verify query pipeline wrapped
// around them. It is the primary public surface of the reproduction: all
// methods are built, queried, and measured through this package.
//
// All methods operate in the three stages described in §2.2 of the paper:
//
//  1. index construction — features are extracted from the dataset graphs
//     and organized in a method-specific structure;
//  2. filtering — the query graph's features are matched against the index,
//     producing a candidate set of graphs possibly containing the query;
//  3. verification — each candidate is tested for subgraph isomorphism
//     against the query (VF2 by default).
//
// Filtering may produce false positives but never false negatives: the
// answer set is always a subset of the candidate set.
package core

import (
	"context"
	"errors"
	"fmt"
	"io"
	"iter"
	"sync"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/subiso"
)

// ErrNotBuilt is returned when querying a method before Build.
var ErrNotBuilt = errors.New("core: index not built")

// BuildStats reports on an index construction run.
type BuildStats struct {
	Elapsed   time.Duration
	SizeBytes int64 // estimated in-memory size of the index structure
	Features  int   // number of distinct features indexed (0 if n/a)
}

// Method is one indexed subgraph query processing method. Implementations
// are Grapes, GraphGrepSX, CT-Index, gIndex, Tree+Δ, and gCode.
//
// Build must be called exactly once before Candidates/Verify. Methods are
// safe for concurrent queries after Build unless documented otherwise
// (Tree+Δ mutates its index during query processing and serializes
// internally).
type Method interface {
	// Name returns the method's display name as used in the paper's figures.
	Name() string
	// Build constructs the index over ds. The context's deadline or
	// cancellation is honored at feature-extraction granularity: Build
	// returns ctx.Err() as soon as practical after cancellation, mirroring
	// the paper's 8-hour experiment kill switch.
	Build(ctx context.Context, ds *graph.Dataset) error
	// Candidates returns the candidate set for query q: the IDs of all
	// dataset graphs that pass the filtering stage. The result is sorted.
	Candidates(q *graph.Graph) (graph.IDSet, error)
	// SizeBytes estimates the in-memory size of the built index.
	SizeBytes() int64
}

// Verifier is implemented by methods that replace the default VF2
// verification with their own stateless test (CT-Index's tuned matcher).
type Verifier interface {
	VerifyCandidate(q *graph.Graph, id graph.ID) bool
}

// Planner is implemented by methods whose verification depends on
// query-scoped filtering state (Grapes uses the matched path locations to
// verify against individual connected components). PlanQuery subsumes
// Candidates for such methods.
type Planner interface {
	PlanQuery(q *graph.Graph) (QueryPlan, error)
}

// QueryPlan carries one query's filtering outcome plus the state needed to
// verify its candidates. It is the pipeline's uniform execution unit: every
// method — whether it implements Planner, Verifier, or only the base Method
// contract — is adapted into a QueryPlan by NewPlan, and the Processor only
// ever executes plans.
type QueryPlan interface {
	// Candidates returns the sorted candidate set.
	Candidates() graph.IDSet
	// Verify tests the query against candidate id. The pipeline may call
	// Verify concurrently for distinct ids when Processor.VerifyWorkers > 1;
	// implementations must tolerate that (methods that mutate shared state
	// serialize internally).
	Verify(id graph.ID) bool
}

// genericPlan adapts a method without its own Planner into a QueryPlan: a
// candidate set — materialized, or produced lazily in chunks when the
// method implements CandidateChunker — plus a stateless per-candidate
// verification function.
type genericPlan struct {
	cands  graph.IDSet
	chunks iter.Seq[graph.IDSet]
	verify func(id graph.ID) bool
}

func (p *genericPlan) Candidates() graph.IDSet {
	if p.cands == nil && p.chunks != nil {
		// Materialize once for one-shot consumers; streamed consumers pull
		// Chunks() and never pay this.
		p.cands = graph.IDSet{}
		for chunk := range p.chunks {
			p.cands = append(p.cands, chunk...)
		}
	}
	return p.cands
}

func (p *genericPlan) Verify(id graph.ID) bool { return p.verify(id) }

func (p *genericPlan) Chunks() iter.Seq[graph.IDSet] {
	if p.chunks != nil {
		return p.chunks
	}
	return func(yield func(graph.IDSet) bool) {
		if len(p.cands) > 0 {
			yield(p.cands)
		}
	}
}

// NewPlan adapts any method into a QueryPlan for one query, regardless of
// which optional interfaces it implements: a Planner supplies its own plan
// (filtering state reused during verification); a Verifier pairs its
// candidate set with its tuned matcher; plain methods fall back to VF2
// against whole dataset graphs. The context bounds the fallback VF2 runs.
func NewPlan(ctx context.Context, m Method, ds *graph.Dataset, q *graph.Graph) (QueryPlan, error) {
	if planner, ok := m.(Planner); ok {
		return planner.PlanQuery(q)
	}
	var cands graph.IDSet
	var chunks iter.Seq[graph.IDSet]
	if chunker, ok := m.(CandidateChunker); ok {
		var err error
		if chunks, err = chunker.CandidateChunks(q); err != nil {
			return nil, err
		}
	} else {
		var err error
		if cands, err = m.Candidates(q); err != nil {
			return nil, err
		}
	}
	if verifier, ok := m.(Verifier); ok {
		return &genericPlan{cands: cands, chunks: chunks, verify: func(id graph.ID) bool {
			return verifier.VerifyCandidate(q, id)
		}}, nil
	}
	for _, id := range cands {
		// Tombstoned candidates are legal (a stale posting the liveness
		// filter drops before verification); an ID past the dataset's
		// slots means the index was built over a different dataset. Chunked
		// producers are validated lazily instead: the liveness filter drops
		// out-of-range IDs and Verify treats them as non-matches.
		if int(id) < 0 || int(id) >= ds.Len() {
			return nil, fmt.Errorf("core: candidate %d not in dataset", id)
		}
	}
	return &genericPlan{cands: cands, chunks: chunks, verify: func(id graph.ID) bool {
		g := ds.Graph(id)
		if g == nil {
			return false
		}
		m := subiso.NewMatcher(q, g, subiso.Options{Ctx: ctx})
		return m.Run(nil)
	}}, nil
}

// IncrementalIndexer is implemented by methods that can maintain a built
// index under dataset mutation without a full rebuild: AddGraphToIndex
// folds one graph's features in, RemoveGraphFromIndex drops one graph's
// postings. Methods that do not implement it fall back to a rebuild of the
// whole index when the engine applies a mutation; removal additionally
// never *requires* index maintenance at all, because the query pipeline
// filters every candidate set against the dataset's tombstones.
//
// Both calls run under the owning engine's write lock, never concurrently
// with queries, so implementations need no internal synchronization beyond
// what their query path already has.
type IncrementalIndexer interface {
	// AddGraphToIndex folds g — already added to the dataset the index was
	// built over, carrying its assigned ID — into the index.
	AddGraphToIndex(g *graph.Graph) error
	// RemoveGraphFromIndex drops graph id's postings from the index. It is
	// an optimization over tombstone filtering (smaller candidate sets,
	// reclaimed memory), not a correctness requirement.
	RemoveGraphFromIndex(id graph.ID) error
}

// Persistable is implemented by methods whose built index can be saved to
// and restored from a byte stream, so an expensive build can be paid once.
// LoadIndex must be given the same dataset the index was built over (the
// index stores graph IDs and, for some methods, vertex IDs into it);
// implementations validate what they can and reject obvious mismatches.
type Persistable interface {
	SaveIndex(w io.Writer) error
	LoadIndex(r io.Reader, ds *graph.Dataset) error
}

// QueryResult captures one query's outcome and per-stage accounting.
type QueryResult struct {
	Candidates graph.IDSet
	Answers    graph.IDSet
	FilterTime time.Duration
	VerifyTime time.Duration
	// Method names the concrete method that served the query (the method's
	// display name, e.g. "Grapes"). Layers that choose between methods —
	// the adaptive router — or replay stored results — the result cache —
	// preserve it, so routing decisions stay observable end to end.
	Method string
	// Cached marks a result served from a serving-layer result cache
	// instead of computed by the pipeline. FilterTime then holds the
	// canonical-key computation plus lookup latency and VerifyTime is
	// zero, so TotalTime() remains the query's real served latency.
	Cached bool
	// Produced counts candidate IDs the producer stage emitted (before the
	// liveness filter — len(Candidates) is the count after it); Verified
	// counts verifier invocations. For a one-shot query Verified equals
	// len(Candidates); a limited or early-terminated stream verifies fewer,
	// which is what the early-termination tests assert through these
	// counters.
	Produced int
	Verified int
}

// FalsePositiveRatio returns (|C| - |A|) / |C| for this query, the
// per-query term of equation (3) of the paper. Queries with an empty
// candidate set contribute 0.
func (r *QueryResult) FalsePositiveRatio() float64 {
	if len(r.Candidates) == 0 {
		return 0
	}
	return float64(len(r.Candidates)-len(r.Answers)) / float64(len(r.Candidates))
}

// TotalTime returns filtering plus verification time.
func (r *QueryResult) TotalTime() time.Duration { return r.FilterTime + r.VerifyTime }

// Processor runs the filter-and-verify pipeline of a built Method over a
// dataset. Every query follows the same plan-based path: NewPlan adapts the
// method into a QueryPlan, then the plan's candidates are verified — either
// serially or, when VerifyWorkers > 1, by a context-aware worker pool that
// preserves the sorted answer order.
type Processor struct {
	Method Method
	DS     *graph.Dataset
	// VerifyWorkers is the per-query verification parallelism. Values <= 1
	// verify serially (the paper's measurement mode); larger values fan
	// candidates out across a worker pool.
	VerifyWorkers int
}

// NewProcessor returns a Processor for a built method over ds.
func NewProcessor(m Method, ds *graph.Dataset) *Processor {
	return &Processor{Method: m, DS: ds}
}

// Query processes one subgraph query end to end.
func (p *Processor) Query(q *graph.Graph) (*QueryResult, error) {
	return p.QueryCtx(context.Background(), q)
}

// QueryCtx is Query with cancellation applied to both stages. When the
// context carries an active obs span, each pipeline stage records a child
// span with its duration and candidate/verified counts — the per-query
// trace the slow-query log and gquery -trace render.
func (p *Processor) QueryCtx(ctx context.Context, q *graph.Graph) (*QueryResult, error) {
	res := &QueryResult{Method: p.Method.Name()}
	t0 := time.Now()
	cctx, csp := obs.StartSpan(ctx, "candidate-chunk")
	plan, err := NewPlan(cctx, p.Method, p.DS, q)
	if err != nil {
		csp.End()
		return nil, fmt.Errorf("core: filtering with %s: %w", p.Method.Name(), err)
	}
	csp.End()
	// Tombstoned graphs never surface: stale postings left behind by a
	// remove-without-rebuild are dropped here, before verification. The
	// one-shot path drains the same producer → liveness-filter composition
	// the streamed path pulls lazily, so the two can never disagree on
	// what reaches the verifier.
	_, fsp := obs.StartSpan(ctx, "tombstone-filter")
	var stats PipelineStats
	cur := NewCursor(p.DS, plan, StreamOptions{Stats: &stats})
	var cands graph.IDSet
	for {
		id, ok := cur.Next()
		if !ok {
			break
		}
		cands = append(cands, id)
	}
	res.Candidates = cands
	res.Produced = int(stats.Produced.Load())
	res.Verified = len(cands)
	res.FilterTime = time.Since(t0)
	fsp.Attr("produced", res.Produced)
	fsp.Attr("live", len(cands))
	fsp.End()

	t1 := time.Now()
	vctx, vsp := obs.StartSpan(ctx, "verify")
	answers, err := VerifyCandidates(vctx, plan, res.Candidates, p.VerifyWorkers)
	if err != nil {
		vsp.Cancel()
		return nil, err
	}
	res.Answers = answers
	res.VerifyTime = time.Since(t1)
	vsp.Attr("verified", res.Verified)
	vsp.Attr("answers", len(answers))
	vsp.End()
	return res, nil
}

// VerifyPlan runs a plan's verification stage over its own candidate set
// and returns the sorted answer set. Callers that filtered the candidates
// first (the pipeline's tombstone drop) use VerifyCandidates directly.
func VerifyPlan(ctx context.Context, plan QueryPlan, workers int) (graph.IDSet, error) {
	return VerifyCandidates(ctx, plan, plan.Candidates(), workers)
}

// VerifyCandidates verifies cands (a subset of the plan's candidates)
// and returns the sorted answer set. With workers <= 1 candidates are
// verified in order with a cancellation check between candidates;
// otherwise they are fanned out across a worker pool and the answers
// reassembled in candidate order.
func VerifyCandidates(ctx context.Context, plan QueryPlan, cands graph.IDSet, workers int) (graph.IDSet, error) {
	if workers > len(cands) {
		workers = len(cands)
	}
	if workers <= 1 {
		var out graph.IDSet
		for _, id := range cands {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if plan.Verify(id) {
				out = append(out, id)
			}
		}
		return out, nil
	}

	matched := make([]bool, len(cands))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				matched[i] = plan.Verify(cands[i])
			}
		}()
	}
feed:
	for i := range cands {
		select {
		case next <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	// Any cancellation voids the parallel result, even one arriving after
	// the last candidate was handed out: ctx-aware verifiers (the VF2
	// fallback) abort early with a false negative when cancelled, so a
	// result that overlapped a cancellation cannot be trusted.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var out graph.IDSet
	for i, ok := range matched {
		if ok {
			out = append(out, cands[i])
		}
	}
	return out, nil
}

// StreamAnswers processes one query against a built method and yields
// matching graph IDs as verification confirms them, in candidate (ascending
// ID) order, without materializing the answer or candidate sets: candidates
// are pulled through the lazy producer → liveness filter → verifier
// composition (see pipeline.go), so the first answer is yielded after one
// verification. A filtering failure or context cancellation is yielded once
// as a non-nil error, then the sequence ends.
func StreamAnswers(ctx context.Context, m Method, ds *graph.Dataset, q *graph.Graph) iter.Seq2[graph.ID, error] {
	return StreamAnswersOpts(ctx, m, ds, q, StreamOptions{})
}

// BruteForceAnswers returns the exact answer set by running VF2 against
// every graph in the dataset — the "naive method" of the paper's
// introduction, used as ground truth in tests and as the no-index baseline
// in benchmarks.
func BruteForceAnswers(ctx context.Context, ds *graph.Dataset, q *graph.Graph) (graph.IDSet, error) {
	var out graph.IDSet
	for _, g := range ds.Graphs {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if !ds.Alive(g.ID()) {
			continue
		}
		m := subiso.NewMatcher(q, g, subiso.Options{Ctx: ctx})
		if m.Run(nil) {
			out = append(out, g.ID())
		}
	}
	return out, nil
}

// BuildTimed runs Build and returns its stats.
func BuildTimed(ctx context.Context, m Method, ds *graph.Dataset) (BuildStats, error) {
	t0 := time.Now()
	err := m.Build(ctx, ds)
	st := BuildStats{Elapsed: time.Since(t0)}
	if err != nil {
		return st, err
	}
	st.SizeBytes = m.SizeBytes()
	return st, nil
}
