package core_test

import (
	"context"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/ggsx"
	"repro/internal/graph"
	"repro/internal/treedelta"
)

func TestQueryBatchMatchesSequential(t *testing.T) {
	ds := testDataset(t)
	queries := generateQueries(t, ds, 5, []int{3, 6})
	m := ggsx.New(ggsx.Options{})
	if err := m.Build(context.Background(), ds); err != nil {
		t.Fatal(err)
	}
	proc := core.NewProcessor(m, ds)
	batch, err := proc.QueryBatch(context.Background(), queries, core.BatchOptions{Workers: 4})
	if err != nil {
		t.Fatalf("QueryBatch: %v", err)
	}
	if len(batch) != len(queries) {
		t.Fatalf("batch size %d, want %d", len(batch), len(queries))
	}
	for i, q := range queries {
		seq, err := proc.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if batch[i].Err != nil {
			t.Fatalf("batch query %d: %v", i, batch[i].Err)
		}
		if !batch[i].Result.Answers.Equal(seq.Answers) {
			t.Errorf("query %d: batch answers diverge from sequential", i)
		}
	}
}

func TestQueryBatchMutatingMethodIsSafe(t *testing.T) {
	// Tree+Δ mutates its index during queries; the batch must stay correct
	// under the race detector.
	ds := testDataset(t)
	queries := generateQueries(t, ds, 8, []int{4, 6})
	m := treedelta.New(treedelta.Options{MaxFeatureSize: 5, QuerySupportToAdd: 0.3})
	if err := m.Build(context.Background(), ds); err != nil {
		t.Fatal(err)
	}
	proc := core.NewProcessor(m, ds)
	batch, err := proc.QueryBatch(context.Background(), queries, core.BatchOptions{Workers: 6})
	if err != nil {
		t.Fatalf("QueryBatch: %v", err)
	}
	for i, br := range batch {
		truth, err := core.BruteForceAnswers(context.Background(), ds, queries[i])
		if err != nil {
			t.Fatal(err)
		}
		if !br.Result.Answers.Equal(truth) {
			t.Errorf("query %d: wrong answers under concurrent Δ admission", i)
		}
	}
}

func TestQueryBatchCancellation(t *testing.T) {
	ds := testDataset(t)
	queries := generateQueries(t, ds, 10, []int{4})
	m := ggsx.New(ggsx.Options{})
	if err := m.Build(context.Background(), ds); err != nil {
		t.Fatal(err)
	}
	proc := core.NewProcessor(m, ds)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := proc.QueryBatch(ctx, queries, core.BatchOptions{Workers: 2})
	if err == nil {
		t.Fatalf("cancelled batch should error")
	}
}

// TestQueryBatchStopsIssuingAfterCancel: a cancellation mid-batch must
// stop per-item queries from being issued — workers refuse items already
// handed to them and the feeder stops — instead of draining the whole
// slice through filter stages that are not ctx-aware.
func TestQueryBatchStopsIssuingAfterCancel(t *testing.T) {
	const n = 200
	queries := make([]*graph.Graph, n)
	for i := range queries {
		g := graph.New(graph.ID(i))
		g.AddVertex(1)
		queries[i] = g
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var issued atomic.Int64
	query := func(ctx context.Context, q *graph.Graph) (*core.QueryResult, error) {
		if issued.Add(1) == 1 {
			cancel() // cancel from inside the very first query
		}
		return &core.QueryResult{}, nil
	}
	results, err := core.QueryBatchFunc(ctx, queries, core.BatchOptions{Workers: 4}, query)
	if err == nil {
		t.Fatal("cancelled batch should return the context error")
	}
	// At most the queries already handed out before the cancellation can
	// have been issued: the first plus up to one in-flight per worker.
	if got := issued.Load(); got > 8 {
		t.Errorf("cancelled batch issued %d queries, want <= 8 (not the whole slice)", got)
	}
	canceled := 0
	for _, br := range results {
		if br.Err != nil {
			canceled++
		}
	}
	if canceled < n-8 {
		t.Errorf("only %d/%d entries carry the cancellation error", canceled, n)
	}
}

func TestQueryBatchEmpty(t *testing.T) {
	ds := testDataset(t)
	m := ggsx.New(ggsx.Options{})
	if err := m.Build(context.Background(), ds); err != nil {
		t.Fatal(err)
	}
	proc := core.NewProcessor(m, ds)
	out, err := proc.QueryBatch(context.Background(), nil, core.BatchOptions{})
	if err != nil || len(out) != 0 {
		t.Fatalf("empty batch: %v %v", out, err)
	}
}

func TestSummarize(t *testing.T) {
	ds := testDataset(t)
	queries := generateQueries(t, ds, 4, []int{4})
	m := ggsx.New(ggsx.Options{})
	if err := m.Build(context.Background(), ds); err != nil {
		t.Fatal(err)
	}
	proc := core.NewProcessor(m, ds)
	batch, err := proc.QueryBatch(context.Background(), queries, core.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := core.Summarize(batch)
	if s.Queries != len(queries) {
		t.Errorf("Queries = %d", s.Queries)
	}
	if s.AvgAnswers <= 0 || s.AvgCandidates < s.AvgAnswers {
		t.Errorf("summary inconsistent: %+v", s)
	}
	if s.FPRatio < 0 || s.FPRatio > 1 {
		t.Errorf("FP = %v", s.FPRatio)
	}
	if empty := core.Summarize(nil); empty.Queries != 0 {
		t.Errorf("empty summary: %+v", empty)
	}
}
