package core_test

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/ggsx"
	"repro/internal/treedelta"
)

func TestQueryBatchMatchesSequential(t *testing.T) {
	ds := testDataset(t)
	queries := generateQueries(t, ds, 5, []int{3, 6})
	m := ggsx.New(ggsx.Options{})
	if err := m.Build(context.Background(), ds); err != nil {
		t.Fatal(err)
	}
	proc := core.NewProcessor(m, ds)
	batch, err := proc.QueryBatch(context.Background(), queries, core.BatchOptions{Workers: 4})
	if err != nil {
		t.Fatalf("QueryBatch: %v", err)
	}
	if len(batch) != len(queries) {
		t.Fatalf("batch size %d, want %d", len(batch), len(queries))
	}
	for i, q := range queries {
		seq, err := proc.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if batch[i].Err != nil {
			t.Fatalf("batch query %d: %v", i, batch[i].Err)
		}
		if !batch[i].Result.Answers.Equal(seq.Answers) {
			t.Errorf("query %d: batch answers diverge from sequential", i)
		}
	}
}

func TestQueryBatchMutatingMethodIsSafe(t *testing.T) {
	// Tree+Δ mutates its index during queries; the batch must stay correct
	// under the race detector.
	ds := testDataset(t)
	queries := generateQueries(t, ds, 8, []int{4, 6})
	m := treedelta.New(treedelta.Options{MaxFeatureSize: 5, QuerySupportToAdd: 0.3})
	if err := m.Build(context.Background(), ds); err != nil {
		t.Fatal(err)
	}
	proc := core.NewProcessor(m, ds)
	batch, err := proc.QueryBatch(context.Background(), queries, core.BatchOptions{Workers: 6})
	if err != nil {
		t.Fatalf("QueryBatch: %v", err)
	}
	for i, br := range batch {
		truth, err := core.BruteForceAnswers(context.Background(), ds, queries[i])
		if err != nil {
			t.Fatal(err)
		}
		if !br.Result.Answers.Equal(truth) {
			t.Errorf("query %d: wrong answers under concurrent Δ admission", i)
		}
	}
}

func TestQueryBatchCancellation(t *testing.T) {
	ds := testDataset(t)
	queries := generateQueries(t, ds, 10, []int{4})
	m := ggsx.New(ggsx.Options{})
	if err := m.Build(context.Background(), ds); err != nil {
		t.Fatal(err)
	}
	proc := core.NewProcessor(m, ds)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := proc.QueryBatch(ctx, queries, core.BatchOptions{Workers: 2})
	if err == nil {
		t.Fatalf("cancelled batch should error")
	}
}

func TestQueryBatchEmpty(t *testing.T) {
	ds := testDataset(t)
	m := ggsx.New(ggsx.Options{})
	if err := m.Build(context.Background(), ds); err != nil {
		t.Fatal(err)
	}
	proc := core.NewProcessor(m, ds)
	out, err := proc.QueryBatch(context.Background(), nil, core.BatchOptions{})
	if err != nil || len(out) != 0 {
		t.Fatalf("empty batch: %v %v", out, err)
	}
}

func TestSummarize(t *testing.T) {
	ds := testDataset(t)
	queries := generateQueries(t, ds, 4, []int{4})
	m := ggsx.New(ggsx.Options{})
	if err := m.Build(context.Background(), ds); err != nil {
		t.Fatal(err)
	}
	proc := core.NewProcessor(m, ds)
	batch, err := proc.QueryBatch(context.Background(), queries, core.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := core.Summarize(batch)
	if s.Queries != len(queries) {
		t.Errorf("Queries = %d", s.Queries)
	}
	if s.AvgAnswers <= 0 || s.AvgCandidates < s.AvgAnswers {
		t.Errorf("summary inconsistent: %+v", s)
	}
	if s.FPRatio < 0 || s.FPRatio > 1 {
		t.Errorf("FP = %v", s.FPRatio)
	}
	if empty := core.Summarize(nil); empty.Queries != 0 {
		t.Errorf("empty summary: %+v", empty)
	}
}
