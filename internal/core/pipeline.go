package core

import (
	"context"
	"fmt"
	"iter"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
)

// This file is the lazy side of the filter-and-verify pipeline: the query
// path decomposed into composable iterator stages —
//
//	candidate producer → liveness filter → verifier → consumer
//
// The producer emits candidate IDs in ascending order, in chunks, without
// materializing the full candidate set (methods that implement
// CandidateChunker stream their posting-list intersections; the rest fall
// back to one chunk holding Candidates()). The liveness filter drops
// tombstoned slots as IDs flow past. The verifier — serial or a bounded
// worker pool — proves candidates and emits answers in candidate order as
// each proof lands, so the first answer costs one verification, not a full
// candidate scan, and a limit-N consumer does only the work it keeps.

// CandidateChunker is implemented by methods that can emit their candidate
// set lazily, as a sequence of sorted, non-overlapping, strictly ascending
// chunks whose concatenation equals Candidates(q). Query-level work (feature
// extraction, posting lookups) runs eagerly in CandidateChunks; the per-graph
// scan or intersection is deferred into the sequence. The returned sequence
// must be re-iterable and must do no index reads after its yield returns
// false, so an early-terminated stream can be torn down without
// synchronization.
type CandidateChunker interface {
	CandidateChunks(q *graph.Graph) (iter.Seq[graph.IDSet], error)
}

// ChunkedPlan is implemented by query plans that expose their candidate set
// as a lazy chunk sequence under the same contract as CandidateChunker.
type ChunkedPlan interface {
	QueryPlan
	Chunks() iter.Seq[graph.IDSet]
}

// PlanChunks adapts any plan into the producer stage's chunk sequence: a
// ChunkedPlan streams its chunks, everything else degrades to a single
// materialized chunk.
func PlanChunks(plan QueryPlan) iter.Seq[graph.IDSet] {
	if cp, ok := plan.(ChunkedPlan); ok {
		return cp.Chunks()
	}
	return func(yield func(graph.IDSet) bool) {
		if c := plan.Candidates(); len(c) > 0 {
			yield(c)
		}
	}
}

// PipelineStats counts one query's flow through the pipeline stages. Fields
// are atomics because the verifier stage may run in a worker pool; a stats
// struct may also be shared across the per-shard legs of a merged stream.
type PipelineStats struct {
	// Produced counts candidate IDs emitted by the producer stage (after
	// any resume-skip, before the liveness filter).
	Produced atomic.Int64
	// Live counts candidates that survived the tombstone/liveness filter.
	Live atomic.Int64
	// Verified counts verifier invocations — the pipeline's unit of real
	// work, and what early termination is measured by.
	Verified atomic.Int64
}

// StreamOptions tunes a streamed query.
type StreamOptions struct {
	// VerifyWorkers bounds the verifier stage's parallelism; <= 1 verifies
	// serially. The stage emits in candidate order either way, with
	// read-ahead bounded at ~2×workers, so a limit-1 stream never proves
	// more than a small window past its answer.
	VerifyWorkers int
	// SkipTo makes the producer emit only IDs >= SkipTo — the resume
	// primitive behind the cluster's per-shard frontiers. Zero emits all.
	SkipTo graph.ID
	// Stats, when non-nil, receives the pipeline counters for this query.
	Stats *PipelineStats
}

// Cursor is a pull-side view of the producer and liveness-filter stages:
// Next returns live candidate IDs one at a time, in ascending order,
// pulling chunks from the plan only as they are consumed. Callers that
// interleave locking with consumption (the engines' chunked-locking
// streams) drive a Cursor directly; Stop releases the underlying chunk
// sequence and is idempotent. A Cursor is not safe for concurrent use.
type Cursor struct {
	ds      *graph.Dataset
	stats   *PipelineStats
	skipTo  graph.ID
	next    func() (graph.IDSet, bool)
	stop    func()
	chunk   graph.IDSet
	pos     int
	stopped bool
}

// NewCursor composes the producer and liveness stages over a plan. The
// caller must Stop the cursor when done (Next reaching the end stops it
// implicitly).
func NewCursor(ds *graph.Dataset, plan QueryPlan, opts StreamOptions) *Cursor {
	stats := opts.Stats
	if stats == nil {
		stats = &PipelineStats{}
	}
	next, stop := iter.Pull(PlanChunks(plan))
	return &Cursor{ds: ds, stats: stats, skipTo: opts.SkipTo, next: next, stop: stop}
}

// Next returns the next live candidate ID, or false when the producer is
// exhausted.
func (c *Cursor) Next() (graph.ID, bool) {
	if c.stopped {
		return 0, false
	}
	for {
		for c.pos < len(c.chunk) {
			id := c.chunk[c.pos]
			c.pos++
			if id < c.skipTo {
				continue
			}
			c.stats.Produced.Add(1)
			if !c.ds.Alive(id) {
				continue
			}
			c.stats.Live.Add(1)
			return id, true
		}
		chunk, ok := c.next()
		if !ok {
			c.Stop()
			return 0, false
		}
		// A whole chunk below the resume frontier is skipped without
		// touching its IDs (chunks are ascending).
		if n := len(chunk); n > 0 && chunk[n-1] < c.skipTo {
			continue
		}
		c.chunk, c.pos = chunk, 0
	}
}

// Stop releases the chunk sequence. Safe to call more than once.
func (c *Cursor) Stop() {
	if c.stopped {
		return
	}
	c.stopped = true
	c.chunk = nil
	c.stop()
}

// StreamPlan runs the verifier stage over a plan's lazy candidate stream and
// yields answers in candidate (ascending ID) order as they are proven. A
// context cancellation is yielded once as a non-nil error, then the sequence
// ends. The caller owns any locking; every stage — chunk pulls, liveness
// checks, verification — runs within the iteration.
func StreamPlan(ctx context.Context, ds *graph.Dataset, plan QueryPlan, opts StreamOptions) iter.Seq2[graph.ID, error] {
	stats := opts.Stats
	if stats == nil {
		stats = &PipelineStats{}
	}
	opts.Stats = stats
	if opts.VerifyWorkers > 1 {
		return streamParallel(ctx, ds, plan, opts)
	}
	return func(yield func(graph.ID, error) bool) {
		cur := NewCursor(ds, plan, opts)
		defer cur.Stop()
		for {
			id, ok := cur.Next()
			if !ok {
				return
			}
			if err := ctx.Err(); err != nil {
				yield(0, err)
				return
			}
			stats.Verified.Add(1)
			if plan.Verify(id) && !yield(id, nil) {
				return
			}
		}
	}
}

// verifyJob carries one candidate through the parallel verifier: the
// emitter receives jobs in feed order and blocks on each job's res channel,
// so answers surface in candidate order no matter which worker finishes
// first.
type verifyJob struct {
	id  graph.ID
	res chan bool
}

// streamParallel is the verifier stage as a bounded worker pool with ordered
// emission. A feeder goroutine pulls the cursor and enqueues each candidate
// into an order channel (buffered to the worker count — this is the
// read-ahead bound) and then the jobs channel; workers verify and post to
// the per-job result channel; the emitter walks the order channel. Teardown
// closes stop, which unblocks the feeder wherever it is parked, and waits
// for every goroutine before returning — no leaks on early break or
// cancellation.
func streamParallel(ctx context.Context, ds *graph.Dataset, plan QueryPlan, opts StreamOptions) iter.Seq2[graph.ID, error] {
	return func(yield func(graph.ID, error) bool) {
		workers := opts.VerifyWorkers
		stats := opts.Stats
		stop := make(chan struct{})
		jobs := make(chan verifyJob)
		order := make(chan verifyJob, workers)
		var wg sync.WaitGroup

		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for j := range jobs {
					stats.Verified.Add(1)
					j.res <- plan.Verify(j.id)
				}
			}()
		}

		wg.Add(1)
		go func() {
			defer wg.Done()
			defer close(jobs)
			defer close(order)
			cur := NewCursor(ds, plan, opts)
			defer cur.Stop()
			for {
				id, ok := cur.Next()
				if !ok {
					return
				}
				j := verifyJob{id: id, res: make(chan bool, 1)}
				select {
				case order <- j:
				case <-stop:
					return
				}
				select {
				case jobs <- j:
				case <-stop:
					return
				}
			}
		}()

		defer wg.Wait()
		defer close(stop)
		for j := range order {
			select {
			case matched := <-j.res:
				if matched && !yield(j.id, nil) {
					return
				}
			case <-ctx.Done():
				yield(0, ctx.Err())
				return
			}
		}
		if err := ctx.Err(); err != nil {
			yield(0, err)
		}
	}
}

// StreamAnswersOpts is StreamAnswers with explicit pipeline options: it
// plans the query, then streams answers through the lazy producer →
// liveness filter → verifier composition.
func StreamAnswersOpts(ctx context.Context, m Method, ds *graph.Dataset, q *graph.Graph, opts StreamOptions) iter.Seq2[graph.ID, error] {
	return func(yield func(graph.ID, error) bool) {
		plan, err := NewPlan(ctx, m, ds, q)
		if err != nil {
			yield(0, fmt.Errorf("core: filtering with %s: %w", m.Name(), err))
			return
		}
		for id, err := range StreamPlan(ctx, ds, plan, opts) {
			if !yield(id, err) {
				return
			}
		}
	}
}
