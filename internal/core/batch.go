package core

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/graph"
)

// BatchOptions configures QueryBatch.
type BatchOptions struct {
	// Workers is the query-level parallelism (default: GOMAXPROCS).
	// Methods whose query processing mutates the index (Tree+Δ) serialize
	// internally; batching remains correct, only less parallel.
	Workers int
}

// BatchResult pairs one query's result with its position in the batch.
type BatchResult struct {
	Query  int
	Result *QueryResult
	Err    error
}

// QueryBatch processes a workload of queries concurrently and returns the
// per-query results in input order. The first error is returned after all
// workers stop; individual failures are also available per entry.
func (p *Processor) QueryBatch(ctx context.Context, queries []*graph.Graph, opts BatchOptions) ([]BatchResult, error) {
	return QueryBatchFunc(ctx, queries, opts, p.QueryCtx)
}

// QueryBatchFunc is the batch runner behind Processor.QueryBatch, shared
// with the sharded engine: it drives queries through the given query
// function on a worker pool, returning per-query results in input order. An
// individual query's failure is recorded on its entry and the rest of the
// batch still runs, with the first error returned after all workers stop;
// a context cancellation stops issuing queries — the feeder stops handing
// out work and workers refuse items already handed to them — marking every
// unprocessed entry with ctx.Err() instead of draining the slice.
func QueryBatchFunc(ctx context.Context, queries []*graph.Graph, opts BatchOptions,
	query func(context.Context, *graph.Graph) (*QueryResult, error)) ([]BatchResult, error) {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(queries) {
		workers = len(queries)
	}
	results := make([]BatchResult, len(queries))
	if len(queries) == 0 {
		return results, nil
	}
	var wg sync.WaitGroup
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				// A query handed out just before cancellation must not
				// still run: many filter stages are not ctx-aware, so
				// issuing it would pay its full cost.
				if err := ctx.Err(); err != nil {
					results[i] = BatchResult{Query: i, Err: err}
					continue
				}
				res, err := query(ctx, queries[i])
				results[i] = BatchResult{Query: i, Result: res, Err: err}
			}
		}()
	}
	canceled := func(from int) ([]BatchResult, error) {
		close(next)
		wg.Wait()
		for j := from; j < len(queries); j++ {
			if results[j].Result == nil && results[j].Err == nil {
				results[j] = BatchResult{Query: j, Err: ctx.Err()}
			}
		}
		return results, ctx.Err()
	}
	for i := range queries {
		// Check before the select too: when both cases are ready the
		// select picks randomly, which would keep feeding a canceled
		// batch roughly every other query.
		if ctx.Err() != nil {
			return canceled(i)
		}
		select {
		case next <- i:
		case <-ctx.Done():
			return canceled(i)
		}
	}
	close(next)
	wg.Wait()
	for i := range results {
		if results[i].Err != nil {
			return results, fmt.Errorf("core: query %d: %w", i, results[i].Err)
		}
	}
	return results, nil
}

// WorkloadSummary aggregates a processed batch into the workload-level
// metrics the paper reports.
type WorkloadSummary struct {
	Queries       int
	AvgQueryTime  float64 // seconds
	FPRatio       float64 // equation (3)
	AvgCandidates float64
	AvgAnswers    float64
}

// Summarize aggregates successful batch results.
func Summarize(results []BatchResult) WorkloadSummary {
	var s WorkloadSummary
	var totalTime float64
	for _, br := range results {
		if br.Err != nil || br.Result == nil {
			continue
		}
		s.Queries++
		totalTime += br.Result.TotalTime().Seconds()
		s.FPRatio += br.Result.FalsePositiveRatio()
		s.AvgCandidates += float64(len(br.Result.Candidates))
		s.AvgAnswers += float64(len(br.Result.Answers))
	}
	if s.Queries > 0 {
		n := float64(s.Queries)
		s.AvgQueryTime = totalTime / n
		s.FPRatio /= n
		s.AvgCandidates /= n
		s.AvgAnswers /= n
	}
	return s
}
