package core

import (
	"repro/internal/diskfmt"
	"repro/internal/graph"
)

// Storage modes for SectionPersistable methods. Heap decodes the whole
// index into memory at load, exactly like the legacy gob path; Mmap keeps
// the v2 container mapped and materializes postings, trie nodes, and codes
// lazily on first touch.
const (
	StorageHeap = "heap"
	StorageMmap = "mmap"
)

// SectionPersistable is implemented by methods whose index round-trips
// through the repro-index v2 container (package diskfmt): SaveIndexV2
// lays the index out as checksummed sections, LoadIndexV2 restores from a
// parsed container. The engine prefers this over the legacy gob stream
// (Persistable) when both are implemented, and rewrites legacy v1 files
// as v2 on the next rebuild.
//
// LoadIndexV2 must honor the method's configured storage mode: under
// StorageHeap it decodes eagerly and must not retain the reader; under
// StorageMmap it may alias the reader's mapped sections for the life of
// the index, copying anything it materializes into the heap.
type SectionPersistable interface {
	Persistable
	SaveIndexV2(w *diskfmt.Writer) error
	LoadIndexV2(r *diskfmt.Reader, ds *graph.Dataset) error
}

// StorageSelector reports a method's configured storage mode (StorageHeap
// or StorageMmap). Methods without it are heap-only.
type StorageSelector interface {
	StorageMode() string
}

// Warmable is implemented by indexes that can pre-fault their hot
// sections after a lazy open. The engine calls WarmIndex on a background
// goroutine and keeps /readyz at 503 until it returns, so load balancers
// don't route to a cold mmap-backed node. WarmIndex must be safe to run
// concurrently with queries and must be a no-op for heap-resident
// indexes.
type Warmable interface {
	WarmIndex()
}
