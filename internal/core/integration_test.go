package core_test

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/ctindex"
	"repro/internal/gcode"
	"repro/internal/gen"
	"repro/internal/ggsx"
	"repro/internal/gindex"
	"repro/internal/grapes"
	"repro/internal/graph"
	"repro/internal/treedelta"
	"repro/internal/workload"
)

// allMethods returns fresh unbuilt instances of all six methods with the
// paper's default parameters (scaled-down feature sizes where the defaults
// are impractical on micro datasets are NOT used here: defaults exercise the
// real configuration).
func allMethods() []core.Method {
	return []core.Method{
		grapes.New(grapes.Options{}),
		ggsx.New(ggsx.Options{}),
		ctindex.New(ctindex.Options{}),
		gindex.New(gindex.Options{MaxFeatureSize: 6}),
		treedelta.New(treedelta.Options{MaxFeatureSize: 6}),
		gcode.New(gcode.Options{}),
	}
}

func testDataset(t *testing.T) *graph.Dataset {
	t.Helper()
	ds := gen.Synthetic(gen.SynthConfig{
		NumGraphs:   40,
		MeanNodes:   12,
		MeanDensity: 0.2,
		NumLabels:   4,
		Seed:        1,
	})
	if err := ds.Validate(); err != nil {
		t.Fatalf("dataset invalid: %v", err)
	}
	return ds
}

// TestAllMethodsMatchBruteForce is the zero-false-negative invariant: every
// method's answer set must equal the brute-force VF2 scan, and its candidate
// set must contain the answer set.
func TestAllMethodsMatchBruteForce(t *testing.T) {
	ds := testDataset(t)
	queries := generateQueries(t, ds, 6, []int{2, 4, 8})

	ctx := context.Background()
	truth := make([]graph.IDSet, len(queries))
	for i, q := range queries {
		ans, err := core.BruteForceAnswers(ctx, ds, q)
		if err != nil {
			t.Fatalf("brute force: %v", err)
		}
		truth[i] = ans
	}

	for _, m := range allMethods() {
		m := m
		t.Run(m.Name(), func(t *testing.T) {
			if _, err := core.BuildTimed(ctx, m, ds); err != nil {
				t.Fatalf("Build: %v", err)
			}
			proc := core.NewProcessor(m, ds)
			for i, q := range queries {
				res, err := proc.Query(q)
				if err != nil {
					t.Fatalf("query %d: %v", i, err)
				}
				if !res.Answers.Equal(truth[i]) {
					t.Errorf("query %d (%d edges): answers %v, want %v (candidates %v)",
						i, q.NumEdges(), res.Answers, truth[i], res.Candidates)
				}
				for _, id := range truth[i] {
					if !res.Candidates.Contains(id) {
						t.Errorf("query %d: false negative in filtering: graph %d", i, id)
					}
				}
				if fp := res.FalsePositiveRatio(); fp < 0 || fp > 1 {
					t.Errorf("query %d: FP ratio %v out of range", i, fp)
				}
			}
		})
	}
}

func generateQueries(t *testing.T, ds *graph.Dataset, perSize int, sizes []int) []*graph.Graph {
	t.Helper()
	var out []*graph.Graph
	for _, sz := range sizes {
		qs, err := workload.Generate(ds, workload.Config{NumQueries: perSize, QueryEdges: sz, Seed: int64(100 + sz)})
		if err != nil {
			t.Fatalf("workload size %d: %v", sz, err)
		}
		out = append(out, qs...)
	}
	return out
}

// TestQueriesAreContained checks the workload invariant: every generated
// query is a subgraph of at least one dataset graph, so answers are
// non-empty.
func TestQueriesAreContained(t *testing.T) {
	ds := testDataset(t)
	queries := generateQueries(t, ds, 4, []int{4, 8})
	for i, q := range queries {
		ans, err := core.BruteForceAnswers(context.Background(), ds, q)
		if err != nil {
			t.Fatalf("brute force: %v", err)
		}
		if len(ans) == 0 {
			t.Errorf("query %d has empty answer set", i)
		}
	}
}

// TestUnbuiltIndexErrors checks that querying before Build fails cleanly.
func TestUnbuiltIndexErrors(t *testing.T) {
	q := graph.New(0)
	q.AddVertex(0)
	for _, m := range allMethods() {
		if _, err := m.Candidates(q); err == nil {
			t.Errorf("%s: Candidates before Build should error", m.Name())
		}
	}
}

// TestBuildCancellation checks the kill-switch: Build must return promptly
// with the context error when cancelled up front.
func TestBuildCancellation(t *testing.T) {
	ds := testDataset(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, m := range allMethods() {
		if err := m.Build(ctx, ds); err == nil {
			t.Errorf("%s: Build with cancelled context should error", m.Name())
		}
	}
}

// TestMethodSizes sanity-checks the SizeBytes ordering the paper reports for
// small datasets: the fingerprint methods (CT-Index) must be far smaller
// than the exhaustive path methods (Grapes), which store location info.
func TestMethodSizes(t *testing.T) {
	ds := testDataset(t)
	ctx := context.Background()

	gr := grapes.New(grapes.Options{})
	ct := ctindex.New(ctindex.Options{})
	if err := gr.Build(ctx, ds); err != nil {
		t.Fatalf("grapes build: %v", err)
	}
	if err := ct.Build(ctx, ds); err != nil {
		t.Fatalf("ctindex build: %v", err)
	}
	if gr.SizeBytes() <= ct.SizeBytes() {
		t.Errorf("Grapes index (%d B) should exceed CT-Index (%d B) on this dataset",
			gr.SizeBytes(), ct.SizeBytes())
	}
}

// TestQueryResultAccounting checks per-query metric bookkeeping.
func TestQueryResultAccounting(t *testing.T) {
	r := &core.QueryResult{
		Candidates: graph.IDSet{1, 2, 3, 4},
		Answers:    graph.IDSet{2, 3},
	}
	if fp := r.FalsePositiveRatio(); fp != 0.5 {
		t.Errorf("FP ratio = %v, want 0.5", fp)
	}
	empty := &core.QueryResult{}
	if fp := empty.FalsePositiveRatio(); fp != 0 {
		t.Errorf("empty candidates FP ratio = %v, want 0", fp)
	}
}
