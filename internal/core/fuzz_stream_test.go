package core_test

import (
	"context"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/ctindex"
	"repro/internal/gcode"
	"repro/internal/gen"
	"repro/internal/ggsx"
	"repro/internal/gindex"
	"repro/internal/grapes"
	"repro/internal/graph"
	"repro/internal/scan"
	"repro/internal/testutil/leak"
	"repro/internal/treedelta"
	"repro/internal/workload"
)

// fuzzMethodCount is the number of selectable methods: the six paper
// methods plus the no-index scan baseline.
const fuzzMethodCount = 7

// fuzzNewMethod instantiates the method at idx with feature sizes scaled
// down for micro datasets, so each fuzz iteration builds in microseconds
// while still exercising every filter's real candidate logic.
func fuzzNewMethod(idx int) core.Method {
	switch idx {
	case 0:
		return scan.New()
	case 1:
		return grapes.New(grapes.Options{MaxPathLen: 3})
	case 2:
		return ggsx.New(ggsx.Options{MaxPathLen: 3})
	case 3:
		return ctindex.New(ctindex.Options{MaxTreeSize: 4, MaxCycleSize: 4})
	case 4:
		return gindex.New(gindex.Options{MaxFeatureSize: 4})
	case 5:
		return treedelta.New(treedelta.Options{MaxFeatureSize: 4})
	default:
		return gcode.New(gcode.Options{})
	}
}

// fuzzFixture is one fully-built (dataset, queries, method) combination,
// cached across fuzz iterations: the fuzzer replays the same few fixtures
// under thousands of (query, workers, cancel-point) permutations, and
// rebuilding an index per permutation would dominate the run.
type fuzzFixture struct {
	ds      *graph.Dataset
	queries []*graph.Graph
	truth   []graph.IDSet
	procs   [fuzzMethodCount]*core.Processor
	methods [fuzzMethodCount]core.Method
}

var (
	fuzzMu       sync.Mutex
	fuzzFixtures = map[int64]*fuzzFixture{}
)

// fuzzSetup returns the cached fixture for dsSeed, building it on first
// use: a tiny synthetic dataset, a mixed walk/path/tree workload over it,
// brute-force truth per query, and all seven methods indexed.
func fuzzSetup(t *testing.T, dsSeed int64) *fuzzFixture {
	t.Helper()
	fuzzMu.Lock()
	defer fuzzMu.Unlock()
	if fx, ok := fuzzFixtures[dsSeed]; ok {
		return fx
	}
	ctx := context.Background()
	fx := &fuzzFixture{}
	fx.ds = gen.Synthetic(gen.SynthConfig{
		NumGraphs: 15, MeanNodes: 9, MeanDensity: 0.25, NumLabels: 3, Seed: 900 + dsSeed,
	})
	qs, err := workload.GenerateMixed(fx.ds, workload.MixedConfig{
		NumQueries: 6, Sizes: []int{2, 4}, Seed: 1700 + dsSeed,
	})
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	fx.queries = qs
	fx.truth = make([]graph.IDSet, len(qs))
	for i, q := range qs {
		ans, err := core.BruteForceAnswers(ctx, fx.ds, q)
		if err != nil {
			t.Fatalf("brute force: %v", err)
		}
		fx.truth[i] = ans
	}
	for i := 0; i < fuzzMethodCount; i++ {
		m := fuzzNewMethod(i)
		if err := m.Build(ctx, fx.ds); err != nil {
			t.Fatalf("%s build: %v", m.Name(), err)
		}
		fx.methods[i] = m
		fx.procs[i] = core.NewProcessor(m, fx.ds)
	}
	fuzzFixtures[dsSeed] = fx
	return fx
}

// FuzzStreamParity is the differential harness for the lazy pipeline: for
// a fuzz-chosen (dataset, method, query, verifier parallelism) it checks
// that the streamed answer sequence is exactly the one-shot result, which
// is exactly the brute-force truth — and that abandoning the stream after
// a fuzz-chosen prefix yields exactly that prefix of the truth (in order,
// no duplicate, no wrong id) while the pipeline's verifier goroutines shut
// down cleanly.
func FuzzStreamParity(f *testing.F) {
	// Seed corpus: every method, serial and parallel verification, with
	// cancel points at the start, middle, and past the end of the answers.
	for m := uint8(0); m < fuzzMethodCount; m++ {
		f.Add(uint8(0), m, uint8(0), uint8(0), uint8(1))
		f.Add(uint8(1), m, uint8(2), uint8(3), uint8(2))
		f.Add(uint8(2), m, uint8(4), uint8(1), uint8(255))
	}
	f.Fuzz(func(t *testing.T, dsSeed, mIdx, qIdx, workers, cancelAfter uint8) {
		defer leak.Check(t)()
		fx := fuzzSetup(t, int64(dsSeed%3))
		mi := int(mIdx) % fuzzMethodCount
		m, proc := fx.methods[mi], fx.procs[mi]
		qi := int(qIdx) % len(fx.queries)
		q, truth := fx.queries[qi], fx.truth[qi]
		ctx := context.Background()

		// One-shot ≡ brute force.
		res, err := proc.QueryCtx(ctx, q)
		if err != nil {
			t.Fatalf("%s one-shot: %v", m.Name(), err)
		}
		if !res.Answers.Equal(truth) {
			t.Fatalf("%s one-shot answers %v, want %v", m.Name(), res.Answers, truth)
		}

		// Streamed ≡ one-shot, serial and with fuzz-chosen parallelism.
		nWorkers := 1 + int(workers)%4
		for _, w := range []int{1, nWorkers} {
			var stats core.PipelineStats
			got := graph.IDSet{}
			for id, err := range core.StreamAnswersOpts(ctx, m, fx.ds, q, core.StreamOptions{
				VerifyWorkers: w, Stats: &stats,
			}) {
				if err != nil {
					t.Fatalf("%s stream (workers=%d): %v", m.Name(), w, err)
				}
				got = append(got, id)
			}
			if !got.Equal(truth) {
				t.Fatalf("%s stream (workers=%d) %v, want %v", m.Name(), w, got, truth)
			}
			if v := int(stats.Verified.Load()); v < len(truth) {
				t.Fatalf("%s stream verified %d < %d answers", m.Name(), v, len(truth))
			}
			if p, v := stats.Produced.Load(), stats.Verified.Load(); p < v {
				t.Fatalf("%s stream produced %d < verified %d", m.Name(), p, v)
			}
		}

		// Abandoning the stream after k answers must yield exactly
		// truth[:k] — a lazy pipeline that reorders, duplicates, or
		// invents an id under early exit fails here.
		if k := int(cancelAfter) % (len(truth) + 1); k > 0 {
			prefix := graph.IDSet{}
			for id, err := range core.StreamAnswersOpts(ctx, m, fx.ds, q, core.StreamOptions{
				VerifyWorkers: nWorkers,
			}) {
				if err != nil {
					t.Fatalf("%s prefix stream: %v", m.Name(), err)
				}
				prefix = append(prefix, id)
				if len(prefix) >= k {
					break
				}
			}
			if len(prefix) != k {
				t.Fatalf("%s prefix stream yielded %d answers, want %d", m.Name(), len(prefix), k)
			}
			for i, id := range prefix {
				if id != truth[i] {
					t.Fatalf("%s prefix[%d] = %d, want %d (full prefix %v, truth %v)",
						m.Name(), i, id, truth[i], prefix, truth)
				}
			}
		}
	})
}
