package core_test

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
)

// TestPersistenceRoundTrip builds each method, saves it, loads it into a
// fresh instance, and checks the loaded index answers identically.
func TestPersistenceRoundTrip(t *testing.T) {
	ds := testDataset(t)
	queries := generateQueries(t, ds, 4, []int{3, 6})
	ctx := context.Background()

	fresh := allMethods()
	for i, m := range allMethods() {
		m := m
		target := fresh[i]
		t.Run(m.Name(), func(t *testing.T) {
			p, ok := m.(core.Persistable)
			if !ok {
				t.Fatalf("%s does not implement Persistable", m.Name())
			}
			if err := p.SaveIndex(&bytes.Buffer{}); err == nil {
				t.Errorf("save before Build should error")
			}
			if err := m.Build(ctx, ds); err != nil {
				t.Fatalf("Build: %v", err)
			}
			var buf bytes.Buffer
			if err := p.SaveIndex(&buf); err != nil {
				t.Fatalf("SaveIndex: %v", err)
			}
			lp := target.(core.Persistable)
			if err := lp.LoadIndex(bytes.NewReader(buf.Bytes()), ds); err != nil {
				t.Fatalf("LoadIndex: %v", err)
			}
			procA := core.NewProcessor(m, ds)
			procB := core.NewProcessor(target, ds)
			for qi, q := range queries {
				ra, err := procA.Query(q)
				if err != nil {
					t.Fatalf("original query %d: %v", qi, err)
				}
				rb, err := procB.Query(q)
				if err != nil {
					t.Fatalf("loaded query %d: %v", qi, err)
				}
				if !ra.Answers.Equal(rb.Answers) {
					t.Errorf("query %d: answers diverge after round trip", qi)
				}
				if !ra.Candidates.Equal(rb.Candidates) {
					t.Errorf("query %d: candidates diverge after round trip", qi)
				}
			}
		})
	}
}

// TestPersistenceRejectsWrongDataset checks the dataset-mismatch guard.
func TestPersistenceRejectsWrongDataset(t *testing.T) {
	ds := testDataset(t)
	other := gen.Synthetic(gen.SynthConfig{
		NumGraphs: ds.Len() + 5, MeanNodes: 10, MeanDensity: 0.3, NumLabels: 3, Seed: 99,
	})
	ctx := context.Background()
	for _, m := range allMethods() {
		p := m.(core.Persistable)
		if err := m.Build(ctx, ds); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		var buf bytes.Buffer
		if err := p.SaveIndex(&buf); err != nil {
			t.Fatalf("%s save: %v", m.Name(), err)
		}
		if err := p.LoadIndex(bytes.NewReader(buf.Bytes()), other); err == nil {
			t.Errorf("%s: load over a different-size dataset should fail", m.Name())
		}
	}
}

// TestPersistenceRejectsGarbage checks corrupted-stream handling.
func TestPersistenceRejectsGarbage(t *testing.T) {
	ds := testDataset(t)
	for _, m := range allMethods() {
		p := m.(core.Persistable)
		err := p.LoadIndex(strings.NewReader("not a gob stream"), ds)
		if err == nil {
			t.Errorf("%s: garbage accepted", m.Name())
		}
	}
	_ = graph.ID(0)
}
