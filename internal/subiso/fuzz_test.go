package subiso

import (
	"testing"

	"repro/internal/graph"
)

// buildFromBytes deterministically decodes a small graph from fuzz bytes:
// the first byte is the vertex count, subsequent byte pairs become edges,
// labels cycle through a 3-letter alphabet.
func buildFromBytes(data []byte, maxN int) *graph.Graph {
	if len(data) == 0 {
		return nil
	}
	n := int(data[0])%maxN + 1
	g := graph.New(0)
	for i := 0; i < n; i++ {
		g.AddVertex(graph.Label(i % 3))
	}
	for i := 1; i+1 < len(data); i += 2 {
		u := int32(int(data[i]) % n)
		v := int32(int(data[i+1]) % n)
		if u != v && !g.HasEdge(u, v) {
			g.MustAddEdge(u, v)
		}
	}
	return g
}

// FuzzTunedAgreesWithVF2 checks the two matchers agree on arbitrary
// query/data pairs — the tuned heuristics must change performance only,
// never semantics.
func FuzzTunedAgreesWithVF2(f *testing.F) {
	f.Add([]byte{3, 0, 1, 1, 2}, []byte{5, 0, 1, 1, 2, 2, 3, 3, 4})
	f.Add([]byte{1}, []byte{1})
	f.Fuzz(func(t *testing.T, qb []byte, gb []byte) {
		q := buildFromBytes(qb, 6)
		g := buildFromBytes(gb, 9)
		if q == nil || g == nil {
			return
		}
		want := Exists(q, g)
		if got := ExistsTuned(q, g); got != want {
			t.Fatalf("matchers disagree: tuned=%v vf2=%v\nq=%v\ng=%v", got, want, q, g)
		}
	})
}
