package subiso

import (
	"sort"

	"repro/internal/graph"
)

// ExistsTuned is the "modified VF2 with additional heuristics" used by
// CT-Index's verification stage. On top of plain VF2 it adds:
//
//   - query vertex ordering by label rarity in the data graph (rare labels
//     first, ties broken by higher degree), so the search fails fast;
//   - per-vertex neighbor-label composition pruning: a data vertex is only a
//     candidate for a query vertex if, for every label, it has at least as
//     many neighbors with that label as the query vertex does.
//
// Semantics are identical to Exists; only the search order and pruning
// differ.
func ExistsTuned(q, g *graph.Graph) bool {
	if q.NumVertices() == 0 {
		return true
	}
	if q.NumVertices() > g.NumVertices() || q.NumEdges() > g.NumEdges() {
		return false
	}
	t := &tunedMatcher{q: q, g: g}
	if !t.prepare() {
		return false
	}
	return t.match(0)
}

type tunedMatcher struct {
	q, g   *graph.Graph
	order  []int32
	parent []int32
	// nlabQ[v] is the sorted neighbor-label slice of query vertex v;
	// compared against the data vertex's sorted neighbor labels by multiset
	// dominance.
	nlabQ [][]graph.Label
	coreQ []int32
	coreG []int32
	nlabG [][]graph.Label // lazily computed per data vertex; nil = not yet
}

// prepare computes label frequencies in g, the rarity-driven order, and the
// per-query-vertex neighbor label multisets. It returns false if some query
// label does not occur in g at all.
func (t *tunedMatcher) prepare() bool {
	freq := make(map[graph.Label]int)
	for _, l := range t.g.Labels() {
		freq[l]++
	}
	for _, l := range t.q.Labels() {
		if freq[l] == 0 {
			return false
		}
	}
	n := t.q.NumVertices()
	// Order query vertices by (freq asc, degree desc) but preserving
	// connectivity: after the first vertex, only vertices adjacent to the
	// already-ordered set are eligible (falling back to any vertex for
	// disconnected queries).
	t.order = make([]int32, 0, n)
	t.parent = make([]int32, 0, n)
	inOrder := make([]bool, n)
	adjacent := make([]bool, n)
	for len(t.order) < n {
		best := int32(-1)
		bestAdj := false
		for v := int32(0); int(v) < n; v++ {
			if inOrder[v] {
				continue
			}
			if best < 0 {
				best, bestAdj = v, adjacent[v]
				continue
			}
			// Prefer adjacency to the partial mapping, then rarity, then degree.
			cand := adjacent[v]
			switch {
			case cand != bestAdj:
				if cand {
					best, bestAdj = v, cand
				}
			case freq[t.q.Label(v)] != freq[t.q.Label(best)]:
				if freq[t.q.Label(v)] < freq[t.q.Label(best)] {
					best, bestAdj = v, cand
				}
			case t.q.Degree(v) > t.q.Degree(best):
				best, bestAdj = v, cand
			}
		}
		inOrder[best] = true
		anchor := int32(-1)
		for _, w := range t.q.Neighbors(best) {
			if inOrder[w] && w != best {
				anchor = w
				break
			}
			adjacent[w] = true
		}
		// The loop above may exit before marking all neighbors; finish it.
		for _, w := range t.q.Neighbors(best) {
			adjacent[w] = true
		}
		t.order = append(t.order, best)
		t.parent = append(t.parent, anchor)
	}
	t.nlabQ = make([][]graph.Label, n)
	for v := int32(0); int(v) < n; v++ {
		t.nlabQ[v] = sortedNeighborLabels(t.q, v)
	}
	t.coreQ = make([]int32, n)
	t.coreG = make([]int32, t.g.NumVertices())
	for i := range t.coreQ {
		t.coreQ[i] = -1
	}
	for i := range t.coreG {
		t.coreG[i] = -1
	}
	t.nlabG = make([][]graph.Label, t.g.NumVertices())
	return true
}

func sortedNeighborLabels(g *graph.Graph, v int32) []graph.Label {
	out := make([]graph.Label, 0, g.Degree(v))
	for _, w := range g.Neighbors(v) {
		out = append(out, g.Label(w))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// dominates reports whether multiset b contains multiset a (both sorted).
func dominates(b, a []graph.Label) bool {
	if len(a) > len(b) {
		return false
	}
	i := 0
	for _, x := range a {
		for i < len(b) && b[i] < x {
			i++
		}
		if i >= len(b) || b[i] != x {
			return false
		}
		i++
	}
	return true
}

func (t *tunedMatcher) neighborLabels(gv int32) []graph.Label {
	if t.nlabG[gv] == nil {
		t.nlabG[gv] = sortedNeighborLabels(t.g, gv)
		if t.nlabG[gv] == nil { // degree-0 vertex: mark computed
			t.nlabG[gv] = []graph.Label{}
		}
	}
	return t.nlabG[gv]
}

func (t *tunedMatcher) match(depth int) bool {
	if depth == len(t.order) {
		return true
	}
	qu := t.order[depth]
	if anchor := t.parent[depth]; anchor >= 0 {
		for _, gv := range t.g.Neighbors(t.coreQ[anchor]) {
			if t.feasible(qu, gv) && t.extend(depth, qu, gv) {
				return true
			}
		}
		return false
	}
	for gv := int32(0); int(gv) < t.g.NumVertices(); gv++ {
		if t.feasible(qu, gv) && t.extend(depth, qu, gv) {
			return true
		}
	}
	return false
}

func (t *tunedMatcher) extend(depth int, qu, gv int32) bool {
	t.coreQ[qu] = gv
	t.coreG[gv] = qu
	ok := t.match(depth + 1)
	t.coreQ[qu] = -1
	t.coreG[gv] = -1
	return ok
}

func (t *tunedMatcher) feasible(qu, gv int32) bool {
	if t.coreG[gv] >= 0 || t.q.Label(qu) != t.g.Label(gv) || t.q.Degree(qu) > t.g.Degree(gv) {
		return false
	}
	if !dominates(t.neighborLabels(gv), t.nlabQ[qu]) {
		return false
	}
	for _, qw := range t.q.Neighbors(qu) {
		if gw := t.coreQ[qw]; gw >= 0 && !t.g.HasEdge(gv, gw) {
			return false
		}
	}
	return true
}
