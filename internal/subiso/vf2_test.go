package subiso

import (
	"context"
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func path(labels ...graph.Label) *graph.Graph {
	g := graph.New(0)
	for _, l := range labels {
		g.AddVertex(l)
	}
	for i := 1; i < len(labels); i++ {
		g.MustAddEdge(int32(i-1), int32(i))
	}
	return g
}

func cycle(labels ...graph.Label) *graph.Graph {
	g := path(labels...)
	if len(labels) >= 3 {
		g.MustAddEdge(int32(len(labels)-1), 0)
	}
	return g
}

func clique(n int, l graph.Label) *graph.Graph {
	g := graph.New(0)
	for i := 0; i < n; i++ {
		g.AddVertex(l)
	}
	for i := int32(0); int(i) < n; i++ {
		for j := i + 1; int(j) < n; j++ {
			g.MustAddEdge(i, j)
		}
	}
	return g
}

func TestExistsBasic(t *testing.T) {
	g := cycle(1, 2, 3, 4)
	cases := []struct {
		name string
		q    *graph.Graph
		want bool
	}{
		{"single matching vertex", path(1), true},
		{"single missing vertex", path(9), false},
		{"edge present", path(1, 2), true},
		{"edge absent labels", path(1, 3), false},
		{"path around cycle", path(4, 1, 2, 3), true},
		{"whole cycle", cycle(1, 2, 3, 4), true},
		{"reversed cycle", cycle(4, 3, 2, 1), true},
		{"cycle too long", cycle(1, 2, 3, 4, 5), false},
		{"triangle not in C4", cycle(1, 2, 3), false},
		{"empty query", graph.New(0), true},
	}
	for _, c := range cases {
		if got := Exists(c.q, g); got != c.want {
			t.Errorf("%s: Exists = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestMonomorphismNotInduced(t *testing.T) {
	// Query: path 1-2-3. Data: triangle with labels 1,2,3. The path maps
	// into the triangle even though the data has an extra edge (Def. 3 is
	// not induced).
	q := path(1, 2, 3)
	g := cycle(1, 2, 3)
	if !Exists(q, g) {
		t.Fatalf("non-induced embedding not found")
	}
}

func TestMultipleLabelOccurrences(t *testing.T) {
	// Data: star with center label 0 and leaves all label 1.
	g := graph.New(0)
	c := g.AddVertex(0)
	for i := 0; i < 4; i++ {
		l := g.AddVertex(1)
		g.MustAddEdge(c, l)
	}
	// Query: star with 3 leaves — injectivity requires 3 distinct leaves.
	q := graph.New(0)
	qc := q.AddVertex(0)
	for i := 0; i < 3; i++ {
		ql := q.AddVertex(1)
		q.MustAddEdge(qc, ql)
	}
	if !Exists(q, g) {
		t.Fatalf("star query should embed")
	}
	// 5 leaves cannot embed into 4.
	q5 := graph.New(0)
	qc5 := q5.AddVertex(0)
	for i := 0; i < 5; i++ {
		ql := q5.AddVertex(1)
		q5.MustAddEdge(qc5, ql)
	}
	if Exists(q5, g) {
		t.Fatalf("5-leaf star embedded into 4-leaf star")
	}
}

func TestCount(t *testing.T) {
	// Path 1-1 in triangle of all-1 labels: 3 edges x 2 orientations = 6.
	g := clique(3, 1)
	q := path(1, 1)
	if got := Count(q, g, 0); got != 6 {
		t.Errorf("Count = %d, want 6", got)
	}
	if got := Count(q, g, 4); got != 4 {
		t.Errorf("Count limited = %d, want 4", got)
	}
	// Triangle query in K4: 4 vertex subsets x 3! mappings = 24.
	if got := Count(cycle(1, 1, 1), clique(4, 1), 0); got != 24 {
		t.Errorf("triangles in K4 = %d, want 24", got)
	}
}

func TestFindOneIsValidEmbedding(t *testing.T) {
	g := cycle(1, 2, 3, 4)
	q := path(2, 3, 4)
	m := FindOne(q, g)
	if m == nil {
		t.Fatalf("no embedding found")
	}
	seen := map[int32]bool{}
	for qv := int32(0); int(qv) < q.NumVertices(); qv++ {
		gv := m[qv]
		if q.Label(qv) != g.Label(gv) {
			t.Errorf("label mismatch at %d", qv)
		}
		if seen[gv] {
			t.Errorf("mapping not injective at %d", gv)
		}
		seen[gv] = true
	}
	for _, e := range q.Edges() {
		if !g.HasEdge(m[e[0]], m[e[1]]) {
			t.Errorf("edge %v not preserved", e)
		}
	}
}

func TestRestrict(t *testing.T) {
	// Two disjoint triangles in one graph; restrict to the second.
	g := graph.New(0)
	for i := 0; i < 6; i++ {
		g.AddVertex(1)
	}
	g.MustAddEdge(0, 1)
	g.MustAddEdge(1, 2)
	g.MustAddEdge(2, 0)
	g.MustAddEdge(3, 4)
	g.MustAddEdge(4, 5)
	g.MustAddEdge(5, 3)
	q := cycle(1, 1, 1)
	allowFirst := []bool{true, true, true, false, false, false}
	allowNone := make([]bool, 6)
	if !ExistsRestricted(q, g, allowFirst) {
		t.Errorf("restricted to first triangle: want match")
	}
	if ExistsRestricted(q, g, allowNone) {
		t.Errorf("restricted to nothing: want no match")
	}
}

func TestDisconnectedQuery(t *testing.T) {
	// Query: two isolated vertices labelled 1 and 2.
	q := graph.New(0)
	q.AddVertex(1)
	q.AddVertex(2)
	g := path(1, 3, 2)
	if !Exists(q, g) {
		t.Fatalf("disconnected query should match")
	}
	// Needs two distinct vertices with label 1.
	q2 := graph.New(0)
	q2.AddVertex(1)
	q2.AddVertex(1)
	g2 := path(1, 2)
	if Exists(q2, g2) {
		t.Fatalf("two label-1 vertices matched one")
	}
}

func TestContextCancellation(t *testing.T) {
	// A hard instance: big all-same-label clique query embedded in a bigger
	// clique would finish fast; instead use a near-miss that forces heavy
	// backtracking: query clique K8 vs data graph K8 minus one edge.
	q := clique(8, 1)
	g := clique(8, 1)
	// remove edge by rebuilding without {0,1}
	g2 := graph.New(0)
	for i := 0; i < 8; i++ {
		g2.AddVertex(1)
	}
	for i := int32(0); i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			if i == 0 && j == 1 {
				continue
			}
			g2.MustAddEdge(i, j)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := NewMatcher(q, g2, Options{Ctx: ctx})
	if m.Run(nil) {
		t.Fatalf("K8 should not embed in K8 minus an edge")
	}
	_ = g
}

func TestRandomPlantedSubgraphs(t *testing.T) {
	// Property: a random connected subgraph of g always embeds in g.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 40; trial++ {
		n := 5 + rng.Intn(15)
		g := graph.New(0)
		for i := 0; i < n; i++ {
			g.AddVertex(graph.Label(rng.Intn(3)))
		}
		// random spanning tree + extra edges
		for i := 1; i < n; i++ {
			g.MustAddEdge(int32(rng.Intn(i)), int32(i))
		}
		for k := 0; k < n; k++ {
			u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
			if u != v && !g.HasEdge(u, v) {
				g.MustAddEdge(u, v)
			}
		}
		// random walk subgraph (never larger than the graph itself)
		size := 2 + rng.Intn(5)
		if size > n {
			size = n
		}
		start := int32(rng.Intn(n))
		vertices := map[int32]bool{start: true}
		cur := start
		for len(vertices) < size {
			nb := g.Neighbors(cur)
			if len(nb) == 0 {
				break
			}
			cur = nb[rng.Intn(len(nb))]
			vertices[cur] = true
		}
		var vs []int32
		for v := range vertices {
			vs = append(vs, v)
		}
		q, _, err := g.InducedSubgraph(vs)
		if err != nil {
			t.Fatalf("induced: %v", err)
		}
		if !Exists(q, g) {
			t.Fatalf("trial %d: planted subgraph not found", trial)
		}
		if !ExistsTuned(q, g) {
			t.Fatalf("trial %d: tuned matcher missed planted subgraph", trial)
		}
	}
}

func TestTunedAgreesWithVF2(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 120; trial++ {
		mk := func(n, extra, nlab int) *graph.Graph {
			g := graph.New(0)
			for i := 0; i < n; i++ {
				g.AddVertex(graph.Label(rng.Intn(nlab)))
			}
			for i := 1; i < n; i++ {
				g.MustAddEdge(int32(rng.Intn(i)), int32(i))
			}
			for k := 0; k < extra; k++ {
				u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
				if u != v && !g.HasEdge(u, v) {
					g.MustAddEdge(u, v)
				}
			}
			return g
		}
		g := mk(4+rng.Intn(10), rng.Intn(8), 2)
		q := mk(2+rng.Intn(4), rng.Intn(3), 2)
		want := Exists(q, g)
		if got := ExistsTuned(q, g); got != want {
			t.Fatalf("trial %d: tuned=%v vf2=%v\nq=%v\ng=%v", trial, got, want, q, g)
		}
	}
}

func TestQueryLargerThanData(t *testing.T) {
	if Exists(clique(5, 1), clique(4, 1)) {
		t.Fatalf("bigger query matched smaller data")
	}
	if ExistsTuned(clique(5, 1), clique(4, 1)) {
		t.Fatalf("tuned: bigger query matched smaller data")
	}
}
