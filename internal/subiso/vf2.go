// Package subiso implements subgraph isomorphism testing in the sense of
// Definition 3 of the paper: an injective mapping of query vertices to data
// vertices preserving labels and query edges (a subgraph monomorphism; data
// graphs may have extra edges between mapped vertices).
//
// The core matcher is VF2 (Cordella, Foggia, Sansone, Vento, TPAMI 2004) with
// label and degree feasibility pruning. A tuned variant with rarity-driven
// vertex ordering and neighborhood-composition pruning is provided for
// CT-Index, which the paper credits with a "modified VF2 with additional
// heuristics".
package subiso

import (
	"context"

	"repro/internal/graph"
)

// Options configures a match run.
type Options struct {
	// Restrict, when non-nil, limits the data vertices the query may map to;
	// Restrict[v] must be true for every used data vertex v. Grapes uses this
	// to verify against single connected components.
	Restrict []bool
	// Limit stops the search after this many embeddings (0 means 1, the
	// filter-and-verify default; use -1 for all embeddings).
	Limit int
	// Ctx, when non-nil, aborts the search when cancelled.
	Ctx context.Context
}

// Exists reports whether q is subgraph-isomorphic to g (first match wins).
func Exists(q, g *graph.Graph) bool {
	m := NewMatcher(q, g, Options{})
	return m.Run(nil)
}

// ExistsRestricted is Exists with the data-vertex restriction of Options.
func ExistsRestricted(q, g *graph.Graph, allowed []bool) bool {
	m := NewMatcher(q, g, Options{Restrict: allowed})
	return m.Run(nil)
}

// Count returns the number of embeddings of q in g, up to limit
// (limit <= 0 counts all).
func Count(q, g *graph.Graph, limit int) int {
	n := 0
	m := NewMatcher(q, g, Options{Limit: -1})
	m.Run(func(mapping []int32) bool {
		n++
		return limit <= 0 || n < limit
	})
	return n
}

// FindOne returns one embedding (query vertex -> data vertex) or nil.
func FindOne(q, g *graph.Graph) []int32 {
	var out []int32
	m := NewMatcher(q, g, Options{})
	m.Run(func(mapping []int32) bool {
		out = append([]int32(nil), mapping...)
		return false
	})
	return out
}

// Matcher holds the reusable state of a VF2 search between one query and one
// data graph. It is not safe for concurrent use.
type Matcher struct {
	q, g  *graph.Graph
	opts  Options
	order []int32 // query vertices in match order
	// parent[i] is a previously-matched query neighbor of order[i], or -1
	// when order[i] starts a new connected component of the query.
	parent []int32
	coreQ  []int32 // query vertex -> data vertex or -1
	coreG  []int32 // data vertex -> query vertex or -1
	found  int
	ticks  int
}

// NewMatcher prepares a matcher; Run performs the search.
func NewMatcher(q, g *graph.Graph, opts Options) *Matcher {
	m := &Matcher{q: q, g: g, opts: opts}
	m.order, m.parent = matchOrder(q)
	m.coreQ = make([]int32, q.NumVertices())
	m.coreG = make([]int32, g.NumVertices())
	return m
}

// matchOrder returns a connectivity-preserving ordering of query vertices
// (greedy: start at the max-degree vertex, then always pick the unvisited
// vertex with the most already-ordered neighbors, ties by degree).
func matchOrder(q *graph.Graph) (order, parent []int32) {
	n := q.NumVertices()
	order = make([]int32, 0, n)
	parent = make([]int32, 0, n)
	visited := make([]bool, n)
	connections := make([]int, n)
	for len(order) < n {
		best := int32(-1)
		for v := int32(0); int(v) < n; v++ {
			if visited[v] {
				continue
			}
			if best < 0 {
				best = v
				continue
			}
			if connections[v] > connections[best] ||
				(connections[v] == connections[best] && q.Degree(v) > q.Degree(best)) {
				best = v
			}
		}
		visited[best] = true
		// Find an already-ordered neighbor to anchor the new vertex.
		anchor := int32(-1)
		for _, w := range q.Neighbors(best) {
			if visited[w] && w != best {
				if idx := indexOf(order, w); idx >= 0 {
					anchor = w
					break
				}
			}
		}
		order = append(order, best)
		parent = append(parent, anchor)
		for _, w := range q.Neighbors(best) {
			connections[w]++
		}
	}
	return order, parent
}

func indexOf(a []int32, v int32) int {
	for i, x := range a {
		if x == v {
			return i
		}
	}
	return -1
}

// Run executes the search. For every embedding found it invokes yield (if
// non-nil) with the query->data mapping; returning false stops the search.
// Run returns true if at least one embedding was found. With a nil yield it
// stops after the first embedding.
func (m *Matcher) Run(yield func(mapping []int32) bool) bool {
	if m.q.NumVertices() == 0 {
		// The empty query is contained in every graph.
		if yield != nil {
			yield(nil)
		}
		return true
	}
	if m.q.NumVertices() > m.g.NumVertices() || m.q.NumEdges() > m.g.NumEdges() {
		return false
	}
	for i := range m.coreQ {
		m.coreQ[i] = -1
	}
	for i := range m.coreG {
		m.coreG[i] = -1
	}
	m.found = 0
	m.ticks = 0
	m.match(0, yield)
	return m.found > 0
}

func (m *Matcher) cancelled() bool {
	if m.opts.Ctx == nil {
		return false
	}
	m.ticks++
	if m.ticks&1023 != 0 {
		return false
	}
	select {
	case <-m.opts.Ctx.Done():
		return true
	default:
		return false
	}
}

// match extends the partial mapping by query vertex order[depth].
// It returns false to abort the whole search.
func (m *Matcher) match(depth int, yield func([]int32) bool) bool {
	if depth == len(m.order) {
		m.found++
		if yield != nil && !yield(m.coreQ) {
			return false
		}
		if yield == nil {
			return false // first match wins
		}
		if m.opts.Limit > 0 && m.found >= m.opts.Limit {
			return false
		}
		return true
	}
	if m.cancelled() {
		return false
	}
	qu := m.order[depth]
	anchor := m.parent[depth]
	if anchor >= 0 {
		// Candidates are neighbors of the image of the anchor vertex.
		gAnchor := m.coreQ[anchor]
		for _, gv := range m.g.Neighbors(gAnchor) {
			if m.feasible(qu, gv) {
				if !m.extend(depth, qu, gv, yield) {
					return false
				}
			}
		}
		return true
	}
	// New query component: try every data vertex.
	for gv := int32(0); int(gv) < m.g.NumVertices(); gv++ {
		if m.feasible(qu, gv) {
			if !m.extend(depth, qu, gv, yield) {
				return false
			}
		}
	}
	return true
}

func (m *Matcher) extend(depth int, qu, gv int32, yield func([]int32) bool) bool {
	m.coreQ[qu] = gv
	m.coreG[gv] = qu
	ok := m.match(depth+1, yield)
	m.coreQ[qu] = -1
	m.coreG[gv] = -1
	return ok
}

// feasible applies the VF2 feasibility rules for the candidate pair (qu, gv)
// under subgraph monomorphism semantics.
func (m *Matcher) feasible(qu, gv int32) bool {
	if m.coreG[gv] >= 0 {
		return false
	}
	if m.opts.Restrict != nil && !m.opts.Restrict[gv] {
		return false
	}
	if m.q.Label(qu) != m.g.Label(gv) {
		return false
	}
	if m.q.Degree(qu) > m.g.Degree(gv) {
		return false
	}
	// Every already-mapped neighbor of qu must map to a neighbor of gv;
	// count unmapped query neighbors for the lookahead rule.
	unmappedQ := 0
	for _, qw := range m.q.Neighbors(qu) {
		if gw := m.coreQ[qw]; gw >= 0 {
			if !m.g.HasEdge(gv, gw) {
				return false
			}
		} else {
			unmappedQ++
		}
	}
	// Lookahead: gv must have at least as many unmapped (and unrestricted)
	// neighbors as qu has unmapped neighbors.
	unmappedG := 0
	for _, gw := range m.g.Neighbors(gv) {
		if m.coreG[gw] < 0 && (m.opts.Restrict == nil || m.opts.Restrict[gw]) {
			unmappedG++
		}
	}
	return unmappedG >= unmappedQ
}
