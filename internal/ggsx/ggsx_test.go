package ggsx

import (
	"context"
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/subiso"
	"repro/internal/workload"
)

func pathGraph(labels ...graph.Label) *graph.Graph {
	g := graph.New(0)
	for _, l := range labels {
		g.AddVertex(l)
	}
	for i := 1; i < len(labels); i++ {
		g.MustAddEdge(int32(i-1), int32(i))
	}
	return g
}

func build(t *testing.T, ds *graph.Dataset) *Index {
	t.Helper()
	ix := New(Options{})
	if err := ix.Build(context.Background(), ds); err != nil {
		t.Fatalf("Build: %v", err)
	}
	return ix
}

func TestCandidatesBasic(t *testing.T) {
	ds := graph.NewDataset("t")
	ds.Add(pathGraph(1, 2, 3))
	ds.Add(pathGraph(3, 2, 1))
	ds.Add(pathGraph(4, 5))
	ix := build(t, ds)
	cands, err := ix.Candidates(pathGraph(1, 2))
	if err != nil {
		t.Fatal(err)
	}
	// Paths are direction-symmetric: both graphs 0 and 1 contain 1-2.
	if !cands.Equal(graph.IDSet{0, 1}) {
		t.Errorf("candidates = %v, want [0 1]", cands)
	}
	cands, _ = ix.Candidates(pathGraph(9))
	if len(cands) != 0 {
		t.Errorf("unknown label produced candidates: %v", cands)
	}
}

func TestOccurrenceCountFiltering(t *testing.T) {
	ds := graph.NewDataset("t")
	ds.Add(pathGraph(1, 1))    // one 1-1 edge
	ds.Add(pathGraph(1, 1, 1)) // two 1-1 edges
	ix := build(t, ds)
	cands, err := ix.Candidates(pathGraph(1, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !cands.Equal(graph.IDSet{1}) {
		t.Errorf("count filtering: candidates = %v, want [1]", cands)
	}
}

func TestNoFalseNegativesRandom(t *testing.T) {
	ds := gen.Synthetic(gen.SynthConfig{NumGraphs: 25, MeanNodes: 14, MeanDensity: 0.2, NumLabels: 3, Seed: 6})
	ix := build(t, ds)
	qs, err := workload.Generate(ds, workload.Config{NumQueries: 10, QueryEdges: 5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range qs {
		cands, err := ix.Candidates(q)
		if err != nil {
			t.Fatal(err)
		}
		for _, g := range ds.Graphs {
			if subiso.Exists(q, g) && !cands.Contains(g.ID()) {
				t.Errorf("query %d: false negative for graph %d", i, g.ID())
			}
		}
	}
}

func TestTrieShape(t *testing.T) {
	ds := graph.NewDataset("t")
	ds.Add(pathGraph(1, 2))
	ix := build(t, ds)
	// Paths: [1],[2],[1 2],[2 1] -> trie nodes: 1, 2, 1->2, 2->1 = 4 nodes.
	if got := ix.NumNodes(); got != 4 {
		t.Errorf("NumNodes = %d, want 4", got)
	}
	if ix.SizeBytes() <= 0 {
		t.Errorf("SizeBytes = %d", ix.SizeBytes())
	}
}

func TestUnbuiltAndEmpty(t *testing.T) {
	ix := New(Options{})
	if _, err := ix.Candidates(pathGraph(1)); err == nil {
		t.Errorf("want error before Build")
	}
	empty := graph.NewDataset("e")
	built := build(t, empty)
	cands, err := built.Candidates(pathGraph(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 0 {
		t.Errorf("empty dataset produced candidates")
	}
}

func TestMaxPathLenOption(t *testing.T) {
	ds := graph.NewDataset("t")
	ds.Add(pathGraph(1, 2, 3, 4, 5, 6))
	short := New(Options{MaxPathLen: 2})
	if err := short.Build(context.Background(), ds); err != nil {
		t.Fatal(err)
	}
	long := New(Options{MaxPathLen: 5})
	if err := long.Build(context.Background(), ds); err != nil {
		t.Fatal(err)
	}
	if short.NumNodes() >= long.NumNodes() {
		t.Errorf("longer path limit should index more nodes: %d vs %d", short.NumNodes(), long.NumNodes())
	}
}
