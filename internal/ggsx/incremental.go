package ggsx

import (
	"sort"

	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/graph"
)

var _ core.IncrementalIndexer = (*Index)(nil)

// AddGraphToIndex implements core.IncrementalIndexer: the graph's label
// paths are enumerated with the same DFS as Build and folded into the
// finalized trie. Dataset IDs are append-only, so the sorted-postings
// insert at each node is an append in practice.
func (ix *Index) AddGraphToIndex(g *graph.Graph) error {
	if !ix.built {
		return core.ErrNotBuilt
	}
	// Mutation splices postings in place; a mapped trie materializes into
	// heap form first so the splice has somewhere to live.
	if err := ix.materializeAll(); err != nil {
		return err
	}
	id := g.ID()
	stack := make([]*node, 1, ix.opts.MaxPathLen+2)
	stack[0] = ix.root
	features.VisitPaths(g, ix.opts.MaxPathLen, func(vs []int32) bool {
		depth := len(vs)
		stack = stack[:depth]
		parent := stack[depth-1]
		cur := parent.childFinalized(g.Label(vs[depth-1]))
		cur.bump(id)
		stack = append(stack, cur)
		return true
	})
	if int(id) >= ix.nGr {
		ix.nGr = int(id) + 1
	}
	return nil
}

// RemoveGraphFromIndex implements core.IncrementalIndexer: graph id's
// postings are cut from every trie node, and subtrees left without any
// postings are pruned. One trie walk is O(index), far below a rebuild's
// path re-enumeration over every graph.
func (ix *Index) RemoveGraphFromIndex(id graph.ID) error {
	if !ix.built {
		return core.ErrNotBuilt
	}
	if err := ix.materializeAll(); err != nil {
		return err
	}
	pruneID(ix.root, id)
	return nil
}

// childFinalized returns (creating if needed) the child for label l in
// finalized form — sorted id/count slices, no building map — unlike
// build-time child, whose nodes accumulate in a map first.
func (n *node) childFinalized(l graph.Label) *node {
	c := n.children[l]
	if c == nil {
		c = &node{children: make(map[graph.Label]*node)}
		n.children[l] = c
	}
	return c
}

// bump increments id's occurrence count in a finalized node, splicing a
// new entry in id order when absent.
func (n *node) bump(id graph.ID) {
	i := sort.Search(len(n.ids), func(i int) bool { return n.ids[i] >= id })
	if i < len(n.ids) && n.ids[i] == id {
		n.counts[i]++
		return
	}
	n.ids = append(n.ids, 0)
	copy(n.ids[i+1:], n.ids[i:])
	n.ids[i] = id
	n.counts = append(n.counts, 0)
	copy(n.counts[i+1:], n.counts[i:])
	n.counts[i] = 1
}

// pruneID removes id from n's postings and recurses, deleting child
// subtrees that end up empty. It reports whether n itself is now empty
// (no postings, no children).
func pruneID(n *node, id graph.ID) bool {
	i := sort.Search(len(n.ids), func(i int) bool { return n.ids[i] >= id })
	if i < len(n.ids) && n.ids[i] == id {
		n.ids = append(n.ids[:i], n.ids[i+1:]...)
		n.counts = append(n.counts[:i], n.counts[i+1:]...)
	}
	for l, c := range n.children {
		if pruneID(c, id) {
			delete(n.children, l)
		}
	}
	return len(n.ids) == 0 && len(n.children) == 0
}
