// Package ggsx implements GraphGrepSX (Bonnici et al., PRIB 2010): all label
// paths up to a maximum length are enumerated by depth-first search and
// organized in a suffix-tree-like trie; each trie node stores, per graph, the
// number of occurrences of the corresponding label path. Filtering matches
// the query's path trie against the index trie and keeps graphs whose
// occurrence counts dominate the query's on every path.
//
// GraphGrepSX is one of the six indexed subgraph query processing methods
// compared in the reproduced paper (Katsarou, Ntarmos, Triantafillou,
// PVLDB 2015); register.go exposes it to the engine registry as "ggsx".
package ggsx

import (
	"context"
	"iter"
	"sort"

	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/graph"
)

// DefaultMaxPathLen is the paper's §4.1 setting for GGSX.
const DefaultMaxPathLen = 4

// Options configures a GGSX index.
type Options struct {
	// MaxPathLen is the maximum path feature size in edges (paper: 4).
	MaxPathLen int
	// Storage selects how a persisted index is held when restored:
	// core.StorageHeap (default) decodes eagerly, core.StorageMmap keeps
	// the v2 container mapped and materializes trie nodes lazily.
	Storage string
}

func (o *Options) fill() {
	if o.MaxPathLen <= 0 {
		o.MaxPathLen = DefaultMaxPathLen
	}
}

// node is one trie node: the label path from the root to the node is the
// feature; postings count its occurrences per graph.
type node struct {
	children map[graph.Label]*node
	// During build: counts by graph id. Finalized into sorted parallel
	// slices for query-time merging.
	building map[graph.ID]int32
	ids      graph.IDSet
	counts   []int32
}

func newNode() *node {
	return &node{children: make(map[graph.Label]*node), building: make(map[graph.ID]int32)}
}

func (n *node) child(l graph.Label) *node {
	c := n.children[l]
	if c == nil {
		c = newNode()
		n.children[l] = c
	}
	return c
}

func (n *node) finalize() {
	n.ids = make(graph.IDSet, 0, len(n.building))
	for id := range n.building {
		n.ids = append(n.ids, id)
	}
	sort.Slice(n.ids, func(a, b int) bool { return n.ids[a] < n.ids[b] })
	n.counts = make([]int32, len(n.ids))
	for i, id := range n.ids {
		n.counts[i] = n.building[id]
	}
	n.building = nil
	for _, c := range n.children {
		c.finalize()
	}
}

// Index is a built GraphGrepSX index. Create with New, then Build.
type Index struct {
	opts Options
	root *node
	// lazy, when non-nil, backs the trie with a mapped v2 container
	// (storage=mmap): root is nil and nodes resolve through rootRef/child.
	lazy  *lazyTrie
	nGr   int
	built bool
}

// New returns an unbuilt GGSX index.
func New(opts Options) *Index {
	opts.fill()
	return &Index{opts: opts}
}

// Name implements core.Method.
func (ix *Index) Name() string { return "GGSX" }

// Build implements core.Method: DFS path enumeration per graph, inserted
// into the shared trie with occurrence counting.
func (ix *Index) Build(ctx context.Context, ds *graph.Dataset) error {
	ix.root = newNode()
	ix.nGr = ds.Len()
	for _, g := range ds.Graphs {
		if err := ctx.Err(); err != nil {
			return err
		}
		if !ds.Alive(g.ID()) {
			continue // tombstoned slots index nothing
		}
		insertPaths(ix.root, g, ix.opts.MaxPathLen)
	}
	ix.root.finalize()
	ix.built = true
	return nil
}

// insertPaths walks the path enumeration of g keeping a trie cursor stack in
// lockstep with the DFS, so each emitted path costs one child lookup.
func insertPaths(root *node, g *graph.Graph, maxLen int) {
	id := g.ID()
	stack := make([]*node, 1, maxLen+2)
	stack[0] = root
	features.VisitPaths(g, maxLen, func(vs []int32) bool {
		depth := len(vs) // trie depth of this path (one level per vertex)
		stack = stack[:depth]
		parent := stack[depth-1]
		cur := parent.child(g.Label(vs[depth-1]))
		cur.building[id]++
		stack = append(stack, cur)
		return true
	})
}

// queryTrie accumulates the query's path counts in the same trie shape.
type queryTrie struct {
	children map[graph.Label]*queryTrie
	count    int32
}

func buildQueryTrie(q *graph.Graph, maxLen int) *queryTrie {
	root := &queryTrie{children: make(map[graph.Label]*queryTrie)}
	stack := make([]*queryTrie, 1, maxLen+2)
	stack[0] = root
	features.VisitPaths(q, maxLen, func(vs []int32) bool {
		depth := len(vs)
		stack = stack[:depth]
		parent := stack[depth-1]
		l := q.Label(vs[depth-1])
		cur := parent.children[l]
		if cur == nil {
			cur = &queryTrie{children: make(map[graph.Label]*queryTrie)}
			parent.children[l] = cur
		}
		cur.count++
		stack = append(stack, cur)
		return true
	})
	return root
}

// Candidates implements core.Method: graphs whose counts dominate the
// query's on every query trie node. A query path absent from the index
// empties the candidate set.
func (ix *Index) Candidates(q *graph.Graph) (graph.IDSet, error) {
	if !ix.built {
		return nil, core.ErrNotBuilt
	}
	qt := buildQueryTrie(q, ix.opts.MaxPathLen)
	root, err := ix.rootRef()
	if err != nil {
		return nil, err
	}
	cands := graph.UniverseIDSet(ix.nGr)
	ok, err := matchTries(qt, root, &cands)
	if err != nil {
		return nil, err
	}
	if !ok {
		return graph.IDSet{}, nil
	}
	return cands, nil
}

// pathConstraint is one query trie node's dominance requirement against
// its matching index node's postings, gathered eagerly so the per-graph
// evaluation can run lazily in candidate-major order.
type pathConstraint struct {
	ids    graph.IDSet
	counts []int32
	need   int32
}

// gatherConstraints collects every query trie node's (postings, count)
// constraint, returning false as soon as a query path is missing from the
// index (no graph can contain the query). In lazy mode this materializes
// exactly the index nodes the query trie reaches.
func gatherConstraints(qt *queryTrie, ixn trieRef, cons *[]pathConstraint) (bool, error) {
	for l, qc := range qt.children {
		ic, ok, err := ixn.child(l)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
		ids, counts := ic.postings()
		*cons = append(*cons, pathConstraint{ids: ids, counts: counts, need: qc.count})
		ok, err = gatherConstraints(qc, ic, cons)
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}

// chunkSize is the lazy producer's emission granularity.
const chunkSize = 256

var _ core.CandidateChunker = (*Index)(nil)

// CandidateChunks implements core.CandidateChunker: the query trie is built
// and its constraints gathered eagerly, then candidates stream out in
// ascending ID order by walking the rarest constraint's posting list and
// checking the others through monotonic merge cursors — the same
// intersection Candidates computes, evaluated candidate-major so an
// early-terminated stream touches a prefix of the postings instead of all
// of them.
func (ix *Index) CandidateChunks(q *graph.Graph) (iter.Seq[graph.IDSet], error) {
	if !ix.built {
		return nil, core.ErrNotBuilt
	}
	qt := buildQueryTrie(q, ix.opts.MaxPathLen)
	root, err := ix.rootRef()
	if err != nil {
		return nil, err
	}
	var cons []pathConstraint
	ok, err := gatherConstraints(qt, root, &cons)
	if err != nil {
		return nil, err
	}
	if !ok {
		return func(yield func(graph.IDSet) bool) {}, nil
	}
	if len(cons) == 0 {
		// A query with no enumerable paths constrains nothing: every graph
		// slot is a candidate, emitted in ranges.
		n := ix.nGr
		return func(yield func(graph.IDSet) bool) {
			for lo := 0; lo < n; lo += chunkSize {
				hi := min(lo+chunkSize, n)
				chunk := make(graph.IDSet, 0, hi-lo)
				for id := lo; id < hi; id++ {
					chunk = append(chunk, graph.ID(id))
				}
				if !yield(chunk) {
					return
				}
			}
		}, nil
	}
	drv := 0
	for k := range cons {
		if len(cons[k].ids) < len(cons[drv].ids) {
			drv = k
		}
	}
	driver := cons[drv]
	others := append(append([]pathConstraint(nil), cons[:drv]...), cons[drv+1:]...)
	return func(yield func(graph.IDSet) bool) {
		js := make([]int, len(others))
		var chunk graph.IDSet
		for i, id := range driver.ids {
			if driver.counts[i] >= driver.need {
				ok := true
				for k := range others {
					c := &others[k]
					j := js[k]
					for j < len(c.ids) && c.ids[j] < id {
						j++
					}
					js[k] = j
					if j >= len(c.ids) || c.ids[j] != id || c.counts[j] < c.need {
						ok = false
						break
					}
				}
				if ok {
					chunk = append(chunk, id)
				}
			}
			if len(chunk) >= chunkSize {
				if !yield(chunk) {
					return
				}
				chunk = nil
			}
		}
		if len(chunk) > 0 {
			yield(chunk)
		}
	}, nil
}

// matchTries intersects, into cands, the dominating-graph set of every query
// trie node. It returns false as soon as a query path is missing from the
// index (no graph can contain the query).
func matchTries(qt *queryTrie, ixn trieRef, cands *graph.IDSet) (bool, error) {
	for l, qc := range qt.children {
		ic, ok, err := ixn.child(l)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
		ids, counts := ic.postings()
		*cands = intersectDominating(*cands, ids, counts, qc.count)
		if len(*cands) == 0 {
			return false, nil
		}
		ok, err = matchTries(qc, ic, cands)
		if err != nil || !ok {
			return false, err
		}
	}
	return true, nil
}

// intersectDominating keeps the ids in cands whose count in the posting is
// >= need.
func intersectDominating(cands graph.IDSet, ids graph.IDSet, counts []int32, need int32) graph.IDSet {
	out := cands[:0]
	j := 0
	for _, id := range cands {
		for j < len(ids) && ids[j] < id {
			j++
		}
		if j < len(ids) && ids[j] == id && counts[j] >= need {
			out = append(out, id)
		}
	}
	return out
}

// SizeBytes implements core.Method. A lazily-opened index reports only
// the materialized nodes.
func (ix *Index) SizeBytes() int64 {
	if ix.lazy != nil {
		return ix.lazy.residentBytes()
	}
	var walk func(n *node) int64
	walk = func(n *node) int64 {
		sz := int64(len(n.ids))*4 + int64(len(n.counts))*4 + 64
		for _, c := range n.children {
			sz += 8 + walk(c)
		}
		return sz
	}
	if ix.root == nil {
		return 0
	}
	return walk(ix.root)
}

// NumNodes returns the number of trie nodes (excluding the root).
func (ix *Index) NumNodes() int {
	if ix.lazy != nil {
		return ix.lazy.nodeCount
	}
	var walk func(n *node) int
	walk = func(n *node) int {
		total := 0
		for _, c := range n.children {
			total += 1 + walk(c)
		}
		return total
	}
	if ix.root == nil {
		return 0
	}
	return walk(ix.root)
}
