package ggsx

import (
	"repro/internal/core"
	"repro/internal/engine"
)

func init() {
	engine.Register(engine.Descriptor{
		Name:    "ggsx",
		Display: "GGSX",
		Aliases: []string{"GraphGrepSX"},
		Help:    "exhaustive label-path suffix trie with per-graph occurrence counts",
		Fields: []engine.Field{
			{Name: "maxPathLen", Kind: engine.Int, Default: DefaultMaxPathLen, Help: "maximum path feature size in edges"},
		},
		Factory: func(p engine.Params) (core.Method, error) {
			return New(Options{MaxPathLen: p.Int("maxPathLen")}), nil
		},
	})
}
