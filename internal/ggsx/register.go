package ggsx

import (
	"repro/internal/core"
	"repro/internal/engine"
)

func init() {
	engine.Register(engine.Descriptor{
		Name:    "ggsx",
		Display: "GGSX",
		Aliases: []string{"GraphGrepSX"},
		Help:    "exhaustive label-path suffix trie with per-graph occurrence counts",
		Notes: "Reproduces GraphGrepSX (Bonnici et al., PRIB 2010). Like Grapes it enumerates all " +
			"label paths of up to `maxPathLen` edges (paper default 4), but stores only per-graph " +
			"occurrence counts — no locations — so the index is smaller and the build is serial. " +
			"Filtering keeps graphs whose counts dominate the query's on every path; verification is " +
			"plain VF2 over whole graphs.",
		Fields: []engine.Field{
			{Name: "maxPathLen", Kind: engine.Int, Default: DefaultMaxPathLen, Help: "maximum path feature size in edges"},
			{Name: "storage", Kind: engine.String, Default: core.StorageHeap, Runtime: true,
				Help: "how a restored index is held: heap (eager decode) or mmap (lazy, paged)"},
		},
		Factory: func(p engine.Params) (core.Method, error) {
			return New(Options{MaxPathLen: p.Int("maxPathLen"), Storage: p.String("storage")}), nil
		},
		Check: engine.CheckStorageField,
	})
}
