package ggsx

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/graph"
)

// nodeDTO is the serialized form of one trie node: depth-first flattened,
// children addressed by edge label.
type nodeDTO struct {
	Labels   []int32 // edge labels to children, parallel to Children
	Children []nodeDTO
	IDs      []int32
	Counts   []int32
}

// indexDTO is the serialized form of a GGSX index.
type indexDTO struct {
	MaxPathLen int
	NumGraphs  int
	Root       nodeDTO
}

func encodeNode(n *node) nodeDTO {
	dto := nodeDTO{
		IDs:    make([]int32, len(n.ids)),
		Counts: append([]int32(nil), n.counts...),
	}
	for i, id := range n.ids {
		dto.IDs[i] = int32(id)
	}
	for l, c := range n.children {
		dto.Labels = append(dto.Labels, int32(l))
		dto.Children = append(dto.Children, encodeNode(c))
	}
	return dto
}

func decodeNode(dto *nodeDTO) (*node, error) {
	if len(dto.Labels) != len(dto.Children) {
		return nil, fmt.Errorf("ggsx: corrupt trie node (label/child mismatch)")
	}
	if len(dto.IDs) != len(dto.Counts) {
		return nil, fmt.Errorf("ggsx: corrupt trie node (id/count mismatch)")
	}
	n := &node{
		children: make(map[graph.Label]*node, len(dto.Labels)),
		ids:      make(graph.IDSet, len(dto.IDs)),
		counts:   append([]int32(nil), dto.Counts...),
	}
	for i, id := range dto.IDs {
		n.ids[i] = graph.ID(id)
	}
	for i, l := range dto.Labels {
		c, err := decodeNode(&dto.Children[i])
		if err != nil {
			return nil, err
		}
		n.children[graph.Label(l)] = c
	}
	return n, nil
}

// SaveIndex implements core.Persistable.
func (ix *Index) SaveIndex(w io.Writer) error {
	if !ix.built {
		return fmt.Errorf("ggsx: save before Build")
	}
	if err := ix.materializeAll(); err != nil {
		return err
	}
	dto := indexDTO{
		MaxPathLen: ix.opts.MaxPathLen,
		NumGraphs:  ix.nGr,
		Root:       encodeNode(ix.root),
	}
	return gob.NewEncoder(w).Encode(&dto)
}

// LoadIndex implements core.Persistable.
func (ix *Index) LoadIndex(r io.Reader, ds *graph.Dataset) error {
	var dto indexDTO
	if err := gob.NewDecoder(r).Decode(&dto); err != nil {
		return fmt.Errorf("ggsx: load: %w", err)
	}
	if dto.NumGraphs != ds.Len() {
		return fmt.Errorf("ggsx: load: index covers %d graphs, dataset has %d", dto.NumGraphs, ds.Len())
	}
	root, err := decodeNode(&dto.Root)
	if err != nil {
		return err
	}
	ix.opts = Options{MaxPathLen: dto.MaxPathLen, Storage: ix.opts.Storage}
	ix.opts.fill()
	ix.root = root
	ix.lazy = nil
	ix.nGr = dto.NumGraphs
	ix.built = true
	return nil
}
