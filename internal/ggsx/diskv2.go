package ggsx

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"repro/internal/core"
	"repro/internal/diskfmt"
	"repro/internal/graph"
	"repro/internal/obs"
)

// repro-index v2 layout for GGSX. The trie is flattened post-order into
// one record stream: each node stores its roaring-compressed posting ids,
// parallel counts, and a label-sorted child table pointing at child record
// offsets. Children are written before parents, so every offset in a
// child table refers backwards and the root record — whose offset the
// meta section records — comes last. A query materializes exactly the
// nodes its query trie visits.
//
//	secTrieMeta  maxPathLen, numGraphs, nodeCount (excl. root), rootOff (4×u32)
//	secNodes     per node: card u32, nChildren u32, pLen u32,
//	             roaring ids [pLen], counts card×u32,
//	             children nChildren × {label u32, off u32}
const (
	secTrieMeta = 1
	secNodes    = 2
)

var (
	_ core.SectionPersistable = (*Index)(nil)
	_ core.StorageSelector    = (*Index)(nil)
	_ core.Warmable           = (*Index)(nil)
)

// StorageMode implements core.StorageSelector.
func (ix *Index) StorageMode() string {
	if ix.opts.Storage == core.StorageMmap {
		return core.StorageMmap
	}
	return core.StorageHeap
}

// SaveIndexV2 implements core.SectionPersistable.
func (ix *Index) SaveIndexV2(w *diskfmt.Writer) error {
	if !ix.built {
		return fmt.Errorf("ggsx: save before Build")
	}
	if err := ix.materializeAll(); err != nil {
		return err
	}
	var nodes []byte
	nodeCount := 0
	var emit func(n *node) uint32
	emit = func(n *node) uint32 {
		labels := make([]graph.Label, 0, len(n.children))
		for l := range n.children {
			labels = append(labels, l)
		}
		sort.Slice(labels, func(a, b int) bool { return labels[a] < labels[b] })
		childOffs := make([]uint32, len(labels))
		for i, l := range labels {
			childOffs[i] = emit(n.children[l])
			nodeCount++
		}
		off := uint32(len(nodes))
		ids := make([]uint32, len(n.ids))
		for i, id := range n.ids {
			ids[i] = uint32(id)
		}
		enc := diskfmt.EncodePostings(ids)
		nodes = binary.LittleEndian.AppendUint32(nodes, uint32(len(n.ids)))
		nodes = binary.LittleEndian.AppendUint32(nodes, uint32(len(labels)))
		nodes = binary.LittleEndian.AppendUint32(nodes, uint32(len(enc)))
		nodes = append(nodes, enc...)
		for _, c := range n.counts {
			nodes = binary.LittleEndian.AppendUint32(nodes, uint32(c))
		}
		for i, l := range labels {
			nodes = binary.LittleEndian.AppendUint32(nodes, uint32(l))
			nodes = binary.LittleEndian.AppendUint32(nodes, childOffs[i])
		}
		return off
	}
	rootOff := emit(ix.root)

	meta := binary.LittleEndian.AppendUint32(nil, uint32(ix.opts.MaxPathLen))
	meta = binary.LittleEndian.AppendUint32(meta, uint32(ix.nGr))
	meta = binary.LittleEndian.AppendUint32(meta, uint32(nodeCount))
	meta = binary.LittleEndian.AppendUint32(meta, rootOff)
	w.AddSection(secTrieMeta, meta)
	w.AddSection(secNodes, nodes)
	return nil
}

// LoadIndexV2 implements core.SectionPersistable. storage=heap decodes
// the whole trie eagerly; storage=mmap touches only the meta section and
// resolves trie nodes on demand, taking ownership of the reader.
func (ix *Index) LoadIndexV2(r *diskfmt.Reader, ds *graph.Dataset) error {
	meta, err := r.Section(secTrieMeta)
	if err != nil {
		return fmt.Errorf("ggsx: load v2: %w", err)
	}
	if len(meta) != 16 {
		return fmt.Errorf("ggsx: load v2: meta section of %d bytes", len(meta))
	}
	numGraphs := int(binary.LittleEndian.Uint32(meta[4:]))
	if numGraphs != ds.Len() {
		return fmt.Errorf("ggsx: load v2: index covers %d graphs, dataset has %d", numGraphs, ds.Len())
	}
	storage := ix.opts.Storage
	ix.opts = Options{MaxPathLen: int(binary.LittleEndian.Uint32(meta)), Storage: storage}
	ix.opts.fill()
	lz := &lazyTrie{
		r:         r,
		nodeCount: int(binary.LittleEndian.Uint32(meta[8:])),
		rootOff:   binary.LittleEndian.Uint32(meta[12:]),
		nodes:     make(map[uint32]*lnode),
	}

	if ix.StorageMode() == core.StorageMmap {
		ix.root = nil
		ix.lazy = lz
		ix.nGr = numGraphs
		ix.built = true
		return nil
	}

	if err := r.VerifySection(secNodes); err != nil {
		return fmt.Errorf("ggsx: load v2: %w", err)
	}
	root, err := lz.decodeSubtree(lz.rootOff, 0)
	if err != nil {
		return fmt.Errorf("ggsx: load v2: %w", err)
	}
	ix.root = root
	ix.lazy = nil
	ix.nGr = numGraphs
	ix.built = true
	return nil
}

// WarmIndex implements core.Warmable: resolve the root record so the
// first query starts from a warm trie top. Child subtrees stay lazy.
func (ix *Index) WarmIndex() {
	if lz := ix.lazy; lz != nil {
		lz.node(lz.rootOff)
	}
}

// materializeAll decodes the whole trie into heap nodes and releases the
// mapping; mutations splice heap structures and require it.
func (ix *Index) materializeAll() error {
	lz := ix.lazy
	if lz == nil {
		return nil
	}
	root, err := lz.decodeSubtree(lz.rootOff, 0)
	if err != nil {
		return fmt.Errorf("ggsx: materialize: %w", err)
	}
	ix.root = root
	ix.lazy = nil
	obs.IndexResidentSet("GGSX", core.StorageMmap, 0)
	return lz.r.Close()
}

// lnode is a materialized lazy trie node: postings plus child offsets.
type lnode struct {
	ids      graph.IDSet
	counts   []int32
	children map[graph.Label]uint32
}

// lazyTrie resolves trie node records on demand from the mapped nodes
// section, caching materialized nodes by offset.
type lazyTrie struct {
	r         *diskfmt.Reader
	rootOff   uint32
	nodeCount int

	mu       sync.RWMutex
	raw      []byte // secNodes, fetched lazily (unverified: decode bounds-checks)
	nodes    map[uint32]*lnode
	resident int64
}

func (lz *lazyTrie) section() ([]byte, error) {
	if lz.raw != nil {
		return lz.raw, nil
	}
	b, err := lz.r.SectionLazy(secNodes)
	if err != nil {
		return nil, err
	}
	lz.raw = b
	return b, nil
}

// node materializes (and caches) the record at off.
func (lz *lazyTrie) node(off uint32) (*lnode, error) {
	lz.mu.RLock()
	n, ok := lz.nodes[off]
	lz.mu.RUnlock()
	if ok {
		return n, nil
	}
	lz.mu.Lock()
	defer lz.mu.Unlock()
	if n, ok = lz.nodes[off]; ok {
		return n, nil
	}
	n, size, err := lz.decodeNode(off)
	if err != nil {
		return nil, err
	}
	lz.nodes[off] = n
	delta := int64(len(n.ids))*8 + int64(len(n.children))*16 + 64
	lz.resident += delta
	obs.IndexLazyLoadInc("GGSX")
	obs.IndexResidentAdd("GGSX", core.StorageMmap, delta)
	_ = size
	return n, nil
}

// decodeNode decodes the single record at off. Callers hold lz.mu or run
// before the index is shared.
func (lz *lazyTrie) decodeNode(off uint32) (*lnode, int, error) {
	raw, err := lz.section()
	if err != nil {
		return nil, 0, err
	}
	if uint64(off)+12 > uint64(len(raw)) {
		return nil, 0, fmt.Errorf("ggsx: trie record at %d out of bounds", off)
	}
	card := binary.LittleEndian.Uint32(raw[off:])
	nCh := binary.LittleEndian.Uint32(raw[off+4:])
	pLen := binary.LittleEndian.Uint32(raw[off+8:])
	base := uint64(off) + 12
	end := base + uint64(pLen) + 4*uint64(card) + 8*uint64(nCh)
	if end > uint64(len(raw)) {
		return nil, 0, fmt.Errorf("ggsx: trie record at %d overruns section", off)
	}
	ps, err := diskfmt.MakePostings(raw[base : base+uint64(pLen)])
	if err != nil {
		return nil, 0, err
	}
	rawIDs := ps.Decode()
	if uint32(len(rawIDs)) != card {
		return nil, 0, fmt.Errorf("ggsx: trie record at %d holds %d ids, header says %d", off, len(rawIDs), card)
	}
	n := &lnode{
		ids:      make(graph.IDSet, card),
		counts:   make([]int32, card),
		children: make(map[graph.Label]uint32, nCh),
	}
	for i, v := range rawIDs {
		n.ids[i] = graph.ID(v)
	}
	countsAt := base + uint64(pLen)
	for i := uint32(0); i < card; i++ {
		n.counts[i] = int32(binary.LittleEndian.Uint32(raw[countsAt+4*uint64(i):]))
	}
	chAt := countsAt + 4*uint64(card)
	for i := uint32(0); i < nCh; i++ {
		l := graph.Label(binary.LittleEndian.Uint32(raw[chAt+8*uint64(i):]))
		cOff := binary.LittleEndian.Uint32(raw[chAt+8*uint64(i)+4:])
		if cOff >= off {
			return nil, 0, fmt.Errorf("ggsx: trie record at %d has forward child offset %d", off, cOff)
		}
		n.children[l] = cOff
	}
	return n, int(end - uint64(off)), nil
}

// decodeSubtree materializes the record at off and its whole subtree into
// heap nodes, depth-bounded against cycles (offsets strictly decrease, so
// depth > nodeCount is impossible in a well-formed file).
func (lz *lazyTrie) decodeSubtree(off uint32, depth int) (*node, error) {
	if depth > lz.nodeCount+1 {
		return nil, fmt.Errorf("ggsx: trie deeper than its %d recorded nodes", lz.nodeCount)
	}
	ln, _, err := lz.decodeNode(off)
	if err != nil {
		return nil, err
	}
	n := &node{
		children: make(map[graph.Label]*node, len(ln.children)),
		ids:      ln.ids,
		counts:   ln.counts,
	}
	for l, cOff := range ln.children {
		c, err := lz.decodeSubtree(cOff, depth+1)
		if err != nil {
			return nil, err
		}
		n.children[l] = c
	}
	return n, nil
}

// residentBytes estimates heap bytes pinned by materialized nodes.
func (lz *lazyTrie) residentBytes() int64 {
	lz.mu.RLock()
	defer lz.mu.RUnlock()
	return lz.resident
}

// trieRef is a resolved reference to one index trie node — a heap *node,
// or a materialized lazy record. The query path walks trieRefs so the
// same matching code serves both storage modes.
type trieRef struct {
	hn *node
	lz *lazyTrie
	ln *lnode
}

// rootRef resolves the trie root.
func (ix *Index) rootRef() (trieRef, error) {
	if ix.lazy != nil {
		ln, err := ix.lazy.node(ix.lazy.rootOff)
		if err != nil {
			return trieRef{}, err
		}
		return trieRef{lz: ix.lazy, ln: ln}, nil
	}
	return trieRef{hn: ix.root}, nil
}

// child resolves the edge labeled l, materializing the child in lazy mode.
func (t trieRef) child(l graph.Label) (trieRef, bool, error) {
	if t.hn != nil {
		c, ok := t.hn.children[l]
		return trieRef{hn: c}, ok, nil
	}
	off, ok := t.ln.children[l]
	if !ok {
		return trieRef{}, false, nil
	}
	ln, err := t.lz.node(off)
	if err != nil {
		return trieRef{}, false, err
	}
	return trieRef{lz: t.lz, ln: ln}, true, nil
}

// postings returns the node's sorted posting ids and parallel counts.
func (t trieRef) postings() (graph.IDSet, []int32) {
	if t.hn != nil {
		return t.hn.ids, t.hn.counts
	}
	return t.ln.ids, t.ln.counts
}
