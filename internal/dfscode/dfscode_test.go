package dfscode

import (
	"math/rand"
	"testing"

	"repro/internal/graph"
)

func path(labels ...graph.Label) *graph.Graph {
	g := graph.New(0)
	for _, l := range labels {
		g.AddVertex(l)
	}
	for i := 1; i < len(labels); i++ {
		g.MustAddEdge(int32(i-1), int32(i))
	}
	return g
}

func TestMinimumSingleEdge(t *testing.T) {
	g := path(2, 1)
	c := Minimum(g)
	if len(c) != 1 {
		t.Fatalf("code length %d", len(c))
	}
	// Smaller label first.
	if c[0].LI != 1 || c[0].LJ != 2 {
		t.Fatalf("code %v: want labels (1,2)", c[0])
	}
	if c[0].I != 0 || c[0].J != 1 {
		t.Fatalf("code %v: want indices (0,1)", c[0])
	}
}

func TestMinimumTriangle(t *testing.T) {
	g := path(1, 1, 1)
	g.MustAddEdge(2, 0)
	c := Minimum(g)
	if len(c) != 3 {
		t.Fatalf("code length %d", len(c))
	}
	// Triangle: (0,1)(1,2)(2,0); last edge backward.
	if c[0].Forward() != true || c[1].Forward() != true || c[2].Forward() != false {
		t.Fatalf("triangle structure wrong: %v", c)
	}
}

func TestCompareEntryOrder(t *testing.T) {
	// Backward edge from vertex 2 sorts before forward edge from vertex 2.
	back := Entry{I: 2, J: 0, LI: 1, LJ: 1}
	fwd := Entry{I: 2, J: 3, LI: 1, LJ: 1}
	if Compare(back, fwd) >= 0 {
		t.Errorf("backward should sort before forward from same vertex")
	}
	// Forward edge discovered earlier sorts first.
	f1 := Entry{I: 0, J: 1, LI: 1, LJ: 1}
	f2 := Entry{I: 1, J: 2, LI: 1, LJ: 1}
	if Compare(f1, f2) >= 0 {
		t.Errorf("earlier forward edge should sort first")
	}
	// Same structure: labels decide.
	a := Entry{I: 0, J: 1, LI: 1, LJ: 2}
	b := Entry{I: 0, J: 1, LI: 1, LJ: 3}
	if Compare(a, b) >= 0 {
		t.Errorf("smaller labels should sort first")
	}
	if Compare(a, a) != 0 {
		t.Errorf("entry not equal to itself")
	}
}

func permuteGraph(g *graph.Graph, rng *rand.Rand) *graph.Graph {
	n := g.NumVertices()
	perm := rng.Perm(n)
	inv := make([]int32, n)
	for newV, oldV := range perm {
		inv[oldV] = int32(newV)
	}
	labels := make([]graph.Label, n)
	for oldV := 0; oldV < n; oldV++ {
		labels[inv[oldV]] = g.Label(int32(oldV))
	}
	out := graph.New(0)
	for _, l := range labels {
		out.AddVertex(l)
	}
	for _, e := range g.Edges() {
		out.MustAddEdge(inv[e[0]], inv[e[1]])
	}
	return out
}

func randomConnected(rng *rand.Rand, n, extra, nlab int) *graph.Graph {
	g := graph.New(0)
	for i := 0; i < n; i++ {
		g.AddVertex(graph.Label(rng.Intn(nlab)))
	}
	for i := 1; i < n; i++ {
		g.MustAddEdge(int32(rng.Intn(i)), int32(i))
	}
	for k := 0; k < extra; k++ {
		u, v := int32(rng.Intn(n)), int32(rng.Intn(n))
		if u != v && !g.HasEdge(u, v) {
			g.MustAddEdge(u, v)
		}
	}
	return g
}

func TestMinimumInvariantUnderPermutation(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		g := randomConnected(rng, 2+rng.Intn(6), rng.Intn(5), 1+rng.Intn(3))
		c1 := Minimum(g)
		c2 := Minimum(permuteGraph(g, rng))
		if CompareCodes(c1, c2) != 0 {
			t.Fatalf("trial %d: canonical codes differ\n%v\n%v", trial, c1, c2)
		}
	}
}

func TestGraphRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 60; trial++ {
		g := randomConnected(rng, 2+rng.Intn(6), rng.Intn(4), 2)
		c := Minimum(g)
		h := c.Graph()
		if h.NumVertices() != g.NumVertices() || h.NumEdges() != g.NumEdges() {
			t.Fatalf("round-trip changed size")
		}
		// Canonical code of the reconstruction must match.
		if CompareCodes(Minimum(h), c) != 0 {
			t.Fatalf("round-trip changed canonical code")
		}
	}
}

func TestIsMinimal(t *testing.T) {
	// Minimum code is minimal.
	g := randomConnected(rand.New(rand.NewSource(8)), 5, 3, 2)
	c := Minimum(g)
	if !IsMinimal(c) {
		t.Fatalf("Minimum produced non-minimal code")
	}
	// A deliberately non-canonical code for a labelled path 0-1-2 with
	// labels 3,1,2: starting from the larger end.
	bad := Code{
		{I: 0, J: 1, LI: 3, LJ: 1},
		{I: 1, J: 2, LI: 1, LJ: 2},
	}
	if IsMinimal(bad) {
		t.Fatalf("non-canonical code accepted as minimal")
	}
	if !IsMinimal(Code{}) {
		t.Fatalf("empty code should be minimal")
	}
}

func TestKeyUniqueness(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	keys := map[string]Code{}
	for trial := 0; trial < 60; trial++ {
		g := randomConnected(rng, 2+rng.Intn(5), rng.Intn(4), 2)
		c := Minimum(g)
		k := c.Key()
		if prev, ok := keys[k]; ok {
			if CompareCodes(prev, c) != 0 {
				t.Fatalf("key collision between distinct codes")
			}
		}
		keys[k] = c
	}
}

func TestNumVertices(t *testing.T) {
	c := Code{{I: 0, J: 1}, {I: 1, J: 2}, {I: 2, J: 0}}
	if c.NumVertices() != 3 {
		t.Fatalf("NumVertices = %d", c.NumVertices())
	}
	if (Code{}).NumVertices() != 0 {
		t.Fatalf("empty code has vertices")
	}
}

func TestMinimumPanicsOnBadInput(t *testing.T) {
	assertPanics := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: want panic", name)
			}
		}()
		f()
	}
	assertPanics("no edges", func() {
		g := graph.New(0)
		g.AddVertex(1)
		Minimum(g)
	})
	assertPanics("disconnected", func() {
		g := graph.New(0)
		g.AddVertex(1)
		g.AddVertex(1)
		g.AddVertex(1)
		g.AddVertex(1)
		g.MustAddEdge(0, 1)
		g.MustAddEdge(2, 3)
		Minimum(g)
	})
}
