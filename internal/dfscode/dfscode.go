// Package dfscode implements gSpan-style DFS codes for connected
// vertex-labelled undirected graphs: code comparison, minimum (canonical)
// code computation, and reconstruction of the pattern graph encoded by a
// code. It is the foundation of the gIndex frequent-subgraph miner and of
// graph canonical labels.
//
// A DFS code is the edge sequence of a depth-first traversal. Each entry is
// (i, j, li, lj) where i and j are discovery indices and li/lj the vertex
// labels; i < j marks a forward (tree) edge, i > j a backward edge. The
// gSpan linear order on entries makes the lexicographically smallest code of
// a graph a canonical form.
package dfscode

import (
	"encoding/binary"
	"fmt"

	"repro/internal/graph"
)

// Entry is one edge of a DFS code.
type Entry struct {
	I, J   int32
	LI, LJ graph.Label
}

// Forward reports whether the entry is a forward (tree) edge.
func (e Entry) Forward() bool { return e.I < e.J }

func (e Entry) String() string {
	return fmt.Sprintf("(%d,%d,%d,%d)", e.I, e.J, e.LI, e.LJ)
}

// Compare returns -1, 0, or +1 ordering entries by the gSpan DFS-code
// relation (structure first, then labels).
func Compare(a, b Entry) int {
	af, bf := a.Forward(), b.Forward()
	switch {
	case !af && !bf: // both backward
		if a.I != b.I {
			return cmpInt32(a.I, b.I)
		}
		if a.J != b.J {
			return cmpInt32(a.J, b.J)
		}
	case af && bf: // both forward
		if a.J != b.J {
			return cmpInt32(a.J, b.J)
		}
		if a.I != b.I {
			return cmpInt32(b.I, a.I) // larger source first
		}
	case !af && bf: // backward vs forward
		if a.I < b.J {
			return -1
		}
		return 1
	default: // forward vs backward
		if a.J <= b.I {
			return -1
		}
		return 1
	}
	// Same structural position: compare labels.
	if a.LI != b.LI {
		return cmpLabel(a.LI, b.LI)
	}
	return cmpLabel(a.LJ, b.LJ)
}

func cmpInt32(a, b int32) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpLabel(a, b graph.Label) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// Code is a DFS code: a sequence of entries.
type Code []Entry

// CompareCodes orders codes lexicographically by Compare; a proper prefix
// sorts before its extensions.
func CompareCodes(a, b Code) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	}
	return 0
}

// NumVertices returns the number of pattern vertices spanned by the code.
func (c Code) NumVertices() int {
	max := int32(-1)
	for _, e := range c {
		if e.I > max {
			max = e.I
		}
		if e.J > max {
			max = e.J
		}
	}
	return int(max + 1)
}

// Graph reconstructs the pattern graph encoded by the code.
func (c Code) Graph() *graph.Graph {
	n := c.NumVertices()
	labels := make([]graph.Label, n)
	for _, e := range c {
		labels[e.I] = e.LI
		labels[e.J] = e.LJ
	}
	g := graph.NewWithCapacity(0, n)
	for _, l := range labels {
		g.AddVertex(l)
	}
	for _, e := range c {
		g.MustAddEdge(e.I, e.J)
	}
	return g
}

// Key returns a compact byte-string encoding of the code, usable as a map
// key or trie path.
func (c Code) Key() string {
	buf := make([]byte, 0, len(c)*10)
	var tmp [10]byte
	for _, e := range c {
		binary.LittleEndian.PutUint16(tmp[0:], uint16(e.I))
		binary.LittleEndian.PutUint16(tmp[2:], uint16(e.J))
		binary.LittleEndian.PutUint32(tmp[4:], uint32(e.LI))
		// LJ packed in 2 bytes is unsafe for large label spaces; use 4+2
		// split only if labels fit. Keep it simple and safe: 2 bytes is not
		// enough, so spend the full 4.
		buf = append(buf, tmp[:8]...)
		binary.LittleEndian.PutUint32(tmp[0:], uint32(e.LJ))
		buf = append(buf, tmp[:4]...)
	}
	return string(buf)
}

// Clone returns a copy of the code.
func (c Code) Clone() Code { return append(Code(nil), c...) }

// rightmostPath returns the discovery indices on the rightmost path of the
// DFS tree of the code, from the rightmost vertex down to the root.
func (c Code) rightmostPath() []int32 {
	if len(c) == 0 {
		return nil
	}
	// Walk forward edges backwards from the rightmost vertex.
	rm := int32(0)
	for _, e := range c {
		if e.Forward() && e.J > rm {
			rm = e.J
		}
	}
	path := []int32{rm}
	cur := rm
	for cur != 0 {
		// Find the forward edge that discovered cur.
		parent := int32(-1)
		for _, e := range c {
			if e.Forward() && e.J == cur {
				parent = e.I
				break
			}
		}
		if parent < 0 {
			break
		}
		path = append(path, parent)
		cur = parent
	}
	return path
}

// minState is the working state of the Minimum search over one graph.
type minState struct {
	g        *graph.Graph
	edgeID   map[[2]int32]int
	used     []bool
	disc     []int32 // graph vertex -> discovery index, -1 if undiscovered
	vertexAt []int32 // discovery index -> graph vertex
	code     Code
	best     Code
	haveBest bool
}

// Minimum returns the minimum (canonical) DFS code of a connected graph with
// at least one edge. It panics if g is empty or disconnected, since DFS codes
// are defined for connected patterns only.
func Minimum(g *graph.Graph) Code {
	if g.NumEdges() == 0 {
		panic("dfscode: Minimum requires at least one edge")
	}
	if !g.IsConnected() {
		panic("dfscode: Minimum requires a connected graph")
	}
	s := &minState{
		g:      g,
		edgeID: make(map[[2]int32]int, g.NumEdges()),
		used:   make([]bool, g.NumEdges()),
		disc:   make([]int32, g.NumVertices()),
	}
	for i, e := range g.Edges() {
		s.edgeID[[2]int32{e[0], e[1]}] = i
		s.edgeID[[2]int32{e[1], e[0]}] = i
	}
	// Initial entries: the minimal (0,1,lu,lv) over all oriented edges.
	bestInit := Entry{}
	haveInit := false
	for _, e := range g.Edges() {
		for _, o := range [2][2]int32{{e[0], e[1]}, {e[1], e[0]}} {
			ent := Entry{I: 0, J: 1, LI: g.Label(o[0]), LJ: g.Label(o[1])}
			if !haveInit || Compare(ent, bestInit) < 0 {
				bestInit, haveInit = ent, true
			}
		}
	}
	for _, e := range g.Edges() {
		for _, o := range [2][2]int32{{e[0], e[1]}, {e[1], e[0]}} {
			ent := Entry{I: 0, J: 1, LI: g.Label(o[0]), LJ: g.Label(o[1])}
			if Compare(ent, bestInit) != 0 {
				continue
			}
			s.start(o[0], o[1], ent)
		}
	}
	return s.best
}

func (s *minState) start(u, v int32, ent Entry) {
	for i := range s.disc {
		s.disc[i] = -1
	}
	s.vertexAt = s.vertexAt[:0]
	s.disc[u] = 0
	s.disc[v] = 1
	s.vertexAt = append(s.vertexAt, u, v)
	eid := s.edgeID[[2]int32{u, v}]
	s.used[eid] = true
	s.code = append(s.code[:0], ent)
	s.search()
	s.used[eid] = false
}

// search extends s.code by the minimal candidate entries, branching on ties,
// until all edges are used; it updates s.best.
func (s *minState) search() {
	if len(s.code) == s.g.NumEdges() {
		if !s.haveBest || CompareCodes(s.code, s.best) < 0 {
			s.best = s.code.Clone()
			s.haveBest = true
		}
		return
	}
	// Prune: if the current partial code already exceeds best's prefix, stop.
	if s.haveBest {
		n := len(s.code)
		if c := CompareCodes(s.code, s.best[:n]); c > 0 {
			return
		}
	}
	type cand struct {
		ent      Entry
		from, to int32 // graph vertices
	}
	var cands []cand
	path := s.code.rightmostPath()
	rm := path[0]
	rmVertex := s.vertexAt[rm]
	// Backward edges from the rightmost vertex to rightmost-path vertices.
	for _, w := range s.g.Neighbors(rmVertex) {
		dw := s.disc[w]
		if dw < 0 || dw == rm {
			continue
		}
		if s.used[s.edgeID[[2]int32{rmVertex, w}]] {
			continue
		}
		onPath := false
		for _, p := range path {
			if p == dw {
				onPath = true
				break
			}
		}
		if !onPath {
			continue
		}
		cands = append(cands, cand{
			ent:  Entry{I: rm, J: dw, LI: s.g.Label(rmVertex), LJ: s.g.Label(w)},
			from: rmVertex, to: w,
		})
	}
	// Forward edges from any rightmost-path vertex to an undiscovered vertex.
	newIdx := int32(len(s.vertexAt))
	for _, p := range path {
		pv := s.vertexAt[p]
		for _, w := range s.g.Neighbors(pv) {
			if s.disc[w] >= 0 {
				continue
			}
			cands = append(cands, cand{
				ent:  Entry{I: p, J: newIdx, LI: s.g.Label(pv), LJ: s.g.Label(w)},
				from: pv, to: w,
			})
		}
	}
	if len(cands) == 0 {
		return // disconnected remainder: cannot happen for connected graphs
	}
	// Keep only the minimal entries; branch over ties.
	minEnt := cands[0].ent
	for _, c := range cands[1:] {
		if Compare(c.ent, minEnt) < 0 {
			minEnt = c.ent
		}
	}
	for _, c := range cands {
		if Compare(c.ent, minEnt) != 0 {
			continue
		}
		eid := s.edgeID[[2]int32{c.from, c.to}]
		if s.used[eid] {
			continue
		}
		s.used[eid] = true
		s.code = append(s.code, c.ent)
		forward := c.ent.Forward()
		if forward {
			s.disc[c.to] = newIdx
			s.vertexAt = append(s.vertexAt, c.to)
		}
		s.search()
		if forward {
			s.disc[c.to] = -1
			s.vertexAt = s.vertexAt[:len(s.vertexAt)-1]
		}
		s.code = s.code[:len(s.code)-1]
		s.used[eid] = false
	}
}

// IsMinimal reports whether c is the minimum DFS code of its pattern graph.
// gSpan uses this to discard duplicate enumeration states.
func IsMinimal(c Code) bool {
	if len(c) == 0 {
		return true
	}
	return CompareCodes(c, Minimum(c.Graph())) == 0
}
