// Package scan implements the paper's naive baseline: no index at all,
// every query is tested for subgraph isomorphism against every graph in the
// dataset. The introduction motivates the six indexing methods against
// exactly this method; the benchmark harness includes it so the speedups
// the indexes buy are visible in every figure. It is the baseline of the
// reproduced paper (Katsarou, Ntarmos, Triantafillou, PVLDB 2015);
// register.go exposes it to the engine registry as "noindex".
package scan

import (
	"context"
	"iter"

	"repro/internal/core"
	"repro/internal/graph"
)

// Index is the no-op "index" of the sequential-scan baseline.
type Index struct {
	n     int
	built bool
}

// New returns the baseline method.
func New() *Index { return &Index{} }

// Name implements core.Method.
func (ix *Index) Name() string { return "NoIndex" }

// Build implements core.Method; the scan baseline has no build work.
func (ix *Index) Build(ctx context.Context, ds *graph.Dataset) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	ix.n = ds.Len()
	ix.built = true
	return nil
}

// Candidates implements core.Method: every graph is a candidate, so the
// verification stage performs the full scan.
func (ix *Index) Candidates(q *graph.Graph) (graph.IDSet, error) {
	if !ix.built {
		return nil, core.ErrNotBuilt
	}
	return graph.UniverseIDSet(ix.n), nil
}

// SizeBytes implements core.Method: the baseline stores nothing.
func (ix *Index) SizeBytes() int64 { return 0 }

// chunkSize is the lazy producer's emission granularity: large enough to
// amortize per-chunk overhead, small enough that an early-terminated stream
// scans a sliver of the universe.
const chunkSize = 1024

var _ core.CandidateChunker = (*Index)(nil)

// CandidateChunks implements core.CandidateChunker: the candidate universe
// emitted as fixed-size ID ranges, materializing nothing up front.
func (ix *Index) CandidateChunks(q *graph.Graph) (iter.Seq[graph.IDSet], error) {
	if !ix.built {
		return nil, core.ErrNotBuilt
	}
	n := ix.n
	return func(yield func(graph.IDSet) bool) {
		for lo := 0; lo < n; lo += chunkSize {
			hi := min(lo+chunkSize, n)
			chunk := make(graph.IDSet, 0, hi-lo)
			for id := lo; id < hi; id++ {
				chunk = append(chunk, graph.ID(id))
			}
			if !yield(chunk) {
				return
			}
		}
	}, nil
}
