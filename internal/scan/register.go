package scan

import (
	"repro/internal/core"
	"repro/internal/engine"
)

func init() {
	engine.Register(engine.Descriptor{
		Name:    "noindex",
		Display: "NoIndex",
		Aliases: []string{"scan", "naive"},
		Help:    "no index at all: every query verified against every graph (the paper's baseline)",
		Notes: "The naive method of the paper's introduction: zero build cost, zero index size, and " +
			"every query pays a full VF2 scan of the dataset. Included so the speedup an index buys is " +
			"visible in every figure; select it explicitly (`-methods NoIndex`), it is not part of the " +
			"default six.",
		Factory: func(p engine.Params) (core.Method, error) {
			return New(), nil
		},
	})
}
