package scan

import (
	"repro/internal/core"
	"repro/internal/engine"
)

func init() {
	engine.Register(engine.Descriptor{
		Name:    "noindex",
		Display: "NoIndex",
		Aliases: []string{"scan", "naive"},
		Help:    "no index at all: every query verified against every graph (the paper's baseline)",
		Factory: func(p engine.Params) (core.Method, error) {
			return New(), nil
		},
	})
}
