package scan

import (
	"context"
	"testing"

	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/workload"
)

func TestScanIsExactGroundTruth(t *testing.T) {
	ds := gen.Synthetic(gen.SynthConfig{
		NumGraphs: 20, MeanNodes: 12, MeanDensity: 0.25, NumLabels: 3, Seed: 1,
	})
	ix := New()
	if err := ix.Build(context.Background(), ds); err != nil {
		t.Fatalf("Build: %v", err)
	}
	qs, err := workload.Generate(ds, workload.Config{NumQueries: 6, QueryEdges: 5, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	proc := core.NewProcessor(ix, ds)
	for i, q := range qs {
		res, err := proc.Query(q)
		if err != nil {
			t.Fatalf("query %d: %v", i, err)
		}
		if len(res.Candidates) != ds.Len() {
			t.Errorf("query %d: candidates = %d, want all %d", i, len(res.Candidates), ds.Len())
		}
		truth, err := core.BruteForceAnswers(context.Background(), ds, q)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Answers.Equal(truth) {
			t.Errorf("query %d: answers diverge from direct brute force", i)
		}
	}
	if ix.SizeBytes() != 0 {
		t.Errorf("baseline claims an index size")
	}
}

func TestScanUnbuiltAndCancel(t *testing.T) {
	ix := New()
	q := graph.New(0)
	q.AddVertex(1)
	if _, err := ix.Candidates(q); err == nil {
		t.Errorf("want error before Build")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := ix.Build(ctx, graph.NewDataset("x")); err == nil {
		t.Errorf("cancelled build should error")
	}
}
