package router

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/graph"
)

// TestExtractorUnseenLabel is the label-universe-growth regression: a
// label interned after the extractor snapshotted the dataset's frequency
// table (a mutation, or a query file with novel labels) must classify as
// the rarest class instead of indexing out of range.
func TestExtractorUnseenLabel(t *testing.T) {
	ds := gen.Synthetic(gen.SynthConfig{
		NumGraphs: 10, MeanNodes: 8, MeanDensity: 0.3, NumLabels: 3, Seed: 1,
	})
	ext := NewExtractor(ds)

	// Simulate a post-build intern: a label id past every frequency slot.
	fresh := graph.Label(int32(ds.MaxLabel()) + 7)
	q := graph.New(0)
	a := q.AddVertex(fresh)
	b := q.AddVertex(fresh)
	q.MustAddEdge(a, b)

	f := ext.Extract(q) // must not panic
	if f.MinLabelFreq != 0 {
		t.Errorf("unseen label MinLabelFreq = %v, want 0", f.MinLabelFreq)
	}
	if f.AvgLabelFreq != 0 {
		t.Errorf("unseen label AvgLabelFreq = %v, want 0", f.AvgLabelFreq)
	}
	if bkt := f.Bucket(); bkt.Rarity != 0 {
		t.Errorf("unseen label rarity class = %d, want 0 (rarest)", bkt.Rarity)
	}
	// Negative labels (never produced, but the table is indexed) are also
	// out of range, not a panic.
	if got := ext.labelFreq(graph.Label(-1)); got != 0 {
		t.Errorf("labelFreq(-1) = %v, want 0", got)
	}
}
