package router

import (
	"context"
	"errors"
	"strings"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
)

// DefaultMethods is the method set the router spec co-builds when none is
// given: the three cheapest stable builders, spanning the path-trie
// (Grapes, GGSX) and spectral-signature (gCode) filtering families the
// paper's winners alternate between.
const DefaultMethods = "grapes+ggsx+gcode"

func init() {
	engine.Register(engine.Descriptor{
		Name:    "router",
		Display: "router",
		Help:    "adaptive method router: co-builds several method indexes and routes each query to the predicted cheapest",
		Notes: "Operationalizes the paper's headline finding that no single method wins everywhere: " +
			"several method indexes are built concurrently over the same dataset, every query is " +
			"routed by a cheap feature vector (size, shape, label rarity) through a per-feature-bucket " +
			"cost model learned online from observed latencies, and the `race` policy runs the top two " +
			"predictions concurrently, cancelling the loser. Answers are identical to any single " +
			"method's — routing only moves latency. The spec is composite: construct it with " +
			"`engine.OpenAny` (or `-method router:...` on the CLIs), not `engine.New`. `methods` is a " +
			"'+'-separated list of registry names (per-method parameters keep their registry defaults).",
		Fields: []engine.Field{
			{Name: "methods", Kind: engine.String, Default: DefaultMethods,
				Help: "'+'-separated registry names of the methods to co-build (at least two)"},
			{Name: "policy", Kind: engine.String, Default: PolicyLearned,
				Help: "routing policy: static, learned, or race"},
			{Name: "epsilon", Kind: engine.Float, Default: 0.1,
				Help: "exploration rate of the learned policy, in [0, 1]"},
			{Name: "seed", Kind: engine.Int, Default: 1,
				Help: "exploration RNG seed (routing is reproducible for a fixed traffic order)"},
		},
		Factory: func(p engine.Params) (core.Method, error) {
			return nil, errors.New("router: not a single indexing method; open it with engine.OpenAny (or -method router:... on the CLIs)")
		},
		Check: func(p engine.Params) error {
			_, err := configFromParams(p)
			return err
		},
		OpenQuerier: func(ctx context.Context, ds *graph.Dataset, p engine.Params, oc engine.OpenConfig) (engine.Querier, error) {
			cfg, err := configFromParams(p)
			if err != nil {
				return nil, err
			}
			cfg.IndexPath = oc.IndexPath
			cfg.VerifyWorkers = oc.VerifyWorkers
			cfg.Shards = oc.Shards
			return Open(ctx, ds, cfg)
		},
	})
}

// configFromParams resolves the router's spec parameters into a Config,
// validating the method list and policy — ParseSpec runs this through the
// descriptor's Check hook, so an invalid composite spec fails at parse
// time like any other malformed spec.
func configFromParams(p engine.Params) (Config, error) {
	cfg := Config{
		Methods: strings.Split(p.String("methods"), "+"),
		Options: Options{
			Policy:  p.String("policy"),
			Epsilon: p.Float("epsilon"),
			Seed:    int64(p.Int("seed")),
		},
	}
	if _, err := resolveMethods(cfg.Methods); err != nil {
		return Config{}, err
	}
	cfg.Options.fill()
	if _, err := newPolicy(cfg.Options.Policy, cfg.Options.Epsilon); err != nil {
		return Config{}, err
	}
	return cfg, nil
}
