package router

import (
	"context"
	"errors"
	"fmt"
	"iter"
	"math/rand"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/obs"
)

// Options configures the routing layer of a Multi: which policy picks the
// serving method and how it explores.
type Options struct {
	// Policy is the routing policy name: static, learned, or race
	// (default learned).
	Policy string
	// Epsilon is the learned policy's exploration rate in [0, 1]; 0 means
	// purely greedy once warm. The router spec defaults it to 0.1.
	Epsilon float64
	// Seed seeds the exploration RNG, making routing reproducible for a
	// fixed traffic order.
	Seed int64
	// Registry hosts the cost model's latency histograms (the
	// sq_router_latency_seconds family). Pass the serving process's
	// registry so /metrics exposes the cells routing runs on; nil keeps
	// the model on a private registry.
	Registry *obs.Registry
}

func (o *Options) fill() {
	if o.Policy == "" {
		o.Policy = PolicyLearned
	}
}

// Config configures Open: the method set to co-build plus the engine
// lifecycle options each sub-engine opens with.
type Config struct {
	// Methods are the registry names (or aliases) of the methods to
	// co-build; at least two.
	Methods []string
	Options
	// IndexPath is the persistence base: each method's index persists at
	// MethodIndexPath(IndexPath, name) under a manifest at IndexPath, and
	// the learned cost model at ModelPath(IndexPath) restores warm routing
	// state across restarts ("" = no persistence).
	IndexPath string
	// VerifyWorkers is each sub-engine's per-query verification parallelism
	// (0 = GOMAXPROCS).
	VerifyWorkers int
	// Shards > 1 opens every sub-engine sharded with that many shards.
	Shards int
}

// Sub pairs a method name with an already-opened engine over the router's
// dataset; New composes a Multi from them. Open is the usual entry point —
// New exists for callers that already hold built engines (the bench
// harness builds each method once and shares it across policy variants).
type Sub struct {
	// Name is the method's registry name or alias.
	Name string
	// Engine serves the method's queries; it must be opened over the same
	// dataset the Multi routes for.
	Engine engine.Querier
}

// Multi is the adaptive method router: an engine.Querier over several
// co-built method indexes on one dataset. Per query it extracts a cheap
// feature vector, routes to the method its policy predicts cheapest, and
// observes the served latency to sharpen future predictions. Because every
// method returns the exact answer set, Multi's answers are identical to
// any single-method engine's — routing only moves latency.
//
// Multi is safe for concurrent queries.
type Multi struct {
	// mutMu serializes dataset mutations (write side) against routed
	// queries (read side): a mutation must not move the shared dataset or
	// the sub-indexes under an in-flight query.
	mutMu    sync.RWMutex
	ds       *graph.Dataset
	names    []string // canonical registry names
	displays []string // figure-legend names, parallel to names
	subs     []engine.Querier
	ext      *Extractor
	pol      policy
	mdl      *model

	indexPath string // persistence base from Open ("" = none)
	build     core.BuildStats
	restored  int // sub-engines restored from disk (Open only)

	rngMu sync.Mutex
	rng   *rand.Rand

	statsMu  sync.Mutex
	queries  int64
	streams  int64
	raced    int64
	explored int64
	routed   []int64 // per sub: chosen to run (race counts both contenders)
	won      []int64 // per sub: result served
}

var _ engine.Querier = (*Multi)(nil)

// New composes a Multi from already-opened engines. Names resolve through
// the registry (aliases and case-insensitive spellings accepted) and must
// be distinct; at least two subs are required — routing over one method is
// just that method.
func New(ds *graph.Dataset, subs []Sub, opts Options) (*Multi, error) {
	if ds == nil {
		return nil, errors.New("router: nil dataset")
	}
	if len(subs) < 2 {
		return nil, fmt.Errorf("router: %d method(s); routing needs at least two", len(subs))
	}
	opts.fill()
	pol, err := newPolicy(opts.Policy, opts.Epsilon)
	if err != nil {
		return nil, err
	}
	m := &Multi{
		ds:     ds,
		ext:    NewExtractor(ds),
		pol:    pol,
		mdl:    newModel(opts.Registry),
		rng:    rand.New(rand.NewSource(opts.Seed)),
		routed: make([]int64, len(subs)),
		won:    make([]int64, len(subs)),
	}
	seen := make(map[string]bool, len(subs))
	for _, sub := range subs {
		d, ok := engine.Lookup(sub.Name)
		if !ok {
			return nil, fmt.Errorf("router: unknown method %q in method list", sub.Name)
		}
		if d.OpenQuerier != nil {
			return nil, fmt.Errorf("router: method list cannot nest composite method %q", d.Name)
		}
		if seen[d.Name] {
			return nil, fmt.Errorf("router: method %q listed twice", d.Name)
		}
		seen[d.Name] = true
		if sub.Engine == nil {
			return nil, fmt.Errorf("router: method %q has no engine", d.Name)
		}
		m.names = append(m.names, d.Name)
		m.displays = append(m.displays, displayOf(sub.Engine, d.Display))
		m.subs = append(m.subs, sub.Engine)
	}
	return m, nil
}

// displayOf returns the spelling the engine's results carry in
// QueryResult.Method, so stats attribution matches response attribution
// exactly: an Engine's results use its method's figure-legend Name, a
// Sharded engine's its own Name; anything else falls back to the registry
// display.
func displayOf(q engine.Querier, fallback string) string {
	switch e := q.(type) {
	case interface{ Method() core.Method }:
		return e.Method().Name()
	case interface{ Name() string }:
		return e.Name()
	}
	return fallback
}

// buildInfo is the construction-reporting surface Engine and Sharded share.
type buildInfo interface {
	BuildStats() core.BuildStats
	Restored() bool
}

// indexSize reads a sub-engine's in-memory index size: an Engine's through
// its method, a Sharded engine's directly.
func indexSize(q engine.Querier) int64 {
	switch e := q.(type) {
	case interface{ Method() core.Method }:
		return e.Method().SizeBytes()
	case interface{ SizeBytes() int64 }:
		return e.SizeBytes()
	}
	return 0
}

// Open co-builds (or restores) one index per configured method over ds —
// concurrently, on a pool bounded by GOMAXPROCS — and returns the routing
// engine over them. With cfg.IndexPath, each method persists independently
// at MethodIndexPath(base, name) under a manifest at base (the multi-index
// analogue of the sharded layout), and the learned cost model restores from
// ModelPath(base) so routing starts warm; a manifest that does not match
// the dataset, method set, or shard count invalidates everything.
func Open(ctx context.Context, ds *graph.Dataset, cfg Config) (*Multi, error) {
	if ds == nil {
		return nil, errors.New("router: nil dataset")
	}
	names, err := resolveMethods(cfg.Methods)
	if err != nil {
		return nil, err
	}
	manifestOK := false
	if cfg.IndexPath != "" {
		if manifestOK, err = manifestMatches(cfg.IndexPath, names, ds, cfg.Shards); err != nil {
			return nil, err
		}
		if !manifestOK {
			// Same policy as the sharded manifest: a mismatch invalidates
			// every per-method file, so an index persisted for a different
			// dataset or method set can never restore silently.
			removeStale(cfg.IndexPath, names)
		}
	}

	subs := make([]Sub, len(names))
	t0 := time.Now()
	err = engine.ForEachBounded(ctx, len(names), runtime.GOMAXPROCS(0), func(ctx context.Context, i int) error {
		opts := []engine.Option{engine.WithSpec(names[i])}
		if cfg.VerifyWorkers > 0 {
			opts = append(opts, engine.WithVerifyWorkers(cfg.VerifyWorkers))
		}
		if cfg.IndexPath != "" {
			opts = append(opts, engine.WithIndexPath(MethodIndexPath(cfg.IndexPath, names[i])))
		}
		var q engine.Querier
		var oerr error
		if cfg.Shards > 1 {
			q, oerr = engine.OpenSharded(ctx, ds, cfg.Shards, opts...)
		} else {
			q, oerr = engine.Open(ctx, ds, opts...)
		}
		if oerr != nil {
			return fmt.Errorf("router: opening %s: %w", names[i], oerr)
		}
		subs[i] = Sub{Name: names[i], Engine: q}
		return nil
	})
	buildWall := time.Since(t0)
	if err != nil {
		return nil, err
	}
	m, err := New(ds, subs, cfg.Options)
	if err != nil {
		return nil, err
	}
	m.indexPath = cfg.IndexPath
	built := false
	for _, sub := range m.subs {
		bi, ok := sub.(buildInfo)
		if !ok {
			continue
		}
		// Size comes from the live index, not the build stats, which are
		// zero-valued for a restored engine.
		m.build.SizeBytes += indexSize(sub)
		m.build.Features += bi.BuildStats().Features
		if bi.Restored() {
			m.restored++
		} else {
			built = true
		}
	}
	if built {
		m.build.Elapsed = buildWall
	}
	if cfg.IndexPath != "" {
		if !manifestOK {
			if err := writeManifest(cfg.IndexPath, names, ds, cfg.Shards); err != nil {
				return nil, err
			}
		}
		// A warm cost model is an optimization, never a correctness input:
		// a missing or corrupt file just means routing starts cold.
		m.loadModel(ModelPath(cfg.IndexPath))
	}
	return m, nil
}

// resolveMethods canonicalizes and validates a method name list.
func resolveMethods(methods []string) ([]string, error) {
	if len(methods) < 2 {
		return nil, fmt.Errorf("router: %d method(s); routing needs at least two", len(methods))
	}
	names := make([]string, 0, len(methods))
	seen := make(map[string]bool, len(methods))
	for _, name := range methods {
		d, ok := engine.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("router: unknown method %q in method list (registered: %s)",
				name, methodsHint())
		}
		if d.OpenQuerier != nil {
			return nil, fmt.Errorf("router: method list cannot nest composite method %q", d.Name)
		}
		if seen[d.Name] {
			return nil, fmt.Errorf("router: method %q listed twice", d.Name)
		}
		seen[d.Name] = true
		names = append(names, d.Name)
	}
	return names, nil
}

// methodsHint lists the registry's routable (non-composite) methods.
func methodsHint() string {
	var names []string
	for _, d := range engine.Descriptors() {
		if d.OpenQuerier == nil {
			names = append(names, d.Name)
		}
	}
	return strings.Join(names, ", ")
}

// Dataset returns the dataset queries are routed over.
func (m *Multi) Dataset() *graph.Dataset { return m.ds }

// Ready reports whether every routed sub-engine is ready to serve: false
// while any sub-engine's lazily-opened (storage=mmap) index is still
// materializing its first-touch sections. The serving layer's /readyz
// forwards to it through the cache wrapper.
func (m *Multi) Ready() bool {
	for _, s := range m.subs {
		if r, ok := s.(interface{ Ready() bool }); ok && !r.Ready() {
			return false
		}
	}
	return true
}

// Methods returns the canonical registry names of the routed methods, in
// configuration order.
func (m *Multi) Methods() []string { return append([]string(nil), m.names...) }

// Policy returns the routing policy name.
func (m *Multi) Policy() string { return m.pol.name() }

// Instrument exposes the learned cost model's latency family on reg: the
// serving layer's /metrics then serves the very cells routing runs on —
// one histogram-with-EWMA per (feature bucket, method) — rather than a
// copy. A router built with Options.Registry already shares; this is for
// routers built before the serving registry existed.
func (m *Multi) Instrument(reg *obs.Registry) { reg.Adopt(m.mdl.fam) }

// BuildStats reports aggregate index construction across the sub-engines
// (Open only; New composes engines it did not build, reporting zeros).
func (m *Multi) BuildStats() core.BuildStats { return m.build }

// RestoredMethods returns how many sub-engines Open restored from disk
// rather than built.
func (m *Multi) RestoredMethods() int { return m.restored }

// Extract computes the routing feature vector of q against the dataset's
// label statistics — exported so benchmarks and tests can inspect what the
// router keys on. Mutations refresh those statistics, so the vector always
// reflects the live dataset.
func (m *Multi) Extract(q *graph.Graph) Features {
	m.mutMu.RLock()
	defer m.mutMu.RUnlock()
	return m.ext.Extract(q)
}

// choose runs the policy under the RNG lock and returns the picked
// sub-engine indexes plus whether the front pick was exploratory.
func (m *Multi) choose(f Features) ([]int, bool) {
	m.rngMu.Lock()
	defer m.rngMu.Unlock()
	return m.pol.picks(f, m.names, m.mdl, m.rng)
}

// Query routes one query to the policy's predicted-cheapest method (or
// races the top two) and returns that engine's result, observing the served
// latency into the cost model. The result's Method field names the method
// that actually served it.
func (m *Multi) Query(ctx context.Context, q *graph.Graph) (*core.QueryResult, error) {
	m.mutMu.RLock()
	defer m.mutMu.RUnlock()
	_, rsp := obs.StartSpan(ctx, "route")
	f := m.ext.Extract(q)
	picks, explored := m.choose(f)
	rsp.Attr("bucket", f.Bucket().String())
	rsp.Attr("method", m.names[picks[0]])
	if explored {
		rsp.Attr("explored", true)
	}
	if len(picks) >= 2 {
		rsp.Attr("raced", m.names[picks[1]])
	}
	rsp.End()
	if len(picks) >= 2 {
		return m.race(ctx, q, f, picks[0], picks[1], explored)
	}
	i := picks[0]
	res, err := m.subs[i].Query(ctx, q)
	if err != nil {
		return nil, err
	}
	m.mdl.observe(f.Bucket(), m.names[i], res.TotalTime().Seconds())
	m.statsMu.Lock()
	m.queries++
	m.routed[i]++
	m.won[i]++
	if explored {
		m.explored++
	}
	m.statsMu.Unlock()
	return res, nil
}

// race runs the query on sub-engines a and b concurrently and serves the
// first successful result, cancelling the loser. The winner's latency is
// observed directly; the loser's is censored by the cancellation, so it is
// recorded at the winner's latency — the tightest known lower bound.
// Without that floor a method that keeps losing races would sit below the
// cold threshold forever, pinning the forced-warmup path (and the explored
// counter) for the lifetime of the process; with it, raced cells warm
// within a few queries and any optimism is self-correcting, since a
// too-cheap estimate just keeps the method in the race until real wins or
// losses move it.
func (m *Multi) race(ctx context.Context, q *graph.Graph, f Features, a, b int, explored bool) (*core.QueryResult, error) {
	rctx, cancel := context.WithCancel(ctx)
	defer cancel()
	type outcome struct {
		i   int
		res *core.QueryResult
		err error
	}
	ch := make(chan outcome, 2)
	for _, i := range []int{a, b} {
		go func(i int) {
			res, err := m.subs[i].Query(rctx, q)
			ch <- outcome{i: i, res: res, err: err}
		}(i)
	}
	var firstErr error
	var won *outcome
	for k := 0; k < 2; k++ {
		o := <-ch
		if o.err != nil {
			if firstErr == nil {
				firstErr = o.err
			}
			continue
		}
		if won == nil {
			won = &o
			cancel() // stop the loser; the next loop round reaps it
		}
	}
	// Both goroutines have been joined before returning: the caller holds
	// the router's mutation read-lock for exactly the duration of the
	// race, so a dataset mutation can never overlap a straggling loser.
	// The loser aborts at its next cancellation check, so the join costs
	// little beyond the winner's latency.
	if won == nil {
		return nil, firstErr
	}
	o := *won
	seconds := o.res.TotalTime().Seconds()
	m.mdl.observe(f.Bucket(), m.names[o.i], seconds)
	loser := a
	if o.i == a {
		loser = b
	}
	m.mdl.observe(f.Bucket(), m.names[loser], seconds)
	m.statsMu.Lock()
	m.queries++
	m.raced++
	m.routed[a]++
	m.routed[b]++
	m.won[o.i]++
	if explored {
		m.explored++
	}
	m.statsMu.Unlock()
	return o.res, nil
}

// QueryBatch processes a workload concurrently on the shared batch pool,
// routing each query individually, with the same semantics as the other
// engines' QueryBatch.
func (m *Multi) QueryBatch(ctx context.Context, queries []*graph.Graph, opts core.BatchOptions) ([]core.BatchResult, error) {
	return core.QueryBatchFunc(ctx, queries, opts, m.Query)
}

// Stream routes the query like Query (the race policy streams its top
// prediction — racing two streams would double-verify every candidate) and
// yields the chosen engine's answer stream. Streamed queries update the
// routing counters but not the cost model: a client may abandon the stream
// mid-way, so its wall time is not a comparable latency observation.
//
// The router's mutation lock is held only for the routing decision, not
// across the yielded stream: the sub-engines stream under their own
// epoch-checked chunked locking, so a slow consumer never stalls mutations
// and a mutation landing mid-stream surfaces as the sub-engine's
// engine.ErrStreamStale-wrapped abort.
func (m *Multi) Stream(ctx context.Context, q *graph.Graph) iter.Seq2[graph.ID, error] {
	return m.StreamStats(ctx, q, nil)
}

// StreamStats implements engine.StatsStreamer: Stream with pipeline
// counters accumulated into stats (nil = no accounting). Sub-engines that
// do not expose stats stream without accounting.
func (m *Multi) StreamStats(ctx context.Context, q *graph.Graph, stats *core.PipelineStats) iter.Seq2[graph.ID, error] {
	return func(yield func(graph.ID, error) bool) {
		m.mutMu.RLock()
		f := m.ext.Extract(q)
		picks, _ := m.choose(f)
		i := picks[0]
		m.mutMu.RUnlock()
		m.statsMu.Lock()
		m.streams++
		m.routed[i]++
		m.won[i]++
		m.statsMu.Unlock()
		var seq iter.Seq2[graph.ID, error]
		if ss, ok := m.subs[i].(engine.StatsStreamer); ok && stats != nil {
			seq = ss.StreamStats(ctx, q, stats)
		} else {
			seq = m.subs[i].Stream(ctx, q)
		}
		for id, err := range seq {
			if !yield(id, err) {
				return
			}
		}
	}
}
