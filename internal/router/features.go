// Package router is the adaptive decision-making layer above the engine
// stack: a Multi engine that co-builds several method indexes over one
// dataset and routes every query to the method predicted cheapest for it.
//
// The paper's headline finding is that no single indexed subgraph query
// method wins everywhere — the best method flips with dataset density,
// label distribution, and query size and shape. Multi operationalizes that
// conclusion: per query it extracts a cheap structural feature vector,
// consults a per-feature-bucket cost model learned online from observed
// latencies (falling back to static heuristics distilled from the paper's
// figures while a bucket is cold), and serves the query through the chosen
// method's index. A race policy runs the top two predictions concurrently
// and cancels the loser. Because every method's filter-and-verify pipeline
// returns the exact answer set, routing never changes answers — only
// latency.
package router

import (
	"fmt"

	"repro/internal/graph"
)

// Shape classifies a query's structure — the paper's figure 4 analysis
// shows query shape (paths vs trees vs cyclic subgraphs) shifting which
// method's features filter best.
type Shape int8

// Query shapes, from most to least restricted.
const (
	// ShapePath: every component is a simple path (max degree <= 2, no
	// cycles).
	ShapePath Shape = iota
	// ShapeTree: acyclic but not all paths (some vertex branches).
	ShapeTree
	// ShapeCyclic: at least one cycle somewhere.
	ShapeCyclic
)

func (s Shape) String() string {
	switch s {
	case ShapePath:
		return "path"
	case ShapeTree:
		return "tree"
	case ShapeCyclic:
		return "cyclic"
	}
	return fmt.Sprintf("Shape(%d)", int8(s))
}

// Features is the cheap per-query feature vector routing keys on. Every
// field is computable in one pass over the query graph plus O(1) lookups
// into the dataset label-frequency table — far below the cost of even the
// cheapest filter stage.
type Features struct {
	Vertices   int
	Edges      int
	Components int
	// Cyclomatic is the cycle-space dimension |E| - |V| + components: 0 for
	// forests, >= 1 as soon as any cycle exists.
	Cyclomatic int
	MaxDegree  int
	Shape      Shape
	// MinLabelFreq is the dataset frequency (fraction of dataset graphs
	// containing the label) of the query's rarest label. A rare label means
	// every method's candidate set is small, so the cheapest filter wins.
	MinLabelFreq float64
	// AvgLabelFreq is the mean dataset frequency over the query's vertices.
	AvgLabelFreq float64
}

// Extractor computes query features against one dataset's label
// statistics. It is safe for concurrent readers; the mutation hooks
// (observeAdd/observeRemove) must be serialized against readers by the
// owner — the router calls them under its mutation write lock.
type Extractor struct {
	freq   []float64 // label -> fraction of live dataset graphs containing it
	counts []int     // label -> live graphs containing it
	graphs int       // live graphs
}

// NewExtractor scans ds once and returns an extractor bound to its label
// distribution. Only live graphs count: a label whose last carrier was
// tombstoned classifies as rare again, and frequencies are fractions of
// the live population (the router refreshes its extractor after every
// mutation so this snapshot tracks the dataset).
func NewExtractor(ds *graph.Dataset) *Extractor {
	e := &Extractor{graphs: ds.NumAlive()}
	maxLabel := ds.MaxLabel()
	if maxLabel < 0 {
		return e
	}
	e.counts = make([]int, int(maxLabel)+1)
	for _, g := range ds.Graphs {
		if !ds.Alive(g.ID()) {
			continue
		}
		for _, l := range g.DistinctLabels() {
			e.counts[l]++
		}
	}
	e.recompute()
	return e
}

// observeAdd folds one added graph into the label statistics — O(graph),
// so a router mutation never rescans the dataset.
func (e *Extractor) observeAdd(g *graph.Graph) {
	for _, l := range g.DistinctLabels() {
		for int(l) >= len(e.counts) {
			e.counts = append(e.counts, 0)
		}
		e.counts[l]++
	}
	e.graphs++
	e.recompute()
}

// observeRemove drops one removed graph from the label statistics; a
// label whose last carrier leaves classifies as rarest again.
func (e *Extractor) observeRemove(g *graph.Graph) {
	for _, l := range g.DistinctLabels() {
		if int(l) < len(e.counts) && e.counts[l] > 0 {
			e.counts[l]--
		}
	}
	if e.graphs > 0 {
		e.graphs--
	}
	e.recompute()
}

// recompute rebuilds the derived frequency table from the counts —
// O(labels), far below any scan of the graphs.
func (e *Extractor) recompute() {
	if len(e.freq) != len(e.counts) {
		e.freq = make([]float64, len(e.counts))
	}
	for l, c := range e.counts {
		if e.graphs > 0 {
			e.freq[l] = float64(c) / float64(e.graphs)
		} else {
			e.freq[l] = 0
		}
	}
}

// labelFreq returns the dataset frequency of l; labels the dataset never
// uses have frequency 0.
func (e *Extractor) labelFreq(l graph.Label) float64 {
	if int(l) < 0 || int(l) >= len(e.freq) {
		return 0
	}
	return e.freq[l]
}

// Extract computes the feature vector of q.
func (e *Extractor) Extract(q *graph.Graph) Features {
	f := Features{
		Vertices:     q.NumVertices(),
		Edges:        q.NumEdges(),
		MinLabelFreq: 1,
	}
	if f.Vertices == 0 {
		f.MinLabelFreq = 0
		return f
	}
	var freqSum float64
	for v := int32(0); int(v) < f.Vertices; v++ {
		if d := q.Degree(v); d > f.MaxDegree {
			f.MaxDegree = d
		}
		lf := e.labelFreq(q.Label(v))
		freqSum += lf
		if lf < f.MinLabelFreq {
			f.MinLabelFreq = lf
		}
	}
	f.AvgLabelFreq = freqSum / float64(f.Vertices)
	f.Components = len(q.ConnectedComponents())
	f.Cyclomatic = f.Edges - f.Vertices + f.Components
	switch {
	case f.Cyclomatic > 0:
		f.Shape = ShapeCyclic
	case f.MaxDegree > 2:
		f.Shape = ShapeTree
	default:
		f.Shape = ShapePath
	}
	return f
}

// Bucket is the coarse feature key the cost model aggregates observations
// under: query size class x shape x label rarity class — 36 cells, few
// enough that each accumulates observations quickly under real traffic,
// many enough to separate the regimes where the paper's winners flip.
type Bucket struct {
	Size   int8  `json:"size"`   // 0: <=4 edges, 1: <=8, 2: <=16, 3: larger
	Shape  Shape `json:"shape"`  // path / tree / cyclic
	Rarity int8  `json:"rarity"` // 0: rare (<0.25), 1: mid (<0.75), 2: common
}

// Bucket coarsens the feature vector into its cost-model cell.
func (f Features) Bucket() Bucket {
	b := Bucket{Shape: f.Shape}
	switch {
	case f.Edges <= 4:
		b.Size = 0
	case f.Edges <= 8:
		b.Size = 1
	case f.Edges <= 16:
		b.Size = 2
	default:
		b.Size = 3
	}
	switch {
	case f.MinLabelFreq < 0.25:
		b.Rarity = 0
	case f.MinLabelFreq < 0.75:
		b.Rarity = 1
	default:
		b.Rarity = 2
	}
	return b
}

// String renders the bucket compactly for stats keys: "s2/tree/r1".
func (b Bucket) String() string {
	return fmt.Sprintf("s%d/%s/r%d", b.Size, b.Shape, b.Rarity)
}
