package router

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Policy names, in the order Policies returns them.
const (
	// PolicyStatic routes purely on the static heuristic ranking distilled
	// from the paper's figures; no state, no learning.
	PolicyStatic = "static"
	// PolicyLearned routes to the method with the lowest learned latency
	// estimate for the query's feature bucket, exploring epsilon-greedily
	// and falling back to the static ranking while the bucket is cold.
	PolicyLearned = "learned"
	// PolicyRace runs the top two predictions concurrently and cancels the
	// loser: latency insurance against a wrong prediction, at double the
	// CPU cost.
	PolicyRace = "race"
)

// Policies lists the registered routing policies.
func Policies() []string { return []string{PolicyStatic, PolicyLearned, PolicyRace} }

// policy is one routing strategy. picks returns the sub-engine indexes to
// run, in order: one index routes directly, two race with the loser
// cancelled. explored reports that the front pick came from exploration
// (forced warmup of a cold cell or an epsilon draw) rather than greedy
// estimate order.
type policy struct {
	kind    string
	epsilon float64
}

func newPolicy(kind string, epsilon float64) (policy, error) {
	switch kind {
	case PolicyStatic, PolicyLearned, PolicyRace:
	default:
		return policy{}, fmt.Errorf("router: unknown policy %q (registered: %s)",
			kind, strings.Join(Policies(), ", "))
	}
	if epsilon < 0 || epsilon > 1 {
		return policy{}, fmt.Errorf("router: epsilon %g outside [0, 1]", epsilon)
	}
	return policy{kind: kind, epsilon: epsilon}, nil
}

func (p policy) name() string { return p.kind }

func (p policy) picks(f Features, names []string, mdl *model, rng *rand.Rand) (idx []int, explored bool) {
	var order []int
	switch p.kind {
	case PolicyStatic:
		order = staticRank(f, names)
	default:
		order, explored = learnedRank(f, names, mdl, p.epsilon, rng)
	}
	if p.kind == PolicyRace && len(order) >= 2 {
		return order[:2], explored
	}
	return order[:1], explored
}

// learnedRank orders the methods by learned latency estimate for the
// query's bucket. Cold cells (fewer than coldThreshold observations) rank
// first, in static-heuristic order, so sustained traffic warms every cell
// instead of locking onto whichever method happened to be measured first;
// once all cells are warm an epsilon draw occasionally promotes a random
// method to keep estimates fresh under drift.
func learnedRank(f Features, names []string, mdl *model, epsilon float64, rng *rand.Rand) (order []int, explored bool) {
	b := f.Bucket()
	type est struct {
		i    int
		mean float64
	}
	var cold []int
	var warm []est
	coldSet := make(map[int]bool)
	for i, name := range names {
		mean, n := mdl.estimate(b, name)
		if n < coldThreshold {
			cold = append(cold, i)
			coldSet[i] = true
			continue
		}
		warm = append(warm, est{i: i, mean: mean})
	}
	sort.SliceStable(warm, func(a, c int) bool { return warm[a].mean < warm[c].mean })
	if len(cold) > 0 {
		// Forced warmup: cold methods first, keeping the static heuristic's
		// preference among them (the fallback the paper's findings seed).
		for _, i := range staticRank(f, names) {
			if coldSet[i] {
				order = append(order, i)
			}
		}
		for _, e := range warm {
			order = append(order, e.i)
		}
		return order, true
	}
	order = make([]int, len(warm))
	for i, e := range warm {
		order[i] = e.i
	}
	if epsilon > 0 && rng != nil && rng.Float64() < epsilon && len(order) > 1 {
		// Promote a random non-front method to the front.
		j := 1 + rng.Intn(len(order)-1)
		order[0], order[j] = order[j], order[0]
		return order, true
	}
	return order, false
}

// staticRank orders the sub-engine indexes by the static heuristic: a
// preference table distilled from the paper's findings, keyed on the
// query's dominant feature. Methods the table does not mention keep their
// configuration order at the end, so the ranking is total over any method
// subset.
func staticRank(f Features, names []string) []int {
	var prefer []string
	switch {
	case f.MinLabelFreq < 0.25:
		// A rare label shrinks every method's candidate set to almost the
		// answer set; the cheapest filter lookup wins (gCode's spectral
		// signatures, then the path tries).
		prefer = []string{"gcode", "ggsx", "grapes", "ctindex", "treedelta", "gindex", "noindex"}
	case f.Shape == ShapeCyclic || f.Edges > 16:
		// Dense or cyclic queries: Grapes's location-aware verification
		// dominates the paper's dense sweeps; CT-Index is the only method
		// indexing cycles directly.
		prefer = []string{"grapes", "ctindex", "gindex", "ggsx", "gcode", "treedelta", "noindex"}
	case f.Shape == ShapeTree:
		// Tree-shaped queries play to the subtree-feature indexes.
		prefer = []string{"treedelta", "ctindex", "grapes", "ggsx", "gindex", "gcode", "noindex"}
	default:
		// Small paths on sparse data: the path-trie methods filter these
		// almost exactly.
		prefer = []string{"ggsx", "grapes", "treedelta", "ctindex", "gcode", "gindex", "noindex"}
	}
	rank := make(map[string]int, len(prefer))
	for i, name := range prefer {
		rank[name] = i
	}
	order := make([]int, len(names))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ra, oka := rank[names[order[a]]]
		rb, okb := rank[names[order[b]]]
		switch {
		case oka && okb:
			return ra < rb
		case oka:
			return true
		default:
			return false
		}
	})
	return order
}
