package router

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/engine"
	"repro/internal/graph"
)

var _ engine.Mutable = (*Multi)(nil)

// Epoch implements engine.Mutable: the shared dataset's version counter.
func (m *Multi) Epoch() uint64 { return m.ds.Epoch() }

// AddGraph implements engine.Mutable for the router: g joins the shared
// dataset once, then every sub-engine folds it into its own index (each
// through its incremental or rebuild path). The label-frequency extractor
// is refreshed so routing features track the mutated label distribution.
// If any sub-index fails its maintenance, the added graph is tombstoned
// again: a dataset the sub-indexes disagree on could otherwise answer
// differently depending on where a query routes.
func (m *Multi) AddGraph(ctx context.Context, g *graph.Graph) (graph.ID, error) {
	if g == nil || g.NumVertices() == 0 {
		return 0, errors.New("router: cannot add an empty graph")
	}
	m.mutMu.Lock()
	defer m.mutMu.Unlock()
	maints, err := m.maintainers()
	if err != nil {
		return 0, err
	}
	id := m.ds.Add(g)
	for i, mt := range maints {
		if err := mt.ApplyAdd(ctx, g); err != nil {
			m.ds.Remove(id)
			// Roll the sub-indexes back too: a sharded sub that already
			// re-homed the graph live into its shard sub-dataset would
			// otherwise keep answering with it (shard queries filter
			// against the sub-dataset, not the parent). ApplyRemove
			// tombstones the shard copy / drops postings; best-effort,
			// since the parent tombstone already covers flat engines.
			for j := 0; j <= i; j++ {
				_ = maints[j].ApplyRemove(ctx, id)
			}
			return 0, fmt.Errorf("router: adding graph to %s: %w", m.names[i], err)
		}
	}
	m.ext.observeAdd(g)
	m.writeManifestLocked()
	return id, nil
}

// RemoveGraph implements engine.Mutable for the router: the shared dataset
// tombstones the graph once, then every sub-engine drops (or
// tombstone-filters) it from its own index.
func (m *Multi) RemoveGraph(ctx context.Context, id graph.ID) error {
	m.mutMu.Lock()
	defer m.mutMu.Unlock()
	maints, err := m.maintainers()
	if err != nil {
		return err
	}
	if !m.ds.Remove(id) {
		return fmt.Errorf("router: removing graph %d: %w", id, engine.ErrNoSuchGraph)
	}
	// The tombstoned slot retains the graph, so its labels can be
	// subtracted from the routing statistics without a dataset rescan.
	m.ext.observeRemove(m.ds.Graphs[id])
	for i, mt := range maints {
		if err := mt.ApplyRemove(ctx, id); err != nil {
			// The tombstone already guarantees the graph never surfaces
			// from any sub-index; the failed maintenance only cost this
			// sub-index its space reclamation.
			return fmt.Errorf("router: removing graph from %s: %w", m.names[i], err)
		}
	}
	m.writeManifestLocked()
	return nil
}

// maintainers asserts every sub-engine supports index maintenance before
// the dataset is touched, so an unsupported configuration fails cleanly
// instead of half-applying.
func (m *Multi) maintainers() ([]engine.IndexMaintainer, error) {
	out := make([]engine.IndexMaintainer, len(m.subs))
	for i, sub := range m.subs {
		mt, ok := sub.(engine.IndexMaintainer)
		if !ok {
			return nil, fmt.Errorf("router: sub-engine %s: %w", m.names[i], engine.ErrNotMutable)
		}
		out[i] = mt
	}
	return out, nil
}

// writeManifestLocked refreshes the persisted manifest, whose graph
// count, epoch, and tag the mutation moved. Best-effort like the model
// save on drain: the sub-engines have already rewritten their own files;
// a failed manifest write only costs a rebuild on the next open.
func (m *Multi) writeManifestLocked() {
	if m.indexPath != "" {
		_ = writeManifest(m.indexPath, m.names, m.ds, m.shardsHint())
	}
}
