package router_test

import (
	"context"
	"errors"
	"os"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	_ "repro/internal/engine/std"
	"repro/internal/gen"
	"repro/internal/graph"
	"repro/internal/router"
	"repro/internal/workload"
)

func tinyDataset(t testing.TB) *graph.Dataset {
	t.Helper()
	return gen.Synthetic(gen.SynthConfig{
		NumGraphs: 25, MeanNodes: 14, MeanDensity: 0.2, NumLabels: 4, Seed: 41,
	})
}

// mixedQueries builds a small workload spanning sizes and shapes so routing
// exercises several feature buckets.
func mixedQueries(t testing.TB, ds *graph.Dataset) []*graph.Graph {
	t.Helper()
	qs, err := workload.GenerateMixed(ds, workload.MixedConfig{
		NumQueries: 12, Sizes: []int{3, 5, 8}, Seed: 42,
	})
	if err != nil {
		t.Fatalf("mixed workload: %v", err)
	}
	return qs
}

// allRoutable pairs every non-composite registry method with the build spec
// the engine tests use (mining budgets bounded for the tiny dataset).
var allRoutable = []struct{ name, spec string }{
	{"grapes", "grapes:maxPathLen=3,workers=2"},
	{"ggsx", "ggsx:maxPathLen=3"},
	{"ctindex", "ctindex:fingerprintBits=512,maxTreeSize=3"},
	{"gindex", "gindex:maxPatterns=20000,supportRatio=0.2"},
	{"treedelta", "treedelta:maxPatterns=20000,querySupportToAdd=0.5"},
	{"gcode", "gcode:pathLen=1"},
	{"noindex", ""},
}

// openAll builds one engine per routable method, shared across the policy
// sub-tests (router.New composes engines without owning them).
func openAll(t *testing.T, ds *graph.Dataset) []router.Sub {
	t.Helper()
	ctx := context.Background()
	subs := make([]router.Sub, 0, len(allRoutable))
	for _, m := range allRoutable {
		spec := m.spec
		if spec == "" {
			spec = m.name
		}
		eng, err := engine.Open(ctx, ds, engine.WithSpec(spec))
		if err != nil {
			t.Fatalf("Open(%s): %v", spec, err)
		}
		subs = append(subs, router.Sub{Name: m.name, Engine: eng})
	}
	return subs
}

// TestRouterParityEveryMethod is the routing correctness contract: for
// every registered routing policy, the router over all routable methods
// returns exactly the answers of an unsharded single-method engine on the
// same dataset — one-shot, batched, and streamed, with mid-stream
// cancellation surfacing as a context error and never a wrong answer.
func TestRouterParityEveryMethod(t *testing.T) {
	ds := tinyDataset(t)
	queries := mixedQueries(t, ds)
	ctx := context.Background()
	subs := openAll(t, ds)

	// The reference: any single-method engine (all agree); pin to the first.
	ref := subs[0].Engine
	want := make([]*core.QueryResult, len(queries))
	routable := make(map[string]bool)
	for _, sub := range subs {
		routable[sub.Name] = true
	}
	var err error
	for i, q := range queries {
		if want[i], err = ref.Query(ctx, q); err != nil {
			t.Fatalf("reference query %d: %v", i, err)
		}
	}

	for _, policy := range router.Policies() {
		t.Run(policy, func(t *testing.T) {
			m, err := router.New(ds, subs, router.Options{Policy: policy, Epsilon: 0.3, Seed: 7})
			if err != nil {
				t.Fatalf("New: %v", err)
			}
			for i, q := range queries {
				got, err := m.Query(ctx, q)
				if err != nil {
					t.Fatalf("query %d: %v", i, err)
				}
				if !got.Answers.Equal(want[i].Answers) {
					t.Errorf("query %d: answers %v != single-method %v", i, got.Answers, want[i].Answers)
				}
				// The served method's spelling resolves — through the
				// registry's normalization — to one of the routed methods.
				if d, ok := engine.Lookup(got.Method); !ok || !routable[d.Name] {
					t.Errorf("query %d: served by unknown method %q", i, got.Method)
				}
			}

			// Batch: same answers, input order.
			batch, err := m.QueryBatch(ctx, queries, core.BatchOptions{Workers: 3})
			if err != nil {
				t.Fatalf("QueryBatch: %v", err)
			}
			for i, br := range batch {
				if br.Err != nil {
					t.Fatalf("batch entry %d: %v", i, br.Err)
				}
				if !br.Result.Answers.Equal(want[i].Answers) {
					t.Errorf("batch entry %d: answers %v != single-method %v", i, br.Result.Answers, want[i].Answers)
				}
			}

			// Stream: exactly the answer set, ascending.
			for i, q := range queries {
				var streamed graph.IDSet
				prev := graph.ID(-1)
				for id, err := range m.Stream(ctx, q) {
					if err != nil {
						t.Fatalf("stream %d: %v", i, err)
					}
					if id <= prev {
						t.Fatalf("stream %d: ids not ascending (%d after %d)", i, id, prev)
					}
					prev = id
					streamed = append(streamed, id)
				}
				if !streamed.Equal(want[i].Answers) {
					t.Errorf("stream %d: %v != answers %v", i, streamed, want[i].Answers)
				}
			}

			// Mid-stream cancellation: cancel after the first yielded answer;
			// whatever was yielded must be a true answer, and the stream must
			// end in context.Canceled unless it was already past its last
			// candidate.
			qi := -1
			for i := range queries {
				if len(want[i].Answers) > 1 {
					qi = i
					break
				}
			}
			if qi < 0 {
				t.Fatal("no workload query with >1 answers; pick a different seed")
			}
			mctx, cancelMid := context.WithCancel(ctx)
			defer cancelMid()
			var streamed graph.IDSet
			var streamErr error
			for id, err := range m.Stream(mctx, queries[qi]) {
				if err != nil {
					streamErr = err
					break
				}
				streamed = append(streamed, id)
				cancelMid()
			}
			if streamErr != nil {
				if !errors.Is(streamErr, context.Canceled) {
					t.Fatalf("mid-stream error = %v, want context.Canceled", streamErr)
				}
				for _, id := range streamed {
					if !want[qi].Answers.Contains(id) {
						t.Errorf("cancelled stream yielded non-answer %d", id)
					}
				}
			} else if !streamed.Equal(want[qi].Answers) {
				t.Errorf("uncancelled tail: streamed %v != answers %v", streamed, want[qi].Answers)
			}

			// A cancelled context fails a fresh query outright.
			cancelled, cancel := context.WithCancel(ctx)
			cancel()
			if _, err := m.Query(cancelled, queries[0]); !errors.Is(err, context.Canceled) {
				t.Errorf("Query with cancelled ctx: err = %v, want context.Canceled", err)
			}
		})
	}
}

// TestRouterStatsAccounting: every served query is attributed to exactly
// one winner, race participation counts both contenders, and the model
// accumulates observations.
func TestRouterStatsAccounting(t *testing.T) {
	ds := tinyDataset(t)
	queries := mixedQueries(t, ds)
	ctx := context.Background()
	subs := openAll(t, ds)[:3]

	for _, policy := range router.Policies() {
		m, err := router.New(ds, subs, router.Options{Policy: policy, Epsilon: 0.5, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range queries {
			if _, err := m.Query(ctx, q); err != nil {
				t.Fatalf("%s: %v", policy, err)
			}
		}
		s := m.Stats()
		if s.Policy != policy {
			t.Errorf("policy = %q, want %q", s.Policy, policy)
		}
		if s.Queries != int64(len(queries)) {
			t.Errorf("%s: queries = %d, want %d", policy, s.Queries, len(queries))
		}
		var won, routed int64
		for _, ms := range s.Methods {
			won += ms.Won
			routed += ms.Routed
		}
		if won != s.Queries {
			t.Errorf("%s: wins sum to %d, want %d", policy, won, s.Queries)
		}
		wantRouted := s.Queries + s.Raced // each race adds one extra contender
		if routed != wantRouted {
			t.Errorf("%s: routed sum to %d, want %d", policy, routed, wantRouted)
		}
		if policy == router.PolicyRace && s.Raced != s.Queries {
			t.Errorf("race: raced = %d, want every query (%d)", s.Raced, s.Queries)
		}
		if policy != router.PolicyStatic && len(s.Model) == 0 {
			t.Errorf("%s: cost model has no observations after %d queries", policy, len(queries))
		}
	}
}

// TestRouterOpenPersistenceLifecycle: Open co-builds and persists under one
// manifest, a second Open restores every method index and the saved cost
// model, and a changed method set invalidates the whole layout.
func TestRouterOpenPersistenceLifecycle(t *testing.T) {
	ds := tinyDataset(t)
	queries := mixedQueries(t, ds)
	ctx := context.Background()
	base := t.TempDir() + "/router.idx"
	cfg := router.Config{
		Methods: []string{"grapes", "ggsx", "gcode"},
		Options: router.Options{Policy: router.PolicyLearned, Epsilon: 0, Seed: 3},
	}
	cfg.IndexPath = base

	m1, err := router.Open(ctx, ds, cfg)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if got := m1.RestoredMethods(); got != 0 {
		t.Fatalf("fresh Open restored %d methods, want 0", got)
	}
	want := make([]graph.IDSet, len(queries))
	for i, q := range queries {
		res, err := m1.Query(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.Answers
	}
	if err := m1.Save(base); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if _, err := os.Stat(router.ModelPath(base)); err != nil {
		t.Fatalf("model file: %v", err)
	}

	m2, err := router.Open(ctx, ds, cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if got := m2.RestoredMethods(); got != len(cfg.Methods) {
		t.Errorf("reopen restored %d methods, want %d", got, len(cfg.Methods))
	}
	if len(m2.Stats().Model) == 0 {
		t.Errorf("reopen did not restore the saved cost model")
	}
	for i, q := range queries {
		res, err := m2.Query(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Answers.Equal(want[i]) {
			t.Errorf("restored query %d: answers %v != %v", i, res.Answers, want[i])
		}
	}

	// A different method set must not restore against the old manifest.
	cfg3 := cfg
	cfg3.Methods = []string{"grapes", "ggsx"}
	m3, err := router.Open(ctx, ds, cfg3)
	if err != nil {
		t.Fatalf("reopen (changed methods): %v", err)
	}
	if got := m3.RestoredMethods(); got != 0 {
		t.Errorf("changed method set restored %d methods, want full rebuild", got)
	}
	if len(m3.Stats().Model) != 0 {
		t.Errorf("changed method set restored the stale cost model")
	}
}

// TestRouterNewValidation pins New's configuration errors.
func TestRouterNewValidation(t *testing.T) {
	ds := tinyDataset(t)
	subs := openAll(t, ds)[:2]
	cases := []struct {
		name string
		subs []router.Sub
		opts router.Options
	}{
		{"one method", subs[:1], router.Options{}},
		{"unknown method", []router.Sub{subs[0], {Name: "nosuch", Engine: subs[1].Engine}}, router.Options{}},
		{"duplicate method", []router.Sub{subs[0], subs[0]}, router.Options{}},
		{"nil engine", []router.Sub{subs[0], {Name: "gcode"}}, router.Options{}},
		{"nested composite", []router.Sub{subs[0], {Name: "router", Engine: subs[1].Engine}}, router.Options{}},
		{"bad policy", subs, router.Options{Policy: "bogus"}},
		{"bad epsilon", subs, router.Options{Policy: router.PolicyLearned, Epsilon: 2}},
	}
	for _, tc := range cases {
		if _, err := router.New(ds, tc.subs, tc.opts); err == nil {
			t.Errorf("%s: want error, got nil", tc.name)
		}
	}
}
